/**
 * @file
 * Example: surviving a power failure — demonstrates the cross-media
 * crash-consistency protocol (§5.5) with the adversarial persistence
 * model enabled.
 *
 * The pmem region runs in tracking mode, so only explicitly
 * flushed+fenced cache lines are durable. The program writes a batch,
 * captures the power-failure image mid-workload, "reboots" onto fresh
 * devices loaded from that image, and verifies every acknowledged
 * write is present.
 */
#include <cstdio>

#include "core/prism_db.h"
#include "sim/device_profile.h"

using namespace prism;

int
main()
{
    constexpr uint64_t kNvmBytes = 128ull << 20;
    constexpr uint64_t kSsdBytes = 512ull << 20;

    auto nvm = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
    auto region = std::make_shared<pmem::PmemRegion>(nvm, true);
    region->enableTracking();  // adversarial persistence model on
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds = {
        std::make_shared<sim::SsdDevice>(kSsdBytes,
                                         sim::kSamsung980ProProfile,
                                         false),
    };

    core::PrismOptions opts;
    opts.pwb_size_bytes = 1 << 20;  // small PWB: values reach the SSD
    auto db = core::PrismDb::open(opts, region, ssds);

    constexpr uint64_t kAcked = 20000;
    for (uint64_t k = 0; k < kAcked; k++) {
        const Status st = db->put(k, "durable-" + std::to_string(k));
        if (!st.isOk()) {
            std::fprintf(stderr, "put: %s\n", st.toString().c_str());
            return 1;
        }
    }
    std::printf("acknowledged %llu puts\n",
                static_cast<unsigned long long>(kAcked));

    // Power failure NOW: capture exactly what is durable — flushed NVM
    // lines and completed SSD writes. Unfenced stores evaporate.
    std::vector<uint8_t> nvm_image;
    region->snapshotDurableTo(nvm_image);
    std::vector<uint8_t> ssd_image;
    ssds[0]->snapshotTo(ssd_image);
    std::printf("power failure injected (captured durable image)\n");

    // Reboot: fresh process state, devices restored from the image.
    db.reset();
    auto nvm2 = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    nvm2->loadImage(nvm_image.data(), nvm_image.size());
    auto region2 = std::make_shared<pmem::PmemRegion>(nvm2, false);
    auto ssd2 = std::make_shared<sim::SsdDevice>(
        kSsdBytes, sim::kSamsung980ProProfile, false);
    ssd2->loadFrom(ssd_image);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds2{ssd2};
    auto recovered = core::PrismDb::recover(opts, region2, ssds2);

    std::printf("recovery completed in %.2f ms\n",
                static_cast<double>(recovered->recoveryTimeNs()) / 1e6);

    uint64_t present = 0;
    std::string v;
    for (uint64_t k = 0; k < kAcked; k++) {
        if (recovered->get(k, &v).isOk() &&
            v == "durable-" + std::to_string(k)) {
            present++;
        }
    }
    std::printf("verified %llu / %llu acknowledged writes survived\n",
                static_cast<unsigned long long>(present),
                static_cast<unsigned long long>(kAcked));
    return present == kAcked ? 0 : 1;
}
