/**
 * @file
 * prism_cli — an interactive/scriptable shell over a Prism store on
 * simulated heterogeneous devices. Useful for poking at the system and
 * for demos:
 *
 *   $ ./build/examples/prism_cli
 *   prism> put 42 hello
 *   OK
 *   prism> get 42
 *   hello
 *   prism> fill 10000 256
 *   inserted 10000 keys of 256B
 *   prism> stats
 *   ...
 *   prism> tracegen a 5000 /tmp/a.trace   # synthesize a YCSB-A trace
 *   prism> replay /tmp/a.trace            # replay it against the store
 *   prism> quit
 *
 * Commands: put, get, del, scan, fill, flush, gc, stats, metrics,
 * json, trace, top, telemetry, slowops, tracegen, replay, help, quit.
 * Run with --stats to dump the metrics registry on exit (see
 * docs/OBSERVABILITY.md).
 *
 * Non-interactive subcommands (render the ops-plane payloads
 * in-process, no HTTP server involved):
 *
 *   $ prism_cli healthz            # /healthz JSON; exit 0 ok, 1 degraded
 *   $ prism_cli metrics [--prom]   # registry dump (--prom: Prometheus)
 *
 * --obs-port=N starts the HTTP ops endpoint on the interactive store
 * (0 = ephemeral; see common/obs_server.h); `top` shows its URL.
 *
 * --resp-port=N embeds the RESP network front-end (docs/SERVER.md) on
 * the interactive store (0 = ephemeral), so redis-cli and
 * bench/prism_loadgen can hit the same store the shell is poking at;
 * `top` then adds listener and per-tenant rate lines.
 */
#include <sys/select.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "common/obs_server.h"
#include "common/prof.h"
#include "common/stats.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/prism_db.h"
#include "net/resp_server.h"
#include "sim/device_profile.h"
#include "ycsb/stores.h"
#include "ycsb/trace.h"

using namespace prism;

namespace {

/** Shard count of the open store, for the stats/top views. */
int g_shards = 1;

/** Bound ops-endpoint port (0 = no server), for the top view. */
int g_obs_port = 0;

void
printStats(ycsb::PrismStore &store)
{
    auto &db = store.db();
    const auto &st = db.opStats();
    const auto &svc = db.svcStats();
    std::printf("keys            %zu\n", db.size());
    if (db.shardCount() > 1) {
        std::printf("shards         ");
        for (size_t s = 0; s < db.shardCount(); s++)
            std::printf(" [%zu] %zu keys", s, db.shard(s).size());
        std::printf("\n");
    }
    std::printf("puts/gets/dels  %llu / %llu / %llu   scans %llu\n",
                static_cast<unsigned long long>(st.puts.load()),
                static_cast<unsigned long long>(st.gets.load()),
                static_cast<unsigned long long>(st.dels.load()),
                static_cast<unsigned long long>(st.scans.load()));
    std::printf("read sources    svc=%llu pwb=%llu ssd=%llu\n",
                static_cast<unsigned long long>(st.svc_hits.load()),
                static_cast<unsigned long long>(st.pwb_hits.load()),
                static_cast<unsigned long long>(st.vs_reads.load()));
    // Sum SVC occupancy across shards (db.svc() alone is shard 0's).
    uint64_t svc_used = 0, svc_cap = 0;
    for (size_t s = 0; s < db.shardCount(); s++) {
        svc_used += db.shard(s).svc().usedBytes();
        svc_cap += db.shard(s).svc().capacityBytes();
    }
    std::printf("svc             %.1f / %.1f MB used, %llu evictions, "
                "%llu scan reorgs\n",
                static_cast<double>(svc_used) / 1e6,
                static_cast<double>(svc_cap) / 1e6,
                static_cast<unsigned long long>(svc.evictions.load()),
                static_cast<unsigned long long>(svc.scan_reorgs.load()));
    std::printf("reclaim         %llu passes, %llu values moved, %llu "
                "stale skipped\n",
                static_cast<unsigned long long>(
                    st.reclaim_passes.load()),
                static_cast<unsigned long long>(
                    st.reclaimed_values.load()),
                static_cast<unsigned long long>(
                    st.reclaim_skipped_stale.load()));
    uint64_t gc = 0;
    size_t free_chunks = 0, total_chunks = 0;
    for (size_t i = 0; i < db.valueStorageCount(); i++) {
        gc += db.valueStorage(i).gcPasses();
        free_chunks += db.valueStorage(i).freeChunks();
        total_chunks += db.valueStorage(i).totalChunks();
    }
    std::printf("value storage   %zu/%zu chunks free, %llu GC passes\n",
                free_chunks, total_chunks,
                static_cast<unsigned long long>(gc));
    std::printf("nvm index       %.1f MB (key index + HSIT)\n",
                static_cast<double>(db.nvmIndexBytes()) / 1e6);
    std::printf("ssd written     %.1f MB for %.1f MB of user writes\n",
                static_cast<double>(db.ssdBytesWritten()) / 1e6,
                static_cast<double>(st.user_bytes_written.load()) / 1e6);
}

void
printSlowOps(const std::vector<trace::SlowOp> &ops)
{
    auto &tracer = trace::TraceRegistry::global();
    if (ops.empty()) {
        std::printf("no slow ops captured (threshold %llu us; set "
                    "one with 'trace slow <us>')\n",
                    static_cast<unsigned long long>(
                        tracer.slowOpThresholdUs()));
        return;
    }
    for (const auto &op : ops) {
        std::printf("%-14s %8.1f us  tid=%d%s\n", op.op.c_str(),
                    static_cast<double>(op.dur_ns) / 1e3, op.tid,
                    op.truncated ? "  [subtree truncated]" : "");
        for (const auto &ev : op.events) {
            std::printf("  %*s%-22s +%8.1fus  dur=%8.1fus",
                        ev.depth * 2, "",
                        tracer.nameOf(ev.name_id).c_str(),
                        static_cast<double>(ev.ts_ns - op.start_ns) /
                            1e3,
                        static_cast<double>(ev.dur_ns) / 1e3);
            if (ev.arg1_name_id != 0)
                std::printf("  %s=%llu",
                            tracer.nameOf(ev.arg1_name_id).c_str(),
                            static_cast<unsigned long long>(ev.arg1));
            if (ev.arg2_name_id != 0)
                std::printf("  %s=%llu",
                            tracer.nameOf(ev.arg2_name_id).c_str(),
                            static_cast<unsigned long long>(ev.arg2));
            std::printf("\n");
        }
    }
}

/**
 * Wait up to @p ms for input on stdin. Returns true when the user asked
 * to quit (q / quit / plain Enter / EOF). stdin stays line-buffered, so
 * keys take effect when Enter is pressed.
 */
bool
waitQuitOrTimeout(uint64_t ms)
{
    fd_set rd;
    FD_ZERO(&rd);
    FD_SET(STDIN_FILENO, &rd);
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    const int n = select(STDIN_FILENO + 1, &rd, nullptr, nullptr, &tv);
    if (n <= 0)
        return false;
    std::string line;
    if (!std::getline(std::cin, line))
        return true;  // EOF
    return line.empty() || line == "q" || line == "quit";
}

/** Repaint one frame of the live view from the newest window. */
void
renderTopFrame(const telemetry::TelemetrySample &s, bool ansi)
{
    if (ansi)
        std::printf("\x1b[H\x1b[2J");
    const double dt = s.dtSeconds();
    const double dt_s = dt > 0 ? dt : 1.0;
    std::printf("prism top — window #%llu, %.2fs  (q + Enter quits)\n",
                static_cast<unsigned long long>(s.seq), dt);
    if (g_obs_port > 0)
        std::printf("ops: http://127.0.0.1:%d  (/metrics /healthz "
                    "/slowops /telemetry /trace)\n",
                    g_obs_port);
    // Listener state when a RESP front-end is embedded: the gauge
    // only exists (is non-zero) while a server is running.
    if (const int64_t rp = s.gauge("prism.server.port"); rp > 0) {
        std::printf("resp: 127.0.0.1:%lld  %lld conns  %.0f cmd/s  "
                    "%.0f throttled/s  inflight %lld\n",
                    static_cast<long long>(rp),
                    static_cast<long long>(
                        s.gauge("prism.server.connections")),
                    s.counterRate("prism.server.commands"),
                    s.counterRate("prism.server.throttled"),
                    static_cast<long long>(
                        s.gauge("prism.server.inflight")));
        // Per-tenant op rates, active tenants only.
        bool any = false;
        for (const auto &c : s.counters) {
            if (c.delta == 0 || c.name.rfind("prism.tenant.", 0) != 0)
                continue;
            if (c.name.size() < 4 ||
                c.name.compare(c.name.size() - 4, 4, ".ops") != 0)
                continue;
            if (!any)
                std::printf("tenants:  ");
            any = true;
            std::printf(" %s %.0f ops/s",
                        c.name.substr(13, c.name.size() - 13 - 4)
                            .c_str(),
                        static_cast<double>(c.delta) / dt_s);
        }
        if (any)
            std::printf("\n");
    }
    std::printf("\n");

    std::printf("ops/s      put %9.0f   get %9.0f   del %9.0f   "
                "scan %9.0f\n",
                s.counterRate("prism.puts"), s.counterRate("prism.gets"),
                s.counterRate("prism.dels"), s.counterRate("prism.scans"));
    std::printf("pipeline   pwb-append %7.1f MB/s   reclaimed %7.0f "
                "vals/s   gc-moved %7.1f MB/s\n",
                s.counterRate("prism.pwb.append_bytes") / 1e6,
                s.counterRate("prism.pwb.reclaimed_values"),
                s.counterRate("prism.vs.gc_moved_bytes") / 1e6);
    std::printf("devices    ssd-read %8.1f MB/s   ssd-write %8.1f MB/s"
                "   bg-tasks %6.0f/s (queue %lld)\n\n",
                s.counterRate("sim.ssd.bytes_read") / 1e6,
                s.counterRate("sim.ssd.bytes_written") / 1e6,
                s.counterRate("prism.bg.tasks"),
                static_cast<long long>(s.gauge("prism.bg.queue_depth")));

    const int64_t pwb_used = s.gauge("prism.pwb.used_bytes");
    const int64_t pwb_cap = s.gauge("prism.pwb.capacity_bytes");
    const int64_t svc_used = s.gauge("prism.svc.used_bytes");
    const int64_t svc_cap = s.gauge("prism.svc.capacity_bytes");
    std::printf("occupancy  pwb %6.1f / %6.1f MB (%3.0f%%)   "
                "svc %6.1f / %6.1f MB (%3.0f%%)\n\n",
                static_cast<double>(pwb_used) / 1e6,
                static_cast<double>(pwb_cap) / 1e6,
                pwb_cap > 0 ? 100.0 * static_cast<double>(pwb_used) /
                                  static_cast<double>(pwb_cap)
                            : 0.0,
                static_cast<double>(svc_used) / 1e6,
                static_cast<double>(svc_cap) / 1e6,
                svc_cap > 0 ? 100.0 * static_cast<double>(svc_used) /
                                  static_cast<double>(svc_cap)
                            : 0.0);

    // Hottest locks: top-3 prism.lock.<site>.wait_ns_total by
    // wait rate this window. All-zero (or profiler off) prints nothing.
    {
        struct Hot { const telemetry::CounterPoint *p; };
        std::vector<const telemetry::CounterPoint *> hot;
        for (const auto &c : s.counters) {
            if (c.delta == 0 || c.name.rfind("prism.lock.", 0) != 0)
                continue;
            if (c.name.size() < 14 ||
                c.name.compare(c.name.size() - 14, 14,
                               ".wait_ns_total") != 0)
                continue;
            hot.push_back(&c);
        }
        std::sort(hot.begin(), hot.end(),
                  [](const auto *a, const auto *b) {
                      return a->delta > b->delta;
                  });
        if (!hot.empty()) {
            std::printf("locks     ");
            for (size_t i = 0; i < hot.size() && i < 3; i++) {
                const std::string site = hot[i]->name.substr(
                    11, hot[i]->name.size() - 11 - 14);
                std::printf(" %s %.1fms/s",
                            site.c_str(),
                            static_cast<double>(hot[i]->delta) / dt_s /
                                1e6);
            }
            std::printf("   (wait, prism.lock.*)\n\n");
        }
    }

    if (g_shards > 1) {
        std::printf("%-8s %12s %12s %6s\n", "shard", "ops/s", "keys",
                    "node");
        for (int sh = 0; sh < g_shards; sh++) {
            const std::string p =
                "prism.shard." + std::to_string(sh) + ".";
            std::printf("shard%-3d %12.0f %12lld %6lld\n", sh,
                        s.counterRate(p + "ops"),
                        static_cast<long long>(s.gauge(p + "keys")),
                        static_cast<long long>(s.gauge(p + "node")));
        }
        std::printf("\n");
    }

    std::printf("layer busy (cores)\n");
    uint64_t total_busy = 0;
    for (size_t i = 0; i < trace::kNumLayers; i++) {
        total_busy += s.layer_busy_ns[i];
        std::printf("  %-6s %6.2f\n", trace::layerName(i),
                    static_cast<double>(s.layer_busy_ns[i]) /
                        (dt_s * 1e9));
    }
    if (total_busy == 0 &&
        !trace::TraceRegistry::global().enabled())
        std::printf("  (all zero — CPU attribution needs tracing; run "
                    "'trace on')\n");

    if (!s.devices.empty()) {
        std::printf("\n%-6s %12s %12s %6s\n", "device", "read MB/s",
                    "write MB/s", "util");
        for (const auto &d : s.devices)
            std::printf("%-6s %12.1f %12.1f %5.0f%%\n", d.name.c_str(),
                        static_cast<double>(d.read_bytes) / dt_s / 1e6,
                        static_cast<double>(d.written_bytes) / dt_s / 1e6,
                        d.util * 100.0);
    }
    std::fflush(stdout);
}

/**
 * Live telemetry view: drives the sampler manually at @p interval_ms
 * and repaints until the user quits or @p frames windows were shown
 * (0 = until quit). Works whether or not the background sampler thread
 * is running — both tick into the same ring.
 */
void
runTop(uint64_t interval_ms, uint64_t frames)
{
    auto &tel = telemetry::Telemetry::global();
    const bool ansi = isatty(STDOUT_FILENO) != 0;
    tel.sampleNow();  // prime the baseline if there is none yet
    for (uint64_t i = 0; frames == 0 || i < frames; i++) {
        if (waitQuitOrTimeout(interval_ms))
            break;
        tel.sampleNow();
        const auto series = tel.series();
        if (series.empty())
            continue;
        renderTopFrame(series.back(), ansi);
    }
}

ycsb::Mix
mixByName(const std::string &name)
{
    if (name == "load") return ycsb::Mix::kLoad;
    if (name == "a") return ycsb::Mix::kA;
    if (name == "b") return ycsb::Mix::kB;
    if (name == "c") return ycsb::Mix::kC;
    if (name == "d") return ycsb::Mix::kD;
    if (name == "e") return ycsb::Mix::kE;
    if (name == "nutanix") return ycsb::Mix::kNutanix;
    return ycsb::Mix::kC;
}

void
help()
{
    std::printf(
        "commands:\n"
        "  put <key> <value>          insert or update\n"
        "  get <key>                  point lookup\n"
        "  del <key>                  delete\n"
        "  scan <key> <count>         range scan\n"
        "  fill <n> [bytes]           bulk-insert n keys\n"
        "  flush                      drain PWBs to Value Storage\n"
        "  gc                         force garbage collection\n"
        "  stats                      show store statistics\n"
        "  metrics                    dump the metrics registry (text)\n"
        "  json                       dump the metrics registry (JSON)\n"
        "  trace on|off               toggle cross-layer tracing\n"
        "  trace dump <file>          export Chrome-trace JSON "
        "(ui.perfetto.dev)\n"
        "  trace slow <us>            capture ops slower than <us> "
        "(0 = off)\n"
        "  trace clear                drop recorded events + slow ops\n"
        "  top [ms] [frames]          live per-layer rate/occupancy "
        "view (default 1000 ms)\n"
        "  telemetry on [ms]          start the background sampler "
        "(default 100 ms)\n"
        "  telemetry off              stop the sampler (series kept)\n"
        "  telemetry dump <file>      export the series JSON "
        "(scripts/telemetry_report.py)\n"
        "  profile [sec] [file]       sample CPU for sec seconds "
        "(default 5) and print/export\n"
        "                             collapsed stacks "
        "(scripts/flamegraph.py renders them)\n"
        "  contention                 lock-wait folded stacks "
        "(prism.lock.* sites)\n"
        "  telemetry status           sampler state + recorded windows\n"
        "  telemetry clear            drop the recorded series\n"
        "  slowops                    show captured slow ops, worst "
        "first\n"
        "  tracegen <mix> <n> <file>  synthesize a YCSB trace "
        "(mix: load|a|b|c|d|e|nutanix)\n"
        "  replay <file>              replay a trace file\n"
        "  quit\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    bool dump_stats = false, dump_json = false, prom = false;
    int resp_port = -1;  // -1 = no RESP listener; 0 = ephemeral
    std::string subcommand;
    core::PrismOptions po;  // shards=0: defer to --shards/$PRISM_SHARDS
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--stats") == 0)
            dump_stats = true;
        else if (std::strcmp(argv[i], "--stats=json") == 0)
            dump_stats = dump_json = true;
        else if (std::strncmp(argv[i], "--shards=", 9) == 0)
            po.shards = std::atoi(argv[i] + 9);
        else if (std::strncmp(argv[i], "--obs-port=", 11) == 0)
            po.obs_port = std::atoi(argv[i] + 11);
        else if (std::strncmp(argv[i], "--resp-port=", 12) == 0)
            resp_port = std::atoi(argv[i] + 12);
        else if (std::strcmp(argv[i], "--prom") == 0)
            prom = true;
        else if (argv[i][0] != '-' && subcommand.empty())
            subcommand = argv[i];
    }

    if (!subcommand.empty() && subcommand != "healthz" &&
        subcommand != "metrics") {
        std::fprintf(stderr,
                     "unknown subcommand '%s' (healthz | metrics "
                     "[--prom])\n",
                     subcommand.c_str());
        return 2;
    }
    if (!subcommand.empty())
        po.obs_port = -1;  // one-shot render: never start a listener

    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.ssd_bytes = 1ull << 30;
    fx.dataset_bytes = 128ull << 20;
    fx.model_timing = true;
    ycsb::PrismStore store(fx, po);
    g_shards = static_cast<int>(store.router().shardCount());
    g_obs_port = store.router().obsPort();

    // One-shot ops-plane renders: exactly the payloads the HTTP
    // endpoint serves, produced in-process with no server.
    if (subcommand == "healthz") {
        const obs::HealthReport r = store.router().healthReport();
        std::printf("%s\n", r.json.c_str());
        return r.healthy ? 0 : 1;
    }
    if (subcommand == "metrics") {
        for (size_t s = 0; s < store.router().shardCount(); s++)
            store.router().shard(s).publishOccupancy();
        trace::TraceRegistry::global().publishStats();
        const auto snap = stats::StatsRegistry::global().snapshot();
        if (prom)
            std::printf("%s", obs::renderPrometheus(snap).c_str());
        else
            std::printf("%s", snap.toString().c_str());
        return 0;
    }

    std::printf("prism_cli: store open — %d shard%s, %d NVM region%s + "
                "%zu %s SSDs. Type 'help'.\n",
                g_shards, g_shards == 1 ? "" : "s", g_shards,
                g_shards == 1 ? "" : "s", store.devices().size(),
                std::string(store.devices().front()->kind()).c_str());
    if (g_obs_port > 0)
        std::printf("prism_cli: ops endpoint at http://127.0.0.1:%d\n",
                    g_obs_port);

    // Embed the RESP front-end so network clients share this store.
    std::unique_ptr<net::RespServer> resp;
    if (resp_port >= 0) {
        resp = std::make_unique<net::RespServer>(store);
        net::RespServer::Options so;
        so.port = resp_port;
        std::string err;
        if (!resp->start(so, &err)) {
            std::fprintf(stderr, "prism_cli: %s\n", err.c_str());
            return 1;
        }
        std::printf("prism_cli: resp listening on 127.0.0.1:%d  "
                    "(try: redis-cli -p %d)\n",
                    resp->port(), resp->port());
    }

    std::string line;
    while (true) {
        std::printf("prism> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        std::istringstream in(line);
        std::string cmd;
        in >> cmd;
        if (cmd.empty())
            continue;

        if (cmd == "quit" || cmd == "exit")
            break;
        if (cmd == "help") {
            help();
        } else if (cmd == "put") {
            uint64_t key;
            std::string value;
            if (!(in >> key) || !(in >> value)) {
                std::printf("usage: put <key> <value>\n");
                continue;
            }
            std::printf("%s\n", store.put(key, value).toString().c_str());
        } else if (cmd == "get") {
            uint64_t key;
            if (!(in >> key)) {
                std::printf("usage: get <key>\n");
                continue;
            }
            std::string value;
            const Status st = store.get(key, &value);
            std::printf("%s\n", st.isOk() ? value.c_str()
                                          : st.toString().c_str());
        } else if (cmd == "del") {
            uint64_t key;
            if (!(in >> key)) {
                std::printf("usage: del <key>\n");
                continue;
            }
            std::printf("%s\n", store.del(key).toString().c_str());
        } else if (cmd == "scan") {
            uint64_t key;
            size_t count;
            if (!(in >> key >> count)) {
                std::printf("usage: scan <key> <count>\n");
                continue;
            }
            std::vector<std::pair<uint64_t, std::string>> out;
            const Status st = store.scan(key, count, &out);
            if (!st.isOk()) {
                std::printf("%s\n", st.toString().c_str());
                continue;
            }
            for (const auto &[k, v] : out) {
                std::printf("%llu = %.40s%s\n",
                            static_cast<unsigned long long>(k), v.c_str(),
                            v.size() > 40 ? "..." : "");
            }
        } else if (cmd == "fill") {
            uint64_t n;
            uint32_t bytes = 256;
            if (!(in >> n)) {
                std::printf("usage: fill <n> [bytes]\n");
                continue;
            }
            in >> bytes;
            std::string value;
            for (uint64_t i = 0; i < n; i++) {
                const uint64_t key = ycsb::OpGenerator::keyOf(i);
                ycsb::OpGenerator::fillValue(key, bytes, &value);
                store.put(key, value);
            }
            std::printf("inserted %llu keys of %uB\n",
                        static_cast<unsigned long long>(n), bytes);
        } else if (cmd == "flush") {
            store.flushAll();
            std::printf("OK\n");
        } else if (cmd == "gc") {
            store.db().forceGc();
            std::printf("OK\n");
        } else if (cmd == "stats") {
            printStats(store);
        } else if (cmd == "metrics") {
            std::printf("%s", store.db().stats().toString().c_str());
        } else if (cmd == "json") {
            std::printf("%s\n", store.db().stats().toJson().c_str());
        } else if (cmd == "trace") {
            std::string sub;
            in >> sub;
            auto &tracer = trace::TraceRegistry::global();
            if (sub == "on") {
                tracer.setEnabled(true);
                std::printf("tracing on\n");
            } else if (sub == "off") {
                tracer.setEnabled(false);
                std::printf("tracing off\n");
            } else if (sub == "dump") {
                std::string file;
                if (!(in >> file)) {
                    std::printf("usage: trace dump <file>\n");
                    continue;
                }
                if (tracer.exportJsonToFile(file))
                    std::printf("trace written to %s (open at "
                                "https://ui.perfetto.dev)\n",
                                file.c_str());
                else
                    std::printf("cannot write %s\n", file.c_str());
            } else if (sub == "slow") {
                uint64_t us;
                if (!(in >> us)) {
                    std::printf("usage: trace slow <us>\n");
                    continue;
                }
                tracer.setSlowOpThresholdUs(us);
                std::printf("slow-op threshold %llu us\n",
                            static_cast<unsigned long long>(us));
            } else if (sub == "clear") {
                tracer.clear();
                std::printf("OK\n");
            } else {
                std::printf(
                    "usage: trace on|off|dump <file>|slow <us>|clear\n");
            }
        } else if (cmd == "top") {
            uint64_t ms = 1000, frames = 0;
            in >> ms >> frames;
            if (ms == 0)
                ms = 1000;
            runTop(ms, frames);
        } else if (cmd == "profile") {
            double seconds = 5.0;
            std::string file;
            in >> seconds >> file;
            if (seconds <= 0)
                seconds = 5.0;
            std::printf("sampling %.1fs at %d Hz...\n", seconds,
                        prof::Profiler::global().running()
                            ? prof::Profiler::global().hz()
                            : 99);
            std::fflush(stdout);
            const std::string folded =
                prof::Profiler::global().profileForWindow(0, seconds);
            if (!file.empty()) {
                FILE *f = std::fopen(file.c_str(), "w");
                if (f == nullptr) {
                    std::printf("cannot write %s\n", file.c_str());
                } else {
                    std::fwrite(folded.data(), 1, folded.size(), f);
                    std::fclose(f);
                    std::printf("profile written to %s (render with "
                                "scripts/flamegraph.py)\n",
                                file.c_str());
                }
            } else {
                std::fputs(folded.c_str(), stdout);
            }
        } else if (cmd == "contention") {
            std::fputs(prof::renderContentionFolded().c_str(), stdout);
        } else if (cmd == "telemetry") {
            std::string sub;
            in >> sub;
            auto &tel = telemetry::Telemetry::global();
            if (sub == "on") {
                uint64_t ms = 100;
                in >> ms;
                if (tel.start(ms == 0 ? 100 : ms))
                    std::printf("telemetry sampling every %llu ms\n",
                                static_cast<unsigned long long>(
                                    tel.intervalMs()));
                else
                    std::printf("already running (every %llu ms)\n",
                                static_cast<unsigned long long>(
                                    tel.intervalMs()));
            } else if (sub == "off") {
                tel.stop();
                std::printf("telemetry stopped (%zu windows kept)\n",
                            tel.sampleCount());
            } else if (sub == "dump") {
                std::string file;
                if (!(in >> file)) {
                    std::printf("usage: telemetry dump <file>\n");
                    continue;
                }
                if (tel.exportSeriesJsonToFile(file))
                    std::printf("series (%zu windows) written to %s "
                                "(render with "
                                "scripts/telemetry_report.py)\n",
                                tel.sampleCount(), file.c_str());
                else
                    std::printf("cannot write %s\n", file.c_str());
            } else if (sub == "status") {
                std::printf("sampler %s, interval %llu ms, %zu/%zu "
                            "windows recorded\n",
                            tel.running() ? "running" : "stopped",
                            static_cast<unsigned long long>(
                                tel.intervalMs()),
                            tel.sampleCount(), tel.capacity());
            } else if (sub == "clear") {
                tel.clear();
                std::printf("OK\n");
            } else {
                std::printf("usage: telemetry on [ms]|off|dump "
                            "<file>|status|clear\n");
            }
        } else if (cmd == "slowops") {
            printSlowOps(store.db().slowOps());
        } else if (cmd == "tracegen") {
            std::string mix, file;
            uint64_t n;
            if (!(in >> mix >> n >> file)) {
                std::printf("usage: tracegen <mix> <n> <file>\n");
                continue;
            }
            ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::forMix(
                mixByName(mix), std::max<uint64_t>(store.db().size(), 1),
                n);
            spec.value_bytes = 256;
            const uint64_t written = ycsb::generateTrace(spec, 1, file);
            std::printf("wrote %llu records to %s\n",
                        static_cast<unsigned long long>(written),
                        file.c_str());
        } else if (cmd == "replay") {
            std::string file;
            if (!(in >> file)) {
                std::printf("usage: replay <file>\n");
                continue;
            }
            const ycsb::RunResult r = ycsb::replayTrace(store, file, 4);
            std::printf("replayed %llu ops at %.1f Kops/s (%s)\n",
                        static_cast<unsigned long long>(r.ops),
                        r.throughput() / 1e3,
                        r.overall.summaryUs().c_str());
        } else {
            std::printf("unknown command '%s' (try 'help')\n",
                        cmd.c_str());
        }
    }
    if (resp)
        resp->stop();
    telemetry::Telemetry::global().stop();
    if (dump_stats) {
        const auto snap = stats::StatsRegistry::global().snapshot();
        if (dump_json)
            std::fprintf(stderr, "%s\n", snap.toJson().c_str());
        else
            std::fprintf(stderr, "---- prism stats ----\n%s",
                         snap.toString().c_str());
    }
    return 0;
}
