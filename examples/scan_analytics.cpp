/**
 * @file
 * Example: time-series analytics over key ranges — exercises the
 * Scan-aware Value Cache and its eviction-time reorganisation (§4.4).
 *
 * Events are keyed by (series << 32 | timestamp), so one series is one
 * contiguous key range. An analyst repeatedly scans a few hot series;
 * after values spill to Value Storage, repeated scans first populate
 * the SVC, then eviction rewrites each scanned range into a contiguous
 * chunk, collapsing future scans into single sequential reads.
 */
#include <cstdio>

#include "common/rand.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"

using namespace prism;

namespace {

uint64_t
eventKey(uint32_t series, uint32_t ts)
{
    return (static_cast<uint64_t>(series) << 32) | ts;
}

}  // namespace

int
main()
{
    auto nvm = std::make_shared<sim::NvmDevice>(512ull << 20);
    auto region = std::make_shared<pmem::PmemRegion>(nvm, true);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds = {
        std::make_shared<sim::SsdDevice>(2ull << 30),
        std::make_shared<sim::SsdDevice>(2ull << 30),
    };
    core::PrismOptions opts;
    opts.svc_capacity_bytes = 2ull << 20;  // small cache: evictions happen
    auto db = core::PrismDb::open(opts, region, ssds);

    // Ingest: 64 series x 2000 events each, interleaved by time (as a
    // collector would), so on-SSD layout has no per-series locality.
    constexpr uint32_t kSeries = 64;
    constexpr uint32_t kEvents = 2000;
    std::string payload(512, 'e');
    for (uint32_t ts = 0; ts < kEvents; ts++) {
        for (uint32_t s = 0; s < kSeries; s++)
            db->put(eventKey(s, ts), payload);
    }
    db->flushAll();  // push everything to Value Storage

    // Analytics: repeatedly scan windows of a few hot series.
    Xorshift rng(17);
    std::vector<std::pair<uint64_t, std::string>> window;
    uint64_t values_read = 0;
    const uint64_t ssd_reads_before =
        db->opStats().vs_reads.load(std::memory_order_relaxed);
    for (int query = 0; query < 400; query++) {
        const uint32_t series = static_cast<uint32_t>(
            rng.nextUniform(4));  // 4 hot series out of 64
        const uint32_t start_ts = static_cast<uint32_t>(
            rng.nextUniform(kEvents - 100));
        db->scan(eventKey(series, start_ts), 100, &window);
        values_read += window.size();
    }

    const auto &svc = db->svcStats();
    std::printf("scanned %llu values over 400 range queries\n",
                static_cast<unsigned long long>(values_read));
    std::printf("SVC: %llu hits, %llu admissions, %llu evictions\n",
                static_cast<unsigned long long>(svc.hits.load()),
                static_cast<unsigned long long>(svc.admissions.load()),
                static_cast<unsigned long long>(svc.evictions.load()));
    std::printf("scan-aware reorganisations: %llu (rewrote %llu values "
                "contiguously)\n",
                static_cast<unsigned long long>(svc.scan_reorgs.load()),
                static_cast<unsigned long long>(
                    svc.reorged_values.load()));
    std::printf("SSD value reads: %llu\n",
                static_cast<unsigned long long>(
                    db->opStats().vs_reads.load() - ssd_reads_before));
    return 0;
}
