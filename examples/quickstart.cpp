/**
 * @file
 * Quickstart: open a Prism store on simulated heterogeneous devices,
 * write, read, scan, delete, and recover after a restart.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "core/prism_db.h"
#include "sim/device_profile.h"

using namespace prism;

int
main()
{
    // 1. Devices. One byte-addressable NVM DIMM and two flash SSDs.
    //    (On a real deployment these would be /dev/dax and NVMe
    //    namespaces; here they are simulated per the Figure-1 profiles.)
    auto nvm = std::make_shared<sim::NvmDevice>(256ull << 20);
    auto region = std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds = {
        std::make_shared<sim::SsdDevice>(1ull << 30),
        std::make_shared<sim::SsdDevice>(1ull << 30),
    };

    // 2. Open a fresh store.
    core::PrismOptions opts;
    auto db = core::PrismDb::open(opts, region, ssds);

    // 3. Writes are durable on return: value lands in this thread's
    //    Persistent Write Buffer on NVM, then the HSIT forward pointer
    //    flips — that CAS is the durable linearization point.
    for (uint64_t k = 1; k <= 1000; k++) {
        const std::string value = "value-" + std::to_string(k);
        const Status st = db->put(k, value);
        if (!st.isOk()) {
            std::fprintf(stderr, "put failed: %s\n",
                         st.toString().c_str());
            return 1;
        }
    }

    // 4. Point reads check SVC (DRAM), then PWB (NVM), then Value
    //    Storage (SSD, batched via thread combining).
    std::string value;
    if (db->get(42, &value).isOk())
        std::printf("get(42)  -> %s\n", value.c_str());

    // 5. Range scans come back in key order.
    std::vector<std::pair<uint64_t, std::string>> range;
    db->scan(10, 5, &range);
    for (const auto &[k, v] : range)
        std::printf("scan     -> %llu = %s\n",
                    static_cast<unsigned long long>(k), v.c_str());

    // 6. Deletes.
    db->del(42);
    std::printf("get(42) after del -> %s\n",
                db->get(42, &value).toString().c_str());

    // 7. Restart: drop the process state, recover from NVM + SSD.
    db.reset();
    db = core::PrismDb::recover(opts, region, ssds);
    std::printf("recovered %zu keys in %.2f ms\n", db->size(),
                static_cast<double>(db->recoveryTimeNs()) / 1e6);
    if (db->get(7, &value).isOk())
        std::printf("get(7) after recovery -> %s\n", value.c_str());
    return 0;
}
