/**
 * @file
 * prism_server — Prism as a network service (docs/SERVER.md).
 *
 * Opens the standard Prism fixture (ShardRouter over simulated
 * heterogeneous devices) and fronts it with net::RespServer, the RESP
 * listener that drives the store through its async API. Clients are
 * ordinary Redis clients:
 *
 *   $ ./build/examples/prism_server --port=6399 &
 *   $ redis-cli -p 6399 SET 42 hello
 *   OK
 *   $ redis-cli -p 6399 GET 42
 *   "hello"
 *
 * --port=0 (the default) binds an ephemeral port; the bound port is
 * announced on stdout as `resp listening on <addr>:<port>` so scripts
 * (CI's server job, scripts/verify.sh) can scrape it. --obs-port=N
 * additionally starts the HTTP ops endpoint (/metrics, /healthz — the
 * health report gains a "listener" section while the server runs).
 *
 * Runs until SIGINT/SIGTERM. --duration=SECONDS self-terminates, for
 * smoke tests that must not leak a process on failure.
 */
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/obs_server.h"
#include "common/stats.h"
#include "net/resp_server.h"
#include "ycsb/stores.h"
#include "ycsb/workload.h"

using namespace prism;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --port=N            RESP port (default 0 = ephemeral)\n"
        "  --bind=ADDR         bind address (default 127.0.0.1)\n"
        "  --shards=N          shard count (default $PRISM_SHARDS or 1)\n"
        "  --obs-port=N        HTTP ops endpoint port (0 = ephemeral;\n"
        "                      default off)\n"
        "  --inflight-cap=N    per-connection pipelined-command cap\n"
        "  --max-conns=N       connection limit\n"
        "  --quota-default=N   default per-tenant ops/s quota (0 = off)\n"
        "  --quota=SPEC        per-tenant overrides, name=rate[,...]\n"
        "  --preload=N         insert N keys before serving\n"
        "  --value-bytes=N     preload value size (default 256)\n"
        "  --duration=SECS     exit after SECS seconds (default: until\n"
        "                      SIGINT/SIGTERM)\n"
        "  --no-timing         disable simulated device timing\n",
        argv0);
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    net::RespServer::Options so;
    core::PrismOptions po;  // shards=0: defer to --shards/$PRISM_SHARDS
    po.obs_port = -1;
    uint64_t preload = 0, value_bytes = 256, duration_s = 0;
    bool model_timing = true;
    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (std::strncmp(a, "--port=", 7) == 0)
            so.port = std::atoi(a + 7);
        else if (std::strncmp(a, "--bind=", 7) == 0)
            so.bind_addr = a + 7;
        else if (std::strncmp(a, "--shards=", 9) == 0)
            po.shards = std::atoi(a + 9);
        else if (std::strncmp(a, "--obs-port=", 11) == 0)
            po.obs_port = std::atoi(a + 11);
        else if (std::strncmp(a, "--inflight-cap=", 15) == 0)
            so.inflight_cap = std::atoi(a + 15);
        else if (std::strncmp(a, "--max-conns=", 12) == 0)
            so.max_connections = std::atoi(a + 12);
        else if (std::strncmp(a, "--quota-default=", 16) == 0)
            so.quota_default_ops =
                std::strtoull(a + 16, nullptr, 10);
        else if (std::strncmp(a, "--quota=", 8) == 0)
            so.quota_spec = a + 8;
        else if (std::strncmp(a, "--preload=", 10) == 0)
            preload = std::strtoull(a + 10, nullptr, 10);
        else if (std::strncmp(a, "--value-bytes=", 14) == 0)
            value_bytes = std::strtoull(a + 14, nullptr, 10);
        else if (std::strncmp(a, "--duration=", 11) == 0)
            duration_s = std::strtoull(a + 11, nullptr, 10);
        else if (std::strcmp(a, "--no-timing") == 0)
            model_timing = false;
        else
            return usage(argv[0]);
    }
    if (so.inflight_cap <= 0 || so.max_connections <= 0)
        return usage(argv[0]);

    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.ssd_bytes = 1ull << 30;
    fx.dataset_bytes = 128ull << 20;
    fx.model_timing = model_timing;
    ycsb::PrismStore store(fx, po);

    if (preload > 0) {
        std::string value;
        for (uint64_t i = 0; i < preload; i++) {
            // Match prism_loadgen's key space: keyOf(i) masked into
            // the default tenant's 48-bit range.
            const uint64_t key =
                ycsb::OpGenerator::keyOf(i) & net::kKeyMask;
            ycsb::OpGenerator::fillValue(key, value_bytes, &value);
            store.put(key, value);
        }
        store.flushAll();
        std::fprintf(stderr, "prism_server: preloaded %llu keys\n",
                     static_cast<unsigned long long>(preload));
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    net::RespServer server(store);
    std::string err;
    if (!server.start(so, &err)) {
        std::fprintf(stderr, "prism_server: %s\n", err.c_str());
        return 1;
    }
    // The announce line is an interface: CI and verify.sh scrape the
    // port from it. Keep the format stable.
    std::printf("prism_server: resp listening on %s:%d\n",
                so.bind_addr.c_str(), server.port());
    if (store.router().obsPort() > 0)
        std::printf("prism_server: ops endpoint at http://127.0.0.1:%d\n",
                    store.router().obsPort());
    std::fflush(stdout);

    const uint64_t deadline =
        duration_s > 0 ? duration_s * 10 : UINT64_MAX;
    for (uint64_t ticks = 0; g_stop == 0 && ticks < deadline; ticks++)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.stop();
    const auto li = server.info();
    std::fprintf(stderr,
                 "prism_server: served %llu commands over %llu "
                 "connections (%llu throttled)\n",
                 static_cast<unsigned long long>(li.commands),
                 static_cast<unsigned long long>(li.accepted),
                 static_cast<unsigned long long>(li.throttled));
    return 0;
}
