/**
 * @file
 * Example: a web session store — the write-intensive, skewed workload
 * class the paper's introduction motivates (caching/serving tiers).
 *
 * Many concurrent clients update a hot set of session records and read
 * them back; a background sweeper deletes expired sessions. Shows
 * multi-threaded use of the public API, the PWB absorbing the write
 * burst, and stats introspection.
 */
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"

using namespace prism;

namespace {

std::string
sessionBlob(uint64_t user, uint64_t version)
{
    // ~300 B of "serialized session state".
    std::string blob = "user=" + std::to_string(user) +
                       ";v=" + std::to_string(version) + ";cart=";
    blob.resize(300, 'x');
    return blob;
}

}  // namespace

int
main()
{
    auto nvm = std::make_shared<sim::NvmDevice>(512ull << 20);
    auto region = std::make_shared<pmem::PmemRegion>(nvm, true);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds = {
        std::make_shared<sim::SsdDevice>(2ull << 30),
        std::make_shared<sim::SsdDevice>(2ull << 30),
    };
    core::PrismOptions opts;
    opts.pwb_size_bytes = 1 << 20;  // small PWBs: reclamation is active
    auto db = core::PrismDb::open(opts, region, ssds);

    constexpr int kClients = 4;
    constexpr uint64_t kUsers = 50000;
    constexpr uint64_t kOpsPerClient = 30000;

    std::atomic<uint64_t> reads{0}, writes{0}, expired{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; c++) {
        clients.emplace_back([&, c] {
            Xorshift rng(static_cast<uint64_t>(c) + 1);
            // Sessions are highly skewed: a few users are very active.
            ZipfianGenerator zipf(kUsers, 0.99,
                                  static_cast<uint64_t>(c) + 100);
            std::string value;
            for (uint64_t i = 0; i < kOpsPerClient; i++) {
                const uint64_t user = hash64(zipf.next()) % kUsers;
                if (rng.nextDouble() < 0.6) {
                    db->put(user, sessionBlob(user, i));
                    writes.fetch_add(1);
                } else {
                    if (db->get(user, &value).isNotFound())
                        db->put(user, sessionBlob(user, 0));
                    reads.fetch_add(1);
                }
            }
        });
    }
    // Sweeper: expire a random slice of sessions, as a TTL pass would.
    std::thread sweeper([&] {
        Xorshift rng(999);
        for (int pass = 0; pass < 20; pass++) {
            for (int i = 0; i < 500; i++) {
                if (db->del(rng.nextUniform(kUsers)).isOk())
                    expired.fetch_add(1);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    for (auto &t : clients)
        t.join();
    sweeper.join();

    const auto &st = db->opStats();
    std::printf("sessions live:      %zu\n", db->size());
    std::printf("client reads:       %llu (SVC hits %llu, PWB hits %llu, "
                "SSD reads %llu)\n",
                static_cast<unsigned long long>(reads.load()),
                static_cast<unsigned long long>(st.svc_hits.load()),
                static_cast<unsigned long long>(st.pwb_hits.load()),
                static_cast<unsigned long long>(st.vs_reads.load()));
    std::printf("client writes:      %llu (stale versions skipped at "
                "reclaim: %llu)\n",
                static_cast<unsigned long long>(writes.load()),
                static_cast<unsigned long long>(
                    st.reclaim_skipped_stale.load()));
    std::printf("sessions expired:   %llu\n",
                static_cast<unsigned long long>(expired.load()));
    std::printf("SSD bytes written:  %.1f MB for %.1f MB of user data "
                "(WAF %.2f)\n",
                static_cast<double>(db->ssdBytesWritten()) / 1e6,
                static_cast<double>(st.user_bytes_written.load()) / 1e6,
                static_cast<double>(db->ssdBytesWritten()) /
                    static_cast<double>(st.user_bytes_written.load()));
    return 0;
}
