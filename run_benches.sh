#!/bin/bash
# Runs bench binaries sequentially, echoing a banner per binary, and
# assembles the machine-readable rows the benches emit (via
# PRISM_BENCH_JSON, see bench/bench_util.h) into BENCH_pr2.json:
# fig16 scalability (throughput + pwb_stalls per thread count) and the
# fig12 WAF summary.
#
# Usage: ./run_benches.sh [name-filter ...]
#   With no arguments every build/bench/* binary runs; otherwise only
#   binaries whose basename contains one of the filters, e.g.
#   `./run_benches.sh fig16 fig12` for just the BENCH_pr2.json inputs.
cd /root/repo

ROWS=$(mktemp /tmp/prism_bench_rows.XXXXXX)
trap 'rm -f "$ROWS"' EXIT
export PRISM_BENCH_JSON="$ROWS"

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  if [ "$#" -gt 0 ]; then
    keep=0
    for f in "$@"; do
      case "$(basename "$b")" in *"$f"*) keep=1 ;; esac
    done
    [ "$keep" = 1 ] || continue
  fi
  echo ""
  echo "##### $(basename $b) #####"
  timeout 1800 "$b" 2>&1
  echo "##### exit=$? #####"
done

# Regroup the JSON-lines rows by figure into one document.
if [ -s "$ROWS" ]; then
  awk '
    /"figure": "fig16"/ { f16[n16++] = $0 }
    /"figure": "fig12"/ { f12[n12++] = $0 }
    END {
      print "{"
      printf "  \"fig16_scalability\": [\n"
      for (i = 0; i < n16; i++)
        printf "    %s%s\n", f16[i], (i + 1 < n16 ? "," : "")
      print "  ],"
      printf "  \"fig12_waf\": [\n"
      for (i = 0; i < n12; i++)
        printf "    %s%s\n", f12[i], (i + 1 < n12 ? "," : "")
      print "  ]"
      print "}"
    }
  ' "$ROWS" > BENCH_pr2.json
  echo ""
  echo "##### wrote BENCH_pr2.json ($(grep -c '"figure"' "$ROWS") rows) #####"
fi
