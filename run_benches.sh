#!/bin/bash
# Runs every bench binary sequentially, echoing a banner per binary.
cd /root/repo
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo ""
  echo "##### $(basename $b) #####"
  timeout 1800 "$b" 2>&1
  echo "##### exit=$? #####"
done
