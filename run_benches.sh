#!/bin/bash
# Runs bench binaries sequentially, echoing a banner per binary, and
# assembles the machine-readable rows the benches emit (via
# PRISM_BENCH_JSON, see bench/bench_util.h) into ONE document, grouped
# by figure tag: $PRISM_BENCH_OUT, default BENCH_pr4.json.
#
# Committed BENCH_pr<N>.json files from earlier PRs are immutable
# baselines for scripts/bench_compare.py — this script never rewrites
# them. (It used to regenerate every document on every run, so a
# filtered run would silently replace a full baseline with a partial
# row set.) To regenerate an old document on purpose:
#   PRISM_BENCH_OUT=BENCH_pr2.json ./run_benches.sh fig16 fig12
#
# Usage: ./run_benches.sh [name-filter ...]
#   With no arguments every build/bench/* binary runs and the document
#   is assembled; with filters, only matching binaries run and the
#   document is only assembled when PRISM_BENCH_OUT is set (a partial
#   run makes a partial document, which must be opted into).
#
# PRISM_BENCH_BACKEND={sim,posix,uring,auto} runs Prism against a real-
# file I/O backend instead of the simulator (docs/IO_BACKENDS.md); the
# rows then carry a "backend" field and the default document is NOT
# assembled — real-file rows are a different machine, not a new
# simulator baseline. Set PRISM_BENCH_OUT explicitly to collect them.
cd /root/repo

OUT="${PRISM_BENCH_OUT:-}"
BACKEND="${PRISM_BENCH_BACKEND:-${PRISM_IO_BACKEND:-sim}}"
if [ -z "$OUT" ] && [ "$#" -eq 0 ] && [ "$BACKEND" = sim ]; then
  OUT=BENCH_pr4.json
fi

ROWS=$(mktemp /tmp/prism_bench_rows.XXXXXX)
trap 'rm -f "$ROWS"' EXIT
export PRISM_BENCH_JSON="$ROWS"

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  if [ "$#" -gt 0 ]; then
    keep=0
    for f in "$@"; do
      case "$(basename "$b")" in *"$f"*) keep=1 ;; esac
    done
    [ "$keep" = 1 ] || continue
  fi
  echo ""
  echo "##### $(basename $b) #####"
  timeout 1800 "$b" 2>&1
  echo "##### exit=$? #####"
done

# Regroup the JSON-lines rows into one document, one array per figure
# tag, in first-seen order.
if [ -n "$OUT" ] && [ -s "$ROWS" ]; then
  awk '
    match($0, /"figure": ?"[A-Za-z0-9_]+"/) {
      tag = substr($0, RSTART, RLENGTH)
      sub(/^"figure": ?"/, "", tag)
      sub(/"$/, "", tag)
      if (!(tag in cnt)) order[n++] = tag
      rows[tag, cnt[tag]++] = $0
    }
    END {
      print "{"
      for (i = 0; i < n; i++) {
        tag = order[i]
        printf "  \"%s\": [\n", tag
        for (j = 0; j < cnt[tag]; j++)
          printf "    %s%s\n", rows[tag, j], (j + 1 < cnt[tag] ? "," : "")
        printf "  ]%s\n", (i + 1 < n ? "," : "")
      }
      print "}"
    }
  ' "$ROWS" > "$OUT"
  echo ""
  echo "##### wrote $OUT ($(grep -c '"figure"' "$ROWS") rows) #####"
elif [ -s "$ROWS" ]; then
  echo ""
  echo "##### filtered or non-sim run: not assembling a document (set PRISM_BENCH_OUT to opt in) #####"
fi
