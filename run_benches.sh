#!/bin/bash
# Runs bench binaries sequentially, echoing a banner per binary, and
# assembles the machine-readable rows the benches emit (via
# PRISM_BENCH_JSON, see bench/bench_util.h) into per-PR documents:
#   BENCH_pr2.json — fig16 scalability (throughput + pwb_stalls per
#     thread count) and the fig12 WAF summary;
#   BENCH_pr3.json — fig17 GC/reclaim timeline (tracer-driven, with the
#     trace layer-coverage row), tab03 latency incl. slow-op counts,
#     and the fig16 rows again as the tracing-disabled regression
#     reference.
#
# Usage: ./run_benches.sh [name-filter ...]
#   With no arguments every build/bench/* binary runs; otherwise only
#   binaries whose basename contains one of the filters, e.g.
#   `./run_benches.sh fig16 fig12` for just the BENCH_pr2.json inputs.
cd /root/repo

ROWS=$(mktemp /tmp/prism_bench_rows.XXXXXX)
trap 'rm -f "$ROWS"' EXIT
export PRISM_BENCH_JSON="$ROWS"

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  if [ "$#" -gt 0 ]; then
    keep=0
    for f in "$@"; do
      case "$(basename "$b")" in *"$f"*) keep=1 ;; esac
    done
    [ "$keep" = 1 ] || continue
  fi
  echo ""
  echo "##### $(basename $b) #####"
  timeout 1800 "$b" 2>&1
  echo "##### exit=$? #####"
done

# Regroup the JSON-lines rows by figure into one document per PR.
if [ -s "$ROWS" ]; then
  awk '
    /"figure": ?"fig16"/ { f16[n16++] = $0 }
    /"figure": ?"fig12"/ { f12[n12++] = $0 }
    END {
      print "{"
      printf "  \"fig16_scalability\": [\n"
      for (i = 0; i < n16; i++)
        printf "    %s%s\n", f16[i], (i + 1 < n16 ? "," : "")
      print "  ],"
      printf "  \"fig12_waf\": [\n"
      for (i = 0; i < n12; i++)
        printf "    %s%s\n", f12[i], (i + 1 < n12 ? "," : "")
      print "  ]"
      print "}"
    }
  ' "$ROWS" > BENCH_pr2.json
  awk '
    /"figure": ?"fig17"/ { f17[n17++] = $0 }
    /"figure": ?"tab03"/ { t03[n03++] = $0 }
    /"figure": ?"fig16"/ { f16[n16++] = $0 }
    END {
      print "{"
      printf "  \"fig17_gc_timeline\": [\n"
      for (i = 0; i < n17; i++)
        printf "    %s%s\n", f17[i], (i + 1 < n17 ? "," : "")
      print "  ],"
      printf "  \"tab03_latency\": [\n"
      for (i = 0; i < n03; i++)
        printf "    %s%s\n", t03[i], (i + 1 < n03 ? "," : "")
      print "  ],"
      printf "  \"fig16_tracing_disabled_reference\": [\n"
      for (i = 0; i < n16; i++)
        printf "    %s%s\n", f16[i], (i + 1 < n16 ? "," : "")
      print "  ]"
      print "}"
    }
  ' "$ROWS" > BENCH_pr3.json
  echo ""
  echo "##### wrote BENCH_pr2.json + BENCH_pr3.json ($(grep -c '"figure"' "$ROWS") rows) #####"
fi
