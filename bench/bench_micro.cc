/**
 * @file
 * google-benchmark microbenchmarks for the individual components:
 * PacTree operations, HSIT durable pointer updates, PWB appends,
 * workload generators and the latency histogram. Device timing is
 * disabled — these measure the software paths themselves.
 */
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "core/hsit.h"
#include "core/pwb.h"
#include "index/pactree.h"
#include "pmem/pmem_allocator.h"
#include "sim/device_profile.h"

namespace prism {
namespace {

struct PmemFixture {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::unique_ptr<pmem::PmemRegion> region;
    std::unique_ptr<pmem::PmemAllocator> alloc;

    explicit PmemFixture(uint64_t bytes = 512ull << 20)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            bytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_unique<pmem::PmemRegion>(nvm, true);
        alloc = std::make_unique<pmem::PmemAllocator>(*region);
    }
};

void
BM_PacTreeInsert(benchmark::State &state)
{
    PmemFixture fx;
    auto tree = index::PacTree::create(*fx.region, *fx.alloc);
    uint64_t i = 0;
    for (auto _ : state)
        tree->insertOrGet(hash64(i++), i);
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_PacTreeInsert);

void
BM_PacTreeLookup(benchmark::State &state)
{
    PmemFixture fx;
    auto tree = index::PacTree::create(*fx.region, *fx.alloc);
    constexpr uint64_t kKeys = 200000;
    for (uint64_t i = 0; i < kKeys; i++)
        tree->insertOrGet(hash64(i), i);
    Xorshift rng(7);
    uint64_t found = 0;
    for (auto _ : state) {
        const auto r = tree->lookup(hash64(rng.nextUniform(kKeys)));
        found += r.has_value();
    }
    benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_PacTreeLookup);

void
BM_PacTreeScan50(benchmark::State &state)
{
    PmemFixture fx;
    auto tree = index::PacTree::create(*fx.region, *fx.alloc);
    constexpr uint64_t kKeys = 200000;
    for (uint64_t i = 0; i < kKeys; i++)
        tree->insertOrGet(hash64(i), i);
    Xorshift rng(7);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (auto _ : state) {
        out.clear();
        tree->scan(rng.next(), 50, out);
    }
}
BENCHMARK(BM_PacTreeScan50);

void
BM_HsitDurableCas(benchmark::State &state)
{
    PmemFixture fx;
    auto hsit = core::Hsit::create(*fx.region, *fx.alloc, 1024);
    const uint64_t idx = hsit->allocEntry();
    uint64_t off = 64;
    for (auto _ : state) {
        const core::ValueAddr old = hsit->loadPrimary(idx);
        hsit->casPrimaryDurable(idx, old,
                                core::ValueAddr::pwb(off, 64));
        off += 64;
        if (off > (1 << 20))
            off = 64;
    }
}
BENCHMARK(BM_HsitDurableCas);

void
BM_PwbAppend1K(benchmark::State &state)
{
    PmemFixture fx;
    auto pwb = core::Pwb::create(*fx.region, *fx.alloc, 64ull << 20);
    std::string value(1024, 'v');
    uint64_t key = 0;
    for (auto _ : state) {
        core::ValueAddr a = pwb->append(key % 512, key, value.data(),
                                        static_cast<uint32_t>(
                                            value.size()));
        pwb->markPublished();
        if (a.isNull()) {
            // Recycle the whole buffer; appends outside timing scope.
            state.PauseTiming();
            pwb->advanceHead(pwb->tailLogical());
            state.ResumeTiming();
        }
        key++;
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            1024);
}
BENCHMARK(BM_PwbAppend1K);

void
BM_ZipfianNext(benchmark::State &state)
{
    ZipfianGenerator zipf(100000000, 0.99, 3);
    uint64_t x = 0;
    for (auto _ : state)
        x += zipf.next();
    benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_ZipfianNext);

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    Xorshift rng(5);
    for (auto _ : state)
        h.record(rng.nextUniform(1000000));
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace prism

// Custom main (vs BENCHMARK_MAIN()): peel off the bench_util flags
// (--stats, --trace=, --telemetry=, --profile=) before
// google-benchmark rejects them as unrecognized.
int
main(int argc, char **argv)
{
    prism::bench::maybeDumpStatsAtExit(argc, argv);
    prism::bench::maybeTraceToFileAtExit(argc, argv);
    prism::bench::maybeProfileToFileAtExit(argc, argv);
    prism::bench::maybeTelemetryToFileAtExit(argc, argv);
    std::vector<char *> args;
    for (int i = 0; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a != "--stats" && a != "--stats=json" &&
            a.rfind("--trace=", 0) != 0 &&
            a.rfind("--telemetry=", 0) != 0 &&
            a.rfind("--profile=", 0) != 0)
            args.push_back(argv[i]);
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
