/**
 * @file
 * Figure 10: (a) YCSB on a dataset several times larger than the main
 * runs (the paper's 1-billion-key experiment, scaled), Prism vs KVell;
 * (b) the Nutanix production mix (57% update / 41% read / 2% scan).
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.records = envOr("PRISM_BENCH_RECORDS", 100000) * 4;  // "1B" scale-up
    printScale(s);
    std::printf("== Figure 10a: large dataset, Prism vs KVell ==\n");

    for (const char *name : {"Prism", "KVell"}) {
        auto store = makeStore(name, fixtureFor(s));
        loadDataset(*store, s);
        for (const Mix mix :
             {Mix::kA, Mix::kB, Mix::kC, Mix::kD, Mix::kE}) {
            const uint64_t ops = mix == Mix::kE ? s.ops / 10 : s.ops;
            const RunResult r = runMix(*store, mix, s, 0.99, ops);
            printThroughputRow(name, ycsb::mixName(mix), r);
        }
        std::printf("== Figure 10b: Nutanix production mix ==\n");
        const RunResult r = runMix(*store, Mix::kNutanix, s);
        printThroughputRow(name, "Nutanix", r);
    }
    return 0;
}
