/**
 * @file
 * Extension experiment (paper §8 discussion): does Prism's design carry
 * over to post-Optane, CXL-attached persistent memory?
 *
 * Runs the same YCSB mixes with the NVM components (Key Index, HSIT,
 * PWB) on (a) Optane DCPMM and (b) a prospective CXL-NVM profile
 * (~2.5x the load latency, higher bandwidth). The paper argues the
 * architecture only needs *a* low-latency byte-addressable tier; the
 * expectation is a modest, latency-driven slowdown — not a collapse.
 */
#include "bench_util.h"

#include "pmem/pmem_region.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    printScale(s);
    std::printf("== Extension (§8): Prism on DCPMM vs CXL-NVM ==\n");

    struct NvmChoice {
        const char *name;
        const sim::DeviceProfile *profile;
    };
    const NvmChoice choices[] = {
        {"Optane-DCPMM", &sim::kOptaneDcpmmProfile},
        {"CXL-NVM", &sim::kCxlNvmProfile},
    };

    for (const auto &choice : choices) {
        // Build the store manually so the NVM profile is swappable.
        FixtureOptions fx = fixtureFor(s);
        core::PrismOptions opts;
        const uint64_t pwb_total =
            std::max<uint64_t>(fx.dataset_bytes * 16 / 100, 16 << 20);
        opts.pwb_size_bytes = std::max<uint64_t>(
            pwb_total / static_cast<uint64_t>(fx.expected_threads),
            2 << 20);
        opts.pwb_size_bytes &= ~63ull;
        opts.svc_capacity_bytes =
            std::max<uint64_t>(fx.dataset_bytes * 20 / 100, 16 << 20);
        const uint64_t nvm_bytes =
            pwb_total * 2 + opts.hsit_capacity * 32 +
            std::max<uint64_t>(fx.dataset_bytes / 4, 128 << 20);
        auto nvm = std::make_shared<sim::NvmDevice>(
            nvm_bytes, *choice.profile, fx.model_timing);
        auto region =
            std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
        std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
        for (int i = 0; i < fx.num_ssds; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                fx.ssd_bytes, fx.ssd_profile, fx.model_timing));
        }
        auto db = core::PrismDb::open(opts, region, ssds);

        struct Shim : ycsb::KvStore {
            core::PrismDb *db;
            std::string name() const override { return "Prism"; }
            Status put(uint64_t k, std::string_view v) override {
                return db->put(k, v);
            }
            Status get(uint64_t k, std::string *v) override {
                return db->get(k, v);
            }
            Status del(uint64_t k) override { return db->del(k); }
            Status
            scan(uint64_t k, size_t n,
                 std::vector<std::pair<uint64_t, std::string>> *out)
                override
            {
                return db->scan(k, n, out);
            }
            void flushAll() override { db->flushAll(); }
        } shim;
        shim.db = db.get();

        loadDataset(shim, s);
        for (const Mix mix : {Mix::kA, Mix::kC, Mix::kE}) {
            const uint64_t ops = mix == Mix::kE ? s.ops / 10 : s.ops;
            const RunResult r = runMix(shim, mix, s, 0.99, ops);
            std::printf("%-13s %-8s %9.1f Kops/s  (avg %7.1fus  p99 "
                        "%7.1fus)\n",
                        choice.name, ycsb::mixName(mix),
                        r.throughput() / 1e3, r.overall.mean() / 1e3,
                        static_cast<double>(r.overall.percentile(0.99)) /
                            1e3);
            std::fflush(stdout);
        }
    }
    return 0;
}
