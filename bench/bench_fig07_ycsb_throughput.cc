/**
 * @file
 * Figure 7: YCSB throughput of Prism vs KVell vs MatrixKV vs
 * RocksDB-NVM (LOAD, A, B, C, D in ops/s; E in scans/s).
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    // The paper runs as many operations as there are records.
    s.ops = envOr("PRISM_BENCH_OPS", s.records);
    printScale(s);
    std::printf("== Figure 7: YCSB throughput (Zipfian 0.99) ==\n");

    for (const char *name :
         {"Prism", "KVell", "MatrixKV", "RocksDB-NVM"}) {
        auto store = makeStore(name, fixtureFor(s));

        // LOAD: time the insert phase itself.
        WorkloadSpec load = WorkloadSpec::forMix(Mix::kLoad, s.records, 0);
        load.value_bytes = s.value_bytes;
        const RunResult loaded = ycsb::loadPhase(*store, load, s.threads);
        printThroughputRow(name, "LOAD", loaded);
        store->flushAll();

        for (const Mix mix :
             {Mix::kA, Mix::kB, Mix::kC, Mix::kD, Mix::kE}) {
            // Workload E issues fewer, much heavier operations.
            const uint64_t ops = mix == Mix::kE ? s.ops / 10 : s.ops;
            const RunResult r = runMix(*store, mix, s, 0.99, ops);
            printThroughputRow(name, ycsb::mixName(mix), r);
        }
    }
    return 0;
}
