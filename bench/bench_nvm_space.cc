/**
 * @file
 * §7.6 "Size of NVM space": NVM consumed by the Persistent Key Index
 * and the HSIT as the key count grows (the paper reports ~5.4 GB for
 * 100 M keys — about 54 B/key).
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    std::printf("== NVM space of Key Index + HSIT ==\n");
    for (const uint64_t keys : {50000ull, 100000ull, 200000ull,
                                400000ull}) {
        BenchScale s;
        s.records = keys;
        s.ops = 0;
        FixtureOptions fx = fixtureFor(s);
        fx.model_timing = false;  // space experiment, not timing
        core::PrismOptions opts;
        opts.hsit_capacity = keys * 2;
        ycsb::PrismStore store(fx, opts);
        loadDataset(store, s);
        const uint64_t bytes = store.db().nvmIndexBytes();
        std::printf("%8llu keys: %8.1f MB NVM (%5.1f B/key)\n",
                    static_cast<unsigned long long>(keys),
                    static_cast<double>(bytes) / 1e6,
                    static_cast<double>(bytes) /
                        static_cast<double>(keys));
        std::fflush(stdout);
    }
    return 0;
}
