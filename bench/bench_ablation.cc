/**
 * @file
 * §7.6 "Impact of individual techniques": ablates Prism's design
 * choices one at a time —
 *
 *   full           everything on (baseline)
 *   no-svc         Scan-aware Value Cache disabled
 *   no-scan-reorg  SVC on, scan-range reorganisation off
 *   no-combining   reads submitted one by one (QD 1, no TCQ)
 *   timeout-async  TA batching instead of thread combining
 *   small-chunks   4 KB Value Storage chunks instead of 512 KB
 *                  (ablates the asynchronous bandwidth-optimized write)
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

namespace {

struct Variant {
    const char *name;
    core::PrismOptions opts;
};

}  // namespace

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    printScale(s);
    std::printf("== Ablation of Prism's techniques (LOAD/A/C/E) ==\n");

    std::vector<Variant> variants;
    variants.push_back({"full", {}});
    {
        core::PrismOptions o;
        o.enable_svc = false;
        variants.push_back({"no-svc", o});
    }
    {
        core::PrismOptions o;
        o.enable_scan_reorg = false;
        variants.push_back({"no-scan-reorg", o});
    }
    {
        core::PrismOptions o;
        o.read_batch_mode = core::ReadBatchMode::kNone;
        variants.push_back({"no-combining", o});
    }
    {
        core::PrismOptions o;
        o.read_batch_mode = core::ReadBatchMode::kTimeoutAsync;
        variants.push_back({"timeout-async", o});
    }
    {
        core::PrismOptions o;
        o.chunk_bytes = 4 * 1024;
        variants.push_back({"small-chunks", o});
    }

    // Single-core run-to-run variance is large; average several
    // repetitions of each mix on the same loaded store.
    constexpr int kReps = 3;
    auto mean_tput = [&](KvStore &store, Mix mix, const BenchScale &bs,
                         uint64_t ops) {
        double sum = 0;
        for (int rep = 0; rep < kReps; rep++)
            sum += runMix(store, mix, bs, 0.99, ops).throughput();
        return sum / kReps;
    };

    for (auto &v : variants) {
        FixtureOptions fx = fixtureFor(s);
        ycsb::PrismStore store(fx, v.opts);
        WorkloadSpec load = WorkloadSpec::forMix(Mix::kLoad, s.records, 0);
        load.value_bytes = s.value_bytes;
        const RunResult lr = ycsb::loadPhase(store, load, s.threads);
        store.flushAll();
        const double a = mean_tput(store, Mix::kA, s, s.ops);
        const double c = mean_tput(store, Mix::kC, s, s.ops);
        const double e = mean_tput(store, Mix::kE, s, s.ops / 10);
        std::printf("%-14s LOAD=%8.1fK  A=%8.1fK  C=%8.1fK  E=%7.1fK\n",
                    v.name, lr.throughput() / 1e3, a / 1e3, c / 1e3,
                    e / 1e3);
        std::fflush(stdout);
    }
    return 0;
}
