/**
 * @file
 * §7.6 "Recovery time": Prism vs KVell after a crash with a loaded
 * dataset. Prism walks the Persistent Key Index and re-couples the
 * HSIT; KVell must scan every slab page on every SSD to rebuild its
 * in-memory indexes.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    printScale(s);
    std::printf("== Recovery time after crash ==\n");

    {
        FixtureOptions fx = fixtureFor(s);
        core::PrismOptions opts;
        ycsb::PrismStore store(fx, opts);
        loadDataset(store, s);
        const uint64_t ns = store.crashAndRecover(opts);
        std::printf("Prism : %8.1f ms (recovered %zu keys)\n",
                    static_cast<double>(ns) / 1e6, store.db().size());
    }
    {
        FixtureOptions fx = fixtureFor(s);
        ycsb::KvellStore store(fx, kvell::KvellOptions{});
        loadDataset(store, s);
        const uint64_t ns = store.db().recoverByFullScan();
        std::printf("KVell : %8.1f ms (recovered %zu keys)\n",
                    static_cast<double>(ns) / 1e6, store.db().size());
    }
    return 0;
}
