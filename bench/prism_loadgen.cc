/**
 * @file
 * prism_loadgen — wire-level *open-loop* load generator for
 * prism_server (docs/SERVER.md; the `fig_overload_slo` figure).
 *
 * Why open-loop: every other bench in this repo is closed-loop — N
 * client threads each wait for a reply before sending the next request
 * — and a closed-loop client *slows down with the server*, hiding
 * queueing delay exactly when the server is overloaded. An open-loop
 * generator fixes the *arrival* schedule up front (`--rate` requests
 * per second, Poisson or uniform spacing) and measures each request's
 * latency from its SCHEDULED arrival time, not from the moment the
 * socket finally accepted it. A request that had to queue behind a
 * stalled pipeline therefore counts its queueing time — the
 * coordinated-omission correction. That makes p99/p999 vs offered
 * load an honest overload figure.
 *
 * The generator speaks RESP over --conns TCP connections, pipelining
 * up to --pipeline requests per connection, with YCSB A/B/C/E op
 * mixes reusing the repo's generators (ycsb::OpGenerator). `--rate=0`
 * degrades to closed-loop (always --pipeline outstanding), which is
 * what `--load` uses to preload the dataset at full speed.
 *
 * Output: one human-readable summary line plus (with
 * PRISM_BENCH_JSON=<path>) a bench_compare-compatible JSON row tagged
 * `"figure": "fig_overload_slo"`.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "net/resp.h"
#include "net/resp_server.h"
#include "ycsb/workload.h"

using namespace prism;

namespace {

struct Config {
    std::string host = "127.0.0.1";
    int port = 0;
    ycsb::Mix mix = ycsb::Mix::kC;
    std::string mix_name = "C";
    double rate = 0;            ///< total offered ops/s; 0 = closed loop
    bool poisson = true;        ///< arrival spacing
    uint64_t duration_s = 30;
    uint64_t records = 100000;
    uint32_t value_bytes = 256;
    int conns = 4;
    int pipeline = 64;
    bool load = false;          ///< preload records, then exit
    std::string tenant;         ///< AUTH before the run
};

/** One request in flight: its scheduled arrival stamp. */
struct Inflight {
    uint64_t sched_ns;
};

struct WorkerResult {
    Histogram lat;
    uint64_t sent = 0;
    uint64_t completed = 0;
    uint64_t errors = 0;
};

int
dialServer(const Config &cfg)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(cfg.port));
    if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

/** Append one RESP command for @p op to @p out. */
void
encodeOp(const ycsb::Op &op, uint32_t value_bytes, std::string *scratch,
         std::string *out)
{
    const uint64_t key = op.key & net::kKeyMask;
    const std::string keystr = std::to_string(key);
    switch (op.type) {
      case ycsb::OpType::kInsert:
      case ycsb::OpType::kUpdate:
        ycsb::OpGenerator::fillValue(key, value_bytes, scratch);
        net::encodeCommand(out, {"SET", keystr, *scratch});
        return;
      case ycsb::OpType::kRead:
        net::encodeCommand(out, {"GET", keystr});
        return;
      case ycsb::OpType::kScan:
        net::encodeCommand(out, {"SCAN", keystr, "COUNT",
                                 std::to_string(op.scan_len)});
        return;
    }
}

/**
 * One connection's worth of the run. Arrival times are scheduled per
 * connection at rate/conns; when the pipeline cap or the socket stalls,
 * later requests keep their original scheduled stamps, so their
 * recorded latency includes the time they spent queued locally — the
 * open-loop/coordinated-omission contract.
 */
void
runWorker(const Config &cfg, int worker_id, uint64_t deadline_ns,
          WorkerResult *res)
{
    const int fd = dialServer(cfg);
    if (fd < 0) {
        std::fprintf(stderr, "loadgen: connect to %s:%d failed: %s\n",
                     cfg.host.c_str(), cfg.port, std::strerror(errno));
        res->errors++;
        return;
    }

    ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::forMix(
        cfg.load ? ycsb::Mix::kLoad : cfg.mix, cfg.records, 0);
    spec.value_bytes = cfg.value_bytes;
    ycsb::OpGenerator gen(spec,
                          0x9e3779b9u + static_cast<uint64_t>(worker_id));
    Xorshift rng(0xdecafbad + static_cast<uint64_t>(worker_id) * 7919);

    // The load phase splits the insert space statically: worker w
    // inserts items [w*per, w*per+per).
    const uint64_t per_worker =
        (cfg.records + static_cast<uint64_t>(cfg.conns) - 1) /
        static_cast<uint64_t>(cfg.conns);
    uint64_t load_next =
        static_cast<uint64_t>(worker_id) * per_worker;
    const uint64_t load_end =
        std::min(load_next + per_worker, cfg.records);

    const double per_conn_rate =
        cfg.rate > 0 ? cfg.rate / cfg.conns : 0;
    const double mean_gap_ns =
        per_conn_rate > 0 ? 1e9 / per_conn_rate : 0;
    auto nextGap = [&]() -> uint64_t {
        if (mean_gap_ns <= 0)
            return 0;
        if (!cfg.poisson)
            return static_cast<uint64_t>(mean_gap_ns);
        // Exponential inter-arrival: -ln(U) * mean, U in (0, 1].
        const double u = 1.0 - rng.nextDouble();
        return static_cast<uint64_t>(-std::log(u) * mean_gap_ns);
    };

    std::string out, scratch, in;
    size_t out_sent = 0;
    std::deque<Inflight> inflight;
    uint64_t sched_ns = nowNs() + nextGap();
    bool done_sending = false;

    if (!cfg.tenant.empty()) {
        net::encodeCommand(&out, {"AUTH", cfg.tenant});
        inflight.push_back({nowNs()});
    }

    while (!done_sending || !inflight.empty()) {
        const uint64_t now = nowNs();

        // Enqueue every op whose scheduled arrival has passed (or, in
        // closed-loop mode, top the pipeline up), respecting the cap.
        while (inflight.size() < static_cast<size_t>(cfg.pipeline) &&
               !done_sending) {
            if (cfg.load) {
                if (load_next >= load_end) {
                    done_sending = true;
                    break;
                }
                const uint64_t key =
                    ycsb::OpGenerator::keyOf(load_next++) &
                    net::kKeyMask;
                ycsb::OpGenerator::fillValue(key, cfg.value_bytes,
                                             &scratch);
                net::encodeCommand(
                    &out, {"SET", std::to_string(key), scratch});
                inflight.push_back({now});
                res->sent++;
                continue;
            }
            if (now >= deadline_ns) {
                done_sending = true;
                break;
            }
            if (cfg.rate > 0 && sched_ns > now)
                break;  // next arrival is in the future
            const ycsb::Op op = gen.next();
            encodeOp(op, cfg.value_bytes, &scratch, &out);
            inflight.push_back(
                {cfg.rate > 0 ? sched_ns : now});
            res->sent++;
            if (cfg.rate > 0)
                sched_ns += nextGap();
        }

        // Write what we can, then wait for readable / next arrival.
        if (out_sent < out.size()) {
            const ssize_t w = ::send(fd, out.data() + out_sent,
                                     out.size() - out_sent,
                                     MSG_NOSIGNAL | MSG_DONTWAIT);
            if (w > 0)
                out_sent += static_cast<size_t>(w);
            else if (w < 0 && errno != EAGAIN &&
                     errno != EWOULDBLOCK) {
                res->errors++;
                break;
            }
            if (out_sent >= out.size()) {
                out.clear();
                out_sent = 0;
            }
        }

        if (inflight.empty())
            continue;
        pollfd pfd{fd, POLLIN, 0};
        if (out_sent < out.size())
            pfd.events |= POLLOUT;
        int timeout_ms = 100;
        if (!cfg.load && cfg.rate > 0 && !done_sending &&
            inflight.size() < static_cast<size_t>(cfg.pipeline)) {
            const uint64_t next_in =
                sched_ns > now ? (sched_ns - now) / 1000000ull : 0;
            timeout_ms = static_cast<int>(
                std::min<uint64_t>(next_in, 100));
        }
        if (::poll(&pfd, 1, timeout_ms) < 0 && errno != EINTR) {
            res->errors++;
            break;
        }
        if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR)))
            continue;

        char buf[65536];
        const ssize_t r = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (r == 0 || (r < 0 && errno != EAGAIN &&
                       errno != EWOULDBLOCK && errno != EINTR)) {
            if (!inflight.empty())
                res->errors++;
            break;
        }
        if (r < 0)
            continue;
        in.append(buf, static_cast<size_t>(r));
        size_t consumed = 0;
        while (!inflight.empty()) {
            net::RespReply reply;
            const size_t used = net::parseReply(
                std::string_view(in).substr(consumed), &reply);
            if (used == 0)
                break;
            if (used == SIZE_MAX) {
                std::fprintf(stderr,
                             "loadgen: malformed reply from server\n");
                res->errors++;
                inflight.clear();
                done_sending = true;
                break;
            }
            consumed += used;
            const uint64_t done = nowNs();
            res->lat.record(done - inflight.front().sched_ns);
            res->completed++;
            if (reply.isError()) {
                if (res->errors == 0)
                    std::fprintf(stderr,
                                 "loadgen: server error reply: %s\n",
                                 reply.str.c_str());
                res->errors++;
            }
            inflight.pop_front();
        }
        in.erase(0, consumed);
    }
    ::close(fd);
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port=N [options]\n"
        "  --host=ADDR       server address (default 127.0.0.1)\n"
        "  --mix=a|b|c|e     YCSB mix (default c)\n"
        "  --rate=N          offered load, total ops/s (0 = closed "
        "loop)\n"
        "  --spacing=poisson|uniform   arrival process (default "
        "poisson)\n"
        "  --duration=SECS   run length (default 30)\n"
        "  --records=N       key-space size (default 100000)\n"
        "  --value-bytes=N   SET payload size (default 256)\n"
        "  --conns=N         connections (default 4)\n"
        "  --pipeline=N      per-connection in-flight cap (default "
        "64)\n"
        "  --tenant=NAME     AUTH into a tenant namespace\n"
        "  --load            preload the key space (closed loop), "
        "then exit\n",
        argv0);
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (std::strncmp(a, "--host=", 7) == 0)
            cfg.host = a + 7;
        else if (std::strncmp(a, "--port=", 7) == 0)
            cfg.port = std::atoi(a + 7);
        else if (std::strncmp(a, "--mix=", 6) == 0) {
            const std::string m = a + 6;
            if (m == "a" || m == "A")
                cfg.mix = ycsb::Mix::kA, cfg.mix_name = "A";
            else if (m == "b" || m == "B")
                cfg.mix = ycsb::Mix::kB, cfg.mix_name = "B";
            else if (m == "c" || m == "C")
                cfg.mix = ycsb::Mix::kC, cfg.mix_name = "C";
            else if (m == "e" || m == "E")
                cfg.mix = ycsb::Mix::kE, cfg.mix_name = "E";
            else
                return usage(argv[0]);
        } else if (std::strncmp(a, "--rate=", 7) == 0)
            cfg.rate = std::atof(a + 7);
        else if (std::strcmp(a, "--spacing=poisson") == 0)
            cfg.poisson = true;
        else if (std::strcmp(a, "--spacing=uniform") == 0)
            cfg.poisson = false;
        else if (std::strncmp(a, "--duration=", 11) == 0)
            cfg.duration_s = std::strtoull(a + 11, nullptr, 10);
        else if (std::strncmp(a, "--records=", 10) == 0)
            cfg.records = std::strtoull(a + 10, nullptr, 10);
        else if (std::strncmp(a, "--value-bytes=", 14) == 0)
            cfg.value_bytes = static_cast<uint32_t>(
                std::strtoul(a + 14, nullptr, 10));
        else if (std::strncmp(a, "--conns=", 8) == 0)
            cfg.conns = std::atoi(a + 8);
        else if (std::strncmp(a, "--pipeline=", 11) == 0)
            cfg.pipeline = std::atoi(a + 11);
        else if (std::strncmp(a, "--tenant=", 9) == 0)
            cfg.tenant = a + 9;
        else if (std::strcmp(a, "--load") == 0)
            cfg.load = true;
        else
            return usage(argv[0]);
    }
    if (cfg.port <= 0 || cfg.conns <= 0 || cfg.pipeline <= 0 ||
        cfg.records == 0)
        return usage(argv[0]);

    const uint64_t start_ns = nowNs();
    const uint64_t deadline_ns =
        start_ns + cfg.duration_s * 1000000000ull;
    std::vector<WorkerResult> results(
        static_cast<size_t>(cfg.conns));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(cfg.conns));
    for (int w = 0; w < cfg.conns; w++)
        threads.emplace_back(runWorker, std::cref(cfg), w, deadline_ns,
                             &results[static_cast<size_t>(w)]);
    for (auto &t : threads)
        t.join();
    const double elapsed_s =
        static_cast<double>(nowNs() - start_ns) / 1e9;

    Histogram lat;
    uint64_t sent = 0, completed = 0, errors = 0;
    for (const auto &r : results) {
        lat.merge(r.lat);
        sent += r.sent;
        completed += r.completed;
        errors += r.errors;
    }
    const double achieved =
        elapsed_s > 0 ? static_cast<double>(completed) / elapsed_s : 0;

    if (cfg.load) {
        std::printf("loadgen: loaded %llu keys in %.1fs (%.1f Kops/s, "
                    "%llu errors)\n",
                    static_cast<unsigned long long>(completed),
                    elapsed_s, achieved / 1e3,
                    static_cast<unsigned long long>(errors));
        return errors == 0 ? 0 : 1;
    }

    std::printf(
        "loadgen: YCSB-%s offered=%.0f ops/s achieved=%.0f ops/s "
        "(%llu/%llu completed, %llu errors) %s\n",
        cfg.mix_name.c_str(), cfg.rate, achieved,
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(errors),
        lat.summaryUs().c_str());

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "{\"figure\": \"fig_overload_slo\", \"store\": \"Prism\", "
        "\"workload\": \"%s\", \"offered_kops\": %.1f, "
        "\"achieved_kops\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"p999_us\": %.1f, \"conns\": %d, \"pipeline\": %d, "
        "\"spacing\": \"%s\", \"errors\": %llu}",
        cfg.mix_name.c_str(), cfg.rate / 1e3, achieved / 1e3,
        static_cast<double>(lat.percentile(0.5)) / 1e3,
        static_cast<double>(lat.percentile(0.99)) / 1e3,
        static_cast<double>(lat.percentile(0.999)) / 1e3, cfg.conns,
        cfg.pipeline, cfg.poisson ? "poisson" : "uniform",
        static_cast<unsigned long long>(errors));
    bench::benchJsonRowUnsharded(row);

    // A smoke gate: the run must have actually completed work.
    return completed > 0 && errors == 0 ? 0 : 1;
}
