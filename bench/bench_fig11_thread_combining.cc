/**
 * @file
 * Figure 11: opportunistic thread combining (TC) vs timeout-based
 * asynchronous I/O (TA) for Value Storage reads, sweeping the queue
 * depth 1..64 on YCSB-C. The SVC is shrunk so reads actually hit the
 * SSD, which is what the batching policies arbitrate.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

namespace {

void
runSide(const char *label, core::ReadBatchMode mode, const BenchScale &s)
{
    for (const int qd : {1, 2, 4, 8, 16, 32, 64}) {
        core::PrismOptions opts;
        opts.read_batch_mode = mode;
        opts.read_queue_depth = qd;
        // The experiment measures the Value Storage read path: no DRAM
        // cache, so every lookup reaches the SSD.
        opts.enable_svc = false;

        FixtureOptions fx = fixtureFor(s);
        fx.derive_prism_budgets = false;
        opts.pwb_size_bytes = 8 << 20;
        ycsb::PrismStore store(fx, opts);
        loadDataset(store, s);
        const RunResult r = runMix(store, Mix::kC, s);
        std::printf("%-4s QD=%-3d %9.1f Kops/s  avg=%7.1fus p50=%7.1fus "
                    "p99=%7.1fus\n",
                    label, qd, r.throughput() / 1e3,
                    r.overall.mean() / 1e3,
                    static_cast<double>(r.overall.percentile(0.5)) / 1e3,
                    static_cast<double>(r.overall.percentile(0.99)) / 1e3);
        std::fflush(stdout);
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.records = envOr("PRISM_BENCH_RECORDS", 100000) / 2;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    printScale(s);
    std::printf("== Figure 11: thread combining (TC) vs timeout async "
                "(TA), YCSB-C ==\n");
    runSide("TC", core::ReadBatchMode::kThreadCombining, s);
    runSide("TA", core::ReadBatchMode::kTimeoutAsync, s);
    return 0;
}
