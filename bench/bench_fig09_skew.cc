/**
 * @file
 * Figure 9: relative throughput under varying data skew (Zipfian
 * coefficient 0.5 .. 1.5, normalized to 0.99) for all five stores.
 *
 * Prism's PWB+SVC make it *improve* with skew; the shared-nothing
 * KVell degrades (load imbalance across hash-partitioned workers);
 * the LSM stores improve (memtable/block-cache hits).
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    printScale(s);
    std::printf("== Figure 9: throughput vs Zipfian coefficient "
                "(normalized to 0.99) ==\n");

    const double thetas[] = {0.5, 0.9, 0.99, 1.2, 1.5};
    for (const char *name :
         {"Prism", "KVell", "MatrixKV", "RocksDB-NVM", "SLM-DB"}) {
        const bool single = std::string(name) == "SLM-DB";
        BenchScale ls = s;
        if (single) {
            ls.records = s.records / 4;
            ls.ops = s.ops / 8;
            ls.threads = 1;
        }
        FixtureOptions fx = fixtureFor(ls);
        fx.expected_threads = ls.threads;
        auto store = makeStore(name, fx);
        loadDataset(*store, ls);

        for (const Mix mix : {Mix::kA, Mix::kC, Mix::kE}) {
            double base = 0;
            std::printf("%-12s %-8s", name, ycsb::mixName(mix));
            for (const double theta : thetas) {
                const uint64_t ops =
                    mix == Mix::kE ? ls.ops / 10 : ls.ops;
                const RunResult r = runMix(*store, mix, ls, theta, ops);
                if (theta == 0.99)
                    base = r.throughput();
                std::printf("  z%.2f=%8.1fK", theta,
                            r.throughput() / 1e3);
                std::fflush(stdout);
            }
            std::printf("   (0.99 base %.1fK)\n", base / 1e3);
        }
    }
    std::printf("# note: relative values = column / z0.99 column\n");
    return 0;
}
