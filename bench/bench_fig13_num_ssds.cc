/**
 * @file
 * Figure 13: throughput vs number of aggregated SSDs (1, 2, 4, 8) for
 * write-intensive YCSB-A and read-intensive YCSB-C, Prism vs KVell.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

namespace {

/**
 * The 1-core sandbox cannot generate enough IOPS to saturate a
 * full-speed 980 Pro, which would make device count irrelevant. We
 * scale per-device bandwidth down ~100x, preserving the paper
 * testbed's bandwidth:CPU ratio (~7 GB/s x 8 SSDs : 40 cores), so the
 * bandwidth-vs-device-count tradeoff plays out at reachable op rates.
 */
prism::sim::DeviceProfile
scaledSsdProfile()
{
    prism::sim::DeviceProfile p = prism::sim::kSamsung980ProProfile;
    p.name = "ssd-980pro-scaled";
    p.read_bw_bytes_per_sec /= 100;
    p.write_bw_bytes_per_sec /= 100;
    p.internal_parallelism = 8;
    return p;
}

}  // namespace

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale base;
    printScale(base);
    std::printf("== Figure 13: throughput vs #SSDs ==\n");

    for (const Mix mix : {Mix::kA, Mix::kC}) {
        for (const char *name : {"Prism", "KVell"}) {
            std::printf("%-8s %-6s:", ycsb::mixName(mix), name);
            for (const int n : {1, 2, 4, 8}) {
                BenchScale s = base;
                s.ssds = n;
                FixtureOptions fx = fixtureFor(s);
                fx.ssd_profile = scaledSsdProfile();
                auto store = makeStore(name, fx);
                loadDataset(*store, s);
                const RunResult r = runMix(*store, mix, s);
                std::printf("  %dssd=%8.1fK", n, r.throughput() / 1e3);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
    }
    return 0;
}
