/**
 * @file
 * Crash-torture harness (docs/FAULTS.md).
 *
 * Seeded loop of torture iterations, each a fresh store driven by a
 * mixed workload under a randomized fault schedule drawn from the seed:
 *
 *  - crash iterations: GC is disabled (append-only SSD state), a crash
 *    image is captured the instant a randomly-armed pmem flush/fence
 *    site fires mid-run, the store is recovered from that image and the
 *    full invariants are checked — no lost acked writes, no torn or
 *    fabricated values, size()/get()/scan() agreement;
 *
 *  - degradation iterations: injected SSD errors, chunk-write faults,
 *    bg-task faults and a mid-run device dropout run against the full
 *    put/get/del/scan/multiGet mix; after the faults clear, the store
 *    must contain exactly the expected map.
 *
 * On failure it prints the --seed and the armed fault schedule (the
 * repro recipe) and writes repro.txt, stats.json and trace.json to the
 * artifacts directory. Usage:
 *
 *   prism_torture --seed=1234 --iters=200        # deterministic run
 *   prism_torture --smoke                        # seconds-scale sweep
 *   prism_torture --minutes=20 --seed=$(date +%Y%m%d)   # nightly soak
 *   prism_torture --shards=4 --seed=7            # N-shard ShardRouter
 *
 * `--shards=N` (power of two) runs every iteration against an N-shard
 * core::ShardRouter instead of a single PrismDb: each shard gets its
 * own tracked NVM region and SSD slice, the crash image spans all
 * shards, and recovery replays the shards sequentially — so a given
 * (--seed, --shards) pair replays deterministically, byte-identical
 * stdout included.
 */
#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/obs_server.h"
#include "common/rand.h"
#include "common/stats.h"
#include "common/trace.h"
#include "core/prism_db.h"
#include "core/shard_router.h"
#include "sim/device_profile.h"

using namespace prism;

namespace {

constexpr uint64_t kNvmBytes = 96ull * 1024 * 1024;
constexpr uint64_t kSsdBytes = 128ull * 1024 * 1024;

struct TortureConfig {
    uint64_t seed = 1;
    int iters = 20;
    int minutes = 0;  ///< when > 0, loop until this much wall time
    uint64_t ops = 20000;
    uint64_t keys = 512;
    int shards = 1;  ///< > 1 tortures an N-shard ShardRouter
    std::string artifacts = "torture-artifacts";
    /** CI self-check: abort() mid-iteration while faults are armed, so
     *  the crash handlers' postmortem can be asserted on. */
    bool selftest_crash = false;
};

struct IterationContext {
    int iter = 0;
    uint64_t iter_seed = 0;
    std::string schedule;  ///< armed fault schedule, repro syntax
};

TortureConfig g_cfg;
IterationContext g_ctx;

[[noreturn]] void
fail(const char *fmt, ...)
{
    std::fprintf(stderr, "\nTORTURE FAILURE (iteration %d)\n", g_ctx.iter);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr,
                 "\nrepro: prism_torture --seed=%" PRIu64
                 " --iters=%d --ops=%" PRIu64 " --keys=%" PRIu64
                 " --shards=%d\n"
                 "iteration seed: %" PRIu64 "\nfault schedule: %s\n",
                 g_cfg.seed, g_ctx.iter + 1, g_cfg.ops, g_cfg.keys,
                 g_cfg.shards, g_ctx.iter_seed,
                 g_ctx.schedule.empty() ? "(none)" : g_ctx.schedule.c_str());

    // Artifact bundle for the CI uploader (and for humans).
    std::error_code ec;
    std::filesystem::create_directories(g_cfg.artifacts, ec);
    if (!ec) {
        std::ofstream repro(g_cfg.artifacts + "/repro.txt");
        repro << "seed=" << g_cfg.seed << "\niteration=" << g_ctx.iter
              << "\niteration_seed=" << g_ctx.iter_seed
              << "\nops=" << g_cfg.ops << "\nkeys=" << g_cfg.keys
              << "\nshards=" << g_cfg.shards
              << "\nschedule=" << g_ctx.schedule << "\n";
        std::ofstream stats(g_cfg.artifacts + "/stats.json");
        stats << stats::StatsRegistry::global().snapshot().toJson()
              << "\n";
        trace::TraceRegistry::global().exportJsonToFile(
            g_cfg.artifacts + "/trace.json");
        std::fprintf(stderr, "artifacts written to %s/\n",
                     g_cfg.artifacts.c_str());
    }
    // Full black-box bundle (stats + trace + slow ops + armed fault
    // schedule + log tail) next to the classic artifacts.
    obs::writePostmortem(g_cfg.artifacts, "torture check failed");
    std::exit(1);
}

#define TORTURE_CHECK(cond, ...)                                         \
    do {                                                                 \
        if (!(cond))                                                     \
            fail(__VA_ARGS__);                                           \
    } while (0)

std::string
makeValue(uint64_t key, uint64_t version)
{
    std::string v = "v" + std::to_string(key) + "." +
                    std::to_string(version) + ".";
    v.resize(64 + (key % 96), 'x');  // mixed sizes, deterministic
    return v;
}

/** Parse "v<key>.<version>." and validate shape; -1 when torn. */
int64_t
parseVersion(uint64_t key, const std::string &v)
{
    unsigned long long k = 0, ver = 0;
    if (std::sscanf(v.c_str(), "v%llu.%llu.", &k, &ver) != 2 || k != key)
        return -1;
    if (v != makeValue(key, ver))
        return -1;
    return static_cast<int64_t>(ver);
}

core::PrismOptions
tortureOptions()
{
    core::PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;
    opts.hsit_capacity = 32 * 1024;
    opts.chunk_bytes = 64 * 1024;
    opts.svc_capacity_bytes = 4 * 1024 * 1024;
    return opts;
}

/**
 * Torture rig: a ShardRouter over --shards shards (1 by default — the
 * single-PrismDb fast path), each shard with its own NVM region and
 * @p ssds_per_shard devices. The flat `ssds` list is shard-major so
 * snapshot/dropout code can ignore sharding.
 */
struct Rig {
    core::PrismOptions opts;
    std::vector<std::shared_ptr<sim::NvmDevice>> nvms;
    std::vector<std::shared_ptr<pmem::PmemRegion>> regions;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    int ssds_per_shard = 0;
    std::unique_ptr<core::ShardRouter> db;

    Rig(const core::PrismOptions &o, int num_ssds, bool tracked)
        : opts(o), ssds_per_shard(num_ssds)
    {
        opts.shards = g_cfg.shards;
        std::vector<core::ShardBackends> backends;
        for (int s = 0; s < g_cfg.shards; s++) {
            nvms.push_back(std::make_shared<sim::NvmDevice>(
                kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false));
            regions.push_back(std::make_shared<pmem::PmemRegion>(
                nvms.back(), /*format=*/true));
            if (tracked)
                regions.back()->enableTracking();
            std::vector<std::shared_ptr<sim::SsdDevice>> shard_ssds;
            for (int i = 0; i < num_ssds; i++) {
                shard_ssds.push_back(std::make_shared<sim::SsdDevice>(
                    kSsdBytes, sim::kSamsung980ProProfile,
                    /*timing=*/false));
                ssds.push_back(shard_ssds.back());
            }
            backends.push_back(
                {regions.back(), core::PrismDb::asBackends(shard_ssds)});
        }
        db = core::ShardRouter::open(opts, std::move(backends));
    }
};

/**
 * Draw a random transient-fault schedule for this iteration. Low
 * probabilities: the retry paths must absorb them without surfacing
 * errors to the strict post-fault verification.
 */
void
armTransientFaults(Xorshift &rng, const Rig &rig)
{
    auto &freg = fault::FaultRegistry::global();
    for (const auto &ssd : rig.ssds) {
        const std::string dev = "ssd." + std::to_string(ssd->deviceNumber());
        if (rng.nextUniform(2) == 0) {
            fault::FaultSpec s;
            s.trigger = fault::Trigger::kProbability;
            s.probability = 0.002 + rng.nextDouble() * 0.008;
            freg.arm(dev + ".io_error", s);
        }
        if (rng.nextUniform(2) == 0) {
            fault::FaultSpec s;
            s.trigger = fault::Trigger::kProbability;
            s.probability = 0.01;
            s.payload = 100'000 + rng.nextUniform(400'000);  // ns spike
            freg.arm(dev + ".latency", s);
        }
    }
    if (rng.nextUniform(2) == 0) {
        fault::FaultSpec s;
        s.trigger = fault::Trigger::kProbability;
        s.probability = 0.01 + rng.nextDouble() * 0.04;
        freg.arm("pwb.chunk_write", s);
    }
    if (rng.nextUniform(2) == 0) {
        fault::FaultSpec s;
        s.trigger = fault::Trigger::kProbability;
        s.probability = 0.05;
        freg.arm("bg.task", s);
    }
}

/**
 * Crash iteration: puts-only workload on tracked NVM with GC disabled
 * (append-only SSDs), crash image captured at a randomly-placed armed
 * pmem site, recovery verified against the acked/attempted bounds.
 */
void
runCrashIteration(Xorshift &rng)
{
    core::PrismOptions opts = tortureOptions();
    opts.vs_gc_watermark = 1.1;  // append-only: mid-run capture is safe
    const int num_ssds = 1 + static_cast<int>(rng.nextUniform(3));
    Rig rig(opts, num_ssds, /*tracked=*/true);

    const uint64_t keys = g_cfg.keys;
    std::vector<std::atomic<uint64_t>> acked(keys);
    std::vector<std::atomic<uint64_t>> attempted(keys);
    std::vector<uint64_t> acked_floor(keys, 0);
    std::vector<std::vector<uint8_t>> nvm_imgs(rig.regions.size());
    std::vector<std::vector<uint8_t>> ssd_imgs(rig.ssds.size());
    std::atomic<bool> captured{false};

    auto &freg = fault::FaultRegistry::global();
    const auto capture = [&](uint64_t) {
        if (captured.exchange(true))
            return;
        // Capture-and-continue crash model: every shard's NVM durable
        // image is snapped first; with append-only SSDs, any SSD write
        // landing after it is unreferenced by those images.
        for (uint64_t k = 0; k < keys; k++)
            acked_floor[k] = acked[k].load(std::memory_order_acquire);
        for (size_t s = 0; s < rig.regions.size(); s++)
            rig.regions[s]->snapshotDurableTo(nvm_imgs[s]);
        for (size_t i = 0; i < rig.ssds.size(); i++)
            rig.ssds[i]->snapshotTo(ssd_imgs[i]);
    };
    const char *crash_site =
        rng.nextUniform(2) == 0 ? "pmem.flush" : "pmem.fence";
    freg.onFire(crash_site, capture);
    fault::FaultSpec crash_at;
    crash_at.trigger = fault::Trigger::kNth;
    // Land the crash somewhere in the middle of the run: every put
    // flushes at least once, so ops/2 flush hits sit well inside it.
    crash_at.n = 1 + rng.nextUniform(g_cfg.ops / 2);
    freg.arm(crash_site, crash_at);
    armTransientFaults(rng, rig);
    g_ctx.schedule = freg.scheduleString();

    uint64_t version = 0;
    for (uint64_t i = 0; i < g_cfg.ops; i++) {
        const uint64_t key = rng.nextUniform(keys);
        version++;
        attempted[key].store(version, std::memory_order_release);
        const Status st = rig.db->put(key, makeValue(key, version));
        TORTURE_CHECK(st.isOk(), "put(%" PRIu64 ") failed: %s", key,
                      st.toString().c_str());
        acked[key].store(version, std::memory_order_release);
    }
    if (g_cfg.selftest_crash) {
        // Deliberate crash *before* disarmAll() so the postmortem's
        // faults.txt carries a non-empty, replayable schedule.
        std::fprintf(stderr, "selftest-crash: aborting on purpose\n");
        std::abort();
    }
    freg.disarmAll();
    TORTURE_CHECK(captured.load(), "crash site %s never fired",
                  crash_site);

    // Rebuild every shard's devices from the crash image and recover
    // the whole router (shards replay sequentially, in shard order).
    opts.shards = g_cfg.shards;
    std::vector<core::ShardBackends> backends2;
    for (size_t s = 0; s < nvm_imgs.size(); s++) {
        auto nvm2 = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, false);
        nvm2->loadImage(nvm_imgs[s].data(), nvm_imgs[s].size());
        auto region2 = std::make_shared<pmem::PmemRegion>(nvm2, false);
        std::vector<std::shared_ptr<sim::SsdDevice>> ssds2;
        for (int i = 0; i < rig.ssds_per_shard; i++) {
            auto d = std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile, false);
            d->loadFrom(ssd_imgs[s * static_cast<size_t>(
                                         rig.ssds_per_shard) +
                                 static_cast<size_t>(i)]);
            ssds2.push_back(std::move(d));
        }
        backends2.push_back(
            {region2, core::PrismDb::asBackends(ssds2)});
    }
    auto recovered = core::ShardRouter::recover(opts, backends2);

    // Invariants: acked-before-crash survives, nothing torn, nothing
    // from the future, and the read paths agree with each other.
    size_t present = 0;
    for (uint64_t k = 0; k < keys; k++) {
        std::string v;
        const Status st = recovered->get(k, &v);
        if (st.isOk())
            present++;
        if (acked_floor[k] == 0)
            continue;
        TORTURE_CHECK(st.isOk(), "lost acked key %" PRIu64 " (floor %"
                      PRIu64 "): %s", k, acked_floor[k],
                      st.toString().c_str());
        const int64_t ver = parseVersion(k, v);
        TORTURE_CHECK(ver >= 0, "torn value for key %" PRIu64, k);
        TORTURE_CHECK(static_cast<uint64_t>(ver) >= acked_floor[k],
                      "lost acked write: key %" PRIu64 " ver %" PRId64
                      " < floor %" PRIu64, k, ver, acked_floor[k]);
        TORTURE_CHECK(static_cast<uint64_t>(ver) <=
                          attempted[k].load(std::memory_order_acquire),
                      "fabricated version: key %" PRIu64 " ver %" PRId64,
                      k, ver);
    }
    TORTURE_CHECK(recovered->size() == present,
                  "size() %zu disagrees with get() sweep %zu",
                  recovered->size(), present);

    std::vector<std::pair<uint64_t, std::string>> scanned;
    const Status sst = recovered->scan(0, keys, &scanned);
    TORTURE_CHECK(sst.isOk(), "scan failed: %s", sst.toString().c_str());
    TORTURE_CHECK(scanned.size() == present,
                  "scan() %zu disagrees with get() sweep %zu",
                  scanned.size(), present);
    for (const auto &[k, sv] : scanned) {
        std::string gv;
        const Status st = recovered->get(k, &gv);
        TORTURE_CHECK(st.isOk() && sv == gv,
                      "scan/get disagree on key %" PRIu64, k);
    }

    // The recovered store must remain writable.
    const Status wst = recovered->put(0, makeValue(0, version + 1));
    TORTURE_CHECK(wst.isOk(), "recovered store rejected a put: %s",
                  wst.toString().c_str());
}

/**
 * Degradation iteration: full op mix under transient faults plus a
 * mid-run SSD dropout; after faults clear and a flush, the store must
 * match the expected map exactly.
 */
void
runDegradationIteration(Xorshift &rng)
{
    const int num_ssds = 2 + static_cast<int>(rng.nextUniform(2));
    Rig rig(tortureOptions(), num_ssds, /*tracked=*/false);
    auto &freg = fault::FaultRegistry::global();
    armTransientFaults(rng, rig);
    g_ctx.schedule = freg.scheduleString();

    const uint64_t keys = g_cfg.keys;
    std::map<uint64_t, uint64_t> expected;
    const uint64_t dropout_at = g_cfg.ops / 3;
    const uint64_t dropout_until = 2 * g_cfg.ops / 3;
    const size_t dropout_dev = rng.nextUniform(rig.ssds.size());

    uint64_t version = 0;
    for (uint64_t i = 0; i < g_cfg.ops; i++) {
        if (i == dropout_at)
            rig.ssds[dropout_dev]->setDropout(true);
        if (i == dropout_until)
            rig.ssds[dropout_dev]->setDropout(false);
        const uint64_t key = rng.nextUniform(keys);
        const uint32_t dice = rng.nextUniform(100);
        if (dice < 70) {
            version++;
            const Status st = rig.db->put(key, makeValue(key, version));
            TORTURE_CHECK(st.isOk(), "put failed: %s",
                          st.toString().c_str());
            expected[key] = version;
        } else if (dice < 80) {
            const Status st = rig.db->del(key);
            const bool expect_hit = expected.erase(key) > 0;
            TORTURE_CHECK(st.isOk() == expect_hit,
                          "del(%" PRIu64 ") surprising status %s", key,
                          st.toString().c_str());
        } else if (dice < 92) {
            std::string v;
            const Status st = rig.db->get(key, &v);
            const auto it = expected.find(key);
            // Injected I/O errors may surface here; only *wrong data*
            // or a consistency break is a failure mid-faults.
            if (st.isOk()) {
                TORTURE_CHECK(it != expected.end(),
                              "get returned a deleted key %" PRIu64, key);
                TORTURE_CHECK(v == makeValue(key, it->second),
                              "get returned wrong value for %" PRIu64,
                              key);
            } else if (st.isNotFound()) {
                TORTURE_CHECK(it == expected.end(),
                              "acked key %" PRIu64 " not found", key);
            }
        } else if (dice < 96) {
            std::vector<std::pair<uint64_t, std::string>> out;
            (void)rig.db->scan(key, 16, &out);  // may hit injected errors
        } else {
            std::vector<uint64_t> batch;
            for (int j = 0; j < 8; j++)
                batch.push_back(rng.nextUniform(keys));
            std::vector<std::optional<std::string>> out;
            (void)rig.db->multiGet(batch, &out);
        }
    }
    rig.ssds[dropout_dev]->setDropout(false);
    freg.disarmAll();
    rig.db->flushAll();

    // Strict verification with the faults gone.
    TORTURE_CHECK(rig.db->size() == expected.size(),
                  "size() %zu != expected %zu", rig.db->size(),
                  expected.size());
    for (const auto &[k, ver] : expected) {
        std::string v;
        const Status st = rig.db->get(k, &v);
        TORTURE_CHECK(st.isOk(), "lost key %" PRIu64 ": %s", k,
                      st.toString().c_str());
        TORTURE_CHECK(v == makeValue(k, ver),
                      "wrong value for key %" PRIu64, k);
    }
    std::vector<std::pair<uint64_t, std::string>> scanned;
    const Status sst = rig.db->scan(0, keys, &scanned);
    TORTURE_CHECK(sst.isOk(), "scan failed: %s", sst.toString().c_str());
    TORTURE_CHECK(scanned.size() == expected.size(),
                  "scan() %zu != expected %zu", scanned.size(),
                  expected.size());
}

}  // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto num = [&](const char *prefix) -> std::optional<uint64_t> {
            if (arg.rfind(prefix, 0) != 0)
                return std::nullopt;
            return std::stoull(arg.substr(std::strlen(prefix)));
        };
        if (arg == "--smoke") {
            g_cfg.iters = 4;
            g_cfg.ops = 4000;
            g_cfg.keys = 256;
        } else if (auto v = num("--seed=")) {
            g_cfg.seed = *v;
        } else if (auto v = num("--iters=")) {
            g_cfg.iters = static_cast<int>(*v);
        } else if (auto v = num("--minutes=")) {
            g_cfg.minutes = static_cast<int>(*v);
        } else if (auto v = num("--ops=")) {
            g_cfg.ops = *v;
        } else if (auto v = num("--keys=")) {
            g_cfg.keys = *v;
        } else if (auto v = num("--shards=")) {
            g_cfg.shards = static_cast<int>(*v);
        } else if (arg.rfind("--artifacts=", 0) == 0) {
            g_cfg.artifacts = arg.substr(std::strlen("--artifacts="));
        } else if (arg == "--selftest-crash") {
            g_cfg.selftest_crash = true;
        } else {
            std::fprintf(stderr,
                         "usage: prism_torture [--seed=S] [--iters=N] "
                         "[--minutes=M] [--ops=N] [--keys=N] "
                         "[--shards=N] [--artifacts=DIR] [--smoke] "
                         "[--selftest-crash]\n");
            return 2;
        }
    }
    if (g_cfg.shards < 1 || g_cfg.shards > 256 ||
        (g_cfg.shards & (g_cfg.shards - 1)) != 0) {
        std::fprintf(stderr,
                     "prism_torture: --shards must be a power of two "
                     "in [1, 256]\n");
        return 2;
    }

    // Keep the trace ring live so a failure can export its last events.
    trace::TraceRegistry::global().setEnabled(true);
    // Any SIGSEGV/SIGABRT/uncaught exception leaves a black-box bundle
    // in the artifacts directory (common/obs_server.h).
    obs::installCrashHandlers(g_cfg.artifacts);

    std::printf("prism_torture: seed=%" PRIu64 " iters=%d minutes=%d "
                "ops=%" PRIu64 " keys=%" PRIu64 " shards=%d\n",
                g_cfg.seed, g_cfg.iters, g_cfg.minutes, g_cfg.ops,
                g_cfg.keys, g_cfg.shards);
    const uint64_t t0 = nowNs();
    int iter = 0;
    while (true) {
        if (g_cfg.minutes > 0) {
            const uint64_t elapsed_min = (nowNs() - t0) / 60'000'000'000ull;
            if (elapsed_min >= static_cast<uint64_t>(g_cfg.minutes))
                break;
        } else if (iter >= g_cfg.iters) {
            break;
        }
        g_ctx.iter = iter;
        g_ctx.iter_seed = hash64(g_cfg.seed ^ hash64(iter + 1));
        g_ctx.schedule.clear();
        fault::FaultRegistry::global().disarmAll();
        fault::FaultRegistry::global().setSeed(g_ctx.iter_seed);
        Xorshift rng(g_ctx.iter_seed);

        const bool crash_iter = iter % 2 == 0;
        if (crash_iter)
            runCrashIteration(rng);
        else
            runDegradationIteration(rng);
        std::printf("  iter %3d (%s) ok  [schedule: %s]\n", iter,
                    crash_iter ? "crash" : "degrade",
                    g_ctx.schedule.empty() ? "none"
                                           : g_ctx.schedule.c_str());
        std::fflush(stdout);
        iter++;
    }
    // stdout is the deterministic replay record (same seed → identical
    // bytes); timing and concurrency-dependent totals go to stderr.
    std::printf("prism_torture: %d iterations passed\n", iter);
    std::fprintf(stderr, "elapsed %.1f s, %" PRIu64 " fault fires\n",
                 static_cast<double>(nowNs() - t0) / 1e9,
                 stats::StatsRegistry::global()
                     .counter("prism.fault.fired")
                     .value());
    return 0;
}
