/**
 * @file
 * Figure 12: SSD-level write amplification (device bytes written /
 * user bytes written) while updating the full dataset, for 512 B and
 * 1 KB values across Zipfian 0.5 / 0.99 / 1.2 — Prism vs KVell vs
 * MatrixKV.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale base;
    base.ops = envOr("PRISM_BENCH_OPS", 40000) * 2;  // updates of dataset
    printScale(base);
    std::printf("== Figure 12: SSD-level WAF vs skew ==\n");

    for (const uint32_t value_bytes : {512u, 1024u}) {
        for (const double theta : {0.5, 0.99, 1.2}) {
            for (const char *name : {"Prism", "KVell", "MatrixKV"}) {
                BenchScale s = base;
                s.value_bytes = value_bytes;
                auto store = makeStore(name, fixtureFor(s));
                loadDataset(*store, s);
                store->flushAll();

                const uint64_t ssd0 = store->ssdBytesWritten();
                const uint64_t usr0 = store->userBytesWritten();
                WorkloadSpec run = WorkloadSpec::forMix(
                    Mix::kUpdateOnly, s.records, s.ops, theta);
                run.value_bytes = value_bytes;
                ycsb::runPhase(*store, run, s.threads);
                store->flushAll();
                const uint64_t ssd = store->ssdBytesWritten() - ssd0;
                const uint64_t usr = store->userBytesWritten() - usr0;
                const double waf = usr ? static_cast<double>(ssd) /
                                             static_cast<double>(usr)
                                       : 0.0;
                std::printf("%-10s value=%4uB zipf=%.2f  WAF=%6.2f  "
                            "(ssd=%.1fMB user=%.1fMB)\n",
                            name, value_bytes, theta, waf,
                            static_cast<double>(ssd) / 1e6,
                            static_cast<double>(usr) / 1e6);
                std::fflush(stdout);
                char row[256];
                std::snprintf(
                    row, sizeof(row),
                    "{\"figure\": \"fig12\", \"store\": \"%s\", "
                    "\"value_bytes\": %u, \"zipf\": %.2f, "
                    "\"waf\": %.3f, \"ssd_mb\": %.1f, "
                    "\"user_mb\": %.1f}",
                    name, value_bytes, theta, waf,
                    static_cast<double>(ssd) / 1e6,
                    static_cast<double>(usr) / 1e6);
                benchJsonRow(row);
            }
        }
    }
    return 0;
}
