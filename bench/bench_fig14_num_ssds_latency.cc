/**
 * @file
 * Figure 14: YCSB-C latency (average / median / p99) vs number of
 * SSDs, Prism vs KVell. Prism's thread combining keeps latency low
 * even with few devices, where KVell's deeper batching pays in tail.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

namespace {

/**
 * The 1-core sandbox cannot generate enough IOPS to saturate a
 * full-speed 980 Pro, which would make device count irrelevant. We
 * scale per-device bandwidth down ~100x, preserving the paper
 * testbed's bandwidth:CPU ratio (~7 GB/s x 8 SSDs : 40 cores), so the
 * bandwidth-vs-device-count tradeoff plays out at reachable op rates.
 */
prism::sim::DeviceProfile
scaledSsdProfile()
{
    prism::sim::DeviceProfile p = prism::sim::kSamsung980ProProfile;
    p.name = "ssd-980pro-scaled";
    p.read_bw_bytes_per_sec /= 100;
    p.write_bw_bytes_per_sec /= 100;
    p.internal_parallelism = 8;
    return p;
}

}  // namespace

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale base;
    printScale(base);
    std::printf("== Figure 14: YCSB-C latency vs #SSDs ==\n");

    for (const char *name : {"Prism", "KVell"}) {
        for (const int n : {1, 2, 4, 8}) {
            BenchScale s = base;
            s.ssds = n;
            FixtureOptions fx = fixtureFor(s);
            fx.ssd_profile = scaledSsdProfile();
            auto store = makeStore(name, fx);
            loadDataset(*store, s);
            const RunResult r = runMix(*store, Mix::kC, s);
            std::printf("%-6s %dssd  avg=%8.1fus  p50=%8.1fus  "
                        "p99=%8.1fus\n",
                        name, n, r.overall.mean() / 1e3,
                        static_cast<double>(r.overall.percentile(0.5)) /
                            1e3,
                        static_cast<double>(r.overall.percentile(0.99)) /
                            1e3);
            std::fflush(stdout);
        }
    }
    return 0;
}
