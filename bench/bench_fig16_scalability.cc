/**
 * @file
 * Figure 16: multicore scalability (client thread sweep) on YCSB A, C
 * and E for Prism, KVell (QD 64 and QD 1) and MatrixKV.
 *
 * Extensions over the paper's figure:
 *  - `--threads=1,2,4,8,16,32,64` (or PRISM_BENCH_THREAD_LIST) sweeps
 *    an arbitrary thread ladder; the default now reaches 16 threads so
 *    the sharded-vs-unsharded comparison is measured where it matters.
 *  - `--shards=N` runs Prism as an N-shard ShardRouter
 *    (src/core/shard_router.h); sharded rows carry a "shards" JSON
 *    field so bench_compare.py never mixes them with unsharded
 *    baselines.
 *  - `--stores=Prism,KVell` / `--mixes=A,C` restrict the sweep when
 *    iterating on one configuration (default: all stores, all mixes).
 *
 * NOTE: this sandbox exposes a single CPU core, so the curves show the
 * I/O-overlap component of scaling only; CPU-bound sections flatten
 * once the core saturates (see EXPERIMENTS.md).
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

namespace {

// "--stores=Prism,KVell" / "--mixes=A,C" -> the selected subset.
std::vector<std::string>
parseListFlag(int argc, char **argv, std::string_view flag)
{
    std::vector<std::string> out;
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.size() <= flag.size() || a.substr(0, flag.size()) != flag)
            continue;
        std::string item;
        for (const char c : a.substr(flag.size())) {
            if (c == ',') {
                if (!item.empty())
                    out.push_back(item);
                item.clear();
            } else {
                item.push_back(c);
            }
        }
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

bool
selected(const std::vector<std::string> &list, std::string_view name)
{
    if (list.empty())
        return true;
    for (const auto &s : list)
        if (s == name)
            return true;
    return false;
}

}  // namespace

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    parseBackendFlag(argc, argv);  // --backend={sim,posix,uring,auto}
    parseShardsFlag(argc, argv);   // --shards=N (Prism only)
    parseObsFlag(argc, argv);      // --obs-port=N (Prism only)
    BenchScale base;
    base.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    printScale(base);
    std::printf("== Figure 16: throughput vs client threads "
                "(prism backend: %s, shards: %d) ==\n",
                benchBackendName(), benchShards());

    const std::vector<int> thread_counts = parseThreadListFlag(
        argc, argv, "PRISM_BENCH_THREAD_LIST", {1, 2, 4, 8, 16});
    const int max_threads =
        *std::max_element(thread_counts.begin(), thread_counts.end());
    const auto store_filter = parseListFlag(argc, argv, "--stores=");
    const auto mix_filter = parseListFlag(argc, argv, "--mixes=");
    for (const char *name :
         {"Prism", "KVell", "KVell-QD1", "MatrixKV"}) {
        if (!selected(store_filter, name))
            continue;
        FixtureOptions fx = fixtureFor(base);
        // PWB budgets are split per expected thread; size for the
        // widest point of the sweep.
        fx.expected_threads = std::max(base.threads, max_threads);
        std::unique_ptr<KvStore> store;
        if (std::string(name) == "KVell-QD1") {
            kvell::KvellOptions ko;
            ko.queue_depth = 1;
            store = std::make_unique<ycsb::KvellStore>(fx, ko);
        } else {
            store = makeStore(name, fx);
        }
        loadDataset(*store, base);

        const bool sharded_prism =
            std::string(name) == "Prism" && benchShards() > 1;
        for (const Mix mix : {Mix::kA, Mix::kC, Mix::kE}) {
            // mixName() is "YCSB-A"; accept both "A" and "YCSB-A".
            const std::string_view mn = ycsb::mixName(mix);
            if (!selected(mix_filter, mn) &&
                !selected(mix_filter, mn.substr(mn.size() - 1)))
                continue;
            std::printf("%-8s %-10s:", ycsb::mixName(mix), name);
            for (const int threads : thread_counts) {
                BenchScale s = base;
                s.threads = threads;
                const uint64_t ops =
                    mix == Mix::kE ? s.ops / 10 : s.ops;
                const auto snap0 =
                    stats::StatsRegistry::global().snapshot();
                const RunResult r = runMix(*store, mix, s, 0.99, ops);
                const auto snap1 =
                    stats::StatsRegistry::global().snapshot();
                std::printf("  t%d=%8.1fK", threads,
                            r.throughput() / 1e3);
                std::fflush(stdout);
                char row[512];
                std::snprintf(
                    row, sizeof(row),
                    "{\"figure\": \"fig16\", \"store\": \"%s\", "
                    "\"mix\": \"%s\", \"threads\": %d, "
                    "\"kops\": %.1f, \"pwb_stalls\": %llu, "
                    "\"reclaim_dispatches\": %llu, "
                    "\"bg_tasks\": %llu}",
                    name, ycsb::mixName(mix), threads,
                    r.throughput() / 1e3,
                    static_cast<unsigned long long>(snap1.counterDelta(
                        snap0, "prism.pwb.stalls")),
                    static_cast<unsigned long long>(snap1.counterDelta(
                        snap0, "prism.pwb.reclaim_dispatches")),
                    static_cast<unsigned long long>(
                        snap1.counterDelta(snap0, "prism.bg.tasks")));
                // Only Prism is sharded; baseline rows must stay
                // comparable whatever --shards says.
                if (sharded_prism)
                    benchJsonRow(row);
                else
                    benchJsonRowUnsharded(row);
            }
            std::printf("\n");
        }
    }
    return 0;
}
