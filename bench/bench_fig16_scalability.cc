/**
 * @file
 * Figure 16: multicore scalability (client thread sweep) on YCSB A, C
 * and E for Prism, KVell (QD 64 and QD 1) and MatrixKV.
 *
 * NOTE: this sandbox exposes a single CPU core, so the curves show the
 * I/O-overlap component of scaling only; CPU-bound sections flatten
 * once the core saturates (see EXPERIMENTS.md).
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    parseBackendFlag(argc, argv);  // --backend={sim,posix,uring,auto}
    BenchScale base;
    base.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    printScale(base);
    std::printf("== Figure 16: throughput vs client threads "
                "(prism backend: %s) ==\n",
                benchBackendName());

    const int thread_counts[] = {1, 2, 4, 8};
    for (const char *name :
         {"Prism", "KVell", "KVell-QD1", "MatrixKV"}) {
        FixtureOptions fx = fixtureFor(base);
        std::unique_ptr<KvStore> store;
        if (std::string(name) == "KVell-QD1") {
            kvell::KvellOptions ko;
            ko.queue_depth = 1;
            store = std::make_unique<ycsb::KvellStore>(fx, ko);
        } else {
            store = makeStore(name, fx);
        }
        loadDataset(*store, base);

        for (const Mix mix : {Mix::kA, Mix::kC, Mix::kE}) {
            std::printf("%-8s %-10s:", ycsb::mixName(mix), name);
            for (const int threads : thread_counts) {
                BenchScale s = base;
                s.threads = threads;
                const uint64_t ops =
                    mix == Mix::kE ? s.ops / 10 : s.ops;
                const auto snap0 =
                    stats::StatsRegistry::global().snapshot();
                const RunResult r = runMix(*store, mix, s, 0.99, ops);
                const auto snap1 =
                    stats::StatsRegistry::global().snapshot();
                std::printf("  t%d=%8.1fK", threads,
                            r.throughput() / 1e3);
                std::fflush(stdout);
                char row[512];
                std::snprintf(
                    row, sizeof(row),
                    "{\"figure\": \"fig16\", \"store\": \"%s\", "
                    "\"mix\": \"%s\", \"threads\": %d, "
                    "\"kops\": %.1f, \"pwb_stalls\": %llu, "
                    "\"reclaim_dispatches\": %llu, "
                    "\"bg_tasks\": %llu}",
                    name, ycsb::mixName(mix), threads,
                    r.throughput() / 1e3,
                    static_cast<unsigned long long>(snap1.counterDelta(
                        snap0, "prism.pwb.stalls")),
                    static_cast<unsigned long long>(snap1.counterDelta(
                        snap0, "prism.pwb.reclaim_dispatches")),
                    static_cast<unsigned long long>(
                        snap1.counterDelta(snap0, "prism.bg.tasks")));
                benchJsonRow(row);
            }
            std::printf("\n");
        }
    }
    return 0;
}
