/**
 * @file
 * Figure 17: YCSB-A throughput over time as Value Storage garbage
 * collection kicks in. The Value Storage is sized so sustained updates
 * push it past the GC watermark mid-run; Prism's non-blocking HSIT
 * access should keep the curve flat.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    BenchScale s;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) * 8;  // long sustained run
    printScale(s);
    std::printf("== Figure 17: throughput timeline with GC (YCSB-A) ==\n");

    FixtureOptions fx = fixtureFor(s);
    // Tight Value Storage: ~1.6x the dataset per run forces GC.
    fx.ssd_bytes = std::max<uint64_t>(
        s.records * s.value_bytes * 16 / 10 / fx.num_ssds, 64 << 20);
    ycsb::PrismStore store(fx, core::PrismOptions{});
    loadDataset(store, s);

    WorkloadSpec run = WorkloadSpec::forMix(Mix::kA, s.records, s.ops);
    run.value_bytes = s.value_bytes;
    const RunResult r =
        ycsb::runPhase(store, run, s.threads, /*timeline ms=*/250);

    uint64_t gc = 0;
    for (size_t i = 0; i < store.db().valueStorageCount(); i++)
        gc += store.db().valueStorage(i).gcPasses();
    std::printf("# total: %.1f Kops/s over %.1fs, %llu GC passes\n",
                r.throughput() / 1e3,
                static_cast<double>(r.duration_ns) / 1e9,
                static_cast<unsigned long long>(gc));
    for (const auto &[t, tput] : r.timeline)
        std::printf("t=%6.2fs  %9.1f Kops/s\n", t, tput / 1e3);
    return 0;
}
