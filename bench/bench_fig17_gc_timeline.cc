/**
 * @file
 * Figure 17: YCSB-A throughput over time as Value Storage garbage
 * collection kicks in. The Value Storage is sized so sustained updates
 * push it past the GC watermark mid-run; Prism's non-blocking HSIT
 * access should keep the curve flat.
 *
 * Unlike the other figure benches this one is driven from the tracer:
 * the run executes with prism::trace enabled, and the GC / PWB-reclaim
 * activity overlaid on each 250 ms throughput bucket is reconstructed
 * from the recorded `vs.gc_pass` and `pwb.reclaim_pass` spans rather
 * than from counters — the same data a Perfetto view of the dump shows.
 */
#include <algorithm>
#include <cstring>
#include <set>

#include "bench_util.h"
#include "common/trace.h"

using namespace prism;
using namespace prism::bench;

namespace {

constexpr uint64_t kBucketNs = 250ull * 1000 * 1000;

/** Per-bucket background-work overlay accumulated from trace spans. */
struct Bucket {
    double busy_gc_ms = 0;       ///< vs.gc_pass time overlapping bucket
    double busy_reclaim_ms = 0;  ///< pwb.reclaim_pass time overlapping
    uint64_t gc_passes = 0;      ///< passes *starting* in this bucket
    uint64_t reclaim_passes = 0;
};

void
overlay(std::vector<Bucket> &buckets, uint64_t t0, uint64_t ts,
        uint64_t dur, bool is_gc)
{
    if (ts < t0)
        ts = t0;  // span started during load; clip to the run window
    const uint64_t rel = ts - t0;
    const size_t first = static_cast<size_t>(rel / kBucketNs);
    if (first < buckets.size()) {
        if (is_gc)
            buckets[first].gc_passes++;
        else
            buckets[first].reclaim_passes++;
    }
    for (size_t b = first; b < buckets.size(); b++) {
        const uint64_t bs = static_cast<uint64_t>(b) * kBucketNs;
        const uint64_t be = bs + kBucketNs;
        const uint64_t s = std::max(rel, bs);
        const uint64_t e = std::min(rel + dur, be);
        if (e <= s)
            break;
        const double ms = static_cast<double>(e - s) / 1e6;
        if (is_gc)
            buckets[b].busy_gc_ms += ms;
        else
            buckets[b].busy_reclaim_ms += ms;
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) * 8;  // long sustained run
    printScale(s);
    std::printf("== Figure 17: throughput timeline with GC (YCSB-A) ==\n");

    auto &tracer = trace::TraceRegistry::global();
    // Background rings must hold every GC/reclaim span of the run; the
    // default 16k is plenty for those threads, but client rings churn,
    // so give everyone headroom before any ring exists.
    tracer.setRingCapacity(1 << 16);
    tracer.setEnabled(true);

    FixtureOptions fx = fixtureFor(s);
    // Tight Value Storage: ~1.6x the dataset per run forces GC.
    fx.ssd_bytes = std::max<uint64_t>(
        s.records * s.value_bytes * 16 / 10 / fx.num_ssds, 64 << 20);
    ycsb::PrismStore store(fx, core::PrismOptions{});
    loadDataset(store, s);

    WorkloadSpec run = WorkloadSpec::forMix(Mix::kA, s.records, s.ops);
    run.value_bytes = s.value_bytes;
    const uint64_t t0 = nowNs();
    const RunResult r =
        ycsb::runPhase(store, run, s.threads, /*timeline ms=*/250);

    // Reconstruct the background-work overlay from the rings.
    const uint32_t gc_id = tracer.internName("vs.gc_pass");
    const uint32_t reclaim_id = tracer.internName("pwb.reclaim_pass");
    std::vector<Bucket> buckets(
        static_cast<size_t>(r.duration_ns / kBucketNs) + 1);
    uint64_t gc_spans = 0, reclaim_spans = 0;
    std::set<std::string> span_names;
    for (const auto &[tid, events] : tracer.snapshotAll()) {
        for (const auto &ev : events) {
            if (ev.type != trace::EventType::kSpan)
                continue;
            span_names.insert(tracer.nameOf(ev.name_id));
            if (ev.name_id != gc_id && ev.name_id != reclaim_id)
                continue;
            if (ev.ts_ns + ev.dur_ns <= t0)
                continue;  // load-phase activity
            const bool is_gc = ev.name_id == gc_id;
            (is_gc ? gc_spans : reclaim_spans)++;
            overlay(buckets, t0, ev.ts_ns, ev.dur_ns, is_gc);
        }
    }

    uint64_t gc_counter = 0;
    for (size_t i = 0; i < store.db().valueStorageCount(); i++)
        gc_counter += store.db().valueStorage(i).gcPasses();
    std::printf("# total: %.1f Kops/s over %.1fs, %llu GC passes "
                "(%llu gc spans, %llu reclaim spans traced)\n",
                r.throughput() / 1e3,
                static_cast<double>(r.duration_ns) / 1e9,
                static_cast<unsigned long long>(gc_counter),
                static_cast<unsigned long long>(gc_spans),
                static_cast<unsigned long long>(reclaim_spans));

    for (const auto &[t, tput] : r.timeline) {
        const size_t b = static_cast<size_t>(
            t * 1e9 / static_cast<double>(kBucketNs));
        const Bucket bk = b < buckets.size() ? buckets[b] : Bucket{};
        std::printf("t=%6.2fs  %9.1f Kops/s  gc=%6.1fms reclaim=%6.1fms"
                    "  (%llu gc, %llu reclaim passes)\n",
                    t, tput / 1e3, bk.busy_gc_ms, bk.busy_reclaim_ms,
                    static_cast<unsigned long long>(bk.gc_passes),
                    static_cast<unsigned long long>(bk.reclaim_passes));
        char row[256];
        std::snprintf(row, sizeof(row),
                      "{\"figure\":\"fig17\",\"t_s\":%.2f,"
                      "\"kops\":%.1f,\"gc_ms\":%.1f,\"reclaim_ms\":%.1f,"
                      "\"gc_passes\":%llu,\"reclaim_passes\":%llu}",
                      t, tput / 1e3, bk.busy_gc_ms, bk.busy_reclaim_ms,
                      static_cast<unsigned long long>(bk.gc_passes),
                      static_cast<unsigned long long>(bk.reclaim_passes));
        benchJsonRow(row);
    }

    char summary[256];
    std::snprintf(summary, sizeof(summary),
                  "{\"figure\":\"fig17\",\"row\":\"summary\","
                  "\"kops\":%.1f,\"gc_passes\":%llu,"
                  "\"gc_spans_traced\":%llu,"
                  "\"reclaim_spans_traced\":%llu}",
                  r.throughput() / 1e3,
                  static_cast<unsigned long long>(gc_counter),
                  static_cast<unsigned long long>(gc_spans),
                  static_cast<unsigned long long>(reclaim_spans));
    benchJsonRow(summary);

    // Layer-coverage check (the PR 3 acceptance row): a traced YCSB-A
    // run must record spans from the core op path, the PWB/chunk path,
    // the SVC, and the simulated SSDs.
    const auto has = [&](const char *prefix) {
        for (const auto &n : span_names)
            if (n.rfind(prefix, 0) == 0)
                return 1;
        return 0;
    };
    const int core = has("prism.");
    const int pwb = has("pwb.");
    const int svc = has("svc.");
    const int ssd = has("ssd.");
    const int layers = core + pwb + svc + ssd;
    std::printf("# trace layers covered: %d/4 (core=%d pwb=%d svc=%d "
                "ssd=%d, %zu distinct span names)\n",
                layers, core, pwb, svc, ssd, span_names.size());
    char cov[256];
    std::snprintf(cov, sizeof(cov),
                  "{\"figure\":\"fig17\",\"row\":\"trace_layers\","
                  "\"core\":%d,\"pwb\":%d,\"svc\":%d,\"ssd\":%d,"
                  "\"layers\":%d,\"span_names\":%zu}",
                  core, pwb, svc, ssd, layers, span_names.size());
    benchJsonRow(cov);
    return layers >= 4 ? 0 : 1;
}
