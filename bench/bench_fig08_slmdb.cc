/**
 * @file
 * Figure 8 + Table 4: Prism vs SLM-DB, single-threaded (the
 * open-source SLM-DB has no multi-threading, §7.4). As in the paper,
 * Prism is constrained to a 64 MB SVC and 64 MB PWB for fairness, and
 * the dataset is smaller than the main experiments'.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    s.records = envOr("PRISM_BENCH_RECORDS", 100000) / 2;
    s.ops = envOr("PRISM_BENCH_OPS", 40000) / 2;
    s.threads = 1;
    printScale(s);
    std::printf("== Figure 8 / Table 4: Prism vs SLM-DB "
                "(single-threaded) ==\n");

    FixtureOptions fx = fixtureFor(s);
    fx.expected_threads = 1;

    for (const char *name : {"Prism", "SLM-DB"}) {
        std::unique_ptr<KvStore> store;
        if (std::string(name) == "Prism") {
            core::PrismOptions opts;
            opts.pwb_size_bytes = 64ull << 20;   // §7.4 fairness config
            opts.svc_capacity_bytes = 64ull << 20;
            FixtureOptions pfx = fx;
            pfx.derive_prism_budgets = false;
            auto prism_store =
                std::make_unique<ycsb::PrismStore>(pfx, opts);
            store = std::move(prism_store);
        } else {
            store = makeStore(name, fx);
        }

        WorkloadSpec load = WorkloadSpec::forMix(Mix::kLoad, s.records, 0);
        load.value_bytes = s.value_bytes;
        const RunResult loaded = ycsb::loadPhase(*store, load, 1);
        printThroughputRow(name, "LOAD", loaded);
        store->flushAll();

        for (const Mix mix :
             {Mix::kA, Mix::kB, Mix::kC, Mix::kD, Mix::kE}) {
            const uint64_t ops = mix == Mix::kE ? s.ops / 10 : s.ops;
            const RunResult r = runMix(*store, mix, s, 0.99, ops);
            printThroughputRow(name, ycsb::mixName(mix), r);
            if (mix == Mix::kA || mix == Mix::kC || mix == Mix::kE)
                printLatencyRow(name, ycsb::mixName(mix), r.overall);
        }
    }
    return 0;
}
