/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints the rows/series of one paper table or figure. The
 * scale is reduced from the paper's testbed (100 M keys, 40 cores,
 * 8 SSDs) to what a simulation on one machine can run in seconds;
 * shapes, not absolute numbers, are the reproduction target (see
 * EXPERIMENTS.md). Environment overrides:
 *
 *   PRISM_BENCH_RECORDS  dataset size in keys   (default 100000)
 *   PRISM_BENCH_OPS      operations per run     (default 40000)
 *   PRISM_BENCH_THREADS  client threads         (default 8)
 *   PRISM_BENCH_SSDS     number of SSDs         (default 4)
 *   PRISM_BENCH_BACKEND  Prism I/O backend      (default sim;
 *                        sim|posix|uring|auto — docs/IO_BACKENDS.md)
 *   PRISM_BENCH_SHARDS   Prism shard count      (default 1; power of
 *                        two — src/core/shard_router.h)
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/prof.h"
#include "common/stats.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "io/io_backend.h"
#include "ycsb/driver.h"
#include "ycsb/stores.h"

namespace prism::bench {

using ycsb::FixtureOptions;
using ycsb::KvStore;
using ycsb::Mix;
using ycsb::RunResult;
using ycsb::WorkloadSpec;

inline uint64_t
envOr(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v == nullptr ? def : std::strtoull(v, nullptr, 10);
}

/**
 * @name --stats support (docs/OBSERVABILITY.md)
 *
 * Every bench accepts `--stats` (text) or `--stats=json` to dump the
 * process-wide metrics registry when it exits; PRISM_BENCH_STATS=1 or
 * =json does the same without a flag. The dump goes to stderr so it
 * never mixes with a bench's tabular stdout.
 * @{
 */

struct StatsFlag {
    bool enabled = false;
    bool json = false;
};

inline StatsFlag
parseStatsFlag(int argc, char **argv)
{
    StatsFlag f;
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a == "--stats")
            f.enabled = true;
        else if (a == "--stats=json")
            f.enabled = f.json = true;
    }
    if (const char *env = std::getenv("PRISM_BENCH_STATS")) {
        f.enabled = true;
        if (std::string_view(env) == "json")
            f.json = true;
    }
    return f;
}

inline void
dumpStats(const StatsFlag &f)
{
    if (!f.enabled)
        return;
    const auto snap = stats::StatsRegistry::global().snapshot();
    if (f.json)
        std::fprintf(stderr, "%s\n", snap.toJson().c_str());
    else
        std::fprintf(stderr, "---- prism stats ----\n%s",
                     snap.toString().c_str());
}

namespace detail {
inline StatsFlag g_stats_flag;
}  // namespace detail

/** Call first thing in main(); dumps at normal process exit. */
inline void
maybeDumpStatsAtExit(int argc, char **argv)
{
    detail::g_stats_flag = parseStatsFlag(argc, argv);
    if (detail::g_stats_flag.enabled)
        std::atexit([] { dumpStats(detail::g_stats_flag); });
}

/** @} */

/**
 * @name --trace support (docs/OBSERVABILITY.md, "Tracing")
 *
 * Every bench accepts `--trace=<file>` (or `PRISM_BENCH_TRACE=<file>`)
 * to enable the cross-layer tracer for the whole run and export a
 * Chrome-trace/Perfetto JSON dump to <file> at normal process exit.
 * Open the dump at https://ui.perfetto.dev or chrome://tracing.
 * @{
 */

namespace detail {
inline std::string g_trace_path;
}  // namespace detail

/** Call first thing in main(), next to maybeDumpStatsAtExit(). */
inline void
maybeTraceToFileAtExit(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--trace=", 0) == 0)
            detail::g_trace_path = std::string(a.substr(8));
    }
    if (const char *env = std::getenv("PRISM_BENCH_TRACE")) {
        if (*env != '\0' && detail::g_trace_path.empty())
            detail::g_trace_path = env;
    }
    if (detail::g_trace_path.empty())
        return;
    trace::TraceRegistry::global().setEnabled(true);
    std::atexit([] {
        trace::TraceRegistry::global().publishStats();
        if (!trace::TraceRegistry::global().exportJsonToFile(
                detail::g_trace_path)) {
            std::fprintf(stderr, "trace export to %s failed\n",
                         detail::g_trace_path.c_str());
            return;
        }
        std::fprintf(stderr, "trace written to %s\n",
                     detail::g_trace_path.c_str());
    });
}

/** @} */

/**
 * @name --telemetry support (docs/OBSERVABILITY.md, "Time series")
 *
 * `--telemetry=<file>` (or `PRISM_BENCH_TELEMETRY=<file>`) starts the
 * process-wide telemetry sampler for the whole run and exports the
 * windowed series JSON to <file> at normal process exit. Sampling
 * interval: `PRISM_BENCH_TELEMETRY_MS` (default 100); ring capacity:
 * `PRISM_BENCH_TELEMETRY_WINDOWS` (default 4096, enough for several
 * minutes). Render the file with scripts/telemetry_report.py.
 * @{
 */

namespace detail {
inline std::string g_telemetry_path;
}  // namespace detail

/** Call first thing in main(), next to maybeTraceToFileAtExit(). */
inline void
maybeTelemetryToFileAtExit(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--telemetry=", 0) == 0)
            detail::g_telemetry_path = std::string(a.substr(12));
    }
    if (const char *env = std::getenv("PRISM_BENCH_TELEMETRY")) {
        if (*env != '\0' && detail::g_telemetry_path.empty())
            detail::g_telemetry_path = env;
    }
    if (detail::g_telemetry_path.empty())
        return;
    auto &tel = telemetry::Telemetry::global();
    tel.setCapacity(envOr("PRISM_BENCH_TELEMETRY_WINDOWS", 4096));
    tel.start(envOr("PRISM_BENCH_TELEMETRY_MS", 100));
    std::atexit([] {
        auto &tel = telemetry::Telemetry::global();
        tel.stop();
        if (!tel.exportSeriesJsonToFile(detail::g_telemetry_path)) {
            std::fprintf(stderr, "telemetry export to %s failed\n",
                         detail::g_telemetry_path.c_str());
            return;
        }
        std::fprintf(stderr, "telemetry series (%zu windows) written to %s\n",
                     tel.sampleCount(), detail::g_telemetry_path.c_str());
    });
}

/** @} */

/**
 * @name --profile support (docs/OBSERVABILITY.md, "Profiling")
 *
 * `--profile=<file>` (or `PRISM_BENCH_PROFILE=<file>`) arms the
 * sampling CPU profiler (common/prof.h) for the whole run and writes
 * the collapsed-stack profile to <file> at normal process exit.
 * Sampling rate: `PRISM_BENCH_PROF_HZ` (default 99). Render the file
 * with scripts/flamegraph.py; the lock-contention folded stacks go to
 * <file>.contention alongside it.
 * @{
 */

namespace detail {
inline std::string g_profile_path;
}  // namespace detail

/** Call first thing in main(), next to maybeTraceToFileAtExit(). */
inline void
maybeProfileToFileAtExit(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--profile=", 0) == 0)
            detail::g_profile_path = std::string(a.substr(10));
    }
    if (const char *env = std::getenv("PRISM_BENCH_PROFILE")) {
        if (*env != '\0' && detail::g_profile_path.empty())
            detail::g_profile_path = env;
    }
    if (detail::g_profile_path.empty())
        return;
    const int hz = static_cast<int>(envOr("PRISM_BENCH_PROF_HZ", 99));
    prof::Profiler::global().start(hz);
    std::atexit([] {
        auto &p = prof::Profiler::global();
        const std::string folded = p.collectFolded();
        p.stop();
        auto write = [](const std::string &path, const std::string &body) {
            FILE *f = std::fopen(path.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "profile export to %s failed\n",
                             path.c_str());
                return;
            }
            std::fwrite(body.data(), 1, body.size(), f);
            std::fclose(f);
        };
        write(detail::g_profile_path, folded);
        write(detail::g_profile_path + ".contention",
              prof::renderContentionFolded());
        std::fprintf(stderr,
                     "profile (%llu samples) written to %s (+ .contention)\n",
                     static_cast<unsigned long long>(p.samplesTaken()),
                     detail::g_profile_path.c_str());
    });
}

/** @} */

/**
 * @name --backend support (docs/IO_BACKENDS.md)
 *
 * Every bench accepts `--backend={sim,posix,uring,auto}` (or
 * `PRISM_BENCH_BACKEND=<kind>`) to pick the io::IoBackend Prism's
 * Value Storage runs on: the timing-modelled simulator (default) or
 * real files via the POSIX pool / io_uring. Only the Prism store is
 * switchable; the baselines always simulate. Non-sim runs tag every
 * JSON row with a `"backend"` field so their rows never collide with
 * the committed simulator baselines in scripts/bench_compare.py.
 * @{
 */

namespace detail {
inline std::string g_backend;
}  // namespace detail

/** Call first thing in main(), next to maybeDumpStatsAtExit(). */
inline void
parseBackendFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--backend=", 0) == 0)
            detail::g_backend = std::string(a.substr(10));
    }
    if (detail::g_backend.empty()) {
        if (const char *env = std::getenv("PRISM_BENCH_BACKEND"))
            detail::g_backend = env;
    }
}

/** Selector for PrismOptions::io_backend ("" = default resolution). */
inline const std::string &
benchBackend()
{
    return detail::g_backend;
}

/**
 * Resolved backend kind name for logs/rows ("sim", "posix", "uring" —
 * "auto" resolves to what the kernel probe picked).
 */
inline const char *
benchBackendName()
{
    return io::backendKindName(
        io::resolveBackendKind(detail::g_backend));
}

/** @} */

/**
 * @name --shards support (src/core/shard_router.h)
 *
 * Every bench accepts `--shards=N` (or `PRISM_SHARDS=N` /
 * `PRISM_BENCH_SHARDS=N`) to run the Prism store as an N-shard
 * ShardRouter (N a power of two; 1 = today's single-PrismDb store).
 * Like `--backend`, only Prism is switchable. Sharded runs tag every
 * JSON row with a `"shards"` field so their rows never collide with
 * the committed unsharded baselines in scripts/bench_compare.py.
 * @{
 */

namespace detail {
inline int g_shards = 1;
}  // namespace detail

/** Call first thing in main(), next to parseBackendFlag(). */
inline void
parseShardsFlag(int argc, char **argv)
{
    int n = 0;
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--shards=", 0) == 0)
            n = std::atoi(a.substr(9).data());
    }
    if (n == 0)
        n = static_cast<int>(envOr("PRISM_BENCH_SHARDS", 0));
    if (n == 0)
        n = static_cast<int>(envOr("PRISM_SHARDS", 0));
    detail::g_shards = n == 0 ? 1 : n;
}

/** Shard count for PrismOptions::shards (>= 1 once parsed). */
inline int
benchShards()
{
    return detail::g_shards;
}

/** @} */

/**
 * @name --obs-port support (common/obs_server.h)
 *
 * Every bench accepts `--obs-port=N` (or `PRISM_OBS_PORT=N`) to serve
 * the HTTP ops endpoints from the Prism store while the bench runs:
 * 0 binds an ephemeral port (the store logs
 * "obs: listening on http://127.0.0.1:PORT" via the obs.server log
 * site — CI greps it), >0 binds that port. Off by default, so
 * committed baselines never pay for the listener.
 * @{
 */

namespace detail {
inline int g_obs_port = -1;
}  // namespace detail

/** Call first thing in main(), next to parseShardsFlag(). */
inline void
parseObsFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--obs-port=", 0) == 0)
            detail::g_obs_port = std::atoi(a.substr(11).data());
    }
    // -1 defers to $PRISM_OBS_PORT inside obs::resolveObsPort.
}

/** Port for PrismOptions::obs_port (-1 = env, then off). */
inline int
benchObsPort()
{
    return detail::g_obs_port;
}

/** @} */

/**
 * @name Machine-readable results (`PRISM_BENCH_JSON`)
 *
 * When `PRISM_BENCH_JSON=<path>` is set, benches that support it append
 * one complete JSON object per result row to that file (JSON-lines).
 * Each row carries a `"figure"` tag so a harness can regroup rows from
 * several binaries into one document; `run_benches.sh` assembles them
 * into `BENCH_pr2.json`.
 * @{
 */

inline void
benchJsonRow(const std::string &obj)
{
    const char *path = std::getenv("PRISM_BENCH_JSON");
    if (path == nullptr || *path == '\0')
        return;
    FILE *f = std::fopen(path, "a");
    if (f == nullptr)
        return;
    // Non-sim runs get a "backend" identity field appended to every
    // row. Simulator rows stay byte-identical to the committed
    // BENCH_pr*.json baselines (bench_compare.py keys rows on their
    // field set, so adding the field only off the default path keeps
    // default runs comparable against old documents).
    std::string row = obj;
    const std::string kind = benchBackendName();
    if (kind != "sim" && !row.empty() && row.back() == '}')
        row.insert(row.size() - 1, ", \"backend\": \"" + kind + "\"");
    // Sharded runs likewise get a "shards" identity field; unsharded
    // rows stay byte-identical to the committed baselines.
    if (detail::g_shards > 1 && !row.empty() && row.back() == '}')
        row.insert(row.size() - 1,
                   ", \"shards\": " + std::to_string(detail::g_shards));
    std::fprintf(f, "%s\n", row.c_str());
    std::fclose(f);
}

/**
 * benchJsonRow() minus the "shards" tag, for rows of stores that
 * `--shards` does not apply to (KVell, the LSMs). Their rows stay
 * comparable to the unsharded baselines even inside a sharded run.
 */
inline void
benchJsonRowUnsharded(const std::string &obj)
{
    const int saved = detail::g_shards;
    detail::g_shards = 1;
    benchJsonRow(obj);
    detail::g_shards = saved;
}

/** @} */

/**
 * Parse a `--threads=1,2,4,8` style flag (or @p env_name) into a
 * thread-count list; returns @p def when neither is present. Lets
 * sweep benches (fig16) take an arbitrary ladder instead of a
 * hard-coded one.
 */
inline std::vector<int>
parseThreadListFlag(int argc, char **argv, const char *env_name,
                    std::vector<int> def)
{
    std::string spec;
    for (int i = 1; i < argc; i++) {
        const std::string_view a = argv[i];
        if (a.rfind("--threads=", 0) == 0)
            spec = std::string(a.substr(10));
    }
    if (spec.empty()) {
        if (const char *env = std::getenv(env_name);
            env != nullptr && *env != '\0')
            spec = env;
    }
    if (spec.empty())
        return def;
    std::vector<int> out;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const int t = std::atoi(spec.substr(pos, comma - pos).c_str());
        if (t > 0)
            out.push_back(t);
        pos = comma + 1;
    }
    return out.empty() ? def : out;
}

/** Common bench scale. */
struct BenchScale {
    uint64_t records = envOr("PRISM_BENCH_RECORDS", 100000);
    uint64_t ops = envOr("PRISM_BENCH_OPS", 40000);
    int threads = static_cast<int>(envOr("PRISM_BENCH_THREADS", 8));
    int ssds = static_cast<int>(envOr("PRISM_BENCH_SSDS", 4));
    uint32_t value_bytes = 1024;
};

inline FixtureOptions
fixtureFor(const BenchScale &s)
{
    FixtureOptions fx;
    fx.num_ssds = s.ssds;
    fx.dataset_bytes = s.records * s.value_bytes;
    fx.ssd_bytes =
        std::max<uint64_t>(fx.dataset_bytes * 3 / s.ssds, 256 << 20);
    fx.model_timing = true;
    fx.expected_threads = s.threads;
    return fx;
}

/** Build one of the evaluated stores by name. */
inline std::unique_ptr<KvStore>
makeStore(const std::string &which, const FixtureOptions &fx)
{
    if (which == "Prism") {
        core::PrismOptions po;
        po.io_backend = benchBackend();  // "" = sim/$PRISM_IO_BACKEND
        po.shards = benchShards();       // 1 = single-PrismDb store
        po.obs_port = benchObsPort();    // -1 = $PRISM_OBS_PORT, then off
        return std::make_unique<ycsb::PrismStore>(fx, po);
    }
    if (which == "KVell")
        return std::make_unique<ycsb::KvellStore>(fx,
                                                  kvell::KvellOptions{});
    if (which == "MatrixKV")
        return std::make_unique<ycsb::LsmStore>(
            fx, ycsb::LsmFlavor::kMatrixKv, lsm::LsmOptions{});
    if (which == "RocksDB-NVM")
        return std::make_unique<ycsb::LsmStore>(
            fx, ycsb::LsmFlavor::kRocksDbNvm, lsm::LsmOptions{});
    if (which == "RocksDB")
        return std::make_unique<ycsb::LsmStore>(
            fx, ycsb::LsmFlavor::kRocksDbSsd, lsm::LsmOptions{});
    if (which == "SLM-DB")
        return std::make_unique<ycsb::SlmDbStore>(fx,
                                                  lsm::SlmDbOptions{});
    std::fprintf(stderr, "unknown store %s\n", which.c_str());
    std::abort();
}

/** Load the dataset, then run one mix; returns the run result. */
inline RunResult
loadAndRun(KvStore &store, Mix mix, const BenchScale &s, double theta = 0.99)
{
    WorkloadSpec load = WorkloadSpec::forMix(Mix::kLoad, s.records, 0);
    load.value_bytes = s.value_bytes;
    ycsb::loadPhase(store, load, s.threads);
    store.flushAll();
    WorkloadSpec run = WorkloadSpec::forMix(mix, s.records, s.ops, theta);
    run.value_bytes = s.value_bytes;
    return ycsb::runPhase(store, run, s.threads);
}

/** Run one mix against an already-loaded store. */
inline RunResult
runMix(KvStore &store, Mix mix, const BenchScale &s, double theta = 0.99,
       uint64_t ops_override = 0)
{
    WorkloadSpec run = WorkloadSpec::forMix(
        mix, s.records, ops_override ? ops_override : s.ops, theta);
    run.value_bytes = s.value_bytes;
    return ycsb::runPhase(store, run, s.threads);
}

/** Load the full dataset into @p store. */
inline void
loadDataset(KvStore &store, const BenchScale &s, int threads_override = 0)
{
    WorkloadSpec load = WorkloadSpec::forMix(Mix::kLoad, s.records, 0);
    load.value_bytes = s.value_bytes;
    ycsb::loadPhase(store, load,
                    threads_override ? threads_override : s.threads);
    store.flushAll();
}

inline void
printScale(const BenchScale &s)
{
    std::printf("# scale: records=%llu ops=%llu threads=%d ssds=%d "
                "value=%uB\n",
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.ops), s.threads, s.ssds,
                s.value_bytes);
}

inline void
printThroughputRow(const std::string &store, const std::string &workload,
                   const RunResult &r)
{
    std::printf("%-12s %-8s %10.1f Kops/s  (%llu ops in %.2fs)\n",
                store.c_str(), workload.c_str(), r.throughput() / 1e3,
                static_cast<unsigned long long>(r.ops),
                static_cast<double>(r.duration_ns) / 1e9);
    std::fflush(stdout);
}

inline void
printLatencyRow(const std::string &store, const std::string &workload,
                const Histogram &h)
{
    std::printf("%-12s %-8s avg=%8.1fus  p50=%8.1fus  p99=%8.1fus\n",
                store.c_str(), workload.c_str(), h.mean() / 1e3,
                static_cast<double>(h.percentile(0.5)) / 1e3,
                static_cast<double>(h.percentile(0.99)) / 1e3);
    std::fflush(stdout);
}

}  // namespace prism::bench
