/**
 * @file
 * Figure 15: (a) throughput vs Persistent Write Buffer size on LOAD and
 * YCSB-A; (b) lookup/scan throughput vs Scan-aware Value Cache size on
 * YCSB-C and YCSB-E. Sizes are scaled from the paper's 1-16 GB (PWB)
 * and 4-20 GB (SVC) to the reduced dataset.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    printScale(s);
    const uint64_t mb = 1 << 20;

    std::printf("== Figure 15a: throughput vs PWB size (per thread) ==\n");
    for (const uint64_t pwb_mb : {1ull, 2ull, 4ull, 8ull, 16ull}) {
        core::PrismOptions opts;
        opts.pwb_size_bytes = pwb_mb * mb;
        FixtureOptions fx = fixtureFor(s);
        fx.derive_prism_budgets = false;

        {
            ycsb::PrismStore store(fx, opts);
            WorkloadSpec load =
                WorkloadSpec::forMix(Mix::kLoad, s.records, 0);
            load.value_bytes = s.value_bytes;
            const RunResult lr = ycsb::loadPhase(store, load, s.threads);
            std::printf("PWB=%2lluMB LOAD   %9.1f Kops/s\n", pwb_mb,
                        lr.throughput() / 1e3);
            std::fflush(stdout);
            const RunResult ar = runMix(store, Mix::kA, s);
            std::printf("PWB=%2lluMB YCSB-A %9.1f Kops/s\n", pwb_mb,
                        ar.throughput() / 1e3);
            std::fflush(stdout);
        }
    }

    std::printf("== Figure 15b: throughput vs SVC size ==\n");
    const uint64_t dataset = s.records * s.value_bytes;
    for (const uint64_t pct : {4ull, 8ull, 12ull, 16ull, 20ull}) {
        core::PrismOptions opts;
        opts.svc_capacity_bytes =
            std::max<uint64_t>(dataset * pct / 100, 1 * mb);
        opts.pwb_size_bytes = 8 * mb;
        FixtureOptions fx = fixtureFor(s);
        fx.derive_prism_budgets = false;
        ycsb::PrismStore store(fx, opts);
        loadDataset(store, s);
        const RunResult cr = runMix(store, Mix::kC, s);
        const RunResult er =
            runMix(store, Mix::kE, s, 0.99, s.ops / 10);
        std::printf("SVC=%2llu%%  YCSB-C %9.1f Kops/s   YCSB-E %7.1f "
                    "Kops/s\n",
                    pct, cr.throughput() / 1e3, er.throughput() / 1e3);
        std::fflush(stdout);
    }
    return 0;
}
