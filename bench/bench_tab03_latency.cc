/**
 * @file
 * Table 3: operation latency (average / median / 99th percentile) for
 * YCSB A, C and E across Prism, KVell, MatrixKV and RocksDB-NVM.
 *
 * Slow-op capture (docs/OBSERVABILITY.md, "Tracing") runs alongside:
 * Prism ops slower than PRISM_BENCH_SLOWOP_US (default 2000 us) are
 * captured with their span trees, and the per-mix capture count rides
 * on each JSON row — tail latency in the table, attribution in
 * `prism_cli slowops` / the trace dump.
 */
#include "bench_util.h"
#include "common/trace.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    maybeTraceToFileAtExit(argc, argv);
    maybeProfileToFileAtExit(argc, argv);
    maybeTelemetryToFileAtExit(argc, argv);
    BenchScale s;
    printScale(s);
    std::printf("== Table 3: latency (us) for YCSB A / C / E ==\n");

    auto &tracer = trace::TraceRegistry::global();
    const uint64_t slow_us = envOr("PRISM_BENCH_SLOWOP_US", 2000);
    tracer.setSlowOpThresholdUs(slow_us);

    for (const char *name :
         {"Prism", "KVell", "MatrixKV", "RocksDB-NVM"}) {
        auto store = makeStore(name, fixtureFor(s));
        loadDataset(*store, s);
        for (const Mix mix : {Mix::kA, Mix::kC, Mix::kE}) {
            const uint64_t ops = mix == Mix::kE ? s.ops / 10 : s.ops;
            const uint64_t slow_before = tracer.slowOpsCaptured();
            const RunResult r = runMix(*store, mix, s, 0.99, ops);
            // Only Prism's op paths carry OpScope instrumentation, so
            // the delta is 0 for the baseline stores.
            const uint64_t slow =
                tracer.slowOpsCaptured() - slow_before;
            printLatencyRow(name, ycsb::mixName(mix), r.overall);
            char row[320];
            std::snprintf(
                row, sizeof(row),
                "{\"figure\":\"tab03\",\"store\":\"%s\","
                "\"workload\":\"%s\",\"avg_us\":%.1f,\"p50_us\":%.1f,"
                "\"p90_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,"
                "\"slow_ops\":%llu,\"slow_threshold_us\":%llu}",
                name, ycsb::mixName(mix),
                r.overall.mean() / 1e3,
                static_cast<double>(r.overall.percentile(0.5)) / 1e3,
                static_cast<double>(r.overall.percentile(0.9)) / 1e3,
                static_cast<double>(r.overall.percentile(0.99)) / 1e3,
                static_cast<double>(r.overall.percentile(0.999)) / 1e3,
                static_cast<unsigned long long>(slow),
                static_cast<unsigned long long>(slow_us));
            benchJsonRow(row);
        }
    }
    std::printf("# slow ops captured (>%llu us): %llu; inspect with "
                "prism_cli slowops or a --trace dump\n",
                static_cast<unsigned long long>(slow_us),
                static_cast<unsigned long long>(
                    tracer.slowOpsCaptured()));
    return 0;
}
