/**
 * @file
 * Table 3: operation latency (average / median / 99th percentile) for
 * YCSB A, C and E across Prism, KVell, MatrixKV and RocksDB-NVM.
 */
#include "bench_util.h"

using namespace prism;
using namespace prism::bench;

int
main(int argc, char **argv)
{
    maybeDumpStatsAtExit(argc, argv);
    BenchScale s;
    printScale(s);
    std::printf("== Table 3: latency (us) for YCSB A / C / E ==\n");

    for (const char *name :
         {"Prism", "KVell", "MatrixKV", "RocksDB-NVM"}) {
        auto store = makeStore(name, fixtureFor(s));
        loadDataset(*store, s);
        for (const Mix mix : {Mix::kA, Mix::kC, Mix::kE}) {
            const uint64_t ops = mix == Mix::kE ? s.ops / 10 : s.ops;
            const RunResult r = runMix(*store, mix, s, 0.99, ops);
            printLatencyRow(name, ycsb::mixName(mix), r.overall);
        }
    }
    return 0;
}
