/**
 * @file
 * HTTP ops endpoint (common/obs_server.h) correctness:
 *
 *  - renderPrometheus() emits well-formed exposition text: counters
 *    get `_total`, one `# TYPE` per family, `prism.shard.<n>.*` and
 *    `sim.ssd.<n>.*` flatten into `shard` / `device` labels, and
 *    histograms export cumulative `_bucket{le=}` with `_sum`/`_count`;
 *  - the server binds an ephemeral port (port 0), serves every
 *    endpoint, rejects malformed (400), non-GET (405), unknown (404)
 *    and oversized (431) requests, and a stopped server's port can be
 *    rebound immediately;
 *  - /healthz flips 200 -> 503 -> 200 as a device drops out and
 *    returns (sim dropout, the same switch the fault harness uses);
 *  - concurrent scrapes against a store under write load all succeed
 *    (runs under TSan in CI).
 *
 * Runs under TSan and asan-ubsan in CI (.github/workflows/ci.yml).
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/obs_server.h"
#include "common/stats.h"
#include "core/prism_db.h"
#include "core/shard_router.h"
#include "sim/device_profile.h"

namespace prism::obs {
namespace {

constexpr uint64_t kNvmBytes = 96ull * 1024 * 1024;
constexpr uint64_t kSsdBytes = 128ull * 1024 * 1024;

/** Blocking one-shot HTTP exchange against 127.0.0.1:port. */
struct HttpResponse {
    int status = -1;      ///< -1: connect/read failure
    std::string raw;      ///< full response, headers + body
    std::string body;     ///< bytes after the blank line
};

HttpResponse
httpExchange(int port, const std::string &request)
{
    HttpResponse r;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return r;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return r;
    }
    size_t off = 0;
    while (off < request.size()) {
        const ssize_t n =
            ::write(fd, request.data() + off, request.size() - off);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        r.raw.append(buf, static_cast<size_t>(n));
    ::close(fd);
    if (r.raw.rfind("HTTP/1.1 ", 0) == 0)
        r.status = std::atoi(r.raw.c_str() + 9);
    const size_t blank = r.raw.find("\r\n\r\n");
    if (blank != std::string::npos)
        r.body = r.raw.substr(blank + 4);
    return r;
}

HttpResponse
httpGet(int port, const std::string &path)
{
    return httpExchange(port, "GET " + path +
                                  " HTTP/1.1\r\nHost: t\r\n"
                                  "Connection: close\r\n\r\n");
}

core::PrismOptions
testOptions()
{
    core::PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;
    opts.svc_capacity_bytes = 2 * 1024 * 1024;
    opts.hsit_capacity = 32 * 1024;
    opts.chunk_bytes = 64 * 1024;
    return opts;
}

/** Single-shard router on fresh sim devices, ops server enabled. */
struct ObsRig {
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::shared_ptr<pmem::PmemRegion> region;
    std::unique_ptr<core::ShardRouter> db;

    explicit ObsRig(int obs_port = 0)
    {
        core::PrismOptions opts = testOptions();
        opts.shards = 1;
        opts.obs_port = obs_port;
        auto nvm = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_shared<pmem::PmemRegion>(nvm, true);
        for (int i = 0; i < 2; i++)
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile,
                /*timing=*/false));
        std::vector<core::ShardBackends> backends;
        backends.push_back({region, core::PrismDb::asBackends(ssds)});
        db = core::ShardRouter::open(opts, std::move(backends));
    }
};

TEST(RenderPrometheus, NamesTypesAndLabels)
{
    auto &reg = stats::StatsRegistry::global();
    reg.counter("obs.test.plain", "ops").add(3);
    reg.gauge("obs.test.level", "bytes").set(42);
    reg.counter("prism.shard.7.obstest", "ops").add(9);
    reg.counter("sim.ssd.3.obstest_bytes", "bytes").add(11);
    auto &h = reg.histogram("obs.test.lat_ns", "ns");
    h.record(10);
    h.record(1000);
    h.record(100000);

    const std::string out = renderPrometheus(reg.snapshot());

    // Counter: sanitized name + _total, typed once.
    EXPECT_NE(out.find("# TYPE obs_test_plain_total counter"),
              std::string::npos);
    EXPECT_NE(out.find("obs_test_plain_total 3"), std::string::npos);
    // Gauge: no _total suffix.
    EXPECT_NE(out.find("# TYPE obs_test_level gauge"),
              std::string::npos);
    EXPECT_NE(out.find("obs_test_level 42"), std::string::npos);
    // Indexed families flatten the index into a label.
    EXPECT_NE(out.find("prism_shard_obstest_total{shard=\"7\"} 9"),
              std::string::npos);
    EXPECT_NE(
        out.find("sim_ssd_obstest_bytes_total{device=\"3\"} 11"),
        std::string::npos);
    // Histogram: cumulative buckets, +Inf, _sum, _count.
    EXPECT_NE(out.find("# TYPE obs_test_lat_ns histogram"),
              std::string::npos);
    EXPECT_NE(out.find("obs_test_lat_ns_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(out.find("obs_test_lat_ns_count 3"), std::string::npos);
    EXPECT_NE(out.find("obs_test_lat_ns_sum"), std::string::npos);

    // Buckets must be cumulative (monotone non-decreasing in le order).
    uint64_t prev = 0;
    size_t pos = 0;
    int buckets = 0;
    while ((pos = out.find("obs_test_lat_ns_bucket{le=", pos)) !=
           std::string::npos) {
        const size_t close = out.find("} ", pos);
        ASSERT_NE(close, std::string::npos);
        const uint64_t v = std::strtoull(
            out.c_str() + close + 2, nullptr, 10);
        EXPECT_GE(v, prev);
        prev = v;
        buckets++;
        pos = close;
    }
    EXPECT_GE(buckets, 3);  // at least one per recorded magnitude +Inf
}

TEST(ObsServer, LifecycleEndpointsAndErrors)
{
    ObsServer srv;
    std::string err;
    ObsServer::Options so;
    so.port = 0;
    ASSERT_TRUE(srv.start(so, &err)) << err;
    ASSERT_GT(srv.port(), 0);
    const int port = srv.port();

    EXPECT_EQ(httpGet(port, "/").status, 200);
    EXPECT_EQ(httpGet(port, "/healthz").status, 200);
    EXPECT_EQ(httpGet(port, "/readyz").status, 200);
    const HttpResponse metrics = httpGet(port, "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
    EXPECT_EQ(httpGet(port, "/slowops").status, 200);
    EXPECT_EQ(httpGet(port, "/telemetry").status, 200);
    EXPECT_EQ(httpGet(port, "/trace").status, 200);
    EXPECT_EQ(httpGet(port, "/nope").status, 404);
    // Query strings are stripped before routing.
    EXPECT_EQ(httpGet(port, "/metrics?x=1").status, 200);

    EXPECT_EQ(httpExchange(port,
                           "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                  .status,
              405);
    EXPECT_EQ(httpExchange(port, "garbage\r\n\r\n").status, 400);
    EXPECT_EQ(
        httpExchange(port, "GET /metrics HTTP/1.1\r\nX: " +
                               std::string(10000, 'a') + "\r\n\r\n")
            .status,
        431);

    srv.stop();
    EXPECT_FALSE(srv.running());
    EXPECT_EQ(srv.port(), 0);
    // The port is released: a fresh server can bind it right away.
    ObsServer srv2;
    ObsServer::Options so2;
    so2.port = port;
    ASSERT_TRUE(srv2.start(so2, &err)) << err;
    EXPECT_EQ(srv2.port(), port);
    EXPECT_EQ(httpGet(port, "/healthz").status, 200);
    srv2.stop();
}

TEST(ObsServer, HealthFlipsOnDeviceDropout)
{
    ObsRig rig;
    const int port = rig.db->obsPort();
    ASSERT_GT(port, 0);

    for (uint64_t k = 0; k < 64; k++)
        ASSERT_TRUE(rig.db->put(k, "v" + std::to_string(k)).isOk());

    HttpResponse ok = httpGet(port, "/healthz");
    EXPECT_EQ(ok.status, 200);
    EXPECT_NE(ok.body.find("\"status\":\"ok\""), std::string::npos);

    rig.ssds[0]->setDropout(true);
    HttpResponse sick = httpGet(port, "/healthz");
    EXPECT_EQ(sick.status, 503);
    EXPECT_NE(sick.body.find("\"degraded_devices\":1"),
              std::string::npos);
    EXPECT_EQ(httpGet(port, "/readyz").status, 503);

    rig.ssds[0]->setDropout(false);
    EXPECT_EQ(httpGet(port, "/healthz").status, 200);
    EXPECT_EQ(httpGet(port, "/readyz").status, 200);
}

TEST(ObsServer, ConcurrentScrapesDuringWrites)
{
    ObsRig rig;
    const int port = rig.db->obsPort();
    ASSERT_GT(port, 0);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t v = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t k = v % 512;
            ASSERT_TRUE(
                rig.db->put(k, "w" + std::to_string(v)).isOk());
            v++;
        }
    });

    constexpr int kScrapers = 4;
    constexpr int kScrapesEach = 15;
    std::atomic<int> failures{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < kScrapers; t++) {
        scrapers.emplace_back([&] {
            for (int i = 0; i < kScrapesEach; i++) {
                const HttpResponse r = httpGet(port, "/metrics");
                if (r.status != 200 ||
                    r.body.find("prism_shard_ops_total") ==
                        std::string::npos)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &t : scrapers)
        t.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(ObsServer, ResolvePortPrecedence)
{
    ::unsetenv("PRISM_OBS_PORT");
    EXPECT_EQ(resolveObsPort(-1), -1);  // off by default
    EXPECT_EQ(resolveObsPort(0), 0);
    EXPECT_EQ(resolveObsPort(9100), 9100);
    ::setenv("PRISM_OBS_PORT", "9200", 1);
    EXPECT_EQ(resolveObsPort(-1), 9200);   // env fills the default
    EXPECT_EQ(resolveObsPort(9100), 9100); // explicit option wins
    ::unsetenv("PRISM_OBS_PORT");
}

}  // namespace
}  // namespace prism::obs
