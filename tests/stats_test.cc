/**
 * @file
 * Tests for prism::stats: find-or-create registry identity, sharded
 * counter aggregation under concurrency, gauge semantics, latency
 * percentiles across shards, and snapshot lookup/delta/rendering.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/stats.h"

namespace prism::stats {
namespace {

TEST(StatsRegistryTest, SameNameReturnsSameObject)
{
    auto &reg = StatsRegistry::global();
    Counter &a = reg.counter("test.registry.same_counter", "ops");
    Counter &b = reg.counter("test.registry.same_counter");
    EXPECT_EQ(&a, &b);

    Gauge &g1 = reg.gauge("test.registry.same_gauge");
    Gauge &g2 = reg.gauge("test.registry.same_gauge");
    EXPECT_EQ(&g1, &g2);

    LatencyStat &h1 = reg.histogram("test.registry.same_hist");
    LatencyStat &h2 = reg.histogram("test.registry.same_hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(StatsRegistryTest, LocalRegistryCountsDistinctNames)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.size(), 0u);
    reg.counter("a");
    reg.counter("a");  // find, not create
    reg.gauge("b");
    reg.histogram("c");
    EXPECT_EQ(reg.size(), 3u);
}

TEST(StatsCounterTest, ConcurrentAddsAggregateExactly)
{
    StatsRegistry reg;
    Counter &c = reg.counter("c", "ops");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; t++) {
        pool.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; i++)
                c.inc();
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(StatsGaugeTest, AddSubSet)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0);
    g.add(10);
    g.sub(3);
    EXPECT_EQ(g.value(), 7);
    g.sub(20);
    EXPECT_EQ(g.value(), -13);  // gauges may go negative
    g.set(42);
    EXPECT_EQ(g.value(), 42);
}

TEST(StatsLatencyTest, ShardedRecordsMergeWithSanePercentiles)
{
    StatsRegistry reg;
    LatencyStat &lat = reg.histogram("lat", "ns");
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 1000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; t++) {
        pool.emplace_back([&lat] {
            for (uint64_t i = 1; i <= kPerThread; i++)
                lat.record(i);
        });
    }
    for (auto &t : pool)
        t.join();

    const Histogram m = lat.merged();
    EXPECT_EQ(m.count(), kThreads * kPerThread);
    // Values are 1..1000 repeated; the histogram buckets values, so
    // only require the percentiles to be ordered and in range.
    EXPECT_GE(m.percentile(0.5), 250u);
    EXPECT_LE(m.percentile(0.5), 1024u);
    EXPECT_LE(m.percentile(0.5), m.percentile(0.99));
}

TEST(StatsLatencyTest, MergeFromFoldsExternalHistogram)
{
    StatsRegistry reg;
    LatencyStat &lat = reg.histogram("lat", "ns");
    Histogram h;
    for (uint64_t i = 0; i < 100; i++)
        h.record(500);
    lat.mergeFrom(h);
    lat.record(500);
    EXPECT_EQ(lat.merged().count(), 101u);
}

TEST(StatsSnapshotTest, LookupAndCounterDelta)
{
    StatsRegistry reg;
    Counter &c = reg.counter("snap.counter", "ops");
    Gauge &g = reg.gauge("snap.gauge", "bytes");
    LatencyStat &lat = reg.histogram("snap.hist", "ns");

    c.add(5);
    g.set(-7);
    lat.record(100);
    const StatsSnapshot before = reg.snapshot();

    c.add(12);
    const StatsSnapshot after = reg.snapshot();

    EXPECT_EQ(before.counter("snap.counter"), 5u);
    EXPECT_EQ(after.counter("snap.counter"), 17u);
    EXPECT_EQ(after.counterDelta(before, "snap.counter"), 12u);
    EXPECT_EQ(after.gauge("snap.gauge"), -7);

    const MetricSnapshot *h = after.histogram("snap.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    EXPECT_EQ(h->unit, "ns");

    // Absent names are zero / null, never an error.
    EXPECT_EQ(after.counter("no.such.metric"), 0u);
    EXPECT_EQ(after.gauge("no.such.metric"), 0);
    EXPECT_EQ(after.histogram("no.such.metric"), nullptr);
    EXPECT_EQ(after.counterDelta(before, "no.such.metric"), 0u);
}

TEST(StatsSnapshotTest, SnapshotIsSortedByName)
{
    StatsRegistry reg;
    reg.counter("z.last");
    reg.counter("a.first");
    reg.gauge("m.middle");
    const StatsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.metrics.size(), 3u);
    EXPECT_EQ(snap.metrics[0].name, "a.first");
    EXPECT_EQ(snap.metrics[1].name, "m.middle");
    EXPECT_EQ(snap.metrics[2].name, "z.last");
}

TEST(StatsSnapshotTest, TextAndJsonRenderEveryMetric)
{
    StatsRegistry reg;
    reg.counter("render.counter", "ops").add(3);
    reg.gauge("render.gauge", "bytes").set(9);
    reg.histogram("render.hist", "ns").record(77);
    const StatsSnapshot snap = reg.snapshot();

    const std::string text = snap.toString();
    EXPECT_NE(text.find("render.counter"), std::string::npos);
    EXPECT_NE(text.find("render.gauge"), std::string::npos);
    EXPECT_NE(text.find("render.hist"), std::string::npos);
    EXPECT_NE(text.find("p90="), std::string::npos);
    EXPECT_NE(text.find("p999="), std::string::npos);

    const std::string json = snap.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"render.counter\":3"), std::string::npos);
    EXPECT_NE(json.find("\"p90\""), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);

    const MetricSnapshot *h = snap.histogram("render.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->p90, h->p50);
    EXPECT_GE(h->p99, h->p90);
    EXPECT_GE(h->p999, h->p99);
}

TEST(HistogramSubtractTest, IntervalDeltaIsExactForSmallValues)
{
    // Values < 32 land in exact one-value buckets, so an interval
    // delta on them has exact count/sum/mean and bucket-exact min/max.
    Histogram earlier;
    earlier.record(5);
    earlier.record(7);
    Histogram cur = earlier;
    cur.record(5);
    cur.record(9);
    cur.record(20);

    cur.subtract(earlier);
    EXPECT_EQ(cur.count(), 3u);
    EXPECT_DOUBLE_EQ(cur.mean(), (5.0 + 9.0 + 20.0) / 3.0);
    EXPECT_EQ(cur.min(), 5u);
    EXPECT_EQ(cur.max(), 20u);
}

TEST(HistogramSubtractTest, SubtractingEverythingYieldsEmpty)
{
    Histogram h;
    h.record(100);
    h.record(4000);
    Histogram same = h;
    h.subtract(same);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.max(), 0u);
}

TEST(StatsSnapshotTest, HistogramDeltaCoversOnlyTheWindow)
{
    StatsRegistry reg;
    LatencyStat &lat = reg.histogram("delta.hist", "ns");
    lat.record(5);
    lat.record(7);
    const StatsSnapshot before = reg.snapshot();

    lat.record(3);
    lat.record(11);
    const StatsSnapshot after = reg.snapshot();

    const Histogram w = after.histogramDelta(before, "delta.hist");
    EXPECT_EQ(w.count(), 2u);
    EXPECT_DOUBLE_EQ(w.mean(), 7.0);  // (3 + 11) / 2
    EXPECT_EQ(w.min(), 3u);
    EXPECT_EQ(w.max(), 11u);

    // An empty window and an unknown name both give empty histograms.
    EXPECT_EQ(after.histogramDelta(after, "delta.hist").count(), 0u);
    EXPECT_EQ(after.histogramDelta(before, "no.such").count(), 0u);
}

TEST(StatsSnapshotTest, HistogramDeltaMergesAcrossThreadShards)
{
    // LatencyStat shards by thread; the snapshot merges the shards, so
    // a window delta must see samples recorded on any thread.
    StatsRegistry reg;
    LatencyStat &lat = reg.histogram("delta.sharded", "ns");
    const StatsSnapshot before = reg.snapshot();
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 500;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; t++) {
        pool.emplace_back([&lat] {
            for (uint64_t i = 0; i < kPerThread; i++)
                lat.record(16);
        });
    }
    for (auto &t : pool)
        t.join();
    const StatsSnapshot after = reg.snapshot();
    const Histogram w = after.histogramDelta(before, "delta.sharded");
    EXPECT_EQ(w.count(), kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(w.mean(), 16.0);
}

TEST(StatsRegistryTest, GlobalRegistryHoldsEngineMetricsAcrossThreads)
{
    // Increment one global metric from many threads and observe the
    // exact delta through snapshots — the idiom the integration tests
    // and benches rely on.
    auto &reg = StatsRegistry::global();
    Counter &c = reg.counter("test.global.concurrent", "ops");
    const StatsSnapshot before = reg.snapshot();
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 50000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; t++) {
        pool.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; i++)
                c.inc();
        });
    }
    for (auto &t : pool)
        t.join();
    const StatsSnapshot after = reg.snapshot();
    EXPECT_EQ(after.counterDelta(before, "test.global.concurrent"),
              kThreads * kPerThread);
}

}  // namespace
}  // namespace prism::stats
