/**
 * @file
 * Cross-cutting integration tests: device-model conformance against
 * the Figure-1 profiles, recovery interacting with GC-compacted state,
 * HSIT entry reuse across delete/insert cycles, and API edge cases.
 */
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "common/stats.h"
#include "common/trace.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"
#include "ycsb/driver.h"
#include "ycsb/stores.h"

namespace prism {
namespace {

// ---------------------------------------------------------------------------
// Device model conformance

TEST(DeviceModelTest, SsdLatencyTracksProfile)
{
    // A lone 4 KB read on an idle device should complete near the
    // profile's media latency (plus small model overheads).
    sim::SsdDevice dev(64 << 20, sim::kSamsung980ProProfile, true);
    std::vector<uint8_t> buf(4096);
    Histogram lat;
    for (int i = 0; i < 20; i++) {
        const uint64_t t0 = nowNs();
        ASSERT_TRUE(dev.readSync(static_cast<uint64_t>(i) * 4096,
                                 buf.data(), 4096)
                        .isOk());
        lat.record(nowNs() - t0);
    }
    // 50 us profile latency; allow up to 4x for scheduler noise.
    EXPECT_GE(lat.percentile(0.5), 45 * 1000u);
    EXPECT_LE(lat.percentile(0.5), 200 * 1000u);
}

TEST(DeviceModelTest, SsdBandwidthIsBounded)
{
    // Pushing far more than the device's write bandwidth must take at
    // least bytes / bandwidth wall time.
    sim::DeviceProfile slow = sim::kSamsung980ProProfile;
    slow.write_bw_bytes_per_sec = 100e6;  // 100 MB/s for a fast test
    sim::SsdDevice dev(256 << 20, slow, true);
    std::vector<uint8_t> chunk(1 << 20, 7);
    const uint64_t t0 = nowNs();
    constexpr int kChunks = 30;  // 30 MB at 100 MB/s => >= 300 ms
    std::vector<sim::SsdCompletion> done;
    for (int i = 0; i < kChunks; i++) {
        sim::SsdIoRequest req;
        req.op = sim::SsdIoRequest::Op::kWrite;
        req.offset = static_cast<uint64_t>(i) << 20;
        req.length = 1 << 20;
        req.src = chunk.data();
        req.user_data = static_cast<uint64_t>(i) + 1;
        ASSERT_TRUE(dev.submit(req).isOk());
    }
    while (done.size() < kChunks)
        dev.waitCompletions(done, kChunks, 2000);
    const double secs = static_cast<double>(nowNs() - t0) / 1e9;
    // The token bucket grants an 8 MB burst; the remaining ~22 MB must
    // be paced at 100 MB/s.
    EXPECT_GE(secs, 0.2);  // bandwidth cap enforced
    EXPECT_LE(secs, 3.0);
}

TEST(DeviceModelTest, NvmReadScalesWithTimeScale)
{
    sim::NvmDevice dev(1 << 20, sim::kOptaneDcpmmProfile, true);
    const uint64_t t0 = nowNs();
    for (int i = 0; i < 200; i++)
        dev.chargeRead(64);
    const uint64_t full = nowNs() - t0;

    TimeScale::set(0.25);
    const uint64_t t1 = nowNs();
    for (int i = 0; i < 200; i++)
        dev.chargeRead(64);
    const uint64_t quarter = nowNs() - t1;
    TimeScale::set(1.0);
    // 200 x 300 ns = 60 us at full scale; the scaled run must be
    // clearly cheaper.
    EXPECT_GT(full, quarter);
    EXPECT_GE(full, 55 * 1000u);
}

// ---------------------------------------------------------------------------
// Store integration

struct Rig {
    core::PrismOptions opts;
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<core::PrismDb> db;

    explicit Rig(core::PrismOptions o = {},
                 uint64_t ssd_bytes = 128ull << 20)
        : opts(o)
    {
        opts.hsit_capacity = 64 * 1024;
        opts.chunk_bytes = 64 * 1024;
        nvm = std::make_shared<sim::NvmDevice>(
            128ull << 20, sim::kOptaneDcpmmProfile, false);
        region = std::make_shared<pmem::PmemRegion>(nvm, true);
        for (int i = 0; i < 2; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                ssd_bytes, sim::kSamsung980ProProfile, false));
        }
        db = core::PrismDb::open(opts, region, ssds);
    }

    void
    restart()
    {
        db.reset();
        db = core::PrismDb::recover(opts, region, ssds);
    }
};

TEST(IntegrationTest, RecoveryAfterGcCompaction)
{
    core::PrismOptions opts;
    opts.pwb_size_bytes = 512 * 1024;
    // Small Value Storages so churn actually crosses the GC watermark.
    Rig rig(opts, 4ull << 20);
    // Churn so GC relocates surviving values, then recover: the
    // recovered bitmaps/pointers must reflect the *moved* locations.
    for (int round = 0; round < 20; round++) {
        for (uint64_t k = 0; k < 3000; k++) {
            ASSERT_TRUE(rig.db
                            ->put(k, "r" + std::to_string(round) + "k" +
                                         std::to_string(k) +
                                         std::string(300, 'g'))
                            .isOk());
        }
        rig.db->flushAll();
    }
    rig.db->forceGc();
    uint64_t gc = 0;
    for (size_t i = 0; i < rig.db->valueStorageCount(); i++)
        gc += rig.db->valueStorage(i).gcPasses();
    ASSERT_GT(gc, 0u);

    rig.restart();
    EXPECT_EQ(rig.db->size(), 3000u);
    std::string v;
    for (uint64_t k = 0; k < 3000; k += 7) {
        ASSERT_TRUE(rig.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v.substr(0, 3), "r19");
    }
    // Post-recovery writes and GC must keep working.
    for (uint64_t k = 0; k < 500; k++)
        ASSERT_TRUE(rig.db->put(k, "post").isOk());
    rig.db->flushAll();
    ASSERT_TRUE(rig.db->get(100, &v).isOk());
    EXPECT_EQ(v, "post");
}

TEST(IntegrationTest, HsitEntriesRecycleAcrossDeleteCycles)
{
    Rig rig;
    const uint64_t before = rig.db->hsit().liveCount();
    for (int cycle = 0; cycle < 30; cycle++) {
        for (uint64_t k = 0; k < 500; k++)
            ASSERT_TRUE(rig.db->put(k, "c" + std::to_string(cycle))
                            .isOk());
        for (uint64_t k = 0; k < 500; k++)
            ASSERT_TRUE(rig.db->del(k).isOk());
        rig.db->epochs().drain();
    }
    // Entries must be recycled, not leaked: live count returns to
    // baseline and the table never needed more than one generation.
    EXPECT_EQ(rig.db->size(), 0u);
    EXPECT_LE(rig.db->hsit().liveCount(), before + 500);
}

TEST(IntegrationTest, RecoveryPreservesFreeEntryBudget)
{
    Rig rig;
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(rig.db->put(k, "x").isOk());
    for (uint64_t k = 0; k < 2000; k += 2)
        ASSERT_TRUE(rig.db->del(k).isOk());
    rig.restart();
    // The rebuilt free list must allow reusing every unreachable entry:
    // filling back up must not exhaust the table.
    for (uint64_t k = 10000; k < 10000 + 60000; k++)
        ASSERT_TRUE(rig.db->put(k, "y").isOk()) << k;
    EXPECT_EQ(rig.db->size(), 1000u + 60000u);
}

TEST(IntegrationTest, MultiGetEdgeCases)
{
    Rig rig;
    std::vector<std::optional<std::string>> out;
    // Empty batch.
    ASSERT_TRUE(rig.db->multiGet({}, &out).isOk());
    EXPECT_TRUE(out.empty());

    ASSERT_TRUE(rig.db->put(5, "five").isOk());
    rig.db->flushAll();
    // Duplicate keys are each answered; missing keys stay nullopt.
    ASSERT_TRUE(rig.db->multiGet({5, 5, 6, 5}, &out).isOk());
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(*out[0], "five");
    EXPECT_EQ(*out[1], "five");
    EXPECT_FALSE(out[2].has_value());
    EXPECT_EQ(*out[3], "five");
}

TEST(IntegrationTest, ConcurrentMixedWorkloadStaysConsistent)
{
    core::PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;
    Rig rig(opts);
    // Writers own disjoint ranges with monotone versions; readers and
    // scanners verify monotonicity throughout.
    constexpr int kWriters = 2;
    constexpr uint64_t kRange = 400;
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; w++) {
        threads.emplace_back([&, w] {
            uint64_t version = 0;
            while (!stop.load()) {
                for (uint64_t k = 0; k < kRange; k++) {
                    const uint64_t key =
                        static_cast<uint64_t>(w) * 10000 + k;
                    rig.db->put(key, std::to_string(version) + "|" +
                                         std::string(120, 'm'));
                }
                version++;
            }
        });
    }
    threads.emplace_back([&] {
        Xorshift rng(3);
        std::string v;
        std::vector<std::pair<uint64_t, std::string>> out;
        while (!stop.load()) {
            const uint64_t key = rng.nextUniform(2) * 10000 +
                                 rng.nextUniform(kRange);
            const Status st = rig.db->get(key, &v);
            if (st.isOk())
                ASSERT_NE(v.find('|'), std::string::npos);
            rig.db->scan(key, 5, &out);
            for (const auto &[k2, v2] : out)
                ASSERT_NE(v2.find('|'), std::string::npos) << k2;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    stop.store(true);
    for (auto &t : threads)
        t.join();
}

// ---------------------------------------------------------------------------
// Metrics registry consistency (docs/OBSERVABILITY.md)

TEST(IntegrationTest, PeriodicStatsDumperStartsAndStopsCleanly)
{
    core::PrismOptions opts;
    opts.stats_dump_interval_ms = 5;
    opts.stats_dump_json = true;
    Rig rig(opts);
    for (uint64_t k = 0; k < 100; k++)
        ASSERT_TRUE(rig.db->put(k, "dump").isOk());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    // Destruction must join the dumper without deadlock; rely on the
    // test timeout to catch a hang.
    rig.db.reset();
}

TEST(IntegrationTest, RegistryStaysConsistentAcrossYcsbRun)
{
    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.dataset_bytes = 8ull << 20;
    fx.ssd_bytes = 64ull << 20;
    fx.model_timing = false;
    ycsb::PrismStore store(fx, core::PrismOptions{});

    constexpr uint64_t kRecords = 2000;
    constexpr uint32_t kValueBytes = 512;
    const auto start = stats::StatsRegistry::global().snapshot();

    ycsb::WorkloadSpec load =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kLoad, kRecords, 0);
    load.value_bytes = kValueBytes;
    ycsb::loadPhase(store, load, 2);
    store.flushAll();

    const auto before = stats::StatsRegistry::global().snapshot();
    ycsb::WorkloadSpec run =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kA, kRecords, 4000, 0.99);
    run.value_bytes = kValueBytes;
    ycsb::runPhase(store, run, 2);
    store.flushAll();
    const auto after = stats::StatsRegistry::global().snapshot();

    // YCSB A has no scans and every key was loaded, so each get is
    // classified as exactly one of SVC hit or SVC miss.
    const uint64_t gets = after.counterDelta(before, "prism.gets");
    EXPECT_GT(gets, 0u);
    EXPECT_EQ(after.counterDelta(before, "prism.svc.hits") +
                  after.counterDelta(before, "prism.svc.misses"),
              gets);
    EXPECT_GT(after.counterDelta(before, "prism.svc.hits"), 0u);
    EXPECT_GT(after.counterDelta(before, "prism.pwb.appends"), 0u);

    // The devices must have absorbed at least the live dataset: after
    // flushAll every live value has been written to SSD once or more.
    EXPECT_GE(after.counterDelta(start, "sim.ssd.bytes_written"),
              kRecords * kValueBytes);

    // The driver folded its phase histograms into the registry.
    const stats::MetricSnapshot *load_lat =
        after.histogram("ycsb.load.latency_ns");
    ASSERT_NE(load_lat, nullptr);
    EXPECT_GE(load_lat->count, kRecords);
    const stats::MetricSnapshot *run_lat =
        after.histogram("ycsb.run.latency_ns");
    ASSERT_NE(run_lat, nullptr);
    EXPECT_GT(run_lat->count, 0u);
}

// ---------------------------------------------------------------------------
// Cross-layer tracing (docs/OBSERVABILITY.md, "Tracing")

TEST(IntegrationTest, YcsbTraceCoversLayersAndNestsChunkWrites)
{
    auto &tracer = trace::TraceRegistry::global();
    tracer.clear();

    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.dataset_bytes = 8ull << 20;
    fx.ssd_bytes = 64ull << 20;
    fx.model_timing = false;
    core::PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;  // force reclaim passes
    opts.trace_enabled = true;         // the PrismOptions wiring path
    ycsb::PrismStore store(fx, opts);
    EXPECT_TRUE(tracer.enabled());

    constexpr uint64_t kRecords = 2000;
    ycsb::WorkloadSpec load =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kLoad, kRecords, 0);
    load.value_bytes = 512;
    ycsb::loadPhase(store, load, 2);
    store.flushAll();
    ycsb::WorkloadSpec run =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kA, kRecords, 4000, 0.99);
    run.value_bytes = 512;
    ycsb::runPhase(store, run, 2);
    store.flushAll();
    tracer.setEnabled(false);

    // The PR 3 acceptance check: spans from >= 4 layers, and at least
    // one PWB reclaim pass whose per-chunk writes nest inside it
    // ((ts, dur) containment on the same thread — exactly what the
    // Perfetto view draws as parent/child).
    const uint32_t reclaim_id = tracer.internName("pwb.reclaim_pass");
    const uint32_t chunk_id = tracer.internName("pwb.chunk_write");
    bool core = false, pwb = false, svc = false, ssd = false;
    uint64_t reclaim_passes = 0;
    bool nested_chunk = false;
    for (const auto &[tid, evs] : tracer.snapshotAll()) {
        std::vector<std::pair<uint64_t, uint64_t>> passes;
        for (const auto &e : evs) {
            if (e.type == trace::EventType::kSpan &&
                e.name_id == reclaim_id)
                passes.emplace_back(e.ts_ns, e.ts_ns + e.dur_ns);
        }
        reclaim_passes += passes.size();
        for (const auto &e : evs) {
            if (e.type != trace::EventType::kSpan)
                continue;
            const std::string n = tracer.nameOf(e.name_id);
            core |= n.rfind("prism.", 0) == 0;
            pwb |= n.rfind("pwb.", 0) == 0;
            svc |= n.rfind("svc.", 0) == 0;
            ssd |= n.rfind("ssd.", 0) == 0;
            if (e.name_id == chunk_id) {
                for (const auto &[s, t] : passes) {
                    nested_chunk |=
                        e.ts_ns >= s && e.ts_ns + e.dur_ns <= t;
                }
            }
        }
    }
    EXPECT_TRUE(core) << "no prism.* op spans";
    EXPECT_TRUE(pwb) << "no pwb.* spans";
    EXPECT_TRUE(svc) << "no svc.* spans";
    EXPECT_TRUE(ssd) << "no ssd.* spans";
    EXPECT_GE(reclaim_passes, 1u);
    EXPECT_TRUE(nested_chunk)
        << "no pwb.chunk_write span nested in a pwb.reclaim_pass";

    // And the dump itself is a Chrome-trace JSON object.
    const std::string json = tracer.exportJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("pwb.reclaim_pass"), std::string::npos);
}

}  // namespace
}  // namespace prism
