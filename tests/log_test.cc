/**
 * @file
 * Structured leveled logger (common/log.h) correctness:
 *
 *  - level filtering: messages below the configured level never reach
 *    the tail, and the filter is adjustable at runtime;
 *  - per-site rate limiting: a hot site is throttled, suppressed
 *    messages are counted (prism.log.suppressed.<level>) and the next
 *    emission carries the "(N similar suppressed)" annotation, while
 *    an unrelated site keeps its own budget;
 *  - JSON-lines output escapes quotes, backslashes and control
 *    characters so every line is a parseable object;
 *  - 8 concurrent writers race the logger without corruption (runs
 *    under TSan in CI) and every message is accounted for as either
 *    emitted or suppressed;
 *  - PRISM_CHECK failures route through the logger (message reaches
 *    stderr) and still abort.
 *
 * Tests silence the sink (setSink(nullptr)) and assert on the tail
 * ring, so the suite's own output stays clean.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/logging.h"
#include "common/stats.h"

namespace prism::log {
namespace {

/** Tail lines containing @p needle. */
int
tailCount(const std::string &needle)
{
    int n = 0;
    for (const auto &line : Logger::global().tail())
        if (line.find(needle) != std::string::npos)
            n++;
    return n;
}

class LogTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        auto &lg = Logger::global();
        lg.setSink(nullptr);  // tail-only; keep test output clean
        lg.setJson(false);
        lg.setLevel(Level::kDebug);
        lg.setRateLimit(1e9, 1u << 20);  // effectively unlimited
        lg.clearTailForTest();
    }
    void TearDown() override
    {
        auto &lg = Logger::global();
        lg.setSink(stderr);
        lg.setJson(false);
        lg.setLevel(Level::kInfo);
        lg.setRateLimit(10.0, 20);  // logger defaults
    }
};

TEST_F(LogTest, LevelNamesRoundTrip)
{
    EXPECT_STREQ(levelName(Level::kDebug), "debug");
    EXPECT_STREQ(levelName(Level::kError), "error");
    EXPECT_EQ(parseLevel("warn", Level::kInfo), Level::kWarn);
    EXPECT_EQ(parseLevel("bogus", Level::kInfo), Level::kInfo);
    EXPECT_EQ(parseLevel(nullptr, Level::kError), Level::kError);
}

TEST_F(LogTest, LevelFiltering)
{
    auto &lg = Logger::global();
    lg.setLevel(Level::kWarn);
    EXPECT_FALSE(lg.enabled(Level::kInfo));
    EXPECT_TRUE(lg.enabled(Level::kWarn));

    PRISM_LOG_INFO("test.filter", "info dropped %d", 1);
    PRISM_LOG_WARN("test.filter", "warn kept %d", 2);
    PRISM_LOG_ERROR("test.filter", "error kept %d", 3);

    EXPECT_EQ(tailCount("info dropped"), 0);
    EXPECT_EQ(tailCount("warn kept 2"), 1);
    EXPECT_EQ(tailCount("error kept 3"), 1);

    lg.setLevel(Level::kDebug);
    PRISM_LOG_INFO("test.filter", "info now kept");
    EXPECT_EQ(tailCount("info now kept"), 1);
}

TEST_F(LogTest, RateLimitSuppressionIsCountedPerSite)
{
    auto &lg = Logger::global();
    // Tiny budget for sites registered from here on: burst of 2,
    // negligible refill.
    lg.setRateLimit(1e-6, 2);
    auto &reg = stats::StatsRegistry::global();
    const uint64_t emitted0 =
        reg.counter("prism.log.emitted.warn").value();
    const uint64_t suppressed0 =
        reg.counter("prism.log.suppressed.warn").value();

    for (int i = 0; i < 50; i++)
        PRISM_LOG_WARN("test.hot_site", "hot %d", i);
    // A different site has its own bucket: not starved by the hot one.
    PRISM_LOG_WARN("test.cold_site", "cold still flows");

    const uint64_t emitted =
        reg.counter("prism.log.emitted.warn").value() - emitted0;
    const uint64_t suppressed =
        reg.counter("prism.log.suppressed.warn").value() - suppressed0;
    EXPECT_EQ(emitted, 3u);       // hot burst of 2 + the cold site
    EXPECT_EQ(suppressed, 48u);   // the rest of the hot loop
    EXPECT_EQ(tailCount("hot "), 2);
    EXPECT_EQ(tailCount("cold still flows"), 1);
}

TEST_F(LogTest, SuppressionAnnotationOnNextEmission)
{
    auto &lg = Logger::global();
    // burst 2 with a refill fast enough to re-open the bucket after a
    // short sleep: 50/s refills one token in 20ms.
    lg.setRateLimit(50.0, 2);
    PRISM_LOG_WARN("test.annot2", "a");
    PRISM_LOG_WARN("test.annot2", "b");
    PRISM_LOG_WARN("test.annot2", "dropped-1");
    PRISM_LOG_WARN("test.annot2", "dropped-2");
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    PRISM_LOG_WARN("test.annot2", "after refill");
    EXPECT_EQ(tailCount("dropped-1"), 0);
    EXPECT_EQ(tailCount("after refill"), 1);
    EXPECT_EQ(tailCount("(2 similar suppressed)"), 1);
}

TEST_F(LogTest, JsonLinesAreEscaped)
{
    auto &lg = Logger::global();
    lg.setJson(true);
    PRISM_LOG_ERROR("test.json", "quote\" slash\\ newline\n tab\t end");
    const auto tail = lg.tail();
    ASSERT_FALSE(tail.empty());
    const std::string &line = tail.back();
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos);
    EXPECT_NE(line.find("\"site\":\"test.json\""), std::string::npos);
    EXPECT_NE(line.find("quote\\\""), std::string::npos);
    EXPECT_NE(line.find("slash\\\\"), std::string::npos);
    EXPECT_NE(line.find("newline\\n"), std::string::npos);
    EXPECT_NE(line.find("tab\\t"), std::string::npos);
    // No raw control characters survive in the line.
    for (const char c : line)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST_F(LogTest, ConcurrentWritersAccountForEveryMessage)
{
    auto &lg = Logger::global();
    lg.setRateLimit(1e-6, 100);  // force both outcomes under the race
    auto &reg = stats::StatsRegistry::global();
    const uint64_t emitted0 =
        reg.counter("prism.log.emitted.info").value();
    const uint64_t suppressed0 =
        reg.counter("prism.log.suppressed.info").value();

    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; i++)
                PRISM_LOG_INFO("test.mt", "t%d msg %d", t, i);
        });
    }
    for (auto &th : threads)
        th.join();

    const uint64_t emitted =
        reg.counter("prism.log.emitted.info").value() - emitted0;
    const uint64_t suppressed =
        reg.counter("prism.log.suppressed.info").value() - suppressed0;
    EXPECT_EQ(emitted + suppressed,
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_GT(emitted, 0u);
    EXPECT_GT(suppressed, 0u);
}

using LogDeathTest = LogTest;

TEST_F(LogDeathTest, CheckFailureRoutesThroughLogger)
{
    // PRISM_CHECK routes through Logger::logRaw -> stderr before the
    // abort, so the death-test matcher sees the structured message.
    // The sink is re-pointed at stderr *inside* the statement: the
    // death-test child inherits the fixture's nullptr sink.
    EXPECT_DEATH(
        {
            Logger::global().setSink(stderr);
            PRISM_CHECK(1 == 2);
        },
        "PRISM_CHECK failed: 1 == 2");
}

}  // namespace
}  // namespace prism::log
