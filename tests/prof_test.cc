/**
 * @file
 * Tests for the in-process profiler (common/prof.h): sampler
 * lifecycle, the per-thread sample ring, CPU attribution of a busy
 * spin, lock-contention accounting, the collapsed-stack export, and
 * the disabled-is-free contract.
 *
 * The profiler is process-wide, so every test tears it back down; the
 * suite is written to pass in any order but not concurrently with
 * itself.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/prof.h"
#include "common/stats.h"
#include "common/thread_util.h"
#include "common/trace.h"

using namespace prism;

// Sanitizers intercept signals and slow everything down unevenly;
// attribution thresholds relax there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PRISM_PROF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PRISM_PROF_SANITIZED 1
#endif
#endif

namespace {

struct ProfilerGuard {
    ~ProfilerGuard() { prof::Profiler::global().stop(); }
};

void
spinMillis(uint64_t ms, const std::atomic<bool> *stop = nullptr)
{
    const auto end =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    volatile uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < end) {
        for (int i = 0; i < 4096; i++)
            sink = sink * 2654435761u + static_cast<uint64_t>(i);
        if (stop != nullptr && stop->load(std::memory_order_relaxed))
            return;
    }
}

}  // namespace

// External linkage + noinline so the frame both survives optimization
// and resolves through dladdr (the dynamic symbol table only carries
// external symbols).
__attribute__((noinline)) void
profTestBusySpin(uint64_t ms)
{
    spinMillis(ms);
    // Keep the call from being tail-call-folded out of the stack.
    std::atomic_signal_fence(std::memory_order_seq_cst);
}

TEST(ProfilerLifecycle, StartStopRestart)
{
    ProfilerGuard guard;
    auto &p = prof::Profiler::global();
    ASSERT_FALSE(p.running());

    ASSERT_TRUE(p.start(99));
    EXPECT_TRUE(p.running());
    EXPECT_EQ(p.hz(), 99);
    // Second start is refused: the first owner stops it.
    EXPECT_FALSE(p.start(50));
    EXPECT_EQ(p.hz(), 99);

    p.stop();
    EXPECT_FALSE(p.running());
    EXPECT_EQ(p.hz(), 0);

    // Restart works and re-arms registered threads.
    ASSERT_TRUE(p.start(200));
    EXPECT_TRUE(p.running());
    EXPECT_EQ(p.hz(), 200);
    ThreadId::self();  // ensure this thread is registered
    spinMillis(50);
    EXPECT_GE(p.threadsArmed(), 1);
    p.stop();
    EXPECT_FALSE(p.running());
}

TEST(ProfilerLifecycle, HzClamped)
{
    ProfilerGuard guard;
    auto &p = prof::Profiler::global();
    ASSERT_TRUE(p.start(100000));
    EXPECT_LE(p.hz(), 1000);
    p.stop();
    EXPECT_FALSE(p.start(0));
    EXPECT_FALSE(p.start(-5));
    EXPECT_FALSE(p.running());
}

TEST(ProfilerLifecycle, ResolveHzPrecedence)
{
    ::unsetenv("PRISM_PROF_HZ");
    EXPECT_EQ(prof::resolveHz(250), 250);
    EXPECT_EQ(prof::resolveHz(0), 0);
    ::setenv("PRISM_PROF_HZ", "77", 1);
    EXPECT_EQ(prof::resolveHz(0), 77);
    EXPECT_EQ(prof::resolveHz(250), 250);  // option wins over env
    ::unsetenv("PRISM_PROF_HZ");
}

TEST(SampleRing, WrapKeepsNewestAndCountsAll)
{
    prof::SampleRing ring(64);
    ASSERT_EQ(ring.capacity(), 64u);

    uint64_t frames[4] = {0x1000, 0x2000, 0x3000, 0x4000};
    for (uint32_t i = 0; i < 200; i++)
        ring.emit(1, /*leaf_id=*/i, frames, 4);

    // head() is monotonic: wraparound never loses the *count*, only
    // old payloads. (ThreadId recycling hands a ring to a new thread;
    // mark()-based deltas stay correct because head never resets.)
    EXPECT_EQ(ring.head(), 200u);

    std::vector<prof::SampleRing::Sample> out;
    ring.snapshot(0, out);
    ASSERT_EQ(out.size(), 64u);
    // The retained window is the newest 64 emits (leaf ids 136..199).
    for (const auto &s : out) {
        EXPECT_GE(s.leaf_id, 136u);
        EXPECT_LT(s.leaf_id, 200u);
        ASSERT_EQ(s.nframes, 4u);
        EXPECT_EQ(s.frames[0], 0x1000u);
        EXPECT_EQ(s.frames[3], 0x4000u);
    }

    // since-cursor past the window -> only the tail.
    out.clear();
    ring.snapshot(198, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST(SampleRing, FrameCapTruncates)
{
    prof::SampleRing ring(8);
    std::vector<uint64_t> frames(prof::detail::kMaxFrames + 16);
    for (size_t i = 0; i < frames.size(); i++)
        frames[i] = 0x1000 + i;
    ring.emit(2, 7, frames.data(),
              static_cast<uint32_t>(frames.size()));
    std::vector<prof::SampleRing::Sample> out;
    ring.snapshot(0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].nframes, prof::detail::kMaxFrames);
    EXPECT_EQ(out[0].layer, 2);
    EXPECT_EQ(out[0].leaf_id, 7u);
}

TEST(Profiler, AttributesBusySpin)
{
    ProfilerGuard guard;
    auto &p = prof::Profiler::global();
    const auto marks = p.mark();
    ASSERT_TRUE(p.start(500));

    std::thread worker([] {
        ThreadId::self();  // register -> the sampler arms this thread
        profTestBusySpin(600);
    });
    worker.join();

    const std::string folded = p.collectFolded(&marks);
    p.stop();

    // Aggregate sample weight attributed to the spinning frame vs all.
    uint64_t total = 0, spin = 0;
    size_t pos = 0;
    while (pos < folded.size()) {
        size_t eol = folded.find('\n', pos);
        if (eol == std::string::npos)
            eol = folded.size();
        const std::string line = folded.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        const uint64_t n = std::strtoull(line.c_str() + sp + 1,
                                         nullptr, 10);
        total += n;
        if (line.find("profTestBusySpin") != std::string::npos ||
            line.find("spinMillis") != std::string::npos)
            spin += n;
    }
    ASSERT_GT(total, 10u) << folded;
#ifdef PRISM_PROF_SANITIZED
    const double min_frac = 0.25;
#else
    const double min_frac = 0.50;
#endif
    EXPECT_GE(static_cast<double>(spin) / static_cast<double>(total),
              min_frac)
        << "spin=" << spin << " total=" << total << "\n"
        << folded;
}

TEST(Profiler, CollapsedExportParsesAndIsMostlySymbolized)
{
    ProfilerGuard guard;
    auto &p = prof::Profiler::global();
    const auto marks = p.mark();
    ASSERT_TRUE(p.start(500));
    std::thread worker([] {
        ThreadId::self();
        profTestBusySpin(400);
    });
    worker.join();
    const std::string folded = p.collectFolded(&marks);
    p.stop();

    bool saw_header = false;
    uint64_t sym = 0, unsym = 0, stacks = 0;
    size_t pos = 0;
    while (pos < folded.size()) {
        size_t eol = folded.find('\n', pos);
        if (eol == std::string::npos)
            eol = folded.size();
        const std::string line = folded.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (line.find("prism cpu profile") != std::string::npos)
                saw_header = true;
            continue;
        }
        stacks++;
        const size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_GT(std::strtoull(line.c_str() + sp + 1, nullptr, 10), 0u)
            << line;
        // Root frame is a layer name; frames never contain spaces.
        const std::string head = line.substr(0, sp);
        const std::string root = head.substr(0, head.find(';'));
        bool known = false;
        for (size_t l = 0; l < trace::kNumLayers; l++)
            if (root == trace::layerName(l))
                known = true;
        EXPECT_TRUE(known) << "unknown layer root: " << root;
        for (size_t fp = 0; fp < head.size();) {
            size_t fe = head.find(';', fp);
            if (fe == std::string::npos)
                fe = head.size();
            const std::string frame = head.substr(fp, fe - fp);
            EXPECT_EQ(frame.find(' '), std::string::npos) << frame;
            if (frame.rfind("0x", 0) == 0)
                unsym++;
            else
                sym++;
            fp = fe + 1;
        }
    }
    EXPECT_TRUE(saw_header) << folded;
    ASSERT_GT(stacks, 0u) << folded;
    EXPECT_GE(static_cast<double>(sym),
              0.8 * static_cast<double>(sym + unsym))
        << folded;
}

TEST(LockProf, ContentionAccounting)
{
    ProfilerGuard guard;
    prof::setLockProfiling(true);

    static prof::LockSite *site =
        prof::internLockSite("test.contention");
    prof::TimedMutex mu(site);

    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    const auto snap0 = stats::StatsRegistry::global().snapshot();

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&mu] {
            ThreadId::self();
            for (int i = 0; i < kIters; i++) {
                std::lock_guard<prof::TimedMutex> lock(mu);
                // Hold long enough that someone else queues up.
                volatile uint64_t sink = 0;
                for (int k = 0; k < 2000; k++)
                    sink = sink + static_cast<uint64_t>(k);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // The storm above proves the counters under parallel load (and
    // gives TSan real concurrency), but its iterations are short
    // enough that on a fast machine the threads can serialize without
    // ever overlapping. Force one guaranteed contended acquisition:
    // hold the lock while a waiter blocks on it.
    mu.lock();
    std::thread waiter([&mu] {
        ThreadId::self();
        std::lock_guard<prof::TimedMutex> lock(mu);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    mu.unlock();
    waiter.join();
    prof::setLockProfiling(false);

    const auto snap1 = stats::StatsRegistry::global().snapshot();
    const uint64_t acqs = snap1.counterDelta(
        snap0, "prism.lock.test.contention.acquisitions");
    const uint64_t contended = snap1.counterDelta(
        snap0, "prism.lock.test.contention.contended");
    const uint64_t wait_ns = snap1.counterDelta(
        snap0, "prism.lock.test.contention.wait_ns_total");

    EXPECT_EQ(acqs, static_cast<uint64_t>(kThreads) * kIters + 2);
    // The forced handoff makes contention certain, and every
    // contended acquisition must account >0 wait.
    EXPECT_GT(contended, 0u);
    EXPECT_GT(wait_ns, 0u);

    const std::string folded = prof::renderContentionFolded();
    EXPECT_NE(folded.find("test.contention"), std::string::npos)
        << folded;
    EXPECT_NE(folded.find("lock:test.contention"), std::string::npos)
        << folded;
}

TEST(LockProf, DisabledCountsNothing)
{
    ASSERT_FALSE(prof::lockProfilingEnabled());
    static prof::LockSite *site =
        prof::internLockSite("test.disabled");
    prof::TimedMutex mu(site);
    const auto snap0 = stats::StatsRegistry::global().snapshot();
    for (int i = 0; i < 100; i++) {
        std::lock_guard<prof::TimedMutex> lock(mu);
    }
    const auto snap1 = stats::StatsRegistry::global().snapshot();
    EXPECT_EQ(snap1.counterDelta(
                  snap0, "prism.lock.test.disabled.acquisitions"),
              0u);
}

TEST(Profiler, DisabledIsFree)
{
    auto &p = prof::Profiler::global();
    ASSERT_FALSE(p.running());
    EXPECT_EQ(p.threadsArmed(), 0);
    EXPECT_FALSE(prof::lockProfilingEnabled());

    // No new samples accumulate while off.
    const uint64_t before = p.samplesTaken();
    std::thread worker([] {
        ThreadId::self();
        profTestBusySpin(150);
    });
    worker.join();
    EXPECT_EQ(p.samplesTaken(), before);

    // An off profiler exports an empty (header-only) profile.
    const auto marks = p.mark();
    const std::string folded = p.collectFolded(&marks);
    for (size_t pos = 0; pos < folded.size();) {
        size_t eol = folded.find('\n', pos);
        if (eol == std::string::npos)
            eol = folded.size();
        const std::string line = folded.substr(pos, eol - pos);
        EXPECT_TRUE(line.empty() || line[0] == '#') << line;
        pos = eol + 1;
    }
}

TEST(Profiler, ProfileForWindowCollects)
{
    ProfilerGuard guard;
    std::atomic<bool> stop{false};
    std::thread worker([&stop] {
        ThreadId::self();
        spinMillis(5000, &stop);
    });
    const std::string folded =
        prof::Profiler::global().profileForWindow(500, 0.4);
    stop.store(true, std::memory_order_relaxed);
    worker.join();
    EXPECT_FALSE(prof::Profiler::global().running());
    EXPECT_NE(folded.find("prism cpu profile"), std::string::npos)
        << folded;
    // The window had a spinning thread; expect at least one stack.
    bool has_stack = false;
    for (size_t pos = 0; pos < folded.size();) {
        size_t eol = folded.find('\n', pos);
        if (eol == std::string::npos)
            eol = folded.size();
        if (eol > pos && folded[pos] != '#')
            has_stack = true;
        pos = eol + 1;
    }
    EXPECT_TRUE(has_stack) << folded;
}
