/**
 * @file
 * Tests for prism::telemetry: ring capacity/wraparound, exact window
 * deltas and rates under an injected clock, histogram interval
 * summaries, per-layer CPU attribution bounds, sampler lifecycle,
 * JSON export, ThreadId-recycling ring adoption, and a fig17-style
 * integration run asserting GC/reclaim phases show up as rate changes
 * in several layers at once.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/options.h"
#include "ycsb/stores.h"

namespace prism::telemetry {
namespace {

std::atomic<uint64_t> g_fake_ns{0};

uint64_t
fakeClock()
{
    return g_fake_ns.load(std::memory_order_relaxed);
}

/** Reset the shared global sampler to a known state for one test. */
class TelemetryTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        auto &tel = Telemetry::global();
        tel.stop();
        tel.setClockForTest(nullptr);
        tel.clear();
        tel.setCapacity(600);
    }

    void TearDown() override
    {
        auto &tel = Telemetry::global();
        tel.stop();
        tel.setClockForTest(nullptr);
        tel.clear();
        trace::TraceRegistry::global().setEnabled(false);
    }
};

TEST_F(TelemetryTest, FirstSamplePrimesAndRecordsNothing)
{
    auto &tel = Telemetry::global();
    EXPECT_EQ(tel.sampleNow(), 0u);
    EXPECT_EQ(tel.sampleCount(), 0u);
    EXPECT_EQ(tel.sampleNow(), 1u);  // second tick closes a window
    EXPECT_EQ(tel.sampleCount(), 1u);
}

TEST_F(TelemetryTest, RingWrapsKeepingNewestWithMonotonicSeq)
{
    auto &tel = Telemetry::global();
    g_fake_ns.store(1'000'000'000);
    tel.setClockForTest(&fakeClock);
    tel.setCapacity(4);

    tel.sampleNow();  // prime
    for (int i = 0; i < 10; i++) {
        g_fake_ns.fetch_add(100'000'000);
        tel.sampleNow();
    }
    const auto series = tel.series();
    ASSERT_EQ(series.size(), 4u);
    // 10 windows were recorded (seq 0..9); the ring keeps the last 4.
    EXPECT_EQ(series.front().seq, 6u);
    EXPECT_EQ(series.back().seq, 9u);
    for (size_t i = 1; i < series.size(); i++) {
        EXPECT_EQ(series[i].seq, series[i - 1].seq + 1);
        EXPECT_EQ(series[i].t0_ns, series[i - 1].t1_ns);
    }
    tel.setCapacity(2);  // shrinking drops the oldest immediately
    EXPECT_EQ(tel.sampleCount(), 2u);
    EXPECT_EQ(tel.series().front().seq, 8u);
}

TEST_F(TelemetryTest, WindowDeltasAndRatesAreExactUnderFakeClock)
{
    auto &tel = Telemetry::global();
    auto &reg = stats::StatsRegistry::global();
    stats::Counter &c = reg.counter("test.tel.rate.counter", "ops");
    stats::Gauge &g = reg.gauge("test.tel.rate.gauge", "bytes");
    stats::LatencyStat &lat = reg.histogram("test.tel.rate.lat", "ns");

    g_fake_ns.store(5'000'000'000);
    tel.setClockForTest(&fakeClock);
    tel.sampleNow();  // prime

    c.add(500);
    g.set(1234);
    lat.record(5);  // values < 32 land in exact buckets
    lat.record(7);
    g_fake_ns.fetch_add(1'000'000'000);  // exactly one second
    tel.sampleNow();

    c.add(250);
    g.set(-9);
    g_fake_ns.fetch_add(2'000'000'000);  // two seconds
    tel.sampleNow();

    const auto series = tel.series();
    ASSERT_EQ(series.size(), 2u);
    const TelemetrySample &w1 = series[0], &w2 = series[1];

    EXPECT_DOUBLE_EQ(w1.dtSeconds(), 1.0);
    EXPECT_EQ(w1.counterDelta("test.tel.rate.counter"), 500u);
    EXPECT_DOUBLE_EQ(w1.counterRate("test.tel.rate.counter"), 500.0);
    EXPECT_EQ(w1.gauge("test.tel.rate.gauge"), 1234);

    EXPECT_DOUBLE_EQ(w2.dtSeconds(), 2.0);
    EXPECT_EQ(w2.counterDelta("test.tel.rate.counter"), 250u);
    EXPECT_DOUBLE_EQ(w2.counterRate("test.tel.rate.counter"), 125.0);
    EXPECT_EQ(w2.gauge("test.tel.rate.gauge"), -9);

    // Absent names are zero, never an error.
    EXPECT_EQ(w1.counterDelta("no.such.counter"), 0u);
    EXPECT_EQ(w1.gauge("no.such.gauge"), 0);

    // The histogram interval summary covers only window-1 samples.
    const HistPoint *hp = nullptr;
    for (const auto &h : w1.hists)
        if (h.name == "test.tel.rate.lat")
            hp = &h;
    ASSERT_NE(hp, nullptr);
    EXPECT_EQ(hp->count, 2u);
    EXPECT_DOUBLE_EQ(hp->mean, 6.0);
    for (const auto &h : w2.hists)
        if (h.name == "test.tel.rate.lat")
            EXPECT_EQ(h.count, 0u);  // nothing recorded in window 2
}

TEST_F(TelemetryTest, StartStopIsIdempotent)
{
    auto &tel = Telemetry::global();
    EXPECT_FALSE(tel.running());
    EXPECT_TRUE(tel.start(5));
    EXPECT_TRUE(tel.running());
    EXPECT_EQ(tel.intervalMs(), 5u);
    EXPECT_FALSE(tel.start(50));  // already running: no-op
    EXPECT_EQ(tel.intervalMs(), 5u);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    tel.stop();
    EXPECT_FALSE(tel.running());
    tel.stop();  // second stop is a no-op
    EXPECT_FALSE(tel.running());

    // The sampler primed, ticked, and closed its final window; the
    // series survives stop() for export.
    EXPECT_GE(tel.sampleCount(), 1u);
    const size_t after_stop = tel.sampleCount();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    EXPECT_EQ(tel.sampleCount(), after_stop);  // really stopped
}

TEST_F(TelemetryTest, ProbeRunsEveryTickAndRemoveIsABarrier)
{
    auto &tel = Telemetry::global();
    std::atomic<int> runs{0};
    const int id = tel.addProbe([&runs] { runs.fetch_add(1); });
    tel.sampleNow();
    tel.sampleNow();
    EXPECT_EQ(runs.load(), 2);
    tel.removeProbe(id);
    tel.sampleNow();
    EXPECT_EQ(runs.load(), 2);  // removed probes never run again
}

TEST_F(TelemetryTest, LayerAttributionIsBoundedByWallClockTimesThreads)
{
    auto &tel = Telemetry::global();
    auto &tracer = trace::TraceRegistry::global();
    tracer.setEnabled(true);

    tel.sampleNow();  // prime
    constexpr int kThreads = 4;
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; t++) {
        pool.emplace_back([] {
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(30);
            while (std::chrono::steady_clock::now() < deadline) {
                PRISM_TRACE_SPAN("prism.test_outer");
                {
                    PRISM_TRACE_SPAN("pwb.test_inner");
                    volatile uint64_t sink = 0;
                    for (int i = 0; i < 2000; i++)
                        sink += i;
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    const uint64_t wall_ns =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() -
                                  wall_start)
                                  .count());
    tel.sampleNow();

    const auto series = tel.series();
    ASSERT_EQ(series.size(), 1u);
    const auto &w = series[0];
    uint64_t total = 0;
    for (size_t l = 0; l < trace::kNumLayers; l++)
        total += w.layer_busy_ns[l];
    // Self-time accounting: per-layer sums can never exceed
    // wall-clock × concurrency (small slack for timer quantization).
    EXPECT_GT(total, 0u);
    EXPECT_LE(total, wall_ns * kThreads * 11 / 10);
    // Both the outer (core) and nested (pwb) layers were busy, and the
    // nested span's time was charged to pwb, not double-charged.
    using trace::Layer;
    EXPECT_GT(w.layer_busy_ns[static_cast<size_t>(Layer::kCore)], 0u);
    EXPECT_GT(w.layer_busy_ns[static_cast<size_t>(Layer::kPwb)], 0u);
}

TEST_F(TelemetryTest, ExportedJsonRoundTrips)
{
    auto &tel = Telemetry::global();
    auto &reg = stats::StatsRegistry::global();
    stats::Counter &c = reg.counter("test.tel.json.counter", "ops");

    g_fake_ns.store(1'000'000'000);
    tel.setClockForTest(&fakeClock);
    tel.sampleNow();  // prime
    c.add(111);
    g_fake_ns.fetch_add(1'000'000'000);
    tel.sampleNow();
    c.add(222);
    g_fake_ns.fetch_add(1'000'000'000);
    tel.sampleNow();

    const std::string json = tel.exportSeriesJson();
    EXPECT_NE(json.find("\"schema\":\"prism.telemetry.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"samples\":2"), std::string::npos);
    EXPECT_NE(json.find("\"test.tel.json.counter\":[111,222]"),
              std::string::npos);
    EXPECT_NE(json.find("\"layers_busy_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"core\":["), std::string::npos);
    EXPECT_NE(json.find("\"dt_s\":[1,1]"), std::string::npos);

    const std::string path =
        ::testing::TempDir() + "/telemetry_roundtrip.json";
    ASSERT_TRUE(tel.exportSeriesJsonToFile(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string back(json.size() + 16, '\0');
    back.resize(std::fread(back.data(), 1, back.size(), f));
    std::fclose(f);
    EXPECT_EQ(back, json);
}

TEST_F(TelemetryTest, RecycledThreadIdAdoptsRingWithoutResettingIt)
{
    auto &tracer = trace::TraceRegistry::global();
    tracer.setEnabled(true);

    // Sequential spawn/join: the second thread picks the first's dense
    // id off the free list (see thread_util.cc) and with it the first
    // thread's trace ring.
    int tid_a = -1;
    uint64_t head_after_a = 0;
    std::thread([&] {
        tid_a = ThreadId::self();
        {
            PRISM_TRACE_SPAN("prism.recycle_a");
        }
        head_after_a = tracer.ring().head();
    }).join();

    int tid_b = -1;
    uint64_t head_before_b = 0, head_after_b = 0;
    std::thread([&] {
        tid_b = ThreadId::self();
        head_before_b = tracer.ring().head();
        {
            PRISM_TRACE_SPAN("prism.recycle_b");
        }
        head_after_b = tracer.ring().head();
    }).join();

    ASSERT_EQ(tid_a, tid_b);  // the id really was recycled
    // The adopted ring keeps its history: the head is monotonic, so a
    // test (or the wraparound math head - capacity) must never assume
    // a fresh thread starts at head 0. See docs/OBSERVABILITY.md.
    EXPECT_GE(head_before_b, head_after_a);
    EXPECT_GT(head_after_b, head_before_b);

    // Both threads' events live in the one per-id ring.
    bool saw_a = false, saw_b = false;
    for (const auto &[tid, events] : tracer.snapshotAll()) {
        if (tid != tid_a)
            continue;
        for (const auto &ev : events) {
            const std::string name = tracer.nameOf(ev.name_id);
            saw_a |= name == "prism.recycle_a";
            saw_b |= name == "prism.recycle_b";
        }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

/**
 * Fig17-style acceptance: an update-heavy run with reclaim/GC, bracketed
 * by idle phases, must show up as rate *changes* in at least three
 * layers' counter families at once — that is what makes the exported
 * series a usable phase diagram.
 */
TEST_F(TelemetryTest, Fig17PhasesAppearAsRateChangesInThreeLayers)
{
    auto &tel = Telemetry::global();
    trace::TraceRegistry::global().setEnabled(true);

    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.dataset_bytes = 8ull << 20;
    fx.ssd_bytes = 256ull << 20;
    fx.model_timing = false;
    fx.expected_threads = 2;

    core::PrismOptions opts;
    opts.telemetry_interval_ms = 5;  // exercise the PrismDb wiring
    opts.telemetry_windows = 512;

    {
        ycsb::PrismStore store(fx, opts);
        EXPECT_TRUE(tel.running());  // started by the options knob

        // Phase 1: idle.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));

        // Phase 2: update-heavy burst over a small keyspace, then a
        // forced flush + GC so the PWB-reclaim and value-storage paths
        // all run.
        std::string value(1024, 'v');
        const auto burst_end = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(80);
        uint64_t key = 0;
        while (std::chrono::steady_clock::now() < burst_end)
            store.put(key++ % 4096, value);
        store.flushAll();
        store.db().forceGc();

        // Phase 3: idle again.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }  // store close stops the sampler it started

    EXPECT_FALSE(tel.running());
    const auto series = tel.series();
    ASSERT_GE(series.size(), 6u);

    // A family is "phased" when its per-window delta is high in some
    // window and zero/low in another — constant-rate or dead families
    // don't count.
    const auto phased = [&](std::initializer_list<const char *> names) {
        uint64_t lo = UINT64_MAX, hi = 0;
        for (const auto &w : series) {
            uint64_t d = 0;
            for (const char *n : names)
                d += w.counterDelta(n);
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        return hi > 0 && lo < hi / 2;
    };

    int layers_with_phases = 0;
    layers_with_phases += phased({"prism.puts"});               // core
    layers_with_phases += phased({"prism.pwb.append_bytes",
                                  "prism.pwb.reclaimed_values"});  // pwb
    layers_with_phases += phased({"prism.svc.admissions",
                                  "prism.svc.evictions"});      // svc
    layers_with_phases += phased({"sim.ssd.bytes_written",
                                  "sim.ssd.bytes_read"});       // ssd
    layers_with_phases += phased({"prism.bg.tasks"});           // bg
    EXPECT_GE(layers_with_phases, 3);

    // The PrismDb occupancy probe published its gauges into samples.
    bool saw_svc_capacity = false;
    for (const auto &w : series)
        saw_svc_capacity |= w.gauge("prism.svc.capacity_bytes") > 0;
    EXPECT_TRUE(saw_svc_capacity);

    // And the whole thing exports as a series document.
    const std::string json = tel.exportSeriesJson();
    EXPECT_NE(json.find("\"schema\":\"prism.telemetry.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"prism.puts\""), std::string::npos);
    EXPECT_NE(json.find("\"devices\""), std::string::npos);
}

}  // namespace
}  // namespace prism::telemetry
