/**
 * @file
 * End-to-end tests for net::RespServer over a loopback TCP client:
 * command semantics, pipelined-response ordering (including
 * out-of-order async completions), tenant isolation + quotas,
 * backpressure under a tiny in-flight cap, frame-limit enforcement on
 * a live socket, and listener-state reporting through the obs hook.
 *
 * Most tests run against MapStore (an inline-completing KvStore
 * double, so semantics are exact and fast) or DeferredStore (whose
 * async gets park until the test completes them — from another thread,
 * in reverse order — which is what proves reply ordering really comes
 * from the server's pipeline FIFO and not from lucky completion
 * order). One test drives the real Prism fixture.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/obs_server.h"
#include "net/resp.h"
#include "net/resp_server.h"
#include "ycsb/kv_interface.h"
#include "ycsb/stores.h"

namespace prism::net {
namespace {

// ---------------------------------------------------------------------
// Store doubles
// ---------------------------------------------------------------------

/** Exact, inline-completing KvStore over a std::map. */
class MapStore : public ycsb::KvStore {
  public:
    std::string name() const override { return "map"; }

    Status
    put(uint64_t key, std::string_view value) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_[key] = std::string(value);
        return Status::ok();
    }

    Status
    get(uint64_t key, std::string *value) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end())
            return Status::notFound();
        *value = it->second;
        return Status::ok();
    }

    Status
    del(uint64_t key) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return map_.erase(key) ? Status::ok() : Status::notFound();
    }

    Status
    scan(uint64_t start, size_t count,
         std::vector<std::pair<uint64_t, std::string>> *out) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        out->clear();
        for (auto it = map_.lower_bound(start);
             it != map_.end() && out->size() < count; ++it)
            out->emplace_back(it->first, it->second);
        return Status::ok();
    }

  private:
    std::mutex mu_;
    std::map<uint64_t, std::string> map_;
};

/**
 * MapStore whose asyncGet parks until the test releases it. Gets are
 * completed from completeAllReversed() — on the test thread, newest
 * first — to force out-of-order completions.
 */
class DeferredStore : public MapStore {
  public:
    core::OpFuture
    asyncGet(uint64_t key, core::AsyncCallback cb) override
    {
        auto st = std::make_shared<core::AsyncOpState>();
        st->callback = std::move(cb);
        Status result = get(key, &st->value);
        {
            std::lock_guard<std::mutex> lock(mu_);
            parked_.push_back({st, std::move(result)});
        }
        return core::OpFuture(std::move(st));
    }

    size_t
    parkedCount()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return parked_.size();
    }

    void
    completeAllReversed()
    {
        std::vector<Parked> take;
        {
            std::lock_guard<std::mutex> lock(mu_);
            take.swap(parked_);
        }
        for (auto it = take.rbegin(); it != take.rend(); ++it)
            it->state->complete(it->result);
    }

  private:
    struct Parked {
        std::shared_ptr<core::AsyncOpState> state;
        Status result;
    };
    std::mutex mu_;
    std::vector<Parked> parked_;
};

// ---------------------------------------------------------------------
// Loopback client
// ---------------------------------------------------------------------

/** Minimal blocking RESP client for one test connection. */
class Client {
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected_ =
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    void
    sendRaw(std::string_view bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t w =
                ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
            ASSERT_GT(w, 0);
            sent += static_cast<size_t>(w);
        }
    }

    void
    sendCommand(const std::vector<std::string_view> &args)
    {
        std::string wire;
        encodeCommand(&wire, args);
        sendRaw(wire);
    }

    /** Read one reply; fails the test after ~5 s without one. */
    RespReply
    readReply()
    {
        RespReply r;
        for (int spins = 0; spins < 5000; spins++) {
            const size_t used = parseReply(buf_, &r);
            if (used == SIZE_MAX) {
                ADD_FAILURE() << "malformed reply: " << buf_;
                return r;
            }
            if (used > 0) {
                buf_.erase(0, used);
                return r;
            }
            pollfd pfd{fd_, POLLIN, 0};
            if (::poll(&pfd, 1, 1) <= 0)
                continue;
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n <= 0) {
                ADD_FAILURE() << "connection closed mid-reply";
                return r;
            }
            buf_.append(tmp, static_cast<size_t>(n));
        }
        ADD_FAILURE() << "timed out waiting for reply";
        return r;
    }

    std::string
    roundTrip(const std::vector<std::string_view> &args)
    {
        sendCommand(args);
        return readReply().str;
    }

    /** True once the server closes the connection (EOF). */
    bool
    waitClosed()
    {
        for (int spins = 0; spins < 5000; spins++) {
            pollfd pfd{fd_, POLLIN, 0};
            if (::poll(&pfd, 1, 1) <= 0)
                continue;
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return false;
            buf_.append(tmp, static_cast<size_t>(n));
        }
        return false;
    }

    std::string buf_;

  private:
    int fd_ = -1;
    bool connected_ = false;
};

RespServer::Options
testOptions()
{
    RespServer::Options o;
    o.port = 0;  // ephemeral
    return o;
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

TEST(RespServerTest, CommandSemantics)
{
    MapStore store;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.roundTrip({"PING"}), "PONG");
    EXPECT_EQ(c.roundTrip({"ECHO", "hi"}), "hi");
    EXPECT_EQ(c.roundTrip({"SET", "42", "hello"}), "OK");
    EXPECT_EQ(c.roundTrip({"GET", "42"}), "hello");

    c.sendCommand({"GET", "404"});
    EXPECT_EQ(c.readReply().type, RespReply::Type::kNull);

    c.sendCommand({"SET", "43", "x"});
    c.readReply();
    c.sendCommand({"DEL", "42", "43", "404"});
    EXPECT_EQ(c.readReply().integer, 2);

    c.sendCommand({"SET", "1", "a"});
    c.readReply();
    c.sendCommand({"MGET", "1", "404"});
    RespReply r = c.readReply();
    ASSERT_EQ(r.type, RespReply::Type::kArray);
    ASSERT_EQ(r.elements.size(), 2u);
    EXPECT_EQ(r.elements[0].str, "a");
    EXPECT_EQ(r.elements[1].type, RespReply::Type::kNull);

    // Errors: bad key, wrong arity, unknown command.
    EXPECT_TRUE(c.roundTrip({"GET", "notanumber"}).find("ERR") == 0);
    EXPECT_TRUE(c.roundTrip({"SET", "1"}).find("ERR") == 0);
    EXPECT_TRUE(c.roundTrip({"FLURB"}).find("ERR unknown") == 0);

    // INFO is a bulk string with the stock sections.
    const std::string info = c.roundTrip({"INFO"});
    EXPECT_NE(info.find("tcp_port:"), std::string::npos);
    EXPECT_NE(info.find("total_commands_processed:"),
              std::string::npos);

    server.stop();
}

TEST(RespServerTest, ScanPagination)
{
    MapStore store;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;
    Client c(server.port());
    for (int i = 0; i < 10; i++)
        c.sendCommand({"SET", std::to_string(i), "v"});
    for (int i = 0; i < 10; i++)
        c.readReply();

    // Page through with COUNT 4: 4 + 4 + 2, cursor returns to 0.
    std::vector<uint64_t> seen;
    std::string cursor = "0";
    for (int page = 0; page < 5; page++) {
        c.sendCommand({"SCAN", cursor, "COUNT", "4"});
        RespReply r = c.readReply();
        ASSERT_EQ(r.type, RespReply::Type::kArray);
        ASSERT_EQ(r.elements.size(), 2u);
        for (const auto &k : r.elements[1].elements)
            seen.push_back(std::stoull(k.str));
        cursor = r.elements[0].str;
        if (cursor == "0")
            break;
    }
    EXPECT_EQ(seen.size(), 10u);
    for (size_t i = 1; i < seen.size(); i++)
        EXPECT_LT(seen[i - 1], seen[i]);
    server.stop();
}

TEST(RespServerTest, PipelinedRepliesStayInRequestOrder)
{
    MapStore store;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;
    Client c(server.port());

    // One giant write of 200 pipelined commands, then read the 200
    // replies and check each matches its request slot.
    std::string wire;
    for (int i = 0; i < 100; i++) {
        const std::string k = std::to_string(i);
        encodeCommand(&wire, {"SET", k, "v" + k});
        encodeCommand(&wire, {"GET", k});
    }
    c.sendRaw(wire);
    for (int i = 0; i < 100; i++) {
        EXPECT_EQ(c.readReply().str, "OK") << i;
        EXPECT_EQ(c.readReply().str, "v" + std::to_string(i)) << i;
    }
    server.stop();
}

TEST(RespServerTest, OutOfOrderCompletionsDoNotReorderReplies)
{
    DeferredStore store;
    store.put(1, "one");
    store.put(2, "two");
    store.put(3, "three");
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;
    Client c(server.port());

    std::string wire;
    encodeCommand(&wire, {"GET", "1"});
    encodeCommand(&wire, {"GET", "2"});
    encodeCommand(&wire, {"GET", "3"});
    c.sendRaw(wire);

    // Wait for all three to be parked in the store, then complete them
    // newest-first from this (foreign) thread.
    for (int spins = 0; spins < 5000 && store.parkedCount() < 3;
         spins++)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(store.parkedCount(), 3u);
    store.completeAllReversed();

    EXPECT_EQ(c.readReply().str, "one");
    EXPECT_EQ(c.readReply().str, "two");
    EXPECT_EQ(c.readReply().str, "three");
    server.stop();
}

TEST(RespServerTest, BackpressureCapStillServesEverything)
{
    DeferredStore store;
    store.put(7, "v");
    RespServer::Options opts = testOptions();
    opts.inflight_cap = 4;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(opts, &err)) << err;
    Client c(server.port());

    // 64 pipelined GETs against a cap of 4: the server must stop
    // reading rather than exceed the cap, then work through the burst
    // as completions free slots.
    std::string wire;
    for (int i = 0; i < 64; i++)
        encodeCommand(&wire, {"GET", "7"});
    std::thread sender([&] { c.sendRaw(wire); });

    size_t drained = 0;
    for (int spins = 0; spins < 10000 && drained < 64; spins++) {
        EXPECT_LE(store.parkedCount(), 4u);
        if (store.parkedCount() > 0) {
            drained += store.parkedCount();
            store.completeAllReversed();
        } else {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    sender.join();
    EXPECT_EQ(drained, 64u);
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(c.readReply().str, "v") << i;
    server.stop();
}

TEST(RespServerTest, TenantIsolationAuthAndPrefix)
{
    MapStore store;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;

    Client alice(server.port());
    EXPECT_EQ(alice.roundTrip({"AUTH", "alice"}), "OK");
    EXPECT_EQ(alice.roundTrip({"SET", "1", "alice-data"}), "OK");

    Client bob(server.port());
    EXPECT_EQ(bob.roundTrip({"AUTH", "bob"}), "OK");
    // Same wire key, different namespace: invisible.
    bob.sendCommand({"GET", "1"});
    EXPECT_EQ(bob.readReply().type, RespReply::Type::kNull);
    EXPECT_EQ(bob.roundTrip({"SET", "1", "bob-data"}), "OK");
    EXPECT_EQ(bob.roundTrip({"GET", "1"}), "bob-data");
    EXPECT_EQ(alice.roundTrip({"GET", "1"}), "alice-data");

    // The prefix convention crosses namespaces per key.
    Client anon(server.port());
    EXPECT_EQ(anon.roundTrip({"GET", "alice:1"}), "alice-data");
    anon.sendCommand({"GET", "1"});  // default tenant: empty
    EXPECT_EQ(anon.readReply().type, RespReply::Type::kNull);

    // SCAN respects the namespace: alice sees exactly her key.
    alice.sendCommand({"SCAN", "0", "COUNT", "100"});
    RespReply r = alice.readReply();
    ASSERT_EQ(r.elements.size(), 2u);
    EXPECT_EQ(r.elements[0].str, "0");
    ASSERT_EQ(r.elements[1].elements.size(), 1u);
    EXPECT_EQ(r.elements[1].elements[0].str, "1");
    server.stop();
}

TEST(RespServerTest, QuotaThrottlesWithErrorsNotDelay)
{
    MapStore store;
    RespServer::Options opts = testOptions();
    opts.quota_spec = "metered=10";  // 10 ops/s, burst 1000
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(opts, &err)) << err;
    Client c(server.port());
    EXPECT_EQ(c.roundTrip({"AUTH", "metered"}), "OK");

    // Far past the burst allowance: the tail must be THROTTLED errors,
    // returned immediately (no event-loop delay — 1200 round trips
    // complete in test time).
    int throttled = 0;
    for (int i = 0; i < 1200; i++) {
        c.sendCommand({"SET", std::to_string(i), "v"});
    }
    for (int i = 0; i < 1200; i++) {
        const RespReply r = c.readReply();
        if (r.isError()) {
            EXPECT_EQ(r.str.rfind("THROTTLED", 0), 0u) << r.str;
            throttled++;
        }
    }
    EXPECT_GT(throttled, 0);
    EXPECT_LT(throttled, 1200);
    server.stop();
}

TEST(RespServerTest, OversizedFrameGetsErrorThenClose)
{
    MapStore store;
    RespServer::Options opts = testOptions();
    opts.limits.max_frame_bytes = 1024;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(opts, &err)) << err;
    Client c(server.port());

    // A valid command pipelined before the poison frame still gets its
    // reply, in order, before the error.
    c.sendCommand({"SET", "1", "ok"});
    c.sendRaw("*2\r\n$3\r\nSET\r\n$900000\r\n");
    c.sendRaw(std::string(4096, 'x'));
    EXPECT_EQ(c.readReply().str, "OK");
    const RespReply r = c.readReply();
    EXPECT_TRUE(r.isError());
    EXPECT_TRUE(c.waitClosed());

    // The server survives and serves new connections.
    Client c2(server.port());
    EXPECT_EQ(c2.roundTrip({"GET", "1"}), "ok");
    server.stop();
}

TEST(RespServerTest, InlineCommandsAndQuit)
{
    MapStore store;
    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;
    Client c(server.port());
    c.sendRaw("PING\r\n");
    EXPECT_EQ(c.readReply().str, "PONG");
    c.sendRaw("SET 5 netcat\r\nGET 5\r\n");
    EXPECT_EQ(c.readReply().str, "OK");
    EXPECT_EQ(c.readReply().str, "netcat");
    c.sendRaw("QUIT\r\n");
    EXPECT_EQ(c.readReply().str, "OK");
    EXPECT_TRUE(c.waitClosed());
    server.stop();
}

TEST(RespServerTest, ListenerInfoReachesHealthHook)
{
    MapStore store;
    RespServer server(store);
    EXPECT_EQ(obs::listenerInfoJson(), "");
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;

    Client c(server.port());
    EXPECT_EQ(c.roundTrip({"PING"}), "PONG");

    const std::string j = obs::listenerInfoJson();
    EXPECT_NE(j.find("\"proto\":\"resp\""), std::string::npos);
    EXPECT_NE(j.find("\"port\":" + std::to_string(server.port())),
              std::string::npos);
    const RespServer::ListenerInfo li = server.info();
    EXPECT_EQ(li.port, server.port());
    EXPECT_GE(li.accepted, 1u);
    EXPECT_GE(li.commands, 1u);

    server.stop();
    EXPECT_EQ(obs::listenerInfoJson(), "");
    EXPECT_FALSE(server.running());
}

TEST(RespServerTest, ServesRealPrismStore)
{
    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.ssd_bytes = 256ull << 20;
    fx.dataset_bytes = 16ull << 20;
    fx.model_timing = false;
    core::PrismOptions po;
    po.obs_port = -1;
    ycsb::PrismStore store(fx, po);

    RespServer server(store);
    std::string err;
    ASSERT_TRUE(server.start(testOptions(), &err)) << err;
    Client c(server.port());

    std::string wire;
    for (int i = 0; i < 200; i++)
        encodeCommand(&wire,
                      {"SET", std::to_string(i),
                       "value-" + std::to_string(i)});
    for (int i = 0; i < 200; i++)
        encodeCommand(&wire, {"GET", std::to_string(i)});
    c.sendRaw(wire);
    for (int i = 0; i < 200; i++)
        EXPECT_EQ(c.readReply().str, "OK") << i;
    for (int i = 0; i < 200; i++)
        EXPECT_EQ(c.readReply().str, "value-" + std::to_string(i))
            << i;

    // Scans flow through the async scan path.
    c.sendCommand({"SCAN", "0", "COUNT", "50"});
    const RespReply r = c.readReply();
    ASSERT_EQ(r.type, RespReply::Type::kArray);
    EXPECT_EQ(r.elements[1].elements.size(), 50u);

    // The Prism health report carries the listener section while the
    // server runs (the /healthz integration the obs hook exists for).
    const obs::HealthReport hr = store.router().healthReport();
    EXPECT_NE(hr.json.find("\"listener\":{"), std::string::npos);
    server.stop();
}

}  // namespace
}  // namespace prism::net
