/**
 * @file
 * Async request pipeline tests (core/async.h, PrismDb::async*).
 *
 * Covers the tentpole contract: one caller thread keeps hundreds of
 * gets in flight (>= 128 concurrently, measured via asyncInflight()
 * against timed devices), async results agree with the blocking API,
 * callbacks fire with the completion status, scans run on the
 * background pool, and the KvStore sync-wrapping defaults give every
 * baseline the same API with always-ready futures.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/async.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"
#include "ycsb/kv_interface.h"

namespace prism::core {
namespace {

struct TestStore {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<PrismDb> db;
    PrismOptions opts;

    explicit TestStore(bool model_timing = false, bool enable_svc = true)
    {
        opts.pwb_size_bytes = 1 * 1024 * 1024;
        opts.svc_capacity_bytes = 4 * 1024 * 1024;
        opts.enable_svc = enable_svc;
        opts.hsit_capacity = 64 * 1024;
        opts.chunk_bytes = 64 * 1024;
        nvm = std::make_shared<sim::NvmDevice>(
            128ull * 1024 * 1024, sim::kOptaneDcpmmProfile,
            /*model_timing=*/false);
        region = std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
        ssds.push_back(std::make_shared<sim::SsdDevice>(
            64ull * 1024 * 1024, sim::kSamsung980ProProfile,
            model_timing));
        db = PrismDb::open(opts, region, ssds);
    }
};

std::string
valueFor(uint64_t key, size_t size = 512)
{
    std::string v(size, '\0');
    for (size_t i = 0; i < size; i++)
        v[i] = static_cast<char>('a' + (key + i) % 26);
    return v;
}

TEST(AsyncApi, PutGetDelRoundtrip)
{
    TestStore ts;
    OpFuture put = ts.db->asyncPut(42, "hello async");
    ASSERT_TRUE(put.valid());
    EXPECT_TRUE(put.wait().isOk());

    OpFuture get = ts.db->asyncGet(42);
    EXPECT_TRUE(get.wait().isOk());
    EXPECT_EQ(get.value(), "hello async");

    EXPECT_TRUE(ts.db->asyncDel(42).wait().isOk());
    EXPECT_TRUE(ts.db->asyncGet(42).wait().isNotFound());
    EXPECT_EQ(ts.db->asyncInflight(), 0u);
}

TEST(AsyncApi, CallbackFiresWithCompletionStatus)
{
    TestStore ts;
    ASSERT_TRUE(ts.db->put(7, "cb").isOk());

    std::atomic<int> calls{0};
    Status seen;
    OpFuture f = ts.db->asyncGet(7, [&](const Status &st) {
        seen = st;
        calls.fetch_add(1, std::memory_order_release);
    });
    f.wait();
    EXPECT_EQ(calls.load(std::memory_order_acquire), 1);
    EXPECT_TRUE(seen.isOk());
    EXPECT_EQ(f.value(), "cb");

    std::atomic<int> miss_calls{0};
    ts.db->asyncGet(9999, [&](const Status &st) {
        EXPECT_TRUE(st.isNotFound());
        miss_calls.fetch_add(1, std::memory_order_release);
    }).wait();
    EXPECT_EQ(miss_calls.load(std::memory_order_acquire), 1);
}

/**
 * The tentpole claim: one thread, hundreds of gets in flight at once.
 * Timed devices with the SVC off (so every get actually goes to the
 * device); all values are pushed out of the PWBs first, and the
 * "ssd.<n>.latency" fault site pins service time at 2 ms per read so
 * the measurement is deterministic. The peak of asyncInflight() while
 * the issue loop runs must reach 128 — a blocking caller would never
 * exceed 1.
 */
TEST(AsyncApi, SustainsManyInflightGetsFromOneThread)
{
    TestStore ts(/*model_timing=*/true, /*enable_svc=*/false);
    constexpr uint64_t kKeys = 512;
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    ts.db->flushAll();  // relocate every value into Value Storage

    auto &freg = fault::FaultRegistry::global();
    freg.disarmAll();
    fault::FaultSpec slow;
    slow.trigger = fault::Trigger::kEvery;
    slow.n = 1;
    slow.payload = 2'000'000;  // +2 ms service latency per request
    freg.arm("ssd." + std::to_string(ts.ssds[0]->deviceNumber()) +
                 ".latency",
             slow);

    std::vector<OpFuture> futures;
    futures.reserve(kKeys);
    uint64_t peak = 0;
    for (uint64_t k = 0; k < kKeys; k++) {
        futures.push_back(ts.db->asyncGet(k));
        peak = std::max(peak, ts.db->asyncInflight());
    }
    EXPECT_GE(peak, 128u) << "async gets are not overlapping";
    freg.disarmAll();

    for (uint64_t k = 0; k < kKeys; k++) {
        const Status &st = futures[k].wait();
        ASSERT_TRUE(st.isOk()) << "key " << k << ": " << st.message();
        EXPECT_EQ(futures[k].value(), valueFor(k)) << "key " << k;
    }
    EXPECT_EQ(ts.db->asyncInflight(), 0u);
}

/** Blocking API and async API agree op-for-op under a mixed workload. */
TEST(AsyncApi, AgreesWithBlockingApi)
{
    TestStore ts;
    std::map<uint64_t, std::string> model;
    std::mt19937_64 rng(20260809);

    for (int i = 0; i < 4000; i++) {
        const uint64_t key = rng() % 500;
        switch (rng() % 4) {
          case 0:
          case 1: {
            const std::string v = valueFor(key, 64 + rng() % 512);
            ASSERT_TRUE(ts.db->asyncPut(key, v).wait().isOk());
            model[key] = v;
            break;
          }
          case 2: {
            const Status &st = ts.db->asyncDel(key).wait();
            if (model.erase(key) != 0)
                EXPECT_TRUE(st.isOk());
            else
                EXPECT_TRUE(st.isNotFound());
            break;
          }
          default: {
            OpFuture f = ts.db->asyncGet(key);
            std::string blocking;
            const Status bst = ts.db->get(key, &blocking);
            const Status &ast = f.wait();
            auto it = model.find(key);
            if (it != model.end()) {
                ASSERT_TRUE(ast.isOk());
                ASSERT_TRUE(bst.isOk());
                EXPECT_EQ(f.value(), it->second);
                EXPECT_EQ(blocking, it->second);
            } else {
                EXPECT_TRUE(ast.isNotFound());
                EXPECT_TRUE(bst.isNotFound());
            }
            break;
          }
        }
    }
    EXPECT_EQ(ts.db->size(), model.size());
}

TEST(AsyncApi, ScanMatchesBlockingScan)
{
    TestStore ts;
    for (uint64_t k = 100; k < 200; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());

    OpFuture f = ts.db->asyncScan(120, 30);
    std::vector<std::pair<uint64_t, std::string>> blocking;
    ASSERT_TRUE(ts.db->scan(120, 30, &blocking).isOk());
    ASSERT_TRUE(f.wait().isOk());
    EXPECT_EQ(f.rows(), blocking);
    ASSERT_EQ(f.rows().size(), 30u);
    EXPECT_EQ(f.rows().front().first, 120u);
}

/** Destruction with ops still in flight must drain, not crash. */
TEST(AsyncApi, CleanShutdownWithInflightOps)
{
    TestStore ts(/*model_timing=*/true, /*enable_svc=*/false);
    for (uint64_t k = 0; k < 128; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    ts.db->flushAll();
    std::vector<OpFuture> futures;
    for (uint64_t k = 0; k < 128; k++)
        futures.push_back(ts.db->asyncGet(k));
    ts.db.reset();  // dtor waits for async_inflight_ to hit zero
    for (auto &f : futures)
        EXPECT_TRUE(f.status().isOk());
}

// ---------------------------------------------------------------------
// KvStore sync-wrapping defaults (ycsb/kv_interface.h).
// ---------------------------------------------------------------------

/** Minimal map-backed store that inherits the async defaults. */
class MapStore final : public ycsb::KvStore {
  public:
    std::string name() const override { return "map"; }
    Status put(uint64_t key, std::string_view value) override
    {
        map_[key] = std::string(value);
        return Status::ok();
    }
    Status get(uint64_t key, std::string *value) override
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return Status::notFound();
        *value = it->second;
        return Status::ok();
    }
    Status del(uint64_t key) override
    {
        return map_.erase(key) != 0 ? Status::ok() : Status::notFound();
    }
    Status
    scan(uint64_t start_key, size_t count,
         std::vector<std::pair<uint64_t, std::string>> *out) override
    {
        for (auto it = map_.lower_bound(start_key);
             it != map_.end() && out->size() < count; ++it)
            out->push_back(*it);
        return Status::ok();
    }

  private:
    std::map<uint64_t, std::string> map_;
};

TEST(KvStoreAsyncDefaults, WrapBlockingCallsWithReadyFutures)
{
    MapStore store;
    OpFuture put = store.asyncPut(1, "one");
    EXPECT_TRUE(put.ready()) << "sync wrappers complete before returning";
    EXPECT_TRUE(put.status().isOk());

    bool called = false;
    OpFuture get = store.asyncGet(1, [&](const Status &st) {
        EXPECT_TRUE(st.isOk());
        called = true;
    });
    EXPECT_TRUE(get.ready());
    EXPECT_TRUE(called);
    EXPECT_EQ(get.value(), "one");

    EXPECT_TRUE(store.asyncDel(1).status().isOk());
    EXPECT_TRUE(store.asyncGet(1).status().isNotFound());

    for (uint64_t k = 10; k < 20; k++)
        store.put(k, "v");
    OpFuture scan = store.asyncScan(10, 5);
    EXPECT_TRUE(scan.ready());
    EXPECT_EQ(scan.rows().size(), 5u);
}

}  // namespace
}  // namespace prism::core
