/**
 * @file
 * Unit tests for the LSM baseline substrate: bloom filters, the extent
 * store, SSTables + block cache, the LSM tree engine (including the
 * MatrixKV matrix-container mode), and SLM-DB's single-level design.
 */
#include <gtest/gtest.h>

#include <map>

#include "common/rand.h"
#include "lsm/bloom.h"
#include "lsm/extent_store.h"
#include "lsm/lsm_tree.h"
#include "lsm/slm_db.h"
#include "lsm/sstable.h"
#include "sim/device_profile.h"

namespace prism::lsm {
namespace {

std::shared_ptr<ExtentStore>
makeSsdStore(int devices = 2, uint64_t bytes_each = 64 << 20)
{
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    for (int i = 0; i < devices; i++) {
        ssds.push_back(std::make_shared<sim::SsdDevice>(
            bytes_each, sim::kSamsung980ProProfile, /*timing=*/false));
    }
    return std::make_shared<ExtentStore>(
        std::make_shared<sim::SsdArray>(ssds));
}

std::shared_ptr<ExtentStore>
makeNvmStore(uint64_t bytes = 64 << 20)
{
    return std::make_shared<ExtentStore>(std::make_shared<sim::NvmDevice>(
        bytes, sim::kOptaneDcpmmProfile, /*timing=*/false));
}

TEST(BloomFilterTest, NoFalseNegativesLowFalsePositives)
{
    BloomFilter bloom(10000, 10);
    for (uint64_t i = 0; i < 10000; i++)
        bloom.add(hash64(i));
    for (uint64_t i = 0; i < 10000; i++)
        ASSERT_TRUE(bloom.mayContain(hash64(i)));
    int fp = 0;
    for (uint64_t i = 10000; i < 30000; i++)
        fp += bloom.mayContain(hash64(i));
    EXPECT_LT(fp, 20000 * 0.03);  // ~1% expected at 10 bits/key
}

TEST(ExtentStoreTest, AllocFreeCoalesce)
{
    auto store = makeNvmStore(1 << 20);
    const uint64_t a = store->alloc(8192);
    const uint64_t b = store->alloc(8192);
    const uint64_t c = store->alloc(8192);
    ASSERT_NE(a, UINT64_MAX);
    ASSERT_NE(b, UINT64_MAX);
    EXPECT_NE(a, b);
    store->free(b, 8192);
    store->free(a, 8192);
    // Freed neighbors coalesce: a 16 KB request fits where a+b were.
    const uint64_t d = store->alloc(16384);
    EXPECT_EQ(d, a);
    (void)c;
}

TEST(ExtentStoreTest, ExhaustionAndReuse)
{
    auto store = makeNvmStore(1 << 20);
    std::vector<uint64_t> offs;
    uint64_t off;
    while ((off = store->alloc(64 * 1024)) != UINT64_MAX)
        offs.push_back(off);
    EXPECT_GE(offs.size(), 15u);
    for (const uint64_t o : offs)
        store->free(o, 64 * 1024);
    EXPECT_EQ(store->usedBytes(), 0u);
    EXPECT_NE(store->alloc(512 * 1024), UINT64_MAX);
}

TEST(ExtentStoreTest, ReadWriteBothBackends)
{
    for (auto store : {makeNvmStore(), makeSsdStore()}) {
        const uint64_t off = store->alloc(8192);
        std::string data = "extent data";
        ASSERT_TRUE(store->write(off, data.data(),
                                 static_cast<uint32_t>(data.size()))
                        .isOk());
        std::string back(data.size(), 0);
        ASSERT_TRUE(store->read(off, back.data(),
                                static_cast<uint32_t>(back.size()))
                        .isOk());
        EXPECT_EQ(back, data);
        EXPECT_GT(store->mediaBytesWritten(), 0u);
    }
}

TEST(SsTableTest, BuildGetIterate)
{
    auto store = makeNvmStore();
    TableBuilder builder(*store, 1000);
    std::map<uint64_t, std::string> ref;
    for (uint64_t i = 0; i < 1000; i++) {
        Entry e{i * 3, i + 1, EntryType::kPut,
                "val" + std::to_string(i)};
        builder.add(e);
        ref[e.key] = e.value;
    }
    auto table = builder.finish();
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->entryCount(), 1000u);
    EXPECT_EQ(table->minKey(), 0u);
    EXPECT_EQ(table->maxKey(), 999u * 3);

    BlockCache cache(1 << 20);
    for (uint64_t i = 0; i < 1000; i += 13) {
        const auto e = table->get(i * 3, &cache);
        ASSERT_TRUE(e.has_value()) << i;
        EXPECT_EQ(e->value, ref[i * 3]);
        EXPECT_FALSE(table->get(i * 3 + 1, &cache).has_value());
    }
    EXPECT_GT(cache.hits() + cache.misses(), 0u);

    // Full iteration must reproduce the reference in order.
    Table::Iter iter(*table, &cache);
    auto it = ref.begin();
    while (iter.valid()) {
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(iter.entry().key, it->first);
        EXPECT_EQ(iter.entry().value, it->second);
        ++it;
        iter.next();
    }
    EXPECT_EQ(it, ref.end());

    // Seek lands on the first key >= target.
    Table::Iter seeker(*table, &cache);
    seeker.seek(500);
    ASSERT_TRUE(seeker.valid());
    EXPECT_EQ(seeker.entry().key, 501u);  // 500 not divisible by 3
}

TEST(BlockCacheTest, LruEvictionUnderCapacity)
{
    BlockCache cache(8 * 4096);
    for (uint32_t b = 0; b < 16; b++) {
        cache.put(1, b,
                  std::make_shared<std::vector<uint8_t>>(4096, b));
    }
    // The earliest blocks must have been evicted.
    EXPECT_EQ(cache.get(1, 0), nullptr);
    EXPECT_NE(cache.get(1, 15), nullptr);
    cache.eraseTable(1);
    EXPECT_EQ(cache.get(1, 15), nullptr);
}

LsmOptions
smallLsmOptions()
{
    LsmOptions opts;
    opts.memtable_bytes = 64 * 1024;
    opts.l0_limit = 2;
    opts.l0_stall_limit = 8;
    opts.level1_bytes = 512 * 1024;
    opts.table_bytes = 128 * 1024;
    opts.wal_bytes = 1 << 20;
    opts.sw_get_overhead_ns = 0;
    opts.sw_put_overhead_ns = 0;
    return opts;
}

TEST(LsmTreeTest, ChurnThroughCompactionsKeepsLatest)
{
    auto store = makeSsdStore();
    LsmTree tree(smallLsmOptions(), store, store, store);
    std::map<uint64_t, std::string> ref;
    Xorshift rng(3);
    for (int i = 0; i < 30000; i++) {
        const uint64_t key = rng.nextUniform(2000);
        const std::string value =
            "v" + std::to_string(i) + std::string(100, 'x');
        ASSERT_TRUE(tree.put(key, value).isOk());
        ref[key] = value;
    }
    tree.flushAll();
    EXPECT_GT(tree.stats().compactions.load(), 0u);
    std::string v;
    for (const auto &[key, expected] : ref) {
        ASSERT_TRUE(tree.get(key, &v).isOk()) << key;
        ASSERT_EQ(v, expected) << key;
    }
}

TEST(LsmTreeTest, TombstonesShadowOlderVersions)
{
    auto store = makeSsdStore();
    LsmTree tree(smallLsmOptions(), store, store, store);
    std::string big(500, 'd');
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(tree.put(k, big).isOk());
    tree.flushAll();  // versions now deep in the tree
    for (uint64_t k = 0; k < 2000; k += 2)
        ASSERT_TRUE(tree.del(k).isOk());
    tree.flushAll();
    std::string v;
    EXPECT_TRUE(tree.get(0, &v).isNotFound());
    EXPECT_TRUE(tree.get(1, &v).isOk());

    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(tree.scan(0, 10, &out).isOk());
    ASSERT_EQ(out.size(), 10u);
    for (const auto &[k, val] : out)
        EXPECT_EQ(k % 2, 1u) << "deleted key leaked into scan";
}

TEST(LsmTreeTest, MatrixModePartitionsL0AndCompactsColumns)
{
    auto ssd = makeSsdStore();
    auto nvm = makeNvmStore();
    LsmOptions opts = smallLsmOptions();
    opts.l0_partitions = 8;
    LsmTree tree(opts, ssd, /*l0=*/nvm, /*wal=*/nvm);
    std::map<uint64_t, std::string> ref;
    Xorshift rng(5);
    for (int i = 0; i < 20000; i++) {
        const uint64_t key = hash64(rng.nextUniform(1500));
        const std::string value =
            "m" + std::to_string(i) + std::string(120, 'p');
        ASSERT_TRUE(tree.put(key, value).isOk());
        ref[key] = value;
    }
    tree.flushAll();
    std::string v;
    for (const auto &[key, expected] : ref) {
        ASSERT_TRUE(tree.get(key, &v).isOk());
        ASSERT_EQ(v, expected);
    }
    // L0 lived on NVM; L1+ on SSD.
    EXPECT_GT(nvm->mediaBytesWritten(), 0u);
    EXPECT_GT(ssd->mediaBytesWritten(), 0u);
}

TEST(LsmTreeTest, ScanMergesAllSources)
{
    auto store = makeSsdStore();
    LsmTree tree(smallLsmOptions(), store, store, store);
    // Old versions into the tree, fresh ones in the memtable.
    for (uint64_t k = 0; k < 500; k++)
        ASSERT_TRUE(tree.put(k, "old").isOk());
    tree.flushAll();
    for (uint64_t k = 0; k < 500; k += 5)
        ASSERT_TRUE(tree.put(k, "new").isOk());
    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(tree.scan(0, 20, &out).isOk());
    ASSERT_EQ(out.size(), 20u);
    for (const auto &[k, v] : out)
        EXPECT_EQ(v, k % 5 == 0 ? "new" : "old") << k;
}

TEST(LsmTreeTest, WriteStallsAreAccounted)
{
    auto store = makeSsdStore();
    LsmOptions opts = smallLsmOptions();
    opts.l0_stall_limit = 3;
    LsmTree tree(opts, store, store, store);
    std::string big(900, 's');
    for (uint64_t k = 0; k < 4000; k++)
        ASSERT_TRUE(tree.put(hash64(k), big).isOk());
    // With a 3-memtable stall limit and constant inflow, some stall
    // time must have accumulated.
    EXPECT_GT(tree.stats().stall_ns.load(), 0u);
}

TEST(SlmDbTest, BasicAndOverwrite)
{
    SlmDbOptions opts;
    opts.memtable_bytes = 32 * 1024;
    auto ssd = makeSsdStore();
    auto nvm = makeNvmStore();
    SlmDb db(opts, ssd, nvm);
    std::map<uint64_t, std::string> ref;
    for (int round = 0; round < 4; round++) {
        for (uint64_t k = 0; k < 1500; k++) {
            const std::string value =
                "r" + std::to_string(round) + "k" + std::to_string(k);
            ASSERT_TRUE(db.put(k, value).isOk());
            ref[k] = value;
        }
    }
    db.flushAll();
    std::string v;
    for (const auto &[k, expected] : ref) {
        ASSERT_TRUE(db.get(k, &v).isOk()) << k;
        ASSERT_EQ(v, expected);
    }
}

TEST(SlmDbTest, SelectiveCompactionShrinksTables)
{
    SlmDbOptions opts;
    opts.memtable_bytes = 32 * 1024;
    opts.compact_dead_ratio = 0.3;
    auto ssd = makeSsdStore();
    auto nvm = makeNvmStore();
    SlmDb db(opts, ssd, nvm);
    std::string value(200, 'u');
    // Repeated overwrites generate dead entries in old tables.
    for (int round = 0; round < 10; round++) {
        for (uint64_t k = 0; k < 600; k++)
            ASSERT_TRUE(db.put(k, value).isOk());
        db.flushAll();
    }
    // Selective compaction must keep the table count bounded well below
    // one-table-per-flush.
    EXPECT_LT(db.tableCount(), 20u);
    std::string v;
    for (uint64_t k = 0; k < 600; k += 17)
        ASSERT_TRUE(db.get(k, &v).isOk());
}

TEST(SlmDbTest, DeleteAndScan)
{
    SlmDbOptions opts;
    opts.memtable_bytes = 32 * 1024;
    auto ssd = makeSsdStore();
    auto nvm = makeNvmStore();
    SlmDb db(opts, ssd, nvm);
    for (uint64_t k = 0; k < 1000; k++)
        ASSERT_TRUE(db.put(k * 2, "s" + std::to_string(k)).isOk());
    db.flushAll();
    for (uint64_t k = 0; k < 1000; k += 4)
        ASSERT_TRUE(db.del(k * 2).isOk());
    db.flushAll();
    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(db.scan(0, 30, &out).isOk());
    ASSERT_EQ(out.size(), 30u);
    for (const auto &[k, v] : out) {
        EXPECT_NE(k % 8, 0u) << "deleted key in scan";
        EXPECT_EQ(v, "s" + std::to_string(k / 2));
    }
}

}  // namespace
}  // namespace prism::lsm
