/**
 * @file
 * Unit tests for the storage device simulator: NVM device, SSD device
 * (queue pair, timing, snapshots) and the RAID-0 array.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "common/clock.h"
#include "common/waiter.h"
#include "sim/nvm_device.h"
#include "sim/ssd_array.h"
#include "sim/ssd_device.h"

namespace prism::sim {
namespace {

TEST(NvmDeviceTest, RawAccessAndStats)
{
    NvmDevice dev(1 << 20, kOptaneDcpmmProfile, /*timing=*/false);
    std::memcpy(dev.raw() + 100, "hello", 5);
    EXPECT_EQ(std::memcmp(dev.raw() + 100, "hello", 5), 0);
    dev.chargeRead(64);
    dev.chargeWrite(128);
    EXPECT_EQ(dev.stats().bytes_read.load(), 64u);
    EXPECT_EQ(dev.stats().bytes_written.load(), 128u);
    EXPECT_EQ(dev.stats().read_ops.load(), 1u);
}

TEST(NvmDeviceTest, TimingChargesRealTime)
{
    NvmDevice dev(1 << 20, kOptaneDcpmmProfile, /*timing=*/true);
    const uint64_t t0 = nowNs();
    for (int i = 0; i < 100; i++)
        dev.chargeRead(64);
    // 100 reads at 300 ns latency each: at least 30 us must elapse.
    EXPECT_GE(nowNs() - t0, 30 * 1000u);
}

TEST(NvmDeviceTest, LoadImageRestoresContents)
{
    NvmDevice dev(1 << 20, kOptaneDcpmmProfile, false);
    std::vector<uint8_t> image(1 << 20, 0xAB);
    dev.loadImage(image.data(), image.size());
    EXPECT_EQ(dev.raw()[12345], 0xAB);
}

TEST(SsdDeviceTest, SyncWriteReadRoundtrip)
{
    SsdDevice dev(16 << 20, kSamsung980ProProfile, /*timing=*/false);
    std::string data = "prism value storage block";
    ASSERT_TRUE(dev.writeSync(8192, data.data(),
                              static_cast<uint32_t>(data.size()))
                    .isOk());
    std::string back(data.size(), 0);
    ASSERT_TRUE(dev.readSync(8192, back.data(),
                             static_cast<uint32_t>(back.size()))
                    .isOk());
    EXPECT_EQ(back, data);
}

TEST(SsdDeviceTest, UnwrittenBlocksReadZero)
{
    SsdDevice dev(16 << 20, kSamsung980ProProfile, false);
    std::vector<uint8_t> buf(4096, 0xFF);
    ASSERT_TRUE(dev.readSync(1 << 20, buf.data(), 4096).isOk());
    for (const uint8_t b : buf)
        ASSERT_EQ(b, 0);
}

TEST(SsdDeviceTest, AsyncBatchCompletes)
{
    SsdDevice dev(16 << 20, kSamsung980ProProfile, false);
    std::vector<uint8_t> src(4096, 0x5A);
    std::vector<SsdIoRequest> batch;
    for (int i = 0; i < 8; i++) {
        SsdIoRequest req;
        req.op = SsdIoRequest::Op::kWrite;
        req.offset = static_cast<uint64_t>(i) * 4096;
        req.length = 4096;
        req.src = src.data();
        req.user_data = static_cast<uint64_t>(i) + 1;
        batch.push_back(req);
    }
    ASSERT_TRUE(dev.submit({batch.data(), batch.size()}).isOk());
    std::vector<SsdCompletion> done;
    while (done.size() < 8)
        dev.waitCompletions(done, 8, 1000);
    std::set<uint64_t> tags;
    for (const auto &c : done) {
        EXPECT_TRUE(c.status.isOk());
        tags.insert(c.user_data);
    }
    EXPECT_EQ(tags.size(), 8u);
    EXPECT_EQ(dev.inflight(), 0u);
}

TEST(SsdDeviceTest, TimedReadHasModeledLatency)
{
    SsdDevice dev(16 << 20, kSamsung980ProProfile, /*timing=*/true);
    std::vector<uint8_t> buf(4096);
    SsdIoRequest req;
    req.op = SsdIoRequest::Op::kRead;
    req.offset = 0;
    req.length = 4096;
    req.buf = buf.data();
    req.user_data = 1;
    const uint64_t t0 = nowNs();
    ASSERT_TRUE(dev.submit(req).isOk());
    std::vector<SsdCompletion> done;
    while (done.empty())
        dev.waitCompletions(done, 1, 1000);
    const uint64_t dt = nowNs() - t0;
    // 980 Pro read latency is 50 us; allow generous slack upward.
    EXPECT_GE(dt, 45 * 1000u);
    EXPECT_GE(done[0].latency_ns, 40 * 1000u);
}

TEST(SsdDeviceTest, RejectsOutOfRange)
{
    SsdDevice dev(1 << 20, kSamsung980ProProfile, false);
    std::vector<uint8_t> buf(4096);
    SsdIoRequest req;
    req.op = SsdIoRequest::Op::kRead;
    req.offset = (1 << 20);
    req.length = 4096;
    req.buf = buf.data();
    EXPECT_FALSE(dev.submit(req).isOk());
    EXPECT_FALSE(dev.readSync(1 << 20, buf.data(), 4096).isOk());
}

TEST(SsdDeviceTest, SnapshotAndRestore)
{
    SsdDevice dev(4 << 20, kSamsung980ProProfile, false);
    const char data[] = "persisted";
    dev.writeSync(4096, data, sizeof(data));
    std::vector<uint8_t> image;
    dev.snapshotTo(image);

    SsdDevice dev2(4 << 20, kSamsung980ProProfile, false);
    dev2.loadFrom(image);
    char back[sizeof(data)] = {};
    dev2.readSync(4096, back, sizeof(back));
    EXPECT_STREQ(back, data);
}

TEST(SsdDeviceTest, EraseAllClears)
{
    SsdDevice dev(4 << 20, kSamsung980ProProfile, false);
    const char data[] = "gone";
    dev.writeSync(0, data, sizeof(data));
    dev.eraseAll();
    char back[8] = {1, 1, 1, 1};
    dev.readSync(0, back, 8);
    for (const char b : back)
        EXPECT_EQ(b, 0);
}

TEST(SsdDeviceTest, StatsCountHostBytes)
{
    SsdDevice dev(4 << 20, kSamsung980ProProfile, false);
    std::vector<uint8_t> buf(8192, 1);
    dev.writeSync(0, buf.data(), 8192);
    dev.readSync(0, buf.data(), 4096);
    EXPECT_EQ(dev.stats().bytes_written.load(), 8192u);
    EXPECT_EQ(dev.stats().bytes_read.load(), 4096u);
}

TEST(SsdArrayTest, StripedRoundtripAcrossBoundaries)
{
    std::vector<std::shared_ptr<SsdDevice>> devices;
    for (int i = 0; i < 4; i++) {
        devices.push_back(std::make_shared<SsdDevice>(
            4 << 20, kSamsung980ProProfile, false));
    }
    SsdArray array(devices, 64 * 1024);
    EXPECT_EQ(array.capacity(), 4ull * (4 << 20));

    // A write spanning several stripe units must round-trip intact.
    std::vector<uint8_t> data(300 * 1024);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<uint8_t>(i * 31);
    ASSERT_TRUE(array.writeSync(40 * 1024, data.data(),
                                static_cast<uint32_t>(data.size()))
                    .isOk());
    std::vector<uint8_t> back(data.size());
    ASSERT_TRUE(array.readSync(40 * 1024, back.data(),
                               static_cast<uint32_t>(back.size()))
                    .isOk());
    EXPECT_EQ(back, data);

    // The bytes must actually be spread over multiple member devices.
    int touched = 0;
    for (const auto &d : devices)
        touched += d->stats().bytes_written.load() > 0;
    EXPECT_GE(touched, 4);
    EXPECT_EQ(array.totalBytesWritten(), data.size());
}

}  // namespace
}  // namespace prism::sim
