/**
 * @file
 * Tests for prism::trace (src/common/trace.h): ring wraparound, torn-
 * read safety under concurrent emit + export (run under TSan in CI),
 * Chrome-trace JSON export structure and span nesting, and slow-op
 * capture thresholds / memory bounds.
 *
 * TraceRegistry::global() is process-wide, so every test that records
 * events does so from a *fresh* thread (fresh dense ThreadId => fresh
 * ring) and uses clear() to hide earlier tests' events.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"

using namespace prism;
using namespace prism::trace;

// ---------------------------------------------------------------------
// A minimal JSON parser, just enough to validate exported traces.
// ---------------------------------------------------------------------

namespace {

struct JsonValue {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
        kNull;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue *find(const std::string &key) const {
        const auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

class JsonParser {
  public:
    explicit JsonParser(const std::string &s) : s_(s) {}

    bool parse(JsonValue *out) {
        const bool ok = value(out);
        skipWs();
        return ok && pos_ == s_.size();
    }

  private:
    void skipWs() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            pos_++;
    }

    bool value(JsonValue *out) {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out->kind = JsonValue::kString;
            return string(&out->str);
        }
        if (c == 't' || c == 'f') {
            out->kind = JsonValue::kBool;
            out->b = c == 't';
            pos_ += c == 't' ? 4 : 5;
            return pos_ <= s_.size();
        }
        if (c == 'n') {
            out->kind = JsonValue::kNull;
            pos_ += 4;
            return pos_ <= s_.size();
        }
        return number(out);
    }

    bool object(JsonValue *out) {
        out->kind = JsonValue::kObject;
        pos_++;  // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            pos_++;  // ':'
            JsonValue v;
            if (!value(&v))
                return false;
            out->obj.emplace(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (s_[pos_] == '}') {
                pos_++;
                return true;
            }
            return false;
        }
    }

    bool array(JsonValue *out) {
        out->kind = JsonValue::kArray;
        pos_++;  // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            pos_++;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(&v))
                return false;
            out->arr.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (s_[pos_] == ']') {
                pos_++;
                return true;
            }
            return false;
        }
    }

    bool string(std::string *out) {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        pos_++;
        out->clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
                pos_++;
                switch (s_[pos_]) {
                case 'n': out->push_back('\n'); break;
                case 't': out->push_back('\t'); break;
                case 'u': pos_ += 4; out->push_back('?'); break;
                default: out->push_back(s_[pos_]);
                }
            } else {
                out->push_back(s_[pos_]);
            }
            pos_++;
        }
        if (pos_ >= s_.size())
            return false;
        pos_++;  // closing quote
        return true;
    }

    bool number(JsonValue *out) {
        const size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            pos_++;
        if (pos_ == start)
            return false;
        out->kind = JsonValue::kNumber;
        out->num = std::stod(s_.substr(start, pos_ - start));
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** Run @p fn on a brand-new thread (fresh ThreadId => fresh ring). */
void
onFreshThread(const std::function<void()> &fn)
{
    std::thread t(fn);
    t.join();
}

}  // namespace

// ---------------------------------------------------------------------
// Ring behaviour.
// ---------------------------------------------------------------------

TEST(TraceRingTest, WraparoundKeepsNewestEvents)
{
    auto &reg = TraceRegistry::global();
    reg.clear();
    reg.setRingCapacity(64);
    reg.setEnabled(true);
    const uint32_t name = reg.internName("test.wrap");
    const uint32_t argn = reg.internName("i");

    onFreshThread([&] {
        constexpr uint64_t kEvents = 200;
        for (uint64_t i = 0; i < kEvents; i++)
            instant(name, argn, i);
        TraceRing &ring = reg.ring();
        EXPECT_EQ(ring.head(), kEvents);
        EXPECT_EQ(ring.capacity(), 64u);

        std::vector<Event> evs;
        ring.snapshot(evs);
        ASSERT_LE(evs.size(), 64u);
        ASSERT_GE(evs.size(), 1u);
        // Oldest first, newest last, and only the newest survive.
        EXPECT_EQ(evs.back().arg1, kEvents - 1);
        for (size_t i = 0; i < evs.size(); i++) {
            EXPECT_GE(evs[i].arg1, kEvents - 64);
            if (i > 0)
                EXPECT_GT(evs[i].arg1, evs[i - 1].arg1);
        }
    });
    reg.setEnabled(false);
}

TEST(TraceRingTest, DisabledTracerRecordsNothing)
{
    auto &reg = TraceRegistry::global();
    reg.setEnabled(false);
    reg.setSlowOpThresholdUs(0);
    const uint32_t name = reg.internName("test.disabled");
    onFreshThread([&] {
        // Dense thread ids (and therefore rings) are recycled, so the
        // ring may hold an earlier owner's events; only the delta
        // matters.
        const uint64_t before = reg.ring().head();
        {
            Span s(name);
            EXPECT_FALSE(s.active());
        }
        instant(name);
        EXPECT_EQ(reg.ring().head(), before);
    });
}

// ---------------------------------------------------------------------
// Concurrent emit + export (the TSan target).
// ---------------------------------------------------------------------

TEST(TraceConcurrencyTest, EightWritersOneExporter)
{
    auto &reg = TraceRegistry::global();
    reg.clear();
    reg.setRingCapacity(1024);
    reg.setEnabled(true);
    const uint32_t name = reg.internName("test.concurrent");
    const uint32_t argn = reg.internName("i");

    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::atomic<bool> stop{false};

    // Exporter hammers snapshots while writers emit.
    std::thread exporter([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto all = reg.snapshotAll();
            for (const auto &[tid, evs] : all) {
                for (const Event &e : evs) {
                    // Validated decode: never a torn half-event.
                    EXPECT_NE(e.name_id, 0u);
                    EXPECT_LE(static_cast<int>(e.type), 4);
                }
            }
            const std::string json = reg.exportJson();
            EXPECT_FALSE(json.empty());
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; t++) {
        writers.emplace_back([&] {
            const uint64_t before = reg.ring().head();
            for (uint64_t i = 0; i < kPerThread; i++) {
                Span s(name);
                s.arg(argn, i);
            }
            EXPECT_EQ(reg.ring().head(), before + kPerThread);
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    exporter.join();
    reg.setEnabled(false);
}

// ---------------------------------------------------------------------
// Export format.
// ---------------------------------------------------------------------

TEST(TraceExportTest, JsonParsesAndSpansNest)
{
    auto &reg = TraceRegistry::global();
    reg.clear();
    reg.setRingCapacity(4096);
    reg.setEnabled(true);
    const uint32_t outer_id = reg.internName("test.outer");
    const uint32_t inner_id = reg.internName("test.inner");
    const uint32_t argn = reg.internName("step");

    onFreshThread([&] {
        reg.setThreadName("trace-test-emitter");
        {
            Span outer(outer_id);
            for (int i = 0; i < 3; i++) {
                Span inner(inner_id);
                inner.arg(argn, static_cast<uint64_t>(i));
            }
        }
        instant(reg.internName("test.marker"));
    });
    reg.setEnabled(false);

    const std::string json = reg.exportJson();
    JsonValue root;
    ASSERT_TRUE(JsonParser(json).parse(&root)) << json;
    ASSERT_EQ(root.kind, JsonValue::kObject);

    const JsonValue *unit = root.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->str, "ms");

    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::kArray);

    double outer_ts = -1, outer_end = -1;
    int inner_seen = 0;
    bool named_thread_meta = false, marker_seen = false;
    for (const JsonValue &e : events->arr) {
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(name, nullptr);
        if (ph->str == "M" && name->str == "thread_name") {
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            if (args->find("name") != nullptr &&
                args->find("name")->str == "trace-test-emitter")
                named_thread_meta = true;
        }
        if (ph->str == "X" && name->str == "test.outer") {
            outer_ts = e.find("ts")->num;
            outer_end = outer_ts + e.find("dur")->num;
        }
        if (ph->str == "i" && name->str == "test.marker") {
            marker_seen = true;
            EXPECT_EQ(e.find("s")->str, "t");
        }
    }
    ASSERT_GE(outer_ts, 0.0);
    EXPECT_TRUE(named_thread_meta);
    EXPECT_TRUE(marker_seen);

    // Second pass now that the outer interval is known: every inner
    // span must be contained within it (the Perfetto nesting rule).
    for (const JsonValue &e : events->arr) {
        if (e.find("ph")->str != "X" ||
            e.find("name")->str != "test.inner")
            continue;
        inner_seen++;
        const double ts = e.find("ts")->num;
        const double end = ts + e.find("dur")->num;
        EXPECT_GE(ts, outer_ts);
        EXPECT_LE(end, outer_end + 2e-3);  // %.3f rounding slack
        const JsonValue *args = e.find("args");
        ASSERT_NE(args, nullptr);
        ASSERT_NE(args->find("step"), nullptr);
    }
    EXPECT_EQ(inner_seen, 3);
}

// ---------------------------------------------------------------------
// Slow-op capture.
// ---------------------------------------------------------------------

TEST(SlowOpTest, CaptureTriggersAtThresholdAndKeepsWorst)
{
    auto &reg = TraceRegistry::global();
    reg.clear();
    reg.setRingCapacity(4096);
    reg.setSlowOpKeep(4);
    reg.setSlowOpThresholdUs(5000);  // 5 ms
    // Threshold alone must arm recording (no setEnabled call).
    EXPECT_TRUE(reg.enabled());

    const uint32_t op_id = reg.internName("test.slow_op");
    const uint32_t child_id = reg.internName("test.slow_child");
    const uint64_t captured_before = reg.slowOpsCaptured();

    onFreshThread([&] {
        // Fast op: below threshold, not captured.
        {
            OpScope op(op_id);
        }
        // Slow ops with increasing duration.
        for (int i = 1; i <= 6; i++) {
            OpScope op(op_id);
            Span child(child_id);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5 + i * 2));
        }
    });

    EXPECT_EQ(reg.slowOpsCaptured() - captured_before, 6u);
    const auto ops = reg.slowOps();
    ASSERT_EQ(ops.size(), 4u);  // keep-worst bound
    for (size_t i = 0; i < ops.size(); i++) {
        EXPECT_EQ(ops[i].op, "test.slow_op");
        EXPECT_GE(ops[i].dur_ns, 5000ull * 1000);
        if (i > 0)
            EXPECT_LE(ops[i].dur_ns, ops[i - 1].dur_ns);  // worst first
        // The subtree holds the root span plus its child.
        ASSERT_GE(ops[i].events.size(), 2u);
        EXPECT_EQ(ops[i].events[0].name_id, op_id);
        bool has_child = false;
        for (const Event &e : ops[i].events)
            has_child |= e.name_id == child_id;
        EXPECT_TRUE(has_child);
    }

    reg.setSlowOpThresholdUs(0);
    EXPECT_FALSE(reg.enabled());
    reg.clearSlowOps();
    EXPECT_TRUE(reg.slowOps().empty());
}

TEST(SlowOpTest, SubtreeCopyIsBounded)
{
    auto &reg = TraceRegistry::global();
    reg.clear();
    reg.setRingCapacity(8192);
    reg.setSlowOpKeep(2);
    reg.setSlowOpThresholdUs(1000);  // 1 ms

    const uint32_t op_id = reg.internName("test.big_op");
    const uint32_t child_id = reg.internName("test.big_child");

    onFreshThread([&] {
        OpScope op(op_id);
        for (int i = 0; i < 2000; i++) {
            Span child(child_id);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
    });

    const auto ops = reg.slowOps();
    ASSERT_GE(ops.size(), 1u);
    const auto &big = ops[0];
    EXPECT_EQ(big.op, "test.big_op");
    EXPECT_TRUE(big.truncated);
    EXPECT_LE(big.events.size(), 512u);  // kMaxSlowOpEvents
    EXPECT_EQ(big.events[0].name_id, op_id);

    reg.setSlowOpThresholdUs(0);
    reg.clearSlowOps();
}

// ---------------------------------------------------------------------
// Metrics + clear semantics.
// ---------------------------------------------------------------------

TEST(TraceStatsTest, PublishStatsExportsTraceMetricFamily)
{
    auto &reg = TraceRegistry::global();
    reg.clear();
    reg.setRingCapacity(64);
    reg.setEnabled(true);
    const uint32_t name = reg.internName("test.metrics");
    onFreshThread([&] {
        for (int i = 0; i < 200; i++)  // forces ring wraps
            instant(name);
    });
    reg.setEnabled(false);
    reg.publishStats();

    const auto snap = stats::StatsRegistry::global().snapshot();
    EXPECT_GT(snap.gauge("prism.trace.events_recorded"), 0);
    EXPECT_GE(snap.gauge("prism.trace.events_dropped"), 200 - 64);
    EXPECT_GE(snap.gauge("prism.trace.ring_wraps"), 1);
    EXPECT_GE(snap.gauge("prism.trace.slow_ops_captured"), 0);
}

TEST(TraceClearTest, ClearHidesOlderEvents)
{
    auto &reg = TraceRegistry::global();
    reg.setEnabled(true);
    const uint32_t before_id = reg.internName("test.before_clear");
    const uint32_t after_id = reg.internName("test.after_clear");

    onFreshThread([&] {
        instant(before_id);
        // The clear floor is a timestamp; make sure the clock has
        // advanced past the event above before taking it.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        reg.clear();
        instant(after_id);
    });
    reg.setEnabled(false);

    bool saw_before = false, saw_after = false;
    for (const auto &[tid, evs] : reg.snapshotAll()) {
        for (const Event &e : evs) {
            saw_before |= e.name_id == before_id;
            saw_after |= e.name_id == after_id;
        }
    }
    EXPECT_FALSE(saw_before);
    EXPECT_TRUE(saw_after);
}
