/**
 * @file
 * ShardRouter (core/shard_router.h) correctness:
 *
 *  - cross-shard scan is exactly the global ordered view (k-way merge
 *    against a model std::map, at many windows);
 *  - multiGet reassembles results in caller order across shards,
 *    duplicates and misses included;
 *  - shards=1 is behaviourally identical to a plain PrismDb driven
 *    with the same op sequence;
 *  - N-shard crash recovery survives a second crash landing *between*
 *    per-shard recoveries (shard 0 recovered alone, killed, then the
 *    whole router recovered) — states equal to the model;
 *  - the shared BgPool drains per-source sub-queues round-robin and
 *    measures queue delay (prism.bg.queue_delay_ns);
 *  - the NUMA probe honours PRISM_NUMA_FAKE and falls back to one node.
 *
 * Runs under TSan and asan-ubsan in CI (.github/workflows/ci.yml).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/numa.h"
#include "common/rand.h"
#include "common/stats.h"
#include "core/bg_pool.h"
#include "core/prism_db.h"
#include "core/shard_router.h"
#include "sim/device_profile.h"

namespace prism::core {
namespace {

constexpr uint64_t kNvmBytes = 96ull * 1024 * 1024;
constexpr uint64_t kSsdBytes = 128ull * 1024 * 1024;

PrismOptions
testOptions()
{
    PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;
    opts.svc_capacity_bytes = 2 * 1024 * 1024;
    opts.hsit_capacity = 32 * 1024;
    opts.chunk_bytes = 64 * 1024;
    return opts;
}

std::string
valueFor(uint64_t key, uint64_t version)
{
    std::string v = "sv" + std::to_string(key) + "." +
                    std::to_string(version) + ".";
    v.resize(48 + (key % 64), 'p');
    return v;
}

/** An N-shard router on fresh simulated devices. */
struct RouterRig {
    PrismOptions opts;
    std::vector<std::shared_ptr<sim::NvmDevice>> nvms;
    std::vector<std::shared_ptr<pmem::PmemRegion>> regions;
    std::vector<std::vector<std::shared_ptr<sim::SsdDevice>>> ssds;
    std::unique_ptr<ShardRouter> db;

    explicit RouterRig(int shards, PrismOptions o = testOptions(),
                       bool tracked = false, int ssds_per_shard = 2)
        : opts(o)
    {
        opts.shards = shards;
        std::vector<ShardBackends> backends;
        for (int s = 0; s < shards; s++) {
            nvms.push_back(std::make_shared<sim::NvmDevice>(
                kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false));
            regions.push_back(std::make_shared<pmem::PmemRegion>(
                nvms.back(), /*format=*/true));
            if (tracked)
                regions.back()->enableTracking();
            std::vector<std::shared_ptr<sim::SsdDevice>> dev;
            for (int i = 0; i < ssds_per_shard; i++)
                dev.push_back(std::make_shared<sim::SsdDevice>(
                    kSsdBytes, sim::kSamsung980ProProfile,
                    /*timing=*/false));
            ssds.push_back(dev);
            backends.push_back({regions.back(),
                                PrismDb::asBackends(dev)});
        }
        db = ShardRouter::open(opts, std::move(backends));
    }
};

TEST(ShardOf, SingleShardAndBalance)
{
    for (uint64_t k : {0ull, 1ull, 42ull, ~0ull})
        EXPECT_EQ(ShardRouter::shardOf(k, 1), 0u);

    // Dense sequential keys must spread: every shard within 2x of fair
    // share over 16k keys.
    constexpr size_t kShards = 4;
    size_t hist[kShards] = {};
    for (uint64_t k = 0; k < 16384; k++) {
        const size_t s = ShardRouter::shardOf(k, kShards);
        ASSERT_LT(s, kShards);
        hist[s]++;
        EXPECT_EQ(ShardRouter::shardOf(k, kShards), s);  // stable
    }
    for (size_t s = 0; s < kShards; s++) {
        EXPECT_GT(hist[s], 16384 / kShards / 2);
        EXPECT_LT(hist[s], 16384 / kShards * 2);
    }
}

TEST(ShardRouterTest, CrossShardScanMatchesModel)
{
    RouterRig rig(4);
    std::map<uint64_t, std::string> model;
    Xorshift rng(2024);
    for (int i = 0; i < 4000; i++) {
        const uint64_t key = rng.nextUniform(100000);
        const std::string v = valueFor(key, static_cast<uint64_t>(i));
        ASSERT_TRUE(rig.db->put(key, v).isOk());
        model[key] = v;
    }
    // Delete a slice so the scan sees holes.
    int deleted = 0;
    for (auto it = model.begin();
         it != model.end() && deleted < 500;) {
        ASSERT_TRUE(rig.db->del(it->first).isOk());
        it = model.erase(it);
        // Skip ahead pseudo-randomly.
        for (uint32_t j = rng.nextUniform(4); j > 0 && it != model.end();
             j--)
            ++it;
        deleted++;
    }

    ASSERT_EQ(rig.db->size(), model.size());

    // Many windows: starts on existing keys, between keys, past the
    // end; counts from 1 to beyond the population.
    const size_t counts[] = {1, 7, 64, 1000, model.size() + 10};
    for (int trial = 0; trial < 40; trial++) {
        const uint64_t start = rng.nextUniform(110000);
        for (const size_t count : counts) {
            std::vector<std::pair<uint64_t, std::string>> got;
            ASSERT_TRUE(rig.db->scan(start, count, &got).isOk());
            std::vector<std::pair<uint64_t, std::string>> want;
            for (auto it = model.lower_bound(start);
                 it != model.end() && want.size() < count; ++it)
                want.emplace_back(it->first, it->second);
            ASSERT_EQ(got, want)
                << "scan(" << start << ", " << count << ")";
        }
    }
}

TEST(ShardRouterTest, MultiGetCallerOrder)
{
    RouterRig rig(4);
    std::map<uint64_t, std::string> model;
    Xorshift rng(7);
    for (int i = 0; i < 1000; i++) {
        const uint64_t key = rng.nextUniform(5000);
        const std::string v = valueFor(key, static_cast<uint64_t>(i));
        ASSERT_TRUE(rig.db->put(key, v).isOk());
        model[key] = v;
    }

    // Batch with keys from every shard, duplicates, and misses.
    std::vector<uint64_t> batch;
    for (int i = 0; i < 300; i++)
        batch.push_back(rng.nextUniform(8000));  // ~40% misses
    batch.push_back(batch.front());              // duplicate
    batch.push_back(batch.front());

    std::vector<std::optional<std::string>> out;
    ASSERT_TRUE(rig.db->multiGet(batch, &out).isOk());
    ASSERT_EQ(out.size(), batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
        const auto it = model.find(batch[i]);
        if (it == model.end()) {
            EXPECT_FALSE(out[i].has_value()) << "slot " << i;
        } else {
            ASSERT_TRUE(out[i].has_value()) << "slot " << i;
            EXPECT_EQ(*out[i], it->second) << "slot " << i;
        }
    }

    // Empty batch is a no-op, not an error.
    std::vector<std::optional<std::string>> empty_out;
    ASSERT_TRUE(rig.db->multiGet({}, &empty_out).isOk());
    EXPECT_TRUE(empty_out.empty());
}

TEST(ShardRouterTest, SingleShardMatchesPlainPrismDb)
{
    // The same deterministic op tape against a 1-shard router and a
    // plain PrismDb on an identical fixture: every status and value
    // must agree, op by op.
    RouterRig rig(1);
    auto nvm = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    auto region = std::make_shared<pmem::PmemRegion>(nvm, true);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    for (int i = 0; i < 2; i++)
        ssds.push_back(std::make_shared<sim::SsdDevice>(
            kSsdBytes, sim::kSamsung980ProProfile, false));
    auto plain = PrismDb::open(testOptions(), region, ssds);

    Xorshift rng(99);
    for (int i = 0; i < 3000; i++) {
        const uint64_t key = rng.nextUniform(800);
        const uint32_t dice = rng.nextUniform(100);
        if (dice < 60) {
            const std::string v =
                valueFor(key, static_cast<uint64_t>(i));
            const Status a = rig.db->put(key, v);
            const Status b = plain->put(key, v);
            ASSERT_EQ(a.isOk(), b.isOk());
        } else if (dice < 75) {
            const Status a = rig.db->del(key);
            const Status b = plain->del(key);
            ASSERT_EQ(a.toString(), b.toString());
        } else if (dice < 90) {
            std::string va, vb;
            const Status a = rig.db->get(key, &va);
            const Status b = plain->get(key, &vb);
            ASSERT_EQ(a.toString(), b.toString());
            if (a.isOk()) {
                ASSERT_EQ(va, vb);
            }
        } else {
            std::vector<std::pair<uint64_t, std::string>> oa, ob;
            ASSERT_TRUE(rig.db->scan(key, 20, &oa).isOk());
            ASSERT_TRUE(plain->scan(key, 20, &ob).isOk());
            ASSERT_EQ(oa, ob);
        }
    }
    ASSERT_EQ(rig.db->size(), plain->size());
    std::vector<std::pair<uint64_t, std::string>> fa, fb;
    ASSERT_TRUE(rig.db->scan(0, 100000, &fa).isOk());
    ASSERT_TRUE(plain->scan(0, 100000, &fb).isOk());
    ASSERT_EQ(fa, fb);
}

TEST(ShardRouterTest, CrashBetweenShardRecoveries)
{
    constexpr int kShards = 4;
    PrismOptions opts = testOptions();
    std::map<uint64_t, std::string> model;
    std::vector<std::vector<uint8_t>> nvm_imgs(kShards);
    std::vector<std::vector<std::vector<uint8_t>>> ssd_imgs(kShards);

    {
        RouterRig rig(kShards, opts, /*tracked=*/true);
        Xorshift rng(31337);
        for (int i = 0; i < 2500; i++) {
            const uint64_t key = rng.nextUniform(4000);
            const std::string v =
                valueFor(key, static_cast<uint64_t>(i));
            ASSERT_TRUE(rig.db->put(key, v).isOk());
            model[key] = v;
        }
        for (int i = 0; i < 300; i++) {
            const uint64_t key = rng.nextUniform(4000);
            const bool hit = model.erase(key) > 0;
            ASSERT_EQ(rig.db->del(key).isOk(), hit);
        }
        // Quiesce, then capture every shard's durable crash image.
        rig.db->flushAll();
        for (int s = 0; s < kShards; s++) {
            rig.regions[static_cast<size_t>(s)]->snapshotDurableTo(
                nvm_imgs[static_cast<size_t>(s)]);
            for (const auto &ssd : rig.ssds[static_cast<size_t>(s)]) {
                ssd_imgs[static_cast<size_t>(s)].emplace_back();
                ssd->snapshotTo(ssd_imgs[static_cast<size_t>(s)].back());
            }
        }
    }

    // Rebuild all shard devices from the crash images.
    std::vector<ShardBackends> backends;
    std::vector<std::shared_ptr<pmem::PmemRegion>> regions2;
    for (int s = 0; s < kShards; s++) {
        auto nvm = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, false);
        nvm->loadImage(nvm_imgs[static_cast<size_t>(s)].data(),
                       nvm_imgs[static_cast<size_t>(s)].size());
        regions2.push_back(
            std::make_shared<pmem::PmemRegion>(nvm, false));
        std::vector<std::shared_ptr<sim::SsdDevice>> dev;
        for (const auto &img : ssd_imgs[static_cast<size_t>(s)]) {
            auto d = std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile, false);
            d->loadFrom(img);
            dev.push_back(std::move(d));
        }
        backends.push_back({regions2.back(),
                            PrismDb::asBackends(dev)});
    }

    // "Kill between per-shard recoveries": recover shard 0 alone, then
    // destroy it before the other shards ever recover.
    {
        std::vector<std::shared_ptr<io::IoBackend>> dev0 =
            backends[0].devices;
        auto shard0 = PrismDb::recover(opts, regions2[0], dev0);
        ASSERT_GT(shard0->size(), 0u);
    }  // killed here

    // Second recovery attempt: the whole router, over the same device
    // objects (shard 0's region has now been through recovery twice).
    opts.shards = kShards;
    auto recovered = ShardRouter::recover(opts, std::move(backends));

    ASSERT_EQ(recovered->size(), model.size());
    for (const auto &[k, v] : model) {
        std::string got;
        ASSERT_TRUE(recovered->get(k, &got).isOk()) << "key " << k;
        EXPECT_EQ(got, v) << "key " << k;
    }
    std::vector<std::pair<uint64_t, std::string>> scanned;
    ASSERT_TRUE(recovered->scan(0, model.size() + 10, &scanned).isOk());
    ASSERT_EQ(scanned.size(), model.size());
    auto it = model.begin();
    for (const auto &[k, v] : scanned) {
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    }
    // And it stays writable.
    ASSERT_TRUE(recovered->put(1, "post-recovery").isOk());
}

TEST(BgPoolFairness, RoundRobinAcrossSources)
{
    BgPool pool(1);
    const int src_a = pool.allocSource();
    const int src_b = pool.allocSource();
    ASSERT_NE(src_a, src_b);
    ASSERT_GE(pool.sources(), 3);  // 0 + the two above

    // Gate the lone worker, queue a burst from A then a burst from B,
    // release, and record execution order.
    std::atomic<bool> gate{false};
    std::atomic<int> done{0};
    std::mutex order_mu;
    std::vector<int> order;
    pool.submit([&] {
        while (!gate.load(std::memory_order_acquire))
            std::this_thread::yield();
    });
    constexpr int kPerSource = 8;
    for (int i = 0; i < kPerSource; i++)
        pool.submit(src_a, [&, i] {
            std::lock_guard<std::mutex> l(order_mu);
            order.push_back(src_a * 1000 + i);
            done.fetch_add(1);
        });
    for (int i = 0; i < kPerSource; i++)
        pool.submit(src_b, [&, i] {
            std::lock_guard<std::mutex> l(order_mu);
            order.push_back(src_b * 1000 + i);
            done.fetch_add(1);
        });
    gate.store(true, std::memory_order_release);
    while (done.load() < 2 * kPerSource)
        std::this_thread::yield();

    std::lock_guard<std::mutex> l(order_mu);
    ASSERT_EQ(order.size(), 2u * kPerSource);
    // Round-robin: while both sources have work queued, the worker
    // must alternate — an all-A-then-all-B order would mean FIFO.
    // Per-source order must be FIFO regardless.
    std::vector<int> seen_a, seen_b;
    for (const int tag : order)
        (tag / 1000 == src_a ? seen_a : seen_b).push_back(tag % 1000);
    for (int i = 0; i < kPerSource; i++) {
        EXPECT_EQ(seen_a[static_cast<size_t>(i)], i);
        EXPECT_EQ(seen_b[static_cast<size_t>(i)], i);
    }
    for (size_t i = 0; i + 1 < order.size(); i++) {
        // Strict alternation while both queues are non-empty: the first
        // 2*kPerSource - 1 adjacent pairs must switch source.
        EXPECT_NE(order[i] / 1000, order[i + 1] / 1000)
            << "position " << i << ": a source ran twice in a row "
               "while the other still had queued work";
    }
}

TEST(BgPoolFairness, QueueDelayHistogramRecorded)
{
    const auto before = stats::StatsRegistry::global().snapshot();
    const auto *h0 = before.histogram("prism.bg.queue_delay_ns");
    const uint64_t count0 = h0 != nullptr ? h0->count : 0;

    BgPool pool(2);
    const int src = pool.allocSource();
    std::atomic<int> done{0};
    for (int i = 0; i < 32; i++)
        pool.submit(src, [&] { done.fetch_add(1); });
    while (done.load() < 32)
        std::this_thread::yield();
    pool.shutdown();

    const auto after = stats::StatsRegistry::global().snapshot();
    const auto *h1 = after.histogram("prism.bg.queue_delay_ns");
    ASSERT_NE(h1, nullptr);
    EXPECT_GE(h1->count, count0 + 32);
}

TEST(Numa, FakeTopologySplitsCpus)
{
    ASSERT_EQ(setenv("PRISM_NUMA_FAKE", "2", 1), 0);
    const numa::Topology fake = numa::probeNow();
    ASSERT_EQ(unsetenv("PRISM_NUMA_FAKE"), 0);

    EXPECT_TRUE(fake.fake);
    EXPECT_GE(fake.nodes(), 1);
    EXPECT_LE(fake.nodes(), 2);  // clamped to online CPU count
    size_t cpus = 0;
    for (const auto &node : fake.node_cpus) {
        EXPECT_FALSE(node.empty());
        cpus += node.size();
    }
    const numa::Topology real = numa::probeNow();
    EXPECT_FALSE(real.fake);
    size_t real_cpus = 0;
    for (const auto &node : real.node_cpus)
        real_cpus += node.size();
    EXPECT_EQ(cpus, real_cpus);  // same CPUs, different grouping
}

TEST(Numa, PlacementBasics)
{
    EXPECT_GE(numa::nodeCount(), 1);
    EXPECT_FALSE(numa::describe().empty());
    // -1 ("anywhere") and out-of-range nodes never pin.
    EXPECT_FALSE(numa::pinThreadToNode(-1));
    EXPECT_FALSE(numa::pinThreadToNode(numa::nodeCount() + 7));
    for (size_t i = 0; i < 8; i++) {
        const int node = numa::nodeForShard(i, 8);
        if (numa::nodeCount() <= 1)
            EXPECT_EQ(node, -1);
        else
            EXPECT_EQ(node, static_cast<int>(
                                i % static_cast<size_t>(
                                        numa::nodeCount())));
    }
}

}  // namespace
}  // namespace prism::core
