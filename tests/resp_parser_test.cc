/**
 * @file
 * Unit tests for the RESP framing layer (src/net/resp.h): incremental
 * command parsing under arbitrary fragmentation, limit enforcement,
 * inline commands, encoder round-trips, and the client-side reply
 * parser prism_loadgen relies on.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rand.h"
#include "net/resp.h"

namespace prism::net {
namespace {

using Args = std::vector<std::string>;

/** Feed @p wire whole and expect exactly @p want commands. */
std::vector<Args>
parseAll(RespParser &p, std::string_view wire)
{
    p.feed(wire);
    std::vector<Args> out;
    Args args;
    while (p.next(&args) == ParseResult::kCommand)
        out.push_back(args);
    return out;
}

TEST(RespParser, ArrayCommand)
{
    RespParser p;
    const auto cmds =
        parseAll(p, "*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$5\r\nhello\r\n");
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0], (Args{"SET", "42", "hello"}));
}

TEST(RespParser, InlineCommand)
{
    RespParser p;
    const auto cmds = parseAll(p, "PING\r\nGET   7\r\n");
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0], (Args{"PING"}));
    EXPECT_EQ(cmds[1], (Args{"GET", "7"}));
}

TEST(RespParser, BlankLinesAndEmptyArraysAreSkipped)
{
    RespParser p;
    const auto cmds = parseAll(p, "\r\n\r\n*0\r\nPING\r\n");
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0], (Args{"PING"}));
}

TEST(RespParser, BinarySafeBulkPayload)
{
    RespParser p;
    std::string wire = "*2\r\n$3\r\nGET\r\n$5\r\n";
    wire += std::string("a\0b\r\n", 5);
    wire += "\r\n";
    const auto cmds = parseAll(p, wire);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0][1], std::string("a\0b\r\n", 5));
}

/**
 * The core incremental-parsing property: any fragmentation of a valid
 * pipelined byte stream yields exactly the same command sequence. This
 * is the fuzz-ish table — every split point of a multi-command wire
 * image, plus randomized multi-way splits.
 */
TEST(RespParser, EverySplitPointYieldsSameCommands)
{
    std::string wire;
    encodeCommand(&wire, {"SET", "1", "abc"});
    wire += "PING\r\n";
    encodeCommand(&wire, {"MGET", "1", "2", "3"});
    encodeCommand(&wire, {"GET", std::string(64, 'k')});

    RespParser whole;
    const auto want = parseAll(whole, wire);
    ASSERT_EQ(want.size(), 4u);

    for (size_t cut = 0; cut <= wire.size(); cut++) {
        RespParser p;
        std::vector<Args> got;
        Args args;
        p.feed(std::string_view(wire).substr(0, cut));
        while (p.next(&args) == ParseResult::kCommand)
            got.push_back(args);
        p.feed(std::string_view(wire).substr(cut));
        while (p.next(&args) == ParseResult::kCommand)
            got.push_back(args);
        ASSERT_EQ(got, want) << "split at " << cut;
    }
}

TEST(RespParser, RandomizedFragmentation)
{
    std::string wire;
    for (int i = 0; i < 50; i++)
        encodeCommand(&wire,
                      {"SET", std::to_string(i),
                       std::string(static_cast<size_t>(i) * 7 % 97,
                                   'v')});
    Xorshift rng(42);
    for (int round = 0; round < 100; round++) {
        RespParser p;
        size_t fed = 0, n = 0;
        Args args;
        while (fed < wire.size()) {
            const size_t chunk = 1 + rng.nextUniform(37);
            const size_t take = std::min(chunk, wire.size() - fed);
            p.feed(std::string_view(wire).substr(fed, take));
            fed += take;
            while (p.next(&args) == ParseResult::kCommand)
                n++;
        }
        ASSERT_EQ(n, 50u) << "round " << round;
    }
}

TEST(RespParser, ByteAtATime)
{
    const std::string wire =
        "*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$3\r\nabc\r\n";
    RespParser p;
    Args args;
    for (size_t i = 0; i + 1 < wire.size(); i++) {
        p.feed(std::string_view(wire).substr(i, 1));
        ASSERT_EQ(p.next(&args), ParseResult::kNeedMore) << "byte " << i;
    }
    p.feed(std::string_view(wire).substr(wire.size() - 1));
    ASSERT_EQ(p.next(&args), ParseResult::kCommand);
    EXPECT_EQ(args, (Args{"SET", "1", "abc"}));
}

TEST(RespParser, OversizedFrameRejectedEvenIncomplete)
{
    RespLimits limits;
    limits.max_frame_bytes = 128;
    RespParser p(limits);
    // A bulk header promising a large payload, never delivered: the
    // parser must fail as soon as the buffered frame passes the limit
    // instead of waiting for the payload.
    p.feed("*2\r\n$3\r\nSET\r\n$90000\r\n");
    p.feed(std::string(200, 'x'));
    Args args;
    EXPECT_EQ(p.next(&args), ParseResult::kError);
    EXPECT_NE(p.error().find("ERR"), std::string::npos);
}

TEST(RespParser, OversizedBulkRejectedByHeader)
{
    RespLimits limits;
    limits.max_bulk_bytes = 16;
    RespParser p(limits);
    p.feed("*2\r\n$3\r\nGET\r\n$17\r\n");
    Args args;
    EXPECT_EQ(p.next(&args), ParseResult::kError);
}

TEST(RespParser, TooManyArgsRejected)
{
    RespLimits limits;
    limits.max_args = 4;
    RespParser p(limits);
    p.feed("*5\r\n");
    Args args;
    EXPECT_EQ(p.next(&args), ParseResult::kError);
}

TEST(RespParser, PathologicalHeadersRejected)
{
    const char *bad[] = {
        "*abc\r\n",              // non-numeric count
        "*-3\r\n",               // negative count
        "*2\r\n$3\r\nGET\r\n:5\r\n",   // non-bulk element
        "*1\r\n$-5\r\n",         // negative bulk length
        "*1\r\n$999999999999999999999\r\n",  // overflow
        "*1\r\n$3\r\nGETXX",     // missing CRLF after payload
        "$3\r\n",                // stray reply byte as a command
    };
    for (const char *wire : bad) {
        RespParser p;
        p.feed(wire);
        if (std::string_view(wire).find("GETXX") !=
            std::string_view::npos)
            p.feed("\r\n more bytes to make the frame complete\r\n");
        Args args;
        EXPECT_EQ(p.next(&args), ParseResult::kError) << wire;
    }
}

TEST(RespParser, PoisonedParserStaysPoisoned)
{
    RespParser p;
    p.feed("*bad\r\n");
    Args args;
    ASSERT_EQ(p.next(&args), ParseResult::kError);
    p.feed("PING\r\n");
    EXPECT_EQ(p.next(&args), ParseResult::kError);
}

TEST(RespParser, LongLivedConnectionCompactsBuffer)
{
    RespParser p;
    Args args;
    // Enough traffic that an unbounded buffer would hold ~1 MB; the
    // parser must not retain consumed bytes indefinitely.
    for (int i = 0; i < 4096; i++) {
        std::string wire;
        encodeCommand(&wire, {"SET", std::to_string(i),
                              std::string(200, 'v')});
        p.feed(wire);
        ASSERT_EQ(p.next(&args), ParseResult::kCommand);
    }
    EXPECT_EQ(p.buffered(), 0u);
}

// ---------------------------------------------------------------------
// Reply encoders + client-side reply parser
// ---------------------------------------------------------------------

TEST(RespReplyParser, Scalars)
{
    RespReply r;
    EXPECT_EQ(parseReply("+OK\r\n", &r), 5u);
    EXPECT_EQ(r.type, RespReply::Type::kSimple);
    EXPECT_EQ(r.str, "OK");

    EXPECT_EQ(parseReply("-ERR nope\r\n", &r), 11u);
    EXPECT_TRUE(r.isError());

    EXPECT_EQ(parseReply(":42\r\n", &r), 5u);
    EXPECT_EQ(r.integer, 42);

    EXPECT_EQ(parseReply("$5\r\nhello\r\n", &r), 11u);
    EXPECT_EQ(r.str, "hello");

    EXPECT_EQ(parseReply("$-1\r\n", &r), 5u);
    EXPECT_EQ(r.type, RespReply::Type::kNull);
}

TEST(RespReplyParser, NestedArrayAndPartial)
{
    // A SCAN-shaped reply: [cursor, [k1, k2]].
    std::string wire;
    appendArrayHeader(&wire, 2);
    appendBulk(&wire, "17");
    appendArrayHeader(&wire, 2);
    appendBulk(&wire, "1");
    appendBulk(&wire, "2");

    RespReply r;
    // Every strict prefix is incomplete, never malformed.
    for (size_t i = 0; i < wire.size(); i++)
        ASSERT_EQ(parseReply(std::string_view(wire).substr(0, i), &r),
                  0u)
            << i;
    ASSERT_EQ(parseReply(wire, &r), wire.size());
    ASSERT_EQ(r.type, RespReply::Type::kArray);
    ASSERT_EQ(r.elements.size(), 2u);
    EXPECT_EQ(r.elements[0].str, "17");
    ASSERT_EQ(r.elements[1].elements.size(), 2u);
    EXPECT_EQ(r.elements[1].elements[1].str, "2");
}

TEST(RespReplyParser, MalformedAndDepthBomb)
{
    RespReply r;
    EXPECT_EQ(parseReply("?what\r\n", &r), SIZE_MAX);
    EXPECT_EQ(parseReply(":notanum\r\n", &r), SIZE_MAX);
    // 16 nested single-element arrays exceed the depth cap.
    std::string bomb;
    for (int i = 0; i < 16; i++)
        bomb += "*1\r\n";
    bomb += ":1\r\n";
    EXPECT_EQ(parseReply(bomb, &r), SIZE_MAX);
}

TEST(RespEncode, CommandRoundTrip)
{
    std::string wire;
    encodeCommand(&wire, {"SET", "k", std::string("v\r\n\0", 4)});
    RespParser p;
    p.feed(wire);
    Args args;
    ASSERT_EQ(p.next(&args), ParseResult::kCommand);
    EXPECT_EQ(args[2], std::string("v\r\n\0", 4));
}

}  // namespace
}  // namespace prism::net
