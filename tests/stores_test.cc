/**
 * @file
 * Cross-store conformance tests: every evaluated system must behave as
 * a correct KV store under the same small workloads (the YCSB driver
 * depends on this contract).
 */
#include <gtest/gtest.h>

#include <memory>

#include "ycsb/driver.h"
#include "ycsb/stores.h"

namespace prism::ycsb {
namespace {

FixtureOptions
smallFixture()
{
    FixtureOptions fx;
    fx.num_ssds = 2;
    fx.ssd_bytes = 256ull * 1024 * 1024;
    fx.dataset_bytes = 16ull * 1024 * 1024;
    fx.model_timing = false;
    fx.expected_threads = 2;
    return fx;
}

std::unique_ptr<KvStore>
makeStore(const std::string &which)
{
    const FixtureOptions fx = smallFixture();
    if (which == "prism") {
        core::PrismOptions opts;
        opts.hsit_capacity = 256 * 1024;
        opts.chunk_bytes = 128 * 1024;
        return std::make_unique<PrismStore>(fx, opts);
    }
    if (which == "kvell")
        return std::make_unique<KvellStore>(fx, kvell::KvellOptions{});
    if (which == "rocksdb")
        return std::make_unique<LsmStore>(fx, LsmFlavor::kRocksDbSsd,
                                          lsm::LsmOptions{});
    if (which == "rocksdb-nvm")
        return std::make_unique<LsmStore>(fx, LsmFlavor::kRocksDbNvm,
                                          lsm::LsmOptions{});
    if (which == "matrixkv")
        return std::make_unique<LsmStore>(fx, LsmFlavor::kMatrixKv,
                                          lsm::LsmOptions{});
    if (which == "slmdb")
        return std::make_unique<SlmDbStore>(fx, lsm::SlmDbOptions{});
    return nullptr;
}

class StoreConformanceTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(StoreConformanceTest, PutGetDelete)
{
    auto store = makeStore(GetParam());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->put(10, "ten").isOk());
    ASSERT_TRUE(store->put(20, "twenty").isOk());
    std::string v;
    ASSERT_TRUE(store->get(10, &v).isOk());
    EXPECT_EQ(v, "ten");
    EXPECT_TRUE(store->get(30, &v).isNotFound());
    ASSERT_TRUE(store->del(10).isOk());
    EXPECT_TRUE(store->get(10, &v).isNotFound());
    ASSERT_TRUE(store->get(20, &v).isOk());
    EXPECT_EQ(v, "twenty");
}

TEST_P(StoreConformanceTest, OverwriteKeepsLatest)
{
    auto store = makeStore(GetParam());
    for (int round = 0; round < 5; round++) {
        for (uint64_t k = 0; k < 300; k++) {
            ASSERT_TRUE(
                store->put(k, std::to_string(k * 1000 + round)).isOk());
        }
    }
    store->flushAll();
    std::string v;
    for (uint64_t k = 0; k < 300; k++) {
        ASSERT_TRUE(store->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, std::to_string(k * 1000 + 4)) << k;
    }
}

TEST_P(StoreConformanceTest, ManyKeysThroughFlush)
{
    auto store = makeStore(GetParam());
    const bool single_threaded = std::string(GetParam()) == "slmdb";
    const uint64_t keys = single_threaded ? 3000 : 8000;
    std::string value(256, 'x');
    for (uint64_t k = 0; k < keys; k++) {
        value[0] = static_cast<char>('a' + k % 26);
        ASSERT_TRUE(store->put(k * 7, value).isOk()) << k;
    }
    store->flushAll();
    std::string v;
    for (uint64_t k = 0; k < keys; k += 11) {
        ASSERT_TRUE(store->get(k * 7, &v).isOk()) << k;
        EXPECT_EQ(v[0], static_cast<char>('a' + k % 26)) << k;
        EXPECT_EQ(v.size(), 256u);
    }
}

TEST_P(StoreConformanceTest, ScanIsSortedAndComplete)
{
    auto store = makeStore(GetParam());
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(store->put(k * 3, std::to_string(k)).isOk());
    store->flushAll();
    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(store->scan(300, 25, &out).isOk());
    ASSERT_EQ(out.size(), 25u);
    EXPECT_EQ(out[0].first, 300u);
    for (size_t i = 0; i < out.size(); i++) {
        EXPECT_EQ(out[i].first, 300 + 3 * i);
        EXPECT_EQ(out[i].second, std::to_string(100 + i));
    }
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreConformanceTest,
                         ::testing::Values("prism", "kvell", "rocksdb",
                                           "rocksdb-nvm", "matrixkv",
                                           "slmdb"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(YcsbDriverTest, LoadAndRunEachMix)
{
    auto store = makeStore("prism");
    WorkloadSpec spec = WorkloadSpec::forMix(Mix::kA, 5000, 4000);
    spec.value_bytes = 128;
    const RunResult load = loadPhase(*store, spec, 2);
    EXPECT_EQ(load.ops, 5000u);
    EXPECT_GT(load.throughput(), 0.0);

    for (const Mix mix : {Mix::kA, Mix::kB, Mix::kC, Mix::kD, Mix::kE,
                          Mix::kNutanix}) {
        WorkloadSpec run_spec = WorkloadSpec::forMix(mix, 5000, 2000);
        run_spec.value_bytes = 128;
        const RunResult r = runPhase(*store, run_spec, 2);
        EXPECT_GT(r.ops, 0u) << mixName(mix);
        EXPECT_GT(r.throughput(), 0.0) << mixName(mix);
    }
}

TEST(YcsbDriverTest, TimelineSampling)
{
    auto store = makeStore("prism");
    WorkloadSpec spec = WorkloadSpec::forMix(Mix::kC, 2000, 50000);
    spec.value_bytes = 64;
    loadPhase(*store, spec, 2);
    const RunResult r = runPhase(*store, spec, 2, /*timeline ms=*/20);
    EXPECT_GE(r.timeline.size(), 1u);
}

TEST(WorkloadGenTest, MixRatios)
{
    WorkloadSpec spec = WorkloadSpec::forMix(Mix::kA, 10000, 0);
    OpGenerator gen(spec, 1);
    int writes = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; i++) {
        if (gen.next().type == OpType::kUpdate)
            writes++;
    }
    EXPECT_NEAR(static_cast<double>(writes) / kN, 0.5, 0.02);
}

TEST(WorkloadGenTest, ZipfianIsSkewed)
{
    ZipfianGenerator zipf(1000, 0.99, 42);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; i++)
        counts[zipf.next()]++;
    // Rank 0 must dominate; the head must hold a large share.
    EXPECT_GT(counts[0], counts[10]);
    int head = 0;
    for (int i = 0; i < 10; i++)
        head += counts[i];
    EXPECT_GT(head, 100000 / 5);
}

TEST(WorkloadGenTest, ScanLengthAveragesOut)
{
    WorkloadSpec spec = WorkloadSpec::forMix(Mix::kE, 10000, 0);
    OpGenerator gen(spec, 3);
    uint64_t total = 0;
    int scans = 0;
    for (int i = 0; i < 20000; i++) {
        const Op op = gen.next();
        if (op.type == OpType::kScan) {
            total += op.scan_len;
            scans++;
        }
    }
    ASSERT_GT(scans, 0);
    EXPECT_NEAR(static_cast<double>(total) / scans, 50.0, 5.0);
}

}  // namespace
}  // namespace prism::ycsb
