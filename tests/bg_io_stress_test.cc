/**
 * @file
 * Stress and crash tests for the background I/O engine (§5.2): the
 * worker pool running concurrent per-PWB reclamation passes, pipelined
 * chunk writes, and per-Value-Storage GC.
 *
 *  - Stress: 8 writers on tiny PWBs force continuous parallel
 *    reclamation while forceGc() rounds overlap from the control
 *    thread; no acked value may be lost or torn.
 *  - Crash injection: crash images are captured while parallel
 *    reclamation is mid-flight (pmem tracking mode); recovery must see
 *    every acked value exactly once, never a torn or duplicated one.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"

namespace prism::core {
namespace {

constexpr uint64_t kNvmBytes = 96ull * 1024 * 1024;
constexpr uint64_t kSsdBytes = 128ull * 1024 * 1024;

PrismOptions
stressOptions()
{
    PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;  // tiny: reclamation is constant
    opts.svc_capacity_bytes = 2 * 1024 * 1024;
    opts.hsit_capacity = 64 * 1024;
    opts.chunk_bytes = 64 * 1024;
    opts.bg_workers = 4;
    opts.reclaim_pipeline_depth = 4;
    return opts;
}

struct Rig {
    PrismOptions opts;
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<PrismDb> db;

    explicit Rig(const PrismOptions &o, int num_ssds, bool tracking,
                 uint64_t ssd_bytes = kSsdBytes)
        : opts(o)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
        if (tracking)
            region->enableTracking();
        for (int i = 0; i < num_ssds; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                ssd_bytes, sim::kSamsung980ProProfile, /*timing=*/false));
        }
        db = PrismDb::open(opts, region, ssds);
    }
};

std::string
versionedValue(uint64_t key, uint64_t version)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "k%llu.v%llu.",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(version));
    std::string v(buf);
    v.resize(120, '#');
    return v;
}

int64_t
parseVersion(uint64_t key, const std::string &value)
{
    unsigned long long k = 0, ver = 0;
    if (std::sscanf(value.c_str(), "k%llu.v%llu.", &k, &ver) != 2)
        return -1;
    if (k != key || value != versionedValue(key, ver))
        return -1;
    return static_cast<int64_t>(ver);
}

TEST(BgIoStressTest, ParallelReclaimAndGcNeverLoseValues)
{
    // 8 writers over disjoint ranges; PWBs a fraction of the write
    // volume, so every writer's ring is reclaimed dozens of times by
    // the pool while forceGc() rounds overlap from this thread.
    // SSDs sized so the workload's garbage crosses the GC watermark
    // many times: ~16 MB of relocated records over 4 x 6 MB devices.
    PrismOptions opts = stressOptions();
    opts.vs_gc_watermark = 0.4;  // keep GC busy
    Rig rig(opts, 4, /*tracking=*/false, /*ssd_bytes=*/6ull * 1024 * 1024);

    constexpr int kWriters = 8;
    constexpr uint64_t kKeysPerWriter = 4000;
    constexpr int kRoundsPerWriter = 4;

    const auto before = rig.db->stats();
    std::vector<std::thread> writers;
    std::atomic<bool> stop_gc{false};
    std::thread gc_kicker([&] {
        while (!stop_gc.load(std::memory_order_acquire)) {
            rig.db->forceGc();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    for (int w = 0; w < kWriters; w++) {
        writers.emplace_back([&, w] {
            for (int r = 1; r <= kRoundsPerWriter; r++) {
                for (uint64_t i = 0; i < kKeysPerWriter; i++) {
                    const uint64_t key =
                        static_cast<uint64_t>(w) * kKeysPerWriter + i;
                    ASSERT_TRUE(
                        rig.db
                            ->put(key, versionedValue(
                                           key, static_cast<uint64_t>(r)))
                            .isOk());
                }
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop_gc.store(true, std::memory_order_release);
    gc_kicker.join();
    rig.db->flushAll();
    rig.db->forceGc();

    // Every key holds its final version — nothing lost, torn, or stale.
    constexpr uint64_t kTotal = kWriters * kKeysPerWriter;
    EXPECT_EQ(rig.db->size(), kTotal);
    std::string v;
    for (uint64_t key = 0; key < kTotal; key++) {
        ASSERT_TRUE(rig.db->get(key, &v).isOk()) << key;
        ASSERT_EQ(parseVersion(key, v), kRoundsPerWriter) << key;
    }

    // The engine demonstrably ran in parallel-dispatch mode.
    const auto after = rig.db->stats();
    EXPECT_GT(after.counterDelta(before, "prism.pwb.reclaim_dispatches"),
              0u);
    EXPECT_GT(after.counterDelta(before, "prism.bg.tasks"), 0u);
    EXPECT_GT(after.counterDelta(before, "prism.vs.gc_passes"), 0u);
    EXPECT_GT(rig.db->opStats().reclaim_passes.load(), 0u);
}

TEST(BgIoStressTest, CrashMidParallelReclaimRecoversExactlyOnce)
{
    // Writers keep every PWB under reclamation by the pool while crash
    // images are captured mid-flight. GC (chunk recycling) is disabled
    // so the NVM-then-SSD snapshot pair is consistent by append-only-
    // ness; parallel reclamation and pipelined chunk publishes remain
    // fully active. Recovery must surface every acked key exactly once
    // at a version within [acked-at-capture, last-attempted].
    PrismOptions opts = stressOptions();
    opts.vs_gc_watermark = 1.1;  // never recycle chunks
    Rig rig(opts, 4, /*tracking=*/true);

    constexpr int kWriters = 8;
    constexpr uint64_t kKeysPerWriter = 24;
    constexpr uint64_t kTotalKeys = kWriters * kKeysPerWriter;
    // With recycling off, every update consumes Value Storage forever;
    // bound the workload well under the 4 x 128 MB devices (~160 B per
    // record => this budget tops out near 128 MB) so a slow run (TSan,
    // sanitizers) cannot write the store full and abort.
    constexpr uint64_t kMaxPutsPerWriter = 100000;
    std::vector<std::atomic<uint64_t>> acked(kTotalKeys);
    std::vector<std::atomic<uint64_t>> attempted(kTotalKeys);
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
        writers.emplace_back([&, w] {
            Xorshift rng(static_cast<uint64_t>(w) + 7);
            uint64_t version = 0;
            uint64_t puts = 0;
            while (!stop.load(std::memory_order_acquire) &&
                   puts++ < kMaxPutsPerWriter) {
                const uint64_t key =
                    static_cast<uint64_t>(w) * kKeysPerWriter +
                    rng.nextUniform(kKeysPerWriter);
                version++;
                attempted[key].store(version, std::memory_order_release);
                ASSERT_TRUE(
                    rig.db->put(key, versionedValue(key, version)).isOk());
                acked[key].store(version, std::memory_order_release);
            }
        });
    }

    for (int round = 0; round < 4; round++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        std::vector<uint64_t> acked_floor(kTotalKeys);
        for (uint64_t k = 0; k < kTotalKeys; k++)
            acked_floor[k] = acked[k].load(std::memory_order_acquire);

        // NVM durable image first, SSD contents second: a chunk write
        // completing in between is unreferenced by the NVM image.
        std::vector<uint8_t> nvm_img;
        rig.region->snapshotDurableTo(nvm_img);
        std::vector<std::vector<uint8_t>> ssd_imgs(rig.ssds.size());
        for (size_t i = 0; i < rig.ssds.size(); i++)
            rig.ssds[i]->snapshotTo(ssd_imgs[i]);

        std::vector<uint64_t> attempted_ceil(kTotalKeys);
        for (uint64_t k = 0; k < kTotalKeys; k++)
            attempted_ceil[k] = attempted[k].load(std::memory_order_acquire);

        auto nvm2 = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        nvm2->loadImage(nvm_img.data(), nvm_img.size());
        auto region2 =
            std::make_shared<pmem::PmemRegion>(nvm2, /*format=*/false);
        std::vector<std::shared_ptr<sim::SsdDevice>> ssds2;
        for (const auto &img : ssd_imgs) {
            auto d = std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile, /*timing=*/false);
            d->loadFrom(img);
            ssds2.push_back(std::move(d));
        }
        auto recovered = PrismDb::recover(opts, region2, ssds2);

        // "Exactly once": a full scan surfaces each recovered key a
        // single time, and point reads agree with the scan.
        std::vector<std::pair<uint64_t, std::string>> scanned;
        ASSERT_TRUE(
            recovered->scan(0, kTotalKeys + 16, &scanned).isOk());
        std::map<uint64_t, int> seen;
        for (const auto &[k, val] : scanned)
            seen[k]++;
        for (const auto &[k, n] : seen)
            ASSERT_EQ(n, 1) << "key " << k << " recovered " << n
                            << " times (round " << round << ")";
        ASSERT_EQ(scanned.size(), recovered->size());

        for (uint64_t k = 0; k < kTotalKeys; k++) {
            std::string v;
            const Status st = recovered->get(k, &v);
            if (acked_floor[k] == 0) {
                if (st.isOk())
                    EXPECT_GE(parseVersion(k, v), 1) << "key " << k;
                continue;
            }
            ASSERT_TRUE(st.isOk())
                << "round " << round << " key " << k << " lost ("
                << st.toString() << ")";
            ASSERT_EQ(seen.count(k), 1u) << "key " << k;
            const int64_t ver = parseVersion(k, v);
            ASSERT_GE(ver, 1) << "torn value, key " << k;
            EXPECT_GE(static_cast<uint64_t>(ver), acked_floor[k])
                << "lost acked write, key " << k;
            EXPECT_LE(static_cast<uint64_t>(ver), attempted_ceil[k] + 1)
                << "fabricated version, key " << k;
        }
    }
    stop.store(true, std::memory_order_release);
    for (auto &t : writers)
        t.join();
}

}  // namespace
}  // namespace prism::core
