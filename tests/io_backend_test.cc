/**
 * @file
 * IoBackend conformance suite (src/io/io_backend.h).
 *
 * One parameterized fixture runs the same contract checks against every
 * backend kind — the simulator, the POSIX worker pool, and io_uring
 * (skipped where the kernel lacks it): batch round-trips identified
 * only by user_data, partial completion draining, malformed-batch
 * rejection, the synchronous helpers, injected io_error / torn_write
 * faults through the shared fault sites, dropout semantics, and the
 * "ssd.submit" trace span. Passing here is what lets ValueStorage treat
 * the three implementations as interchangeable (docs/IO_BACKENDS.md).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/fault.h"
#include "common/stats.h"
#include "common/trace.h"
#include "io/file_backend.h"
#include "io/io_backend.h"
#include "sim/device_profile.h"
#include "sim/ssd_device.h"

namespace prism::io {
namespace {

constexpr uint64_t kCapacity = 4ull * 1024 * 1024;

/** Scoped disarm: every test leaves the process-wide registry clean. */
struct FaultGuard {
    FaultGuard() { fault::FaultRegistry::global().disarmAll(); }
    ~FaultGuard() { fault::FaultRegistry::global().disarmAll(); }
};

uint64_t
ioErrorCount()
{
    return stats::StatsRegistry::global()
        .counter("sim.ssd.io_errors")
        .value();
}

/** Deterministic per-offset fill so reads verify placement, not luck. */
std::vector<uint8_t>
pattern(uint64_t offset, uint32_t length)
{
    std::vector<uint8_t> buf(length);
    for (uint32_t i = 0; i < length; i++)
        buf[i] = static_cast<uint8_t>((offset + i) * 131 + 7);
    return buf;
}

class IoBackendConformance
    : public ::testing::TestWithParam<const char *> {
  protected:
    void SetUp() override
    {
        kind_ = GetParam();
        if (kind_ == "uring" && !uringAvailable())
            GTEST_SKIP() << "io_uring unavailable on this kernel";
    }

    void TearDown() override
    {
        for (const std::string &p : paths_)
            ::unlink(p.c_str());
    }

    std::shared_ptr<IoBackend> make(uint64_t capacity = kCapacity)
    {
        if (kind_ == "sim")
            return std::make_shared<sim::SsdDevice>(
                capacity, sim::kSamsung980ProProfile,
                /*model_timing=*/false);
        // PRISM_IO_DIR (resolveBackendDir) lets CI point this at tmpfs.
        const std::string dir = resolveBackendDir("");
        makeBackendDir(dir);
        FileBackendOptions o;
        o.path = dir + "/conformance-" +
                 std::to_string(static_cast<long>(::getpid())) + "-" +
                 std::to_string(file_seq_++) + ".img";
        o.capacity_bytes = capacity;
        paths_.push_back(o.path);
        return createFileBackend(kind_ == "posix" ? IoBackendKind::kPosix
                                                  : IoBackendKind::kUring,
                                 o);
    }

    /** Reap exactly @p want completions (order-free), bounded waits. */
    std::vector<IoCompletion> reap(IoBackend &dev, size_t want)
    {
        std::vector<IoCompletion> out;
        for (int spins = 0; out.size() < want && spins < 20000; spins++)
            dev.waitCompletions(out, want - out.size(), 1000);
        EXPECT_EQ(out.size(), want) << "completions went missing";
        return out;
    }

    std::string kind_;
    std::vector<std::string> paths_;
    int file_seq_ = 0;
};

TEST_P(IoBackendConformance, BatchRoundTripByUserData)
{
    auto dev = make();
    EXPECT_EQ(dev->kind(), kind_);
    EXPECT_EQ(dev->capacity(), kCapacity);

    constexpr int kReqs = 8;
    constexpr uint32_t kLen = 8192;
    std::vector<std::vector<uint8_t>> data;
    std::vector<IoRequest> writes;
    for (int i = 0; i < kReqs; i++) {
        const uint64_t off = static_cast<uint64_t>(i) * 64 * 1024;
        data.push_back(pattern(off, kLen));
        IoRequest r;
        r.op = IoRequest::Op::kWrite;
        r.offset = off;
        r.length = kLen;
        r.src = data.back().data();
        r.user_data = 100 + static_cast<uint64_t>(i);
        writes.push_back(r);
    }
    ASSERT_TRUE(dev->submit(writes).isOk());

    // No ordering guarantee: only the user_data *set* must match.
    std::set<uint64_t> seen;
    for (const auto &c : reap(*dev, kReqs)) {
        EXPECT_TRUE(c.status.isOk()) << c.status.message();
        seen.insert(c.user_data);
    }
    for (int i = 0; i < kReqs; i++)
        EXPECT_TRUE(seen.count(100 + static_cast<uint64_t>(i)));
    EXPECT_TRUE(dev->isIdle());

    std::vector<std::vector<uint8_t>> got(kReqs,
                                          std::vector<uint8_t>(kLen));
    std::vector<IoRequest> reads;
    for (int i = 0; i < kReqs; i++) {
        IoRequest r;
        r.op = IoRequest::Op::kRead;
        r.offset = static_cast<uint64_t>(i) * 64 * 1024;
        r.length = kLen;
        r.buf = got[i].data();
        r.user_data = 200 + static_cast<uint64_t>(i);
        reads.push_back(r);
    }
    ASSERT_TRUE(dev->submit(reads).isOk());
    for (const auto &c : reap(*dev, kReqs))
        EXPECT_TRUE(c.status.isOk()) << c.status.message();
    for (int i = 0; i < kReqs; i++)
        EXPECT_EQ(got[i], data[i]) << "request " << i;
}

TEST_P(IoBackendConformance, PartialDrainAcrossPolls)
{
    auto dev = make();
    constexpr int kReqs = 6;
    std::vector<uint8_t> src(4096, 0x5a);
    std::vector<IoRequest> writes;
    for (int i = 0; i < kReqs; i++) {
        IoRequest r;
        r.op = IoRequest::Op::kWrite;
        r.offset = static_cast<uint64_t>(i) * 4096;
        r.length = 4096;
        r.src = src.data();
        r.user_data = 1 + static_cast<uint64_t>(i);
        writes.push_back(r);
    }
    ASSERT_TRUE(dev->submit(writes).isOk());

    // Drain two at a time: every completion arrives exactly once even
    // when the reaper's buffer is smaller than the in-flight batch.
    std::set<uint64_t> seen;
    for (int spins = 0; seen.size() < kReqs && spins < 20000; spins++) {
        std::vector<IoCompletion> out;
        const size_t n = dev->waitCompletions(out, 2, 1000);
        EXPECT_LE(n, 2u);
        EXPECT_EQ(n, out.size());
        for (const auto &c : out)
            EXPECT_TRUE(seen.insert(c.user_data).second)
                << "duplicate completion " << c.user_data;
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kReqs));
}

TEST_P(IoBackendConformance, RejectsMalformedBatchAtomically)
{
    auto dev = make();
    std::vector<uint8_t> buf(4096);

    IoRequest zero;
    zero.op = IoRequest::Op::kRead;
    zero.offset = 0;
    zero.length = 0;
    zero.buf = buf.data();
    EXPECT_FALSE(dev->submit(zero).isOk());

    IoRequest beyond;
    beyond.op = IoRequest::Op::kWrite;
    beyond.offset = kCapacity - 1024;
    beyond.length = 4096;
    beyond.src = buf.data();
    EXPECT_FALSE(dev->submit(beyond).isOk());

    // A rejected batch produced no completions for any request.
    std::vector<IoCompletion> out;
    EXPECT_EQ(dev->pollCompletions(out, 16), 0u);
    EXPECT_TRUE(dev->isIdle());
}

TEST_P(IoBackendConformance, SyncHelpersAndFlush)
{
    auto dev = make();
    const auto data = pattern(12288, 4096);
    ASSERT_TRUE(dev->writeSync(12288, data.data(), 4096).isOk());
    std::vector<uint8_t> got(4096);
    ASSERT_TRUE(dev->readSync(12288, got.data(), 4096).isOk());
    EXPECT_EQ(got, data);
    EXPECT_TRUE(dev->flush().isOk());
}

TEST_P(IoBackendConformance, InjectedIoErrorFailsTheCompletion)
{
    FaultGuard guard;
    auto dev = make();
    auto &freg = fault::FaultRegistry::global();
    fault::FaultSpec spec;
    spec.trigger = fault::Trigger::kEvery;
    spec.n = 1;
    freg.arm("ssd." + std::to_string(dev->deviceNumber()) + ".io_error",
             spec);

    const uint64_t errors_before = ioErrorCount();
    std::vector<uint8_t> src(4096, 0x17);
    IoRequest r;
    r.op = IoRequest::Op::kWrite;
    r.offset = 0;
    r.length = 4096;
    r.src = src.data();
    r.user_data = 42;
    ASSERT_TRUE(dev->submit(r).isOk()) << "faults fail completions, "
                                          "never the submit";
    const auto comps = reap(*dev, 1);
    EXPECT_EQ(comps[0].user_data, 42u);
    EXPECT_EQ(comps[0].status.code(), StatusCode::kIoError);
    EXPECT_GT(ioErrorCount(), errors_before);

    // The synchronous helpers consult the same site.
    std::vector<uint8_t> buf(4096);
    EXPECT_FALSE(dev->readSync(0, buf.data(), 4096).isOk());

    freg.disarmAll();
    EXPECT_TRUE(dev->readSync(0, buf.data(), 4096).isOk());
}

TEST_P(IoBackendConformance, TornWritePersistsOnlyThePrefix)
{
    FaultGuard guard;
    auto dev = make();
    auto &freg = fault::FaultRegistry::global();
    fault::FaultSpec spec;
    spec.trigger = fault::Trigger::kNth;
    spec.n = 1;
    spec.one_shot = true;
    freg.arm("ssd." + std::to_string(dev->deviceNumber()) + ".torn_write",
             spec);

    // Default tear: half the request reaches the medium, then error.
    const auto data = pattern(0, 8192);
    IoRequest r;
    r.op = IoRequest::Op::kWrite;
    r.offset = 0;
    r.length = 8192;
    r.src = data.data();
    r.user_data = 7;
    ASSERT_TRUE(dev->submit(r).isOk());
    const auto comps = reap(*dev, 1);
    EXPECT_EQ(comps[0].status.code(), StatusCode::kIoError);

    freg.disarmAll();
    std::vector<uint8_t> got(8192, 0xee);
    ASSERT_TRUE(dev->readSync(0, got.data(), 8192).isOk());
    EXPECT_TRUE(std::equal(got.begin(), got.begin() + 4096, data.begin()))
        << "torn prefix must have reached the medium";
    EXPECT_FALSE(std::equal(got.begin() + 4096, got.end(),
                            data.begin() + 4096))
        << "torn suffix must not have reached the medium";
}

TEST_P(IoBackendConformance, DropoutFailsWritesButNotReads)
{
    auto dev = make();
    const auto data = pattern(4096, 4096);
    ASSERT_TRUE(dev->writeSync(4096, data.data(), 4096).isOk());

    dev->setDropout(true);
    EXPECT_FALSE(dev->healthy());
    std::vector<uint8_t> src(4096, 1);
    IoRequest w;
    w.op = IoRequest::Op::kWrite;
    w.offset = 0;
    w.length = 4096;
    w.src = src.data();
    w.user_data = 1;
    ASSERT_TRUE(dev->submit(w).isOk());
    EXPECT_EQ(reap(*dev, 1)[0].status.code(), StatusCode::kIoError);

    // Media stays readable, like a drive whose write path died.
    std::vector<uint8_t> got(4096);
    ASSERT_TRUE(dev->readSync(4096, got.data(), 4096).isOk());
    EXPECT_EQ(got, data);

    dev->setDropout(false);
    EXPECT_TRUE(dev->healthy());
    ASSERT_TRUE(dev->submit(w).isOk());
    EXPECT_TRUE(reap(*dev, 1)[0].status.isOk());
}

TEST_P(IoBackendConformance, SubmitEmitsTraceSpan)
{
    auto &treg = trace::TraceRegistry::global();
    treg.clear();
    treg.setEnabled(true);
    const uint32_t submit_id = treg.internName("ssd.submit");

    auto dev = make();
    std::vector<uint8_t> src(4096, 0x33);
    IoRequest r;
    r.op = IoRequest::Op::kWrite;
    r.offset = 0;
    r.length = 4096;
    r.src = src.data();
    r.user_data = 9;
    ASSERT_TRUE(dev->submit(r).isOk());
    reap(*dev, 1);
    treg.setEnabled(false);

    bool found = false;
    for (const auto &[tid, events] : treg.snapshotAll())
        for (const trace::Event &e : events)
            found |= e.name_id == submit_id;
    EXPECT_TRUE(found) << "ssd.submit span missing from the trace";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IoBackendConformance,
                         ::testing::Values("sim", "posix", "uring"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

// ---------------------------------------------------------------------
// Selection plumbing (resolveBackendKind / resolveBackendDir).
// ---------------------------------------------------------------------

TEST(IoBackendSelection, ResolvesSelectorsAndEnvFallbacks)
{
    EXPECT_EQ(resolveBackendKind("sim"), IoBackendKind::kSim);
    EXPECT_EQ(resolveBackendKind("posix"), IoBackendKind::kPosix);
    EXPECT_EQ(resolveBackendKind("uring"), IoBackendKind::kUring);
    const IoBackendKind autokind = resolveBackendKind("auto");
    EXPECT_TRUE(autokind == IoBackendKind::kUring ||
                autokind == IoBackendKind::kPosix);

    ::unsetenv("PRISM_IO_BACKEND");
    EXPECT_EQ(resolveBackendKind(""), IoBackendKind::kSim);
    ::setenv("PRISM_IO_BACKEND", "posix", 1);
    EXPECT_EQ(resolveBackendKind(""), IoBackendKind::kPosix);
    ::unsetenv("PRISM_IO_BACKEND");

    EXPECT_EQ(resolveBackendDir("/x/y"), "/x/y");
    ::setenv("PRISM_IO_DIR", "/dev/shm/prism-env", 1);
    EXPECT_EQ(resolveBackendDir(""), "/dev/shm/prism-env");
    ::unsetenv("PRISM_IO_DIR");
    EXPECT_EQ(resolveBackendDir(""), "/tmp/prism-io");
}

TEST(IoBackendSelection, FactoryProducesDistinctDevices)
{
    const std::string dir =
        ::testing::TempDir() + "prism-io-factory-" +
        std::to_string(static_cast<long>(::getpid()));
    {
        auto devs = createFileBackendSet(IoBackendKind::kPosix, dir, 3,
                                         1 << 20);
        ASSERT_EQ(devs.size(), 3u);
        std::set<int> numbers;
        for (const auto &d : devs) {
            EXPECT_EQ(d->kind(), "posix");
            EXPECT_EQ(d->capacity(), 1u << 20);
            numbers.insert(d->deviceNumber());
        }
        EXPECT_EQ(numbers.size(), 3u) << "device numbers must be unique";
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace prism::io
