/**
 * @file
 * Property-based sweeps (parameterized gtest):
 *
 *  - Differential testing: PrismDb must agree with a reference
 *    std::map under long random operation sequences, across a matrix
 *    of configurations (chunk size, PWB size, SVC capacity, batching
 *    mode) so every placement/reclaim/eviction path gets exercised.
 *  - Crash matrix: durable linearizability must hold at random crash
 *    points under each configuration.
 *  - Trace determinism: generated traces replay identically.
 */
#include <gtest/gtest.h>

#include <map>

#include "common/rand.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"
#include "ycsb/trace.h"

namespace prism::core {
namespace {

struct ConfigParam {
    const char *name;
    uint64_t chunk_bytes;
    uint64_t pwb_bytes;
    uint64_t svc_bytes;
    ReadBatchMode mode;
    bool scan_reorg;
};

const ConfigParam kConfigs[] = {
    {"default", 64 * 1024, 1 << 20, 4 << 20,
     ReadBatchMode::kThreadCombining, true},
    {"tiny_pwb", 64 * 1024, 128 * 1024, 4 << 20,
     ReadBatchMode::kThreadCombining, true},
    {"tiny_chunks", 8 * 1024, 512 * 1024, 4 << 20,
     ReadBatchMode::kThreadCombining, true},
    {"no_cache", 64 * 1024, 512 * 1024, 0,
     ReadBatchMode::kThreadCombining, true},
    {"timeout_async", 64 * 1024, 512 * 1024, 1 << 20,
     ReadBatchMode::kTimeoutAsync, false},
    {"unbatched", 64 * 1024, 512 * 1024, 1 << 20, ReadBatchMode::kNone,
     false},
};

PrismOptions
optionsFor(const ConfigParam &p)
{
    PrismOptions opts;
    opts.chunk_bytes = p.chunk_bytes;
    opts.pwb_size_bytes = p.pwb_bytes;
    opts.svc_capacity_bytes = std::max<uint64_t>(p.svc_bytes, 1);
    opts.enable_svc = p.svc_bytes > 0;
    opts.enable_scan_reorg = p.scan_reorg;
    opts.read_batch_mode = p.mode;
    opts.hsit_capacity = 32 * 1024;
    return opts;
}

struct Rig {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<PrismDb> db;

    explicit Rig(const PrismOptions &opts, bool tracking = false)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            96ull << 20, sim::kOptaneDcpmmProfile, false);
        region = std::make_shared<pmem::PmemRegion>(nvm, true);
        if (tracking)
            region->enableTracking();
        for (int i = 0; i < 2; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                96ull << 20, sim::kSamsung980ProProfile, false));
        }
        db = PrismDb::open(opts, region, ssds);
    }
};

class ConfigMatrixTest : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(ConfigMatrixTest, AgreesWithReferenceModel)
{
    Rig rig(optionsFor(GetParam()));
    std::map<uint64_t, std::string> ref;
    Xorshift rng(41);

    auto random_value = [&](uint64_t key, uint64_t round) {
        std::string v = "k" + std::to_string(key) + "r" +
                        std::to_string(round);
        v.resize(32 + rng.nextUniform(400), 'p');
        return v;
    };

    for (uint64_t i = 0; i < 40000; i++) {
        const uint64_t key = rng.nextUniform(1200);
        const double p = rng.nextDouble();
        if (p < 0.45) {
            const std::string v = random_value(key, i);
            ASSERT_TRUE(rig.db->put(key, v).isOk());
            ref[key] = v;
        } else if (p < 0.55) {
            const Status st = rig.db->del(key);
            ASSERT_EQ(st.isOk(), ref.erase(key) > 0) << st.toString();
        } else if (p < 0.9) {
            std::string v;
            const Status st = rig.db->get(key, &v);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_TRUE(st.isNotFound()) << key << " " << st.toString();
            } else {
                ASSERT_TRUE(st.isOk()) << key << " " << st.toString();
                ASSERT_EQ(v, it->second) << key;
            }
        } else {
            std::vector<std::pair<uint64_t, std::string>> out;
            {
                const Status sst = rig.db->scan(key, 8, &out);
                ASSERT_TRUE(sst.isOk()) << sst.toString();
            }
            auto it = ref.lower_bound(key);
            for (const auto &[k, v] : out) {
                ASSERT_NE(it, ref.end());
                ASSERT_EQ(k, it->first);
                ASSERT_EQ(v, it->second);
                ++it;
            }
            // The scan may return fewer only at end of key space.
            if (out.size() < 8) {
                size_t remaining = 0;
                for (auto r = ref.lower_bound(key); r != ref.end(); ++r)
                    remaining++;
                ASSERT_EQ(out.size(), std::min<size_t>(remaining, 8));
            }
        }
        if (i % 9000 == 8999)
            rig.db->flushAll();  // exercise SSD residency
    }
    EXPECT_EQ(rig.db->size(), ref.size());
}

TEST_P(ConfigMatrixTest, DurableAtRandomCrashPoints)
{
    PrismOptions opts = optionsFor(GetParam());
    opts.vs_gc_watermark = 1.1;  // append-only SSDs: snapshots consistent
    Rig rig(opts, /*tracking=*/true);
    std::map<uint64_t, uint64_t> committed;  // key -> version
    Xorshift rng(17);

    for (int i = 0; i < 1200; i++) {
        const uint64_t key = rng.nextUniform(150);
        const uint64_t ver = static_cast<uint64_t>(i) + 1;
        std::string v = "v" + std::to_string(ver) + ".";
        v.resize(64, 'q');
        ASSERT_TRUE(rig.db->put(key, v).isOk());
        committed[key] = ver;

        if (i % 211 != 210)
            continue;
        std::vector<uint8_t> nvm_img;
        rig.region->snapshotDurableTo(nvm_img);
        std::vector<std::vector<uint8_t>> ssd_imgs(rig.ssds.size());
        for (size_t s = 0; s < rig.ssds.size(); s++)
            rig.ssds[s]->snapshotTo(ssd_imgs[s]);

        auto nvm2 = std::make_shared<sim::NvmDevice>(
            96ull << 20, sim::kOptaneDcpmmProfile, false);
        nvm2->loadImage(nvm_img.data(), nvm_img.size());
        auto region2 =
            std::make_shared<pmem::PmemRegion>(nvm2, false);
        std::vector<std::shared_ptr<sim::SsdDevice>> ssds2;
        for (const auto &img : ssd_imgs) {
            auto d = std::make_shared<sim::SsdDevice>(
                96ull << 20, sim::kSamsung980ProProfile, false);
            d->loadFrom(img);
            ssds2.push_back(std::move(d));
        }
        auto recovered = PrismDb::recover(opts, region2, ssds2);
        ASSERT_EQ(recovered->size(), committed.size()) << "op " << i;
        for (const auto &[k, ver] : committed) {
            std::string v;
            ASSERT_TRUE(recovered->get(k, &v).isOk())
                << "op " << i << " key " << k;
            ASSERT_EQ(v.substr(0, v.find('.') + 1),
                      "v" + std::to_string(ver) + ".");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigMatrixTest,
                         ::testing::ValuesIn(kConfigs),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(TraceTest, RoundtripPreservesOps)
{
    ycsb::WorkloadSpec spec =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kE, 5000, 3000);
    const std::string path = "/tmp/prism_trace_test.bin";
    ASSERT_EQ(ycsb::generateTrace(spec, 7, path), 3000u);

    ycsb::TraceReader reader(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.count(), 3000u);
    EXPECT_EQ(reader.valueBytes(), spec.value_bytes);

    // The trace must match a fresh generator with the same seed.
    ycsb::OpGenerator gen(spec, 7);
    ycsb::Op from_file{}, from_gen{};
    size_t n = 0;
    while (reader.next(&from_file)) {
        from_gen = gen.next();
        ASSERT_EQ(from_file.key, from_gen.key) << n;
        ASSERT_EQ(static_cast<int>(from_file.type),
                  static_cast<int>(from_gen.type));
        ASSERT_EQ(from_file.scan_len, from_gen.scan_len);
        n++;
    }
    EXPECT_EQ(n, 3000u);

    // reset() rewinds.
    reader.reset();
    ASSERT_TRUE(reader.next(&from_file));
}

TEST(TraceTest, ReplayProducesSameStateAsLiveRun)
{
    ycsb::WorkloadSpec spec =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kA, 2000, 4000);
    spec.value_bytes = 64;
    const std::string path = "/tmp/prism_trace_replay.bin";
    ASSERT_GT(ycsb::generateTrace(spec, 3, path), 0u);

    PrismOptions opts;
    opts.hsit_capacity = 32 * 1024;
    Rig a(opts), b(opts);

    // Live single-threaded run from the same generator seed.
    {
        ycsb::OpGenerator gen(spec, 3);
        std::string value;
        std::vector<std::pair<uint64_t, std::string>> scan_out;
        for (uint64_t i = 0; i < spec.operation_count; i++) {
            const ycsb::Op op = gen.next();
            switch (op.type) {
              case ycsb::OpType::kInsert:
              case ycsb::OpType::kUpdate:
                ycsb::OpGenerator::fillValue(op.key, spec.value_bytes,
                                             &value);
                a.db->put(op.key, value);
                break;
              case ycsb::OpType::kRead:
                a.db->get(op.key, &value);
                break;
              case ycsb::OpType::kScan:
                a.db->scan(op.key, op.scan_len, &scan_out);
                break;
            }
        }
    }
    struct Adapter : ycsb::KvStore {
        PrismDb *db;
        std::string name() const override { return "rig"; }
        Status put(uint64_t k, std::string_view v) override {
            return db->put(k, v);
        }
        Status get(uint64_t k, std::string *v) override {
            return db->get(k, v);
        }
        Status del(uint64_t k) override { return db->del(k); }
        Status
        scan(uint64_t k, size_t n,
             std::vector<std::pair<uint64_t, std::string>> *out) override
        {
            return db->scan(k, n, out);
        }
    } adapter;
    adapter.db = b.db.get();
    const ycsb::RunResult r = ycsb::replayTrace(adapter, path, 1);
    EXPECT_EQ(r.ops, spec.operation_count);

    // Both stores must end with identical contents.
    EXPECT_EQ(a.db->size(), b.db->size());
    std::string va, vb;
    for (uint64_t i = 0; i < 2000; i += 37) {
        const uint64_t key = ycsb::OpGenerator::keyOf(i);
        const Status sa = a.db->get(key, &va);
        const Status sb = b.db->get(key, &vb);
        ASSERT_EQ(sa.isOk(), sb.isOk()) << key;
        if (sa.isOk())
            ASSERT_EQ(va, vb);
    }
}

}  // namespace
}  // namespace prism::core
