/**
 * @file
 * Tests for the YCSB driver plumbing (load/run phases, latency capture,
 * timeline sampling) and the PrismDb::multiGet batched-read API.
 */
#include <gtest/gtest.h>

#include "core/prism_db.h"
#include "sim/device_profile.h"
#include "ycsb/driver.h"
#include "ycsb/stores.h"

namespace prism {
namespace {

ycsb::FixtureOptions
tinyFixture()
{
    ycsb::FixtureOptions fx;
    fx.num_ssds = 2;
    fx.ssd_bytes = 256ull << 20;
    fx.dataset_bytes = 8ull << 20;
    fx.model_timing = false;
    fx.expected_threads = 2;
    return fx;
}

TEST(DriverTest, LoadPhaseInsertsExactly)
{
    ycsb::PrismStore store(tinyFixture(), core::PrismOptions{});
    ycsb::WorkloadSpec spec =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kLoad, 4321, 0);
    spec.value_bytes = 64;
    const ycsb::RunResult r = ycsb::loadPhase(store, spec, 3);
    EXPECT_EQ(r.ops, 4321u);
    EXPECT_EQ(store.db().size(), 4321u);
    EXPECT_EQ(r.overall.count(), 4321u);
    EXPECT_EQ(r.writes.count(), 4321u);
    EXPECT_EQ(r.reads.count(), 0u);
    EXPECT_GT(r.throughput(), 0.0);
}

TEST(DriverTest, RunPhaseSplitsLatencyByOpType)
{
    ycsb::PrismStore store(tinyFixture(), core::PrismOptions{});
    ycsb::WorkloadSpec spec =
        ycsb::WorkloadSpec::forMix(ycsb::Mix::kA, 2000, 6000);
    spec.value_bytes = 64;
    ycsb::loadPhase(store, spec, 2);
    const ycsb::RunResult r = ycsb::runPhase(store, spec, 2);
    EXPECT_EQ(r.ops, 6000u);
    EXPECT_EQ(r.reads.count() + r.writes.count() + r.scans.count(),
              r.overall.count());
    // A is a 50/50 mix.
    EXPECT_NEAR(static_cast<double>(r.writes.count()) /
                    static_cast<double>(r.ops),
                0.5, 0.05);
    EXPECT_EQ(r.scans.count(), 0u);
}

TEST(DriverTest, ValuesAreDeterministicPerKey)
{
    std::string a, b;
    ycsb::OpGenerator::fillValue(1234, 256, &a);
    ycsb::OpGenerator::fillValue(1234, 256, &b);
    EXPECT_EQ(a, b);
    ycsb::OpGenerator::fillValue(1235, 256, &b);
    EXPECT_NE(a, b);
    EXPECT_EQ(a.size(), 256u);
}

TEST(MultiGetTest, MixedHitMissBatch)
{
    ycsb::PrismStore store(tinyFixture(), core::PrismOptions{});
    auto &db = store.db();
    for (uint64_t k = 0; k < 3000; k++)
        ASSERT_TRUE(db.put(k * 2, "v" + std::to_string(k)).isOk());
    db.flushAll();  // spill to Value Storage

    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 500; i++)
        keys.push_back(i * 3);  // mixes present (even) and absent (odd)
    std::vector<std::optional<std::string>> out;
    ASSERT_TRUE(db.multiGet(keys, &out).isOk());
    ASSERT_EQ(out.size(), keys.size());
    for (size_t i = 0; i < keys.size(); i++) {
        if (keys[i] % 2 == 0 && keys[i] < 6000) {
            ASSERT_TRUE(out[i].has_value()) << keys[i];
            EXPECT_EQ(*out[i], "v" + std::to_string(keys[i] / 2));
        } else {
            EXPECT_FALSE(out[i].has_value()) << keys[i];
        }
    }
}

TEST(MultiGetTest, AgreesWithSingleGets)
{
    ycsb::PrismStore store(tinyFixture(), core::PrismOptions{});
    auto &db = store.db();
    Xorshift rng(5);
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(db.put(hash64(k), std::to_string(k)).isOk());
    db.flushAll();

    std::vector<uint64_t> keys;
    for (int i = 0; i < 300; i++)
        keys.push_back(hash64(rng.nextUniform(2500)));
    std::vector<std::optional<std::string>> batched;
    ASSERT_TRUE(db.multiGet(keys, &batched).isOk());
    for (size_t i = 0; i < keys.size(); i++) {
        std::string v;
        const Status st = db.get(keys[i], &v);
        ASSERT_EQ(st.isOk(), batched[i].has_value()) << keys[i];
        if (st.isOk())
            ASSERT_EQ(v, *batched[i]);
    }
}

TEST(MultiGetTest, ServesFromAllTiers)
{
    ycsb::FixtureOptions fx = tinyFixture();
    core::PrismOptions opts;
    ycsb::PrismStore store(fx, opts);
    auto &db = store.db();
    // Tier setup: some values on SSD (flushed), some in PWB (fresh),
    // some cached in SVC (read twice).
    for (uint64_t k = 0; k < 1000; k++)
        ASSERT_TRUE(db.put(k, "ssd" + std::to_string(k)).isOk());
    db.flushAll();
    std::string warm;
    ASSERT_TRUE(db.get(10, &warm).isOk());  // admit to SVC
    ASSERT_TRUE(db.get(10, &warm).isOk());
    for (uint64_t k = 1000; k < 1100; k++)
        ASSERT_TRUE(db.put(k, "pwb" + std::to_string(k)).isOk());

    std::vector<uint64_t> keys = {10, 500, 1050, 999999};
    std::vector<std::optional<std::string>> out;
    ASSERT_TRUE(db.multiGet(keys, &out).isOk());
    EXPECT_EQ(*out[0], "ssd10");
    EXPECT_EQ(*out[1], "ssd500");
    EXPECT_EQ(*out[2], "pwb1050");
    EXPECT_FALSE(out[3].has_value());
}

}  // namespace
}  // namespace prism
