/**
 * @file
 * Fault-injection framework tests (docs/FAULTS.md).
 *
 * Covers the registry itself (deterministic replay under a seed, every
 * trigger type, the schedule parser) and the wired failure surfaces:
 * injected SSD read errors are retried transparently, injected chunk
 * write failures are retried/re-queued without losing acked data, an
 * SSD dropout mid-run degrades the store gracefully, and a crash at an
 * armed pmem site recovers to a consistent image.
 */
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/fault.h"
#include "common/rand.h"
#include "common/stats.h"
#include "core/chunk_writer.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"

namespace prism::core {
namespace {

using fault::FaultRegistry;
using fault::FaultSpec;
using fault::Trigger;

uint64_t
counterValue(const char *name)
{
    return stats::StatsRegistry::global().counter(name).value();
}

/** Scoped disarm: every test leaves the process-wide registry clean. */
struct FaultGuard {
    FaultGuard() { FaultRegistry::global().disarmAll(); }
    ~FaultGuard() { FaultRegistry::global().disarmAll(); }
};

TEST(FaultRegistry, SameSeedReplaysSameFirePattern)
{
    FaultGuard guard;
    auto &reg = FaultRegistry::global();
    FaultSpec spec;
    spec.trigger = Trigger::kProbability;
    spec.probability = 0.3;

    const auto collect = [&](uint64_t seed) {
        reg.setSeed(seed);
        reg.arm("test.prob", spec);
        const uint32_t id = reg.siteId("test.prob");
        std::vector<bool> fired;
        for (int i = 0; i < 300; i++)
            fired.push_back(reg.shouldFire(id));
        return fired;
    };

    const auto a = collect(1234);
    const auto b = collect(1234);
    const auto c = collect(999);
    EXPECT_EQ(a, b) << "same seed must replay the same schedule";
    EXPECT_NE(a, c) << "different seed should perturb the schedule";
    const size_t fires =
        static_cast<size_t>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fires, 40u);
    EXPECT_LT(fires, 150u);
}

TEST(FaultRegistry, TriggerTypes)
{
    FaultGuard guard;
    auto &reg = FaultRegistry::global();
    reg.setSeed(7);

    FaultSpec nth;
    nth.trigger = Trigger::kNth;
    nth.n = 3;
    reg.arm("test.nth", nth);
    const uint32_t nid = reg.siteId("test.nth");
    std::vector<bool> pattern;
    for (int i = 0; i < 6; i++)
        pattern.push_back(reg.shouldFire(nid));
    EXPECT_EQ(pattern,
              (std::vector<bool>{false, false, true, false, false, false}));

    FaultSpec every;
    every.trigger = Trigger::kEvery;
    every.n = 2;
    reg.arm("test.every", every);
    const uint32_t eid = reg.siteId("test.every");
    pattern.clear();
    for (int i = 0; i < 6; i++)
        pattern.push_back(reg.shouldFire(eid));
    EXPECT_EQ(pattern,
              (std::vector<bool>{false, true, false, true, false, true}));

    // once fires on the first hit and disarms itself.
    FaultSpec once;
    once.trigger = Trigger::kOnce;
    once.payload = 777;
    reg.arm("test.once", once);
    const uint32_t oid = reg.siteId("test.once");
    uint64_t payload = 0;
    EXPECT_TRUE(reg.shouldFire(oid, &payload));
    EXPECT_EQ(payload, 777u);
    EXPECT_FALSE(reg.shouldFire(oid));

    // oneshot modifier disarms a probabilistic site after its 1st fire.
    FaultSpec shot;
    shot.trigger = Trigger::kProbability;
    shot.probability = 1.0;
    shot.one_shot = true;
    reg.arm("test.oneshot", shot);
    const uint32_t sid = reg.siteId("test.oneshot");
    EXPECT_TRUE(reg.shouldFire(sid));
    EXPECT_FALSE(reg.shouldFire(sid));
}

TEST(FaultRegistry, ParserAcceptsTheDocumentedSyntax)
{
    FaultGuard guard;
    auto &reg = FaultRegistry::global();
    std::string err;
    EXPECT_TRUE(reg.armFromString("a.site=prob:0.25", &err)) << err;
    EXPECT_TRUE(reg.armFromString("b.site=nth:7,payload:123", &err)) << err;
    EXPECT_TRUE(reg.armFromString("c.site=every:2,oneshot", &err)) << err;
    EXPECT_TRUE(reg.armSchedule("d.site=once;e.site=prob:1", &err)) << err;

    const std::string schedule = reg.scheduleString();
    EXPECT_NE(schedule.find("a.site=prob:0.25"), std::string::npos);
    EXPECT_NE(schedule.find("b.site=nth:7,payload:123"), std::string::npos);

    // A repro schedule string must arm cleanly when fed back in.
    reg.disarmAll();
    EXPECT_TRUE(reg.armSchedule(schedule, &err)) << err;

    EXPECT_FALSE(reg.armFromString("garbage", &err));
    EXPECT_FALSE(reg.armFromString("x=wat:3", &err));
    EXPECT_FALSE(reg.armFromString("x=prob:1.5", &err));
    EXPECT_FALSE(reg.armFromString("x=nth:0", &err));
    EXPECT_FALSE(reg.armFromString("x=payload:7", &err)) << "no trigger";
}

TEST(FaultRegistry, OnFireCallbackRunsWithPayload)
{
    FaultGuard guard;
    auto &reg = FaultRegistry::global();
    uint64_t seen = 0;
    int calls = 0;
    reg.onFire("test.cb", [&](uint64_t p) {
        seen = p;
        calls++;
    });
    FaultSpec spec;
    spec.trigger = Trigger::kNth;
    spec.n = 2;
    spec.payload = 42;
    reg.arm("test.cb", spec);
    const uint32_t id = reg.siteId("test.cb");
    EXPECT_FALSE(reg.shouldFire(id));
    EXPECT_TRUE(reg.shouldFire(id));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(seen, 42u);
}

// ---------------------------------------------------------------------------
// Wired failure surfaces.

constexpr uint64_t kNvmBytes = 96ull * 1024 * 1024;
constexpr uint64_t kSsdBytes = 128ull * 1024 * 1024;

PrismOptions
smallOptions()
{
    PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;
    opts.svc_capacity_bytes = 0;  // force SSD reads
    opts.enable_svc = false;
    opts.hsit_capacity = 32 * 1024;
    opts.chunk_bytes = 64 * 1024;
    return opts;
}

struct Rig {
    PrismOptions opts;
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<PrismDb> db;

    explicit Rig(const PrismOptions &o, int num_ssds) : opts(o)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
        for (int i = 0; i < num_ssds; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile, /*timing=*/false));
        }
        db = PrismDb::open(opts, region, ssds);
    }
};

std::string
value(uint64_t key, uint64_t version)
{
    std::string v = "v" + std::to_string(key) + "." +
                    std::to_string(version) + ".";
    v.resize(64, 'x');
    return v;
}

TEST(FaultWiring, InjectedReadErrorsAreRetriedTransparently)
{
    FaultGuard guard;
    Rig rig(smallOptions(), 1);
    constexpr uint64_t kKeys = 400;
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(rig.db->put(k, value(k, 1)).isOk());
    rig.db->flushAll();  // values now live on SSD

    // Every 3rd request to this device errors; single-threaded reads,
    // so the retried submission (the next hit) always succeeds.
    const std::string site =
        "ssd." + std::to_string(rig.ssds[0]->deviceNumber()) + ".io_error";
    const uint64_t retries_before = counterValue("prism.vs.retries");
    FaultSpec every3;
    every3.trigger = Trigger::kEvery;
    every3.n = 3;
    FaultRegistry::global().arm(site, every3);

    std::string v;
    for (uint64_t k = 0; k < kKeys; k += 7) {
        ASSERT_TRUE(rig.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, value(k, 1)) << k;
    }
    // multiGet and scan take the batched paths.
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 64; k++)
        keys.push_back(k);
    std::vector<std::optional<std::string>> out;
    ASSERT_TRUE(rig.db->multiGet(keys, &out).isOk());
    for (uint64_t k = 0; k < 64; k++) {
        ASSERT_TRUE(out[k].has_value()) << k;
        EXPECT_EQ(*out[k], value(k, 1)) << k;
    }
    std::vector<std::pair<uint64_t, std::string>> scanned;
    ASSERT_TRUE(rig.db->scan(0, 64, &scanned).isOk());
    ASSERT_EQ(scanned.size(), 64u);

    FaultRegistry::global().disarmAll();
    EXPECT_GT(counterValue("prism.vs.retries"), retries_before)
        << "faults were injected, so retries must have engaged";
}

TEST(FaultWiring, TransientChunkWriteFaultIsRetried)
{
    FaultGuard guard;
    const uint64_t retries_before = counterValue("prism.pwb.retries");
    Rig rig(smallOptions(), 1);
    // First chunk submission fails once; its in-place retry succeeds.
    FaultSpec nth1;
    nth1.trigger = Trigger::kNth;
    nth1.n = 1;
    FaultRegistry::global().arm("pwb.chunk_write", nth1);

    constexpr uint64_t kKeys = 1000;
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(rig.db->put(k, value(k, 2)).isOk());
    rig.db->flushAll();
    FaultRegistry::global().disarmAll();

    EXPECT_GT(counterValue("prism.pwb.retries"), retries_before);
    std::string v;
    for (uint64_t k = 0; k < kKeys; k += 11) {
        ASSERT_TRUE(rig.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, value(k, 2)) << k;
    }
}

TEST(FaultWiring, PermanentChunkWriteFailureIsReportedAndRecycled)
{
    FaultGuard guard;
    // Drive a ChunkWriter directly with an always-failing submit: after
    // the retry budget the record range is reported failed, no callback
    // fires, and the chunk goes back to the free list.
    auto dev = std::make_shared<sim::SsdDevice>(
        kSsdBytes, sim::kSamsung980ProProfile, /*timing=*/false);
    PrismOptions opts = smallOptions();
    EpochManager epochs;
    ValueStorage vs(0, dev, opts, epochs);
    const size_t free_before = vs.freeChunks();

    FaultSpec always;
    always.trigger = Trigger::kProbability;
    always.probability = 1.0;
    FaultRegistry::global().arm("pwb.chunk_write", always);

    int callbacks = 0;
    {
        ChunkWriter writer({&vs}, /*seed=*/1, /*max_inflight=*/0);
        writer.setChunkCallback(
            [&](ValueStorage *, int64_t, size_t, size_t) { callbacks++; });
        std::string payload(64, 'z');
        const ValueAddr a =
            writer.add(1, 99, payload.data(),
                       static_cast<uint32_t>(payload.size()));
        ASSERT_FALSE(a.isNull());
        ASSERT_TRUE(writer.finish().isOk());
        EXPECT_TRUE(writer.recordFailed(0));
        EXPECT_EQ(writer.firstFailedRecord(), 0u);
        EXPECT_EQ(callbacks, 0);
    }
    FaultRegistry::global().disarmAll();
    epochs.drain();  // apply the deferred chunk recycle
    EXPECT_EQ(vs.freeChunks(), free_before);
}

TEST(FaultWiring, SsdDropoutMidRunDegradesGracefully)
{
    FaultGuard guard;
    Rig rig(smallOptions(), 2);
    constexpr uint64_t kKeys = 1500;
    std::map<uint64_t, uint64_t> expected;
    for (uint64_t k = 0; k < kKeys / 2; k++) {
        ASSERT_TRUE(rig.db->put(k, value(k, 1)).isOk());
        expected[k] = 1;
    }
    // One SSD drops out mid-run; writes must drain to the healthy one.
    rig.ssds[1]->setDropout(true);
    for (uint64_t k = kKeys / 2; k < kKeys; k++) {
        ASSERT_TRUE(rig.db->put(k, value(k, 1)).isOk());
        expected[k] = 1;
    }
    rig.db->flushAll();

    const ErrorBudget budget = rig.db->errorBudget();
    EXPECT_TRUE(budget.degraded());
    EXPECT_EQ(budget.degraded_devices, 1u);

    // No lost acked writes: every key readable (reads still work on the
    // dropped-out device; fresh chunk writes went to the healthy one).
    std::string v;
    for (const auto &[k, ver] : expected) {
        ASSERT_TRUE(rig.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, value(k, ver)) << k;
    }
    EXPECT_EQ(rig.db->size(), expected.size());

    // forceGc must not wedge on the sick device.
    rig.db->forceGc();

    // Device returns; the store leaves the degraded state.
    rig.ssds[1]->setDropout(false);
    EXPECT_FALSE(rig.db->errorBudget().degraded());
    ASSERT_TRUE(rig.db->put(1, value(1, 2)).isOk());
    ASSERT_TRUE(rig.db->get(1, &v).isOk());
    EXPECT_EQ(v, value(1, 2));
}

TEST(FaultWiring, BgTaskFaultRequeuesWithoutLosingWork)
{
    FaultGuard guard;
    const uint64_t faults_before = counterValue("prism.bg.task_faults");
    Rig rig(smallOptions(), 1);
    // The very first bg task is faulted and requeued; it must still run
    // on its second trip through the queue. 6000 puts push ~0.5MB
    // through the 256K ring, guaranteeing reclaim tasks get submitted.
    FaultSpec first;
    first.trigger = Trigger::kNth;
    first.n = 1;
    FaultRegistry::global().arm("bg.task", first);
    constexpr uint64_t kKeys = 6000;
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(rig.db->put(k, value(k, 3)).isOk());
    rig.db->flushAll();
    FaultRegistry::global().disarmAll();
    EXPECT_GT(counterValue("prism.bg.task_faults"), faults_before);
    std::string v;
    for (uint64_t k = 0; k < kKeys; k += 37) {
        ASSERT_TRUE(rig.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, value(k, 3)) << k;
    }
}

TEST(FaultWiring, OptionsFaultSpecArmsAtOpen)
{
    FaultGuard guard;
    PrismOptions opts = smallOptions();
    opts.fault_spec = "test.from_options=nth:5";
    Rig rig(opts, 1);
    const auto sites = FaultRegistry::global().sites();
    bool found = false;
    for (const auto &s : sites) {
        if (s.name == "test.from_options")
            found = s.armed && s.spec.trigger == Trigger::kNth &&
                    s.spec.n == 5;
    }
    EXPECT_TRUE(found);
}

TEST(FaultTorture, CrashAtArmedPmemSiteRecoversConsistently)
{
    FaultGuard guard;
    // Mixed workload with a crash captured the instant an armed pmem
    // flush fires mid-run; the recovered store must satisfy the full
    // invariants (no lost acked writes, no fabricated or torn values,
    // size/get/scan agreement).
    PrismOptions opts = smallOptions();
    opts.vs_gc_watermark = 1.1;  // append-only SSDs: mid-run capture safe
    auto nvm = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    auto region = std::make_shared<pmem::PmemRegion>(nvm, true);
    region->enableTracking();
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    for (int i = 0; i < 2; i++) {
        ssds.push_back(std::make_shared<sim::SsdDevice>(
            kSsdBytes, sim::kSamsung980ProProfile, false));
    }
    auto db = PrismDb::open(opts, region, ssds);

    constexpr uint64_t kKeys = 256;
    std::vector<std::atomic<uint64_t>> acked(kKeys);
    std::vector<std::atomic<uint64_t>> attempted(kKeys);

    auto &freg = FaultRegistry::global();
    freg.setSeed(42);
    std::vector<uint8_t> nvm_img;
    std::vector<std::vector<uint8_t>> ssd_imgs(ssds.size());
    std::vector<uint64_t> acked_floor(kKeys, 0);
    std::atomic<bool> captured{false};
    freg.onFire("pmem.flush", [&](uint64_t) {
        if (captured.exchange(true))
            return;
        // Capture-and-continue crash: NVM durable image first, then the
        // (append-only) SSDs — any SSD write landing after the NVM image
        // is unreferenced by it.
        for (uint64_t k = 0; k < kKeys; k++)
            acked_floor[k] = acked[k].load(std::memory_order_acquire);
        region->snapshotDurableTo(nvm_img);
        for (size_t i = 0; i < ssds.size(); i++)
            ssds[i]->snapshotTo(ssd_imgs[i]);
    });
    FaultSpec crash_at;
    crash_at.trigger = Trigger::kNth;
    crash_at.n = 4000;  // mid-run: well past open, well before the end
    freg.arm("pmem.flush", crash_at);

    Xorshift rng(42);
    uint64_t version = 0;
    for (int i = 0; i < 6000; i++) {
        const uint64_t key = rng.nextUniform(kKeys);
        version++;
        attempted[key].store(version, std::memory_order_release);
        ASSERT_TRUE(db->put(key, value(key, version)).isOk());
        acked[key].store(version, std::memory_order_release);
    }
    freg.disarmAll();
    ASSERT_TRUE(captured.load()) << "crash site never fired";

    // Rebuild devices from the crash image and recover.
    auto nvm2 = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    nvm2->loadImage(nvm_img.data(), nvm_img.size());
    auto region2 = std::make_shared<pmem::PmemRegion>(nvm2, false);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds2;
    for (const auto &img : ssd_imgs) {
        auto d = std::make_shared<sim::SsdDevice>(
            kSsdBytes, sim::kSamsung980ProProfile, false);
        d->loadFrom(img);
        ssds2.push_back(std::move(d));
    }
    auto recovered = PrismDb::recover(opts, region2, ssds2);

    size_t present = 0;
    for (uint64_t k = 0; k < kKeys; k++) {
        std::string v;
        const Status st = recovered->get(k, &v);
        if (st.isOk())
            present++;
        if (acked_floor[k] == 0) {
            continue;  // never acked before the crash: may be absent
        }
        ASSERT_TRUE(st.isOk()) << "lost acked key " << k;
        // The value must be some well-formed version this key was
        // actually given, at least as new as the pre-crash ack.
        unsigned long long vk = 0, ver = 0;
        ASSERT_EQ(std::sscanf(v.c_str(), "v%llu.%llu.", &vk, &ver), 2)
            << "torn value for key " << k;
        ASSERT_EQ(vk, k);
        EXPECT_EQ(v, value(k, ver)) << "torn value for key " << k;
        EXPECT_GE(ver, acked_floor[k]) << "stale value for key " << k;
        EXPECT_LE(ver, attempted[k].load()) << "fabricated version";
    }
    EXPECT_EQ(recovered->size(), present) << "size()/get() disagree";

    // scan() must agree with get() over the whole key space.
    std::vector<std::pair<uint64_t, std::string>> scanned;
    ASSERT_TRUE(recovered->scan(0, kKeys, &scanned).isOk());
    EXPECT_EQ(scanned.size(), present);
    for (const auto &[k, sv] : scanned) {
        std::string gv;
        ASSERT_TRUE(recovered->get(k, &gv).isOk()) << k;
        EXPECT_EQ(sv, gv) << k;
    }
}

}  // namespace
}  // namespace prism::core
