/**
 * @file
 * Unit tests for the common substrate: status, RNG distributions,
 * histogram, token bucket, locks, dense thread ids and epoch-based
 * reclamation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/epoch.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/thread_util.h"
#include "common/token_bucket.h"
#include "common/waiter.h"

namespace prism {
namespace {

TEST(StatusTest, CodesAndMessages)
{
    EXPECT_TRUE(Status::ok().isOk());
    EXPECT_TRUE(Status::notFound().isNotFound());
    EXPECT_FALSE(Status::ioError("disk").isOk());
    EXPECT_EQ(Status::corruption("bad").toString(), "CORRUPTION: bad");
    EXPECT_EQ(Status::ok().toString(), "OK");
    EXPECT_EQ(Status::aborted().code(), StatusCode::kAborted);
}

TEST(XorshiftTest, DeterministicAndUniform)
{
    Xorshift a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());

    Xorshift rng(1);
    std::vector<int> buckets(10, 0);
    constexpr int kN = 100000;
    for (int i = 0; i < kN; i++)
        buckets[rng.nextUniform(10)]++;
    for (const int c : buckets)
        EXPECT_NEAR(c, kN / 10, kN / 50);
}

TEST(XorshiftTest, NextDoubleInUnitInterval)
{
    Xorshift rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfianTest, RankPopularityOrder)
{
    ZipfianGenerator zipf(100, 0.99, 9);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 200000; i++)
        counts[zipf.next()]++;
    // Popularity must decay with rank (allow noise at the tail).
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[5]);
    EXPECT_GT(counts[5], counts[50]);
    // Head mass sanity: rank 0 of Zipf(0.99, 100) holds ~19% of mass.
    EXPECT_NEAR(static_cast<double>(counts[0]) / 200000, 0.19, 0.03);
}

TEST(ZipfianTest, ScrambledCoversSpace)
{
    ScrambledZipfian zipf(1000, 0.99, 4);
    std::set<uint64_t> seen;
    for (int i = 0; i < 20000; i++) {
        const uint64_t v = zipf.next();
        ASSERT_LT(v, 1000u);
        seen.insert(v);
    }
    // Hot ranks are hashed across the space, so coverage is broad.
    EXPECT_GT(seen.size(), 300u);
}

TEST(LatestTest, PrefersRecentItems)
{
    LatestGenerator latest(1000, 0.99, 5);
    uint64_t newer = 0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; i++) {
        if (latest.next() >= 900)
            newer++;
    }
    // The newest 10% of items should receive the bulk of accesses.
    EXPECT_GT(newer, static_cast<uint64_t>(kN) / 2);
}

TEST(HistogramTest, PercentilesOnKnownData)
{
    Histogram h;
    for (uint64_t v = 1; v <= 1000; v++)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.mean(), 500.5, 0.01);
    // Log bucketing gives < ~4% relative error.
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 500, 25);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990, 40);
    EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(HistogramTest, MergeMatchesCombinedRecording)
{
    Histogram a, b, combined;
    Xorshift rng(6);
    for (int i = 0; i < 5000; i++) {
        const uint64_t v = rng.nextUniform(1 << 20);
        (i % 2 ? a : b).record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_EQ(a.percentile(0.9), combined.percentile(0.9));
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.record(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(TokenBucketTest, UnderloadIsFree)
{
    TokenBucket tb(1e9, 1 << 20);  // 1 GB/s, 1 MB burst
    EXPECT_EQ(tb.acquire(1024), 0u);
    EXPECT_EQ(tb.acquire(1024), 0u);
}

TEST(TokenBucketTest, OverloadProducesDelay)
{
    TokenBucket tb(1e9, 64 * 1024);
    // Demand 10 MB instantly at 1 GB/s: ~10 ms of repayment.
    uint64_t max_delay = 0;
    for (int i = 0; i < 10; i++)
        max_delay = std::max(max_delay, tb.acquire(1 << 20));
    EXPECT_GT(max_delay, 5 * 1000 * 1000u);
    EXPECT_LT(max_delay, 50 * 1000 * 1000u);
}

TEST(SpinLockTest, MutualExclusion)
{
    SpinLock mu;
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&] {
            for (int i = 0; i < 20000; i++) {
                std::lock_guard<SpinLock> lock(mu);
                counter++;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, 80000);
}

TEST(TicketLockTest, MutualExclusion)
{
    TicketLock mu;
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&] {
            for (int i = 0; i < 20000; i++) {
                std::lock_guard<TicketLock> lock(mu);
                counter++;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, 80000);
}

TEST(ThreadIdTest, DenseAndRecycled)
{
    const int mine = ThreadId::self();
    EXPECT_EQ(mine, ThreadId::self());  // stable within a thread

    int other = -1;
    std::thread t([&] { other = ThreadId::self(); });
    t.join();
    EXPECT_NE(other, -1);
    EXPECT_NE(other, mine);

    // The exited thread's id must be reusable: spawn many short-lived
    // threads; ids must not grow without bound.
    std::set<int> ids;
    for (int i = 0; i < 600; i++) {
        std::thread s([&] {
            const int id = ThreadId::self();
            EXPECT_LT(id, ThreadId::kMaxThreads);
            ids.insert(id);
        });
        s.join();
    }
    EXPECT_LT(ids.size(), 16u);  // heavy reuse expected

    // The free list is LIFO, so strictly sequential spawn/join reuses
    // the *same* id: per-id state (a PWB slot, a trace ring, a latency
    // shard) is adopted by the successor thread. Anything indexed by
    // ThreadId must therefore tolerate a fresh thread inheriting a
    // predecessor's non-empty state — see docs/OBSERVABILITY.md.
    int first = -1, second = -1;
    std::thread a([&] { first = ThreadId::self(); });
    a.join();
    std::thread b([&] { second = ThreadId::self(); });
    b.join();
    EXPECT_EQ(first, second);
}

TEST(EpochTest, RetireeFreedOnlyAfterTwoEpochs)
{
    EpochManager mgr;
    bool freed = false;
    mgr.retire([&] { freed = true; });
    EXPECT_EQ(mgr.pendingCount(), 1u);
    mgr.tryAdvance();
    EXPECT_FALSE(freed);  // one epoch is not enough
    mgr.tryAdvance();
    EXPECT_TRUE(freed);
    EXPECT_EQ(mgr.pendingCount(), 0u);
}

TEST(EpochTest, ActiveReaderBlocksAdvance)
{
    EpochManager mgr;
    bool freed = false;

    std::atomic<bool> pinned{false};
    std::atomic<bool> release{false};
    std::thread reader([&] {
        EpochGuard guard(mgr);
        pinned.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    while (!pinned.load())
        std::this_thread::yield();

    mgr.retire([&] { freed = true; });
    for (int i = 0; i < 10; i++)
        mgr.tryAdvance();
    // The pinned reader entered before the retire; the object must not
    // be freed while it is still inside its critical section.
    EXPECT_FALSE(freed);

    release.store(true);
    reader.join();
    mgr.drain();
    EXPECT_TRUE(freed);
}

TEST(EpochTest, ManyManagersCoexist)
{
    std::vector<std::unique_ptr<EpochManager>> managers;
    for (int i = 0; i < 32; i++)
        managers.push_back(std::make_unique<EpochManager>());
    int freed = 0;
    for (auto &m : managers) {
        EpochGuard g(*m);
        m->retire([&] { freed++; });
    }
    for (auto &m : managers)
        m->drain();
    EXPECT_EQ(freed, 32);
}

TEST(EpochTest, DestructorRunsPendingDeleters)
{
    bool freed = false;
    {
        EpochManager mgr;
        mgr.retire([&] { freed = true; });
    }
    EXPECT_TRUE(freed);
}

TEST(WaiterTest, SignalWakesWaiter)
{
    Waiter w;
    std::thread t([&] {
        delayFor(2 * 1000 * 1000);
        w.signal(7);
    });
    EXPECT_EQ(w.wait(), 7u);
    t.join();
}

TEST(ClockTest, MonotonicAndSpin)
{
    const uint64_t t0 = nowNs();
    spinFor(100 * 1000);  // 100 us
    const uint64_t dt = nowNs() - t0;
    EXPECT_GE(dt, 100 * 1000u);
    EXPECT_LT(dt, 10 * 1000 * 1000u);
}

TEST(ClockTest, TimeScaleScales)
{
    TimeScale::set(0.5);
    EXPECT_EQ(TimeScale::scaled(1000), 500u);
    TimeScale::set(1.0);
    EXPECT_EQ(TimeScale::scaled(1000), 1000u);
}

}  // namespace
}  // namespace prism
