/**
 * @file
 * Unit tests for Prism's core components in isolation: the packed
 * value-address encoding, HSIT protocols (including the dirty-bit
 * flush-on-read crash semantics), the PWB ring log, Value Storage
 * chunk management and GC, the ChunkWriter, and the read batcher.
 */
#include <gtest/gtest.h>

#include <thread>

#include "common/rand.h"
#include "core/chunk_writer.h"
#include "core/hsit.h"
#include "core/pwb.h"
#include "core/read_batcher.h"
#include "core/value_storage.h"
#include "sim/device_profile.h"
#include "sim/ssd_device.h"

namespace prism::core {
namespace {

struct NvmFixture {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::unique_ptr<pmem::PmemRegion> region;
    std::unique_ptr<pmem::PmemAllocator> alloc;

    explicit NvmFixture(uint64_t bytes = 64 << 20, bool tracking = false)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            bytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_unique<pmem::PmemRegion>(nvm, true);
        if (tracking)
            region->enableTracking();
        alloc = std::make_unique<pmem::PmemAllocator>(*region);
    }
};

// ---------------------------------------------------------------------------
// ValueAddr

TEST(ValueAddrTest, EncodeDecodePwb)
{
    const ValueAddr a = ValueAddr::pwb(123456, 1024);
    EXPECT_TRUE(a.isPwb());
    EXPECT_FALSE(a.isVs());
    EXPECT_FALSE(a.isDirty());
    EXPECT_EQ(a.offset(), 123456u);
    EXPECT_EQ(a.recordBytes(), 1024u);
}

TEST(ValueAddrTest, EncodeDecodeVs)
{
    const ValueAddr a = ValueAddr::vs(13, (1ull << 40) + 64, 4096);
    EXPECT_TRUE(a.isVs());
    EXPECT_EQ(a.ssdId(), 13u);
    EXPECT_EQ(a.offset(), (1ull << 40) + 64);
    EXPECT_EQ(a.recordBytes(), 4096u);
}

TEST(ValueAddrTest, DirtyBitRoundtrip)
{
    const ValueAddr a = ValueAddr::vs(1, 128, 64);
    const ValueAddr dirty = a.withDirty();
    EXPECT_TRUE(dirty.isDirty());
    EXPECT_EQ(dirty.withoutDirty(), a);
    EXPECT_FALSE(ValueAddr().isDirty());
    EXPECT_TRUE(ValueAddr().isNull());
    EXPECT_TRUE(ValueAddr(ValueAddr::kDirtyBit).isNull());
}

TEST(ValueAddrTest, PropertySweepRoundtrips)
{
    Xorshift rng(2);
    for (int i = 0; i < 20000; i++) {
        const uint64_t off = rng.next() & ValueAddr::kOffsetMask;
        const uint32_t ssd = static_cast<uint32_t>(rng.nextUniform(64));
        const uint64_t bytes =
            (1 + rng.nextUniform(ValueAddr::kSizeMask)) *
            ValueAddr::kSizeUnit;
        const ValueAddr a = ValueAddr::vs(ssd, off, bytes);
        ASSERT_EQ(a.offset(), off);
        ASSERT_EQ(a.ssdId(), ssd);
        ASSERT_EQ(a.recordBytes(), bytes);
        ASSERT_TRUE(a.isVs());
    }
}

TEST(ValueAddrTest, RecordBytesAligns)
{
    const uint64_t hdr = sizeof(ValueRecordHeader);
    EXPECT_EQ(recordBytes(0), 64u);
    EXPECT_EQ(recordBytes(static_cast<uint32_t>(64 - hdr)), 64u);
    EXPECT_EQ(recordBytes(static_cast<uint32_t>(64 - hdr + 1)), 128u);
    EXPECT_EQ(recordBytes(1024), ((hdr + 1024 + 63) / 64) * 64);
}

// ---------------------------------------------------------------------------
// HSIT

TEST(HsitTest, AllocPublishFree)
{
    NvmFixture fx;
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 128);
    const uint64_t a = hsit->allocEntry();
    const uint64_t b = hsit->allocEntry();
    EXPECT_NE(a, b);
    EXPECT_EQ(hsit->liveCount(), 2u);

    hsit->storePrimaryDurable(a, ValueAddr::pwb(64, 64));
    EXPECT_EQ(hsit->loadPrimary(a).offset(), 64u);

    hsit->freeEntryImmediate(b);
    EXPECT_EQ(hsit->allocEntry(), b);  // recycled
}

TEST(HsitTest, CapacityExhaustion)
{
    NvmFixture fx;
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 4);
    for (int i = 0; i < 4; i++)
        EXPECT_NE(hsit->allocEntry(), Hsit::kInvalidIndex);
    EXPECT_EQ(hsit->allocEntry(), Hsit::kInvalidIndex);
}

TEST(HsitTest, DurableCasDetectsConflicts)
{
    NvmFixture fx;
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 16);
    const uint64_t e = hsit->allocEntry();
    const ValueAddr v1 = ValueAddr::pwb(64, 64);
    const ValueAddr v2 = ValueAddr::pwb(128, 64);
    hsit->storePrimaryDurable(e, v1);
    EXPECT_TRUE(hsit->casPrimaryDurable(e, v1, v2));
    EXPECT_FALSE(hsit->casPrimaryDurable(e, v1, v2));  // stale expected
    EXPECT_EQ(hsit->loadPrimary(e), v2);
}

TEST(HsitTest, UnfencedCasRevertsOnCrash)
{
    // The flush-on-read protocol: a CAS whose flush never happened must
    // roll back to the previous pointer at a crash.
    NvmFixture fx(64 << 20, /*tracking=*/true);
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 16);
    const uint64_t e = hsit->allocEntry();
    const ValueAddr v1 = ValueAddr::pwb(64, 64);
    hsit->storePrimaryDurable(e, v1);

    // Simulate a writer that crashed mid-protocol: CAS to dirty state
    // without the persist step.
    const ValueAddr v2 = ValueAddr::pwb(128, 64);
    uint64_t expected = v1.raw();
    hsit->entry(e).primary.compare_exchange_strong(
        expected, v2.withDirty().raw());

    fx.region->simulateCrash();
    auto recovered = Hsit::attach(*fx.region, hsit->rootOff());
    recovered->resetVolatile();
    EXPECT_EQ(recovered->loadPrimary(e), v1);
}

TEST(HsitTest, PersistedDirtyBitIsClearedAtRecovery)
{
    NvmFixture fx(64 << 20, /*tracking=*/true);
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 16);
    const uint64_t e = hsit->allocEntry();
    const ValueAddr v2 = ValueAddr::pwb(128, 64);
    // Writer persisted the dirty pointer but crashed before clearing
    // the bit: the pointer is durable and must survive, bit cleared.
    hsit->entry(e).primary.store(v2.withDirty().raw());
    fx.region->persist(&hsit->entry(e).primary, 8);

    fx.region->simulateCrash();
    auto recovered = Hsit::attach(*fx.region, hsit->rootOff());
    recovered->resetVolatile();
    EXPECT_EQ(recovered->loadPrimary(e), v2);
    EXPECT_FALSE(ValueAddr(recovered->entry(e).primary.load()).isDirty());
}

TEST(HsitTest, FlushOnReadCleansWriterDirtyState)
{
    NvmFixture fx;
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 16);
    const uint64_t e = hsit->allocEntry();
    const ValueAddr v = ValueAddr::vs(0, 64, 64);
    hsit->entry(e).primary.store(v.withDirty().raw());
    // A reader encountering the dirty bit must flush and clear it.
    EXPECT_EQ(hsit->loadPrimary(e), v);
    EXPECT_FALSE(ValueAddr(hsit->entry(e).primary.load()).isDirty());
}

TEST(HsitTest, RebuildFreeListFromReachability)
{
    NvmFixture fx;
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 8);
    for (int i = 0; i < 8; i++)
        hsit->allocEntry();
    std::vector<bool> reachable(8, false);
    reachable[2] = reachable[5] = true;
    hsit->rebuildFreeList(reachable);
    EXPECT_EQ(hsit->liveCount(), 2u);
    // Allocations must hand out only unreachable indices.
    std::set<uint64_t> given;
    for (int i = 0; i < 6; i++)
        given.insert(hsit->allocEntry());
    EXPECT_EQ(given.count(2), 0u);
    EXPECT_EQ(given.count(5), 0u);
    EXPECT_EQ(given.size(), 6u);
}

TEST(HsitTest, SvcPointerCas)
{
    NvmFixture fx;
    auto hsit = Hsit::create(*fx.region, *fx.alloc, 8);
    const uint64_t e = hsit->allocEntry();
    int dummy1, dummy2;
    EXPECT_EQ(hsit->svcLoad(e), nullptr);
    EXPECT_TRUE(hsit->svcCas(e, nullptr, &dummy1));
    EXPECT_FALSE(hsit->svcCas(e, nullptr, &dummy2));
    EXPECT_EQ(hsit->svcLoad(e), &dummy1);
    EXPECT_TRUE(hsit->svcCas(e, &dummy1, nullptr));
}

// ---------------------------------------------------------------------------
// PWB

TEST(PwbTest, AppendAndReadBack)
{
    NvmFixture fx;
    auto pwb = Pwb::create(*fx.region, *fx.alloc, 1 << 20);
    const std::string value = "pwb payload";
    const ValueAddr a = pwb->append(7, 42, value.data(),
                                    static_cast<uint32_t>(value.size()));
    pwb->markPublished();
    ASSERT_FALSE(a.isNull());
    EXPECT_TRUE(a.isPwb());
    const auto *hdr = pwb->headerAt(a);
    EXPECT_EQ(hdr->backward, 7u);
    EXPECT_EQ(hdr->key, 42u);
    EXPECT_EQ(std::string(reinterpret_cast<const char *>(hdr + 1),
                          hdr->value_size),
              value);
}

TEST(PwbTest, FillsThenRejects)
{
    NvmFixture fx;
    auto pwb = Pwb::create(*fx.region, *fx.alloc, 64 * 1024);
    std::string value(1000, 'x');
    int appended = 0;
    while (!pwb->append(1, appended, value.data(), 1000).isNull()) {
        pwb->markPublished();
        appended++;
    }
    EXPECT_GT(appended, 50);
    EXPECT_LE(pwb->usedBytes(), 64 * 1024u);
    EXPECT_GE(pwb->utilization(), 0.95);
}

TEST(PwbTest, CollectSkipsPadsAndStopsAtTail)
{
    NvmFixture fx;
    auto pwb = Pwb::create(*fx.region, *fx.alloc, 64 * 1024);
    std::string value(900, 'y');  // forces a wrap pad eventually
    std::vector<ValueAddr> addrs;
    for (int i = 0; i < 40; i++) {
        const ValueAddr a = pwb->append(static_cast<uint64_t>(i), i,
                                        value.data(), 900);
        pwb->markPublished();
        ASSERT_FALSE(a.isNull());
        addrs.push_back(a);
    }
    std::vector<Pwb::RecordRef> refs;
    const uint64_t new_head = pwb->collect(UINT64_MAX, refs);
    EXPECT_EQ(refs.size(), 40u);
    EXPECT_EQ(new_head, pwb->tailLogical());
    for (size_t i = 0; i < refs.size(); i++) {
        EXPECT_EQ(refs[i].hdr->backward, i);
        EXPECT_EQ(refs[i].addr.raw(), addrs[i].raw());
    }
}

TEST(PwbTest, RingReusesSpaceAfterHeadAdvance)
{
    NvmFixture fx;
    auto pwb = Pwb::create(*fx.region, *fx.alloc, 64 * 1024);
    std::string value(1000, 'z');
    for (int round = 0; round < 20; round++) {
        int appended = 0;
        while (!pwb->append(1, appended, value.data(), 1000).isNull()) {
            pwb->markPublished();
            appended++;
        }
        ASSERT_GT(appended, 10) << "ring did not recycle";
        std::vector<Pwb::RecordRef> refs;
        pwb->advanceHead(pwb->collect(UINT64_MAX, refs));
    }
}

TEST(PwbTest, UnpublishedRecordFencesReclamation)
{
    // A record that has been appended but whose HSIT forward pointer is
    // not yet installed looks ill-coupled; reclamation judging it would
    // free live space mid-publish. collect() must stop at the oldest
    // unpublished append and resume once it is marked published.
    NvmFixture fx;
    auto pwb = Pwb::create(*fx.region, *fx.alloc, 1 << 20);
    std::string value(100, 'u');
    pwb->append(1, 1, value.data(), 100);
    pwb->markPublished();
    pwb->append(2, 2, value.data(), 100);  // publish pending

    std::vector<Pwb::RecordRef> refs;
    uint64_t upto = pwb->collect(UINT64_MAX, refs);
    EXPECT_EQ(refs.size(), 1u);            // only the published record
    EXPECT_LT(upto, pwb->tailLogical());
    EXPECT_EQ(upto, pwb->inflightLogical());

    pwb->markPublished();
    refs.clear();
    upto = pwb->collect(UINT64_MAX, refs);
    EXPECT_EQ(refs.size(), 2u);
    EXPECT_EQ(upto, pwb->tailLogical());
}

TEST(PwbTest, HeadTailSurviveReattach)
{
    NvmFixture fx;
    auto pwb = Pwb::create(*fx.region, *fx.alloc, 1 << 20);
    std::string value(100, 'a');
    for (int i = 0; i < 10; i++) {
        pwb->append(1, i, value.data(), 100);
        pwb->markPublished();
    }
    const uint64_t tail = pwb->tailLogical();
    const pmem::POff root = pwb->rootOff();
    pwb.reset();
    auto attached = Pwb::attach(*fx.region, root);
    EXPECT_EQ(attached->tailLogical(), tail);
    EXPECT_EQ(attached->headLogical(), 0u);
}

// ---------------------------------------------------------------------------
// ValueStorage + ChunkWriter

struct VsFixture {
    NvmFixture nvm;  // for the HSIT used by GC
    PrismOptions opts;
    EpochManager epochs;
    std::shared_ptr<sim::SsdDevice> ssd;
    std::unique_ptr<ValueStorage> vs;
    std::unique_ptr<Hsit> hsit;

    VsFixture()
    {
        opts.chunk_bytes = 64 * 1024;
        ssd = std::make_shared<sim::SsdDevice>(
            8 << 20, sim::kSamsung980ProProfile, /*timing=*/false);
        vs = std::make_unique<ValueStorage>(0, ssd, opts, epochs);
        hsit = Hsit::create(*nvm.region, *nvm.alloc, 4096);
    }
};

TEST(ValueStorageTest, ChunkLifecycle)
{
    VsFixture fx;
    EXPECT_EQ(fx.vs->totalChunks(), (8 << 20) / (64 * 1024));
    const int64_t c = fx.vs->allocChunk();
    ASSERT_GE(c, 0);
    EXPECT_EQ(fx.vs->freeChunks(), fx.vs->totalChunks() - 1);

    std::vector<uint8_t> buf(64 * 1024, 0xAA);
    WriteTicket ticket;
    ASSERT_TRUE(fx.vs->submitChunkWrite(c, buf.data(), 64 * 1024,
                                        &ticket)
                    .isOk());
    ticket.wait();
    fx.vs->sealChunk(c, 64 * 1024);
    fx.vs->settleChunk(c);

    fx.vs->freeChunkDeferred(c);
    fx.epochs.drain();
    EXPECT_EQ(fx.vs->freeChunks(), fx.vs->totalChunks());
}

TEST(ValueStorageTest, DoubleFreeIsIgnored)
{
    VsFixture fx;
    const int64_t c = fx.vs->allocChunk();
    fx.vs->sealChunk(c, 0);
    fx.vs->freeChunkDeferred(c);
    fx.vs->freeChunkDeferred(c);  // must be a no-op
    fx.epochs.drain();
    EXPECT_EQ(fx.vs->freeChunks(), fx.vs->totalChunks());
}

TEST(ValueStorageTest, ValidityBitmapAccounting)
{
    VsFixture fx;
    fx.vs->setValid(0, 128);
    fx.vs->setValid(128, 256);
    EXPECT_TRUE(fx.vs->isValid(0));
    EXPECT_TRUE(fx.vs->isValid(128));
    EXPECT_EQ(fx.vs->liveUnits(0), (128 + 256) / 64);
    fx.vs->setValid(0, 128);  // idempotent
    EXPECT_EQ(fx.vs->liveUnits(0), (128 + 256) / 64);
    fx.vs->clearValid(0, 128);
    fx.vs->clearValid(0, 128);  // idempotent
    EXPECT_EQ(fx.vs->liveUnits(0), 256u / 64);
    EXPECT_FALSE(fx.vs->isValid(0));
}

TEST(ChunkWriterTest, PacksRecordsAndReadsBack)
{
    VsFixture fx;
    ChunkWriter writer({fx.vs.get()});
    std::string value(5000, 'q');
    std::vector<ValueAddr> addrs;
    for (int i = 0; i < 50; i++) {
        const ValueAddr a = writer.add(static_cast<uint64_t>(i),
                                       static_cast<uint64_t>(i) * 10,
                                       value.data(), 5000);
        ASSERT_FALSE(a.isNull());
        addrs.push_back(a);
    }
    ASSERT_TRUE(writer.finish().isOk());
    EXPECT_GT(writer.chunksWritten(), 1u);  // 250 KB over 64 KB chunks

    std::vector<uint8_t> buf;
    for (int i = 0; i < 50; i++) {
        ASSERT_TRUE(fx.vs->readRecord(addrs[static_cast<size_t>(i)], buf)
                        .isOk());
        const auto *hdr =
            reinterpret_cast<const ValueRecordHeader *>(buf.data());
        EXPECT_EQ(hdr->backward, static_cast<uint64_t>(i));
        EXPECT_EQ(hdr->key, static_cast<uint64_t>(i) * 10);
        EXPECT_EQ(hdr->value_size, 5000u);
    }
}

TEST(ValueStorageTest, GcRelocatesLiveValues)
{
    VsFixture fx;
    // Write two chunks of values; register them in the HSIT; kill most
    // of them; GC must compact the survivors and free victims.
    ChunkWriter writer({fx.vs.get()});
    std::string value(3000, 'g');
    struct Item {
        uint64_t h;
        ValueAddr addr;
    };
    std::vector<Item> items;
    for (int i = 0; i < 40; i++) {
        const uint64_t h = fx.hsit->allocEntry();
        const ValueAddr a = writer.add(h, static_cast<uint64_t>(i),
                                       value.data(), 3000);
        ASSERT_FALSE(a.isNull());
        items.push_back({h, a});
    }
    ASSERT_TRUE(writer.finish().isOk());
    for (const auto &it : items) {
        fx.vs->setValid(it.addr.offset(), it.addr.recordBytes());
        fx.hsit->storePrimaryDurable(it.h, it.addr);
    }
    writer.settleAll();

    // Invalidate all but every 8th value.
    for (size_t i = 0; i < items.size(); i++) {
        if (i % 8 == 0)
            continue;
        fx.vs->clearValid(items[i].addr.offset(),
                          items[i].addr.recordBytes());
        fx.hsit->storePrimaryDurable(items[i].h, ValueAddr());
    }
    const size_t free_before = fx.vs->freeChunks();
    const size_t reclaimed = fx.vs->runGcPass(*fx.hsit);
    fx.epochs.drain();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_GT(fx.vs->freeChunks(), free_before);

    // Survivors must still be readable via their *new* HSIT pointers.
    std::vector<uint8_t> buf;
    for (size_t i = 0; i < items.size(); i += 8) {
        const ValueAddr now = fx.hsit->loadPrimary(items[i].h);
        ASSERT_FALSE(now.isNull());
        ASSERT_TRUE(fx.vs->readRecord(now, buf).isOk());
        const auto *hdr =
            reinterpret_cast<const ValueRecordHeader *>(buf.data());
        EXPECT_EQ(hdr->backward, items[i].h);
    }
}

// ---------------------------------------------------------------------------
// ReadBatcher

class ReadBatcherTest : public ::testing::TestWithParam<ReadBatchMode> {};

TEST_P(ReadBatcherTest, ConcurrentReadsAllCorrect)
{
    auto ssd = std::make_shared<sim::SsdDevice>(
        8 << 20, sim::kSamsung980ProProfile, /*timing=*/false);
    // Stamp each 4 KB block with its index.
    for (uint64_t b = 0; b < 256; b++) {
        std::vector<uint64_t> block(512, b);
        ssd->writeSync(b * 4096, block.data(), 4096);
    }
    ReadBatcher batcher(*ssd, GetParam(), 16, 50);
    // A completion thread, as ValueStorage runs one.
    std::atomic<bool> stop{false};
    std::thread completer([&] {
        std::vector<sim::SsdCompletion> done;
        while (!stop.load()) {
            done.clear();
            if (ssd->waitCompletions(done, 64, 100) == 0)
                continue;
            for (const auto &c : done)
                ReadBatcher::completeFromUserData(c.user_data);
        }
    });

    std::vector<std::thread> readers;
    for (int t = 0; t < 8; t++) {
        readers.emplace_back([&, t] {
            Xorshift rng(static_cast<uint64_t>(t));
            std::vector<uint64_t> buf(512);
            for (int i = 0; i < 500; i++) {
                const uint64_t b = rng.nextUniform(256);
                ASSERT_TRUE(batcher.read(b * 4096, buf.data(), 4096)
                                .isOk());
                ASSERT_EQ(buf[0], b);
                ASSERT_EQ(buf[511], b);
            }
        });
    }
    for (auto &r : readers)
        r.join();
    stop.store(true);
    completer.join();
    EXPECT_EQ(batcher.requestsCoalesced(), 8u * 500);
    EXPECT_LE(batcher.batchesSubmitted(), batcher.requestsCoalesced());
}

INSTANTIATE_TEST_SUITE_P(AllModes, ReadBatcherTest,
                         ::testing::Values(
                             ReadBatchMode::kThreadCombining,
                             ReadBatchMode::kTimeoutAsync,
                             ReadBatchMode::kNone),
                         [](const auto &info) {
                             switch (info.param) {
                               case ReadBatchMode::kThreadCombining:
                                 return "ThreadCombining";
                               case ReadBatchMode::kTimeoutAsync:
                                 return "TimeoutAsync";
                               default:
                                 return "None";
                             }
                         });

}  // namespace
}  // namespace prism::core
