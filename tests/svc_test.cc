/**
 * @file
 * Unit tests for the Scan-aware Value Cache in isolation: admission,
 * validation-based staleness safety, invalidation, 2Q behaviour under
 * pressure, scan chains and eviction-time reorganisation.
 */
#include <gtest/gtest.h>

#include "core/chunk_writer.h"
#include "core/svc.h"
#include "sim/device_profile.h"
#include "sim/ssd_device.h"

namespace prism::core {
namespace {

struct SvcFixture {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::unique_ptr<pmem::PmemRegion> region;
    std::unique_ptr<pmem::PmemAllocator> alloc;
    std::unique_ptr<Hsit> hsit;
    EpochManager epochs;
    PrismOptions opts;
    std::shared_ptr<sim::SsdDevice> ssd;
    std::unique_ptr<ValueStorage> vs;
    std::unique_ptr<Svc> svc;

    explicit SvcFixture(uint64_t svc_bytes = 1 << 20,
                        bool scan_reorg = true)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            32ull << 20, sim::kOptaneDcpmmProfile, false);
        region = std::make_unique<pmem::PmemRegion>(nvm, true);
        alloc = std::make_unique<pmem::PmemAllocator>(*region);
        hsit = Hsit::create(*region, *alloc, 4096);
        opts.chunk_bytes = 64 * 1024;
        opts.svc_capacity_bytes = svc_bytes;
        opts.enable_scan_reorg = scan_reorg;
        ssd = std::make_shared<sim::SsdDevice>(
            16ull << 20, sim::kSamsung980ProProfile, false);
        vs = std::make_unique<ValueStorage>(0, ssd, opts, epochs);
        svc = std::make_unique<Svc>(*hsit, epochs,
                                    std::vector<ValueStorage *>{vs.get()},
                                    opts);
    }

    /** Write a record to Value Storage and publish it in the HSIT. */
    std::pair<uint64_t, ValueAddr>
    publishOnSsd(uint64_t key, const std::string &value)
    {
        const uint64_t h = hsit->allocEntry();
        ChunkWriter writer({vs.get()});
        const ValueAddr a =
            writer.add(h, key, value.data(),
                       static_cast<uint32_t>(value.size()));
        writer.finish();
        vs->setValid(a.offset(), a.recordBytes());
        writer.settleAll();
        hsit->storePrimaryDurable(h, a);
        return {h, a};
    }
};

TEST(SvcTest, AdmitThenHit)
{
    SvcFixture fx;
    const std::string value = "cached value";
    auto [h, addr] = fx.publishOnSsd(1, value);
    EpochGuard guard(fx.epochs);
    std::string out;
    EXPECT_FALSE(fx.svc->lookup(h, addr.raw(), &out));
    fx.svc->admit(h, 1, addr,
                  reinterpret_cast<const uint8_t *>(value.data()),
                  static_cast<uint32_t>(value.size()));
    ASSERT_TRUE(fx.svc->lookup(h, addr.raw(), &out));
    EXPECT_EQ(out, value);
    EXPECT_GT(fx.svc->usedBytes(), value.size());
}

TEST(SvcTest, StalePointerNeverServed)
{
    SvcFixture fx;
    const std::string value = "version 1";
    auto [h, addr] = fx.publishOnSsd(2, value);
    {
        EpochGuard guard(fx.epochs);
        fx.svc->admit(h, 2, addr,
                      reinterpret_cast<const uint8_t *>(value.data()),
                      static_cast<uint32_t>(value.size()));
    }
    // Simulate an update: the forward pointer moves (to a PWB address).
    const ValueAddr fresh = ValueAddr::pwb(4096, 64);
    fx.hsit->storePrimaryDurable(h, fresh);
    EpochGuard guard(fx.epochs);
    std::string out;
    // Lookup with the *new* pointer must refuse the old cached copy.
    EXPECT_FALSE(fx.svc->lookup(h, fresh.raw(), &out));
}

TEST(SvcTest, InvalidateDetaches)
{
    SvcFixture fx;
    const std::string value = "bye";
    auto [h, addr] = fx.publishOnSsd(3, value);
    {
        EpochGuard guard(fx.epochs);
        fx.svc->admit(h, 3, addr,
                      reinterpret_cast<const uint8_t *>(value.data()),
                      static_cast<uint32_t>(value.size()));
    }
    fx.svc->invalidate(h);
    EpochGuard guard(fx.epochs);
    std::string out;
    EXPECT_FALSE(fx.svc->lookup(h, addr.raw(), &out));
    fx.svc->drainForTest();
    EXPECT_EQ(fx.hsit->svcLoad(h), nullptr);
}

TEST(SvcTest, CapacityPressureEvicts)
{
    SvcFixture fx(64 * 1024);  // tiny cache
    const std::string value(1000, 'e');
    std::vector<std::pair<uint64_t, ValueAddr>> items;
    for (uint64_t k = 0; k < 200; k++) {
        items.push_back(fx.publishOnSsd(k, value));
        EpochGuard guard(fx.epochs);
        fx.svc->admit(items.back().first, k, items.back().second,
                      reinterpret_cast<const uint8_t *>(value.data()),
                      static_cast<uint32_t>(value.size()));
    }
    fx.svc->drainForTest();
    EXPECT_LE(fx.svc->usedBytes(), 2 * 64 * 1024u);
    EXPECT_GT(fx.svc->stats().evictions.load(), 100u);
    // The most recently admitted entries are the ones that survive.
    EpochGuard guard(fx.epochs);
    std::string out;
    int live = 0;
    for (const auto &[h, addr] : items)
        live += fx.svc->lookup(h, addr.raw(), &out);
    EXPECT_GT(live, 0);
    EXPECT_LT(live, 200);
}

TEST(SvcTest, RepeatedAccessPromotesOverOneTouch)
{
    SvcFixture fx(96 * 1024);
    const std::string value(800, 'f');
    // Admit a "hot" set and touch it repeatedly, then stream a large
    // one-touch set through the cache; the hot set should survive.
    std::vector<std::pair<uint64_t, ValueAddr>> hot;
    for (uint64_t k = 0; k < 20; k++) {
        hot.push_back(fx.publishOnSsd(k, value));
        EpochGuard guard(fx.epochs);
        fx.svc->admit(hot.back().first, k, hot.back().second,
                      reinterpret_cast<const uint8_t *>(value.data()),
                      static_cast<uint32_t>(value.size()));
    }
    fx.svc->drainForTest();
    {
        EpochGuard guard(fx.epochs);
        std::string out;
        for (int round = 0; round < 3; round++) {
            for (const auto &[h, addr] : hot)
                fx.svc->lookup(h, addr.raw(), &out);
        }
    }
    fx.svc->drainForTest();  // let the manager observe the references
    for (uint64_t k = 100; k < 220; k++) {
        auto item = fx.publishOnSsd(k, value);
        EpochGuard guard(fx.epochs);
        fx.svc->admit(item.first, k, item.second,
                      reinterpret_cast<const uint8_t *>(value.data()),
                      static_cast<uint32_t>(value.size()));
        if (k % 16 == 0)
            fx.svc->drainForTest();
    }
    fx.svc->drainForTest();
    EpochGuard guard(fx.epochs);
    std::string out;
    int hot_live = 0;
    for (const auto &[h, addr] : hot)
        hot_live += fx.svc->lookup(h, addr.raw(), &out);
    // 2Q: the re-referenced set is preferentially retained.
    EXPECT_GT(hot_live, 5);
}

TEST(SvcTest, ScanChainReorganisesOnEviction)
{
    SvcFixture fx(128 * 1024, /*scan_reorg=*/true);
    const std::string value(600, 's');
    // Publish a scattered key range, admit it, and declare it one scan.
    std::vector<std::pair<uint64_t, ValueAddr>> range;
    std::vector<uint64_t> chain;
    for (uint64_t k = 0; k < 40; k++) {
        range.push_back(fx.publishOnSsd(k * 7, value));
        EpochGuard guard(fx.epochs);
        fx.svc->admit(range.back().first, k * 7, range.back().second,
                      reinterpret_cast<const uint8_t *>(value.data()),
                      static_cast<uint32_t>(value.size()));
        chain.push_back(range.back().first);
    }
    fx.svc->noteScan(chain);
    fx.svc->drainForTest();

    // Flood the cache so the chain members get evicted.
    const std::string filler(900, 'x');
    for (uint64_t k = 1000; k < 1400; k++) {
        auto item = fx.publishOnSsd(k, filler);
        EpochGuard guard(fx.epochs);
        fx.svc->admit(item.first, k, item.second,
                      reinterpret_cast<const uint8_t *>(filler.data()),
                      static_cast<uint32_t>(filler.size()));
        if (k % 32 == 0)
            fx.svc->drainForTest();
    }
    fx.svc->drainForTest();
    EXPECT_GT(fx.svc->stats().scan_reorgs.load(), 0u);
    EXPECT_GT(fx.svc->stats().reorged_values.load(), 1u);

    // Reorganised values must still resolve and be contiguous-ish:
    // at least one pair of key-adjacent values now sits adjacent on
    // the device.
    std::vector<std::pair<uint64_t, ValueAddr>> now;
    for (const auto &[h, old_addr] : range) {
        const ValueAddr a = fx.hsit->loadPrimary(h);
        ASSERT_FALSE(a.isNull());
        now.emplace_back(h, a);
    }
    int adjacent = 0;
    for (size_t i = 1; i < now.size(); i++) {
        if (now[i].second.offset() ==
            now[i - 1].second.offset() +
                now[i - 1].second.recordBytes())
            adjacent++;
    }
    EXPECT_GT(adjacent, 0);

    // And their contents must be intact.
    std::vector<uint8_t> buf;
    for (const auto &[h, a] : now) {
        ASSERT_TRUE(fx.vs->readRecord(a, buf).isOk());
        const auto *hdr =
            reinterpret_cast<const ValueRecordHeader *>(buf.data());
        EXPECT_EQ(hdr->backward, h);
        EXPECT_TRUE(recordCrcOk(*hdr, hdr + 1));
    }
}

TEST(SvcTest, DisabledCacheIsInert)
{
    SvcFixture fx;
    fx.opts.enable_svc = false;
    Svc off(*fx.hsit, fx.epochs, {fx.vs.get()}, fx.opts);
    const std::string value = "nope";
    auto [h, addr] = fx.publishOnSsd(9, value);
    EpochGuard guard(fx.epochs);
    off.admit(h, 9, addr,
              reinterpret_cast<const uint8_t *>(value.data()),
              static_cast<uint32_t>(value.size()));
    std::string out;
    EXPECT_FALSE(off.lookup(h, addr.raw(), &out));
    EXPECT_EQ(off.usedBytes(), 0u);
}

}  // namespace
}  // namespace prism::core
