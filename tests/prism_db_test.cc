/**
 * @file
 * Integration tests for PrismDb: basic operations, persistence across
 * restart, reclamation, cache behaviour, and concurrency.
 */
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "core/prism_db.h"
#include "sim/device_profile.h"

namespace prism::core {
namespace {

/** A small store on fast (untimed) simulated devices. */
struct TestStore {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<PrismDb> db;
    PrismOptions opts;

    explicit TestStore(int num_ssds = 2, bool open_now = true)
    {
        opts.pwb_size_bytes = 1 * 1024 * 1024;
        opts.svc_capacity_bytes = 4 * 1024 * 1024;
        opts.hsit_capacity = 64 * 1024;
        opts.chunk_bytes = 64 * 1024;
        nvm = std::make_shared<sim::NvmDevice>(
            128ull * 1024 * 1024, sim::kOptaneDcpmmProfile,
            /*model_timing=*/false);
        region = std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
        for (int i = 0; i < num_ssds; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                64ull * 1024 * 1024, sim::kSamsung980ProProfile,
                /*model_timing=*/false));
        }
        if (open_now)
            db = PrismDb::open(opts, region, ssds);
    }

    /** Orderly restart (no crash): destroy and recover on same media. */
    void
    restart()
    {
        db.reset();
        db = PrismDb::recover(opts, region, ssds);
    }
};

std::string
valueFor(uint64_t key, size_t size = 128)
{
    std::string v(size, '\0');
    for (size_t i = 0; i < size; i++)
        v[i] = static_cast<char>('a' + (key + i) % 26);
    return v;
}

TEST(PrismDbTest, PutGetRoundtrip)
{
    TestStore ts;
    ASSERT_TRUE(ts.db->put(42, "hello prism").isOk());
    std::string v;
    ASSERT_TRUE(ts.db->get(42, &v).isOk());
    EXPECT_EQ(v, "hello prism");
}

TEST(PrismDbTest, GetMissingReturnsNotFound)
{
    TestStore ts;
    std::string v;
    EXPECT_TRUE(ts.db->get(7, &v).isNotFound());
}

TEST(PrismDbTest, UpdateReplacesValue)
{
    TestStore ts;
    ASSERT_TRUE(ts.db->put(1, "first").isOk());
    ASSERT_TRUE(ts.db->put(1, "second").isOk());
    std::string v;
    ASSERT_TRUE(ts.db->get(1, &v).isOk());
    EXPECT_EQ(v, "second");
    EXPECT_EQ(ts.db->size(), 1u);
}

TEST(PrismDbTest, DeleteRemovesKey)
{
    TestStore ts;
    ASSERT_TRUE(ts.db->put(5, "gone soon").isOk());
    ASSERT_TRUE(ts.db->del(5).isOk());
    std::string v;
    EXPECT_TRUE(ts.db->get(5, &v).isNotFound());
    EXPECT_TRUE(ts.db->del(5).isNotFound());
}

TEST(PrismDbTest, ManyKeysSurviveReclamation)
{
    TestStore ts;
    constexpr uint64_t kKeys = 20000;  // >> PWB capacity, forces reclaim
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk()) << k;
    EXPECT_EQ(ts.db->size(), kKeys);
    for (uint64_t k = 0; k < kKeys; k += 7) {
        std::string v;
        ASSERT_TRUE(ts.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, valueFor(k)) << k;
    }
    EXPECT_GT(ts.db->opStats().reclaim_passes.load(), 0u);
}

TEST(PrismDbTest, UpdatesDedupOnReclaim)
{
    TestStore ts;
    // Hammer a small key set; reclamation should skip superseded
    // versions (append-only dedup, §4.3).
    for (int round = 0; round < 200; round++) {
        for (uint64_t k = 0; k < 100; k++)
            ASSERT_TRUE(ts.db->put(k, valueFor(k + round)).isOk());
    }
    ts.db->flushAll();
    EXPECT_GT(ts.db->opStats().reclaim_skipped_stale.load(), 0u);
    for (uint64_t k = 0; k < 100; k++) {
        std::string v;
        ASSERT_TRUE(ts.db->get(k, &v).isOk());
        EXPECT_EQ(v, valueFor(k + 199));
    }
}

TEST(PrismDbTest, ScanReturnsSortedRange)
{
    TestStore ts;
    for (uint64_t k = 0; k < 1000; k++)
        ASSERT_TRUE(ts.db->put(k * 10, valueFor(k)).isOk());
    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(ts.db->scan(500, 20, &out).isOk());
    ASSERT_EQ(out.size(), 20u);
    EXPECT_EQ(out[0].first, 500u);
    for (size_t i = 1; i < out.size(); i++)
        EXPECT_LT(out[i - 1].first, out[i].first);
    for (const auto &[k, v] : out)
        EXPECT_EQ(v, valueFor(k / 10));
}

TEST(PrismDbTest, ScanAfterReclaimReadsFromSsd)
{
    // SVC off: reclamation write-back admission would otherwise keep
    // serving these values from DRAM, and this test pins the SSD path.
    TestStore ts(2, /*open_now=*/false);
    ts.opts.enable_svc = false;
    ts.db = PrismDb::open(ts.opts, ts.region, ts.ssds);
    for (uint64_t k = 0; k < 5000; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    ts.db->flushAll();  // everything to Value Storage
    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(ts.db->scan(100, 50, &out).isOk());
    ASSERT_EQ(out.size(), 50u);
    for (const auto &[k, v] : out)
        EXPECT_EQ(v, valueFor(k));
    EXPECT_GT(ts.db->opStats().vs_reads.load(), 0u);
}

TEST(PrismDbTest, RestartRecoversData)
{
    TestStore ts;
    for (uint64_t k = 0; k < 3000; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    ts.restart();
    EXPECT_EQ(ts.db->size(), 3000u);
    for (uint64_t k = 0; k < 3000; k += 13) {
        std::string v;
        ASSERT_TRUE(ts.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, valueFor(k));
    }
    EXPECT_GT(ts.db->recoveryTimeNs(), 0u);
}

TEST(PrismDbTest, RestartAfterUpdatesKeepsLatest)
{
    TestStore ts;
    for (uint64_t k = 0; k < 500; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    for (uint64_t k = 0; k < 500; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k + 1000)).isOk());
    ts.restart();
    for (uint64_t k = 0; k < 500; k += 3) {
        std::string v;
        ASSERT_TRUE(ts.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, valueFor(k + 1000));
    }
}

TEST(PrismDbTest, RestartAfterDeletes)
{
    TestStore ts;
    for (uint64_t k = 0; k < 1000; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    for (uint64_t k = 0; k < 1000; k += 2)
        ASSERT_TRUE(ts.db->del(k).isOk());
    ts.restart();
    EXPECT_EQ(ts.db->size(), 500u);
    std::string v;
    EXPECT_TRUE(ts.db->get(0, &v).isNotFound());
    EXPECT_TRUE(ts.db->get(1, &v).isOk());
}

TEST(PrismDbTest, SvcServesRepeatedReads)
{
    TestStore ts;
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    ts.db->flushAll();
    std::string v;
    ASSERT_TRUE(ts.db->get(77, &v).isOk());   // SSD read + admission
    ASSERT_TRUE(ts.db->get(77, &v).isOk());   // should hit the SVC
    EXPECT_EQ(v, valueFor(77));
    EXPECT_GT(ts.db->svcStats().hits.load(), 0u);
}

TEST(PrismDbTest, SvcNeverServesStaleAfterUpdate)
{
    TestStore ts;
    ASSERT_TRUE(ts.db->put(9, valueFor(9)).isOk());
    ts.db->flushAll();
    std::string v;
    ASSERT_TRUE(ts.db->get(9, &v).isOk());  // cached now
    ASSERT_TRUE(ts.db->put(9, "fresh").isOk());
    ASSERT_TRUE(ts.db->get(9, &v).isOk());
    EXPECT_EQ(v, "fresh");
}

TEST(PrismDbTest, LargeValuesRoundtrip)
{
    TestStore ts;
    const std::string big(40000, 'x');
    ASSERT_TRUE(ts.db->put(1, big).isOk());
    std::string v;
    ASSERT_TRUE(ts.db->get(1, &v).isOk());
    EXPECT_EQ(v, big);
    // Over the limit must be rejected cleanly.
    const std::string huge(70000, 'y');
    EXPECT_EQ(ts.db->put(2, huge).code(), StatusCode::kInvalidArgument);
}

TEST(PrismDbTest, GarbageCollectionReclaimsChunks)
{
    TestStore ts(1);
    // Overwrite a working set larger than... enough to push the single
    // 64 MB Value Storage towards its GC watermark repeatedly.
    for (int round = 0; round < 30; round++) {
        for (uint64_t k = 0; k < 4000; k++)
            ASSERT_TRUE(ts.db->put(k, valueFor(k + round, 512)).isOk());
        ts.db->flushAll();
    }
    ts.db->forceGc();
    for (uint64_t k = 0; k < 4000; k += 17) {
        std::string v;
        ASSERT_TRUE(ts.db->get(k, &v).isOk()) << k;
        EXPECT_EQ(v, valueFor(k + 29, 512)) << k;
    }
}

TEST(PrismDbTest, ConcurrentWritersDisjointKeys)
{
    TestStore ts;
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kPerThread; i++) {
                const uint64_t key = static_cast<uint64_t>(t) * 1000000 + i;
                ASSERT_TRUE(ts.db->put(key, valueFor(key)).isOk());
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(ts.db->size(), kThreads * kPerThread);
    for (int t = 0; t < kThreads; t++) {
        for (uint64_t i = 0; i < kPerThread; i += 97) {
            const uint64_t key = static_cast<uint64_t>(t) * 1000000 + i;
            std::string v;
            ASSERT_TRUE(ts.db->get(key, &v).isOk());
            EXPECT_EQ(v, valueFor(key));
        }
    }
}

TEST(PrismDbTest, ConcurrentReadersAndWriters)
{
    TestStore ts;
    for (uint64_t k = 0; k < 1000; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t round = 1;
        while (!stop.load()) {
            for (uint64_t k = 0; k < 1000; k += 10)
                ts.db->put(k, valueFor(k + round));
            round++;
        }
    });
    std::thread reader([&] {
        while (!stop.load()) {
            for (uint64_t k = 0; k < 1000; k += 3) {
                std::string v;
                const Status st = ts.db->get(k, &v);
                ASSERT_TRUE(st.isOk()) << st.toString();
                ASSERT_EQ(v.size(), 128u);
            }
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    writer.join();
    reader.join();
}

TEST(PrismDbTest, DetectsCorruptedSsdRecord)
{
    // SVC off: a write-back-admitted DRAM copy would mask the flipped
    // byte; corruption detection lives on the device read path.
    TestStore ts(1, /*open_now=*/false);
    ts.opts.enable_svc = false;
    ts.db = PrismDb::open(ts.opts, ts.region, ts.ssds);
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    ts.db->flushAll();

    // Locate a value on SSD through the store's own metadata and flip a
    // payload byte directly on the device.
    const auto h = ts.db->keyIndex().lookup(123);
    ASSERT_TRUE(h.has_value());
    const core::ValueAddr addr = ts.db->hsit().loadPrimary(*h);
    ASSERT_TRUE(addr.isVs());
    uint8_t byte;
    const uint64_t victim_off =
        addr.offset() + sizeof(core::ValueRecordHeader) + 5;
    ts.ssds[addr.ssdId()]->readSync(victim_off, &byte, 1);
    byte ^= 0xFF;
    ts.ssds[addr.ssdId()]->writeSync(victim_off, &byte, 1);

    std::string v;
    const Status st = ts.db->get(123, &v);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.toString();
    // Other keys remain readable.
    EXPECT_TRUE(ts.db->get(124, &v).isOk());
}

TEST(PrismDbTest, StatsAccounting)
{
    TestStore ts;
    for (uint64_t k = 0; k < 100; k++)
        ASSERT_TRUE(ts.db->put(k, valueFor(k)).isOk());
    std::string v;
    for (uint64_t k = 0; k < 100; k++)
        ASSERT_TRUE(ts.db->get(k, &v).isOk());
    EXPECT_EQ(ts.db->opStats().puts.load(), 100u);
    EXPECT_EQ(ts.db->opStats().gets.load(), 100u);
    // All values still in PWB: reads are NVM hits.
    EXPECT_EQ(ts.db->opStats().pwb_hits.load(), 100u);
    EXPECT_GT(ts.db->nvmIndexBytes(), 0u);
}

}  // namespace
}  // namespace prism::core
