/**
 * @file
 * Unit tests for the persistent-memory toolkit: region lifecycle, the
 * cache-line persistence model (flush/fence/crash), and the allocator.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "pmem/pmem_allocator.h"
#include "pmem/pmem_region.h"
#include "sim/device_profile.h"

namespace prism::pmem {
namespace {

std::shared_ptr<sim::NvmDevice>
makeNvm(uint64_t bytes = 16 << 20)
{
    return std::make_shared<sim::NvmDevice>(
        bytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
}

TEST(PmemRegionTest, FormatAndAttach)
{
    auto nvm = makeNvm();
    EXPECT_FALSE(PmemRegion::isFormatted(*nvm));
    {
        PmemRegion region(nvm, /*format=*/true);
        region.setRoot(4096);
    }
    EXPECT_TRUE(PmemRegion::isFormatted(*nvm));
    PmemRegion attached(nvm, /*format=*/false);
    EXPECT_EQ(attached.root(), 4096u);
}

TEST(PmemRegionTest, OffsetTranslationRoundtrip)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    void *p = region.translate(512);
    EXPECT_EQ(region.offsetOf(p), 512u);
    EXPECT_EQ(region.translate(kNullOff), nullptr);
    EXPECT_EQ(region.offsetOf(nullptr), kNullOff);
}

TEST(PmemRegionTest, HighWaterAdvancesAndPersists)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    const POff a = region.advanceHighWater(100);
    const POff b = region.advanceHighWater(100);
    EXPECT_NE(a, kNullOff);
    EXPECT_GE(b, a + 128);  // cache-line rounded

    PmemRegion attached(nvm, false);
    EXPECT_EQ(attached.highWater(), region.highWater());
}

TEST(PmemRegionTest, HighWaterExhaustionReturnsNull)
{
    auto nvm = makeNvm(1 << 20);
    PmemRegion region(nvm, true);
    EXPECT_EQ(region.advanceHighWater(2 << 20), kNullOff);
}

TEST(PersistenceModelTest, UnfencedStoreDiesInCrash)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    region.enableTracking();
    auto *p = region.as<uint64_t>(region.advanceHighWater(64));

    *p = 0xDEAD;                      // store, no flush
    region.simulateCrash();
    EXPECT_EQ(*p, 0u);                // reverted

    *p = 0xBEEF;
    region.flush(p, 8);               // staged, not fenced
    region.simulateCrash();
    EXPECT_EQ(*p, 0u);                // still reverted

    *p = 0xC0DE;
    region.persist(p, 8);             // flush + fence
    region.simulateCrash();
    EXPECT_EQ(*p, 0xC0DEu);           // durable
}

TEST(PersistenceModelTest, CrashRevertsToLastFencedValue)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    region.enableTracking();
    auto *p = region.as<uint64_t>(region.advanceHighWater(64));
    *p = 1;
    region.persist(p, 8);
    *p = 2;  // newer value never persisted
    region.simulateCrash();
    EXPECT_EQ(*p, 1u);
}

TEST(PersistenceModelTest, WholeCacheLineCoPersists)
{
    // Two fields share a 64 B line: flushing one persists its neighbor
    // too — exactly the over-persistence real hardware exhibits.
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    region.enableTracking();
    auto *line = region.as<uint64_t>(region.advanceHighWater(64));
    line[0] = 11;
    line[1] = 22;
    region.persist(&line[0], 8);  // flush only the first field
    region.simulateCrash();
    EXPECT_EQ(line[0], 11u);
    EXPECT_EQ(line[1], 22u);
}

TEST(PersistenceModelTest, FencesArePerThread)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    region.enableTracking();
    auto *a = region.as<uint64_t>(region.advanceHighWater(64));
    auto *b = region.as<uint64_t>(region.advanceHighWater(64));

    // Thread 2 stages a flush but never fences; thread 1's fence must
    // not commit it.
    std::thread t2([&] {
        *b = 99;
        region.flush(b, 8);
    });
    t2.join();
    *a = 1;
    region.persist(a, 8);
    region.simulateCrash();
    EXPECT_EQ(*a, 1u);
    EXPECT_EQ(*b, 0u);
}

TEST(PersistenceModelTest, SnapshotMatchesCrashState)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    region.enableTracking();
    auto *p = region.as<uint64_t>(region.advanceHighWater(64));
    *p = 7;
    region.persist(p, 8);
    *p = 8;  // unfenced

    std::vector<uint8_t> image;
    region.snapshotDurableTo(image);
    uint64_t snap_val;
    std::memcpy(&snap_val, image.data() + region.offsetOf(p), 8);
    EXPECT_EQ(snap_val, 7u);
}

TEST(PmemAllocatorTest, ClassRoundingAndReuse)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    PmemAllocator alloc(region);

    EXPECT_EQ(PmemAllocator::classFor(1), 0);
    EXPECT_EQ(PmemAllocator::classFor(64), 0);
    EXPECT_EQ(PmemAllocator::classFor(65), 1);
    EXPECT_EQ(PmemAllocator::classFor(64 * 1024), 10);
    EXPECT_EQ(PmemAllocator::classFor(64 * 1024 + 1), -1);

    const POff a = alloc.alloc(100);
    ASSERT_NE(a, kNullOff);
    alloc.free(a, 100);
    const POff b = alloc.alloc(100);
    EXPECT_EQ(b, a);  // free-list reuse
}

TEST(PmemAllocatorTest, DistinctLiveAllocations)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    PmemAllocator alloc(region);
    std::set<POff> offs;
    for (int i = 0; i < 1000; i++) {
        const POff off = alloc.alloc(128);
        ASSERT_NE(off, kNullOff);
        ASSERT_TRUE(offs.insert(off).second) << "duplicate allocation";
    }
    EXPECT_GE(alloc.allocatedBytes(), 1000u * 128);
}

TEST(PmemAllocatorTest, RawExtents)
{
    auto nvm = makeNvm();
    PmemRegion region(nvm, true);
    PmemAllocator alloc(region);
    const POff big = alloc.allocRaw(4 << 20);
    ASSERT_NE(big, kNullOff);
    // Raw extents are carved directly from the frontier; a subsequent
    // class allocation must not overlap.
    const POff small = alloc.alloc(64);
    EXPECT_GE(small, big + (4 << 20));
}

TEST(PmemAllocatorTest, ExhaustionReturnsNull)
{
    auto nvm = makeNvm(1 << 20);
    PmemRegion region(nvm, true);
    PmemAllocator alloc(region);
    POff off;
    int count = 0;
    while ((off = alloc.alloc(32 * 1024)) != kNullOff)
        count++;
    EXPECT_GT(count, 10);
    EXPECT_EQ(alloc.alloc(32 * 1024), kNullOff);
}

TEST(PmemAllocatorTest, ConcurrentAllocationsDisjoint)
{
    auto nvm = makeNvm(64 << 20);
    PmemRegion region(nvm, true);
    PmemAllocator alloc(region);
    std::vector<std::vector<POff>> per_thread(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 2000; i++)
                per_thread[t].push_back(alloc.alloc(256));
        });
    }
    for (auto &th : threads)
        th.join();
    std::set<POff> all;
    for (const auto &v : per_thread) {
        for (const POff off : v) {
            ASSERT_NE(off, kNullOff);
            ASSERT_TRUE(all.insert(off).second);
        }
    }
}

}  // namespace
}  // namespace prism::pmem
