/**
 * @file
 * Unit tests for the KVell baseline: slab/page layout, worker
 * partitioning, concurrent clients, scans, and full-scan recovery.
 */
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/rand.h"
#include "kvell/kvell.h"
#include "sim/device_profile.h"

namespace prism::kvell {
namespace {

struct KvellFixture {
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<Kvell> db;

    explicit KvellFixture(KvellOptions opts = {}, int num_ssds = 2)
    {
        for (int i = 0; i < num_ssds; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                128ull << 20, sim::kSamsung980ProProfile,
                /*timing=*/false));
        }
        db = std::make_unique<Kvell>(opts, ssds);
    }
};

TEST(KvellTest, PutGetDelete)
{
    KvellFixture fx;
    ASSERT_TRUE(fx.db->put(1, "one").isOk());
    ASSERT_TRUE(fx.db->put(2, "two").isOk());
    std::string v;
    ASSERT_TRUE(fx.db->get(1, &v).isOk());
    EXPECT_EQ(v, "one");
    EXPECT_TRUE(fx.db->get(3, &v).isNotFound());
    ASSERT_TRUE(fx.db->del(1).isOk());
    EXPECT_TRUE(fx.db->get(1, &v).isNotFound());
    EXPECT_TRUE(fx.db->del(1).isNotFound());
    EXPECT_EQ(fx.db->size(), 1u);
}

TEST(KvellTest, RejectsOversizedValues)
{
    KvellFixture fx;
    const std::string big(4096, 'b');
    EXPECT_EQ(fx.db->put(1, big).code(), StatusCode::kInvalidArgument);
}

TEST(KvellTest, OverwriteInPlace)
{
    KvellFixture fx;
    for (int round = 0; round < 10; round++) {
        for (uint64_t k = 0; k < 500; k++) {
            ASSERT_TRUE(
                fx.db->put(k, "round" + std::to_string(round)).isOk());
        }
    }
    std::string v;
    for (uint64_t k = 0; k < 500; k++) {
        ASSERT_TRUE(fx.db->get(k, &v).isOk());
        EXPECT_EQ(v, "round9");
    }
    EXPECT_EQ(fx.db->size(), 500u);
}

TEST(KvellTest, SlotReuseAfterDelete)
{
    KvellFixture fx;
    std::string value(1000, 'r');
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(fx.db->put(k, value).isOk());
    const uint64_t written_before =
        fx.db->ssdBytesWritten();
    for (uint64_t k = 0; k < 2000; k++)
        ASSERT_TRUE(fx.db->del(k).isOk());
    for (uint64_t k = 2000; k < 4000; k++)
        ASSERT_TRUE(fx.db->put(k, value).isOk());
    // Freed slots are reused; writes continue fine.
    EXPECT_EQ(fx.db->size(), 2000u);
    EXPECT_GT(fx.db->ssdBytesWritten(), written_before);
}

TEST(KvellTest, ConcurrentClients)
{
    KvellFixture fx;
    constexpr int kClients = 4;
    constexpr uint64_t kPerClient = 3000;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; c++) {
        clients.emplace_back([&, c] {
            std::string v;
            for (uint64_t i = 0; i < kPerClient; i++) {
                const uint64_t key =
                    static_cast<uint64_t>(c) * 100000 + i;
                ASSERT_TRUE(
                    fx.db->put(key, "c" + std::to_string(key)).isOk());
                ASSERT_TRUE(fx.db->get(key, &v).isOk());
                ASSERT_EQ(v, "c" + std::to_string(key));
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(fx.db->size(), kClients * kPerClient);
}

TEST(KvellTest, ScanMergesWorkerResults)
{
    KvellFixture fx;
    for (uint64_t k = 0; k < 3000; k++)
        ASSERT_TRUE(fx.db->put(k * 10, std::to_string(k)).isOk());
    std::vector<std::pair<uint64_t, std::string>> out;
    ASSERT_TRUE(fx.db->scan(1000, 20, &out).isOk());
    ASSERT_GE(out.size(), 15u);  // per-worker prefetch may under-fill
    EXPECT_EQ(out[0].first, 1000u);
    for (size_t i = 1; i < out.size(); i++) {
        EXPECT_LT(out[i - 1].first, out[i].first);
        EXPECT_EQ(out[i].second, std::to_string(out[i].first / 10));
    }
}

TEST(KvellTest, FullScanRecoveryRebuildsIndexes)
{
    KvellFixture fx;
    std::map<uint64_t, std::string> ref;
    Xorshift rng(9);
    for (int i = 0; i < 8000; i++) {
        const uint64_t key = rng.nextUniform(3000);
        const std::string value = "v" + std::to_string(i);
        ASSERT_TRUE(fx.db->put(key, value).isOk());
        ref[key] = value;
    }
    for (uint64_t k = 0; k < 3000; k += 3) {
        if (ref.erase(k) > 0)
            ASSERT_TRUE(fx.db->del(k).isOk());
    }

    const uint64_t ns = fx.db->recoverByFullScan();
    EXPECT_GT(ns, 0u);
    EXPECT_EQ(fx.db->size(), ref.size());
    std::string v;
    for (const auto &[k, expected] : ref) {
        ASSERT_TRUE(fx.db->get(k, &v).isOk()) << k;
        ASSERT_EQ(v, expected) << k;
    }
}

TEST(KvellTest, PageGranularWritesAmplify)
{
    // KVell's defining cost: a small update rewrites its whole 4 KB
    // page (Fig. 12's KVell series).
    KvellFixture fx;
    std::string small(128, 'w');
    for (uint64_t k = 0; k < 1000; k++)
        ASSERT_TRUE(fx.db->put(k, small).isOk());
    const double waf =
        static_cast<double>(fx.db->ssdBytesWritten()) /
        static_cast<double>(fx.db->stats().user_bytes_written.load());
    EXPECT_GT(waf, 2.0);
}

}  // namespace
}  // namespace prism::kvell
