/**
 * @file
 * Crash-consistency property tests (§5.4/§5.5 of the paper).
 *
 * The pmem layer runs in tracking mode: stores become durable only via
 * flush+fence, and a "crash" yields exactly the durable image — the
 * adversarial Optane failure model. The harness captures a crash image
 * (NVM durable snapshot + SSD contents), rebuilds devices from it, runs
 * Prism's recovery, and checks invariants:
 *
 *  - completed operations are durable (durable linearizability);
 *  - no torn or fabricated values ever appear;
 *  - recovery itself is deterministic and idempotent.
 *
 * Concurrent-crash tests disable Value Storage GC (chunk recycling)
 * so the two-device snapshot pair is consistent by append-only-ness;
 * GC crash coverage uses quiesced deterministic crash points instead.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include <map>

#include "common/fault.h"
#include "common/rand.h"
#include "core/prism_db.h"
#include "sim/device_profile.h"

namespace prism::core {
namespace {

constexpr uint64_t kNvmBytes = 96ull * 1024 * 1024;
constexpr uint64_t kSsdBytes = 128ull * 1024 * 1024;

PrismOptions
crashOptions()
{
    PrismOptions opts;
    opts.pwb_size_bytes = 256 * 1024;  // small: reclamation is constant
    opts.svc_capacity_bytes = 2 * 1024 * 1024;
    opts.hsit_capacity = 32 * 1024;
    opts.chunk_bytes = 64 * 1024;
    return opts;
}

/** Encode (key, version) into a self-validating value. */
std::string
versionedValue(uint64_t key, uint64_t version)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "k%llu.v%llu.",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(version));
    std::string v(buf);
    v.resize(48, '#');
    return v;
}

/** @return the version if @p value is well-formed for @p key, else -1. */
int64_t
parseVersion(uint64_t key, const std::string &value)
{
    unsigned long long k = 0, ver = 0;
    if (std::sscanf(value.c_str(), "k%llu.v%llu.", &k, &ver) != 2)
        return -1;
    if (k != key || value != versionedValue(key, ver))
        return -1;
    return static_cast<int64_t>(ver);
}

/** A crashable Prism instance on tracked devices. */
struct CrashRig {
    PrismOptions opts;
    std::shared_ptr<sim::NvmDevice> nvm;
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    std::unique_ptr<PrismDb> db;

    explicit CrashRig(const PrismOptions &o, int num_ssds = 2) : opts(o)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_shared<pmem::PmemRegion>(nvm, /*format=*/true);
        region->enableTracking();
        for (int i = 0; i < num_ssds; i++) {
            ssds.push_back(std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile, /*timing=*/false));
        }
        db = PrismDb::open(opts, region, ssds);
    }

    /**
     * Capture a crash image. Safe mid-workload when Value Storage
     * chunks are never recycled (append-only SSD state): the NVM
     * durable image is captured first; any SSD write that lands after
     * it is unreferenced by that image.
     */
    void
    captureCrashImage(std::vector<uint8_t> &nvm_img,
                      std::vector<std::vector<uint8_t>> &ssd_imgs)
    {
        region->snapshotDurableTo(nvm_img);
        ssd_imgs.resize(ssds.size());
        for (size_t i = 0; i < ssds.size(); i++)
            ssds[i]->snapshotTo(ssd_imgs[i]);
    }

    /** Build a fresh store from a crash image and run recovery. */
    std::unique_ptr<PrismDb>
    recoverFromImage(const std::vector<uint8_t> &nvm_img,
                     const std::vector<std::vector<uint8_t>> &ssd_imgs,
                     std::shared_ptr<pmem::PmemRegion> *region_out = nullptr)
    {
        auto nvm2 = std::make_shared<sim::NvmDevice>(
            kNvmBytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        nvm2->loadImage(nvm_img.data(), nvm_img.size());
        auto region2 =
            std::make_shared<pmem::PmemRegion>(nvm2, /*format=*/false);
        std::vector<std::shared_ptr<sim::SsdDevice>> ssds2;
        for (const auto &img : ssd_imgs) {
            auto d = std::make_shared<sim::SsdDevice>(
                kSsdBytes, sim::kSamsung980ProProfile, /*timing=*/false);
            d->loadFrom(img);
            ssds2.push_back(std::move(d));
        }
        if (region_out != nullptr)
            *region_out = region2;
        return PrismDb::recover(opts, region2, ssds2);
    }
};

TEST(CrashTest, CompletedOpsAreDurableAtEveryCrashPoint)
{
    // Deterministic single-threaded crash points: after op i, the
    // recovered store must contain exactly the first i effects.
    constexpr int kOps = 300;
    CrashRig rig(crashOptions(), 1);
    std::map<uint64_t, uint64_t> expected;  // key -> version

    std::vector<uint8_t> nvm_img;
    std::vector<std::vector<uint8_t>> ssd_imgs;
    Xorshift rng(11);
    for (int i = 0; i < kOps; i++) {
        const uint64_t key = rng.nextUniform(40);
        const uint64_t version = static_cast<uint64_t>(i) + 1;
        ASSERT_TRUE(rig.db->put(key, versionedValue(key, version)).isOk());
        expected[key] = version;

        if (i % 37 == 0 || i == kOps - 1) {
            rig.captureCrashImage(nvm_img, ssd_imgs);
            auto recovered = rig.recoverFromImage(nvm_img, ssd_imgs);
            ASSERT_EQ(recovered->size(), expected.size()) << "op " << i;
            for (const auto &[k, ver] : expected) {
                std::string v;
                ASSERT_TRUE(recovered->get(k, &v).isOk())
                    << "op " << i << " key " << k;
                EXPECT_EQ(parseVersion(k, v), static_cast<int64_t>(ver))
                    << "op " << i << " key " << k;
            }
        }
    }
}

TEST(CrashTest, DeletesAreDurable)
{
    CrashRig rig(crashOptions(), 1);
    for (uint64_t k = 0; k < 100; k++)
        ASSERT_TRUE(rig.db->put(k, versionedValue(k, 1)).isOk());
    for (uint64_t k = 0; k < 100; k += 2)
        ASSERT_TRUE(rig.db->del(k).isOk());

    std::vector<uint8_t> nvm_img;
    std::vector<std::vector<uint8_t>> ssd_imgs;
    rig.captureCrashImage(nvm_img, ssd_imgs);
    auto recovered = rig.recoverFromImage(nvm_img, ssd_imgs);
    EXPECT_EQ(recovered->size(), 50u);
    std::string v;
    EXPECT_TRUE(recovered->get(0, &v).isNotFound());
    ASSERT_TRUE(recovered->get(1, &v).isOk());
    EXPECT_EQ(parseVersion(1, v), 1);
}

TEST(CrashTest, CrashAfterReclaimKeepsSsdValues)
{
    // Fill far beyond the PWB so most values live on SSD at crash time.
    PrismOptions opts = crashOptions();
    CrashRig rig(opts, 2);
    constexpr uint64_t kKeys = 3000;
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(rig.db->put(k, versionedValue(k, 7)).isOk());
    rig.db->flushAll();

    std::vector<uint8_t> nvm_img;
    std::vector<std::vector<uint8_t>> ssd_imgs;
    rig.captureCrashImage(nvm_img, ssd_imgs);
    auto recovered = rig.recoverFromImage(nvm_img, ssd_imgs);
    ASSERT_EQ(recovered->size(), kKeys);
    std::string v;
    for (uint64_t k = 0; k < kKeys; k += 13) {
        ASSERT_TRUE(recovered->get(k, &v).isOk()) << k;
        EXPECT_EQ(parseVersion(k, v), 7) << k;
    }
}

TEST(CrashTest, ConcurrentWritersNeverLoseAckedData)
{
    // Writers update disjoint key ranges with increasing versions while
    // the controller captures crash images mid-flight. Invariant per
    // key: acked-before-capture <= recovered version <= last attempted,
    // and the value is never torn.
    PrismOptions opts = crashOptions();
    opts.vs_gc_watermark = 1.1;  // never GC: append-only SSD state
    CrashRig rig(opts, 2);

    constexpr int kWriters = 3;
    constexpr uint64_t kKeysPerWriter = 32;
    constexpr uint64_t kTotalKeys = kWriters * kKeysPerWriter;
    std::vector<std::atomic<uint64_t>> acked(kTotalKeys);
    std::vector<std::atomic<uint64_t>> attempted(kTotalKeys);
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
        writers.emplace_back([&, w] {
            Xorshift rng(static_cast<uint64_t>(w) + 99);
            uint64_t version = 0;
            while (!stop.load(std::memory_order_acquire)) {
                const uint64_t key =
                    static_cast<uint64_t>(w) * kKeysPerWriter +
                    rng.nextUniform(kKeysPerWriter);
                version++;
                attempted[key].store(version, std::memory_order_release);
                ASSERT_TRUE(
                    rig.db->put(key, versionedValue(key, version)).isOk());
                acked[key].store(version, std::memory_order_release);
            }
        });
    }

    for (int round = 0; round < 6; round++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        // Lower bound first: anything acked *before* the capture must
        // survive. (Acks racing the capture only raise the recovered
        // version, never violate the bound.)
        std::vector<uint64_t> acked_floor(kTotalKeys);
        for (uint64_t k = 0; k < kTotalKeys; k++)
            acked_floor[k] = acked[k].load(std::memory_order_acquire);

        std::vector<uint8_t> nvm_img;
        std::vector<std::vector<uint8_t>> ssd_imgs;
        rig.captureCrashImage(nvm_img, ssd_imgs);

        std::vector<uint64_t> attempted_ceil(kTotalKeys);
        for (uint64_t k = 0; k < kTotalKeys; k++) {
            attempted_ceil[k] =
                attempted[k].load(std::memory_order_acquire);
        }

        auto recovered = rig.recoverFromImage(nvm_img, ssd_imgs);
        for (uint64_t k = 0; k < kTotalKeys; k++) {
            std::string v;
            const Status st = recovered->get(k, &v);
            if (acked_floor[k] == 0) {
                // Never acked: may or may not exist; if it does, it must
                // still be well-formed.
                if (st.isOk()) {
                    EXPECT_GE(parseVersion(k, v), 1) << "key " << k;
                }
                continue;
            }
            ASSERT_TRUE(st.isOk()) << "round " << round << " key " << k
                                   << " status " << st.toString()
                                   << " acked_floor " << acked_floor[k]
                                   << " attempted " << attempted_ceil[k];
            const int64_t ver = parseVersion(k, v);
            ASSERT_GE(ver, 1) << "torn value, key " << k;
            EXPECT_GE(static_cast<uint64_t>(ver), acked_floor[k])
                << "lost acked write, key " << k;
            EXPECT_LE(static_cast<uint64_t>(ver),
                      attempted_ceil[k] + 1)
                << "fabricated version, key " << k;
        }
    }
    stop.store(true, std::memory_order_release);
    for (auto &t : writers)
        t.join();
}

TEST(CrashTest, CrashAroundGcIsSafe)
{
    // Quiesced crash points around explicit GC passes: GC relocations
    // must be crash-atomic thanks to the durable pointer CAS.
    PrismOptions opts = crashOptions();
    CrashRig rig(opts, 1);
    constexpr uint64_t kKeys = 800;
    std::map<uint64_t, uint64_t> expected;
    for (int round = 1; round <= 12; round++) {
        for (uint64_t k = 0; k < kKeys; k++) {
            ASSERT_TRUE(rig.db->put(
                k, versionedValue(k, static_cast<uint64_t>(round)))
                            .isOk());
            expected[k] = static_cast<uint64_t>(round);
        }
        rig.db->flushAll();
        rig.db->forceGc();

        std::vector<uint8_t> nvm_img;
        std::vector<std::vector<uint8_t>> ssd_imgs;
        rig.captureCrashImage(nvm_img, ssd_imgs);
        auto recovered = rig.recoverFromImage(nvm_img, ssd_imgs);
        ASSERT_EQ(recovered->size(), expected.size());
        std::string v;
        for (uint64_t k = 0; k < kKeys; k += 31) {
            ASSERT_TRUE(recovered->get(k, &v).isOk())
                << "round " << round << " key " << k;
            EXPECT_EQ(parseVersion(k, v),
                      static_cast<int64_t>(expected[k]))
                << "round " << round << " key " << k;
        }
    }
}

TEST(CrashTest, RecoveryIsIdempotent)
{
    CrashRig rig(crashOptions(), 1);
    for (uint64_t k = 0; k < 500; k++)
        ASSERT_TRUE(rig.db->put(k, versionedValue(k, 3)).isOk());

    std::vector<uint8_t> nvm_img;
    std::vector<std::vector<uint8_t>> ssd_imgs;
    rig.captureCrashImage(nvm_img, ssd_imgs);

    // Recover, then crash the recovered instance immediately (no new
    // durable writes should be required for a second recovery).
    std::shared_ptr<pmem::PmemRegion> region2;
    auto first = rig.recoverFromImage(nvm_img, ssd_imgs, &region2);
    ASSERT_EQ(first->size(), 500u);
    first.reset();

    std::vector<uint8_t> nvm_img2(region2->device().raw(),
                                  region2->device().raw() + kNvmBytes);
    auto nvm3 = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    nvm3->loadImage(nvm_img2.data(), nvm_img2.size());
    auto region3 = std::make_shared<pmem::PmemRegion>(nvm3, false);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds3;
    for (const auto &img : ssd_imgs) {
        auto d = std::make_shared<sim::SsdDevice>(
            kSsdBytes, sim::kSamsung980ProProfile, false);
        d->loadFrom(img);
        ssds3.push_back(std::move(d));
    }
    auto second = PrismDb::recover(rig.opts, region3, ssds3);
    ASSERT_EQ(second->size(), 500u);
    std::string v;
    for (uint64_t k = 0; k < 500; k += 17) {
        ASSERT_TRUE(second->get(k, &v).isOk());
        EXPECT_EQ(parseVersion(k, v), 3);
    }
}

TEST(CrashTest, CrashDuringRecoveryIsIdempotent)
{
    // Crash *inside* recovery (at the db.recover.midpoint fault site,
    // after the durable orphan repairs) and recover again from that
    // image: the doubly-recovered store must match the straight-through
    // recovery exactly. Recovery repairs must be idempotent.
    CrashRig rig(crashOptions(), 2);
    constexpr uint64_t kKeys = 600;
    for (uint64_t k = 0; k < kKeys; k++)
        ASSERT_TRUE(rig.db->put(k, versionedValue(k, 5)).isOk());

    std::vector<uint8_t> nvm_img;
    std::vector<std::vector<uint8_t>> ssd_imgs;
    rig.captureCrashImage(nvm_img, ssd_imgs);

    // First recovery, on a *tracked* region so the mid-recovery durable
    // image can be captured the instant the fault site fires.
    auto nvm2 = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    nvm2->loadImage(nvm_img.data(), nvm_img.size());
    auto region2 = std::make_shared<pmem::PmemRegion>(nvm2, false);
    region2->enableTracking();
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds2;
    for (const auto &img : ssd_imgs) {
        auto d = std::make_shared<sim::SsdDevice>(
            kSsdBytes, sim::kSamsung980ProProfile, false);
        d->loadFrom(img);
        ssds2.push_back(std::move(d));
    }
    auto &freg = fault::FaultRegistry::global();
    std::vector<uint8_t> mid_img;
    freg.onFire("db.recover.midpoint", [&](uint64_t) {
        if (mid_img.empty())
            region2->snapshotDurableTo(mid_img);
    });
    fault::FaultSpec once;
    once.trigger = fault::Trigger::kOnce;
    freg.arm("db.recover.midpoint", once);
    auto first = PrismDb::recover(rig.opts, region2, ssds2);
    freg.disarmAll();
    ASSERT_FALSE(mid_img.empty()) << "recovery never hit the crash site";
    ASSERT_EQ(first->size(), kKeys);

    // Second recovery, from the image the mid-recovery crash left.
    auto nvm3 = std::make_shared<sim::NvmDevice>(
        kNvmBytes, sim::kOptaneDcpmmProfile, false);
    nvm3->loadImage(mid_img.data(), mid_img.size());
    auto region3 = std::make_shared<pmem::PmemRegion>(nvm3, false);
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds3;
    for (const auto &img : ssd_imgs) {
        auto d = std::make_shared<sim::SsdDevice>(
            kSsdBytes, sim::kSamsung980ProProfile, false);
        d->loadFrom(img);
        ssds3.push_back(std::move(d));
    }
    auto second = PrismDb::recover(rig.opts, region3, ssds3);
    ASSERT_EQ(second->size(), first->size());
    for (uint64_t k = 0; k < kKeys; k++) {
        std::string v1, v2;
        ASSERT_TRUE(first->get(k, &v1).isOk()) << k;
        ASSERT_TRUE(second->get(k, &v2).isOk()) << k;
        EXPECT_EQ(v1, v2) << k;
        EXPECT_EQ(parseVersion(k, v2), 5) << k;
    }
    // Scans must agree too (index structure, not just point lookups).
    std::vector<std::pair<uint64_t, std::string>> s1, s2;
    ASSERT_TRUE(first->scan(0, kKeys, &s1).isOk());
    ASSERT_TRUE(second->scan(0, kKeys, &s2).isOk());
    ASSERT_EQ(s1.size(), s2.size());
    for (size_t i = 0; i < s1.size(); i++) {
        EXPECT_EQ(s1[i].first, s2[i].first);
        EXPECT_EQ(s1[i].second, s2[i].second);
    }
}

}  // namespace
}  // namespace prism::core
