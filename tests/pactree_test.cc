/**
 * @file
 * Unit and property tests for the Persistent Key Index (PacTree):
 * functional correctness, agreement with a reference map under random
 * operations, concurrency, and crash recovery including interrupted
 * splits.
 */
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <thread>

#include "common/rand.h"
#include "index/dram_index.h"
#include "index/pactree.h"
#include "sim/device_profile.h"

namespace prism::index {
namespace {

struct TreeFixture {
    std::shared_ptr<sim::NvmDevice> nvm;
    std::unique_ptr<pmem::PmemRegion> region;
    std::unique_ptr<pmem::PmemAllocator> alloc;
    std::unique_ptr<PacTree> tree;

    explicit TreeFixture(uint64_t bytes = 64 << 20)
    {
        nvm = std::make_shared<sim::NvmDevice>(
            bytes, sim::kOptaneDcpmmProfile, /*timing=*/false);
        region = std::make_unique<pmem::PmemRegion>(nvm, true);
        alloc = std::make_unique<pmem::PmemAllocator>(*region);
        tree = PacTree::create(*region, *alloc);
    }

    void
    reopen()
    {
        const pmem::POff root = tree->rootOff();
        tree.reset();
        tree = PacTree::recover(*region, *alloc, root);
    }
};

TEST(PacTreeTest, InsertLookupRemove)
{
    TreeFixture fx;
    EXPECT_FALSE(fx.tree->lookup(10).has_value());
    EXPECT_TRUE(fx.tree->insertOrGet(10, 100).inserted);
    EXPECT_EQ(fx.tree->lookup(10).value(), 100u);
    EXPECT_TRUE(fx.tree->remove(10));
    EXPECT_FALSE(fx.tree->lookup(10).has_value());
    EXPECT_FALSE(fx.tree->remove(10));
}

TEST(PacTreeTest, InsertOrGetReturnsExisting)
{
    TreeFixture fx;
    EXPECT_TRUE(fx.tree->insertOrGet(5, 50).inserted);
    const auto res = fx.tree->insertOrGet(5, 999);
    EXPECT_FALSE(res.inserted);
    EXPECT_EQ(res.handle, 50u);
    EXPECT_EQ(fx.tree->lookup(5).value(), 50u);
}

TEST(PacTreeTest, ManyKeysForceSplits)
{
    TreeFixture fx;
    constexpr uint64_t kKeys = 50000;
    for (uint64_t i = 0; i < kKeys; i++)
        ASSERT_TRUE(fx.tree->insertOrGet(hash64(i), i).inserted) << i;
    EXPECT_EQ(fx.tree->size(), kKeys);
    for (uint64_t i = 0; i < kKeys; i += 7)
        ASSERT_EQ(fx.tree->lookup(hash64(i)).value(), i) << i;
    EXPECT_GT(fx.tree->nvmBytes(), kKeys * 16);
}

TEST(PacTreeTest, ScanIsSortedAndBounded)
{
    TreeFixture fx;
    for (uint64_t i = 0; i < 2000; i++)
        fx.tree->insertOrGet(i * 100, i);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    EXPECT_EQ(fx.tree->scan(5000, 30, out), 30u);
    EXPECT_EQ(out[0].first, 5000u);
    for (size_t i = 1; i < out.size(); i++)
        EXPECT_LT(out[i - 1].first, out[i].first);
    // Scan near the end yields only the remaining keys (the largest
    // key is 1999 * 100).
    out.clear();
    EXPECT_EQ(fx.tree->scan(1999 * 100 - 50, 30, out), 1u);
    out.clear();
    EXPECT_EQ(fx.tree->scan(1999 * 100 + 1, 30, out), 0u);
}

TEST(PacTreeTest, ForEachVisitsAllInOrder)
{
    TreeFixture fx;
    for (uint64_t i = 0; i < 5000; i++)
        fx.tree->insertOrGet(hash64(i), i);
    uint64_t prev = 0;
    size_t count = 0;
    bool first = true;
    fx.tree->forEach([&](uint64_t key, uint64_t handle) {
        if (!first)
            EXPECT_GT(key, prev);
        EXPECT_EQ(key, hash64(handle));
        prev = key;
        first = false;
        count++;
    });
    EXPECT_EQ(count, 5000u);
}

TEST(PacTreeTest, AgreesWithReferenceUnderRandomOps)
{
    TreeFixture fx;
    std::map<uint64_t, uint64_t> ref;
    Xorshift rng(77);
    for (int i = 0; i < 50000; i++) {
        const uint64_t key = rng.nextUniform(3000) * 17;
        const double p = rng.nextDouble();
        if (p < 0.5) {
            const uint64_t handle = rng.next();
            const auto res = fx.tree->insertOrGet(key, handle);
            auto [it, inserted] = ref.try_emplace(key, handle);
            ASSERT_EQ(res.inserted, inserted);
            ASSERT_EQ(res.handle, it->second);
        } else if (p < 0.75) {
            ASSERT_EQ(fx.tree->remove(key), ref.erase(key) > 0);
        } else {
            const auto got = fx.tree->lookup(key);
            const auto it = ref.find(key);
            ASSERT_EQ(got.has_value(), it != ref.end());
            if (got.has_value())
                ASSERT_EQ(*got, it->second);
        }
    }
    EXPECT_EQ(fx.tree->size(), ref.size());
}

TEST(PacTreeTest, SurvivesOrderlyReopen)
{
    TreeFixture fx;
    for (uint64_t i = 0; i < 20000; i++)
        fx.tree->insertOrGet(hash64(i), i);
    for (uint64_t i = 0; i < 20000; i += 2)
        fx.tree->remove(hash64(i));
    fx.reopen();
    EXPECT_EQ(fx.tree->size(), 10000u);
    EXPECT_FALSE(fx.tree->lookup(hash64(0)).has_value());
    EXPECT_EQ(fx.tree->lookup(hash64(1)).value(), 1u);
}

TEST(PacTreeTest, CrashRecoveryAtEveryStage)
{
    // With tracking on, crash after batches of inserts; recovered tree
    // must contain every completed insert (leaf writes are ordered:
    // slot persist before bitmap persist).
    TreeFixture fx;
    fx.region->enableTracking();
    std::map<uint64_t, uint64_t> expected;
    for (int batch = 0; batch < 20; batch++) {
        for (int i = 0; i < 500; i++) {
            const uint64_t key =
                hash64(static_cast<uint64_t>(batch) * 500 + i);
            fx.tree->insertOrGet(key, static_cast<uint64_t>(i));
            expected[key] = static_cast<uint64_t>(i);
        }
        fx.region->simulateCrash();
        fx.reopen();
        ASSERT_EQ(fx.tree->size(), expected.size()) << batch;
        // Spot-check a slice.
        int step = 0;
        for (const auto &[k, v] : expected) {
            if (step++ % 97 != 0)
                continue;
            ASSERT_EQ(fx.tree->lookup(k).value(), v);
        }
    }
}

TEST(PacTreeTest, ConcurrentInsertsAndLookups)
{
    TreeFixture fx;
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kPerThread; i++) {
                const uint64_t key =
                    hash64(static_cast<uint64_t>(t) * kPerThread + i);
                ASSERT_TRUE(fx.tree
                                ->insertOrGet(key,
                                              static_cast<uint64_t>(t))
                                .inserted);
                ASSERT_TRUE(fx.tree->lookup(key).has_value());
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(fx.tree->size(), kThreads * kPerThread);
}

TEST(PacTreeTest, ConcurrentInsertRaceOnSameKeys)
{
    // All threads race to insert the same keys; exactly one insert per
    // key may win, and all must agree on the winning handle.
    TreeFixture fx;
    constexpr int kThreads = 4;
    constexpr uint64_t kKeys = 2000;
    std::atomic<uint64_t> wins{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kKeys; i++) {
                const auto res = fx.tree->insertOrGet(
                    hash64(i), static_cast<uint64_t>(t) * kKeys + i);
                if (res.inserted)
                    wins.fetch_add(1);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(wins.load(), kKeys);
    EXPECT_EQ(fx.tree->size(), kKeys);
}

TEST(PacTreeTest, DirectoryShardsSpreadForDenseKeys)
{
    // Dense sequential keys (YCSB row ids) live far below 2^56, so a
    // fixed top-byte shard split would pile every directory entry — and
    // every lookup's lock acquisition — onto shard 0. The adaptive
    // shift must spread leaves across many shards instead.
    TreeFixture fx;
    constexpr uint64_t kKeys = 100000;
    for (uint64_t i = 0; i < kKeys; i++)
        ASSERT_TRUE(fx.tree->insertOrGet(i, i).inserted);
    // ~100k/64-per-leaf ≈ 1500+ leaves; with bit_width(100k)=17 the
    // shift settles at 9, mapping the key space over ~195 shards.
    EXPECT_GT(fx.tree->populatedShards(), 64);
    EXPECT_EQ(fx.tree->shardShift(),
              std::bit_width(kKeys - 1) - 8);

    // Ordered semantics survive the resharding.
    std::vector<std::pair<uint64_t, uint64_t>> out;
    ASSERT_EQ(fx.tree->scan(12345, 100, out), 100u);
    EXPECT_EQ(out[0].first, 12345u);
    for (size_t i = 1; i < out.size(); i++)
        EXPECT_EQ(out[i].first, out[i - 1].first + 1);

    // And the spread is what concurrent readers actually see: all
    // threads lookup disjoint dense ranges; every probe must hit.
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            const uint64_t base =
                static_cast<uint64_t>(t) * (kKeys / kThreads);
            for (uint64_t i = 0; i < kKeys / kThreads; i++) {
                const auto got = fx.tree->lookup(base + i);
                ASSERT_TRUE(got.has_value()) << base + i;
                ASSERT_EQ(*got, base + i);
            }
        });
    }
    for (auto &th : threads)
        th.join();
}

TEST(PacTreeTest, AdaptiveShardingSurvivesReopenAndGrowth)
{
    // Recovery rebuilds the directory through the same adaptive path,
    // and later larger keys re-home the directory without losing
    // entries (the shift only grows).
    TreeFixture fx;
    for (uint64_t i = 0; i < 30000; i++)
        fx.tree->insertOrGet(i, i + 1);
    fx.reopen();
    EXPECT_GT(fx.tree->populatedShards(), 32);
    for (uint64_t i = 0; i < 30000; i += 111)
        ASSERT_EQ(fx.tree->lookup(i).value(), i + 1);

    const int shift_before = fx.tree->shardShift();
    // A burst of far-larger keys triggers live resharding mid-traffic.
    for (uint64_t i = 0; i < 30000; i++) {
        const uint64_t big = (1ull << 40) + i;
        fx.tree->insertOrGet(big, i);
    }
    EXPECT_GT(fx.tree->shardShift(), shift_before);
    for (uint64_t i = 0; i < 30000; i += 97) {
        ASSERT_EQ(fx.tree->lookup(i).value(), i + 1) << i;
        ASSERT_EQ(fx.tree->lookup((1ull << 40) + i).value(), i) << i;
    }
}

TEST(DramIndexTest, BasicAndScan)
{
    DramIndex idx;
    EXPECT_TRUE(idx.insertOrGet(3, 30).inserted);
    EXPECT_TRUE(idx.insertOrGet(1, 10).inserted);
    EXPECT_FALSE(idx.insertOrGet(3, 99).inserted);
    EXPECT_EQ(idx.lookup(3).value(), 30u);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    EXPECT_EQ(idx.scan(0, 10, out), 2u);
    EXPECT_EQ(out[0].first, 1u);
    EXPECT_TRUE(idx.remove(1));
    EXPECT_EQ(idx.size(), 1u);
}

}  // namespace
}  // namespace prism::index
