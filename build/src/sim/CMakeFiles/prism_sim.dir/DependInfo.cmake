
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/nvm_device.cc" "src/sim/CMakeFiles/prism_sim.dir/nvm_device.cc.o" "gcc" "src/sim/CMakeFiles/prism_sim.dir/nvm_device.cc.o.d"
  "/root/repo/src/sim/ssd_array.cc" "src/sim/CMakeFiles/prism_sim.dir/ssd_array.cc.o" "gcc" "src/sim/CMakeFiles/prism_sim.dir/ssd_array.cc.o.d"
  "/root/repo/src/sim/ssd_device.cc" "src/sim/CMakeFiles/prism_sim.dir/ssd_device.cc.o" "gcc" "src/sim/CMakeFiles/prism_sim.dir/ssd_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prism_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
