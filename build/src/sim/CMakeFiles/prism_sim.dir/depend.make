# Empty dependencies file for prism_sim.
# This may be replaced when dependencies are built.
