file(REMOVE_RECURSE
  "CMakeFiles/prism_sim.dir/nvm_device.cc.o"
  "CMakeFiles/prism_sim.dir/nvm_device.cc.o.d"
  "CMakeFiles/prism_sim.dir/ssd_array.cc.o"
  "CMakeFiles/prism_sim.dir/ssd_array.cc.o.d"
  "CMakeFiles/prism_sim.dir/ssd_device.cc.o"
  "CMakeFiles/prism_sim.dir/ssd_device.cc.o.d"
  "libprism_sim.a"
  "libprism_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
