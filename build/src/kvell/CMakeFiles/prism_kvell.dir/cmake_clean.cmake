file(REMOVE_RECURSE
  "CMakeFiles/prism_kvell.dir/kvell.cc.o"
  "CMakeFiles/prism_kvell.dir/kvell.cc.o.d"
  "libprism_kvell.a"
  "libprism_kvell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_kvell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
