file(REMOVE_RECURSE
  "libprism_kvell.a"
)
