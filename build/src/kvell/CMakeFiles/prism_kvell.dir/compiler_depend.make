# Empty compiler generated dependencies file for prism_kvell.
# This may be replaced when dependencies are built.
