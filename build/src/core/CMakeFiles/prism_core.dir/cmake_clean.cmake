file(REMOVE_RECURSE
  "CMakeFiles/prism_core.dir/addr.cc.o"
  "CMakeFiles/prism_core.dir/addr.cc.o.d"
  "CMakeFiles/prism_core.dir/chunk_writer.cc.o"
  "CMakeFiles/prism_core.dir/chunk_writer.cc.o.d"
  "CMakeFiles/prism_core.dir/hsit.cc.o"
  "CMakeFiles/prism_core.dir/hsit.cc.o.d"
  "CMakeFiles/prism_core.dir/prism_db.cc.o"
  "CMakeFiles/prism_core.dir/prism_db.cc.o.d"
  "CMakeFiles/prism_core.dir/pwb.cc.o"
  "CMakeFiles/prism_core.dir/pwb.cc.o.d"
  "CMakeFiles/prism_core.dir/read_batcher.cc.o"
  "CMakeFiles/prism_core.dir/read_batcher.cc.o.d"
  "CMakeFiles/prism_core.dir/svc.cc.o"
  "CMakeFiles/prism_core.dir/svc.cc.o.d"
  "CMakeFiles/prism_core.dir/value_storage.cc.o"
  "CMakeFiles/prism_core.dir/value_storage.cc.o.d"
  "libprism_core.a"
  "libprism_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
