
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/addr.cc" "src/core/CMakeFiles/prism_core.dir/addr.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/addr.cc.o.d"
  "/root/repo/src/core/chunk_writer.cc" "src/core/CMakeFiles/prism_core.dir/chunk_writer.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/chunk_writer.cc.o.d"
  "/root/repo/src/core/hsit.cc" "src/core/CMakeFiles/prism_core.dir/hsit.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/hsit.cc.o.d"
  "/root/repo/src/core/prism_db.cc" "src/core/CMakeFiles/prism_core.dir/prism_db.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/prism_db.cc.o.d"
  "/root/repo/src/core/pwb.cc" "src/core/CMakeFiles/prism_core.dir/pwb.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/pwb.cc.o.d"
  "/root/repo/src/core/read_batcher.cc" "src/core/CMakeFiles/prism_core.dir/read_batcher.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/read_batcher.cc.o.d"
  "/root/repo/src/core/svc.cc" "src/core/CMakeFiles/prism_core.dir/svc.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/svc.cc.o.d"
  "/root/repo/src/core/value_storage.cc" "src/core/CMakeFiles/prism_core.dir/value_storage.cc.o" "gcc" "src/core/CMakeFiles/prism_core.dir/value_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prism_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/prism_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/prism_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
