file(REMOVE_RECURSE
  "libprism_core.a"
)
