
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/extent_store.cc" "src/lsm/CMakeFiles/prism_lsm.dir/extent_store.cc.o" "gcc" "src/lsm/CMakeFiles/prism_lsm.dir/extent_store.cc.o.d"
  "/root/repo/src/lsm/lsm_tree.cc" "src/lsm/CMakeFiles/prism_lsm.dir/lsm_tree.cc.o" "gcc" "src/lsm/CMakeFiles/prism_lsm.dir/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/slm_db.cc" "src/lsm/CMakeFiles/prism_lsm.dir/slm_db.cc.o" "gcc" "src/lsm/CMakeFiles/prism_lsm.dir/slm_db.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/lsm/CMakeFiles/prism_lsm.dir/sstable.cc.o" "gcc" "src/lsm/CMakeFiles/prism_lsm.dir/sstable.cc.o.d"
  "/root/repo/src/lsm/wal.cc" "src/lsm/CMakeFiles/prism_lsm.dir/wal.cc.o" "gcc" "src/lsm/CMakeFiles/prism_lsm.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prism_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/prism_index.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/prism_pmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
