file(REMOVE_RECURSE
  "libprism_lsm.a"
)
