# Empty compiler generated dependencies file for prism_lsm.
# This may be replaced when dependencies are built.
