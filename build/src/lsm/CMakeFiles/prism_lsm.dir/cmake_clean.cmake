file(REMOVE_RECURSE
  "CMakeFiles/prism_lsm.dir/extent_store.cc.o"
  "CMakeFiles/prism_lsm.dir/extent_store.cc.o.d"
  "CMakeFiles/prism_lsm.dir/lsm_tree.cc.o"
  "CMakeFiles/prism_lsm.dir/lsm_tree.cc.o.d"
  "CMakeFiles/prism_lsm.dir/slm_db.cc.o"
  "CMakeFiles/prism_lsm.dir/slm_db.cc.o.d"
  "CMakeFiles/prism_lsm.dir/sstable.cc.o"
  "CMakeFiles/prism_lsm.dir/sstable.cc.o.d"
  "CMakeFiles/prism_lsm.dir/wal.cc.o"
  "CMakeFiles/prism_lsm.dir/wal.cc.o.d"
  "libprism_lsm.a"
  "libprism_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
