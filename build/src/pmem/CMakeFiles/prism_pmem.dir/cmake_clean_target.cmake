file(REMOVE_RECURSE
  "libprism_pmem.a"
)
