file(REMOVE_RECURSE
  "CMakeFiles/prism_pmem.dir/pmem_allocator.cc.o"
  "CMakeFiles/prism_pmem.dir/pmem_allocator.cc.o.d"
  "CMakeFiles/prism_pmem.dir/pmem_region.cc.o"
  "CMakeFiles/prism_pmem.dir/pmem_region.cc.o.d"
  "libprism_pmem.a"
  "libprism_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
