# Empty compiler generated dependencies file for prism_pmem.
# This may be replaced when dependencies are built.
