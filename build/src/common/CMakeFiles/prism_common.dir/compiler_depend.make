# Empty compiler generated dependencies file for prism_common.
# This may be replaced when dependencies are built.
