
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cc" "src/common/CMakeFiles/prism_common.dir/clock.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/clock.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/common/CMakeFiles/prism_common.dir/crc32.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/crc32.cc.o.d"
  "/root/repo/src/common/epoch.cc" "src/common/CMakeFiles/prism_common.dir/epoch.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/epoch.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/common/CMakeFiles/prism_common.dir/histogram.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/histogram.cc.o.d"
  "/root/repo/src/common/rand.cc" "src/common/CMakeFiles/prism_common.dir/rand.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/rand.cc.o.d"
  "/root/repo/src/common/thread_util.cc" "src/common/CMakeFiles/prism_common.dir/thread_util.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/thread_util.cc.o.d"
  "/root/repo/src/common/token_bucket.cc" "src/common/CMakeFiles/prism_common.dir/token_bucket.cc.o" "gcc" "src/common/CMakeFiles/prism_common.dir/token_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
