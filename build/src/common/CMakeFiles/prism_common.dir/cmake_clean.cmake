file(REMOVE_RECURSE
  "CMakeFiles/prism_common.dir/clock.cc.o"
  "CMakeFiles/prism_common.dir/clock.cc.o.d"
  "CMakeFiles/prism_common.dir/crc32.cc.o"
  "CMakeFiles/prism_common.dir/crc32.cc.o.d"
  "CMakeFiles/prism_common.dir/epoch.cc.o"
  "CMakeFiles/prism_common.dir/epoch.cc.o.d"
  "CMakeFiles/prism_common.dir/histogram.cc.o"
  "CMakeFiles/prism_common.dir/histogram.cc.o.d"
  "CMakeFiles/prism_common.dir/rand.cc.o"
  "CMakeFiles/prism_common.dir/rand.cc.o.d"
  "CMakeFiles/prism_common.dir/thread_util.cc.o"
  "CMakeFiles/prism_common.dir/thread_util.cc.o.d"
  "CMakeFiles/prism_common.dir/token_bucket.cc.o"
  "CMakeFiles/prism_common.dir/token_bucket.cc.o.d"
  "libprism_common.a"
  "libprism_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
