file(REMOVE_RECURSE
  "CMakeFiles/prism_ycsb.dir/driver.cc.o"
  "CMakeFiles/prism_ycsb.dir/driver.cc.o.d"
  "CMakeFiles/prism_ycsb.dir/stores.cc.o"
  "CMakeFiles/prism_ycsb.dir/stores.cc.o.d"
  "CMakeFiles/prism_ycsb.dir/trace.cc.o"
  "CMakeFiles/prism_ycsb.dir/trace.cc.o.d"
  "CMakeFiles/prism_ycsb.dir/workload.cc.o"
  "CMakeFiles/prism_ycsb.dir/workload.cc.o.d"
  "libprism_ycsb.a"
  "libprism_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
