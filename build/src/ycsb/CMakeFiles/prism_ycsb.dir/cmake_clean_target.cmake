file(REMOVE_RECURSE
  "libprism_ycsb.a"
)
