# Empty compiler generated dependencies file for prism_ycsb.
# This may be replaced when dependencies are built.
