# Empty compiler generated dependencies file for prism_index.
# This may be replaced when dependencies are built.
