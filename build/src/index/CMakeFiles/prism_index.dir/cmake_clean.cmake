file(REMOVE_RECURSE
  "CMakeFiles/prism_index.dir/pactree.cc.o"
  "CMakeFiles/prism_index.dir/pactree.cc.o.d"
  "libprism_index.a"
  "libprism_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
