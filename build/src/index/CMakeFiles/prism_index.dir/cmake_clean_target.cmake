file(REMOVE_RECURSE
  "libprism_index.a"
)
