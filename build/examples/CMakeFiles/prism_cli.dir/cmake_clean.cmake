file(REMOVE_RECURSE
  "CMakeFiles/prism_cli.dir/prism_cli.cpp.o"
  "CMakeFiles/prism_cli.dir/prism_cli.cpp.o.d"
  "prism_cli"
  "prism_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
