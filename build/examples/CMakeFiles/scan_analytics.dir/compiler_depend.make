# Empty compiler generated dependencies file for scan_analytics.
# This may be replaced when dependencies are built.
