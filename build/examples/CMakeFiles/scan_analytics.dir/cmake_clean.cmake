file(REMOVE_RECURSE
  "CMakeFiles/scan_analytics.dir/scan_analytics.cpp.o"
  "CMakeFiles/scan_analytics.dir/scan_analytics.cpp.o.d"
  "scan_analytics"
  "scan_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
