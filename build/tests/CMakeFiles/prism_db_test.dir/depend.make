# Empty dependencies file for prism_db_test.
# This may be replaced when dependencies are built.
