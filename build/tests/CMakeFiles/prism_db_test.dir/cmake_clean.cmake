file(REMOVE_RECURSE
  "CMakeFiles/prism_db_test.dir/prism_db_test.cc.o"
  "CMakeFiles/prism_db_test.dir/prism_db_test.cc.o.d"
  "prism_db_test"
  "prism_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
