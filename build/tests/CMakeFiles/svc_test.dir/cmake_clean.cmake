file(REMOVE_RECURSE
  "CMakeFiles/svc_test.dir/svc_test.cc.o"
  "CMakeFiles/svc_test.dir/svc_test.cc.o.d"
  "svc_test"
  "svc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
