file(REMOVE_RECURSE
  "CMakeFiles/pactree_test.dir/pactree_test.cc.o"
  "CMakeFiles/pactree_test.dir/pactree_test.cc.o.d"
  "pactree_test"
  "pactree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pactree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
