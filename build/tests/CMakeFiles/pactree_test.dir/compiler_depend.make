# Empty compiler generated dependencies file for pactree_test.
# This may be replaced when dependencies are built.
