file(REMOVE_RECURSE
  "CMakeFiles/pmem_test.dir/pmem_test.cc.o"
  "CMakeFiles/pmem_test.dir/pmem_test.cc.o.d"
  "pmem_test"
  "pmem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
