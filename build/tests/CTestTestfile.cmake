# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(prism_db_test "/root/repo/build/tests/prism_db_test")
set_tests_properties(prism_db_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stores_test "/root/repo/build/tests/stores_test")
set_tests_properties(stores_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crash_test "/root/repo/build/tests/crash_test")
set_tests_properties(crash_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmem_test "/root/repo/build/tests/pmem_test")
set_tests_properties(pmem_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pactree_test "/root/repo/build/tests/pactree_test")
set_tests_properties(pactree_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_units_test "/root/repo/build/tests/core_units_test")
set_tests_properties(core_units_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lsm_test "/root/repo/build/tests/lsm_test")
set_tests_properties(lsm_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kvell_test "/root/repo/build/tests/kvell_test")
set_tests_properties(kvell_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(svc_test "/root/repo/build/tests/svc_test")
set_tests_properties(svc_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(driver_test "/root/repo/build/tests/driver_test")
set_tests_properties(driver_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;24;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;25;prism_add_test;/root/repo/tests/CMakeLists.txt;0;")
