file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_latency.dir/bench_tab03_latency.cc.o"
  "CMakeFiles/bench_tab03_latency.dir/bench_tab03_latency.cc.o.d"
  "bench_tab03_latency"
  "bench_tab03_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
