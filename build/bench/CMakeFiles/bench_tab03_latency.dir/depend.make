# Empty dependencies file for bench_tab03_latency.
# This may be replaced when dependencies are built.
