# Empty dependencies file for bench_fig09_skew.
# This may be replaced when dependencies are built.
