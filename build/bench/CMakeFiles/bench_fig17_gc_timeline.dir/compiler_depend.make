# Empty compiler generated dependencies file for bench_fig17_gc_timeline.
# This may be replaced when dependencies are built.
