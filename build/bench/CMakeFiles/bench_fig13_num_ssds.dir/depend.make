# Empty dependencies file for bench_fig13_num_ssds.
# This may be replaced when dependencies are built.
