file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_num_ssds.dir/bench_fig13_num_ssds.cc.o"
  "CMakeFiles/bench_fig13_num_ssds.dir/bench_fig13_num_ssds.cc.o.d"
  "bench_fig13_num_ssds"
  "bench_fig13_num_ssds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_num_ssds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
