# Empty compiler generated dependencies file for bench_fig15_pwb_svc_size.
# This may be replaced when dependencies are built.
