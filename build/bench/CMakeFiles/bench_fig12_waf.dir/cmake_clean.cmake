file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_waf.dir/bench_fig12_waf.cc.o"
  "CMakeFiles/bench_fig12_waf.dir/bench_fig12_waf.cc.o.d"
  "bench_fig12_waf"
  "bench_fig12_waf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_waf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
