# Empty compiler generated dependencies file for bench_fig08_slmdb.
# This may be replaced when dependencies are built.
