file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_slmdb.dir/bench_fig08_slmdb.cc.o"
  "CMakeFiles/bench_fig08_slmdb.dir/bench_fig08_slmdb.cc.o.d"
  "bench_fig08_slmdb"
  "bench_fig08_slmdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_slmdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
