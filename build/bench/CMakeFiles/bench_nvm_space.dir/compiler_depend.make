# Empty compiler generated dependencies file for bench_nvm_space.
# This may be replaced when dependencies are built.
