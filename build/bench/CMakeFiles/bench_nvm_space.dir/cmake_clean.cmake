file(REMOVE_RECURSE
  "CMakeFiles/bench_nvm_space.dir/bench_nvm_space.cc.o"
  "CMakeFiles/bench_nvm_space.dir/bench_nvm_space.cc.o.d"
  "bench_nvm_space"
  "bench_nvm_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nvm_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
