# Empty compiler generated dependencies file for bench_ext_cxl.
# This may be replaced when dependencies are built.
