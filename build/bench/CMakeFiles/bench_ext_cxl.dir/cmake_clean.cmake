file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cxl.dir/bench_ext_cxl.cc.o"
  "CMakeFiles/bench_ext_cxl.dir/bench_ext_cxl.cc.o.d"
  "bench_ext_cxl"
  "bench_ext_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
