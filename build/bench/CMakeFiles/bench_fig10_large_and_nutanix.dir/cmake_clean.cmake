file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_large_and_nutanix.dir/bench_fig10_large_and_nutanix.cc.o"
  "CMakeFiles/bench_fig10_large_and_nutanix.dir/bench_fig10_large_and_nutanix.cc.o.d"
  "bench_fig10_large_and_nutanix"
  "bench_fig10_large_and_nutanix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_large_and_nutanix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
