# Empty compiler generated dependencies file for bench_fig10_large_and_nutanix.
# This may be replaced when dependencies are built.
