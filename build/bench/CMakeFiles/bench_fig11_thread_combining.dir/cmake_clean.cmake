file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_thread_combining.dir/bench_fig11_thread_combining.cc.o"
  "CMakeFiles/bench_fig11_thread_combining.dir/bench_fig11_thread_combining.cc.o.d"
  "bench_fig11_thread_combining"
  "bench_fig11_thread_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_thread_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
