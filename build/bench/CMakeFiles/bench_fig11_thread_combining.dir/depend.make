# Empty dependencies file for bench_fig11_thread_combining.
# This may be replaced when dependencies are built.
