/**
 * @file
 * SSTables for the LSM baselines: immutable sorted runs of
 * (key, sequence, type, value) records in 4 KB blocks, with a per-table
 * bloom filter and block index, plus a shared DRAM block cache.
 *
 * Table data lives on an ExtentStore (SSD array, or NVM for the
 * RocksDB-NVM/MatrixKV configurations). Block index and bloom filter
 * are kept pinned in DRAM for the table's lifetime, the usual
 * table-cache behaviour of LevelDB-family engines.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lsm/bloom.h"
#include "lsm/extent_store.h"

namespace prism::lsm {

/** Record type. */
enum class EntryType : uint32_t { kPut = 0, kDelete = 1 };

/** One logical record. */
struct Entry {
    uint64_t key;
    uint64_t seq;
    EntryType type;
    std::string value;
};

/** Shared LRU cache of table blocks (key: table id + block index). */
class BlockCache {
  public:
    explicit BlockCache(uint64_t capacity_bytes);

    using Block = std::shared_ptr<std::vector<uint8_t>>;

    /** @return the cached block or nullptr. */
    Block get(uint64_t table_id, uint32_t block);

    void put(uint64_t table_id, uint32_t block, Block data);

    /** Drop all blocks of a deleted table (best effort). */
    void eraseTable(uint64_t table_id);

    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    uint64_t misses() const {
        return misses_.load(std::memory_order_relaxed);
    }

  private:
    static uint64_t keyOf(uint64_t table_id, uint32_t block) {
        return (table_id << 20) | block;
    }

    struct Slot {
        uint64_t key;
        Block data;
    };

    uint64_t capacity_;
    std::mutex mu_;
    std::list<Slot> lru_;  ///< front = most recent
    std::unordered_map<uint64_t, std::list<Slot>::iterator> map_;
    uint64_t used_ = 0;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

class Table;

/** Builds one SSTable from records added in ascending key order. */
class TableBuilder {
  public:
    static constexpr uint32_t kBlockBytes = 4096;

    /**
     * @param store        backing medium.
     * @param expected_keys bloom sizing hint.
     */
    TableBuilder(ExtentStore &store, size_t expected_keys,
                 int bloom_bits_per_key = 10);

    /** Append a record; keys must arrive in strictly ascending order. */
    void add(const Entry &e);

    /** Current serialized size (for table-size targets). */
    uint64_t sizeBytes() const {
        return buf_.size() + static_cast<uint64_t>(block_fill_);
    }

    size_t entryCount() const { return count_; }

    /**
     * Write the table to storage.
     * @return the opened table, or nullptr when the store is full.
     */
    std::shared_ptr<Table> finish();

  private:
    void sealBlock();

    ExtentStore &store_;
    BloomFilter bloom_;
    std::vector<uint8_t> buf_;       ///< sealed blocks
    std::vector<uint8_t> block_;     ///< block under construction
    uint32_t block_fill_ = 0;
    std::vector<uint64_t> first_keys_;
    uint64_t min_key_ = 0;
    uint64_t max_key_ = 0;
    size_t count_ = 0;
    bool any_ = false;
};

/** An immutable on-storage sorted table. */
class Table {
  public:
    ~Table();

    uint64_t id() const { return id_; }
    uint64_t minKey() const { return min_key_; }
    uint64_t maxKey() const { return max_key_; }
    size_t entryCount() const { return count_; }
    uint64_t sizeBytes() const { return len_; }
    uint32_t blockCount() const {
        return static_cast<uint32_t>(first_keys_.size());
    }

    /** @return true when [minKey, maxKey] intersects [lo, hi]. */
    bool
    overlaps(uint64_t lo, uint64_t hi) const
    {
        return min_key_ <= hi && lo <= max_key_;
    }

    /**
     * Point lookup.
     * @return the record, or nullopt when the key is not in this table.
     */
    std::optional<Entry> get(uint64_t key, BlockCache *cache) const;

    /** Sequential reader over the table's records. */
    class Iter {
      public:
        Iter(const Table &table, BlockCache *cache);

        /** Position at the first record with key >= @p key. */
        void seek(uint64_t key);

        bool valid() const { return valid_; }
        const Entry &entry() const { return entry_; }
        void next();

      private:
        bool loadBlock(uint32_t index);
        void parseBlock();

        const Table &table_;
        BlockCache *cache_;
        uint32_t block_index_ = 0;
        std::vector<Entry> block_entries_;
        size_t pos_ = 0;
        Entry entry_;
        bool valid_ = false;
    };

    /** Garbage accounting for SLM-DB-style selective compaction. */
    void noteDeadEntry() {
        dead_entries_.fetch_add(1, std::memory_order_relaxed);
    }
    size_t deadEntries() const {
        return dead_entries_.load(std::memory_order_relaxed);
    }

  private:
    friend class TableBuilder;

    Table(ExtentStore &store, uint64_t id, uint64_t offset, uint64_t len,
          std::vector<uint64_t> first_keys, BloomFilter bloom,
          uint64_t min_key, uint64_t max_key, size_t count);

    BlockCache::Block readBlock(uint32_t index, BlockCache *cache) const;

    ExtentStore &store_;
    uint64_t id_;
    uint64_t offset_;
    uint64_t len_;
    std::vector<uint64_t> first_keys_;
    BloomFilter bloom_;
    uint64_t min_key_;
    uint64_t max_key_;
    size_t count_;
    std::atomic<size_t> dead_entries_{0};
};

}  // namespace prism::lsm
