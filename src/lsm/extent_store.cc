#include "lsm/extent_store.h"

#include <cstring>

#include "common/logging.h"

namespace prism::lsm {

ExtentStore::ExtentStore(std::shared_ptr<sim::SsdArray> ssd)
    : ssd_(std::move(ssd)), capacity_(ssd_->capacity())
{
    free_extents_[0] = capacity_;
}

ExtentStore::ExtentStore(std::shared_ptr<sim::NvmDevice> nvm)
    : nvm_(std::move(nvm)), capacity_(nvm_->capacity())
{
    free_extents_[0] = capacity_;
}

uint64_t
ExtentStore::alloc(uint64_t bytes)
{
    bytes = (bytes + 4095) & ~4095ull;  // block-align like a filesystem
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
        if (it->second < bytes)
            continue;
        const uint64_t offset = it->first;
        const uint64_t remain = it->second - bytes;
        free_extents_.erase(it);
        if (remain > 0)
            free_extents_[offset + bytes] = remain;
        used_ += bytes;
        return offset;
    }
    return UINT64_MAX;
}

void
ExtentStore::free(uint64_t offset, uint64_t bytes)
{
    bytes = (bytes + 4095) & ~4095ull;
    std::lock_guard<std::mutex> lock(mu_);
    used_ -= bytes;
    auto [it, inserted] = free_extents_.emplace(offset, bytes);
    PRISM_CHECK(inserted);
    // Coalesce with the successor, then the predecessor.
    auto next = std::next(it);
    if (next != free_extents_.end() &&
        it->first + it->second == next->first) {
        it->second += next->second;
        free_extents_.erase(next);
    }
    if (it != free_extents_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_extents_.erase(it);
        }
    }
}

Status
ExtentStore::read(uint64_t offset, void *buf, uint32_t len)
{
    if (nvm_ != nullptr) {
        std::memcpy(buf, nvm_->raw() + offset, len);
        nvm_->chargeRead(len);
        return Status::ok();
    }
    return ssd_->readSync(offset, buf, len);
}

Status
ExtentStore::write(uint64_t offset, const void *src, uint32_t len)
{
    if (nvm_ != nullptr) {
        std::memcpy(nvm_->raw() + offset, src, len);
        nvm_->chargeWrite(len);
        return Status::ok();
    }
    return ssd_->writeSync(offset, src, len);
}

uint64_t
ExtentStore::usedBytes() const
{
    std::lock_guard<std::mutex> lock(
        const_cast<ExtentStore *>(this)->mu_);
    return used_;
}

uint64_t
ExtentStore::mediaBytesWritten() const
{
    if (nvm_ != nullptr) {
        return nvm_->stats().bytes_written.load(std::memory_order_relaxed);
    }
    return ssd_->totalBytesWritten();
}

}  // namespace prism::lsm
