/**
 * @file
 * SLM-DB baseline (Kaiyrakhmet et al., FAST'19): a single-level
 * key-value store with an NVM memtable and a global persistent index.
 *
 * Model:
 *  - Writes are logged to an NVM-backed WAL (standing in for SLM-DB's
 *    NVM memtable persistence) and buffered in a memtable.
 *  - Flushes emit SSTables into a *single* level on SSD; tables may
 *    overlap, because point lookups go through a global key -> table
 *    index instead of level search. Index updates are charged an NVM
 *    write (SLM-DB keeps this index in a persistent B+-tree).
 *  - Selective compaction: a table whose dead-entry ratio crosses a
 *    threshold has its live keys rewritten, instead of leveled merges.
 *
 * As in the paper's evaluation (§7.4), this store is single-threaded
 * friendly only — the open-source SLM-DB does not support
 * multi-threading, and neither does this reproduction.
 */
#pragma once

#include <memory>
#include <unordered_map>

#include "index/dram_index.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/wal.h"

namespace prism::lsm {

/** Tunables for the SLM-DB baseline. */
struct SlmDbOptions {
    uint64_t memtable_bytes = 64ull * 1024 * 1024 / 16;  // 64 MB paper / 16
    uint64_t table_bytes = 4ull * 1024 * 1024;
    uint64_t block_cache_bytes = 64ull * 1024 * 1024;
    uint64_t wal_bytes = 64ull * 1024 * 1024;
    int bloom_bits_per_key = 10;
    double compact_dead_ratio = 0.5;
    /** Modelled per-op CPU cost of the (LevelDB-derived) software
     *  stack, as in LsmOptions — SLM-DB is leaner than RocksDB, so the
     *  defaults are lower. 0 disables. */
    uint64_t sw_get_overhead_ns = 2000;
    uint64_t sw_put_overhead_ns = 1500;
};

/** Single-level KV store with a global index. */
class SlmDb {
  public:
    /**
     * @param opts      tunables.
     * @param table_store SSD-backed store for the single level.
     * @param nvm_store NVM-backed store for the WAL / index persistence.
     */
    SlmDb(const SlmDbOptions &opts,
          std::shared_ptr<ExtentStore> table_store,
          std::shared_ptr<ExtentStore> nvm_store);

    Status put(uint64_t key, std::string_view value);
    Status get(uint64_t key, std::string *value);
    Status del(uint64_t key);
    Status scan(uint64_t start_key, size_t count,
                std::vector<std::pair<uint64_t, std::string>> *out);

    /** Flush the memtable and run pending selective compactions. */
    void flushAll();

    uint64_t ssdBytesWritten() const {
        return table_store_->mediaBytesWritten();
    }
    size_t tableCount() const;

  private:
    void flushMemtable();
    void maybeCompact();

    SlmDbOptions opts_;
    std::shared_ptr<ExtentStore> table_store_;
    std::shared_ptr<ExtentStore> nvm_store_;
    std::unique_ptr<Wal> wal_;
    BlockCache cache_;

    std::atomic<uint64_t> seq_{1};
    std::shared_ptr<MemTable> mem_;

    // Global index: key -> table id (SLM-DB's persistent B+-tree).
    index::DramIndex global_index_;
    std::unordered_map<uint64_t, std::shared_ptr<Table>> tables_;
};

}  // namespace prism::lsm
