#include "lsm/wal.h"

#include "common/logging.h"

namespace prism::lsm {

Wal::Wal(ExtentStore &store, uint64_t bytes)
    : store_(store), base_(store.alloc(bytes)), capacity_(bytes)
{
    PRISM_CHECK(base_ != UINT64_MAX && "no space for WAL");
}

Wal::~Wal()
{
    store_.free(base_, capacity_);
}

Status
Wal::append(const void *data, uint32_t len)
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t pos = head_;
    if (pos + len > capacity_)
        pos = 0;  // wrap; earlier contents were already flushed
    const Status st = store_.write(base_ + pos, data, len);
    if (!st.isOk())
        return st;
    head_ = pos + len;
    total_ += len;
    return Status::ok();
}

void
Wal::truncate()
{
    std::lock_guard<std::mutex> lock(mu_);
    head_ = 0;
}

}  // namespace prism::lsm
