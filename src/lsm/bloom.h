/**
 * @file
 * Bloom filter for SSTable point-lookup short-circuiting.
 *
 * Standard double-hashing construction (Kirsch–Mitzenmacher): k probe
 * positions derived from two 64-bit hashes. ~10 bits/key gives a ~1%
 * false-positive rate, matching the RocksDB default the paper's
 * baselines use.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rand.h"

namespace prism::lsm {

/** Immutable-after-build bloom filter over 64-bit keys. */
class BloomFilter {
  public:
    /** @param expected_keys sizing hint. @param bits_per_key density. */
    explicit BloomFilter(size_t expected_keys, int bits_per_key = 10)
        : num_probes_(probesFor(bits_per_key)),
          bits_(std::max<size_t>(64, expected_keys * bits_per_key)),
          words_((bits_ + 63) / 64, 0)
    {
    }

    void
    add(uint64_t key)
    {
        const uint64_t h1 = hash64(key);
        const uint64_t h2 = hash64(h1 ^ 0x7a3c9d1fb2e45687ull);
        for (int i = 0; i < num_probes_; i++) {
            const uint64_t bit = (h1 + i * h2) % bits_;
            words_[bit / 64] |= 1ull << (bit % 64);
        }
    }

    /** @return false => key definitely absent; true => probably present. */
    bool
    mayContain(uint64_t key) const
    {
        const uint64_t h1 = hash64(key);
        const uint64_t h2 = hash64(h1 ^ 0x7a3c9d1fb2e45687ull);
        for (int i = 0; i < num_probes_; i++) {
            const uint64_t bit = (h1 + i * h2) % bits_;
            if (!(words_[bit / 64] & (1ull << (bit % 64))))
                return false;
        }
        return true;
    }

    size_t memoryBytes() const { return words_.size() * 8; }

  private:
    static int
    probesFor(int bits_per_key)
    {
        // k = ln2 * bits/key, clamped to a sane range.
        const int k = static_cast<int>(bits_per_key * 0.69);
        return k < 1 ? 1 : (k > 12 ? 12 : k);
    }

    int num_probes_;
    uint64_t bits_;
    std::vector<uint64_t> words_;
};

}  // namespace prism::lsm
