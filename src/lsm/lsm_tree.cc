#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace prism::lsm {

namespace {

/** Serialized WAL record layout (costs modelling only, never replayed). */
struct WalRecord {
    uint64_t key;
    uint64_t seq;
    uint32_t value_len;
    uint32_t type;
};

}  // namespace

LsmTree::LsmTree(const LsmOptions &opts,
                 std::shared_ptr<ExtentStore> table_store,
                 std::shared_ptr<ExtentStore> l0_store,
                 std::shared_ptr<ExtentStore> wal_store)
    : opts_(opts), table_store_(std::move(table_store)),
      l0_store_(std::move(l0_store)), wal_store_(std::move(wal_store)),
      cache_(opts.block_cache_bytes), mem_(std::make_shared<MemTable>()),
      levels_(static_cast<size_t>(opts.max_levels))
{
    auto &reg = stats::StatsRegistry::global();
    reg_flushes_ = &reg.counter("lsm.flushes", "ops");
    reg_compactions_ = &reg.counter("lsm.compactions", "ops");
    reg_compaction_bytes_ = &reg.counter("lsm.compaction_bytes", "bytes");
    reg_stall_ns_ = &reg.counter("lsm.stall_ns", "ns");
    wal_ = std::make_unique<Wal>(*wal_store_, opts_.wal_bytes);
    bg_thread_ = std::thread([this] { backgroundLoop(); });
}

LsmTree::~LsmTree()
{
    stop_.store(true, std::memory_order_release);
    bg_cv_.notify_all();
    bg_thread_.join();
}

Status
LsmTree::put(uint64_t key, std::string_view value)
{
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    stats_.user_bytes_written.fetch_add(value.size(),
                                        std::memory_order_relaxed);
    return writeImpl(key, EntryType::kPut, value);
}

Status
LsmTree::del(uint64_t key)
{
    return writeImpl(key, EntryType::kDelete, {});
}

Status
LsmTree::writeImpl(uint64_t key, EntryType type, std::string_view value)
{
    maybeStall();
    if (opts_.sw_put_overhead_ns != 0)
        spinFor(TimeScale::scaled(opts_.sw_put_overhead_ns));

    const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    // WAL first (synchronous, as RocksDB with fsync'd WAL).
    std::vector<uint8_t> rec(sizeof(WalRecord) + value.size());
    auto *hdr = reinterpret_cast<WalRecord *>(rec.data());
    hdr->key = key;
    hdr->seq = seq;
    hdr->value_len = static_cast<uint32_t>(value.size());
    hdr->type = static_cast<uint32_t>(type);
    std::memcpy(hdr + 1, value.data(), value.size());
    Status st = wal_->append(rec.data(), static_cast<uint32_t>(rec.size()));
    if (!st.isOk())
        return st;

    std::shared_ptr<MemTable> mem;
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        mem = mem_;
    }
    const uint64_t size = mem->add(key, seq, type, value);
    if (size >= opts_.memtable_bytes)
        maybeRotateMemtable();
    return Status::ok();
}

void
LsmTree::maybeRotateMemtable()
{
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        if (mem_->sizeBytes() < opts_.memtable_bytes)
            return;  // someone else rotated first
        imm_.push_back(mem_);
        mem_ = std::make_shared<MemTable>();
    }
    bg_cv_.notify_all();
}

void
LsmTree::maybeStall()
{
    // Write stalls: too many immutable memtables or too many L0 files —
    // the behaviour whose absence in Prism drives the Fig. 7/Table 3 gap.
    uint64_t stall_start = 0;
    while (!stop_.load(std::memory_order_acquire)) {
        size_t imm_count;
        {
            std::lock_guard<std::mutex> lock(rotate_mu_);
            imm_count = imm_.size();
        }
        const uint64_t l0_bytes = levelBytes(0);
        if (imm_count < 3 &&
            l0_bytes < static_cast<uint64_t>(opts_.l0_stall_limit) *
                           opts_.memtable_bytes)
            break;
        if (stall_start == 0)
            stall_start = nowNs();
        bg_cv_.notify_all();
        delayFor(100 * 1000);
    }
    if (stall_start != 0) {
        const uint64_t stalled = nowNs() - stall_start;
        stats_.stall_ns.fetch_add(stalled, std::memory_order_relaxed);
        reg_stall_ns_->add(stalled);
    }
}

Status
LsmTree::get(uint64_t key, std::string *value)
{
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    if (opts_.sw_get_overhead_ns != 0)
        spinFor(TimeScale::scaled(opts_.sw_get_overhead_ns));

    std::shared_ptr<MemTable> mem;
    std::vector<std::shared_ptr<MemTable>> imms;
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        mem = mem_;
        imms.assign(imm_.begin(), imm_.end());
    }
    auto finish = [&](const Entry &e) {
        if (e.type == EntryType::kDelete)
            return Status::notFound();
        *value = e.value;
        return Status::ok();
    };
    if (auto e = mem->get(key))
        return finish(*e);
    for (auto it = imms.rbegin(); it != imms.rend(); ++it) {
        if (auto e = (*it)->get(key))
            return finish(*e);
    }

    // Level traversal: newest-first through L0, then one candidate per
    // deeper level — the multi-level read cost of LSM designs (§7.2).
    std::shared_lock<std::shared_mutex> lock(version_mu_);
    for (const auto &table : levels_[0]) {
        if (auto e = table->get(key, &cache_))
            return finish(*e);
    }
    for (size_t level = 1; level < levels_.size(); level++) {
        const auto &tables = levels_[level];
        auto it = std::upper_bound(
            tables.begin(), tables.end(), key,
            [](uint64_t k, const std::shared_ptr<Table> &t) {
                return k < t->minKey();
            });
        if (it == tables.begin())
            continue;
        --it;
        if (key > (*it)->maxKey())
            continue;
        if (auto e = (*it)->get(key, &cache_))
            return finish(*e);
    }
    return Status::notFound();
}

Status
LsmTree::scan(uint64_t start_key, size_t count,
              std::vector<std::pair<uint64_t, std::string>> *out)
{
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    out->clear();
    const size_t slack = count + 8;

    // Gather candidates from every source, keep the newest per key.
    std::map<uint64_t, Entry> merged;
    auto offer = [&](const Entry &e) {
        auto [it, inserted] = merged.emplace(e.key, e);
        if (!inserted && e.seq > it->second.seq)
            it->second = e;
    };

    std::shared_ptr<MemTable> mem;
    std::vector<std::shared_ptr<MemTable>> imms;
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        mem = mem_;
        imms.assign(imm_.begin(), imm_.end());
    }
    std::vector<Entry> tmp;
    mem->collectRange(start_key, slack, tmp);
    for (const auto &e : tmp)
        offer(e);
    for (const auto &imm : imms) {
        tmp.clear();
        imm->collectRange(start_key, slack, tmp);
        for (const auto &e : tmp)
            offer(e);
    }

    {
        std::shared_lock<std::shared_mutex> lock(version_mu_);
        // L0 runs overlap: every run contributes up to `slack` entries.
        for (const auto &table : levels_[0]) {
            if (!table->overlaps(start_key, UINT64_MAX))
                continue;
            Table::Iter iter(*table, &cache_);
            iter.seek(start_key);
            size_t taken = 0;
            while (iter.valid() && taken < slack) {
                offer(iter.entry());
                taken++;
                iter.next();
            }
        }
        // Deeper levels are sorted and disjoint: walk tables in key
        // order and stop once the level has yielded `slack` entries.
        for (size_t level = 1; level < levels_.size(); level++) {
            const auto &tables = levels_[level];
            auto it = std::upper_bound(
                tables.begin(), tables.end(), start_key,
                [](uint64_t k, const std::shared_ptr<Table> &t) {
                    return k < t->minKey();
                });
            if (it != tables.begin())
                --it;
            size_t taken = 0;
            for (; it != tables.end() && taken < slack; ++it) {
                if ((*it)->maxKey() < start_key)
                    continue;
                Table::Iter iter(**it, &cache_);
                iter.seek(start_key);
                while (iter.valid() && taken < slack) {
                    offer(iter.entry());
                    taken++;
                    iter.next();
                }
            }
        }
    }

    for (const auto &[key, e] : merged) {
        if (out->size() >= count)
            break;
        if (e.type == EntryType::kDelete)
            continue;
        out->emplace_back(key, e.value);
    }
    return Status::ok();
}

void
LsmTree::backgroundLoop()
{
    std::mutex idle_mu;
    while (!stop_.load(std::memory_order_acquire)) {
        bool worked = false;
        {
            std::lock_guard<std::mutex> lock(rotate_mu_);
            worked = !imm_.empty();
        }
        if (worked) {
            flushOneImm();
        } else if (pickAndRunCompaction()) {
            worked = true;
        }
        if (!worked) {
            std::unique_lock<std::mutex> lock(idle_mu);
            bg_cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
    }
}

int
LsmTree::partitionOf(uint64_t key) const
{
    // Equal key-range slices of the 64-bit space.
    return static_cast<int>(
        (static_cast<__uint128_t>(key) *
         static_cast<uint64_t>(opts_.l0_partitions)) >> 64);
}

void
LsmTree::flushOneImm()
{
    std::shared_ptr<MemTable> m;
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        if (imm_.empty())
            return;
        m = imm_.front();
    }
    // In matrix mode (MatrixKV) the flush is split into key-range
    // partitioned sub-tables — the cells of the matrix container.
    std::vector<std::shared_ptr<Table>> tables;
    std::unique_ptr<TableBuilder> builder;
    int cur_partition = -1;
    m->forEach([&](const Entry &e) {
        const int part =
            opts_.l0_partitions > 1 ? partitionOf(e.key) : 0;
        if (builder == nullptr || part != cur_partition) {
            if (builder != nullptr && builder->entryCount() > 0) {
                auto t = builder->finish();
                PRISM_CHECK(t != nullptr && "L0 store out of space");
                tables.push_back(std::move(t));
            }
            builder = std::make_unique<TableBuilder>(
                *l0_store_, m->entryCount(), opts_.bloom_bits_per_key);
            cur_partition = part;
        }
        builder->add(e);
    });
    if (builder != nullptr && builder->entryCount() > 0) {
        auto t = builder->finish();
        PRISM_CHECK(t != nullptr && "L0 store out of space");
        tables.push_back(std::move(t));
    }
    {
        std::unique_lock<std::shared_mutex> lock(version_mu_);
        levels_[0].insert(levels_[0].begin(), tables.begin(),
                          tables.end());
    }
    bool wal_clear;
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        imm_.pop_front();
        wal_clear = imm_.empty();
    }
    if (wal_clear)
        wal_->truncate();
    stats_.flushes.fetch_add(1, std::memory_order_relaxed);
    reg_flushes_->inc();
    bg_cv_.notify_all();
}

uint64_t
LsmTree::levelTargetBytes(int level) const
{
    double target = static_cast<double>(opts_.level1_bytes);
    for (int i = 1; i < level; i++)
        target *= opts_.level_multiplier;
    return static_cast<uint64_t>(target);
}

uint64_t
LsmTree::levelBytes(int level) const
{
    std::shared_lock<std::shared_mutex> lock(version_mu_);
    uint64_t total = 0;
    for (const auto &t : levels_[static_cast<size_t>(level)])
        total += t->sizeBytes();
    return total;
}

size_t
LsmTree::levelTableCount(int level) const
{
    std::shared_lock<std::shared_mutex> lock(version_mu_);
    return levels_[static_cast<size_t>(level)].size();
}

bool
LsmTree::pickAndRunCompaction()
{
    if (levelBytes(0) >=
        static_cast<uint64_t>(opts_.l0_limit) * opts_.memtable_bytes) {
        compactL0();
        return true;
    }
    for (int level = 1; level < opts_.max_levels - 1; level++) {
        if (levelBytes(level) > levelTargetBytes(level)) {
            compactLevel(level);
            return true;
        }
    }
    return false;
}

void
LsmTree::mergeTables(const std::vector<std::shared_ptr<Table>> &inputs,
                     uint64_t lo, uint64_t hi, bool drop_tombstones,
                     ExtentStore &dest,
                     std::vector<std::shared_ptr<Table>> &out)
{
    // Compaction reads bypass the block cache so they do not evict the
    // read-path working set (RocksDB behaves likewise).
    std::vector<std::unique_ptr<Table::Iter>> iters;
    for (const auto &t : inputs) {
        if (!t->overlaps(lo, hi))
            continue;
        auto it = std::make_unique<Table::Iter>(*t, nullptr);
        it->seek(lo);
        if (it->valid())
            iters.push_back(std::move(it));
    }

    size_t expected = 0;
    for (const auto &t : inputs)
        expected += t->entryCount();

    auto builder = std::make_unique<TableBuilder>(
        dest, std::max<size_t>(64, expected), opts_.bloom_bits_per_key);

    while (true) {
        // Linear min-scan over the (few) input iterators.
        uint64_t min_key = UINT64_MAX;
        bool any = false;
        for (const auto &it : iters) {
            if (it->valid() && it->entry().key <= hi) {
                min_key = std::min(min_key, it->entry().key);
                any = true;
            }
        }
        if (!any)
            break;
        // Keep the newest version (largest seq) of min_key; advance all
        // iterators positioned at it.
        Entry newest;
        newest.seq = 0;
        for (auto &it : iters) {
            while (it->valid() && it->entry().key == min_key) {
                if (it->entry().seq > newest.seq)
                    newest = it->entry();
                it->next();
            }
        }
        if (!(drop_tombstones && newest.type == EntryType::kDelete)) {
            builder->add(newest);
            if (builder->sizeBytes() >= opts_.table_bytes) {
                auto table = builder->finish();
                PRISM_CHECK(table != nullptr &&
                            "table store out of space during compaction");
                stats_.compaction_bytes.fetch_add(
                    table->sizeBytes(), std::memory_order_relaxed);
                reg_compaction_bytes_->add(table->sizeBytes());
                out.push_back(std::move(table));
                builder = std::make_unique<TableBuilder>(
                    dest, std::max<size_t>(64, expected),
                    opts_.bloom_bits_per_key);
            }
        }
    }
    if (builder->entryCount() > 0) {
        auto table = builder->finish();
        PRISM_CHECK(table != nullptr &&
                    "table store out of space during compaction");
        stats_.compaction_bytes.fetch_add(table->sizeBytes(),
                                          std::memory_order_relaxed);
        reg_compaction_bytes_->add(table->sizeBytes());
        out.push_back(std::move(table));
    }
}

void
LsmTree::compactL0()
{
    std::vector<std::shared_ptr<Table>> l0, l1;
    {
        std::shared_lock<std::shared_mutex> lock(version_mu_);
        l0 = levels_[0];
        l1 = levels_[1];
    }
    if (l0.empty())
        return;

    uint64_t lo = 0;
    uint64_t hi = UINT64_MAX;
    std::vector<std::shared_ptr<Table>> l0_in;
    std::vector<std::shared_ptr<Table>> l0_keep;
    if (opts_.l0_partitions > 1) {
        // MatrixKV column compaction: pick the fullest column (key-range
        // partition) and merge only its sub-tables; the rest of L0 is
        // untouched — no rewrite, bounded per-pass work.
        std::vector<uint64_t> column_bytes(
            static_cast<size_t>(opts_.l0_partitions), 0);
        for (const auto &t : l0)
            column_bytes[partitionOf(t->minKey())] += t->sizeBytes();
        int best = 0;
        for (int p = 1; p < opts_.l0_partitions; p++) {
            if (column_bytes[p] > column_bytes[best])
                best = p;
        }
        const auto p_count =
            static_cast<uint64_t>(opts_.l0_partitions);
        lo = static_cast<uint64_t>(
            (static_cast<__uint128_t>(best) << 64) / p_count);
        hi = best + 1 == opts_.l0_partitions
                 ? UINT64_MAX
                 : static_cast<uint64_t>(
                       (static_cast<__uint128_t>(best + 1) << 64) /
                       p_count) - 1;
        for (const auto &t : l0) {
            if (partitionOf(t->minKey()) == best)
                l0_in.push_back(t);
            else
                l0_keep.push_back(t);
        }
        if (l0_in.empty())
            return;
    } else {
        l0_in = l0;
    }

    const bool bottom = [&] {
        std::shared_lock<std::shared_mutex> lock(version_mu_);
        for (size_t level = 2; level < levels_.size(); level++) {
            if (!levels_[level].empty())
                return false;
        }
        return true;
    }();

    // Inputs: the selected L0 run(s) plus the overlapping part of L1.
    std::vector<std::shared_ptr<Table>> inputs = l0_in;
    std::vector<std::shared_ptr<Table>> l1_keep;
    for (const auto &t : l1) {
        if (t->overlaps(lo, hi))
            inputs.push_back(t);
        else
            l1_keep.push_back(t);
    }
    std::vector<std::shared_ptr<Table>> outputs;
    mergeTables(inputs, lo, hi, bottom, *table_store_, outputs);

    {
        std::unique_lock<std::shared_mutex> lock(version_mu_);
        levels_[0] = l0_keep;
        l1_keep.insert(l1_keep.end(), outputs.begin(), outputs.end());
        std::sort(l1_keep.begin(), l1_keep.end(),
                  [](const auto &a, const auto &b) {
                      return a->minKey() < b->minKey();
                  });
        levels_[1] = std::move(l1_keep);
    }
    for (const auto &t : inputs)
        cache_.eraseTable(t->id());
    stats_.compactions.fetch_add(1, std::memory_order_relaxed);
    reg_compactions_->inc();
    bg_cv_.notify_all();
}

void
LsmTree::compactLevel(int level)
{
    std::shared_ptr<Table> victim;
    std::vector<std::shared_ptr<Table>> next_overlap, next_keep;
    {
        std::shared_lock<std::shared_mutex> lock(version_mu_);
        const auto &tables = levels_[static_cast<size_t>(level)];
        if (tables.empty())
            return;
        // Round-robin cursor over the key space for fairness.
        victim = tables.front();
        for (const auto &t : tables) {
            if (t->minKey() >= compact_cursor_) {
                victim = t;
                break;
            }
        }
        for (const auto &t : levels_[static_cast<size_t>(level) + 1]) {
            if (t->overlaps(victim->minKey(), victim->maxKey()))
                next_overlap.push_back(t);
            else
                next_keep.push_back(t);
        }
    }
    compact_cursor_ = victim->maxKey() == UINT64_MAX
                          ? 0
                          : victim->maxKey() + 1;

    const bool bottom = [&] {
        std::shared_lock<std::shared_mutex> lock(version_mu_);
        for (size_t l = static_cast<size_t>(level) + 2; l < levels_.size();
             l++) {
            if (!levels_[l].empty())
                return false;
        }
        return true;
    }();

    std::vector<std::shared_ptr<Table>> inputs;
    inputs.push_back(victim);
    inputs.insert(inputs.end(), next_overlap.begin(), next_overlap.end());
    std::vector<std::shared_ptr<Table>> outputs;
    mergeTables(inputs, 0, UINT64_MAX, bottom, *table_store_, outputs);

    {
        std::unique_lock<std::shared_mutex> lock(version_mu_);
        auto &cur = levels_[static_cast<size_t>(level)];
        cur.erase(std::remove(cur.begin(), cur.end(), victim), cur.end());
        next_keep.insert(next_keep.end(), outputs.begin(), outputs.end());
        std::sort(next_keep.begin(), next_keep.end(),
                  [](const auto &a, const auto &b) {
                      return a->minKey() < b->minKey();
                  });
        levels_[static_cast<size_t>(level) + 1] = std::move(next_keep);
    }
    for (const auto &t : inputs)
        cache_.eraseTable(t->id());
    stats_.compactions.fetch_add(1, std::memory_order_relaxed);
    reg_compactions_->inc();
    bg_cv_.notify_all();
}

void
LsmTree::flushAll()
{
    // Force-rotate whatever is buffered, then wait for quiescence.
    {
        std::lock_guard<std::mutex> lock(rotate_mu_);
        if (mem_->entryCount() > 0) {
            imm_.push_back(mem_);
            mem_ = std::make_shared<MemTable>();
        }
    }
    bg_cv_.notify_all();
    while (true) {
        bool busy;
        {
            std::lock_guard<std::mutex> lock(rotate_mu_);
            busy = !imm_.empty();
        }
        if (!busy &&
            levelBytes(0) < static_cast<uint64_t>(opts_.l0_limit) *
                                opts_.memtable_bytes) {
            bool over = false;
            for (int level = 1; level < opts_.max_levels - 1; level++) {
                if (levelBytes(level) > levelTargetBytes(level))
                    over = true;
            }
            if (!over)
                return;
        }
        delayFor(200 * 1000);
    }
}

uint64_t
LsmTree::ssdBytesWritten() const
{
    uint64_t total = 0;
    std::vector<const ExtentStore *> seen;
    for (const ExtentStore *s :
         {table_store_.get(), l0_store_.get(), wal_store_.get()}) {
        if (s->onNvm())
            continue;
        if (std::find(seen.begin(), seen.end(), s) != seen.end())
            continue;
        seen.push_back(s);
        total += s->mediaBytesWritten();
    }
    return total;
}

}  // namespace prism::lsm
