/**
 * @file
 * Extent allocator over either a striped SSD array or a simulated NVM
 * device — the "filesystem" under the LSM baselines' SSTables and WAL.
 *
 * SSTables are written once and deleted whole, so a first-fit free-list
 * extent allocator suffices. The NVM backend is what turns the plain
 * LSM engine into the paper's RocksDB-NVM (all tables + WAL on NVM) and
 * MatrixKV (L0 on NVM) configurations.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "sim/nvm_device.h"
#include "sim/ssd_array.h"

namespace prism::lsm {

/** Backing medium for LSM file data. */
class ExtentStore {
  public:
    /** Place extents on a striped SSD array. */
    explicit ExtentStore(std::shared_ptr<sim::SsdArray> ssd);

    /** Place extents on byte-addressable NVM. */
    explicit ExtentStore(std::shared_ptr<sim::NvmDevice> nvm);

    /**
     * Allocate @p bytes. @return offset, or UINT64_MAX when full.
     */
    uint64_t alloc(uint64_t bytes);

    /** Release an extent previously returned by alloc. */
    void free(uint64_t offset, uint64_t bytes);

    Status read(uint64_t offset, void *buf, uint32_t len);
    Status write(uint64_t offset, const void *src, uint32_t len);

    bool onNvm() const { return nvm_ != nullptr; }
    uint64_t capacity() const { return capacity_; }
    uint64_t usedBytes() const;

    /** Total bytes physically written to the medium (WAF numerator). */
    uint64_t mediaBytesWritten() const;

  private:
    std::shared_ptr<sim::SsdArray> ssd_;
    std::shared_ptr<sim::NvmDevice> nvm_;
    uint64_t capacity_;

    std::mutex mu_;
    std::map<uint64_t, uint64_t> free_extents_;  ///< offset -> length
    uint64_t used_ = 0;
};

}  // namespace prism::lsm
