#include "lsm/slm_db.h"

#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace prism::lsm {

SlmDb::SlmDb(const SlmDbOptions &opts,
             std::shared_ptr<ExtentStore> table_store,
             std::shared_ptr<ExtentStore> nvm_store)
    : opts_(opts), table_store_(std::move(table_store)),
      nvm_store_(std::move(nvm_store)), cache_(opts.block_cache_bytes),
      mem_(std::make_shared<MemTable>())
{
    wal_ = std::make_unique<Wal>(*nvm_store_, opts_.wal_bytes);
}

Status
SlmDb::put(uint64_t key, std::string_view value)
{
    if (opts_.sw_put_overhead_ns != 0)
        spinFor(TimeScale::scaled(opts_.sw_put_overhead_ns));
    const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    // Persist to the NVM log (standing in for the NVM memtable).
    std::vector<uint8_t> rec(24 + value.size());
    std::memcpy(rec.data(), &key, 8);
    std::memcpy(rec.data() + 8, &seq, 8);
    const auto len = static_cast<uint32_t>(value.size());
    std::memcpy(rec.data() + 16, &len, 4);
    std::memcpy(rec.data() + 24, value.data(), value.size());
    Status st = wal_->append(rec.data(), static_cast<uint32_t>(rec.size()));
    if (!st.isOk())
        return st;
    if (mem_->add(key, seq, EntryType::kPut, value) >=
        opts_.memtable_bytes) {
        flushMemtable();
    }
    return Status::ok();
}

Status
SlmDb::del(uint64_t key)
{
    const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    uint8_t rec[16];
    std::memcpy(rec, &key, 8);
    std::memcpy(rec + 8, &seq, 8);
    Status st = wal_->append(rec, sizeof(rec));
    if (!st.isOk())
        return st;
    if (mem_->add(key, seq, EntryType::kDelete, {}) >=
        opts_.memtable_bytes) {
        flushMemtable();
    }
    return Status::ok();
}

Status
SlmDb::get(uint64_t key, std::string *value)
{
    if (opts_.sw_get_overhead_ns != 0)
        spinFor(TimeScale::scaled(opts_.sw_get_overhead_ns));
    if (auto e = mem_->get(key)) {
        if (e->type == EntryType::kDelete)
            return Status::notFound();
        *value = e->value;
        return Status::ok();
    }
    const auto tid = global_index_.lookup(key);
    if (!tid.has_value())
        return Status::notFound();
    auto it = tables_.find(*tid);
    PRISM_CHECK(it != tables_.end());
    auto e = it->second->get(key, &cache_);
    if (!e.has_value() || e->type == EntryType::kDelete)
        return Status::notFound();
    *value = std::move(e->value);
    return Status::ok();
}

Status
SlmDb::scan(uint64_t start_key, size_t count,
            std::vector<std::pair<uint64_t, std::string>> *out)
{
    out->clear();
    // Candidates from the global index and the memtable, merged in key
    // order. Values come back one random block read at a time — the
    // single-level layout preserves no run-length locality, which is
    // why SLM-DB scans trail Prism's (§7.4).
    std::vector<std::pair<uint64_t, uint64_t>> idx_hits;
    global_index_.scan(start_key, count, idx_hits);
    std::vector<Entry> mem_hits;
    mem_->collectRange(start_key, count, mem_hits);

    size_t i = 0, j = 0;
    while (out->size() < count &&
           (i < idx_hits.size() || j < mem_hits.size())) {
        const bool take_mem =
            j < mem_hits.size() &&
            (i >= idx_hits.size() || mem_hits[j].key <= idx_hits[i].first);
        if (take_mem) {
            if (i < idx_hits.size() && idx_hits[i].first == mem_hits[j].key)
                i++;  // memtable shadows the table version
            const auto &e = mem_hits[j++];
            if (e.type != EntryType::kDelete)
                out->emplace_back(e.key, e.value);
            continue;
        }
        const auto [key, tid] = idx_hits[i++];
        auto it = tables_.find(tid);
        PRISM_CHECK(it != tables_.end());
        auto e = it->second->get(key, &cache_);
        if (e.has_value() && e->type != EntryType::kDelete)
            out->emplace_back(key, std::move(e->value));
    }
    return Status::ok();
}

void
SlmDb::flushMemtable()
{
    auto m = mem_;
    mem_ = std::make_shared<MemTable>();
    if (m->entryCount() == 0)
        return;

    auto builder = std::make_unique<TableBuilder>(
        *table_store_, m->entryCount(), opts_.bloom_bits_per_key);
    std::vector<std::shared_ptr<Table>> new_tables;
    std::vector<std::pair<uint64_t, EntryType>> flushed;
    m->forEach([&](const Entry &e) {
        flushed.emplace_back(e.key, e.type);
        if (e.type == EntryType::kDelete)
            return;  // deletions live in the index, not the tables
        builder->add(e);
        if (builder->sizeBytes() >= opts_.table_bytes) {
            // The memtable iterates in key order, so chunking the flush
            // into several tables keeps each table sorted and disjoint.
            auto t = builder->finish();
            PRISM_CHECK(t != nullptr);
            new_tables.push_back(std::move(t));
            builder = std::make_unique<TableBuilder>(
                *table_store_, m->entryCount(), opts_.bloom_bits_per_key);
        }
    });
    if (builder->entryCount() > 0) {
        auto t = builder->finish();
        PRISM_CHECK(t != nullptr);
        new_tables.push_back(std::move(t));
    }
    for (const auto &t : new_tables)
        tables_[t->id()] = t;

    // Update the global index; each update is an NVM B+-tree write.
    size_t table_i = 0;
    for (const auto &[key, type] : flushed) {
        if (type == EntryType::kDelete) {
            const auto old = global_index_.lookup(key);
            if (old.has_value()) {
                global_index_.remove(key);
                auto it = tables_.find(*old);
                if (it != tables_.end())
                    it->second->noteDeadEntry();
            }
            continue;
        }
        while (table_i + 1 < new_tables.size() &&
               key > new_tables[table_i]->maxKey())
            table_i++;
        const uint64_t tid = new_tables[table_i]->id();
        const auto res = global_index_.insertOrGet(key, tid);
        if (!res.inserted) {
            // Overwrite: re-point the index and mark the old copy dead.
            auto it = tables_.find(res.handle);
            if (it != tables_.end())
                it->second->noteDeadEntry();
            global_index_.remove(key);
            global_index_.insertOrGet(key, tid);
        }
    }
    wal_->truncate();
    maybeCompact();
}

void
SlmDb::maybeCompact()
{
    // Selective compaction: rewrite tables whose garbage ratio is high.
    std::vector<std::shared_ptr<Table>> victims;
    for (const auto &[tid, table] : tables_) {
        if (table->entryCount() == 0)
            continue;
        const double dead = static_cast<double>(table->deadEntries()) /
                            static_cast<double>(table->entryCount());
        if (dead >= opts_.compact_dead_ratio)
            victims.push_back(table);
    }
    for (const auto &victim : victims) {
        TableBuilder builder(*table_store_, victim->entryCount(),
                             opts_.bloom_bits_per_key);
        std::vector<uint64_t> live_keys;
        Table::Iter iter(*victim, nullptr);
        while (iter.valid()) {
            const auto &e = iter.entry();
            const auto cur = global_index_.lookup(e.key);
            if (cur.has_value() && *cur == victim->id()) {
                builder.add(e);
                live_keys.push_back(e.key);
            }
            iter.next();
        }
        std::shared_ptr<Table> fresh;
        if (builder.entryCount() > 0) {
            fresh = builder.finish();
            PRISM_CHECK(fresh != nullptr);
            tables_[fresh->id()] = fresh;
            for (const uint64_t key : live_keys) {
                global_index_.remove(key);
                global_index_.insertOrGet(key, fresh->id());
            }
        }
        cache_.eraseTable(victim->id());
        tables_.erase(victim->id());
    }
}

void
SlmDb::flushAll()
{
    flushMemtable();
}

size_t
SlmDb::tableCount() const
{
    return tables_.size();
}

}  // namespace prism::lsm
