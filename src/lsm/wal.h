/**
 * @file
 * Write-ahead log for the LSM baselines.
 *
 * Every put/delete is serialized and synced before it is applied to the
 * memtable, as in RocksDB with WAL fsync enabled. The log is a circular
 * region on an ExtentStore, truncated after each memtable flush. An
 * NVM-backed ExtentStore turns this into the RocksDB-NVM / MatrixKV /
 * SLM-DB persistence model, where logging costs ~100 ns instead of an
 * SSD write.
 *
 * The log content is not replayed in this codebase (the baselines are
 * evaluated on performance, not on recovery), but every byte is really
 * written and synced so the cost is fully modelled.
 */
#pragma once

#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "lsm/extent_store.h"

namespace prism::lsm {

/** Synchronous write-ahead log. */
class Wal {
  public:
    /**
     * @param store backing medium.
     * @param bytes log capacity (allocated as one extent).
     */
    Wal(ExtentStore &store, uint64_t bytes);
    ~Wal();

    /** Append and sync one record of @p len bytes. Thread-safe. */
    Status append(const void *data, uint32_t len);

    /** Drop everything logged so far (after a memtable flush). */
    void truncate();

    uint64_t bytesLogged() const { return total_; }

  private:
    ExtentStore &store_;
    uint64_t base_;
    uint64_t capacity_;
    std::mutex mu_;
    uint64_t head_ = 0;
    uint64_t total_ = 0;
};

}  // namespace prism::lsm
