/**
 * @file
 * Leveled LSM-tree engine — the RocksDB-family baseline of the paper's
 * evaluation (§7.1), configurable into:
 *
 *  - RocksDB(SSD):   WAL + all SSTables on the striped SSD array.
 *  - RocksDB-NVM:    WAL + all SSTables on NVM (the paper's reference
 *                    point for the best an LSM can do on NVM).
 *  - MatrixKV:       WAL + L0 on NVM, deeper levels on SSD, with
 *                    fine-grained *column* compaction that merges only a
 *                    narrow key slice of L0 per pass (reducing write
 *                    stalls), after Yao et al. [ATC'20].
 *
 * The engine is deliberately conventional: synchronous WAL append per
 * write, memtable rotation with immutable queue, write stalls when
 * flush/compaction fall behind, tiered level targets with a compaction
 * cursor, bloom filters and a block cache on reads. These are exactly
 * the behaviours the paper's comparison hinges on (compaction cost,
 * level-traversal reads, queuing on the storage stack).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/wal.h"

namespace prism::lsm {

/** Engine tunables; defaults roughly follow RocksDB's. */
struct LsmOptions {
    uint64_t memtable_bytes = 8ull * 1024 * 1024;
    /** L0 compaction trigger / writer stall, in memtable-sized units. */
    int l0_limit = 4;
    int l0_stall_limit = 12;
    uint64_t level1_bytes = 64ull * 1024 * 1024;
    double level_multiplier = 10.0;
    int max_levels = 6;
    uint64_t table_bytes = 4ull * 1024 * 1024;
    uint64_t block_cache_bytes = 64ull * 1024 * 1024;
    uint64_t wal_bytes = 64ull * 1024 * 1024;
    int bloom_bits_per_key = 10;
    /**
     * MatrixKV matrix container: when > 1, each memtable flush is split
     * into this many key-range-partitioned L0 sub-tables, and an
     * L0->L1 compaction merges only the fullest *column* (one key-range
     * partition across all flushes) — fine-grained column compaction
     * that removes a column without rewriting the rest of L0.
     */
    int l0_partitions = 1;

    /**
     * Modelled per-operation CPU cost of the LSM software stack.
     *
     * This reproduction's memtable/SSTable code is far leaner than
     * RocksDB's (no comparators, compression, slices, skiplist probes,
     * version sets); without a stand-in charge the baseline would be
     * unrealistically CPU-cheap, hiding exactly the overhead the paper
     * (§3, citing Lepers et al.) identifies as the bottleneck. Values
     * are calibrated to published RocksDB per-op CPU measurements
     * (roughly 1–3 us/op) and scale with TimeScale. Set to 0 to disable.
     */
    uint64_t sw_get_overhead_ns = 5000;
    uint64_t sw_put_overhead_ns = 4000;
};

/** Counters for the evaluation harness. */
struct LsmStats {
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> compaction_bytes{0};
    std::atomic<uint64_t> stall_ns{0};
    std::atomic<uint64_t> user_bytes_written{0};
};

/** A leveled LSM-tree key-value store. */
class LsmTree {
  public:
    /**
     * @param opts        engine tunables.
     * @param table_store medium for L1+ SSTables.
     * @param l0_store    medium for L0 SSTables (MatrixKV: NVM);
     *                    may alias table_store.
     * @param wal_store   medium for the WAL; may alias either.
     */
    LsmTree(const LsmOptions &opts,
            std::shared_ptr<ExtentStore> table_store,
            std::shared_ptr<ExtentStore> l0_store,
            std::shared_ptr<ExtentStore> wal_store);
    ~LsmTree();

    LsmTree(const LsmTree &) = delete;
    LsmTree &operator=(const LsmTree &) = delete;

    Status put(uint64_t key, std::string_view value);
    Status get(uint64_t key, std::string *value);
    Status del(uint64_t key);
    Status scan(uint64_t start_key, size_t count,
                std::vector<std::pair<uint64_t, std::string>> *out);

    /** Flush memtables and run compactions until quiescent (tests). */
    void flushAll();

    LsmStats &stats() { return stats_; }
    BlockCache &blockCache() { return cache_; }

    /** Total bytes written to the SSD-resident stores (WAF numerator). */
    uint64_t ssdBytesWritten() const;

    size_t levelTableCount(int level) const;

  private:
    Status writeImpl(uint64_t key, EntryType type, std::string_view value);
    void maybeRotateMemtable();
    void maybeStall();
    void backgroundLoop();
    void flushOneImm();
    bool pickAndRunCompaction();
    void compactL0();
    void compactLevel(int level);
    /** Merge @p inputs (newest first) into tables appended to @p out. */
    void mergeTables(const std::vector<std::shared_ptr<Table>> &inputs,
                     uint64_t lo, uint64_t hi, bool drop_tombstones,
                     ExtentStore &dest,
                     std::vector<std::shared_ptr<Table>> &out);
    uint64_t levelTargetBytes(int level) const;
    uint64_t levelBytes(int level) const;
    /** Key-range partition of a key in matrix (partitioned-L0) mode. */
    int partitionOf(uint64_t key) const;

    LsmOptions opts_;
    std::shared_ptr<ExtentStore> table_store_;
    std::shared_ptr<ExtentStore> l0_store_;
    std::shared_ptr<ExtentStore> wal_store_;
    std::unique_ptr<Wal> wal_;
    BlockCache cache_;

    std::atomic<uint64_t> seq_{1};

    // Memtable rotation.
    std::mutex rotate_mu_;
    std::shared_ptr<MemTable> mem_;
    std::deque<std::shared_ptr<MemTable>> imm_;

    // Levels: levels_[0] newest-first; deeper levels sorted by min key.
    mutable std::shared_mutex version_mu_;
    std::vector<std::vector<std::shared_ptr<Table>>> levels_;
    uint64_t compact_cursor_ = 0;

    std::atomic<bool> stop_{false};
    std::condition_variable_any bg_cv_;
    std::thread bg_thread_;

    LsmStats stats_;

    // Shared-by-name process-wide metrics (see common/stats.h).
    stats::Counter *reg_flushes_;
    stats::Counter *reg_compactions_;
    stats::Counter *reg_compaction_bytes_;
    stats::Counter *reg_stall_ns_;
};

}  // namespace prism::lsm
