/**
 * @file
 * In-memory write buffer for the LSM baselines: an ordered map guarded
 * by a reader-writer lock. Once full it becomes immutable and a
 * background thread flushes it to an L0 SSTable.
 *
 * (The SLM-DB configuration places this conceptually on NVM: its WAL is
 * then unnecessary. We model that by pairing the memtable with an
 * NVM-backed WAL, which matches the persistence cost of an NVM
 * memtable without a separate implementation.)
 */
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>

#include "lsm/sstable.h"

namespace prism::lsm {

/** Sorted in-DRAM run of the freshest writes. */
class MemTable {
  public:
    MemTable() = default;

    /** Insert or overwrite; @return the table's new approximate size. */
    uint64_t
    add(uint64_t key, uint64_t seq, EntryType type, std::string_view value)
    {
        std::unique_lock<std::shared_mutex> lock(mu_);
        auto &slot = map_[key];
        bytes_ += value.size() + 32 -
                  (slot.seq != 0 ? slot.value.size() + 32 : 0);
        slot.key = key;
        slot.seq = seq;
        slot.type = type;
        slot.value.assign(value.data(), value.size());
        return bytes_;
    }

    /** @return the record, or nullopt if the key is not buffered. */
    std::optional<Entry>
    get(uint64_t key) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    /** Collect records with key >= @p start, ascending, up to @p max. */
    void
    collectRange(uint64_t start, size_t max,
                 std::vector<Entry> &out) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        for (auto it = map_.lower_bound(start);
             it != map_.end() && out.size() < max; ++it) {
            out.push_back(it->second);
        }
    }

    /** Visit all records in key order (flush path; table is immutable). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        for (const auto &[key, e] : map_)
            fn(e);
    }

    uint64_t sizeBytes() const {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return bytes_;
    }
    size_t entryCount() const {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return map_.size();
    }

  private:
    mutable std::shared_mutex mu_;
    std::map<uint64_t, Entry> map_;
    uint64_t bytes_ = 0;
};

}  // namespace prism::lsm
