#include "lsm/sstable.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/stats.h"

namespace prism::lsm {

namespace {

// Process-wide registry metrics; function-local statics keep the
// registry lookup to one lock acquisition per process.
stats::Counter &
blockCacheHits()
{
    static stats::Counter &c =
        stats::StatsRegistry::global().counter("lsm.block_cache.hits", "ops");
    return c;
}

stats::Counter &
blockCacheMisses()
{
    static stats::Counter &c = stats::StatsRegistry::global().counter(
        "lsm.block_cache.misses", "ops");
    return c;
}

stats::Counter &
bloomNegatives()
{
    static stats::Counter &c = stats::StatsRegistry::global().counter(
        "lsm.bloom_negatives", "ops");
    return c;
}

/** On-storage record header inside a block. */
struct RecordHeader {
    uint64_t key;
    uint64_t seq;
    uint32_t value_len;
    uint32_t type;  ///< EntryType; 0xFFFFFFFF marks block padding
};
constexpr uint32_t kPadType = 0xFFFFFFFF;

std::atomic<uint64_t> g_next_table_id{1};

}  // namespace

// ---------------------------------------------------------------------------
// BlockCache

BlockCache::BlockCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

BlockCache::Block
BlockCache::get(uint64_t table_id, uint32_t block)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(keyOf(table_id, block));
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        blockCacheMisses().inc();
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    blockCacheHits().inc();
    return it->second->data;
}

void
BlockCache::put(uint64_t table_id, uint32_t block, Block data)
{
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t key = keyOf(table_id, block);
    if (map_.count(key) > 0)
        return;
    lru_.push_front({key, std::move(data)});
    map_[key] = lru_.begin();
    used_ += lru_.front().data->size();
    while (used_ > capacity_ && !lru_.empty()) {
        auto &victim = lru_.back();
        used_ -= victim.data->size();
        map_.erase(victim.key);
        lru_.pop_back();
    }
}

void
BlockCache::eraseTable(uint64_t table_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end();) {
        if ((it->key >> 20) == table_id) {
            used_ -= it->data->size();
            map_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------------------
// TableBuilder

TableBuilder::TableBuilder(ExtentStore &store, size_t expected_keys,
                           int bloom_bits_per_key)
    : store_(store), bloom_(expected_keys, bloom_bits_per_key),
      block_(kBlockBytes, 0)
{
}

void
TableBuilder::add(const Entry &e)
{
    PRISM_DCHECK(!any_ || e.key > max_key_);
    const uint32_t need =
        sizeof(RecordHeader) + static_cast<uint32_t>(e.value.size());
    PRISM_CHECK(need <= kBlockBytes);
    if (block_fill_ + need > kBlockBytes)
        sealBlock();
    if (block_fill_ == 0)
        first_keys_.push_back(e.key);

    auto *hdr = reinterpret_cast<RecordHeader *>(block_.data() +
                                                 block_fill_);
    hdr->key = e.key;
    hdr->seq = e.seq;
    hdr->value_len = static_cast<uint32_t>(e.value.size());
    hdr->type = static_cast<uint32_t>(e.type);
    std::memcpy(hdr + 1, e.value.data(), e.value.size());
    block_fill_ += need;

    bloom_.add(e.key);
    if (!any_)
        min_key_ = e.key;
    max_key_ = e.key;
    any_ = true;
    count_++;
}

void
TableBuilder::sealBlock()
{
    if (block_fill_ == 0)
        return;
    if (block_fill_ + sizeof(RecordHeader) <= kBlockBytes) {
        // Mark the tail so readers stop at the pad record.
        auto *hdr = reinterpret_cast<RecordHeader *>(block_.data() +
                                                     block_fill_);
        hdr->type = kPadType;
    }
    buf_.insert(buf_.end(), block_.begin(), block_.end());
    std::fill(block_.begin(), block_.end(), 0);
    block_fill_ = 0;
}

std::shared_ptr<Table>
TableBuilder::finish()
{
    sealBlock();
    if (buf_.empty())
        return nullptr;
    const uint64_t offset = store_.alloc(buf_.size());
    if (offset == UINT64_MAX)
        return nullptr;
    const Status st = store_.write(offset, buf_.data(),
                                   static_cast<uint32_t>(buf_.size()));
    PRISM_CHECK(st.isOk());
    return std::shared_ptr<Table>(new Table(
        store_, g_next_table_id.fetch_add(1, std::memory_order_relaxed),
        offset, buf_.size(), std::move(first_keys_), std::move(bloom_),
        min_key_, max_key_, count_));
}

// ---------------------------------------------------------------------------
// Table

Table::Table(ExtentStore &store, uint64_t id, uint64_t offset, uint64_t len,
             std::vector<uint64_t> first_keys, BloomFilter bloom,
             uint64_t min_key, uint64_t max_key, size_t count)
    : store_(store), id_(id), offset_(offset), len_(len),
      first_keys_(std::move(first_keys)), bloom_(std::move(bloom)),
      min_key_(min_key), max_key_(max_key), count_(count)
{
}

Table::~Table()
{
    store_.free(offset_, len_);
}

BlockCache::Block
Table::readBlock(uint32_t index, BlockCache *cache) const
{
    if (cache != nullptr) {
        if (auto block = cache->get(id_, index))
            return block;
    }
    auto block = std::make_shared<std::vector<uint8_t>>(
        TableBuilder::kBlockBytes);
    const Status st = store_.read(
        offset_ + static_cast<uint64_t>(index) * TableBuilder::kBlockBytes,
        block->data(), TableBuilder::kBlockBytes);
    PRISM_CHECK(st.isOk());
    if (cache != nullptr)
        cache->put(id_, index, block);
    return block;
}

std::optional<Entry>
Table::get(uint64_t key, BlockCache *cache) const
{
    if (key < min_key_ || key > max_key_)
        return std::nullopt;
    if (!bloom_.mayContain(key)) {
        // In key range but rejected by the filter: a saved block read.
        bloomNegatives().inc();
        return std::nullopt;
    }
    // Find the last block whose first key is <= key.
    auto it = std::upper_bound(first_keys_.begin(), first_keys_.end(), key);
    if (it == first_keys_.begin())
        return std::nullopt;
    const auto block_index =
        static_cast<uint32_t>(it - first_keys_.begin() - 1);
    const auto block = readBlock(block_index, cache);

    uint32_t pos = 0;
    while (pos + sizeof(RecordHeader) <= block->size()) {
        const auto *hdr =
            reinterpret_cast<const RecordHeader *>(block->data() + pos);
        if (hdr->type == kPadType)
            break;
        if (hdr->key == key) {
            Entry e;
            e.key = hdr->key;
            e.seq = hdr->seq;
            e.type = static_cast<EntryType>(hdr->type);
            e.value.assign(
                reinterpret_cast<const char *>(hdr + 1), hdr->value_len);
            return e;
        }
        if (hdr->key > key)
            break;  // records are sorted
        pos += sizeof(RecordHeader) + hdr->value_len;
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// Table::Iter

Table::Iter::Iter(const Table &table, BlockCache *cache)
    : table_(table), cache_(cache)
{
    if (loadBlock(0)) {
        valid_ = pos_ < block_entries_.size();
        if (valid_)
            entry_ = block_entries_[pos_];
    }
}

bool
Table::Iter::loadBlock(uint32_t index)
{
    if (index >= table_.blockCount()) {
        valid_ = false;
        return false;
    }
    block_index_ = index;
    // Sequential iteration readahead (as RocksDB iterators do): pull a
    // span of upcoming blocks with one I/O and stage them in the cache.
    // Pointless on byte-addressable NVM, where block reads are cheap.
    if (cache_ != nullptr && !table_.store_.onNvm() &&
        cache_->get(table_.id(), index) == nullptr) {
        constexpr uint32_t kReadahead = 8;
        const uint32_t n =
            std::min(kReadahead, table_.blockCount() - index);
        std::vector<uint8_t> span(
            static_cast<size_t>(n) * TableBuilder::kBlockBytes);
        const Status st = table_.store_.read(
            table_.offset_ +
                static_cast<uint64_t>(index) * TableBuilder::kBlockBytes,
            span.data(), static_cast<uint32_t>(span.size()));
        PRISM_CHECK(st.isOk());
        for (uint32_t b = 0; b < n; b++) {
            auto blk = std::make_shared<std::vector<uint8_t>>(
                span.begin() + static_cast<long>(b) *
                                   TableBuilder::kBlockBytes,
                span.begin() + static_cast<long>(b + 1) *
                                   TableBuilder::kBlockBytes);
            cache_->put(table_.id(), index + b, std::move(blk));
        }
    }
    const auto block = table_.readBlock(index, cache_);
    block_entries_.clear();
    uint32_t pos = 0;
    while (pos + sizeof(RecordHeader) <= block->size()) {
        const auto *hdr =
            reinterpret_cast<const RecordHeader *>(block->data() + pos);
        if (hdr->type == kPadType)
            break;
        // A zero-length zeroed tail also terminates the block.
        if (hdr->key == 0 && hdr->seq == 0 && hdr->value_len == 0 &&
            !block_entries_.empty())
            break;
        Entry e;
        e.key = hdr->key;
        e.seq = hdr->seq;
        e.type = static_cast<EntryType>(hdr->type);
        e.value.assign(reinterpret_cast<const char *>(hdr + 1),
                       hdr->value_len);
        block_entries_.push_back(std::move(e));
        pos += sizeof(RecordHeader) + hdr->value_len;
    }
    pos_ = 0;
    return true;
}

void
Table::Iter::seek(uint64_t key)
{
    if (key <= table_.minKey())
        return;  // already at the first record
    auto it = std::upper_bound(table_.first_keys_.begin(),
                               table_.first_keys_.end(), key);
    uint32_t index = 0;
    if (it != table_.first_keys_.begin())
        index = static_cast<uint32_t>(it - table_.first_keys_.begin() - 1);
    if (!loadBlock(index)) {
        valid_ = false;
        return;
    }
    while (pos_ < block_entries_.size() && block_entries_[pos_].key < key)
        pos_++;
    if (pos_ >= block_entries_.size()) {
        if (!loadBlock(block_index_ + 1)) {
            valid_ = false;
            return;
        }
    }
    valid_ = pos_ < block_entries_.size();
    if (valid_)
        entry_ = block_entries_[pos_];
}

void
Table::Iter::next()
{
    PRISM_DCHECK(valid_);
    pos_++;
    if (pos_ >= block_entries_.size()) {
        if (!loadBlock(block_index_ + 1)) {
            valid_ = false;
            return;
        }
    }
    valid_ = pos_ < block_entries_.size();
    if (valid_)
        entry_ = block_entries_[pos_];
}

}  // namespace prism::lsm
