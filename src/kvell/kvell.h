/**
 * @file
 * KVell baseline (Lepers et al., SOSP'19) — the paper's DRAM+SSD
 * shared-nothing comparator (§7.3).
 *
 * Architecture reproduced here:
 *  - Keys are hash-partitioned across worker threads (a configurable
 *    number per SSD); each worker owns a private in-memory sorted index
 *    and a private slab region on its SSD. Shared-nothing means no
 *    locks — and no load balancing, the weakness Fig. 9 exposes under
 *    skew.
 *  - All storage I/O is page-granular (4 KB): updates read-modify-write
 *    their page; values never span pages.
 *  - Clients enqueue requests on the owning worker's queue even when the
 *    data is cached — the queuing-everything behaviour that inflates
 *    KVell's tail latency in Table 3.
 *  - Workers process requests in batches up to a queue depth (64),
 *    submitting the batch's page I/Os asynchronously and reaping them
 *    before answering.
 *  - A DRAM page cache (split evenly among workers) serves read-hot
 *    pages.
 *  - There is no commit log: recovery scans all slab pages to rebuild
 *    the in-memory indexes (§7.6's recovery-time comparison).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/waiter.h"
#include "sim/ssd_device.h"

namespace prism::kvell {

/** Tunables; defaults follow the paper's configuration of KVell. */
struct KvellOptions {
    int workers_per_ssd = 3;
    int queue_depth = 64;
    uint64_t page_cache_bytes = 256ull * 1024 * 1024;
    /** Slab slot payload capacity (values above this are rejected). */
    uint32_t item_bytes = 1152;
};

/** Operation counters. */
struct KvellStats {
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> user_bytes_written{0};
};

/** The KVell store. */
class Kvell {
  public:
    Kvell(const KvellOptions &opts,
          std::vector<std::shared_ptr<sim::SsdDevice>> ssds);
    ~Kvell();

    Kvell(const Kvell &) = delete;
    Kvell &operator=(const Kvell &) = delete;

    Status put(uint64_t key, std::string_view value);
    Status get(uint64_t key, std::string *value);
    Status del(uint64_t key);
    Status scan(uint64_t start_key, size_t count,
                std::vector<std::pair<uint64_t, std::string>> *out);

    KvellStats &stats() { return stats_; }

    uint64_t ssdBytesWritten() const;

    /**
     * Drop all in-memory indexes and rebuild them by scanning every
     * slab page on every SSD (KVell's crash-recovery procedure).
     * @return wall-clock nanoseconds spent.
     */
    uint64_t recoverByFullScan();

    size_t size() const;

  private:
    static constexpr uint32_t kPageBytes = 4096;

    /** On-page slot header. */
    struct SlotHeader {
        uint64_t key;
        uint32_t value_len;  ///< 0 = free slot
        uint32_t valid;
    };

    enum class ReqType { kPut, kGet, kDel, kScanIndex };

    struct Request {
        ReqType type;
        uint64_t key = 0;
        std::string_view value_in;
        std::string *value_out = nullptr;
        uint64_t scan_start = 0;
        size_t scan_count = 0;
        std::vector<std::pair<uint64_t, std::string>> *scan_out = nullptr;
        Status status;
        Waiter waiter;
    };

    struct Page {
        std::vector<uint8_t> data;
        bool loaded = false;
    };

    /** One shared-nothing worker. */
    struct Worker {
        int id;
        sim::SsdDevice *ssd;
        uint64_t slab_base;   ///< device byte offset of this slab
        uint64_t slab_pages;

        std::mutex queue_mu;
        std::condition_variable queue_cv;
        std::deque<Request *> queue;

        // Worker-private state (worker thread only).
        std::map<uint64_t, uint64_t> index;  ///< key -> global slot id
        std::vector<uint64_t> free_slots;
        uint64_t bump_page = 0;

        // Page cache (worker-private share).
        uint64_t cache_budget;
        uint64_t cache_used = 0;
        std::list<uint64_t> cache_lru;  ///< front = most recent
        std::unordered_map<uint64_t,
                           std::pair<std::vector<uint8_t>,
                                     std::list<uint64_t>::iterator>>
            cache;

        std::thread thread;
    };

    int workerFor(uint64_t key) const;
    void workerLoop(Worker &w);
    void processBatch(Worker &w, std::vector<Request *> &batch);
    void processScan(Worker &w, Request &req);

    /** Cache helpers (worker thread only). */
    std::vector<uint8_t> *cacheLookup(Worker &w, uint64_t page);
    void cacheInsert(Worker &w, uint64_t page, std::vector<uint8_t> data);

    uint64_t slotsPerPage() const { return kPageBytes / slot_bytes_; }

    KvellOptions opts_;
    uint32_t slot_bytes_;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> completion_threads_;
    std::atomic<bool> stop_{false};
    KvellStats stats_;

    // Shared-by-name process-wide metrics (see common/stats.h). The
    // worker-batch histogram doubles as a per-shard imbalance signal:
    // skewed shards run systematically deeper batches.
    stats::Counter *reg_cache_hits_;
    stats::Counter *reg_cache_misses_;
    stats::LatencyStat *reg_worker_batch_;
};

}  // namespace prism::kvell
