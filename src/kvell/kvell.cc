#include "kvell/kvell.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rand.h"

namespace prism::kvell {

Kvell::Kvell(const KvellOptions &opts,
             std::vector<std::shared_ptr<sim::SsdDevice>> ssds)
    : opts_(opts), ssds_(std::move(ssds))
{
    PRISM_CHECK(!ssds_.empty());
    auto &reg = stats::StatsRegistry::global();
    reg_cache_hits_ = &reg.counter("kvell.cache_hits", "ops");
    reg_cache_misses_ = &reg.counter("kvell.cache_misses", "ops");
    reg_worker_batch_ = &reg.histogram("kvell.worker_batch", "reqs");
    // Slot size: smallest divisor layout that fits item + header.
    const uint32_t need = opts_.item_bytes + sizeof(SlotHeader);
    uint32_t per_page = kPageBytes / need;
    if (per_page == 0)
        per_page = 1;
    slot_bytes_ = kPageBytes / per_page;
    PRISM_CHECK(slot_bytes_ >= sizeof(SlotHeader));

    const int total_workers =
        static_cast<int>(ssds_.size()) * opts_.workers_per_ssd;
    const uint64_t cache_share =
        opts_.page_cache_bytes / static_cast<uint64_t>(total_workers);
    for (int i = 0; i < total_workers; i++) {
        auto w = std::make_unique<Worker>();
        w->id = i;
        const size_t ssd_idx =
            static_cast<size_t>(i) % ssds_.size();
        w->ssd = ssds_[ssd_idx].get();
        const int on_this_ssd = opts_.workers_per_ssd;
        const uint64_t share = w->ssd->capacity() /
                               static_cast<uint64_t>(on_this_ssd);
        const auto rank = static_cast<uint64_t>(
            i / static_cast<int>(ssds_.size()));
        w->slab_base = (rank * share + kPageBytes - 1) &
                       ~(static_cast<uint64_t>(kPageBytes) - 1);
        w->slab_pages = share / kPageBytes;
        w->cache_budget = cache_share;
        workers_.push_back(std::move(w));
    }
    for (auto &w : workers_)
        w->thread = std::thread([this, &w] { workerLoop(*w); });
    // One completion poller per SSD routes async completions to waiters.
    for (auto &ssd : ssds_) {
        completion_threads_.emplace_back([this, ssd] {
            std::vector<sim::SsdCompletion> done;
            while (!stop_.load(std::memory_order_acquire)) {
                done.clear();
                if (ssd->waitCompletions(done, 256, 200) == 0)
                    continue;
                for (const auto &c : done)
                    reinterpret_cast<Waiter *>(c.user_data)->signal(1);
            }
        });
    }
}

Kvell::~Kvell()
{
    stop_.store(true, std::memory_order_release);
    for (auto &w : workers_) {
        w->queue_cv.notify_all();
        w->thread.join();
    }
    for (auto &t : completion_threads_)
        t.join();
}

int
Kvell::workerFor(uint64_t key) const
{
    return static_cast<int>(hash64(key) % workers_.size());
}

Status
Kvell::put(uint64_t key, std::string_view value)
{
    if (value.size() > opts_.item_bytes)
        return Status::invalidArgument("value exceeds slab item size");
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    stats_.user_bytes_written.fetch_add(value.size(),
                                        std::memory_order_relaxed);
    Request req;
    req.type = ReqType::kPut;
    req.key = key;
    req.value_in = value;
    auto &w = *workers_[workerFor(key)];
    {
        std::lock_guard<std::mutex> lock(w.queue_mu);
        w.queue.push_back(&req);
    }
    w.queue_cv.notify_one();
    req.waiter.wait();
    return req.status;
}

Status
Kvell::get(uint64_t key, std::string *value)
{
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    Request req;
    req.type = ReqType::kGet;
    req.key = key;
    req.value_out = value;
    auto &w = *workers_[workerFor(key)];
    {
        std::lock_guard<std::mutex> lock(w.queue_mu);
        w.queue.push_back(&req);
    }
    w.queue_cv.notify_one();
    req.waiter.wait();
    return req.status;
}

Status
Kvell::del(uint64_t key)
{
    Request req;
    req.type = ReqType::kDel;
    req.key = key;
    auto &w = *workers_[workerFor(key)];
    {
        std::lock_guard<std::mutex> lock(w.queue_mu);
        w.queue.push_back(&req);
    }
    w.queue_cv.notify_one();
    req.waiter.wait();
    return req.status;
}

Status
Kvell::scan(uint64_t start_key, size_t count,
            std::vector<std::pair<uint64_t, std::string>> *out)
{
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    // Fan the scan out to every worker (the key range is hash-scattered
    // over all of them), then merge the per-worker sorted results.
    std::vector<std::unique_ptr<Request>> reqs;
    std::vector<std::vector<std::pair<uint64_t, std::string>>> partials(
        workers_.size());
    // Each worker holds ~1/W of any key range; fetch a padded share from
    // each (occasionally under-filling the scan, as KVell's prefetch
    // heuristics do).
    const size_t per_worker =
        count * 3 / (workers_.size() * 2) + 2;
    for (size_t i = 0; i < workers_.size(); i++) {
        auto req = std::make_unique<Request>();
        req->type = ReqType::kScanIndex;
        req->scan_start = start_key;
        req->scan_count = std::min(count, per_worker);
        req->scan_out = &partials[i];
        {
            std::lock_guard<std::mutex> lock(workers_[i]->queue_mu);
            workers_[i]->queue.push_back(req.get());
        }
        workers_[i]->queue_cv.notify_one();
        reqs.push_back(std::move(req));
    }
    for (auto &req : reqs)
        req->waiter.wait();

    out->clear();
    std::vector<size_t> pos(workers_.size(), 0);
    while (out->size() < count) {
        size_t best = SIZE_MAX;
        uint64_t best_key = UINT64_MAX;
        for (size_t i = 0; i < partials.size(); i++) {
            if (pos[i] < partials[i].size() &&
                partials[i][pos[i]].first < best_key) {
                best_key = partials[i][pos[i]].first;
                best = i;
            }
        }
        if (best == SIZE_MAX)
            break;
        out->push_back(std::move(partials[best][pos[best]]));
        pos[best]++;
    }
    return Status::ok();
}

std::vector<uint8_t> *
Kvell::cacheLookup(Worker &w, uint64_t page)
{
    auto it = w.cache.find(page);
    if (it == w.cache.end()) {
        stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
        reg_cache_misses_->inc();
        return nullptr;
    }
    w.cache_lru.splice(w.cache_lru.begin(), w.cache_lru, it->second.second);
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    reg_cache_hits_->inc();
    return &it->second.first;
}

void
Kvell::cacheInsert(Worker &w, uint64_t page, std::vector<uint8_t> data)
{
    if (w.cache.count(page) > 0)
        return;
    w.cache_lru.push_front(page);
    w.cache_used += data.size();
    w.cache.emplace(page,
                    std::make_pair(std::move(data), w.cache_lru.begin()));
    while (w.cache_used > w.cache_budget && !w.cache_lru.empty()) {
        const uint64_t victim = w.cache_lru.back();
        w.cache_lru.pop_back();
        auto it = w.cache.find(victim);
        w.cache_used -= it->second.first.size();
        w.cache.erase(it);
    }
}

void
Kvell::workerLoop(Worker &w)
{
    std::vector<Request *> batch;
    while (true) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(w.queue_mu);
            w.queue_cv.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       !w.queue.empty();
            });
            if (stop_.load(std::memory_order_acquire) && w.queue.empty())
                return;
            while (!w.queue.empty() &&
                   batch.size() < static_cast<size_t>(opts_.queue_depth)) {
                batch.push_back(w.queue.front());
                w.queue.pop_front();
            }
        }
        reg_worker_batch_->record(batch.size());
        processBatch(w, batch);
    }
}

void
Kvell::processBatch(Worker &w, std::vector<Request *> &batch)
{
    // Pages touched by this batch are staged in a local map (pinned for
    // the batch's duration — the LRU cache may evict at any time), then
    // published to the cache at the end.
    std::unordered_map<uint64_t, std::vector<uint8_t>> local;

    // Phase 1: figure out which pages each request needs and read every
    // uncached one in a single asynchronous batch (queue-depth I/O).
    struct PendingIo {
        uint64_t page;
        std::vector<uint8_t> buf;
        Waiter waiter;
    };
    std::vector<std::unique_ptr<PendingIo>> reads;
    auto needPage = [&](uint64_t page) {
        if (local.count(page) > 0)
            return;
        if (std::vector<uint8_t> *cached = cacheLookup(w, page)) {
            local[page] = *cached;
            return;
        }
        for (const auto &r : reads) {
            if (r->page == page)
                return;
        }
        auto io = std::make_unique<PendingIo>();
        io->page = page;
        io->buf.resize(kPageBytes);
        reads.push_back(std::move(io));
    };

    const uint64_t spp = slotsPerPage();
    for (Request *req : batch) {
        switch (req->type) {
          case ReqType::kPut: {
            auto it = w.index.find(req->key);
            if (it != w.index.end()) {
                needPage(it->second / spp);  // read-modify-write
            } else if (!w.free_slots.empty()) {
                needPage(w.free_slots.back() / spp);
            }
            // Fresh bump-allocated pages start zeroed; no read needed.
            break;
          }
          case ReqType::kGet:
          case ReqType::kDel: {
            auto it = w.index.find(req->key);
            if (it != w.index.end())
                needPage(it->second / spp);
            break;
          }
          case ReqType::kScanIndex:
            // Performs its own page I/O; the completion signal happens
            // with the rest of the batch (the request object must stay
            // untouched by us after it is signalled).
            processScan(w, *req);
            break;
        }
    }

    if (!reads.empty()) {
        std::vector<sim::SsdIoRequest> ios;
        ios.reserve(reads.size());
        for (auto &r : reads) {
            sim::SsdIoRequest io;
            io.op = sim::SsdIoRequest::Op::kRead;
            io.offset = w.slab_base + r->page * kPageBytes;
            io.length = kPageBytes;
            io.buf = r->buf.data();
            io.user_data = reinterpret_cast<uint64_t>(&r->waiter);
            ios.push_back(io);
        }
        w.ssd->submit({ios.data(), ios.size()});
        for (auto &r : reads) {
            r->waiter.wait();
            local[r->page] = std::move(r->buf);
        }
    }

    // Phase 2: apply each request against the staged pages and collect
    // dirty pages for one asynchronous write batch.
    std::vector<uint64_t> dirty;
    auto markDirty = [&](uint64_t page) {
        if (std::find(dirty.begin(), dirty.end(), page) == dirty.end())
            dirty.push_back(page);
    };

    for (Request *req : batch) {
        switch (req->type) {
          case ReqType::kPut: {
            uint64_t slot;
            auto it = w.index.find(req->key);
            if (it != w.index.end()) {
                slot = it->second;
            } else if (!w.free_slots.empty()) {
                slot = w.free_slots.back();
                w.free_slots.pop_back();
                w.index[req->key] = slot;
            } else {
                if (w.bump_page >= w.slab_pages) {
                    req->status = Status::outOfSpace("slab full");
                    break;
                }
                const uint64_t page = w.bump_page++;
                local[page] = std::vector<uint8_t>(kPageBytes, 0);
                slot = page * spp;
                for (uint64_t s = 1; s < spp; s++)
                    w.free_slots.push_back(page * spp + s);
                w.index[req->key] = slot;
            }
            const uint64_t page = slot / spp;
            auto lit = local.find(page);
            PRISM_CHECK(lit != local.end());
            auto *hdr = reinterpret_cast<SlotHeader *>(
                lit->second.data() + (slot % spp) * slot_bytes_);
            hdr->key = req->key;
            hdr->value_len =
                static_cast<uint32_t>(req->value_in.size());
            hdr->valid = 1;
            std::memcpy(hdr + 1, req->value_in.data(),
                        req->value_in.size());
            markDirty(page);
            req->status = Status::ok();
            break;
          }
          case ReqType::kGet: {
            auto it = w.index.find(req->key);
            if (it == w.index.end()) {
                req->status = Status::notFound();
                break;
            }
            const uint64_t page = it->second / spp;
            auto lit = local.find(page);
            PRISM_CHECK(lit != local.end());
            const auto *hdr = reinterpret_cast<const SlotHeader *>(
                lit->second.data() + (it->second % spp) * slot_bytes_);
            req->value_out->assign(
                reinterpret_cast<const char *>(hdr + 1), hdr->value_len);
            req->status = Status::ok();
            break;
          }
          case ReqType::kDel: {
            auto it = w.index.find(req->key);
            if (it == w.index.end()) {
                req->status = Status::notFound();
                break;
            }
            const uint64_t slot = it->second;
            const uint64_t page = slot / spp;
            auto lit = local.find(page);
            PRISM_CHECK(lit != local.end());
            auto *hdr = reinterpret_cast<SlotHeader *>(
                lit->second.data() + (slot % spp) * slot_bytes_);
            hdr->valid = 0;
            hdr->value_len = 0;
            w.index.erase(it);
            w.free_slots.push_back(slot);
            markDirty(page);
            req->status = Status::ok();
            break;
          }
          case ReqType::kScanIndex:
            break;  // handled in phase 1
        }
    }

    if (!dirty.empty()) {
        std::vector<std::unique_ptr<PendingIo>> writes;
        std::vector<sim::SsdIoRequest> ios;
        for (const uint64_t page : dirty) {
            auto io = std::make_unique<PendingIo>();
            io->page = page;
            auto lit = local.find(page);
            PRISM_CHECK(lit != local.end());
            sim::SsdIoRequest w_io;
            w_io.op = sim::SsdIoRequest::Op::kWrite;
            w_io.offset = w.slab_base + page * kPageBytes;
            w_io.length = kPageBytes;
            w_io.src = lit->second.data();
            w_io.user_data = reinterpret_cast<uint64_t>(&io->waiter);
            ios.push_back(w_io);
            writes.push_back(std::move(io));
        }
        w.ssd->submit({ios.data(), ios.size()});
        for (auto &io : writes)
            io->waiter.wait();
    }

    // Publish the batch's pages to the cache (refreshing stale copies).
    for (auto &[page, data] : local) {
        if (std::vector<uint8_t> *cached = cacheLookup(w, page))
            *cached = data;
        else
            cacheInsert(w, page, std::move(data));
    }

    for (Request *req : batch)
        req->waiter.signal();
}

void
Kvell::processScan(Worker &w, Request &req)
{
    const uint64_t spp = slotsPerPage();
    auto it = w.index.lower_bound(req.scan_start);
    std::vector<std::pair<uint64_t, uint64_t>> hits;  // key, slot
    while (it != w.index.end() && hits.size() < req.scan_count) {
        hits.emplace_back(it->first, it->second);
        ++it;
    }
    // Read the needed pages (dedup) in one async batch, staging them in
    // a local pinned map (the LRU cache may evict between uses).
    std::unordered_map<uint64_t, std::vector<uint8_t>> local;
    struct PendingIo {
        uint64_t page;
        std::vector<uint8_t> buf;
        Waiter waiter;
    };
    std::vector<std::unique_ptr<PendingIo>> reads;
    for (const auto &[key, slot] : hits) {
        const uint64_t page = slot / spp;
        if (local.count(page) > 0)
            continue;
        if (std::vector<uint8_t> *cached = cacheLookup(w, page)) {
            local[page] = *cached;
            continue;
        }
        bool pending = false;
        for (const auto &r : reads)
            pending |= r->page == page;
        if (pending)
            continue;
        auto io = std::make_unique<PendingIo>();
        io->page = page;
        io->buf.resize(kPageBytes);
        reads.push_back(std::move(io));
    }
    if (!reads.empty()) {
        std::vector<sim::SsdIoRequest> ios;
        for (auto &r : reads) {
            sim::SsdIoRequest io;
            io.op = sim::SsdIoRequest::Op::kRead;
            io.offset = w.slab_base + r->page * kPageBytes;
            io.length = kPageBytes;
            io.buf = r->buf.data();
            io.user_data = reinterpret_cast<uint64_t>(&r->waiter);
            ios.push_back(io);
        }
        w.ssd->submit({ios.data(), ios.size()});
        for (auto &r : reads) {
            r->waiter.wait();
            local[r->page] = std::move(r->buf);
        }
    }
    for (const auto &[key, slot] : hits) {
        auto lit = local.find(slot / spp);
        PRISM_CHECK(lit != local.end());
        const auto *hdr = reinterpret_cast<const SlotHeader *>(
            lit->second.data() + (slot % spp) * slot_bytes_);
        req.scan_out->emplace_back(
            key, std::string(reinterpret_cast<const char *>(hdr + 1),
                             hdr->value_len));
    }
    for (auto &[page, data] : local) {
        if (cacheLookup(w, page) == nullptr)
            cacheInsert(w, page, std::move(data));
    }
    req.status = Status::ok();
}

uint64_t
Kvell::ssdBytesWritten() const
{
    uint64_t total = 0;
    for (const auto &ssd : ssds_)
        total += ssd->stats().bytes_written.load(std::memory_order_relaxed);
    return total;
}

size_t
Kvell::size() const
{
    // Racy against concurrent writers; used quiesced by tests/benches.
    size_t total = 0;
    for (const auto &w : workers_)
        total += w->index.size();
    return total;
}

uint64_t
Kvell::recoverByFullScan()
{
    const uint64_t t0 = nowNs();
    const uint64_t spp = slotsPerPage();
    for (auto &w : workers_) {
        w->index.clear();
        w->free_slots.clear();
        std::vector<uint8_t> page(kPageBytes);
        // KVell must scan every allocated slab page on the device.
        for (uint64_t p = 0; p < w->bump_page; p++) {
            w->ssd->readSync(w->slab_base + p * kPageBytes, page.data(),
                             kPageBytes);
            for (uint64_t s = 0; s < spp; s++) {
                const auto *hdr = reinterpret_cast<const SlotHeader *>(
                    page.data() + s * slot_bytes_);
                if (hdr->valid != 0)
                    w->index[hdr->key] = p * spp + s;
                else
                    w->free_slots.push_back(p * spp + s);
            }
        }
    }
    return nowNs() - t0;
}

}  // namespace prism::kvell
