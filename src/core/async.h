/**
 * @file
 * Completion-driven request handles for the async PrismDb API.
 *
 * An async operation (PrismDb::asyncGet and friends) returns an OpFuture:
 * a shared handle to the operation's result slot. One caller thread can
 * start hundreds of operations, keep the futures, and drain them later —
 * which is how the paper's per-SSD queue depths get filled without one
 * blocked thread per outstanding read (§5.3).
 *
 * Lifecycle:
 *
 *   caller thread                         completion thread (per VS)
 *   ─────────────                         ──────────────────────────
 *   asyncGet(key)
 *     ├─ synchronous prefix: index /
 *     │  HSIT / SVC / PWB under an
 *     │  EpochGuard; may complete here
 *     └─ SSD miss path: submit a tagged
 *        read, return the future   ───▶   device completion arrives
 *                                         ├─ AsyncIoHandler::onIoComplete
 *                                         ├─ validate + publish to SVC
 *                                         └─ AsyncOpState::complete()
 *   future.wait() / future.ready()  ◀──   (futex wake + user callback)
 *
 * The blocking API is the degenerate case: put()/get()/del() run the same
 * implementation and wait the future before returning.
 *
 * Threading contract: the user callback (when set) runs on whichever
 * thread completes the operation — the *caller* thread when the op
 * finishes in its synchronous prefix (NVM hit, SVC hit, immediate error),
 * a Value Storage completion thread or background worker otherwise. Keep
 * callbacks short and non-blocking; they run inside the completion loop
 * that services every other in-flight I/O on that SSD.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace prism::core {

/** Optional completion hook; see the threading contract above. */
using AsyncCallback = std::function<void(const Status &)>;

/**
 * Result slot shared between the issuing thread and whichever thread
 * completes the operation. `done` is the publication flag: complete()
 * release-stores it after filling every other field, so a ready()
 * observer may read them without further synchronisation.
 */
struct AsyncOpState {
    std::atomic<uint32_t> done{0};
    Status status;
    std::string value;  ///< asyncGet result
    std::vector<std::pair<uint64_t, std::string>> rows;  ///< asyncScan
    AsyncCallback callback;

    void
    complete(Status st)
    {
        status = std::move(st);
        done.store(1, std::memory_order_release);
        done.notify_all();
        if (callback)
            callback(status);
    }

    bool
    ready() const
    {
        return done.load(std::memory_order_acquire) != 0;
    }

    void
    wait() const
    {
        while (done.load(std::memory_order_acquire) == 0)
            done.wait(0, std::memory_order_acquire);
    }
};

/**
 * Caller-side handle to an async operation. Copyable (shared state);
 * cheap to move. A default-constructed future is invalid.
 */
class OpFuture {
  public:
    OpFuture() = default;
    explicit OpFuture(std::shared_ptr<AsyncOpState> s)
        : state_(std::move(s))
    {
    }

    bool valid() const { return state_ != nullptr; }

    /** Non-blocking: has the operation finished? */
    bool ready() const { return state_->ready(); }

    /** Block until finished; returns the final status. */
    const Status &
    wait() const
    {
        state_->wait();
        return state_->status;
    }

    /** Final status; only meaningful once ready(). */
    const Status &status() const { return state_->status; }

    /** asyncGet payload; only meaningful once ready() and ok. */
    const std::string &value() const { return state_->value; }
    std::string &&takeValue() { return std::move(state_->value); }

    /** asyncScan rows; only meaningful once ready() and ok. */
    const std::vector<std::pair<uint64_t, std::string>> &
    rows() const
    {
        return state_->rows;
    }
    std::vector<std::pair<uint64_t, std::string>> &&
    takeRows()
    {
        return std::move(state_->rows);
    }

  private:
    std::shared_ptr<AsyncOpState> state_;
};

/**
 * Completion-side dispatch hook between the io::IoBackend completion
 * stream and the async API.
 *
 * user_data tagging on device requests (pointers are 8-byte aligned, so
 * the low three bits are free):
 *   - bit 0 set: ReadWaiter of a chunk-write ticket (value_storage.cc)
 *   - bit 1 set: AsyncIoHandler* — the VS completion loop strips the tag
 *     and calls onIoComplete(status) on its own thread
 *   - untagged:  ReadWaiter of a blocking batched read (read_batcher.cc)
 *
 * onIoComplete owns the continuation: it may resubmit the I/O (transient
 * error retry), restart the lookup (the record moved mid-flight), or
 * finish the op. The handler frees itself when the op leaves the device.
 */
class AsyncIoHandler {
  public:
    static constexpr uint64_t kTag = 2;
    /** Mask clearing every low tag bit before the pointer cast. */
    static constexpr uint64_t kTagMask = 7;

    virtual ~AsyncIoHandler() = default;
    virtual void onIoComplete(const Status &st) = 0;
};

}  // namespace prism::core
