#include "core/addr.h"

#include "common/crc32.h"

namespace prism::core {

uint32_t
recordCrc(const ValueRecordHeader &hdr, const void *payload)
{
    uint32_t crc = crc32c(&hdr.backward, sizeof(hdr.backward));
    crc = crc32c(crc, &hdr.key, sizeof(hdr.key));
    crc = crc32c(crc, &hdr.value_size, sizeof(hdr.value_size));
    return crc32c(crc, payload, hdr.value_size);
}

}  // namespace prism::core
