#include "core/chunk_writer.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace prism::core {

namespace {
/** Retry budget for a failing chunk write before it is abandoned. */
constexpr int kMaxWriteRetries = 6;
/** Capped exponential backoff between retries. */
constexpr uint64_t kRetryBackoffBaseNs = 20'000;
constexpr uint64_t kRetryBackoffCapNs = 1'000'000;
}  // namespace

ChunkWriter::ChunkWriter(std::vector<ValueStorage *> targets, uint64_t seed,
                         int max_inflight)
    : targets_(std::move(targets)), rng_(seed),
      chunk_bytes_(targets_.empty() ? 0 : targets_[0]->chunkBytes()),
      max_inflight_(max_inflight)
{
    PRISM_CHECK(!targets_.empty());
    auto &reg = stats::StatsRegistry::global();
    reg_inflight_ = &reg.gauge("prism.chunkwriter.inflight", "chunks");
    reg_retries_ = &reg.counter("prism.pwb.retries", "ops");
    reg_write_failures_ =
        &reg.counter("prism.pwb.chunk_write_failures", "ops");
}

ChunkWriter::~ChunkWriter()
{
    // A writer abandoned before finish() must still drain its I/O so the
    // tickets' waiters are not dangling.
    if (!finished_)
        (void)finish();
}

bool
ChunkWriter::openChunk()
{
    // Prefer a healthy, idle Value Storage (no in-flight requests),
    // falling back to any healthy one, then to a random target — §5.2's
    // load-spreading policy across SSDs, degraded-aware: a dropped-out
    // device only gets new chunks when every target is unhealthy (its
    // writes will fail and re-queue, which at least preserves the data
    // in the PWB ring).
    ValueStorage *pick = nullptr;
    const size_t start = rng_.nextUniform(targets_.size());
    for (size_t i = 0; i < targets_.size(); i++) {
        ValueStorage *vs = targets_[(start + i) % targets_.size()];
        if (vs->device().healthy() && vs->device().isIdle()) {
            pick = vs;
            break;
        }
    }
    for (size_t i = 0; pick == nullptr && i < targets_.size(); i++) {
        ValueStorage *vs = targets_[(start + i) % targets_.size()];
        if (vs->device().healthy())
            pick = vs;
    }
    if (pick == nullptr)
        pick = targets_[start];

    int64_t chunk = pick->allocChunk();
    if (chunk < 0) {
        // The preferred target is full; try the others.
        for (ValueStorage *vs : targets_) {
            chunk = vs->allocChunk();
            if (chunk >= 0) {
                pick = vs;
                break;
            }
        }
    }
    if (chunk < 0)
        return false;

    cur_vs_ = pick;
    cur_chunk_ = chunk;
    cur_used_ = 0;
    cur_first_record_ = records_added_;
    if (!cur_buf_)
        cur_buf_.reset(new uint8_t[chunk_bytes_]);
    return true;
}

ValueAddr
ChunkWriter::add(uint64_t hsit_idx, uint64_t key, const void *data,
                 uint32_t size)
{
    PRISM_CHECK(!finished_);
    const uint64_t bytes = recordBytes(size);
    PRISM_CHECK(bytes <= chunk_bytes_);
    if (cur_vs_ != nullptr && cur_used_ + bytes > chunk_bytes_) {
        const Status st = submitCurrent();
        PRISM_CHECK(st.isOk());
    }
    if (cur_vs_ == nullptr && !openChunk())
        return ValueAddr();

    auto *hdr = reinterpret_cast<ValueRecordHeader *>(
        cur_buf_.get() + cur_used_);
    hdr->backward = hsit_idx;
    hdr->key = key;
    hdr->value_size = size;
    hdr->flags = 0;
    hdr->reserved = 0;
    std::memcpy(hdr + 1, data, size);
    hdr->crc = recordCrc(*hdr, hdr + 1);
    // Zero the alignment tail so a partial-chunk parse stops cleanly.
    const uint64_t tail = bytes - sizeof(ValueRecordHeader) - size;
    if (tail > 0)
        std::memset(reinterpret_cast<uint8_t *>(hdr + 1) + size, 0, tail);

    const uint64_t dev_off =
        static_cast<uint64_t>(cur_chunk_) * chunk_bytes_ + cur_used_;
    cur_used_ += static_cast<uint32_t>(bytes);
    records_added_++;
    return ValueAddr::vs(cur_vs_->ssdId(), dev_off, bytes);
}

void
ChunkWriter::reapFront(bool block)
{
    InFlight &f = inflight_.front();
    // The span covers reap + publish on the driving thread; the SSD-side
    // service time lives on the device's own trace track. wall_ns (time
    // since submit) shows how long the chunk was in the pipeline.
    PRISM_TRACE_SPAN_VAR(span, "pwb.chunk_write");
    if (block)
        f.ticket->wait();
    // An errored completion (injected fault or device dropout) is
    // retried in place with capped exponential backoff — same chunk,
    // same offsets, so the addresses handed out by add() stay valid.
    for (int attempt = 1;
         f.ticket->failed() && attempt <= kMaxWriteRetries; attempt++) {
        reg_retries_->inc();
        PRISM_TRACE_INSTANT("pwb.chunk_retry");
        delayFor(std::min(kRetryBackoffBaseNs << (attempt - 1),
                          kRetryBackoffCapNs));
        f.ticket->reset();
        const Status st = submitTicketed(f);
        if (!st.isOk()) {
            f.ticket->waiter.signal(ReadWaiter::kIoError);
            break;
        }
        f.ticket->wait();
    }
    reg_inflight_->sub(1);
    if (f.ticket->failed()) {
        // Permanent failure: these records never became durable on SSD.
        // Recycle the chunk unwritten (nothing references it — the
        // callback that would have published the addresses never fires)
        // and remember the record range so the caller can re-queue or
        // skip those records.
        reg_write_failures_->inc();
        failed_ranges_.emplace_back(f.first_record, f.record_count);
        f.vs->freeChunkDeferred(f.chunk);
    } else if (callback_) {
        callback_(f.vs, f.chunk, f.first_record, f.record_count);
    }
    span.arg(PRISM_TRACE_NID("records"), f.record_count);
    span.arg(PRISM_TRACE_NID("wall_ns"), nowNs() - f.submit_ns);
    inflight_.pop_front();  // releases the chunk buffer
}

size_t
ChunkWriter::pollCompleted()
{
    // Submission order keeps the caller's record bookkeeping simple; an
    // out-of-order completion is reaped once everything ahead of it is.
    size_t reaped = 0;
    while (!inflight_.empty() && inflight_.front().ticket->done()) {
        reapFront(/*block=*/false);
        reaped++;
    }
    return reaped;
}

Status
ChunkWriter::submitCurrent()
{
    if (cur_vs_ == nullptr)
        return Status::ok();
    InFlight f;
    f.vs = cur_vs_;
    f.chunk = cur_chunk_;
    f.used = cur_used_;
    f.buf = std::move(cur_buf_);
    f.ticket = std::make_unique<WriteTicket>();
    f.first_record = cur_first_record_;
    f.record_count = records_added_ - cur_first_record_;
    f.submit_ns = nowNs();
    PRISM_TRACE_INSTANT("pwb.chunk_submit");
    const Status st = submitTicketed(f);
    if (!st.isOk())
        return st;
    f.vs->sealChunk(f.chunk, f.used);
    written_.emplace_back(f.vs, f.chunk);
    submitted_records_ += f.record_count;
    reg_inflight_->add(1);
    inflight_.push_back(std::move(f));
    cur_vs_ = nullptr;
    cur_chunk_ = -1;
    cur_used_ = 0;

    // Pipeline discipline: reap whatever already completed, then bound
    // the outstanding window by blocking on the oldest write.
    pollCompleted();
    if (max_inflight_ > 0) {
        while (inflight_.size() > static_cast<size_t>(max_inflight_))
            reapFront(/*block=*/true);
    }
    return Status::ok();
}

Status
ChunkWriter::finish()
{
    if (finished_)
        return Status::ok();
    finished_ = true;
    if (cur_vs_ != nullptr && cur_used_ > 0) {
        // finished_ guard above lets submitCurrent run normally.
        finished_ = false;
        const Status st = submitCurrent();
        finished_ = true;
        if (!st.isOk())
            return st;
    } else if (cur_vs_ != nullptr) {
        // Open but empty chunk: just recycle it.
        cur_vs_->sealChunk(cur_chunk_, 0);
        cur_vs_->freeChunkDeferred(cur_chunk_);
        cur_vs_ = nullptr;
    }
    while (!inflight_.empty())
        reapFront(/*block=*/true);
    return Status::ok();
}

size_t
ChunkWriter::finishFullChunksOnly()
{
    if (finished_)
        return submitted_records_;
    finished_ = true;
    if (cur_vs_ != nullptr) {
        // Discard the partial tail unwritten; nothing references its
        // chunk, so it goes straight back through the free list.
        cur_vs_->sealChunk(cur_chunk_, 0);
        cur_vs_->freeChunkDeferred(cur_chunk_);
        cur_vs_ = nullptr;
        cur_chunk_ = -1;
        cur_used_ = 0;
    }
    while (!inflight_.empty())
        reapFront(/*block=*/true);
    return submitted_records_;
}

Status
ChunkWriter::submitTicketed(InFlight &f)
{
    if (PRISM_FAULT_POINT("pwb.chunk_write")) {
        // Task-level injected failure: the ticket resolves as an I/O
        // error without reaching the device; the retry path resubmits.
        f.ticket->waiter.signal(ReadWaiter::kIoError);
        return Status::ok();
    }
    return f.vs->submitChunkWrite(f.chunk, f.buf.get(), f.used,
                                  f.ticket.get());
}

bool
ChunkWriter::recordFailed(size_t idx) const
{
    for (const auto &[first, count] : failed_ranges_) {
        if (idx >= first && idx < first + count)
            return true;
    }
    return false;
}

size_t
ChunkWriter::firstFailedRecord() const
{
    size_t lowest = SIZE_MAX;
    for (const auto &[first, count] : failed_ranges_)
        lowest = std::min(lowest, first);
    return lowest;
}

void
ChunkWriter::settleAll()
{
    for (auto &[vs, chunk] : written_)
        vs->settleChunk(chunk);
}

}  // namespace prism::core
