#include "core/read_batcher.h"

#include "common/logging.h"
#include "common/spinlock.h"

namespace prism::core {

ReadBatcher::ReadBatcher(io::IoBackend &device, ReadBatchMode mode,
                         int queue_depth, uint64_t timeout_us)
    : device_(device), mode_(mode), queue_depth_(queue_depth),
      timeout_us_(timeout_us)
{
    PRISM_CHECK(queue_depth_ >= 1);
    auto &reg = stats::StatsRegistry::global();
    reg_batches_ = &reg.counter("prism.tcq.batches", "ops");
    reg_requests_ = &reg.counter("prism.tcq.requests", "ops");
    if (mode_ == ReadBatchMode::kTimeoutAsync)
        ta_thread_ = std::thread([this] { taLoop(); });
}

ReadBatcher::~ReadBatcher()
{
    if (ta_thread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(ta_mu_);
            stop_.store(true, std::memory_order_release);
        }
        ta_cv_.notify_all();
        ta_thread_.join();
    }
}

Status
ReadBatcher::read(uint64_t offset, void *buf, uint32_t len)
{
    Node node;
    node.req.op = io::IoRequest::Op::kRead;
    node.req.offset = offset;
    node.req.length = len;
    node.req.buf = buf;
    node.req.user_data = reinterpret_cast<uint64_t>(&node.waiter);

    switch (mode_) {
      case ReadBatchMode::kThreadCombining:
        return readThreadCombining(node);
      case ReadBatchMode::kTimeoutAsync:
        return readTimeoutAsync(node);
      case ReadBatchMode::kNone:
        return readUnbatched(node);
    }
    return Status::notSupported();
}

Status
ReadBatcher::readUnbatched(Node &node)
{
    Status s = device_.submit(node.req);
    if (!s.isOk())
        return s;
    batches_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    reg_batches_->inc();
    reg_requests_->inc();
    return node.waiter.waitNonzero() == ReadWaiter::kOk
               ? Status::ok()
               : Status::ioError("read completion error");
}

Status
ReadBatcher::readThreadCombining(Node &node)
{
    // Enqueue with an atomic swap on the TCQ tail (Fig. 5, step 1/2).
    Node *prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev == nullptr) {
        // Queue was empty: this thread is the leader.
        return leadAndSubmit(node);
    }
    prev->next.store(&node, std::memory_order_release);
    // Follower: the leader coalesces our request; we only wait. If the
    // leader hits the coalescing limit first, it promotes us to lead the
    // remainder of the queue.
    const uint32_t sig = node.waiter.waitNonzero();
    if (sig == ReadWaiter::kOk)
        return Status::ok();
    if (sig == ReadWaiter::kIoError)
        return Status::ioError("read completion error");
    PRISM_DCHECK(sig == ReadWaiter::kPromoted);
    node.waiter.sig.store(0, std::memory_order_relaxed);
    return leadAndSubmit(node);
}

Status
ReadBatcher::leadAndSubmit(Node &self)
{
    std::vector<io::IoRequest> batch;
    batch.reserve(static_cast<size_t>(queue_depth_));
    batch.push_back(self.req);

    Node *cur = &self;
    while (batch.size() < static_cast<size_t>(queue_depth_)) {
        // Try to close the queue at cur; success means no more followers.
        Node *expected = cur;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel)) {
            cur = nullptr;
            break;
        }
        // A follower enqueued after cur; its next link lands momentarily.
        Node *n;
        int spins = 0;
        while ((n = cur->next.load(std::memory_order_acquire)) == nullptr) {
            if (++spins > 128) {
                std::this_thread::yield();
                spins = 0;
            } else {
                cpuRelax();
            }
        }
        batch.push_back(n->req);
        cur = n;
    }

    if (cur != nullptr) {
        // Coalescing limit reached with the queue still open: hand the
        // remainder to the next node (before submitting, so its frame is
        // guaranteed alive).
        Node *expected = cur;
        if (!tail_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel)) {
            Node *n;
            int spins = 0;
            while ((n = cur->next.load(std::memory_order_acquire)) ==
                   nullptr) {
                if (++spins > 128) {
                    std::this_thread::yield();
                    spins = 0;
                } else {
                    cpuRelax();
                }
            }
            n->waiter.signal(2);
        }
    }

    Status s = device_.submit({batch.data(), batch.size()});
    if (!s.isOk())
        return s;
    batches_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    reg_batches_->inc();
    reg_requests_->add(batch.size());

    // Followers return as soon as their completion arrives (delivered by
    // the Value Storage completion thread); the leader waits its own.
    return self.waiter.waitNonzero() == ReadWaiter::kOk
               ? Status::ok()
               : Status::ioError("read completion error");
}

Status
ReadBatcher::readTimeoutAsync(Node &node)
{
    {
        std::lock_guard<std::mutex> lock(ta_mu_);
        ta_pending_.push_back(&node);
    }
    ta_cv_.notify_one();
    return node.waiter.waitNonzero() == ReadWaiter::kOk
               ? Status::ok()
               : Status::ioError("read completion error");
}

void
ReadBatcher::taLoop()
{
    std::unique_lock<std::mutex> lock(ta_mu_);
    while (!stop_.load(std::memory_order_acquire)) {
        if (ta_pending_.empty()) {
            ta_cv_.wait(lock, [this] {
                return stop_.load(std::memory_order_acquire) ||
                       !ta_pending_.empty();
            });
            continue;
        }
        // Wait out the batching window (or until the batch is full) in
        // the hope of coalescing more requests — the "TA" strawman whose
        // latency cost Fig. 11 quantifies.
        ta_cv_.wait_for(lock, std::chrono::microseconds(timeout_us_),
                        [this] {
                            return stop_.load(std::memory_order_acquire) ||
                                   ta_pending_.size() >=
                                       static_cast<size_t>(queue_depth_);
                        });
        std::vector<io::IoRequest> batch;
        const size_t n = std::min(ta_pending_.size(),
                                  static_cast<size_t>(queue_depth_));
        batch.reserve(n);
        for (size_t i = 0; i < n; i++)
            batch.push_back(ta_pending_[i]->req);
        ta_pending_.erase(ta_pending_.begin(),
                          ta_pending_.begin() + static_cast<long>(n));
        lock.unlock();
        device_.submit({batch.data(), batch.size()});
        batches_.fetch_add(1, std::memory_order_relaxed);
        requests_.fetch_add(n, std::memory_order_relaxed);
        reg_batches_->inc();
        reg_requests_->add(n);
        lock.lock();
    }
}

}  // namespace prism::core
