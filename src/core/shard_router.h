/**
 * @file
 * ShardRouter — N independent PrismDb shards behind one PrismDb-shaped
 * API (ROADMAP item 3; the KVell comparator's shared-nothing pattern
 * applied to Prism's full stack).
 *
 * Why: a single PrismDb tops out well below linear scaling because
 * every client thread contends on one PacTree directory, one SVC and
 * one HSIT. The router hash-partitions the key space over N shards —
 * each shard a complete PrismDb with its *own* pmem region, PWBs, SVC,
 * HSIT and an *exclusive* slice of the SSD fleet (a device never
 * serves two shards; each ValueStorage owns its device) — so the hot
 * structures are private per shard and only deliberately-shared pieces
 * remain shared:
 *
 *  - one BgPool for all shards, with per-shard round-robin fairness
 *    (each shard registers a BgPool source; see core/bg_pool.h), so
 *    background capacity follows load instead of being statically
 *    split N ways;
 *  - the process-wide stats registry / telemetry / tracer, as always.
 *
 * Placement: on multi-node machines each shard is assigned a NUMA node
 * round-robin (common/numa.h) and its background threads (reclaimer,
 * GC scheduler, VS completion) are pinned there; single-node machines
 * run unpinned. The assignment is surfaced per shard as
 * prism.shard.<n>.node and the per-shard key count as
 * prism.shard.<n>.keys (a telemetry probe, like PrismDb's occupancy
 * probe), plus a prism.shard.<n>.ops counter on the routing hot path.
 *
 * Routing: shardOf(key) = hash64(key) & (N-1); N must be a power of
 * two. hash64 is splitmix64's finalizer — the same scrambling the YCSB
 * generators use, so partitions stay balanced even for dense
 * sequential key spaces. With N == 1 every router method forwards
 * straight to the single shard with no hashing, no fan-out machinery
 * and no merge — bit-identical to using PrismDb directly.
 *
 * Cross-shard semantics:
 *  - scan(start, count): each shard returns its own count-smallest
 *    keys >= start (shards are internally sorted); the global
 *    count-smallest are a subset of that union, so a k-way heap merge
 *    of the per-shard runs, truncated to count, is exact.
 *  - multiGet(keys): keys are bucketed per shard (remembering caller
 *    positions), fanned out shard-parallel, and the results written
 *    back into caller order — the output is indistinguishable from a
 *    single-shard multiGet.
 *  - Consistency is per-key (exactly PrismDb's guarantee): there is no
 *    cross-shard snapshot, and none is promised by the single-shard
 *    API either.
 */
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/async.h"
#include "core/bg_pool.h"
#include "core/options.h"
#include "core/prism_db.h"
#include "io/io_backend.h"
#include "pmem/pmem_region.h"

namespace prism::core {

/** Everything one shard owns exclusively. */
struct ShardBackends {
    std::shared_ptr<pmem::PmemRegion> region;
    std::vector<std::shared_ptr<io::IoBackend>> devices;
};

/** Hash-partitioning front-end over N PrismDb shards. */
class ShardRouter {
  public:
    /**
     * Open (format=true) or recover (format=false) an N-shard store.
     * N = backends.size(); must be a power of two. @p opts applies to
     * every shard (the router overrides opts.numa_node per shard on
     * multi-node machines; opts.bg_workers sizes the one shared pool).
     */
    ShardRouter(const PrismOptions &opts,
                std::vector<ShardBackends> backends, bool format);
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    static std::unique_ptr<ShardRouter>
    open(const PrismOptions &opts, std::vector<ShardBackends> backends)
    {
        return std::make_unique<ShardRouter>(opts, std::move(backends),
                                             true);
    }
    static std::unique_ptr<ShardRouter>
    recover(const PrismOptions &opts, std::vector<ShardBackends> backends)
    {
        return std::make_unique<ShardRouter>(opts, std::move(backends),
                                             false);
    }

    /**
     * Resolve the effective shard count from PrismOptions::shards:
     * 0 defers to $PRISM_SHARDS, then 1. Result is validated to be a
     * power of two in [1, 256].
     */
    static int resolveShardCount(int opt_shards);

    /** @name Routing */
    ///@{
    static size_t shardOf(uint64_t key, size_t shard_count);
    size_t shardOfKey(uint64_t key) const {
        return shardOf(key, shards_.size());
    }
    size_t shardCount() const { return shards_.size(); }
    PrismDb &shard(size_t i) { return *shards_[i]; }
    const PrismDb &shard(size_t i) const { return *shards_[i]; }
    BgPool &bgPool() { return *pool_; }
    /** NUMA node shard @p i's background threads prefer (-1 unpinned). */
    int shardNode(size_t i) const { return shard_nodes_[i]; }
    ///@}

    /** @name Store operations (PrismDb contract, routed) */
    ///@{
    Status put(uint64_t key, std::string_view value);
    Status get(uint64_t key, std::string *value);
    Status del(uint64_t key);
    Status scan(uint64_t start_key, size_t count,
                std::vector<std::pair<uint64_t, std::string>> *out);
    Status multiGet(const std::vector<uint64_t> &keys,
                    std::vector<std::optional<std::string>> *out);
    ///@}

    /** @name Asynchronous operations (core/async.h, routed) */
    ///@{
    OpFuture asyncPut(uint64_t key, std::string_view value,
                      AsyncCallback cb = nullptr);
    OpFuture asyncGet(uint64_t key, AsyncCallback cb = nullptr);
    OpFuture asyncDel(uint64_t key, AsyncCallback cb = nullptr);
    /**
     * Cross-shard async scan: runs the merged scan as one task on the
     * shared pool (a scan is a multi-batch pipeline, not a single I/O).
     */
    OpFuture asyncScan(uint64_t start_key, size_t count,
                       AsyncCallback cb = nullptr);
    uint64_t asyncInflight() const;
    ///@}

    /** @name Maintenance / introspection (aggregated over shards) */
    ///@{
    void flushAll();
    void forceGc();
    size_t size() const;
    stats::StatsSnapshot stats() const {
        return stats::StatsRegistry::global().snapshot();
    }
    /**
     * Fleet error budget: the counter fields are process-wide (any
     * shard reports the same values); degraded_devices is summed over
     * every shard's device slice so a dropout anywhere flips
     * degraded().
     */
    ErrorBudget errorBudget() const;

    /** /healthz payload aggregated over the fleet (obs_server.h). */
    obs::HealthReport healthReport() const;

    /** Bound port of the router's HTTP ops endpoint, 0 when off. */
    int obsPort() const;
    uint64_t ssdBytesWritten() const;
    uint64_t nvmIndexBytes() const;

    /**
     * Cross-shard aggregate of the per-instance op counters, refreshed
     * on every call (the returned reference stays valid; fields are
     * monotonic sums over the shards). Lets PrismDb call sites read
     * stats without caring about the shard count.
     */
    PrismDbStats &opStats();
    /** Cross-shard aggregate of the SVC counters (same contract). */
    SvcStats &svcStats();

    /** Flat view over every shard's Value Storages (shard-major). */
    size_t valueStorageCount() const;
    ValueStorage &valueStorage(size_t global_idx);

    /** Process-wide facilities (identical on every shard). */
    telemetry::Telemetry &telemetry() const {
        return telemetry::Telemetry::global();
    }
    std::vector<trace::SlowOp> slowOps() const {
        return trace::TraceRegistry::global().slowOps();
    }

    /** Shard 0's components, for single-shard-minded call sites. */
    Svc &svc() { return shards_[0]->svc(); }
    index::KeyIndex &keyIndex() { return shards_[0]->keyIndex(); }
    Hsit &hsit() { return shards_[0]->hsit(); }
    EpochManager &epochs() { return shards_[0]->epochs(); }
    /**
     * Wall-clock ns spent constructing the shards. Recovery is
     * *sequential* across shards on purpose: fault-injection triggers
     * (common/fault.h) count process-wide, so a deterministic shard
     * order is what makes N-shard crash replay reproducible
     * (prism_torture --shards).
     */
    uint64_t recoveryTimeNs() const { return recovery_ns_; }
    ///@}

  private:
    void publishShardGauges();

    PrismOptions opts_;
    std::shared_ptr<BgPool> pool_;
    std::vector<std::unique_ptr<PrismDb>> shards_;
    std::vector<int> shard_nodes_;

    /** Per-shard routed-op counters / gauges (prism.shard.<n>.*). */
    std::vector<stats::Counter *> reg_shard_ops_;
    std::vector<stats::Gauge *> reg_shard_keys_;
    std::vector<stats::Gauge *> reg_shard_node_;

    /** Router-level async scans on the pool; drained by the dtor. */
    std::atomic<uint64_t> async_scan_inflight_{0};

    /** Aggregates behind opStats()/svcStats(); see their contract. */
    PrismDbStats agg_op_stats_;
    SvcStats agg_svc_stats_;

    int telemetry_probe_ = -1;
    uint64_t recovery_ns_ = 0;

    /** Fleet-wide HTTP ops endpoint (the shards never start their
     *  own); stopped first in the destructor. */
    std::unique_ptr<obs::ObsServer> obs_;
};

}  // namespace prism::core
