#include "core/bg_pool.h"

#include <string>

#include "common/clock.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/numa.h"
#include "common/trace.h"

namespace prism::core {

BgPool::BgPool(int workers)
{
    PRISM_CHECK(workers >= 0);
    auto &reg = stats::StatsRegistry::global();
    reg_tasks_ = &reg.counter("prism.bg.tasks", "ops");
    reg_task_faults_ = &reg.counter("prism.bg.task_faults", "ops");
    reg_task_ns_ = &reg.histogram("prism.bg.task_ns", "ns");
    reg_queue_delay_ns_ = &reg.histogram("prism.bg.queue_delay_ns", "ns");
    reg_queue_depth_ = &reg.gauge("prism.bg.queue_depth", "tasks");
    reg_worker_busy_ns_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++) {
        reg_worker_busy_ns_.push_back(&reg.counter(
            "prism.bg.worker" + std::to_string(i) + ".busy_ns", "ns"));
    }
    queues_.resize(1);  // source 0: anonymous producers
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

BgPool::~BgPool()
{
    shutdown();
}

int
BgPool::allocSource()
{
    std::lock_guard<prof::TimedMutex> lock(mu_);
    queues_.emplace_back();
    return static_cast<int>(queues_.size()) - 1;
}

int
BgPool::sources() const
{
    std::lock_guard<prof::TimedMutex> lock(mu_);
    return static_cast<int>(queues_.size());
}

void
BgPool::pushLocked(Task &&task)
{
    if (task.source < 0 ||
        task.source >= static_cast<int>(queues_.size()))
        task.source = 0;
    queues_[static_cast<size_t>(task.source)].push_back(std::move(task));
    queued_total_++;
    reg_queue_depth_->add(1);
}

BgPool::Task
BgPool::popNextLocked()
{
    // Round-robin across sources: start at the cursor, take the first
    // non-empty sub-queue, park the cursor just past it. A source with a
    // deep backlog yields to every other source between its tasks.
    const size_t n = queues_.size();
    for (size_t probe = 0; probe < n; probe++) {
        const size_t src = (rr_cursor_ + probe) % n;
        if (queues_[src].empty())
            continue;
        Task task = std::move(queues_[src].front());
        queues_[src].pop_front();
        queued_total_--;
        reg_queue_depth_->sub(1);
        rr_cursor_ = (src + 1) % n;
        return task;
    }
    PRISM_CHECK(false);  // caller guarantees queued_total_ > 0
    return {};
}

void
BgPool::shutdown()
{
    {
        std::lock_guard<prof::TimedMutex> lock(mu_);
        if (stop_)
            return;
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    // Tasks queued after the last worker exited (or with no workers ever
    // started) still run, on this thread, so submitters' completion
    // bookkeeping (pending flags, parallelFor counters) settles.
    while (true) {
        Task task;
        {
            std::lock_guard<prof::TimedMutex> lock(mu_);
            if (!anyQueuedLocked())
                break;
            task = popNextLocked();
        }
        reg_queue_delay_ns_->record(nowNs() - task.enqueue_ns);
        runTask(task, nullptr);
    }
}

void
BgPool::submit(int source, std::function<void()> fn)
{
    Task task{std::move(fn), source, nowNs()};
    {
        std::lock_guard<prof::TimedMutex> lock(mu_);
        if (!threads_.empty() && !stop_) {
            pushLocked(std::move(task));
            cv_.notify_one();
            return;
        }
    }
    // No workers (bg_workers=0 config) or already shut down: degrade to
    // synchronous execution so callers never lose work.
    runTask(task, nullptr);
}

void
BgPool::runTask(Task &task, stats::Counter *busy_ns)
{
    // Injected task failure: the task goes back on its source's queue
    // instead of running. It must never be dropped — upstream
    // dispatchers hold one-outstanding slots keyed on the task
    // eventually running, so a dropped task would wedge reclaim/GC
    // forever. The inline path (no workers, or shutdown drain) has no
    // queue to defer to and runs the task regardless. The original
    // enqueue stamp rides along so queue_delay_ns reflects total wait.
    if (PRISM_FAULT_POINT("bg.task")) {
        reg_task_faults_->inc();
        std::lock_guard<prof::TimedMutex> lock(mu_);
        if (!threads_.empty() && !stop_) {
            pushLocked(std::move(task));
            cv_.notify_one();
            return;
        }
    }
    PRISM_TRACE_SPAN("bg.task");
    const uint64_t t0 = nowNs();
    task.fn();
    const uint64_t dt = nowNs() - t0;
    if (busy_ns != nullptr)
        busy_ns->add(dt);
    reg_task_ns_->record(dt);
    reg_tasks_->inc();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
}

void
BgPool::workerLoop(int idx)
{
    trace::TraceRegistry::global().setThreadName(
        "bg-worker-" + std::to_string(idx));
    // Spread workers across NUMA nodes so every node's shards find a
    // local worker. No-op on single-node machines.
    if (numa::nodeCount() > 1)
        numa::pinThreadToNode(idx % numa::nodeCount());
    stats::Counter *busy = reg_worker_busy_ns_[static_cast<size_t>(idx)];
    std::unique_lock<prof::TimedMutex> lock(mu_);
    while (true) {
        cv_.wait(lock,
                 [this] { return stop_ || anyQueuedLocked(); });
        // Drain the queue even when stopping: shutdown() promises every
        // queued task runs before the join returns.
        if (!anyQueuedLocked())
            return;  // stop_ must be set
        Task task = popNextLocked();
        lock.unlock();
        reg_queue_delay_ns_->record(nowNs() - task.enqueue_ns);
        runTask(task, busy);
        lock.lock();
    }
}

void
BgPool::helpWith(const std::shared_ptr<PfState> &st)
{
    size_t i;
    while ((i = st->next.fetch_add(1, std::memory_order_relaxed)) <
           st->n) {
        st->fn(i);
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            st->n) {
            st->done.notify_all();
        }
    }
}

void
BgPool::parallelFor(int source, size_t n,
                    const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || threads_.empty()) {
        for (size_t i = 0; i < n; i++)
            fn(i);
        return;
    }
    auto st = std::make_shared<PfState>();
    st->n = n;
    st->fn = fn;
    // One helper per remaining index beyond the caller's own share; each
    // helper claims indices until none remain, so excess helpers cost
    // one no-op task.
    const size_t helpers =
        std::min(n - 1, static_cast<size_t>(threads_.size()));
    for (size_t i = 0; i < helpers; i++)
        submit(source, [st] { helpWith(st); });
    helpWith(st);  // the caller claims indices too — never blocks idle
    size_t d;
    while ((d = st->done.load(std::memory_order_acquire)) < n)
        st->done.wait(d, std::memory_order_acquire);
}

}  // namespace prism::core
