#include "core/bg_pool.h"

#include <string>

#include "common/clock.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace prism::core {

BgPool::BgPool(int workers)
{
    PRISM_CHECK(workers >= 0);
    auto &reg = stats::StatsRegistry::global();
    reg_tasks_ = &reg.counter("prism.bg.tasks", "ops");
    reg_task_faults_ = &reg.counter("prism.bg.task_faults", "ops");
    reg_task_ns_ = &reg.histogram("prism.bg.task_ns", "ns");
    reg_queue_depth_ = &reg.gauge("prism.bg.queue_depth", "tasks");
    reg_worker_busy_ns_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++) {
        reg_worker_busy_ns_.push_back(&reg.counter(
            "prism.bg.worker" + std::to_string(i) + ".busy_ns", "ns"));
    }
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

BgPool::~BgPool()
{
    shutdown();
}

void
BgPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_)
            return;
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    // Tasks queued after the last worker exited (or with no workers ever
    // started) still run, on this thread, so submitters' completion
    // bookkeeping (pending flags, parallelFor counters) settles.
    while (true) {
        std::function<void()> fn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (queue_.empty())
                break;
            fn = std::move(queue_.front());
            queue_.pop_front();
            reg_queue_depth_->sub(1);
        }
        runTask(fn, nullptr);
    }
}

void
BgPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!threads_.empty() && !stop_) {
            queue_.push_back(std::move(fn));
            reg_queue_depth_->add(1);
            cv_.notify_one();
            return;
        }
    }
    // No workers (bg_workers=0 config) or already shut down: degrade to
    // synchronous execution so callers never lose work.
    runTask(fn, nullptr);
}

void
BgPool::runTask(std::function<void()> &fn, stats::Counter *busy_ns)
{
    // Injected task failure: the task goes back on the queue instead of
    // running. It must never be dropped — upstream dispatchers hold
    // one-outstanding slots keyed on the task eventually running, so a
    // dropped task would wedge reclaim/GC forever. The inline path (no
    // workers, or shutdown drain) has no queue to defer to and runs the
    // task regardless.
    if (PRISM_FAULT_POINT("bg.task")) {
        reg_task_faults_->inc();
        std::lock_guard<std::mutex> lock(mu_);
        if (!threads_.empty() && !stop_) {
            queue_.push_back(std::move(fn));
            reg_queue_depth_->add(1);
            cv_.notify_one();
            return;
        }
    }
    PRISM_TRACE_SPAN("bg.task");
    const uint64_t t0 = nowNs();
    fn();
    const uint64_t dt = nowNs() - t0;
    if (busy_ns != nullptr)
        busy_ns->add(dt);
    reg_task_ns_->record(dt);
    reg_tasks_->inc();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
}

void
BgPool::workerLoop(int idx)
{
    trace::TraceRegistry::global().setThreadName(
        "bg-worker-" + std::to_string(idx));
    stats::Counter *busy = reg_worker_busy_ns_[static_cast<size_t>(idx)];
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        // Drain the queue even when stopping: shutdown() promises every
        // queued task runs before the join returns.
        if (queue_.empty())
            return;  // stop_ must be set
        std::function<void()> fn = std::move(queue_.front());
        queue_.pop_front();
        reg_queue_depth_->sub(1);
        lock.unlock();
        runTask(fn, busy);
        lock.lock();
    }
}

void
BgPool::helpWith(const std::shared_ptr<PfState> &st)
{
    size_t i;
    while ((i = st->next.fetch_add(1, std::memory_order_relaxed)) <
           st->n) {
        st->fn(i);
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            st->n) {
            st->done.notify_all();
        }
    }
}

void
BgPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || threads_.empty()) {
        for (size_t i = 0; i < n; i++)
            fn(i);
        return;
    }
    auto st = std::make_shared<PfState>();
    st->n = n;
    st->fn = fn;
    // One helper per remaining index beyond the caller's own share; each
    // helper claims indices until none remain, so excess helpers cost
    // one no-op task.
    const size_t helpers =
        std::min(n - 1, static_cast<size_t>(threads_.size()));
    for (size_t i = 0; i < helpers; i++)
        submit([st] { helpWith(st); });
    helpWith(st);  // the caller claims indices too — never blocks idle
    size_t d;
    while ((d = st->done.load(std::memory_order_acquire)) < n)
        st->done.wait(d, std::memory_order_acquire);
}

}  // namespace prism::core
