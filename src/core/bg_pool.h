/**
 * @file
 * BgPool — the background I/O worker pool (§5.2).
 *
 * Prism's performance argument rests on *background* machinery keeping
 * up with the NVM-speed write path: PWB reclamation streams chunk-sized
 * sequential writes to many SSDs, and Value Storage GC runs per SSD.
 * Both are embarrassingly parallel across PWBs / Value Storages, so
 * they run as tasks on this shared pool (sized by
 * PrismOptions::bg_workers) instead of on two lone threads.
 *
 * Fairness: the pool is shared — under the shard router every shard's
 * reclaim and GC competes for the same workers. A single FIFO queue
 * would let one producer's burst (a shard entering a GC storm) delay
 * every other producer's reclaim behind it. Instead each producer
 * registers a *source* (allocSource()) with its own FIFO sub-queue, and
 * workers drain the sources round-robin: per-source ordering is
 * preserved, but a source with k queued tasks cannot make another
 * source wait more than one task-length per dispatch. The wait between
 * enqueue and dispatch is recorded in the prism.bg.queue_delay_ns
 * histogram — the fairness invariant is measured, not asserted.
 *
 * Two entry points:
 *  - submit(): fire-and-forget (reclaim passes, GC passes). With zero
 *    workers the task runs inline on the caller, which degenerates to
 *    the old single-threaded background behaviour.
 *  - parallelFor(): fan an index range out over the workers and block
 *    until every index ran. The caller *helps* (it claims indices like
 *    any worker), so the call makes progress even when every pool
 *    worker is busy — including when it is issued from inside a pool
 *    task (the GC fallback inside a reclamation pass does exactly
 *    that). This makes parallelFor deadlock-free by construction.
 *
 * Observability (docs/OBSERVABILITY.md): prism.bg.tasks,
 * prism.bg.task_ns, prism.bg.queue_depth, prism.bg.queue_delay_ns, and
 * per-worker prism.bg.worker<i>.busy_ns.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/prof.h"
#include "common/stats.h"

namespace prism::core {

/** Fixed-size worker pool for background reclamation and GC tasks. */
class BgPool {
  public:
    /** @param workers thread count; 0 = run every task inline. */
    explicit BgPool(int workers);
    ~BgPool();

    BgPool(const BgPool &) = delete;
    BgPool &operator=(const BgPool &) = delete;

    /**
     * Register a new producer and return its source id for submit().
     * Source 0 always exists (anonymous producers). Sources are never
     * freed — they cost one empty deque each and shard counts are small.
     */
    int allocSource();

    /**
     * Enqueue @p fn for a worker under @p source's sub-queue. Runs
     * inline when the pool has no workers. Tasks must not assume any
     * ordering against tasks from other sources.
     */
    void submit(std::function<void()> fn) { submit(0, std::move(fn)); }
    void submit(int source, std::function<void()> fn);

    /**
     * Run fn(0..n-1) across the workers and the calling thread, then
     * return once all n indices completed. Safe to call from inside a
     * pool task: the caller claims indices itself, so saturation of the
     * pool delays but never deadlocks the call.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn) {
        parallelFor(0, n, fn);
    }
    void parallelFor(int source, size_t n,
                     const std::function<void(size_t)> &fn);

    /**
     * Drain every queued task and join the workers. Idempotent; called
     * by the destructor. Owners call it explicitly before tearing down
     * state the tasks reference.
     */
    void shutdown();

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Tasks executed so far (queued + inline), for tests. */
    uint64_t tasksRun() const {
        return tasks_run_.load(std::memory_order_relaxed);
    }

    /** Registered source count (incl. the default source 0), for tests. */
    int sources() const;

  private:
    /** One queued unit of work, stamped for the queue-delay histogram. */
    struct Task {
        std::function<void()> fn;
        int source = 0;
        uint64_t enqueue_ns = 0;
    };

    /** Shared state of one parallelFor call. */
    struct PfState {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        size_t n;
        std::function<void(size_t)> fn;
    };

    void workerLoop(int idx);
    void runTask(Task &task, stats::Counter *busy_ns);
    /** Requires mu_. True when any source has a queued task. */
    bool anyQueuedLocked() const { return queued_total_ > 0; }
    /** Requires mu_ and queued_total_ > 0. Round-robin pop. */
    Task popNextLocked();
    /** Requires mu_. Enqueue without notify (caller notifies). */
    void pushLocked(Task &&task);
    static void helpWith(const std::shared_ptr<PfState> &st);

    mutable prof::TimedMutex mu_{"bg.queue"};
    // _any: waits on the profiled wrapper, not a raw std::mutex.
    std::condition_variable_any cv_;
    // One FIFO per source, drained round-robin from rr_cursor_.
    std::vector<std::deque<Task>> queues_;
    size_t rr_cursor_ = 0;
    size_t queued_total_ = 0;
    bool stop_ = false;
    std::vector<std::thread> threads_;

    std::atomic<uint64_t> tasks_run_{0};

    // Shared-by-name process-wide metrics (see common/stats.h).
    stats::Counter *reg_tasks_;
    stats::Counter *reg_task_faults_;
    stats::LatencyStat *reg_task_ns_;
    stats::LatencyStat *reg_queue_delay_ns_;
    stats::Gauge *reg_queue_depth_;
    std::vector<stats::Counter *> reg_worker_busy_ns_;
};

}  // namespace prism::core
