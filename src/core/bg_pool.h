/**
 * @file
 * BgPool — the background I/O worker pool (§5.2).
 *
 * Prism's performance argument rests on *background* machinery keeping
 * up with the NVM-speed write path: PWB reclamation streams chunk-sized
 * sequential writes to many SSDs, and Value Storage GC runs per SSD.
 * Both are embarrassingly parallel across PWBs / Value Storages, so
 * they run as tasks on this shared pool (sized by
 * PrismOptions::bg_workers) instead of on two lone threads.
 *
 * Two entry points:
 *  - submit(): fire-and-forget (reclaim passes, GC passes). With zero
 *    workers the task runs inline on the caller, which degenerates to
 *    the old single-threaded background behaviour.
 *  - parallelFor(): fan an index range out over the workers and block
 *    until every index ran. The caller *helps* (it claims indices like
 *    any worker), so the call makes progress even when every pool
 *    worker is busy — including when it is issued from inside a pool
 *    task (the GC fallback inside a reclamation pass does exactly
 *    that). This makes parallelFor deadlock-free by construction.
 *
 * Observability (docs/OBSERVABILITY.md): prism.bg.tasks,
 * prism.bg.task_ns, prism.bg.queue_depth, and per-worker
 * prism.bg.worker<i>.busy_ns.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"

namespace prism::core {

/** Fixed-size worker pool for background reclamation and GC tasks. */
class BgPool {
  public:
    /** @param workers thread count; 0 = run every task inline. */
    explicit BgPool(int workers);
    ~BgPool();

    BgPool(const BgPool &) = delete;
    BgPool &operator=(const BgPool &) = delete;

    /**
     * Enqueue @p fn for a worker. Runs inline when the pool has no
     * workers. Tasks must not assume any ordering between each other.
     */
    void submit(std::function<void()> fn);

    /**
     * Run fn(0..n-1) across the workers and the calling thread, then
     * return once all n indices completed. Safe to call from inside a
     * pool task: the caller claims indices itself, so saturation of the
     * pool delays but never deadlocks the call.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Drain every queued task and join the workers. Idempotent; called
     * by the destructor. Owners call it explicitly before tearing down
     * state the tasks reference.
     */
    void shutdown();

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Tasks executed so far (queued + inline), for tests. */
    uint64_t tasksRun() const {
        return tasks_run_.load(std::memory_order_relaxed);
    }

  private:
    /** Shared state of one parallelFor call. */
    struct PfState {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        size_t n;
        std::function<void(size_t)> fn;
    };

    void workerLoop(int idx);
    void runTask(std::function<void()> &fn, stats::Counter *busy_ns);
    static void helpWith(const std::shared_ptr<PfState> &st);

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> threads_;

    std::atomic<uint64_t> tasks_run_{0};

    // Shared-by-name process-wide metrics (see common/stats.h).
    stats::Counter *reg_tasks_;
    stats::Counter *reg_task_faults_;
    stats::LatencyStat *reg_task_ns_;
    stats::Gauge *reg_queue_depth_;
    std::vector<stats::Counter *> reg_worker_busy_ns_;
};

}  // namespace prism::core
