/**
 * @file
 * ChunkWriter: packs value records into chunk-sized buffers and writes
 * them asynchronously to Value Storage (§5.2, Fig. 4).
 *
 * Used by the PWB reclaimer (targets: all Value Storages, choosing an
 * idle one per chunk to spread load over the SSD array), by GC (target:
 * the same Value Storage), and by the SVC's scan-aware reorganisation
 * (§4.4, which re-packs a scanned key range contiguously).
 *
 * Addresses are assigned at add() time. Durability comes in two
 * flavours:
 *  - Barrier mode (default): finish() submits the final partial chunk
 *    and waits for every outstanding write; the caller then publishes
 *    all addresses at once.
 *  - Pipeline mode (max_inflight > 0 + a chunk callback): at most
 *    max_inflight chunk writes are kept outstanding, and as each chunk
 *    completes the callback fires with the contiguous record range that
 *    landed in it — the caller publishes those HSIT entries while later
 *    chunks are still being packed and written. This overlaps the
 *    NVM-side scan/filter work with the SSD writes instead of stalling
 *    a whole pass behind the slowest chunk.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rand.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/addr.h"
#include "core/value_storage.h"

namespace prism::core {

/** Packs records into chunks across one or more Value Storages. */
class ChunkWriter {
  public:
    /**
     * Fires when one chunk's write is durable on its SSD. Records are
     * numbered in add() order; this chunk holds records
     * [first_record, first_record + record_count). The callback runs on
     * the thread driving the writer (inside add()/pollCompleted()/
     * finish()); it must settle the chunk itself once the new records'
     * validity bits are set.
     */
    using ChunkCallback = std::function<void(
        ValueStorage *vs, int64_t chunk, size_t first_record,
        size_t record_count)>;

    /**
     * @param targets      candidate Value Storages (non-owning,
     *                     non-empty).
     * @param seed         RNG seed for idle-target selection.
     * @param max_inflight chunk writes kept outstanding before add()
     *                     blocks on the oldest; 0 = unbounded (barrier
     *                     mode, all completions reaped in finish()).
     */
    explicit ChunkWriter(std::vector<ValueStorage *> targets,
                         uint64_t seed = 42, int max_inflight = 0);
    ~ChunkWriter();

    ChunkWriter(const ChunkWriter &) = delete;
    ChunkWriter &operator=(const ChunkWriter &) = delete;

    /** Install the per-chunk completion callback. Call before add(). */
    void setChunkCallback(ChunkCallback cb) { callback_ = std::move(cb); }

    /**
     * Append one value record.
     * @return its future Value Storage address, or a null addr when no
     *         chunk could be allocated (caller should run GC and retry).
     */
    ValueAddr add(uint64_t hsit_idx, uint64_t key, const void *data,
                  uint32_t size);

    /**
     * Reap every already-completed outstanding chunk write (in
     * submission order), firing the chunk callback for each.
     * @return chunks reaped.
     */
    size_t pollCompleted();

    /**
     * Submit the final partial chunk and wait for every outstanding
     * chunk write to complete (firing remaining callbacks). After
     * finish(), every address returned by add() is durable on SSD —
     * except records reported by recordFailed()/firstFailedRecord(),
     * whose chunk writes failed permanently after retries (injected
     * faults or device dropout) and which fired no callback.
     */
    Status finish();

    /**
     * Like finish(), but *discard* the partial tail chunk instead of
     * submitting it: its chunk is recycled unwritten (it was never
     * published anywhere, so recycling is invisible to readers and
     * crash recovery) and its records never fire the callback. Callers
     * that can retry later (the PWB reclaimer, whose source records
     * remain durable in the ring) use this to avoid burning a 512 KB
     * chunk on a few stragglers every pass — sealed-but-nearly-empty
     * chunks are exactly the write amplification §5.2 works to avoid.
     * @return the number of records that were submitted in full chunks
     *         (a prefix of add() order; the rest were discarded).
     */
    size_t finishFullChunksOnly();

    /**
     * Mark every written chunk GC-eligible. Barrier-mode callers invoke
     * it after finish() and after the new records' validity bits have
     * been set; GC skips unsettled chunks so it cannot recycle one
     * mid-publish. Idempotent, so pipeline-mode callbacks that already
     * settled their chunks are unaffected.
     */
    void settleAll();

    /** Number of chunks written (diagnostics). */
    size_t chunksWritten() const { return written_.size(); }

    /** Number of records appended so far (callback record numbering). */
    size_t recordsAdded() const { return records_added_; }

    /**
     * True when record @p idx (add() numbering) was in a chunk whose
     * write failed permanently (all retries exhausted). Its address is
     * dead: the chunk was recycled unwritten and no callback fired for
     * it. Meaningful after finish()/finishFullChunksOnly().
     */
    bool recordFailed(size_t idx) const;

    /**
     * Lowest permanently-failed record number, or SIZE_MAX when every
     * submitted chunk landed. The PWB reclaimer clamps its new ring
     * head here so failed records stay durable in the ring and are
     * re-queued by the next pass.
     */
    size_t firstFailedRecord() const;

  private:
    struct InFlight {
        ValueStorage *vs;
        int64_t chunk;
        uint32_t used;
        std::unique_ptr<uint8_t[]> buf;
        std::unique_ptr<WriteTicket> ticket;
        size_t first_record;
        size_t record_count;
        uint64_t submit_ns;  ///< when the device write was submitted
    };

    /** Pick a Value Storage (healthy + idle preferred), allocate a chunk. */
    bool openChunk();

    /** Submit the currently open chunk. */
    Status submitCurrent();

    /** Device submit for @p f, honouring the pwb.chunk_write fault site. */
    Status submitTicketed(InFlight &f);

    /** Reap the oldest outstanding write (blocking), fire its callback. */
    void reapFront(bool block);

    std::vector<ValueStorage *> targets_;
    Xorshift rng_;
    uint64_t chunk_bytes_;
    int max_inflight_;
    ChunkCallback callback_;

    ValueStorage *cur_vs_ = nullptr;
    int64_t cur_chunk_ = -1;
    uint32_t cur_used_ = 0;
    std::unique_ptr<uint8_t[]> cur_buf_;
    size_t cur_first_record_ = 0;
    size_t records_added_ = 0;
    size_t submitted_records_ = 0;

    /** Outstanding writes, oldest first; reaped in submission order. */
    std::deque<InFlight> inflight_;
    /** Every chunk ever submitted, for settleAll(). */
    std::vector<std::pair<ValueStorage *, int64_t>> written_;
    /** Record ranges whose chunk write failed permanently. */
    std::vector<std::pair<size_t, size_t>> failed_ranges_;
    bool finished_ = false;

    // Process-wide gauge of chunk writes in flight across all writers.
    stats::Gauge *reg_inflight_;
    stats::Counter *reg_retries_;
    stats::Counter *reg_write_failures_;
};

}  // namespace prism::core
