/**
 * @file
 * ChunkWriter: packs value records into chunk-sized buffers and writes
 * them asynchronously to Value Storage (§5.2, Fig. 4).
 *
 * Used by the PWB reclaimer (targets: all Value Storages, choosing an
 * idle one per chunk to spread load over the SSD array), by GC (target:
 * the same Value Storage), and by the SVC's scan-aware reorganisation
 * (§4.4, which re-packs a scanned key range contiguously).
 *
 * Addresses are assigned at add() time; durability arrives at finish(),
 * after which the caller re-points the HSIT entries.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rand.h"
#include "common/status.h"
#include "core/addr.h"
#include "core/value_storage.h"

namespace prism::core {

/** Packs records into chunks across one or more Value Storages. */
class ChunkWriter {
  public:
    /**
     * @param targets candidate Value Storages (non-owning, non-empty).
     * @param seed    RNG seed for idle-target selection.
     */
    explicit ChunkWriter(std::vector<ValueStorage *> targets,
                         uint64_t seed = 42);
    ~ChunkWriter();

    ChunkWriter(const ChunkWriter &) = delete;
    ChunkWriter &operator=(const ChunkWriter &) = delete;

    /**
     * Append one value record.
     * @return its future Value Storage address, or a null addr when no
     *         chunk could be allocated (caller should run GC and retry).
     */
    ValueAddr add(uint64_t hsit_idx, uint64_t key, const void *data,
                  uint32_t size);

    /**
     * Submit the final partial chunk and wait for every outstanding
     * chunk write to complete. After finish(), all addresses returned by
     * add() are durable on SSD.
     */
    Status finish();

    /**
     * Mark every written chunk GC-eligible. Call after finish() and
     * after the new records' validity bits have been set; GC skips
     * unsettled chunks so it cannot recycle one mid-publish.
     */
    void settleAll();

    /** Number of chunks written (diagnostics). */
    size_t chunksWritten() const { return submitted_.size(); }

  private:
    struct InFlight {
        ValueStorage *vs;
        int64_t chunk;
        uint32_t used;
        std::unique_ptr<uint8_t[]> buf;
        std::unique_ptr<WriteTicket> ticket;
    };

    /** Pick a Value Storage (idle preferred) and allocate a chunk. */
    bool openChunk();

    /** Submit the currently open chunk. */
    Status submitCurrent();

    std::vector<ValueStorage *> targets_;
    Xorshift rng_;
    uint64_t chunk_bytes_;

    ValueStorage *cur_vs_ = nullptr;
    int64_t cur_chunk_ = -1;
    uint32_t cur_used_ = 0;
    std::unique_ptr<uint8_t[]> cur_buf_;

    std::vector<InFlight> submitted_;
    bool finished_ = false;
};

}  // namespace prism::core
