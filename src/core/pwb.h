/**
 * @file
 * Persistent Write Buffer (PWB, §4.3).
 *
 * Each application thread owns one PWB: an append-only ring log on NVM.
 * A put() writes the value (with its embedded backward pointer) here and
 * is durable immediately — the write critical path never touches the SSD.
 * When utilization crosses the watermark, a background reclaimer copies
 * the *well-coupled* (up-to-date) values to Value Storage and advances
 * the head; superseded versions are skipped, which is where Prism's
 * SSD-write savings come from (§7.6, Fig. 12).
 *
 * Concurrency contract: append() is called only by the owning thread;
 * head advancement is performed by the reclaimer after an epoch grace
 * period so readers holding PWB addresses stay safe.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/prof.h"
#include "common/stats.h"
#include "core/addr.h"
#include "pmem/pmem_allocator.h"
#include "pmem/pmem_region.h"

namespace prism::core {

/** One thread's persistent write buffer. */
class Pwb {
  public:
    /** Create a fresh PWB of @p capacity bytes (multiple of 64). */
    static std::unique_ptr<Pwb> create(pmem::PmemRegion &region,
                                       pmem::PmemAllocator &alloc,
                                       uint64_t capacity);

    /** Re-attach after a restart. */
    static std::unique_ptr<Pwb> attach(pmem::PmemRegion &region,
                                       pmem::POff root_off);

    pmem::POff rootOff() const { return root_off_; }
    uint64_t capacity() const { return capacity_; }

    /**
     * Append a value record and persist it (value + backward pointer +
     * tail, one fence). The caller then publishes the returned address in
     * the HSIT, which is the linearization point.
     *
     * @return the PWB-encoded ValueAddr, or a null addr when the buffer
     *         lacks space (caller falls back to waiting on reclamation).
     */
    ValueAddr append(uint64_t hsit_idx, uint64_t key, const void *value,
                     uint32_t size);

    /**
     * Mark the most recent append as published in the HSIT. Until this
     * is called, reclamation will not scan past the record: a freshly
     * appended record looks ill-coupled (its forward pointer is not
     * installed yet), and without the marker a concurrent reclaim pass
     * would treat it as superseded garbage and free live space that the
     * owner is about to publish.
     */
    void markPublished() {
        inflight_.store(UINT64_MAX, std::memory_order_release);
    }

    /** Oldest unpublished append's logical offset (UINT64_MAX = none). */
    uint64_t inflightLogical() const {
        return inflight_.load(std::memory_order_acquire);
    }

    /** Bytes between head and tail (live + garbage). */
    uint64_t
    usedBytes() const
    {
        return tailLogical() - headLogical();
    }

    double
    utilization() const
    {
        return static_cast<double>(usedBytes()) /
               static_cast<double>(capacity_);
    }

    uint64_t headLogical() const {
        return root()->head.load(std::memory_order_acquire);
    }
    uint64_t tailLogical() const {
        return root()->tail.load(std::memory_order_acquire);
    }

    /** A record located during a reclamation scan. */
    struct RecordRef {
        uint64_t logical_end;       ///< logical offset just past the record
        ValueAddr addr;             ///< PWB address of this record
        const ValueRecordHeader *hdr;
        const uint8_t *payload;
    };

    /**
     * Collect records from @p from (clamped to [head, tail]) until
     * @p max_bytes have been scanned (pad records are skipped). Safe
     * against a concurrently appending owner: only [from, tail-at-entry)
     * is visited.
     * @return logical offset the head may later advance to.
     */
    uint64_t collectFrom(uint64_t from, uint64_t max_bytes,
                         std::vector<RecordRef> &out) const;

    /** collectFrom starting at the current head. */
    uint64_t
    collect(uint64_t max_bytes, std::vector<RecordRef> &out) const
    {
        return collectFrom(headLogical(), max_bytes, out);
    }

    /**
     * Reclaim progress cursor (volatile; reset to head on re-attach).
     * The reclaimer starts each pass here instead of at the head, so a
     * pass never touches a range covered by a previous pass's still-
     * deferred head advance — that range's physical space could be
     * recycled mid-pass.
     */
    uint64_t reclaimCursor() const {
        return reclaim_cursor_.load(std::memory_order_acquire);
    }
    void setReclaimCursor(uint64_t v) {
        reclaim_cursor_.store(v, std::memory_order_release);
    }

    /**
     * Logical tail the last reclamation pass scanned up to (volatile;
     * reset to head on re-attach). The reclaimer loop only re-dispatches
     * a PWB once at least a chunk's worth of fresh appends has landed
     * past this point — thrifty passes deliberately leave the ring over
     * the watermark, and without this gate every poll would re-dispatch
     * a pass that re-scans the same stale backlog. Forced passes
     * (stalls, flushAll, utilization at the force threshold) bypass the
     * gate.
     */
    uint64_t lastScanTail() const {
        return reclaim_scan_tail_.load(std::memory_order_acquire);
    }
    void setLastScanTail(uint64_t v) {
        reclaim_scan_tail_.store(v, std::memory_order_release);
    }

    /**
     * Serializes reclamation passes *on this PWB only* (the background
     * pool, a stalled put's direct dispatch, and flushAll may race).
     * Passes on different PWBs are independent — each has its own
     * cursor, ring and deferred head advance — and run concurrently on
     * the bg pool.
     */
    prof::TimedMutex &passMutex() { return pass_mu_; }

    /**
     * Edge-trigger for waking the reclaimer: the first append that sees
     * utilization at/over the watermark arms it (returns true exactly
     * once); the reclaimer loop re-arms it when it next scans this PWB,
     * so a ring held over the watermark by fresh appends keeps
     * re-notifying without a put-path syscall per append.
     */
    bool armReclaimHint() {
        return !reclaim_hint_.exchange(true, std::memory_order_acq_rel);
    }
    void clearReclaimHint() {
        reclaim_hint_.store(false, std::memory_order_release);
    }

    /**
     * Claim the single outstanding reclaim-dispatch slot for this PWB.
     * Dispatchers (reclaimer loop, stalled puts) use it so the pool
     * queue never holds two tasks for one PWB.
     * @return true if the caller must submit the task (and later call
     *         releaseReclaimSlot()).
     */
    bool tryAcquireReclaimSlot() {
        bool expected = false;
        return reclaim_scheduled_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel);
    }
    void releaseReclaimSlot() {
        reclaim_scheduled_.store(false, std::memory_order_release);
    }

    /**
     * Advance the head to @p new_head (persisted). Call only after an
     * epoch grace period: readers may still be dereferencing reclaimed
     * addresses.
     */
    void advanceHead(uint64_t new_head);

    /** Region offset of the first data byte (diagnostics). */
    pmem::POff dataOff() const { return data_off_; }

    /**
     * True when region offset @p off lies in logical range
     * [lo, hi) of this ring (diagnostics).
     */
    bool
    offsetInLogicalRange(pmem::POff off, uint64_t lo, uint64_t hi) const
    {
        if (off < data_off_ || off >= data_off_ + capacity_ || lo >= hi)
            return false;
        const uint64_t phys = off - data_off_;
        const uint64_t plo = lo % capacity_;
        const uint64_t phi = hi % capacity_;
        if (hi - lo >= capacity_)
            return true;
        if (plo <= phi)
            return phys >= plo && phys < phi;
        return phys >= plo || phys < phi;
    }

    /** Header access for a reader holding a PWB ValueAddr. */
    const ValueRecordHeader *
    headerAt(ValueAddr addr) const
    {
        return region_->as<ValueRecordHeader>(addr.offset());
    }

    const uint8_t *
    payloadAt(ValueAddr addr) const
    {
        return reinterpret_cast<const uint8_t *>(headerAt(addr) + 1);
    }

  private:
    struct PwbRoot {
        uint64_t magic;
        uint64_t capacity;
        std::atomic<uint64_t> head;  ///< logical (monotonic)
        std::atomic<uint64_t> tail;  ///< logical (monotonic)
        pmem::POff data;
    };
    static constexpr uint64_t kMagic = 0x505742ull;  // "PWB"

    Pwb(pmem::PmemRegion &region, pmem::POff root_off);

    PwbRoot *root() { return region_->as<PwbRoot>(root_off_); }
    const PwbRoot *root() const {
        return region_->as<PwbRoot>(root_off_);
    }

    uint8_t *dataAt(uint64_t physical) {
        return region_->as<uint8_t>(data_off_ + physical);
    }
    const uint8_t *dataAt(uint64_t physical) const {
        return region_->as<const uint8_t>(data_off_ + physical);
    }

    /** Write a pad record covering [tail % capacity, capacity). */
    void writePad(uint64_t tail, uint64_t pad_bytes);

    pmem::PmemRegion *region_;
    pmem::POff root_off_;
    pmem::POff data_off_;
    uint64_t capacity_;
    std::atomic<uint64_t> reclaim_cursor_;
    std::atomic<uint64_t> reclaim_scan_tail_{0};
    /** Logical offset of an appended-but-unpublished record. */
    std::atomic<uint64_t> inflight_{UINT64_MAX};
    /** Volatile per-PWB reclamation state (see passMutex()). */
    prof::TimedMutex pass_mu_{"pwb.pass"};
    std::atomic<bool> reclaim_scheduled_{false};
    std::atomic<bool> reclaim_hint_{false};

    // Shared-by-name process-wide metrics (all PWBs aggregate).
    stats::Counter *reg_appends_;
    stats::Counter *reg_append_bytes_;
};

}  // namespace prism::core
