#include "core/value_storage.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/numa.h"
#include "common/trace.h"
#include "core/async.h"
#include "core/chunk_writer.h"

namespace prism::core {

ValueStorage::ValueStorage(uint32_t ssd_id,
                           std::shared_ptr<io::IoBackend> device,
                           const PrismOptions &opts, EpochManager &epochs)
    : ssd_id_(ssd_id), device_(std::move(device)),
      chunk_bytes_(opts.chunk_bytes), gc_watermark_(opts.vs_gc_watermark),
      gc_victims_per_pass_(opts.gc_victims_per_pass),
      numa_node_(opts.numa_node), epochs_(epochs),
      metas_(device_->capacity() / opts.chunk_bytes)
{
    PRISM_CHECK(!metas_.empty());
    PRISM_CHECK(chunk_bytes_ % ValueAddr::kSizeUnit == 0);
    auto &reg = stats::StatsRegistry::global();
    reg_gc_passes_ = &reg.counter("prism.vs.gc_passes", "ops");
    reg_gc_moved_bytes_ = &reg.counter("prism.vs.gc_moved_bytes", "bytes");
    reg_gc_reclaimed_chunks_ =
        &reg.counter("prism.vs.gc_reclaimed_chunks", "chunks");
    reg_gc_pass_ns_ = &reg.histogram("prism.vs.gc_pass_ns", "ns");
    reg_retries_ = &reg.counter("prism.vs.retries", "ops");
    reg_degraded_ = &reg.counter("prism.vs.degraded", "ops");
    const size_t words = (unitsPerChunk() + 63) / 64;
    for (size_t i = 0; i < metas_.size(); i++) {
        metas_[i].bitmap.reset(new std::atomic<uint64_t>[words]);
        for (size_t w = 0; w < words; w++)
            metas_[i].bitmap[w].store(0, std::memory_order_relaxed);
        free_chunks_.push_back(static_cast<int64_t>(i));
    }
    // Hand out low chunk indices first (purely cosmetic determinism).
    std::reverse(free_chunks_.begin(), free_chunks_.end());

    reader_ = std::make_unique<ReadBatcher>(
        *device_, opts.read_batch_mode, opts.read_queue_depth,
        opts.timeout_batch_us);
    completion_thread_ = std::thread([this] { completionLoop(); });
}

ValueStorage::~ValueStorage()
{
    stop_.store(true, std::memory_order_release);
    completion_thread_.join();
}

void
ValueStorage::completionLoop()
{
    // The background completion thread of §5.3 step 4: reap the CQ and
    // wake the waiter identified by each completion's user_data.
    trace::TraceRegistry::global().setThreadName(
        "vs-completion-" + std::to_string(ssd_id_));
    numa::pinThreadToNode(numa_node_);
    std::vector<io::IoCompletion> completions;
    while (!stop_.load(std::memory_order_acquire)) {
        completions.clear();
        // Completions wake this wait via the device's CQ condvar; the
        // timeout only bounds shutdown latency, so keep it long enough
        // that an idle device costs ~100 wakeups/s, not 5000.
        if (device_->waitCompletions(completions, 256, 10000) == 0)
            continue;
        for (const auto &c : completions) {
            if (c.user_data & AsyncIoHandler::kTag) {
                // Async-API read (core/async.h): hand the completion to
                // its handler; it validates, retries or completes the op
                // on this thread.
                auto *h = reinterpret_cast<AsyncIoHandler *>(
                    c.user_data & ~AsyncIoHandler::kTagMask);
                h->onIoComplete(c.status);
                continue;
            }
            auto *w = reinterpret_cast<ReadWaiter *>(c.user_data & ~1ull);
            if (w != nullptr) {
                w->signal(c.status.isOk() ? ReadWaiter::kOk
                                          : ReadWaiter::kIoError);
            }
        }
    }
}

size_t
ValueStorage::freeChunks() const
{
    size_t n = 0;
    for (const auto &m : metas_) {
        if (m.state.load(std::memory_order_relaxed) ==
            static_cast<uint32_t>(ChunkState::kFree))
            n++;
    }
    return n;
}

int64_t
ValueStorage::allocChunk()
{
    std::lock_guard<prof::TimedTicketLock> lock(free_mu_);
    if (free_chunks_.empty())
        return -1;
    const int64_t chunk = free_chunks_.back();
    free_chunks_.pop_back();
    metas_[static_cast<size_t>(chunk)].state.store(
        static_cast<uint32_t>(ChunkState::kOpen),
        std::memory_order_release);
    return chunk;
}

Status
ValueStorage::submitChunkWrite(int64_t chunk, const uint8_t *buf,
                               uint32_t len, WriteTicket *ticket)
{
    PRISM_DCHECK(len <= chunk_bytes_);
    io::IoRequest req;
    req.op = io::IoRequest::Op::kWrite;
    req.offset = static_cast<uint64_t>(chunk) * chunk_bytes_;
    req.length = len;
    req.src = buf;
    // Bit 0 tags the waiter as a chunk-write ticket (pointers are
    // 8-byte aligned, so the low bits are free).
    req.user_data = reinterpret_cast<uint64_t>(&ticket->waiter) | 1ull;
    return device_->submit(req);
}

void
ValueStorage::sealChunk(int64_t chunk, uint32_t used_bytes)
{
    auto &m = metas_[static_cast<size_t>(chunk)];
    m.used_bytes.store(used_bytes, std::memory_order_release);
    m.settled.store(false, std::memory_order_release);
    m.state.store(static_cast<uint32_t>(ChunkState::kSealed),
                  std::memory_order_release);
}

void
ValueStorage::settleChunk(int64_t chunk)
{
    metas_[static_cast<size_t>(chunk)].settled.store(
        true, std::memory_order_release);
}

void
ValueStorage::freeChunkDeferred(int64_t chunk)
{
    // Only one retirer may free a chunk: concurrent GC/reclaim paths
    // could otherwise push it onto the free list twice and hand the same
    // chunk to two writers.
    auto &meta = metas_[static_cast<size_t>(chunk)];
    uint32_t expected = static_cast<uint32_t>(ChunkState::kSealed);
    if (!meta.state.compare_exchange_strong(
            expected, static_cast<uint32_t>(ChunkState::kFreeing),
            std::memory_order_acq_rel)) {
        // Allow freeing a never-sealed (open, empty) chunk as well.
        expected = static_cast<uint32_t>(ChunkState::kOpen);
        if (!meta.state.compare_exchange_strong(
                expected, static_cast<uint32_t>(ChunkState::kFreeing),
                std::memory_order_acq_rel)) {
            return;  // someone else is already freeing it
        }
    }
    // Readers may still hold addresses into this chunk; recycle it only
    // after two epochs (§5.4's grace-period discipline).
    epochs_.retire([this, chunk] {
        auto &m = metas_[static_cast<size_t>(chunk)];
        const size_t words = (unitsPerChunk() + 63) / 64;
        for (size_t w = 0; w < words; w++)
            m.bitmap[w].store(0, std::memory_order_relaxed);
        m.used_bytes.store(0, std::memory_order_relaxed);
        m.live_units.store(0, std::memory_order_relaxed);
        m.settled.store(false, std::memory_order_relaxed);
        m.state.store(static_cast<uint32_t>(ChunkState::kFree),
                      std::memory_order_release);
        std::lock_guard<prof::TimedTicketLock> lock(free_mu_);
        free_chunks_.push_back(chunk);
    });
}

void
ValueStorage::setValid(uint64_t dev_offset, uint64_t record_bytes)
{
    const uint64_t chunk = dev_offset / chunk_bytes_;
    const uint64_t unit = (dev_offset % chunk_bytes_) / ValueAddr::kSizeUnit;
    auto &m = metas_[chunk];
    const uint64_t prev = m.bitmap[unit / 64].fetch_or(
        1ull << (unit % 64), std::memory_order_acq_rel);
    if (!(prev & (1ull << (unit % 64)))) {
        m.live_units.fetch_add(
            static_cast<uint32_t>(record_bytes / ValueAddr::kSizeUnit),
            std::memory_order_relaxed);
    }
}

void
ValueStorage::clearValid(uint64_t dev_offset, uint64_t record_bytes)
{
    const uint64_t chunk = dev_offset / chunk_bytes_;
    const uint64_t unit = (dev_offset % chunk_bytes_) / ValueAddr::kSizeUnit;
    auto &m = metas_[chunk];
    const uint64_t prev = m.bitmap[unit / 64].fetch_and(
        ~(1ull << (unit % 64)), std::memory_order_acq_rel);
    if (prev & (1ull << (unit % 64))) {
        m.live_units.fetch_sub(
            static_cast<uint32_t>(record_bytes / ValueAddr::kSizeUnit),
            std::memory_order_relaxed);
    }
}

bool
ValueStorage::isValid(uint64_t dev_offset) const
{
    const uint64_t chunk = dev_offset / chunk_bytes_;
    const uint64_t unit = (dev_offset % chunk_bytes_) / ValueAddr::kSizeUnit;
    return metas_[chunk].bitmap[unit / 64].load(std::memory_order_acquire) &
           (1ull << (unit % 64));
}

Status
ValueStorage::readRecord(ValueAddr addr, std::vector<uint8_t> &buf)
{
    PRISM_DCHECK(addr.isVs() && addr.ssdId() == ssd_id_);
    buf.resize(addr.recordBytes());
    Status st;
    for (int attempt = 0; attempt < 3; attempt++) {
        if (attempt > 0) {
            // Transient I/O error (injected fault / device hiccup):
            // retry with a short backoff before surfacing it.
            reg_retries_->inc();
            delayFor(20'000ull << (attempt - 1));
        }
        st = reader_->read(addr.offset(), buf.data(),
                           static_cast<uint32_t>(addr.recordBytes()));
        if (st.code() != StatusCode::kIoError)
            break;
    }
    return st;
}

bool
ValueStorage::needsGc() const
{
    size_t free_count = 0;
    {
        auto *self = const_cast<ValueStorage *>(this);
        std::lock_guard<prof::TimedTicketLock> lock(self->free_mu_);
        free_count = free_chunks_.size();
    }
    return static_cast<double>(metas_.size() - free_count) >
           gc_watermark_ * static_cast<double>(metas_.size());
}

size_t
ValueStorage::runGcPass(Hsit &hsit)
{
    // One GC pass at a time per Value Storage; concurrent passes would
    // pick overlapping victims and double-relocate.
    std::unique_lock<std::mutex> gc_lock(gc_mu_, std::try_to_lock);
    if (!gc_lock.owns_lock())
        return 0;
    if (!device_->healthy()) {
        // Skip-and-requeue: survivors are rewritten to this same device,
        // so a dropout makes the pass futile. The dispatcher's next poll
        // retries; meanwhile the store degrades to the healthy SSDs.
        reg_degraded_->inc();
        PRISM_TRACE_INSTANT("vs.gc_skip_degraded");
        return 0;
    }
    PRISM_TRACE_SPAN_VAR(gc_span, "vs.gc_pass");
    gc_span.arg(PRISM_TRACE_NID("ssd"), ssd_id_);
    const uint64_t gc_t0 = nowNs();

    // Greedy victim selection: sealed chunks with the fewest live units.
    struct Victim {
        int64_t chunk;
        uint32_t live;
    };
    std::vector<Victim> victims;
    for (size_t i = 0; i < metas_.size(); i++) {
        const auto &m = metas_[i];
        if (m.state.load(std::memory_order_acquire) !=
            static_cast<uint32_t>(ChunkState::kSealed))
            continue;
        if (!m.settled.load(std::memory_order_acquire))
            continue;  // its writer is still publishing into it
        const uint32_t live = m.live_units.load(std::memory_order_relaxed);
        if (live >= unitsPerChunk())
            continue;  // fully live; nothing to gain
        victims.push_back({static_cast<int64_t>(i), live});
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim &a, const Victim &b) {
                  return a.live < b.live;
              });
    if (victims.size() > static_cast<size_t>(gc_victims_per_pass_))
        victims.resize(static_cast<size_t>(gc_victims_per_pass_));
    if (victims.empty())
        return 0;

    struct Survivor {
        uint64_t hsit_idx;
        uint64_t key;
        ValueAddr old_addr;
        std::vector<uint8_t> payload;
    };
    std::vector<Survivor> survivors;
    std::vector<uint8_t> chunk_buf(chunk_bytes_);

    for (const auto &v : victims) {
        auto &m = metas_[static_cast<size_t>(v.chunk)];
        const uint32_t used = m.used_bytes.load(std::memory_order_acquire);
        if (v.live == 0 || used == 0)
            continue;
        const uint64_t base = static_cast<uint64_t>(v.chunk) * chunk_bytes_;
        const Status read_st = device_->readSync(base, chunk_buf.data(),
                                                 used);
        if (!read_st.isOk()) {
            // Transient victim-read failure: leave the chunk as-is; its
            // live records keep it from being freed below and the next
            // pass retries it.
            reg_retries_->inc();
            continue;
        }
        // Parse the chunk's records; the first-unit bit decides liveness
        // — no key-index traversal (§5.2).
        uint64_t off = 0;
        while (off + sizeof(ValueRecordHeader) <= used) {
            const auto *hdr = reinterpret_cast<const ValueRecordHeader *>(
                chunk_buf.data() + off);
            const uint64_t bytes = recordBytes(hdr->value_size);
            if (hdr->value_size == 0 || off + bytes > used)
                break;  // zero padding tail
            if (!(hdr->flags & ValueRecordHeader::kFlagPad) &&
                isValid(base + off) &&
                recordCrcOk(*hdr, chunk_buf.data() + off +
                                      sizeof(ValueRecordHeader))) {
                Survivor s;
                s.hsit_idx = hdr->backward;
                s.key = hdr->key;
                s.old_addr = ValueAddr::vs(ssd_id_, base + off, bytes);
                s.payload.assign(
                    chunk_buf.data() + off + sizeof(ValueRecordHeader),
                    chunk_buf.data() + off + sizeof(ValueRecordHeader) +
                        hdr->value_size);
                survivors.push_back(std::move(s));
            }
            off += bytes;
        }
    }

    if (!survivors.empty()) {
        uint64_t moved = 0;
        for (const auto &s : survivors)
            moved += recordBytes(static_cast<uint32_t>(s.payload.size()));
        reg_gc_moved_bytes_->add(moved);
        // Rewrite survivors within this same Value Storage (§5.2).
        ChunkWriter writer({this});
        std::vector<ValueAddr> new_addrs;
        new_addrs.reserve(survivors.size());
        for (const auto &s : survivors) {
            const ValueAddr a = writer.add(
                s.hsit_idx, s.key, s.payload.data(),
                static_cast<uint32_t>(s.payload.size()));
            PRISM_CHECK(!a.isNull() && "Value Storage exhausted during GC");
            new_addrs.push_back(a);
        }
        const Status st = writer.finish();
        PRISM_CHECK(st.isOk());

        // Pre-mark the copies live so a concurrent GC pass cannot judge
        // the destination chunk empty before the CASes land. A record
        // whose rewrite failed permanently (device died mid-pass) keeps
        // its old copy: skip both the pre-mark and the CAS, so the HSIT
        // still points into the victim, the victim stays unfreed, and a
        // later pass retries the move.
        for (size_t i = 0; i < survivors.size(); i++) {
            if (!writer.recordFailed(i))
                setValid(new_addrs[i].offset(),
                         new_addrs[i].recordBytes());
        }
        writer.settleAll();
        for (size_t i = 0; i < survivors.size(); i++) {
            const auto &s = survivors[i];
            if (writer.recordFailed(i)) {
                reg_retries_->inc();
                continue;
            }
            if (hsit.casPrimaryDurable(s.hsit_idx, s.old_addr,
                                       new_addrs[i])) {
                clearValid(s.old_addr.offset(), s.old_addr.recordBytes());
            } else {
                // The value was updated or relocated concurrently;
                // whoever won also cleared the old bit. Retract ours.
                clearValid(new_addrs[i].offset(),
                           new_addrs[i].recordBytes());
            }
        }
    }

    size_t reclaimed = 0;
    for (const auto &v : victims) {
        auto &m = metas_[static_cast<size_t>(v.chunk)];
        if (m.live_units.load(std::memory_order_acquire) == 0) {
            freeChunkDeferred(v.chunk);
            reclaimed++;
        }
    }
    gc_passes_.fetch_add(1, std::memory_order_relaxed);
    reg_gc_passes_->inc();
    reg_gc_reclaimed_chunks_->add(reclaimed);
    reg_gc_pass_ns_->record(nowNs() - gc_t0);
    return reclaimed;
}

void
ValueStorage::resetForRecovery()
{
    const size_t words = (unitsPerChunk() + 63) / 64;
    for (auto &m : metas_) {
        m.state.store(static_cast<uint32_t>(ChunkState::kFree),
                      std::memory_order_relaxed);
        m.settled.store(false, std::memory_order_relaxed);
        m.used_bytes.store(0, std::memory_order_relaxed);
        m.live_units.store(0, std::memory_order_relaxed);
        for (size_t w = 0; w < words; w++)
            m.bitmap[w].store(0, std::memory_order_relaxed);
    }
    std::lock_guard<prof::TimedTicketLock> lock(free_mu_);
    free_chunks_.clear();
}

void
ValueStorage::markLiveAtRecovery(uint64_t dev_offset, uint64_t record_bytes)
{
    const uint64_t chunk = dev_offset / chunk_bytes_;
    auto &m = metas_[chunk];
    m.state.store(static_cast<uint32_t>(ChunkState::kSealed),
                  std::memory_order_relaxed);
    m.settled.store(true, std::memory_order_relaxed);
    const auto end = static_cast<uint32_t>(
        dev_offset % chunk_bytes_ + record_bytes);
    uint32_t used = m.used_bytes.load(std::memory_order_relaxed);
    while (end > used &&
           !m.used_bytes.compare_exchange_weak(used, end,
                                               std::memory_order_relaxed)) {
    }
    setValid(dev_offset, record_bytes);
}

void
ValueStorage::finalizeRecovery()
{
    std::lock_guard<prof::TimedTicketLock> lock(free_mu_);
    for (size_t i = metas_.size(); i-- > 0;) {
        if (metas_[i].state.load(std::memory_order_relaxed) ==
            static_cast<uint32_t>(ChunkState::kFree))
            free_chunks_.push_back(static_cast<int64_t>(i));
    }
}

}  // namespace prism::core
