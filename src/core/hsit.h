/**
 * @file
 * Heterogeneous Storage Index Table (HSIT, §4.5).
 *
 * The HSIT is an NVM-resident indirection array between the Persistent
 * Key Index and value locations. Each 16-byte entry packs:
 *
 *  - `primary`: the PWB-or-ValueStorage forward pointer (ValueAddr),
 *    including the dirty bit of the flush-on-read protocol;
 *  - `svc`: a DRAM pointer to the cached copy in the Scan-aware Value
 *    Cache (semantically volatile; nullified at recovery).
 *
 * The entry is the store's linearization point: a write is visible only
 * once `primary` is updated, and durable-linearizable thanks to the
 * dirty-bit flush-on-read CAS protocol (§5.4). Values embed a backward
 * pointer (their entry index); a value is live iff its backward pointer
 * and the entry's forward pointer refer to each other ("well-coupled").
 *
 * Entry reclamation: deleted entries go to a volatile free list after two
 * epochs (§5.4); after a crash the free list is rebuilt by marking the
 * entries reachable from the key index (§5.5).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/epoch.h"
#include "common/spinlock.h"
#include "core/addr.h"
#include "pmem/pmem_allocator.h"
#include "pmem/pmem_region.h"

namespace prism::core {

/** One 16-byte HSIT slot on NVM. */
struct HsitEntry {
    std::atomic<uint64_t> primary;  ///< ValueAddr raw bits (+ dirty bit)
    std::atomic<uint64_t> svc;      ///< SvcEntry* as integer; 0 = none
};
static_assert(sizeof(HsitEntry) == 16, "paper packs an entry in 16 bytes");

/** The indirection table. Thread-safe. */
class Hsit {
  public:
    static constexpr uint64_t kInvalidIndex = UINT64_MAX;

    /** Create a fresh table of @p capacity entries on NVM. */
    static std::unique_ptr<Hsit> create(pmem::PmemRegion &region,
                                        pmem::PmemAllocator &alloc,
                                        uint64_t capacity);

    /** Re-attach after restart; call resetVolatile + rebuildFreeList next. */
    static std::unique_ptr<Hsit> attach(pmem::PmemRegion &region,
                                        pmem::POff root_off);

    /** Persistent identity (store in the master root). */
    pmem::POff rootOff() const { return root_off_; }

    uint64_t capacity() const { return capacity_; }

    /** Live (allocated, not freed) entry count estimate. */
    uint64_t liveCount() const;

    /** NVM bytes consumed (for the §7.6 space experiment). */
    uint64_t nvmBytes() const { return capacity_ * sizeof(HsitEntry); }

    /**
     * Allocate an entry (free list first, then bump).
     * The entry's primary is reset to null; the caller publishes it via
     * storePrimaryDurable before inserting into the key index.
     * @return entry index, or kInvalidIndex when the table is full.
     */
    uint64_t allocEntry();

    /**
     * Return a never-published entry immediately (insert race loser).
     */
    void freeEntryImmediate(uint64_t idx);

    /**
     * Retire a published entry; it joins the free list after two epochs
     * so concurrent readers holding the index handle stay safe.
     */
    void freeEntryDeferred(uint64_t idx, EpochManager &epochs);

    HsitEntry &entry(uint64_t idx) { return table_[idx]; }
    const HsitEntry &entry(uint64_t idx) const { return table_[idx]; }

    /** @name Forward-pointer protocol (§5.4) */
    ///@{
    /**
     * Load `primary`, performing flush-on-read: if the dirty bit is set,
     * persist the pointer on the writer's behalf and clear the bit.
     * Charges one NVM read.
     */
    ValueAddr loadPrimary(uint64_t idx);

    /**
     * Durable-linearizable CAS of `primary` from @p expected (clean) to
     * @p desired: CAS in the dirty state, persist, then clear the bit.
     * @return false when the entry changed concurrently (caller re-reads).
     */
    bool casPrimaryDurable(uint64_t idx, ValueAddr expected,
                           ValueAddr desired);

    /** Unconditional durable publish (for entries not yet visible). */
    void storePrimaryDurable(uint64_t idx, ValueAddr addr);
    ///@}

    /** @name SVC pointer (volatile semantics) */
    ///@{
    void *svcLoad(uint64_t idx) const {
        return reinterpret_cast<void *>(
            table_[idx].svc.load(std::memory_order_acquire));
    }
    bool
    svcCas(uint64_t idx, void *expected, void *desired)
    {
        auto exp = reinterpret_cast<uint64_t>(expected);
        return table_[idx].svc.compare_exchange_strong(
            exp, reinterpret_cast<uint64_t>(desired),
            std::memory_order_acq_rel);
    }
    void svcStore(uint64_t idx, void *p) {
        table_[idx].svc.store(reinterpret_cast<uint64_t>(p),
                              std::memory_order_release);
    }
    ///@}

    /** @name Recovery (§5.5) */
    ///@{
    /** Nullify SVC pointers and persisted dirty bits after a crash. */
    void resetVolatile();

    /**
     * Rebuild the free list: every entry whose index is not set in
     * @p reachable (bit per entry, from the key-index walk) is free.
     */
    void rebuildFreeList(const std::vector<bool> &reachable);
    ///@}

  private:
    struct HsitRoot {
        uint64_t magic;
        uint64_t capacity;
        pmem::POff table;
    };
    static constexpr uint64_t kMagic = 0x48534954ull;  // "HSIT"

    Hsit(pmem::PmemRegion &region, pmem::POff root_off, HsitEntry *table,
         uint64_t capacity);

    pmem::PmemRegion *region_;
    pmem::POff root_off_;
    HsitEntry *table_;
    uint64_t capacity_;

    std::atomic<uint64_t> bump_{0};
    SpinLock free_mu_;
    std::vector<uint64_t> free_list_;
    std::atomic<uint64_t> freed_count_{0};
};

}  // namespace prism::core
