/**
 * @file
 * Configuration for a PrismDb instance.
 *
 * Defaults reflect the paper's setup scaled to a single-machine
 * simulation: 512 KB Value Storage chunks, queue depth 64, a 50% PWB
 * reclamation watermark, and a 2Q SVC. Feature flags expose the ablations
 * of §7.6 (thread combining vs timeout batching, SVC on/off, scan-aware
 * reorganisation on/off).
 */
#pragma once

#include <cstdint>
#include <string>

namespace prism::core {

/** How Value Storage reads are batched (§5.3, Figure 11). */
enum class ReadBatchMode {
    /** Opportunistic thread combining via the TCQ (Prism's scheme). */
    kThreadCombining,
    /** Timeout-based batching: wait up to a fixed period for more
     *  requests before submitting (the paper's "TA" comparison point). */
    kTimeoutAsync,
    /** No batching: each read is submitted alone (queue depth 1). */
    kNone,
};

/** Tunables for one PrismDb instance. */
struct PrismOptions {
    /** @name Persistent Write Buffer (§4.3) */
    ///@{
    /** Per-thread PWB capacity in bytes. */
    uint64_t pwb_size_bytes = 16ull * 1024 * 1024;
    /** Utilization fraction that triggers background reclamation. */
    double pwb_reclaim_watermark = 0.5;
    ///@}

    /** @name Value Storage (§4.2, §5.1) */
    ///@{
    /** Chunk size; the paper uses 512 KB for SSD-friendly writes. */
    uint64_t chunk_bytes = 512 * 1024;
    /** Utilization fraction that triggers garbage collection. */
    double vs_gc_watermark = 0.80;
    /** Number of victim chunks merged per GC pass. */
    int gc_victims_per_pass = 4;
    ///@}

    /** @name Scan-aware Value Cache (§4.4) */
    ///@{
    bool enable_svc = true;
    /** Total DRAM budget for cached values. */
    uint64_t svc_capacity_bytes = 256ull * 1024 * 1024;
    /** Reorganise scan ranges on eviction (ablation §7.6). */
    bool enable_scan_reorg = true;
    ///@}

    /** @name Read batching (§5.3) */
    ///@{
    ReadBatchMode read_batch_mode = ReadBatchMode::kThreadCombining;
    /** Coalescing limit (io_uring queue depth); the paper uses 64. */
    int read_queue_depth = 64;
    /** TA mode: wait this long for more requests before submitting. */
    uint64_t timeout_batch_us = 100;
    ///@}

    /** @name HSIT sizing (§4.5) */
    ///@{
    /** Maximum number of live keys (HSIT entries are preallocated). */
    uint64_t hsit_capacity = 4ull * 1024 * 1024;
    ///@}

    /** @name I/O backend (docs/IO_BACKENDS.md, src/io/io_backend.h) */
    ///@{
    /**
     * Which io::IoBackend implementation harnesses that construct their
     * own devices (YCSB stores, benches, the CLI) should build:
     * "sim" (timing-modelled simulator, the default), "posix"
     * (pwrite/pread thread pool over real files), "uring" (io_uring;
     * falls back to posix with a warning when the kernel lacks it), or
     * "auto" (uring when available, else posix, silently). Empty defers
     * to $PRISM_IO_BACKEND, then "sim".
     * Library users who pass their own device vector to PrismDb are
     * unaffected — the store never consults this.
     */
    std::string io_backend;
    /**
     * Directory for the real-file backends' backing files (one
     * .img per device). Empty uses $PRISM_IO_DIR, then /tmp/prism-io.
     * Point it at a tmpfs (e.g. /dev/shm) to keep CI hermetic.
     */
    std::string io_backend_dir;
    ///@}

    /** @name Sharding (src/core/shard_router.h) */
    ///@{
    /**
     * Number of independent PrismDb shards the router fronts. Must be a
     * power of two (keys are hash-partitioned with a mask). 1 routes
     * every op to a single shard — today's behaviour, bit-identical.
     * 0 (the default) defers to $PRISM_SHARDS, then 1. Only harnesses
     * that construct stores through ShardRouter / PrismStore consult
     * this; a directly-built PrismDb ignores it.
     */
    int shards = 0;
    /**
     * Preferred NUMA node for this instance's background threads
     * (reclaimer, GC scheduler, VS completion threads). -1 = unpinned.
     * The shard router assigns nodes round-robin across shards on
     * multi-node machines (common/numa.h); single-node machines always
     * run unpinned.
     */
    int numa_node = -1;
    ///@}

    /** Largest supported value (one record must fit a chunk and the
     *  packed address size field). */
    uint32_t max_value_bytes = 60 * 1024;

    /**
     * Background reclaimer safety-net poll interval. The hot path is
     * edge-triggered — a put whose ring crosses the watermark notifies
     * the reclaimer directly (Pwb::armReclaimHint) — so this poll only
     * bounds staleness for the re-dispatch gate and epoch advancement;
     * it no longer needs to be sub-millisecond to keep up with writes.
     */
    uint64_t reclaimer_poll_us = 10000;

    /** @name Background I/O engine (§5.2, src/core/bg_pool.h) */
    ///@{
    /**
     * Worker threads shared by PWB reclamation and Value Storage GC.
     * Independent PWBs reclaim concurrently and each SSD runs its GC
     * pass as its own task, so sizing this near min(#client threads,
     * #SSDs) keeps the SSD array busy. 0 runs all background work
     * inline on the dispatcher threads (the pre-pool serial behaviour,
     * kept for ablation).
     */
    int bg_workers = 4;
    /**
     * Chunk writes kept in flight per reclamation pass. Each completed
     * chunk publishes its HSIT entries immediately instead of waiting
     * for a full-pass barrier, overlapping SSD writes with NVM-side
     * scan/filter work. 1 degenerates to write-then-publish per chunk;
     * values beyond the per-SSD queue depth add no overlap.
     */
    int reclaim_pipeline_depth = 4;
    /**
     * PWB utilization at or above which a reclamation pass also submits
     * its final *partial* chunk. Below it, passes are thrifty: they
     * relocate full chunks only and leave the straggler records in the
     * ring for a later pass (they are durable there, and most become
     * stale and free to drop — §4.3's dedup). This keeps a hot-update
     * workload from sealing a nearly-empty chunk per pass, which would
     * inflate SSD write amplification and exhaust chunks when GC is
     * throttled. flushAll() always forces full submission.
     */
    double pwb_reclaim_force_utilization = 0.90;
    ///@}

    /** @name Observability (docs/OBSERVABILITY.md) */
    ///@{
    /**
     * When > 0, a background thread dumps the process-wide stats
     * registry to stderr every this-many milliseconds.
     */
    uint64_t stats_dump_interval_ms = 0;
    /** Dump format for the periodic dumper: JSON lines vs aligned text. */
    bool stats_dump_json = false;
    /**
     * Start with cross-layer tracing (src/common/trace.h) recording.
     * The tracer is process-wide; this just flips it on at open so a
     * whole run is captured without touching TraceRegistry directly.
     * Tracing can also be toggled at runtime (prism_cli `trace on`).
     */
    bool trace_enabled = false;
    /**
     * Ops slower than this many microseconds get their span tree copied
     * into the keep-worst slow-op buffer (PrismDb::slowOps()). 0
     * disables capture. Implies ring recording while set.
     */
    uint64_t trace_slow_op_us = 0;
    /** Per-thread trace ring capacity in events (rounded to a power of
     *  two; ~64 B/event). */
    uint64_t trace_ring_events = 16384;
    /** How many worst slow ops to keep. */
    uint64_t trace_slow_op_keep = 32;
    /**
     * When > 0, start the process-wide telemetry sampler
     * (src/common/telemetry.h) at this interval: every tick snapshots
     * the stats registry into a ring of interval deltas (rate series,
     * occupancy series, per-layer busy-ns, per-device utilization).
     * Off (0) by default; ~100 ms is the intended granularity. The
     * store that started the sampler stops it on close; the recorded
     * series survives for export (PrismDb::telemetry()).
     */
    uint64_t telemetry_interval_ms = 0;
    /** Telemetry ring capacity in sampling windows (default 600 ≈ one
     *  minute at 100 ms). */
    uint64_t telemetry_windows = 600;
    /**
     * Sampling CPU profiler rate in Hz (common/prof.h). When > 0 the
     * store arms the process-wide profiler at open (per-thread
     * CPU-time timers + SIGPROF backtraces, plus the lock-contention
     * profiler) and stops it at close if it did the arming. 0 (the
     * default) defers to $PRISM_PROF_HZ, then stays off — off means
     * zero timers and one relaxed load per instrumented site. ~99 Hz
     * is the intended always-on rate (prime, to dodge lockstep with
     * periodic work); collection is via /pprof/profile on the ops
     * endpoint, `prism_cli profile`, or a bench's `--profile=<file>`.
     */
    int prof_hz = 0;
    /**
     * HTTP ops endpoint (common/obs_server.h): TCP port for /metrics,
     * /healthz, /readyz, /slowops, /telemetry and /trace on 127.0.0.1.
     * -1 (the default) defers to $PRISM_OBS_PORT, then stays off;
     * 0 binds an ephemeral port (published as the prism.obs.port gauge
     * and via PrismDb::obsPort() / ShardRouter::obsPort()); >0 binds
     * that port. Only a top-level store serves: a PrismDb owned by a
     * ShardRouter never starts its own listener — the router runs one
     * for the whole fleet.
     */
    int obs_port = -1;
    ///@}

    /** @name Fault injection (docs/FAULTS.md) */
    ///@{
    /**
     * Fault schedule armed at open, in PRISM_FAULTS syntax
     * (`site=trigger[,payload:V][,oneshot];...`, see common/fault.h).
     * The registry is process-wide, so this *adds to* whatever the
     * environment or an earlier instance armed; empty arms nothing.
     * Tests and the torture harness use it to script failures without
     * touching the environment.
     */
    std::string fault_spec;
    ///@}
};

}  // namespace prism::core
