#include "core/pwb.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace prism::core {

using pmem::kNullOff;
using pmem::POff;

Pwb::Pwb(pmem::PmemRegion &region, POff root_off)
    : region_(&region), root_off_(root_off)
{
    auto &reg = stats::StatsRegistry::global();
    reg_appends_ = &reg.counter("prism.pwb.appends", "ops");
    reg_append_bytes_ = &reg.counter("prism.pwb.append_bytes", "bytes");
    const auto *r = root();
    PRISM_CHECK(r->magic == kMagic);
    data_off_ = r->data;
    capacity_ = r->capacity;
    reclaim_cursor_.store(r->head.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    reclaim_scan_tail_.store(r->head.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
}

std::unique_ptr<Pwb>
Pwb::create(pmem::PmemRegion &region, pmem::PmemAllocator &alloc,
            uint64_t capacity)
{
    // Round to whole 64 B units (records are unit-aligned).
    capacity &= ~(ValueAddr::kSizeUnit - 1);
    PRISM_CHECK(capacity >= 4 * ValueAddr::kSizeUnit);
    const POff root_off = alloc.alloc(sizeof(PwbRoot));
    PRISM_CHECK(root_off != kNullOff);
    const POff data = alloc.allocRaw(capacity);
    PRISM_CHECK(data != kNullOff && "NVM too small for PWB");

    auto *r = region.as<PwbRoot>(root_off);
    r->capacity = capacity;
    r->head.store(0, std::memory_order_relaxed);
    r->tail.store(0, std::memory_order_relaxed);
    r->data = data;
    r->magic = kMagic;
    region.persist(r, sizeof(*r));
    return std::unique_ptr<Pwb>(new Pwb(region, root_off));
}

std::unique_ptr<Pwb>
Pwb::attach(pmem::PmemRegion &region, POff root_off)
{
    return std::unique_ptr<Pwb>(new Pwb(region, root_off));
}

void
Pwb::writePad(uint64_t tail, uint64_t pad_bytes)
{
    PRISM_DCHECK(pad_bytes >= sizeof(ValueRecordHeader));
    auto *hdr = reinterpret_cast<ValueRecordHeader *>(dataAt(
        tail % capacity_));
    hdr->backward = 0;
    hdr->key = 0;
    hdr->value_size = static_cast<uint32_t>(
        pad_bytes - sizeof(ValueRecordHeader));
    hdr->flags = ValueRecordHeader::kFlagPad;
    hdr->crc = 0;
    hdr->reserved = 0;
    region_->flush(hdr, sizeof(*hdr));
}

ValueAddr
Pwb::append(uint64_t hsit_idx, uint64_t key, const void *value,
            uint32_t size)
{
    const uint64_t bytes = recordBytes(size);
    auto *r = root();
    uint64_t tail = r->tail.load(std::memory_order_relaxed);
    const uint64_t head = r->head.load(std::memory_order_acquire);

    uint64_t pad = 0;
    const uint64_t to_wrap = capacity_ - tail % capacity_;
    if (bytes > to_wrap)
        pad = to_wrap;  // record must be physically contiguous
    if (tail + pad + bytes - head > capacity_)
        return ValueAddr();  // full; caller waits for reclamation

    if (pad != 0) {
        writePad(tail, pad);
        tail += pad;
    }

    // Fence the record against reclamation until the caller publishes
    // it (see markPublished). Ordered before the tail bump, so any
    // reclaimer that can see the record also sees the marker.
    inflight_.store(tail, std::memory_order_release);

    const uint64_t phys = tail % capacity_;
    auto *hdr = reinterpret_cast<ValueRecordHeader *>(dataAt(phys));
    hdr->backward = hsit_idx;
    hdr->key = key;
    hdr->value_size = size;
    hdr->flags = 0;
    hdr->reserved = 0;
    std::memcpy(hdr + 1, value, size);
    hdr->crc = recordCrc(*hdr, hdr + 1);

    // One fence covers the record, any pad, and the tail bump: all are
    // durable before the HSIT publish that makes the value reachable.
    region_->flush(hdr, sizeof(*hdr) + size);
    r->tail.store(tail + bytes, std::memory_order_release);
    region_->flush(&r->tail, sizeof(r->tail));
    region_->fence();

    reg_appends_->inc();
    reg_append_bytes_->add(bytes);
    return ValueAddr::pwb(data_off_ + phys, bytes);
}

uint64_t
Pwb::collectFrom(uint64_t from, uint64_t max_bytes,
                 std::vector<RecordRef> &out) const
{
    const auto *r = root();
    uint64_t pos = std::max(from, r->head.load(std::memory_order_acquire));
    uint64_t tail = r->tail.load(std::memory_order_acquire);
    // An appended-but-unpublished record must not be judged: it looks
    // ill-coupled but is about to become live. (Read after tail: the
    // owner orders the marker store before the tail bump.)
    tail = std::min(tail, inflight_.load(std::memory_order_acquire));
    if (pos >= tail)
        return pos;
    // Saturating bound: callers may pass UINT64_MAX for "everything".
    const uint64_t stop =
        max_bytes >= tail - pos ? tail : pos + max_bytes;

    while (pos < stop) {
        const uint64_t phys = pos % capacity_;
        const auto *hdr =
            reinterpret_cast<const ValueRecordHeader *>(dataAt(phys));
        const uint64_t bytes = recordBytes(hdr->value_size);
        // Defensive bound: a corrupt header must not run the scan off the
        // ring (cannot happen with our fence model, but cheap to verify).
        if (bytes == 0 || bytes > capacity_ - phys || pos + bytes > tail)
            break;
        if (!(hdr->flags & ValueRecordHeader::kFlagPad)) {
            out.push_back({pos + bytes,
                           ValueAddr::pwb(data_off_ + phys, bytes), hdr,
                           reinterpret_cast<const uint8_t *>(hdr + 1)});
        }
        pos += bytes;
    }
    return pos;
}

void
Pwb::advanceHead(uint64_t new_head)
{
    auto *r = root();
    // Monotonic: concurrent reclaim passes (background reclaimer +
    // flushAll) may apply their deferred advances out of order; moving
    // the head backwards would break the ring invariant and let the
    // owner overwrite live records.
    if (new_head <= r->head.load(std::memory_order_acquire))
        return;
    PRISM_DCHECK(new_head <= r->tail.load(std::memory_order_relaxed));
    r->head.store(new_head, std::memory_order_release);
    region_->persist(&r->head, sizeof(r->head));
}

}  // namespace prism::core
