#include "core/shard_router.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/log.h"
#include "common/logging.h"
#include "common/numa.h"
#include "common/obs_server.h"
#include "common/prof.h"
#include "common/rand.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prism::core {

namespace {

bool
isPow2(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

}  // namespace

int
ShardRouter::resolveShardCount(int opt_shards)
{
    int n = opt_shards;
    if (n == 0) {
        if (const char *env = std::getenv("PRISM_SHARDS");
            env != nullptr && env[0] != '\0')
            n = std::atoi(env);
        if (n == 0)
            n = 1;
    }
    if (!isPow2(n) || n > 256)
        fatal("shards must be a power of two in [1,256], got %d", n);
    return n;
}

size_t
ShardRouter::shardOf(uint64_t key, size_t shard_count)
{
    // splitmix64 finalizer: the same scrambling the YCSB generators
    // use, so dense sequential key spaces still spread evenly.
    return static_cast<size_t>(hash64(key)) & (shard_count - 1);
}

ShardRouter::ShardRouter(const PrismOptions &opts,
                         std::vector<ShardBackends> backends, bool format)
    : opts_(opts)
{
    const size_t n = backends.size();
    PRISM_CHECK(n >= 1 && isPow2(static_cast<int>(n)));
    const uint64_t t0 = nowNs();

    pool_ = std::make_shared<BgPool>(opts_.bg_workers);

    auto &reg = stats::StatsRegistry::global();
    shard_nodes_.resize(n, -1);
    reg_shard_ops_.resize(n);
    reg_shard_keys_.resize(n);
    reg_shard_node_.resize(n);
    shards_.reserve(n);
    for (size_t i = 0; i < n; i++) {
        const std::string p = "prism.shard." + std::to_string(i);
        reg_shard_ops_[i] = &reg.counter(p + ".ops", "ops");
        reg_shard_keys_[i] = &reg.gauge(p + ".keys", "keys");
        reg_shard_node_[i] = &reg.gauge(p + ".node", "node");

        PrismOptions so = opts_;
        // The router runs the fleet's one ops server (below); a shard
        // must never bind its own. (The shared pool already suppresses
        // it — owns_pool_ is false — but be explicit.)
        so.obs_port = -1;
        // Router-level placement beats the (usually unset) per-instance
        // preference; an explicit user numa_node wins for all shards.
        shard_nodes_[i] = so.numa_node >= 0
                              ? so.numa_node
                              : numa::nodeForShard(i, n);
        so.numa_node = shard_nodes_[i];
        // Options that arm process-wide machinery must fire once, not
        // once per shard: shard 0 carries them, the rest get clean
        // copies (the fault registry would otherwise arm N duplicate
        // schedules and telemetry would start N times).
        if (i > 0) {
            so.fault_spec.clear();
            so.telemetry_interval_ms = 0;
            so.stats_dump_interval_ms = 0;
        }
        reg_shard_node_[i]->set(
            static_cast<uint64_t>(std::max(shard_nodes_[i], 0)));
        shards_.push_back(std::make_unique<PrismDb>(
            so, backends[i].region, backends[i].devices, format, pool_));
    }

    telemetry_probe_ = telemetry::Telemetry::global().addProbe(
        [this] { publishShardGauges(); });
    recovery_ns_ = nowNs() - t0;

    // Fleet-wide HTTP ops endpoint: one listener for all shards, with
    // health summed over every shard's device slice.
    const int obs_port = obs::resolveObsPort(opts_.obs_port);
    if (obs_port >= 0) {
        obs_ = std::make_unique<obs::ObsServer>();
        obs_->setMetricsPrepare([this] {
            for (auto &s : shards_)
                s->publishOccupancy();
            publishShardGauges();
            trace::TraceRegistry::global().publishStats();
            prof::Profiler::global().publishStats();
        });
        obs_->setHealthProvider([this] { return healthReport(); });
        obs::ObsServer::Options oo;
        oo.port = obs_port;
        std::string err;
        if (!obs_->start(oo, &err)) {
            PRISM_LOG_WARN("obs.server", "ops endpoint disabled: %s",
                           err.c_str());
            obs_.reset();
        }
    }
}

ShardRouter::~ShardRouter()
{
    // Ops server first: its handlers fan out over shards_.
    obs_.reset();
    // Router-level async scans hold `this`; wait them out first.
    while (async_scan_inflight_.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
    telemetry::Telemetry::global().removeProbe(telemetry_probe_);
    // Shards first (each quiesces its own pool tasks), then the shared
    // pool they all reference.
    shards_.clear();
    pool_->shutdown();
}

void
ShardRouter::publishShardGauges()
{
    for (size_t i = 0; i < shards_.size(); i++)
        reg_shard_keys_[i]->set(shards_[i]->size());
}

ErrorBudget
ShardRouter::errorBudget() const
{
    // The counter fields are process-wide, so shard 0's copy is the
    // fleet's; degraded_devices is per-instance and must be summed.
    ErrorBudget b = shards_[0]->errorBudget();
    for (size_t i = 1; i < shards_.size(); i++)
        b.degraded_devices += shards_[i]->errorBudget().degraded_devices;
    return b;
}

obs::HealthReport
ShardRouter::healthReport() const
{
    const ErrorBudget b = errorBudget();
    obs::HealthReport r;
    r.healthy = !b.degraded();
    r.ready = r.healthy;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"status\":\"%s\",\"ready\":%s,\"shards\":%zu,"
        "\"degraded_devices\":%llu,\"devices\":%zu,"
        "\"faults_fired\":%llu,\"ssd_io_errors\":%llu,"
        "\"pwb_write_failures\":%llu,\"vs_degraded\":%llu,"
        "\"bg_task_faults\":%llu,\"recovery_ns\":%llu,"
        "\"prof_hz\":%d}",
        r.healthy ? "ok" : "degraded", r.ready ? "true" : "false",
        shards_.size(),
        static_cast<unsigned long long>(b.degraded_devices),
        valueStorageCount(),
        static_cast<unsigned long long>(b.faults_fired),
        static_cast<unsigned long long>(b.ssd_io_errors),
        static_cast<unsigned long long>(b.pwb_write_failures),
        static_cast<unsigned long long>(b.vs_degraded),
        static_cast<unsigned long long>(b.bg_task_faults),
        static_cast<unsigned long long>(recovery_ns_),
        prof::Profiler::global().running()
            ? prof::Profiler::global().hz() : 0);
    r.json = buf;
    // When a network front-end is embedded its listener registers a
    // JSON provider; splice it in so /healthz shows listener state.
    if (std::string lj = obs::listenerInfoJson(); !lj.empty()) {
        r.json.pop_back();
        r.json += ",\"listener\":" + lj + "}";
    }
    return r;
}

int
ShardRouter::obsPort() const
{
    return obs_ != nullptr ? obs_->port() : 0;
}

Status
ShardRouter::put(uint64_t key, std::string_view value)
{
    const size_t s =
        shards_.size() == 1 ? 0 : shardOf(key, shards_.size());
    reg_shard_ops_[s]->inc();
    return shards_[s]->put(key, value);
}

Status
ShardRouter::get(uint64_t key, std::string *value)
{
    const size_t s =
        shards_.size() == 1 ? 0 : shardOf(key, shards_.size());
    reg_shard_ops_[s]->inc();
    return shards_[s]->get(key, value);
}

Status
ShardRouter::del(uint64_t key)
{
    const size_t s =
        shards_.size() == 1 ? 0 : shardOf(key, shards_.size());
    reg_shard_ops_[s]->inc();
    return shards_[s]->del(key);
}

Status
ShardRouter::scan(uint64_t start_key, size_t count,
                  std::vector<std::pair<uint64_t, std::string>> *out)
{
    out->clear();
    if (shards_.size() == 1) {
        reg_shard_ops_[0]->inc();
        return shards_[0]->scan(start_key, count, out);
    }
    if (count == 0)
        return Status::ok();

    // Streaming k-way merge. Every shard's m-smallest keys >= start
    // form a superset of that shard's contribution to the global
    // count-smallest, and hash partitioning spreads any key range
    // ~uniformly, so each shard contributes ~count/n rows. The first
    // round fetches that expectation plus slack shard-parallel on the
    // shared pool; a shard whose run drains before the merge finishes
    // refetches a further batch inline, continuing past its last
    // returned key. This keeps total fetched rows near count instead
    // of the n*count a fetch-everything fan-out reads — the difference
    // is an order of magnitude of SSD traffic on scan-heavy mixes.
    const size_t n = shards_.size();
    struct Run {
        std::vector<std::pair<uint64_t, std::string>> rows;
        size_t cursor = 0;
        uint64_t next_start = 0;
        bool exhausted = false;  ///< shard has no keys past next_start
    };
    std::vector<Run> runs(n);
    std::vector<Status> sts(n);
    auto fetch = [&](size_t i, size_t batch) {
        Run &r = runs[i];
        r.rows.clear();
        r.cursor = 0;
        reg_shard_ops_[i]->inc();
        sts[i] = shards_[i]->scan(r.next_start, batch, &r.rows);
        if (!sts[i].isOk())
            return;
        if (r.rows.size() < batch)
            r.exhausted = true;
        if (!r.rows.empty()) {
            const uint64_t last = r.rows.back().first;
            if (last == UINT64_MAX)
                r.exhausted = true;
            else
                r.next_start = last + 1;
        }
    };
    const size_t first_batch = std::min(
        count, count / n + std::max<size_t>(4, count / (8 * n)));
    for (size_t i = 0; i < n; i++)
        runs[i].next_start = start_key;
    pool_->parallelFor(n, [&](size_t i) { fetch(i, first_batch); });
    for (const Status &st : sts)
        if (!st.isOk())
            return st;

    // (key, shard) min-heap. Keys are unique across shards (a key
    // lives in exactly one), so ties cannot occur.
    using HeapItem = std::pair<uint64_t, size_t>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    for (size_t i = 0; i < n; i++)
        if (!runs[i].rows.empty())
            heap.emplace(runs[i].rows[0].first, i);
    out->reserve(std::min(count, static_cast<size_t>(64)));
    while (!heap.empty() && out->size() < count) {
        const auto [key, i] = heap.top();
        heap.pop();
        Run &r = runs[i];
        out->push_back(std::move(r.rows[r.cursor]));
        ++r.cursor;
        if (r.cursor == r.rows.size() && !r.exhausted &&
            out->size() < count) {
            // Run drained mid-merge: pull the next batch from this
            // shard before deciding the next global row.
            fetch(i, std::min(count - out->size(), first_batch));
            if (!sts[i].isOk())
                return sts[i];
        }
        if (r.cursor < r.rows.size())
            heap.emplace(r.rows[r.cursor].first, i);
    }
    return Status::ok();
}

Status
ShardRouter::multiGet(const std::vector<uint64_t> &keys,
                      std::vector<std::optional<std::string>> *out)
{
    if (shards_.size() == 1) {
        reg_shard_ops_[0]->inc();
        return shards_[0]->multiGet(keys, out);
    }
    out->assign(keys.size(), std::nullopt);
    if (keys.empty())
        return Status::ok();

    // Bucket keys per shard, remembering each key's caller position so
    // the fan-out can scatter results straight back into caller order.
    const size_t n = shards_.size();
    std::vector<std::vector<uint64_t>> shard_keys(n);
    std::vector<std::vector<size_t>> shard_pos(n);
    for (size_t i = 0; i < keys.size(); i++) {
        const size_t s = shardOf(keys[i], n);
        shard_keys[s].push_back(keys[i]);
        shard_pos[s].push_back(i);
    }
    std::vector<size_t> involved;
    for (size_t i = 0; i < n; i++)
        if (!shard_keys[i].empty())
            involved.push_back(i);

    std::vector<Status> sts(involved.size());
    // Scatter targets are disjoint; the mutex exists for TSan. The
    // site is interned once — the lock itself is function-local.
    static prof::LockSite *scatter_site =
        prof::internLockSite("shard.scatter");
    prof::TimedMutex out_mu{scatter_site};
    pool_->parallelFor(involved.size(), [&](size_t idx) {
        const size_t s = involved[idx];
        reg_shard_ops_[s]->inc();
        std::vector<std::optional<std::string>> vals;
        sts[idx] = shards_[s]->multiGet(shard_keys[s], &vals);
        if (!sts[idx].isOk())
            return;
        std::lock_guard<prof::TimedMutex> lock(out_mu);
        for (size_t k = 0; k < vals.size(); k++)
            (*out)[shard_pos[s][k]] = std::move(vals[k]);
    });
    for (const Status &st : sts)
        if (!st.isOk())
            return st;
    return Status::ok();
}

OpFuture
ShardRouter::asyncPut(uint64_t key, std::string_view value,
                      AsyncCallback cb)
{
    const size_t s =
        shards_.size() == 1 ? 0 : shardOf(key, shards_.size());
    reg_shard_ops_[s]->inc();
    return shards_[s]->asyncPut(key, value, std::move(cb));
}

OpFuture
ShardRouter::asyncGet(uint64_t key, AsyncCallback cb)
{
    const size_t s =
        shards_.size() == 1 ? 0 : shardOf(key, shards_.size());
    reg_shard_ops_[s]->inc();
    return shards_[s]->asyncGet(key, std::move(cb));
}

OpFuture
ShardRouter::asyncDel(uint64_t key, AsyncCallback cb)
{
    const size_t s =
        shards_.size() == 1 ? 0 : shardOf(key, shards_.size());
    reg_shard_ops_[s]->inc();
    return shards_[s]->asyncDel(key, std::move(cb));
}

OpFuture
ShardRouter::asyncScan(uint64_t start_key, size_t count, AsyncCallback cb)
{
    if (shards_.size() == 1)
        return shards_[0]->asyncScan(start_key, count, std::move(cb));
    // Cross-shard: delegate to shard 0's async machinery (which tracks
    // the in-flight count the destructor drains) but run the *merged*
    // scan. Shard 0's asyncScan would only see its own keys, so build
    // the task here.
    auto st = std::make_shared<AsyncOpState>();
    st->callback = std::move(cb);
    OpFuture f(st);
    // The merged scan's parallelFor is caller-helping, so running it
    // inside one pool task cannot deadlock even with a single worker.
    async_scan_inflight_.fetch_add(1, std::memory_order_acq_rel);
    pool_->submit([this, st, start_key, count] {
        st->complete(scan(start_key, count, &st->rows));
        async_scan_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    });
    return f;
}

uint64_t
ShardRouter::asyncInflight() const
{
    uint64_t total =
        async_scan_inflight_.load(std::memory_order_acquire);
    for (const auto &s : shards_)
        total += s->asyncInflight();
    return total;
}

void
ShardRouter::flushAll()
{
    for (auto &s : shards_)
        s->flushAll();
}

void
ShardRouter::forceGc()
{
    for (auto &s : shards_)
        s->forceGc();
}

size_t
ShardRouter::size() const
{
    size_t total = 0;
    for (const auto &s : shards_)
        total += s->size();
    return total;
}

uint64_t
ShardRouter::ssdBytesWritten() const
{
    uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->ssdBytesWritten();
    return total;
}

uint64_t
ShardRouter::nvmIndexBytes() const
{
    uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->nvmIndexBytes();
    return total;
}

PrismDbStats &
ShardRouter::opStats()
{
    uint64_t puts = 0, gets = 0, dels = 0, scans = 0, pwb_hits = 0,
             svc_hits = 0, vs_reads = 0, reclaim_passes = 0,
             reclaimed_values = 0, skipped = 0, user_bytes = 0,
             stalls = 0;
    for (const auto &s : shards_) {
        auto &st = s->opStats();
        puts += st.puts.load(std::memory_order_relaxed);
        gets += st.gets.load(std::memory_order_relaxed);
        dels += st.dels.load(std::memory_order_relaxed);
        scans += st.scans.load(std::memory_order_relaxed);
        pwb_hits += st.pwb_hits.load(std::memory_order_relaxed);
        svc_hits += st.svc_hits.load(std::memory_order_relaxed);
        vs_reads += st.vs_reads.load(std::memory_order_relaxed);
        reclaim_passes +=
            st.reclaim_passes.load(std::memory_order_relaxed);
        reclaimed_values +=
            st.reclaimed_values.load(std::memory_order_relaxed);
        skipped +=
            st.reclaim_skipped_stale.load(std::memory_order_relaxed);
        user_bytes +=
            st.user_bytes_written.load(std::memory_order_relaxed);
        stalls += st.pwb_stalls.load(std::memory_order_relaxed);
    }
    agg_op_stats_.puts.store(puts, std::memory_order_relaxed);
    agg_op_stats_.gets.store(gets, std::memory_order_relaxed);
    agg_op_stats_.dels.store(dels, std::memory_order_relaxed);
    agg_op_stats_.scans.store(scans, std::memory_order_relaxed);
    agg_op_stats_.pwb_hits.store(pwb_hits, std::memory_order_relaxed);
    agg_op_stats_.svc_hits.store(svc_hits, std::memory_order_relaxed);
    agg_op_stats_.vs_reads.store(vs_reads, std::memory_order_relaxed);
    agg_op_stats_.reclaim_passes.store(reclaim_passes,
                                       std::memory_order_relaxed);
    agg_op_stats_.reclaimed_values.store(reclaimed_values,
                                         std::memory_order_relaxed);
    agg_op_stats_.reclaim_skipped_stale.store(skipped,
                                              std::memory_order_relaxed);
    agg_op_stats_.user_bytes_written.store(user_bytes,
                                           std::memory_order_relaxed);
    agg_op_stats_.pwb_stalls.store(stalls, std::memory_order_relaxed);
    return agg_op_stats_;
}

SvcStats &
ShardRouter::svcStats()
{
    uint64_t hits = 0, misses = 0, admissions = 0, evictions = 0,
             reorgs = 0, reorged = 0;
    for (const auto &s : shards_) {
        auto &st = s->svcStats();
        hits += st.hits.load(std::memory_order_relaxed);
        misses += st.misses.load(std::memory_order_relaxed);
        admissions += st.admissions.load(std::memory_order_relaxed);
        evictions += st.evictions.load(std::memory_order_relaxed);
        reorgs += st.scan_reorgs.load(std::memory_order_relaxed);
        reorged += st.reorged_values.load(std::memory_order_relaxed);
    }
    agg_svc_stats_.hits.store(hits, std::memory_order_relaxed);
    agg_svc_stats_.misses.store(misses, std::memory_order_relaxed);
    agg_svc_stats_.admissions.store(admissions,
                                    std::memory_order_relaxed);
    agg_svc_stats_.evictions.store(evictions, std::memory_order_relaxed);
    agg_svc_stats_.scan_reorgs.store(reorgs, std::memory_order_relaxed);
    agg_svc_stats_.reorged_values.store(reorged,
                                        std::memory_order_relaxed);
    return agg_svc_stats_;
}

size_t
ShardRouter::valueStorageCount() const
{
    size_t total = 0;
    for (const auto &s : shards_)
        total += s->valueStorageCount();
    return total;
}

ValueStorage &
ShardRouter::valueStorage(size_t global_idx)
{
    for (auto &s : shards_) {
        if (global_idx < s->valueStorageCount())
            return s->valueStorage(global_idx);
        global_idx -= s->valueStorageCount();
    }
    fatal("valueStorage index %zu out of range", global_idx);
    __builtin_unreachable();
}

}  // namespace prism::core
