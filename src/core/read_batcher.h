/**
 * @file
 * Opportunistic thread combining for Value Storage reads (§5.3, Fig. 5).
 *
 * Threads that miss both the SVC and the PWB must read the SSD. Each
 * such thread enqueues itself on a Thread Combining Queue (TCQ) with an
 * atomic swap on the tail, MCS-style. The thread that finds the queue
 * empty becomes the *leader*: it walks the queue, coalesces up to
 * queue-depth requests (its own plus the followers'), submits them as
 * one io_uring batch, and everyone waits for their individual
 * completion, which the Value Storage completion thread delivers.
 *
 * The effect is the dynamic batch sizing the paper wants: many
 * concurrent readers form large batches (bandwidth), a lone reader
 * submits immediately (latency).
 *
 * The timeout-based alternative ("TA" in Fig. 11) and a no-batching mode
 * are provided for the ablation benchmarks.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/options.h"
#include "io/io_backend.h"

namespace prism::core {

/**
 * Per-request completion flag. The device completion path signals it via
 * the request's user_data. Values: 0 = pending, 1 = completed,
 * 2 = promoted to leader (TC mode internal), 3 = completed with an I/O
 * error (no data transferred; see common/fault.h).
 */
struct ReadWaiter {
    static constexpr uint32_t kOk = 1;
    static constexpr uint32_t kPromoted = 2;
    static constexpr uint32_t kIoError = 3;

    std::atomic<uint32_t> sig{0};

    void
    signal(uint32_t v)
    {
        sig.store(v, std::memory_order_release);
        sig.notify_all();
    }

    uint32_t
    waitNonzero()
    {
        uint32_t v;
        while ((v = sig.load(std::memory_order_acquire)) == 0)
            sig.wait(0, std::memory_order_acquire);
        return v;
    }
};

/** Batches blocking reads to one SSD according to ReadBatchMode. */
class ReadBatcher {
  public:
    /**
     * @param device     the Value Storage's device (any io::IoBackend).
     * @param mode       combining scheme.
     * @param queue_depth coalescing limit (paper: 64).
     * @param timeout_us TA mode batching window.
     */
    ReadBatcher(io::IoBackend &device, ReadBatchMode mode, int queue_depth,
                uint64_t timeout_us);
    ~ReadBatcher();

    ReadBatcher(const ReadBatcher &) = delete;
    ReadBatcher &operator=(const ReadBatcher &) = delete;

    /**
     * Blocking read of [offset, offset+len); may be coalesced with
     * concurrent readers into a single device submission.
     */
    Status read(uint64_t offset, void *buf, uint32_t len);

    /**
     * Deliver a device completion whose user_data was produced by this
     * module (called from the Value Storage completion thread). @p ok
     * is the completion's status; an error wakes the waiter with
     * ReadWaiter::kIoError so the read returns Status::ioError.
     */
    static void
    completeFromUserData(uint64_t user_data, bool ok = true)
    {
        reinterpret_cast<ReadWaiter *>(user_data)->signal(
            ok ? ReadWaiter::kOk : ReadWaiter::kIoError);
    }

    /** Total batches submitted / requests coalesced (for Fig. 11). */
    uint64_t batchesSubmitted() const {
        return batches_.load(std::memory_order_relaxed);
    }
    uint64_t requestsCoalesced() const {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    struct Node {
        io::IoRequest req;
        ReadWaiter waiter;
        std::atomic<Node *> next{nullptr};
    };

    Status readThreadCombining(Node &node);
    Status readTimeoutAsync(Node &node);
    Status readUnbatched(Node &node);

    /** Leader role: coalesce from @p self onward, submit, wait own. */
    Status leadAndSubmit(Node &self);

    void taLoop();

    io::IoBackend &device_;
    ReadBatchMode mode_;
    int queue_depth_;
    uint64_t timeout_us_;

    // TC state.
    std::atomic<Node *> tail_{nullptr};

    // TA state.
    std::mutex ta_mu_;
    std::condition_variable ta_cv_;
    std::vector<Node *> ta_pending_;
    std::atomic<bool> stop_{false};
    std::thread ta_thread_;

    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> requests_{0};

    // Shared-by-name process-wide metrics; requests/batches is the TCQ
    // combine ratio (Fig. 11).
    stats::Counter *reg_batches_;
    stats::Counter *reg_requests_;
};

}  // namespace prism::core
