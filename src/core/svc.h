/**
 * @file
 * Scan-aware Value Cache (SVC, §4.4, Fig. 3).
 *
 * A DRAM cache of read-hot values with three defining properties from
 * the paper:
 *
 *  1. *No separate cache index* — a cached value is reached directly from
 *     the key index through the HSIT's SVC pointer.
 *  2. *Off-critical-path management* — application threads only publish
 *     (CAS the HSIT SVC pointer) and set a reference flag; a background
 *     thread owns the 2Q LRU lists (active/inactive), promotion,
 *     demotion and eviction, with epoch-based reclamation protecting
 *     readers of evicted entries.
 *  3. *Scan awareness* — values returned by one scan are chained in a
 *     doubly-linked list; when one of them is evicted, the whole chain
 *     is sorted by key and rewritten into a single Value Storage chunk,
 *     restoring spatial locality for future scans.
 *
 * Staleness safety: an SVC entry remembers the Value Storage address its
 * payload was copied from (`vs_raw`). Readers accept the cached copy
 * only while the HSIT forward pointer still equals that address, so a
 * concurrent update can never serve a stale value even before the
 * updater's cleanup CAS lands.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/epoch.h"
#include "common/prof.h"
#include "common/stats.h"
#include "core/addr.h"
#include "core/hsit.h"
#include "core/options.h"
#include "core/value_storage.h"

namespace prism::core {

/** Cache usage counters. */
struct SvcStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> admissions{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> scan_reorgs{0};
    std::atomic<uint64_t> reorged_values{0};
};

/** The Scan-aware Value Cache. */
class Svc {
  public:
    /**
     * @param hsit    the indirection table (SVC pointers live there).
     * @param epochs  epoch domain shared with the rest of the store.
     * @param targets Value Storages for scan-range rewrites.
     * @param opts    capacity and feature flags.
     */
    Svc(Hsit &hsit, EpochManager &epochs,
        std::vector<ValueStorage *> targets, const PrismOptions &opts);
    ~Svc();

    Svc(const Svc &) = delete;
    Svc &operator=(const Svc &) = delete;

    /**
     * Try to serve @p hsit_idx from the cache. Valid only while the
     * caller holds an epoch guard.
     *
     * @param primary_raw the entry's current (clean) forward pointer;
     *        the cached copy is used only if it was taken from exactly
     *        this location.
     * @return true and fills @p out on a (validated) hit.
     */
    bool lookup(uint64_t hsit_idx, uint64_t primary_raw, std::string *out);

    /**
     * Admit a value just read from Value Storage (caller holds an epoch
     * guard). Failure to admit (lost race, cache disabled) is silent.
     */
    void admit(uint64_t hsit_idx, uint64_t key, ValueAddr vs_addr,
               const uint8_t *payload, uint32_t size);

    /**
     * Drop the cached copy for an updated/deleted entry (cleanup only;
     * readers already validate against the forward pointer).
     */
    void invalidate(uint64_t hsit_idx);

    /**
     * Record that one scan returned these entries; the background thread
     * chains them so eviction can reorganise the whole range (§4.4).
     */
    void noteScan(std::vector<uint64_t> hsit_indices);

    /**
     * Re-bind a cached entry after its on-SSD record moved (GC): keeps
     * the cache warm across relocations.
     */
    void rebind(uint64_t hsit_idx, uint64_t old_raw, uint64_t new_raw);

    /**
     * True while the cache sits comfortably under capacity (< 7/8
     * used). Optional producers — notably the reclaimer's write-back
     * admission — consult this so they only warm a cache that has room
     * to keep the copies; a capacity-bound cache would just churn its
     * eviction lists for values the 2Q policy is about to drop.
     */
    bool hasHeadroom() const {
        return enabled_ && used_bytes_.load(std::memory_order_relaxed) <
                               capacity_ - capacity_ / 8;
    }

    uint64_t usedBytes() const {
        return used_bytes_.load(std::memory_order_relaxed);
    }
    uint64_t capacityBytes() const { return capacity_; }
    SvcStats &stats() { return stats_; }

    /** Block until the event queue has been drained once (tests). */
    void drainForTest();

  private:
    struct SvcEntry {
        uint64_t key;
        uint64_t hsit_idx;
        std::atomic<uint64_t> vs_raw;    ///< source VS address (validation)
        uint32_t size;
        std::atomic<bool> referenced{false};  ///< set on hit; 2Q promotion

        // Fields below are owned by the background thread.
        bool in_lru = false;
        bool in_active = false;
        bool evicted = false;
        SvcEntry *prev = nullptr;
        SvcEntry *next = nullptr;
        SvcEntry *scan_prev = nullptr;
        SvcEntry *scan_next = nullptr;

        uint8_t *data() { return reinterpret_cast<uint8_t *>(this + 1); }
        const uint8_t *data() const {
            return reinterpret_cast<const uint8_t *>(this + 1);
        }
        uint64_t footprint() const { return sizeof(SvcEntry) + size; }
    };

    /** Intrusive doubly-linked list head (background thread only). */
    struct Lru {
        SvcEntry *head = nullptr;  ///< most recent
        SvcEntry *tail = nullptr;  ///< least recent
        size_t count = 0;

        void pushFront(SvcEntry *e);
        void unlink(SvcEntry *e);
        SvcEntry *popBack();
    };

    enum class EvType { kAdmit, kRemove, kScanChain };
    struct Event {
        EvType type;
        SvcEntry *entry = nullptr;
        std::vector<uint64_t> chain;
    };

    void managerLoop();
    void processEvent(Event &ev);
    void balance();
    void evictOne();
    /** Sort + rewrite the scan chain containing @p e (Fig. 3 steps 5-6). */
    void reorganizeChain(SvcEntry *e);
    void unlinkScan(SvcEntry *e);
    void retireEntry(SvcEntry *e);

    Hsit &hsit_;
    EpochManager &epochs_;
    std::vector<ValueStorage *> targets_;
    bool enabled_;
    bool scan_reorg_;
    uint64_t capacity_;

    std::atomic<uint64_t> used_bytes_{0};

    prof::TimedMutex ev_mu_{"svc.events"};
    // _any: waits on the profiled wrapper, not a raw std::mutex.
    std::condition_variable_any ev_cv_;
    std::deque<Event> events_;
    bool poke_ = false;  // drainForTest: force an empty round
    std::atomic<uint64_t> drained_generation_{0};

    Lru active_;
    Lru inactive_;

    // Entry-lifecycle bookkeeping (background thread only). An entry is
    // freed only after its Admit event has been processed, which closes
    // the race where a descheduled admitter enqueues an event for an
    // entry that was detached, retired and reclaimed in the meantime.
    std::unordered_set<SvcEntry *> admitted_;
    std::unordered_set<SvcEntry *> pending_remove_;

    SvcStats stats_;

    // Shared-by-name process-wide metrics (see common/stats.h).
    stats::Counter *reg_hits_;
    stats::Counter *reg_misses_;
    stats::Counter *reg_admissions_;
    stats::Counter *reg_evictions_;
    stats::Counter *reg_scan_reorgs_;
    stats::Counter *reg_reorged_values_;

    std::atomic<bool> stop_{false};
    std::thread manager_;
};

}  // namespace prism::core
