/**
 * @file
 * Value Storage (§4.2, §5.1, §5.2): a log-structured chunk store on one
 * SSD.
 *
 * The device space is divided into fixed 512 KB chunks. Reclaimed PWB
 * values and GC survivors are packed into chunk-sized buffers and
 * written with single large sequential I/Os — the SSD-friendly pattern
 * the paper takes from SFS/log-structured stores. Each value carries its
 * per-value metadata (backward pointer + size) so crash recovery and GC
 * never need the key index.
 *
 * A DRAM validity bitmap (one bit per 64-byte unit; a record's first
 * unit carries its liveness) answers "is this value garbage?" in O(1).
 * It is rebuilt from the HSIT at recovery (§5.5), so it never needs to
 * be persisted.
 *
 * Garbage collection is greedy: victims are the sealed chunks with the
 * fewest live bytes; survivors are rewritten within the same Value
 * Storage and the HSIT is re-pointed with durable CASes. Freed chunks
 * are recycled only after an epoch grace period, so in-flight readers
 * holding old addresses stay safe.
 *
 * One ValueStorage exists per SSD; each owns a completion thread that
 * reaps the device CQ and wakes read/write waiters (§5.1: "one Value
 * Storage per SSD ... its own thread for asynchronous IO").
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/prof.h"
#include "common/spinlock.h"
#include "core/addr.h"
#include "core/hsit.h"
#include "core/options.h"
#include "core/read_batcher.h"
#include "io/io_backend.h"

namespace prism::core {

/** Completion handle for an asynchronous chunk write. */
struct WriteTicket {
    ReadWaiter waiter;

    void wait() { waiter.waitNonzero(); }

    /** Non-blocking completion poll (pipelined chunk writes). */
    bool done() const {
        return waiter.sig.load(std::memory_order_acquire) != 0;
    }

    /** True when the completed write errored (injected or dropout). */
    bool failed() const {
        return waiter.sig.load(std::memory_order_acquire) ==
               ReadWaiter::kIoError;
    }

    /** Re-arm for a retry submission. */
    void reset() { waiter.sig.store(0, std::memory_order_relaxed); }
};

/** Log-structured chunk store on a single SSD. */
class ValueStorage {
  public:
    enum class ChunkState : uint32_t {
        kFree = 0,
        kOpen = 1,
        kSealed = 2,
        kFreeing = 3,  ///< retired, waiting out the epoch grace period
    };

    ValueStorage(uint32_t ssd_id, std::shared_ptr<io::IoBackend> device,
                 const PrismOptions &opts, EpochManager &epochs);
    ~ValueStorage();

    ValueStorage(const ValueStorage &) = delete;
    ValueStorage &operator=(const ValueStorage &) = delete;

    uint32_t ssdId() const { return ssd_id_; }
    io::IoBackend &device() { return *device_; }
    ReadBatcher &reader() { return *reader_; }
    uint64_t chunkBytes() const { return chunk_bytes_; }
    size_t totalChunks() const { return metas_.size(); }
    size_t freeChunks() const;

    /** @name Chunk lifecycle */
    ///@{
    /**
     * Allocate a free chunk (FREE -> OPEN). This is the only critical
     * section of the write path (§5.2); after it, writers proceed
     * independently on their private chunks.
     * @return chunk index, or -1 when no chunk is free (run GC).
     */
    int64_t allocChunk();

    /** Submit an asynchronous write of @p len bytes into @p chunk. */
    Status submitChunkWrite(int64_t chunk, const uint8_t *buf, uint32_t len,
                            WriteTicket *ticket);

    /** OPEN -> SEALED once its write has been submitted. */
    void sealChunk(int64_t chunk, uint32_t used_bytes);

    /**
     * Mark a sealed chunk GC-eligible. Callers settle a chunk only after
     * setting its validity bits; until then GC must not judge it empty
     * (it would recycle a chunk the caller is about to publish into).
     */
    void settleChunk(int64_t chunk);

    /** Recycle a chunk after the epoch grace period (SEALED -> FREE). */
    void freeChunkDeferred(int64_t chunk);
    ///@}

    /** @name Validity bitmap (device-offset addressed) */
    ///@{
    void setValid(uint64_t dev_offset, uint64_t record_bytes);

    /** Idempotent: clearing an already-dead record is a no-op. */
    void clearValid(uint64_t dev_offset, uint64_t record_bytes);

    bool isValid(uint64_t dev_offset) const;

    uint32_t liveUnits(int64_t chunk) const {
        return metas_[static_cast<size_t>(chunk)].live_units.load(
            std::memory_order_relaxed);
    }
    ///@}

    /** Read a full record (header + payload) through the read batcher. */
    Status readRecord(ValueAddr addr, std::vector<uint8_t> &buf);

    /** @name Garbage collection (§5.2) */
    ///@{
    bool needsGc() const;

    /**
     * One greedy GC pass: pick the sealed chunks with the fewest live
     * units, rewrite their survivors into fresh chunks of this same
     * Value Storage, re-point the HSIT, recycle the victims.
     * @return number of chunks reclaimed.
     */
    size_t runGcPass(Hsit &hsit);

    uint64_t gcPasses() const {
        return gc_passes_.load(std::memory_order_relaxed);
    }
    ///@}

    /** @name Recovery (§5.5) */
    ///@{
    /** Forget all volatile chunk state (then mark live values). */
    void resetForRecovery();

    /** Mark one HSIT-reachable record live during recovery. */
    void markLiveAtRecovery(uint64_t dev_offset, uint64_t record_bytes);

    /** Rebuild the free-chunk list from the recovered states. */
    void finalizeRecovery();
    ///@}

  private:
    struct ChunkMeta {
        std::atomic<uint32_t> state{
            static_cast<uint32_t>(ChunkState::kFree)};
        std::atomic<bool> settled{false};  ///< bits populated; GC may act
        std::atomic<uint32_t> used_bytes{0};
        std::atomic<uint32_t> live_units{0};
        std::unique_ptr<std::atomic<uint64_t>[]> bitmap;
    };

    void completionLoop();

    uint64_t unitsPerChunk() const {
        return chunk_bytes_ / ValueAddr::kSizeUnit;
    }

    uint32_t ssd_id_;
    std::shared_ptr<io::IoBackend> device_;
    uint64_t chunk_bytes_;
    double gc_watermark_;
    int gc_victims_per_pass_;
    int numa_node_;  ///< completion-thread placement; -1 = unpinned
    EpochManager &epochs_;

    std::vector<ChunkMeta> metas_;
    prof::TimedTicketLock free_mu_{"vs.chunk_alloc"};
    std::vector<int64_t> free_chunks_;
    std::mutex gc_mu_;  ///< serializes GC passes on this Value Storage

    std::unique_ptr<ReadBatcher> reader_;

    std::atomic<bool> stop_{false};
    std::thread completion_thread_;
    std::atomic<uint64_t> gc_passes_{0};

    // Shared-by-name process-wide metrics (see common/stats.h).
    stats::Counter *reg_gc_passes_;
    stats::Counter *reg_gc_moved_bytes_;
    stats::Counter *reg_gc_reclaimed_chunks_;
    stats::LatencyStat *reg_gc_pass_ns_;
    stats::Counter *reg_retries_;   ///< victim reads / survivor rewrites
    stats::Counter *reg_degraded_;  ///< passes skipped on a sick device
};

}  // namespace prism::core
