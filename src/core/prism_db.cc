#include "core/prism_db.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/clock.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/logging.h"
#include "common/numa.h"
#include "common/obs_server.h"
#include "common/prof.h"
#include "common/trace.h"
#include "core/chunk_writer.h"

namespace prism::core {

using pmem::kNullOff;
using pmem::POff;

namespace {

/**
 * Wait out a raw batched-read completion; an errored completion
 * (injected fault) is retried by resubmitting the same request with
 * capped backoff. Reads are idempotent, so a retry is always safe.
 */
Status
waitReadRetrying(io::IoBackend &dev, const io::IoRequest &req,
                 ReadWaiter &waiter, stats::Counter *retries)
{
    constexpr int kReadRetries = 3;
    for (int attempt = 0;; attempt++) {
        if (waiter.waitNonzero() == ReadWaiter::kOk)
            return Status::ok();
        if (attempt >= kReadRetries)
            return Status::ioError("batched read failed after retries");
        retries->inc();
        delayFor(20'000ull << attempt);
        waiter.sig.store(0, std::memory_order_relaxed);
        const Status st = dev.submit(req);
        if (!st.isOk())
            return st;
    }
}

/** Async VS read: transient-error resubmits / mid-flight-move re-lookups. */
constexpr int kAsyncIoRetries = 3;
constexpr int kAsyncLookupRetries = 8;

}  // namespace

PrismDb::PrismDb(const PrismOptions &opts,
                 std::shared_ptr<pmem::PmemRegion> region,
                 std::vector<std::shared_ptr<io::IoBackend>> devices,
                 bool format)
    : PrismDb(opts, std::move(region), std::move(devices), format,
              nullptr)
{
}

PrismDb::PrismDb(const PrismOptions &opts,
                 std::shared_ptr<pmem::PmemRegion> region,
                 std::vector<std::shared_ptr<io::IoBackend>> devices,
                 bool format, std::shared_ptr<BgPool> shared_pool)
    : opts_(opts), region_(std::move(region))
{
    PRISM_CHECK(!devices.empty());
    PRISM_CHECK(devices.size() <= ValueAddr::kSsdMask + 1);
    alloc_ = std::make_unique<pmem::PmemAllocator>(*region_);

    auto &reg = stats::StatsRegistry::global();
    reg_.puts = &reg.counter("prism.puts", "ops");
    reg_.gets = &reg.counter("prism.gets", "ops");
    reg_.dels = &reg.counter("prism.dels", "ops");
    reg_.scans = &reg.counter("prism.scans", "ops");
    reg_.user_bytes_written = &reg.counter("prism.user_bytes_written",
                                           "bytes");
    reg_.pwb_hits = &reg.counter("prism.get.pwb_hits", "ops");
    reg_.svc_hits = &reg.counter("prism.get.svc_hits", "ops");
    reg_.vs_reads = &reg.counter("prism.get.vs_reads", "ops");
    reg_.pwb_stalls = &reg.counter("prism.pwb.stalls", "ops");
    reg_.reclaim_passes = &reg.counter("prism.pwb.reclaim_passes", "ops");
    reg_.reclaimed_values = &reg.counter("prism.pwb.reclaimed_values",
                                         "ops");
    reg_.reclaim_skipped_stale =
        &reg.counter("prism.pwb.reclaim_skipped_stale", "ops");
    reg_.hsit_cas_retries = &reg.counter("prism.hsit.cas_retries", "ops");
    reg_.reclaim_dispatches =
        &reg.counter("prism.pwb.reclaim_dispatches", "ops");
    reg_.gc_dispatches = &reg.counter("prism.vs.gc_dispatches", "ops");
    reg_.reclaim_deferred_values =
        &reg.counter("prism.pwb.reclaim_deferred_values", "ops");
    reg_.pwb_requeued_values =
        &reg.counter("prism.pwb.requeued_values", "ops");
    reg_.vs_read_retries = &reg.counter("prism.vs.retries", "ops");
    reg_.pwb_stall_ns = &reg.histogram("prism.pwb.stall_ns", "ns");

    // Fault injection (docs/FAULTS.md): arm the environment schedule and
    // any per-instance schedule from the options. The registry is
    // process-wide and both are no-ops when empty, so the disabled path
    // stays a single relaxed load at every fault site.
    fault::FaultRegistry::global().armFromEnv();
    if (!opts_.fault_spec.empty()) {
        std::string err;
        if (!fault::FaultRegistry::global().armSchedule(opts_.fault_spec,
                                                        &err))
            fatal("PrismOptions::fault_spec: %s", err.c_str());
    }

    // Tracer wiring: the tracer is process-wide (like the stats
    // registry), so options only ever *raise* its state — a second
    // store opened with defaults must not silently disable a trace the
    // CLI or another instance turned on.
    auto &tracer = trace::TraceRegistry::global();
    tracer.setRingCapacity(opts_.trace_ring_events);
    tracer.setSlowOpKeep(opts_.trace_slow_op_keep);
    if (opts_.trace_slow_op_us > 0)
        tracer.setSlowOpThresholdUs(opts_.trace_slow_op_us);
    if (opts_.trace_enabled)
        tracer.setEnabled(true);

    for (size_t i = 0; i < devices.size(); i++) {
        value_storages_.push_back(std::make_unique<ValueStorage>(
            static_cast<uint32_t>(i), devices[i], opts_, epochs_));
        vs_ptrs_.push_back(value_storages_.back().get());
    }

    if (format) {
        master_off_ = alloc_->alloc(sizeof(MasterRoot));
        PRISM_CHECK(master_off_ != kNullOff);
        master_ = region_->as<MasterRoot>(master_off_);
        std::memset(static_cast<void *>(master_), 0, sizeof(MasterRoot));

        index_ = index::PacTree::create(*region_, *alloc_);
        hsit_ = Hsit::create(*region_, *alloc_, opts_.hsit_capacity);

        master_->tree_root = index_->rootOff();
        master_->hsit_root = hsit_->rootOff();
        master_->magic = kMagic;
        region_->persist(master_, sizeof(MasterRoot));
        region_->setRoot(master_off_);
    } else {
        recoverState();
    }

    svc_ = std::make_unique<Svc>(*hsit_, epochs_, vs_ptrs_, opts_);

    if (shared_pool != nullptr) {
        // Shard-router mode: every shard shares one pool; each shard
        // gets its own round-robin source so one shard's GC burst
        // cannot starve another's reclaim (see core/bg_pool.h).
        bg_pool_ = std::move(shared_pool);
        owns_pool_ = false;
    } else {
        bg_pool_ = std::make_shared<BgPool>(opts_.bg_workers);
    }
    bg_source_ = bg_pool_->allocSource();
    gc_scheduled_.reset(new std::atomic<bool>[value_storages_.size()]);
    for (size_t i = 0; i < value_storages_.size(); i++)
        gc_scheduled_[i].store(false, std::memory_order_relaxed);
    reclaimer_ = std::thread([this] { reclaimerLoop(); });
    gc_thread_ = std::thread([this] { gcLoop(); });
    if (opts_.stats_dump_interval_ms > 0)
        stats_dumper_ = std::thread([this] { statsDumperLoop(); });

    // Telemetry wiring: the sampler is process-wide (like the tracer),
    // so options only ever raise its state. The occupancy probe is
    // registered unconditionally so manual sampling (prism_cli `top`,
    // tests) sees PWB/SVC fill even when the periodic sampler is off.
    auto &tel = telemetry::Telemetry::global();
    telemetry_probe_ = tel.addProbe([this] { publishOccupancy(); });
    if (opts_.telemetry_interval_ms > 0) {
        tel.setCapacity(opts_.telemetry_windows);
        telemetry_started_ = tel.start(opts_.telemetry_interval_ms);
    }

    // Profiler wiring mirrors telemetry: process-wide, options only
    // raise its state, and whoever flipped it on stops it at close.
    // 0 Hz (the default) keeps it entirely off — no timers, no rings.
    if (const int hz = prof::resolveHz(opts_.prof_hz); hz > 0)
        owns_prof_ = prof::Profiler::global().start(hz);

    // Crash black-box (common/obs_server.h): arm the process-wide
    // handlers when the environment asks for postmortems. Harnesses
    // that want them unconditionally (prism_torture) call
    // obs::installCrashHandlers directly.
    if (const char *pm = std::getenv("PRISM_POSTMORTEM_DIR");
        pm != nullptr && pm[0] != '\0')
        obs::installCrashHandlers(pm);

    // HTTP ops endpoint. Only a top-level store serves: a shard behind
    // a ShardRouter (shared pool) defers to the router's fleet-wide
    // server, which aggregates health across shards.
    const int obs_port = obs::resolveObsPort(opts_.obs_port);
    if (owns_pool_ && obs_port >= 0) {
        obs_ = std::make_unique<obs::ObsServer>();
        obs_->setMetricsPrepare([this] {
            publishOccupancy();
            trace::TraceRegistry::global().publishStats();
            prof::Profiler::global().publishStats();
        });
        obs_->setHealthProvider([this] { return healthReport(); });
        obs::ObsServer::Options oo;
        oo.port = obs_port;
        std::string err;
        if (!obs_->start(oo, &err)) {
            PRISM_LOG_WARN("obs.server", "ops endpoint disabled: %s",
                           err.c_str());
            obs_.reset();
        }
    }
}

PrismDb::~PrismDb()
{
    // Ops server first: its request handlers (health, occupancy
    // refresh) call back into this object.
    obs_.reset();
    // Wait out in-flight async operations first: their completion paths
    // (VS completion threads, bg-pool scan tasks) touch the SVC, HSIT,
    // epochs and the pool, all of which are torn down below.
    while (async_inflight_.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
    // Unhook telemetry before any state the probe reads is torn down;
    // stop the sampler only if this instance started it (the recorded
    // series stays readable/exportable after close).
    {
        auto &tel = telemetry::Telemetry::global();
        if (telemetry_started_)
            tel.stop();
        tel.removeProbe(telemetry_probe_);
    }
    if (owns_prof_)
        prof::Profiler::global().stop();
    stop_.store(true, std::memory_order_release);
    reclaim_cv_.notify_all();
    gc_cv_.notify_all();
    dumper_cv_.notify_all();
    reclaimer_.join();
    gc_thread_.join();
    if (stats_dumper_.joinable())
        stats_dumper_.join();
    // Dispatchers are gone; before tearing down any state the reclaim/
    // GC tasks reference, make sure none of ours remain. An owned pool
    // is drained and joined outright. A shared pool (shard router) must
    // keep serving the other shards, so instead wait out this
    // instance's own tasks — every dispatch is gated one-outstanding
    // (per-PWB reclaim slot, per-VS gc flag) and counted in
    // bg_inflight_, and the dispatchers above are joined, so the count
    // can only fall.
    if (owns_pool_) {
        bg_pool_->shutdown();
    } else {
        while (bg_inflight_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }
    // Destroy the SVC (its manager thread uses hsit_/value_storages_),
    // then run every deferred reclamation before members are torn down:
    // pending lambdas reference PWBs, Value Storages and the HSIT.
    svc_.reset();
    epochs_.drain();
}

void
PrismDb::recoverState()
{
    const uint64_t t0 = nowNs();
    const POff root = region_->root();
    PRISM_CHECK(root != kNullOff && "no store in this region");
    master_off_ = root;
    master_ = region_->as<MasterRoot>(master_off_);
    PRISM_CHECK(master_->magic == kMagic);

    // Step 1 (§5.5): re-attach NVM components; drop volatile leftovers
    // (SVC pointers, persisted-but-uncleared dirty bits).
    hsit_ = Hsit::attach(*region_, master_->hsit_root);
    hsit_->resetVolatile();
    index_ = index::PacTree::recover(*region_, *alloc_,
                                     master_->tree_root);

    // Step 2: walk the key index to find reachable HSIT entries, and
    // from them reconstruct each Value Storage's validity bitmaps.
    for (auto &vs : value_storages_)
        vs->resetForRecovery();
    // The walk is partitioned across worker threads (§5.5: recovery is
    // performed concurrently over partitioned key ranges). Byte-sized
    // flags (not vector<bool>) keep the marking race-free.
    std::vector<uint8_t> reachable_bytes(hsit_->capacity(), 0);
    const int recovery_threads = std::max(
        1u, std::thread::hardware_concurrency());
    std::mutex orphan_mu;
    std::vector<uint64_t> orphan_keys;
    index_->forEachParallel(recovery_threads, [&](uint64_t key,
                                                  uint64_t h) {
        if (h >= hsit_->capacity())
            return;
        const ValueAddr addr(
            hsit_->entry(h).primary.load(std::memory_order_relaxed));
        if (addr.isNull()) {
            // Interrupted put (index insert durable, value never
            // published) or interrupted delete (primary nulled, index
            // removal lost). Either way the key has no value: prune it
            // so size()/scan/get agree, and leave the HSIT entry
            // unreachable so the free-list rebuild reclaims it.
            std::lock_guard<std::mutex> lock(orphan_mu);
            orphan_keys.push_back(key);
            return;
        }
        reachable_bytes[h] = 1;
        if (addr.isVs() && addr.ssdId() < value_storages_.size()) {
            value_storages_[addr.ssdId()]->markLiveAtRecovery(
                addr.offset(), addr.recordBytes());
        }
    });
    for (const uint64_t key : orphan_keys)
        index_->remove(key);
    // Deterministic crash hook for the recovery-idempotence tests:
    // fires after the durable repairs above (orphan pruning), so a
    // crash image captured here reflects a half-finished recovery.
    (void)PRISM_FAULT_POINT("db.recover.midpoint");
    std::vector<bool> reachable(hsit_->capacity());
    for (uint64_t i = 0; i < hsit_->capacity(); i++)
        reachable[i] = reachable_bytes[i] != 0;
    hsit_->rebuildFreeList(reachable);
    for (auto &vs : value_storages_)
        vs->finalizeRecovery();

    // Step 3: re-attach the per-thread PWBs; slots are keyed by dense
    // thread id, which restarts from zero, so slot i is simply reused by
    // the i-th thread of the new process.
    for (int tid = 0; tid < ThreadId::kMaxThreads; tid++) {
        const POff pwb_root =
            master_->pwb_roots[tid].load(std::memory_order_relaxed);
        if (pwb_root == kNullOff)
            continue;
        auto pwb = Pwb::attach(*region_, pwb_root);
        pwbs_[tid].store(pwb.get(), std::memory_order_release);
        pwb_owner_.push_back(std::move(pwb));
    }
    recovery_ns_ = nowNs() - t0;
}

Pwb *
PrismDb::pwbForThisThread()
{
    const int tid = ThreadId::self();
    Pwb *p = pwbs_[tid].load(std::memory_order_acquire);
    if (p != nullptr)
        return p;
    std::lock_guard<std::mutex> lock(pwb_mu_);
    p = pwbs_[tid].load(std::memory_order_acquire);
    if (p != nullptr)
        return p;
    auto pwb = Pwb::create(*region_, *alloc_, opts_.pwb_size_bytes);
    PRISM_CHECK(pwb != nullptr);
    master_->pwb_roots[tid].store(pwb->rootOff(),
                                  std::memory_order_release);
    region_->persist(&master_->pwb_roots[tid], sizeof(POff));
    p = pwb.get();
    pwb_owner_.push_back(std::move(pwb));
    pwbs_[tid].store(p, std::memory_order_release);
    return p;
}

void
PrismDb::clearOldLocation(uint64_t hsit_idx, ValueAddr old_addr)
{
    if (old_addr.isVs() && old_addr.ssdId() < value_storages_.size()) {
        value_storages_[old_addr.ssdId()]->clearValid(
            old_addr.offset(), old_addr.recordBytes());
    }
    svc_->invalidate(hsit_idx);
}

Status
PrismDb::put(uint64_t key, std::string_view value)
{
    if (value.size() > opts_.max_value_bytes)
        return Status::invalidArgument("value too large");
    PRISM_TRACE_OP(op_scope, "prism.put");
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    stats_.user_bytes_written.fetch_add(value.size(),
                                        std::memory_order_relaxed);
    reg_.puts->inc();
    reg_.user_bytes_written->add(value.size());

    uint64_t stall_t0 = 0;
    while (true) {
        {
            EpochGuard guard(epochs_);

            // Resolve (or create) the key's HSIT entry.
            uint64_t h;
            const auto found = index_->lookup(key);
            if (found.has_value()) {
                h = *found;
            } else {
                const uint64_t nh = hsit_->allocEntry();
                if (nh == Hsit::kInvalidIndex)
                    return Status::outOfSpace("HSIT full");
                const auto res = index_->insertOrGet(key, nh);
                if (!res.inserted)
                    hsit_->freeEntryImmediate(nh);  // lost the insert race
                h = res.handle;
            }

            // Write the value (and its backward pointer) to this
            // thread's PWB — durable before it becomes visible.
            Pwb *pwb = pwbForThisThread();
            ValueAddr addr;
            {
                PRISM_TRACE_SPAN("pwb.append");
                addr = pwb->append(h, key, value.data(),
                                   static_cast<uint32_t>(value.size()));
            }
            if (!addr.isNull()) {
                // Publish: durable-linearizable CAS of the forward
                // pointer (§5.4). Retried on concurrent change.
                PRISM_TRACE_SPAN_VAR(cas_span, "hsit.cas_publish");
                uint64_t retries = 0;
                while (true) {
                    const ValueAddr old = hsit_->loadPrimary(h);
                    if (hsit_->casPrimaryDurable(h, old, addr)) {
                        pwb->markPublished();
                        clearOldLocation(h, old);
                        break;
                    }
                    retries++;
                    reg_.hsit_cas_retries->inc();
                }
                cas_span.arg(PRISM_TRACE_NID("retries"), retries);
                if (stall_t0 != 0) {
                    const uint64_t waited = nowNs() - stall_t0;
                    reg_.pwb_stall_ns->record(waited);
                    trace::spanAt(PRISM_TRACE_NID("pwb.stall"),
                                  stall_t0, waited);
                }
                // Edge-triggered reclaimer wakeup: the reclaimer sleeps
                // on a long safety-net poll and relies on this notify
                // when a ring crosses the watermark (one syscall per
                // crossing, not per append).
                if (pwb->utilization() >= opts_.pwb_reclaim_watermark &&
                    pwb->armReclaimHint())
                    reclaim_cv_.notify_all();
                return Status::ok();
            }
        }
        // PWB full. The epoch guard must be dropped while waiting: the
        // space we need is released by an epoch-deferred head advance.
        stats_.pwb_stalls.fetch_add(1, std::memory_order_relaxed);
        reg_.pwb_stalls->inc();
        if (stall_t0 == 0)
            stall_t0 = nowNs();
        // Wake the reclaimer immediately instead of waiting out its poll
        // interval, and hand this thread's PWB straight to the worker
        // pool (no-op if a pass for it is already queued or running).
        if (bg_pool_->workers() > 0)
            dispatchReclaim(pwbForThisThread());
        reclaim_cv_.notify_all();
        epochs_.tryAdvance();
        std::this_thread::yield();
    }
}

Status
PrismDb::readValue(uint64_t hsit_idx, uint64_t key, ValueAddr addr,
                   std::string *out, bool admit_to_svc)
{
    if (addr.isPwb()) {
        const auto *hdr =
            region_->as<ValueRecordHeader>(addr.offset());
        region_->chargeRead(addr.recordBytes());
        if (hdr->backward != hsit_idx)
            return Status::corruption("PWB record coupling mismatch");
        out->assign(reinterpret_cast<const char *>(hdr + 1),
                    hdr->value_size);
        stats_.pwb_hits.fetch_add(1, std::memory_order_relaxed);
        reg_.pwb_hits->inc();
        return Status::ok();
    }

    if (addr.ssdId() >= value_storages_.size())
        return Status::corruption("bad SSD id in HSIT entry");
    ValueStorage *vs = value_storages_[addr.ssdId()].get();
    std::vector<uint8_t> buf;
    Status st = vs->readRecord(addr, buf);
    if (!st.isOk())
        return st;
    const auto *hdr =
        reinterpret_cast<const ValueRecordHeader *>(buf.data());
    if (sizeof(ValueRecordHeader) + hdr->value_size > buf.size() ||
        hdr->backward != hsit_idx) {
        return Status::corruption("Value Storage record mismatch");
    }
    const auto *payload = buf.data() + sizeof(ValueRecordHeader);
    if (!recordCrcOk(*hdr, payload))
        return Status::corruption("Value Storage record checksum");
    out->assign(reinterpret_cast<const char *>(payload), hdr->value_size);
    stats_.vs_reads.fetch_add(1, std::memory_order_relaxed);
    reg_.vs_reads->inc();
    if (admit_to_svc)
        svc_->admit(hsit_idx, key, addr, payload, hdr->value_size);
    return Status::ok();
}

bool
PrismDb::getPrefix(uint64_t key, std::string *out, Status *st, uint64_t *h,
                   ValueAddr *addr)
{
    const auto found = index_->lookup(key);
    if (!found.has_value()) {
        *st = Status::notFound();
        return true;
    }
    *h = *found;
    *addr = hsit_->loadPrimary(*h);
    if (addr->isNull()) {
        *st = Status::notFound();
        return true;
    }
    if (svc_->lookup(*h, addr->raw(), out)) {
        stats_.svc_hits.fetch_add(1, std::memory_order_relaxed);
        reg_.svc_hits->inc();
        *st = Status::ok();
        return true;
    }
    return false;
}

Status
PrismDb::get(uint64_t key, std::string *value)
{
    // The blocking path is the degenerate async get: same prefix, but
    // an SSD miss is resolved through the TCQ (the caller is going to
    // block anyway, so it lends its thread to the read batcher).
    PRISM_TRACE_OP(op_scope, "prism.get");
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    reg_.gets->inc();
    EpochGuard guard(epochs_);
    Status st;
    uint64_t h;
    ValueAddr addr;
    if (getPrefix(key, value, &st, &h, &addr))
        return st;
    return readValue(h, key, addr, value, /*admit_to_svc=*/true);
}

Status
PrismDb::del(uint64_t key)
{
    PRISM_TRACE_OP(op_scope, "prism.del");
    stats_.dels.fetch_add(1, std::memory_order_relaxed);
    reg_.dels->inc();
    EpochGuard guard(epochs_);
    const auto h = index_->lookup(key);
    if (!h.has_value())
        return Status::notFound();
    if (!index_->remove(key))
        return Status::notFound();  // lost the race to another deleter
    svc_->invalidate(*h);
    PRISM_TRACE_SPAN_VAR(cas_span, "hsit.cas_publish");
    uint64_t retries = 0;
    while (true) {
        const ValueAddr old = hsit_->loadPrimary(*h);
        if (hsit_->casPrimaryDurable(*h, old, ValueAddr())) {
            if (old.isVs() && old.ssdId() < value_storages_.size()) {
                value_storages_[old.ssdId()]->clearValid(
                    old.offset(), old.recordBytes());
            }
            break;
        }
        retries++;
        reg_.hsit_cas_retries->inc();
    }
    cas_span.arg(PRISM_TRACE_NID("retries"), retries);
    hsit_->freeEntryDeferred(*h, epochs_);
    return Status::ok();
}

/**
 * Heap context of one in-flight tagged Value Storage read. Its address
 * (as an AsyncIoHandler, with bit 1 set) rides the device request's
 * user_data; the VS completion loop strips the tag and calls
 * onIoComplete, which forwards here. The context owns the read buffer,
 * so nothing on any caller's stack is referenced while the I/O flies.
 */
struct PrismDb::AsyncGetCtx final : AsyncIoHandler {
    PrismDb *db = nullptr;
    std::shared_ptr<AsyncOpState> st;
    uint64_t key = 0;
    uint64_t h = 0;
    ValueAddr addr;
    std::vector<uint8_t> buf;
    io::IoRequest io;
    int io_attempts = 0;      ///< transient-error resubmissions so far
    int lookup_attempts = 0;  ///< re-lookups after mid-flight moves

    void
    onIoComplete(const Status &s) override
    {
        db->onAsyncVsRead(this, s);
    }
};

void
PrismDb::completeAsync(const std::shared_ptr<AsyncOpState> &st, Status s)
{
    st->complete(std::move(s));
    // Release the in-flight slot only after the state is published: the
    // destructor's drain gates teardown on this counter.
    async_inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

OpFuture
PrismDb::asyncPut(uint64_t key, std::string_view value, AsyncCallback cb)
{
    auto st = std::make_shared<AsyncOpState>();
    st->callback = std::move(cb);
    async_inflight_.fetch_add(1, std::memory_order_acq_rel);
    // The put path is an NVM append + durable CAS (§4.3): there is no
    // device round-trip to overlap, so the future completes inline.
    completeAsync(st, put(key, value));
    return OpFuture(std::move(st));
}

OpFuture
PrismDb::asyncDel(uint64_t key, AsyncCallback cb)
{
    auto st = std::make_shared<AsyncOpState>();
    st->callback = std::move(cb);
    async_inflight_.fetch_add(1, std::memory_order_acq_rel);
    completeAsync(st, del(key));
    return OpFuture(std::move(st));
}

OpFuture
PrismDb::asyncGet(uint64_t key, AsyncCallback cb)
{
    // The op trace scope covers the synchronous prefix only; the flight
    // itself is visible as the device's submit/service spans.
    PRISM_TRACE_OP(op_scope, "prism.async_get");
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    reg_.gets->inc();
    auto st = std::make_shared<AsyncOpState>();
    st->callback = std::move(cb);
    async_inflight_.fetch_add(1, std::memory_order_acq_rel);
    OpFuture f(st);
    startAsyncGet(st, key, /*lookup_attempts=*/0);
    return f;
}

OpFuture
PrismDb::asyncScan(uint64_t start_key, size_t count, AsyncCallback cb)
{
    auto st = std::make_shared<AsyncOpState>();
    st->callback = std::move(cb);
    async_inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (bg_pool_->workers() == 0) {
        // No pool (serial ablation): degenerate to a blocking scan.
        completeAsync(st, scan(start_key, count, &st->rows));
        return OpFuture(std::move(st));
    }
    OpFuture f(st);
    bg_inflight_.fetch_add(1, std::memory_order_acq_rel);
    bg_pool_->submit(bg_source_, [this, st, start_key, count] {
        completeAsync(st, scan(start_key, count, &st->rows));
        bg_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    });
    return f;
}

void
PrismDb::startAsyncGet(const std::shared_ptr<AsyncOpState> &st,
                       uint64_t key, int lookup_attempts)
{
    Status s;
    bool done = false;
    {
        EpochGuard guard(epochs_);
        uint64_t h;
        ValueAddr addr;
        if (getPrefix(key, &st->value, &s, &h, &addr)) {
            done = true;
        } else if (addr.isPwb()) {
            // NVM-resident: nothing to overlap; serve it inline.
            s = readValue(h, key, addr, &st->value, /*admit_to_svc=*/true);
            done = true;
        } else if (addr.ssdId() >= value_storages_.size()) {
            s = Status::corruption("bad SSD id in HSIT entry");
            done = true;
        } else {
            // SSD-resident: tagged read with *no epoch held across the
            // flight* — pinning an epoch per in-flight op would stall
            // every reclaimer behind the slowest I/O. Safety comes from
            // the completion-side re-validation instead (onAsyncVsRead).
            auto *ctx = new AsyncGetCtx;
            ctx->db = this;
            ctx->st = st;
            ctx->key = key;
            ctx->h = h;
            ctx->addr = addr;
            ctx->lookup_attempts = lookup_attempts;
            ctx->buf.resize(addr.recordBytes());
            ctx->io.op = io::IoRequest::Op::kRead;
            ctx->io.offset = addr.offset();
            ctx->io.length = static_cast<uint32_t>(ctx->buf.size());
            ctx->io.buf = ctx->buf.data();
            ctx->io.user_data =
                reinterpret_cast<uint64_t>(
                    static_cast<AsyncIoHandler *>(ctx)) |
                AsyncIoHandler::kTag;
            s = value_storages_[addr.ssdId()]->device().submit(ctx->io);
            if (!s.isOk()) {
                delete ctx;
                done = true;
            }
        }
    }
    // Complete outside the epoch guard: the user callback must not run
    // inside a read-side critical section.
    if (done)
        completeAsync(st, s);
}

void
PrismDb::onAsyncVsRead(AsyncGetCtx *ctx, const Status &io_st)
{
    if (!io_st.isOk()) {
        // Transient I/O error (injected fault / device hiccup): reads
        // are idempotent, so resubmit with the sync path's backoff. The
        // wait briefly stalls this completion loop; errors are rare
        // enough that simplicity wins over a timer wheel.
        if (io_st.code() == StatusCode::kIoError &&
            ctx->io_attempts < kAsyncIoRetries) {
            ctx->io_attempts++;
            reg_.vs_read_retries->inc();
            delayFor(20'000ull << (ctx->io_attempts - 1));
            const Status sub =
                value_storages_[ctx->addr.ssdId()]->device().submit(
                    ctx->io);
            if (sub.isOk())
                return;  // the retry's completion re-enters here
            completeAsync(ctx->st, sub);
        } else {
            completeAsync(ctx->st, io_st);
        }
        delete ctx;
        return;
    }

    bool published = false;
    {
        // The flight held no epoch, so the record may have been
        // relocated (update, reclamation, GC) and its chunk recycled —
        // even recycled *and rewritten* — under us. Validate under an
        // epoch guard: the record must parse (coupling + CRC) and the
        // HSIT must still point at the exact address we read; otherwise
        // nothing is published and the lookup is retried.
        EpochGuard guard(epochs_);
        const auto *hdr = reinterpret_cast<const ValueRecordHeader *>(
            ctx->buf.data());
        const auto *payload = ctx->buf.data() + sizeof(ValueRecordHeader);
        const bool parse_ok =
            sizeof(ValueRecordHeader) + hdr->value_size <=
                ctx->buf.size() &&
            hdr->backward == ctx->h && recordCrcOk(*hdr, payload);
        if (parse_ok && hsit_->loadPrimary(ctx->h) == ctx->addr) {
            ctx->st->value.assign(reinterpret_cast<const char *>(payload),
                                  hdr->value_size);
            stats_.vs_reads.fetch_add(1, std::memory_order_relaxed);
            reg_.vs_reads->inc();
            svc_->admit(ctx->h, ctx->key, ctx->addr, payload,
                        hdr->value_size);
            published = true;
        }
    }
    if (published) {
        completeAsync(ctx->st, Status::ok());
        delete ctx;
        return;
    }

    // The value moved mid-flight; chase it with a fresh lookup. Each
    // round re-resolves index -> HSIT -> SVC/PWB/VS, so a value that
    // migrated into the PWB or SVC completes inline this time.
    if (ctx->lookup_attempts < kAsyncLookupRetries) {
        const std::shared_ptr<AsyncOpState> st = std::move(ctx->st);
        const uint64_t key = ctx->key;
        const int attempts = ctx->lookup_attempts + 1;
        delete ctx;
        startAsyncGet(st, key, attempts);
        return;
    }
    completeAsync(ctx->st,
                  Status::corruption("async get: record kept moving"));
    delete ctx;
}

Status
PrismDb::scan(uint64_t start_key, size_t count,
              std::vector<std::pair<uint64_t, std::string>> *out)
{
    PRISM_TRACE_OP(op_scope, "prism.scan");
    op_scope.arg(PRISM_TRACE_NID("count"), count);
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    reg_.scans->inc();
    EpochGuard guard(epochs_);
    out->clear();

    std::vector<std::pair<uint64_t, uint64_t>> handles;
    index_->scan(start_key, count, handles);

    struct VsReq {
        size_t out_idx;
        uint64_t h;
        uint64_t key;
        ValueAddr addr;
    };
    std::vector<VsReq> vs_reqs;
    std::vector<std::pair<uint64_t, uint64_t>> noted;  // (key, hsit idx)

    for (const auto &[key, h] : handles) {
        const ValueAddr addr = hsit_->loadPrimary(h);
        if (addr.isNull())
            continue;  // deleted concurrently
        out->emplace_back(key, std::string());
        std::string *slot = &out->back().second;
        if (svc_->lookup(h, addr.raw(), slot)) {
            stats_.svc_hits.fetch_add(1, std::memory_order_relaxed);
            reg_.svc_hits->inc();
            noted.emplace_back(key, h);
            continue;
        }
        if (addr.isPwb()) {
            const Status st = readValue(h, key, addr, slot, false);
            if (!st.isOk())
                return st;
            continue;
        }
        vs_reqs.push_back({out->size() - 1, h, key, addr});
    }

    if (!vs_reqs.empty()) {
        // Batched SSD reads with span merging: after a scan-aware
        // reorganisation the whole range collapses into one or two
        // sequential chunk reads — the SSD I/O reduction of §4.4.
        std::sort(vs_reqs.begin(), vs_reqs.end(),
                  [](const VsReq &a, const VsReq &b) {
                      if (a.addr.ssdId() != b.addr.ssdId())
                          return a.addr.ssdId() < b.addr.ssdId();
                      return a.addr.offset() < b.addr.offset();
                  });
        struct Span {
            uint32_t ssd;
            uint64_t start;
            uint64_t end;
            size_t first_req;
            size_t req_count;
            std::vector<uint8_t> buf;
            io::IoRequest req;  ///< kept for error-path resubmission
            ReadWaiter waiter;
        };
        std::vector<std::unique_ptr<Span>> spans;
        for (size_t i = 0; i < vs_reqs.size(); i++) {
            const auto &r = vs_reqs[i];
            const uint64_t end = r.addr.offset() + r.addr.recordBytes();
            if (!spans.empty()) {
                Span &s = *spans.back();
                if (s.ssd == r.addr.ssdId() && s.end == r.addr.offset() &&
                    end - s.start <= opts_.chunk_bytes) {
                    s.end = end;
                    s.req_count++;
                    continue;
                }
            }
            auto s = std::make_unique<Span>();
            s->ssd = r.addr.ssdId();
            s->start = r.addr.offset();
            s->end = end;
            s->first_req = i;
            s->req_count = 1;
            spans.push_back(std::move(s));
        }
        for (auto &s : spans) {
            s->buf.resize(s->end - s->start);
            s->req.op = io::IoRequest::Op::kRead;
            s->req.offset = s->start;
            s->req.length = static_cast<uint32_t>(s->buf.size());
            s->req.buf = s->buf.data();
            s->req.user_data = reinterpret_cast<uint64_t>(&s->waiter);
            const Status st =
                value_storages_[s->ssd]->device().submit(s->req);
            if (!st.isOk())
                return st;
        }
        // Reap *every* span before acting on any error: returning with a
        // sibling span still in flight would let its completion signal a
        // waiter in this destroyed frame.
        Status io_st = Status::ok();
        for (auto &s : spans) {
            const Status wait_st = waitReadRetrying(
                value_storages_[s->ssd]->device(), s->req, s->waiter,
                reg_.vs_read_retries);
            if (io_st.isOk() && !wait_st.isOk())
                io_st = wait_st;
        }
        if (!io_st.isOk())
            return io_st;
        for (auto &s : spans) {
            for (size_t i = s->first_req; i < s->first_req + s->req_count;
                 i++) {
                const auto &r = vs_reqs[i];
                const auto *hdr =
                    reinterpret_cast<const ValueRecordHeader *>(
                        s->buf.data() + (r.addr.offset() - s->start));
                if (hdr->backward != r.h)
                    return Status::corruption("scan record mismatch");
                const auto *payload =
                    reinterpret_cast<const uint8_t *>(hdr + 1);
                if (!recordCrcOk(*hdr, payload))
                    return Status::corruption("scan record checksum");
                (*out)[r.out_idx].second.assign(
                    reinterpret_cast<const char *>(payload),
                    hdr->value_size);
                stats_.vs_reads.fetch_add(1, std::memory_order_relaxed);
                reg_.vs_reads->inc();
                svc_->admit(r.h, r.key, r.addr, payload, hdr->value_size);
                noted.emplace_back(r.key, r.h);
            }
        }
    }

    // Chain this scan's members in key order for future reorganisation.
    if (noted.size() >= 2) {
        std::sort(noted.begin(), noted.end());
        std::vector<uint64_t> indices;
        indices.reserve(noted.size());
        for (const auto &[key, h] : noted)
            indices.push_back(h);
        svc_->noteScan(std::move(indices));
    }
    return Status::ok();
}

Status
PrismDb::multiGet(const std::vector<uint64_t> &keys,
                  std::vector<std::optional<std::string>> *out)
{
    PRISM_TRACE_OP(op_scope, "prism.multiget");
    op_scope.arg(PRISM_TRACE_NID("keys"), keys.size());
    stats_.gets.fetch_add(keys.size(), std::memory_order_relaxed);
    reg_.gets->add(keys.size());
    EpochGuard guard(epochs_);
    out->assign(keys.size(), std::nullopt);

    // Resolve every key; serve SVC/PWB hits inline and gather the SSD
    // residents for one batched submission per Value Storage.
    struct VsReq {
        size_t out_idx;
        uint64_t h;
        ValueAddr addr;
        std::vector<uint8_t> buf;
        io::IoRequest io;  ///< kept for error-path resubmission
        ReadWaiter waiter;
    };
    std::vector<std::unique_ptr<VsReq>> vs_reqs;
    for (size_t i = 0; i < keys.size(); i++) {
        const auto h = index_->lookup(keys[i]);
        if (!h.has_value())
            continue;
        const ValueAddr addr = hsit_->loadPrimary(*h);
        if (addr.isNull())
            continue;
        std::string value;
        if (svc_->lookup(*h, addr.raw(), &value)) {
            stats_.svc_hits.fetch_add(1, std::memory_order_relaxed);
            reg_.svc_hits->inc();
            (*out)[i] = std::move(value);
            continue;
        }
        if (addr.isPwb()) {
            const Status st = readValue(*h, keys[i], addr, &value, true);
            if (!st.isOk())
                return st;
            (*out)[i] = std::move(value);
            continue;
        }
        if (addr.ssdId() >= value_storages_.size())
            return Status::corruption("bad SSD id in HSIT entry");
        auto req = std::make_unique<VsReq>();
        req->out_idx = i;
        req->h = *h;
        req->addr = addr;
        req->buf.resize(addr.recordBytes());
        vs_reqs.push_back(std::move(req));
    }

    // One submission per Value Storage covering all its requests.
    for (size_t vs_id = 0; vs_id < value_storages_.size(); vs_id++) {
        std::vector<io::IoRequest> batch;
        for (auto &r : vs_reqs) {
            if (r->addr.ssdId() != vs_id)
                continue;
            r->io.op = io::IoRequest::Op::kRead;
            r->io.offset = r->addr.offset();
            r->io.length = static_cast<uint32_t>(r->buf.size());
            r->io.buf = r->buf.data();
            r->io.user_data = reinterpret_cast<uint64_t>(&r->waiter);
            batch.push_back(r->io);
        }
        if (batch.empty())
            continue;
        const Status st = value_storages_[vs_id]->device().submit(
            {batch.data(), batch.size()});
        if (!st.isOk())
            return st;
    }
    // Reap every request before acting on any error (see scan()).
    Status io_st = Status::ok();
    for (auto &r : vs_reqs) {
        const Status wait_st = waitReadRetrying(
            value_storages_[r->addr.ssdId()]->device(), r->io, r->waiter,
            reg_.vs_read_retries);
        if (io_st.isOk() && !wait_st.isOk())
            io_st = wait_st;
    }
    if (!io_st.isOk())
        return io_st;
    for (auto &r : vs_reqs) {
        const auto *hdr =
            reinterpret_cast<const ValueRecordHeader *>(r->buf.data());
        if (sizeof(ValueRecordHeader) + hdr->value_size > r->buf.size() ||
            hdr->backward != r->h) {
            return Status::corruption("multiGet record mismatch");
        }
        const auto *payload = r->buf.data() + sizeof(ValueRecordHeader);
        if (!recordCrcOk(*hdr, payload))
            return Status::corruption("multiGet record checksum");
        (*out)[r->out_idx].emplace(
            reinterpret_cast<const char *>(payload), hdr->value_size);
        stats_.vs_reads.fetch_add(1, std::memory_order_relaxed);
        reg_.vs_reads->inc();
        svc_->admit(r->h, keys[r->out_idx], r->addr, payload,
                    hdr->value_size);
    }
    return Status::ok();
}

void
PrismDb::reclaimPwb(Pwb *pwb, bool force)
{
    // One reclamation pass at a time *per PWB*: flushAll, the worker
    // pool and a stalled put's direct dispatch may race, and overlapping
    // passes on one PWB would waste SSD writes relocating the same
    // records twice (and must not interleave their cursor updates).
    // Blocking, so flushAll reliably makes progress. Passes on distinct
    // PWBs are independent and run concurrently across the pool.
    PRISM_TRACE_SPAN_VAR(pass_span, "pwb.reclaim_pass");
    std::lock_guard<prof::TimedMutex> pass_lock(pwb->passMutex());

    // Near-full rings (a stalled put dispatches at ~100% utilization)
    // must reclaim everything they can; under lighter pressure a pass
    // may leave a partial chunk's worth of records behind rather than
    // seal a nearly-empty chunk (see pwb_reclaim_force_utilization).
    force = force ||
            pwb->utilization() >= opts_.pwb_reclaim_force_utilization;

    // Start past every range a still-deferred head advance may cover:
    // that space can be recycled mid-pass, so its bytes must not be
    // trusted. [cursor, tail) is stable until *this* pass's advance.
    const uint64_t start =
        std::max(pwb->headLogical(), pwb->reclaimCursor());
    std::vector<Pwb::RecordRef> refs;
    uint64_t new_head =
        pwb->collectFrom(start, pwb->usedBytes(), refs);
    // Record how far this pass scanned *before* the thrifty pull-back
    // below retreats new_head: the reclaimer loop's re-dispatch gate
    // compares the ring tail against this, so a deferred straggler does
    // not read as "unscanned backlog" and trigger a dispatch storm.
    pwb->setLastScanTail(new_head);
    pass_span.arg(PRISM_TRACE_NID("scanned_records"), refs.size());
    if (new_head == start)
        return;

    struct LiveValue {
        uint64_t h;
        uint64_t key;
        const uint8_t *payload;
        uint32_t size;
        ValueAddr pwb_addr;
        uint64_t logical_end;  ///< ring offset just past the record
    };
    std::vector<LiveValue> live;
    live.reserve(refs.size());
    const bool paranoid = std::getenv("PRISM_PARANOID") != nullptr;
    for (const auto &ref : refs) {
        if (paranoid && !recordCrcOk(*ref.hdr, ref.payload)) {
            PRISM_LOG_ERROR("pwb.reclaim.bad_crc",
                "bad crc at logical_end=%llu addr=%llu key=%llu "
                "back=%llu size=%u start=%llu head=%llu tail=%llu "
                "cursor=%llu",
                (unsigned long long)ref.logical_end,
                (unsigned long long)ref.addr.offset(),
                (unsigned long long)ref.hdr->key,
                (unsigned long long)ref.hdr->backward,
                ref.hdr->value_size, (unsigned long long)start,
                (unsigned long long)pwb->headLogical(),
                (unsigned long long)pwb->tailLogical(),
                (unsigned long long)pwb->reclaimCursor());
            std::abort();
        }
        const uint64_t h = ref.hdr->backward;
        if (h >= hsit_->capacity())
            continue;
        // Well-coupled check (§5.2): the HSIT forward pointer must refer
        // back to this exact record; superseded versions are skipped,
        // which is Prism's write-traffic dedup.
        const ValueAddr primary = hsit_->loadPrimary(h);
        if (primary == ref.addr) {
            live.push_back({h, ref.hdr->key, ref.payload,
                            ref.hdr->value_size, ref.addr,
                            ref.logical_end});
        } else {
            stats_.reclaim_skipped_stale.fetch_add(
                1, std::memory_order_relaxed);
            reg_.reclaim_skipped_stale->inc();
        }
    }

    if (!live.empty()) {
        // Pipelined chunk writes: up to reclaim_pipeline_depth chunks
        // stay in flight, and each chunk's records are published the
        // moment its write completes — the pass no longer serializes
        // behind a full-barrier finish() (§5.2, Fig. 4).
        ChunkWriter writer(vs_ptrs_, /*seed=*/42,
                           opts_.reclaim_pipeline_depth);
        std::vector<ValueAddr> placed(live.size());
        writer.setChunkCallback([&](ValueStorage *vs, int64_t chunk,
                                    size_t first, size_t count) {
            // This chunk is durable. Mark its copies live *before*
            // settling and publishing: a chunk whose bits lag its HSIT
            // references could be selected, emptied and recycled by a
            // concurrent GC pass.
            for (size_t i = first; i < first + count; i++) {
                vs->setValid(placed[i].offset(),
                             placed[i].recordBytes());
            }
            vs->settleChunk(chunk);
            for (size_t i = first; i < first + count; i++) {
                const auto &v = live[i];
                if (hsit_->casPrimaryDurable(v.h, v.pwb_addr,
                                             placed[i])) {
                    stats_.reclaimed_values.fetch_add(
                        1, std::memory_order_relaxed);
                    reg_.reclaimed_values->inc();
                    // Write-back admission: a just-relocated value is a
                    // recent write and, under skewed request mixes, a
                    // likely near-term read — serving it from the SVC
                    // saves the whole batched-SSD-read path. Gated on
                    // headroom so a capacity-bound cache (which would
                    // only thrash its eviction lists) is left alone.
                    if (svc_->hasHeadroom())
                        svc_->admit(v.h, v.key, placed[i], v.payload,
                                    v.size);
                } else {
                    // Superseded after collection; retract the copy.
                    vs->clearValid(placed[i].offset(),
                                   placed[i].recordBytes());
                }
            }
        });
        for (size_t i = 0; i < live.size(); i++) {
            ValueAddr a = writer.add(live[i].h, live[i].key,
                                     live[i].payload, live[i].size);
            for (int attempt = 0; a.isNull() && attempt < 64; attempt++) {
                // No free chunk anywhere: force a concurrent GC round
                // and let the epoch machinery release recycled chunks,
                // then retry.
                runGcRoundParallel();
                epochs_.tryAdvance();
                std::this_thread::yield();
                a = writer.add(live[i].h, live[i].key, live[i].payload,
                               live[i].size);
            }
            PRISM_CHECK(!a.isNull() && "Value Storage out of space");
            placed[i] = a;
        }
        if (force) {
            const Status st = writer.finish();
            PRISM_CHECK(st.isOk());
        } else {
            // Thrifty pass: full chunks only. Stragglers stay durable in
            // the ring; the head advance below stops short of the first
            // one, so a later pass re-collects them (by then most have
            // been superseded and cost nothing).
            const size_t published = writer.finishFullChunksOnly();
            if (published < live.size()) {
                const auto &first_left = live[published];
                new_head = first_left.logical_end -
                           first_left.pwb_addr.recordBytes();
                reg_.reclaim_deferred_values->add(
                    live.size() - published);
            }
        }
        // A permanently-failed chunk write (injected fault or device
        // dropout) published nothing: its callback never fired, so no
        // HSIT entry points at the dead chunk and the records' only
        // durable copy is still the ring. Clamp the head advance to
        // stop short of the first such record — the next pass
        // re-collects everything from there (already-published later
        // records are skipped as stale by the well-coupled check).
        const size_t first_failed = writer.firstFailedRecord();
        if (first_failed < live.size()) {
            const auto &ff = live[first_failed];
            new_head = std::min(new_head, ff.logical_end -
                                              ff.pwb_addr.recordBytes());
            uint64_t requeued = 0;
            for (size_t i = first_failed; i < live.size(); i++)
                requeued += writer.recordFailed(i) ? 1 : 0;
            reg_.pwb_requeued_values->add(requeued);
        }
    }

    pass_span.arg(PRISM_TRACE_NID("live_records"), live.size());
    stats_.reclaim_passes.fetch_add(1, std::memory_order_relaxed);
    reg_.reclaim_passes->inc();
    if (new_head == start)
        return;  // nothing resolved; no cursor/head movement to record
    pwb->setReclaimCursor(new_head);
    // The head advance (space reuse) waits out the epoch grace period:
    // readers may still be dereferencing reclaimed PWB addresses.
    epochs_.retire([this, pwb, start, new_head] {
        if (std::getenv("PRISM_PARANOID") != nullptr) {
            // No HSIT entry may still reference the range being freed.
            for (uint64_t i = 0; i < hsit_->capacity(); i++) {
                const ValueAddr a(
                    hsit_->entry(i).primary.load(
                        std::memory_order_acquire));
                if (a.isPwb() &&
                    pwb->offsetInLogicalRange(a.offset(), start,
                                              new_head)) {
                    PRISM_LOG_ERROR("pwb.advance.live_entry",
                        "live entry %llu at pwb off %llu in "
                        "[%llu,%llu) head=%llu tail=%llu",
                        (unsigned long long)i,
                        (unsigned long long)a.offset(),
                        (unsigned long long)start,
                        (unsigned long long)new_head,
                        (unsigned long long)pwb->headLogical(),
                        (unsigned long long)pwb->tailLogical());
                    std::abort();
                }
            }
        }
        pwb->advanceHead(new_head);
    });
}

void
PrismDb::dispatchReclaim(Pwb *pwb)
{
    // One outstanding dispatch per PWB: the slot is released by the
    // task, so at most one queue entry plus one running pass exist for
    // any PWB (the pass lock serializes with flushAll regardless).
    if (!pwb->tryAcquireReclaimSlot())
        return;
    PRISM_TRACE_INSTANT("pwb.reclaim_dispatch");
    reg_.reclaim_dispatches->inc();
    bg_inflight_.fetch_add(1, std::memory_order_acq_rel);
    bg_pool_->submit(bg_source_, [this, pwb] {
        reclaimPwb(pwb);
        pwb->releaseReclaimSlot();
        epochs_.tryAdvance();
        bg_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    });
}

void
PrismDb::dispatchGc(size_t vs_id)
{
    bool expected = false;
    if (!gc_scheduled_[vs_id].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return;
    PRISM_TRACE_INSTANT("vs.gc_dispatch");
    reg_.gc_dispatches->inc();
    bg_inflight_.fetch_add(1, std::memory_order_acq_rel);
    bg_pool_->submit(bg_source_, [this, vs_id] {
        value_storages_[vs_id]->runGcPass(*hsit_);
        gc_scheduled_[vs_id].store(false, std::memory_order_release);
        epochs_.tryAdvance();
        bg_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    });
}

void
PrismDb::runGcRoundParallel()
{
    // The caller helps execute the per-VS passes (BgPool::parallelFor),
    // so this is safe to invoke from inside a pool task — the GC
    // fallback in reclaimPwb does. Contended Value Storages are skipped
    // by runGcPass's try-lock, never waited on.
    PRISM_TRACE_SPAN("vs.gc_round");
    bg_pool_->parallelFor(bg_source_, value_storages_.size(),
                          [this](size_t i) {
        value_storages_[i]->runGcPass(*hsit_);
    });
}

void
PrismDb::reclaimerLoop()
{
    trace::TraceRegistry::global().setThreadName("prism-reclaimer");
    numa::pinThreadToNode(opts_.numa_node);
    std::unique_lock<std::mutex> lock(reclaim_mu_);
    while (!stop_.load(std::memory_order_acquire)) {
        reclaim_cv_.wait_for(
            lock, std::chrono::microseconds(opts_.reclaimer_poll_us));
        if (stop_.load(std::memory_order_acquire))
            return;
        lock.unlock();
        for (int tid = 0; tid < ThreadId::kMaxThreads; tid++) {
            Pwb *pwb = pwbs_[tid].load(std::memory_order_acquire);
            if (pwb == nullptr)
                continue;
            // Re-arm the put-path edge trigger: appends that land while
            // this pass is deciding will raise a fresh notify.
            pwb->clearReclaimHint();
            const double util = pwb->utilization();
            if (util < opts_.pwb_reclaim_watermark)
                continue;
            // Re-dispatch gate: a thrifty pass leaves the ring over the
            // watermark on purpose (deferred stragglers), so utilization
            // alone would re-dispatch every poll and each pass would
            // re-scan the same stale backlog. Only dispatch once at
            // least a chunk of fresh appends has landed past the last
            // scan — unless pressure forces a full pass anyway. Stalled
            // puts and flushAll dispatch directly and skip this gate.
            if (pwb->tailLogical() - pwb->lastScanTail() >=
                    opts_.chunk_bytes ||
                util >= opts_.pwb_reclaim_force_utilization)
                dispatchReclaim(pwb);
        }
        epochs_.tryAdvance();
        lock.lock();
    }
}

void
PrismDb::gcLoop()
{
    trace::TraceRegistry::global().setThreadName("prism-gc");
    numa::pinThreadToNode(opts_.numa_node);
    // Adaptive cadence: 200 us while GC work is being found, backing
    // off 2x per idle round to 20 ms. A store with no garbage pays ~50
    // wakeups/s instead of 5000 — the difference is measurable when a
    // shard router runs one of these loops per shard on a small box.
    constexpr uint64_t kBusyPollNs = 200 * 1000;
    constexpr uint64_t kIdlePollNs = 20000 * 1000;
    uint64_t poll_ns = kBusyPollNs;
    while (!stop_.load(std::memory_order_acquire)) {
        bool dispatched = false;
        for (size_t i = 0; i < value_storages_.size(); i++) {
            if (stop_.load(std::memory_order_acquire))
                return;
            // A dropped-out device cannot complete survivor rewrites;
            // runGcPass would skip it anyway (prism.vs.degraded), so
            // don't burn pool slots on it while it is sick.
            if (value_storages_[i]->needsGc() &&
                value_storages_[i]->device().healthy()) {
                dispatchGc(i);
                dispatched = true;
            }
        }
        epochs_.tryAdvance();
        poll_ns = dispatched ? kBusyPollNs
                             : std::min(poll_ns * 2, kIdlePollNs);
        // Scheduling wait, not delayFor: simulated-time delays end in a
        // calibration spin that is pure waste here, and a condvar makes
        // shutdown interruptible at the longer idle cadence.
        std::unique_lock<std::mutex> lock(gc_mu_);
        gc_cv_.wait_for(lock, std::chrono::nanoseconds(poll_ns), [this] {
            return stop_.load(std::memory_order_acquire);
        });
    }
}

void
PrismDb::flushAll()
{
    // Quiesced-caller contract: no concurrent put/get/scan.
    PRISM_TRACE_SPAN("prism.flush_all");
    for (int round = 0; round < 1024; round++) {
        bool dirty = false;
        for (int tid = 0; tid < ThreadId::kMaxThreads; tid++) {
            Pwb *pwb = pwbs_[tid].load(std::memory_order_acquire);
            if (pwb == nullptr || pwb->usedBytes() == 0)
                continue;
            dirty = true;
            reclaimPwb(pwb, /*force=*/true);
        }
        epochs_.drain();  // apply the deferred head advances
        if (!dirty)
            return;
    }
}

void
PrismDb::forceGc()
{
    // Rounds of one concurrent pass per over-watermark Value Storage;
    // freed chunks only return to the free lists after the epoch drain,
    // so progress is re-evaluated between rounds.
    PRISM_TRACE_SPAN("prism.force_gc");
    for (int round = 0; round < 1024; round++) {
        std::vector<size_t> needy;
        for (size_t i = 0; i < value_storages_.size(); i++) {
            // Degrade gracefully: an over-watermark but dropped-out
            // device is left alone rather than spun on forever.
            if (value_storages_[i]->needsGc() &&
                value_storages_[i]->device().healthy())
                needy.push_back(i);
        }
        if (needy.empty())
            return;
        std::atomic<size_t> reclaimed{0};
        bg_pool_->parallelFor(bg_source_, needy.size(), [&](size_t i) {
            reclaimed.fetch_add(
                value_storages_[needy[i]]->runGcPass(*hsit_),
                std::memory_order_relaxed);
        });
        epochs_.drain();
        if (reclaimed.load(std::memory_order_relaxed) == 0)
            return;  // nothing left to squeeze out of any victim
    }
}

uint64_t
PrismDb::ssdBytesWritten() const
{
    uint64_t total = 0;
    for (const auto &vs : value_storages_) {
        total += const_cast<ValueStorage &>(*vs)
                     .device()
                     .stats()
                     .bytes_written.load(std::memory_order_relaxed);
    }
    return total;
}

uint64_t
PrismDb::nvmIndexBytes() const
{
    return index_->nvmBytes() + hsit_->nvmBytes();
}

stats::StatsSnapshot
PrismDb::stats() const
{
    return stats::StatsRegistry::global().snapshot();
}

ErrorBudget
PrismDb::errorBudget() const
{
    auto &reg = stats::StatsRegistry::global();
    ErrorBudget b;
    b.faults_fired = reg.counter("prism.fault.fired").value();
    b.ssd_io_errors = reg.counter("sim.ssd.io_errors").value();
    b.pwb_retries = reg.counter("prism.pwb.retries").value();
    b.pwb_write_failures =
        reg.counter("prism.pwb.chunk_write_failures").value();
    b.pwb_requeued_values =
        reg.counter("prism.pwb.requeued_values").value();
    b.vs_retries = reg.counter("prism.vs.retries").value();
    b.vs_degraded = reg.counter("prism.vs.degraded").value();
    b.bg_task_faults = reg.counter("prism.bg.task_faults").value();
    for (const auto &vs : value_storages_) {
        if (!const_cast<ValueStorage &>(*vs).device().healthy())
            b.degraded_devices++;
    }
    return b;
}

obs::HealthReport
PrismDb::healthReport() const
{
    const ErrorBudget b = errorBudget();
    const bool draining = stop_.load(std::memory_order_acquire);
    obs::HealthReport r;
    r.healthy = !b.degraded();
    r.ready = r.healthy && !draining;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"status\":\"%s\",\"ready\":%s,\"degraded_devices\":%llu,"
        "\"devices\":%zu,\"draining\":%s,\"faults_fired\":%llu,"
        "\"ssd_io_errors\":%llu,\"pwb_write_failures\":%llu,"
        "\"vs_degraded\":%llu,\"bg_task_faults\":%llu,"
        "\"recovery_ns\":%llu,\"prof_hz\":%d}",
        r.healthy ? "ok" : "degraded", r.ready ? "true" : "false",
        static_cast<unsigned long long>(b.degraded_devices),
        value_storages_.size(), draining ? "true" : "false",
        static_cast<unsigned long long>(b.faults_fired),
        static_cast<unsigned long long>(b.ssd_io_errors),
        static_cast<unsigned long long>(b.pwb_write_failures),
        static_cast<unsigned long long>(b.vs_degraded),
        static_cast<unsigned long long>(b.bg_task_faults),
        static_cast<unsigned long long>(recovery_ns_),
        prof::Profiler::global().running()
            ? prof::Profiler::global().hz() : 0);
    r.json = buf;
    // When a network front-end is embedded its listener registers a
    // JSON provider; splice it in so /healthz shows listener state.
    if (std::string lj = obs::listenerInfoJson(); !lj.empty()) {
        r.json.pop_back();
        r.json += ",\"listener\":" + lj + "}";
    }
    return r;
}

int
PrismDb::obsPort() const
{
    return obs_ != nullptr ? obs_->port() : 0;
}

void
PrismDb::statsDumperLoop()
{
    trace::TraceRegistry::global().setThreadName("prism-stats-dumper");
    const auto dumpOnce = [this] {
        trace::TraceRegistry::global().publishStats();
        const auto snap = stats::StatsRegistry::global().snapshot();
        if (opts_.stats_dump_json) {
            std::fprintf(stderr, "%s\n", snap.toJson().c_str());
        } else {
            std::fprintf(stderr, "---- prism stats ----\n%s",
                         snap.toString().c_str());
        }
    };
    std::unique_lock<std::mutex> lock(dumper_mu_);
    while (!stop_.load(std::memory_order_acquire)) {
        dumper_cv_.wait_for(
            lock, std::chrono::milliseconds(opts_.stats_dump_interval_ms));
        if (stop_.load(std::memory_order_acquire))
            break;
        dumpOnce();
    }
    // Final snapshot at close: a run shorter than the dump interval
    // would otherwise exit without ever reporting.
    dumpOnce();
}

void
PrismDb::publishOccupancy()
{
    uint64_t pwb_used = 0, pwb_cap = 0;
    for (size_t i = 0; i < ThreadId::kMaxThreads; i++) {
        const Pwb *p = pwbs_[i].load(std::memory_order_acquire);
        if (p == nullptr)
            continue;
        pwb_used += p->usedBytes();
        pwb_cap += p->capacity();
    }
    auto &reg = stats::StatsRegistry::global();
    reg.gauge("prism.pwb.used_bytes", "bytes")
        .set(static_cast<int64_t>(pwb_used));
    reg.gauge("prism.pwb.capacity_bytes", "bytes")
        .set(static_cast<int64_t>(pwb_cap));
    reg.gauge("prism.svc.used_bytes", "bytes")
        .set(static_cast<int64_t>(svc_->usedBytes()));
    reg.gauge("prism.svc.capacity_bytes", "bytes")
        .set(static_cast<int64_t>(svc_->capacityBytes()));
}

}  // namespace prism::core
