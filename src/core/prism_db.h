/**
 * @file
 * PrismDb — the public key-value store API (§4, Fig. 2).
 *
 * Wires the five components together:
 *
 *   Persistent Key Index (PacTree, NVM)  -> HSIT entry index
 *   HSIT (NVM)                           -> value location (PWB/VS/SVC)
 *   PWB (per-thread, NVM)                -> fresh writes, durable at once
 *   Value Storage (one per SSD)          -> bulk of the data
 *   SVC (DRAM)                           -> read-hot values, scan chains
 *
 * Operation outlines (detail in prism_db.cc):
 *  - put: PWB append (value + backward ptr, one fence) then durable CAS
 *    of the HSIT forward pointer — the linearization point (§5.4).
 *  - get: index -> HSIT -> SVC / PWB / Value Storage (thread-combined
 *    SSD read), then SVC admission off the critical path.
 *  - scan: index range -> batched SSD reads with span merging -> SVC
 *    admission + scan-chain registration (§4.4).
 *  - del: index remove + epoch-deferred HSIT entry reclamation.
 *
 * Background threads: a bg_workers-sized I/O worker pool (§5.2) that
 * runs PWB reclamation passes (one per over-watermark PWB, concurrent
 * across PWBs) and per-Value-Storage GC passes (concurrent across
 * SSDs), fed by two light dispatcher threads (reclaimer, GC), plus the
 * SVC manager and one completion thread per Value Storage.
 *
 * Crash consistency: see §5.5 / recover(). The store can be shut down
 * abruptly (or its devices snapshotted mid-run) and reopened with
 * recover(); tests inject crashes at arbitrary points via the pmem
 * tracking mode.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "common/thread_util.h"
#include "core/async.h"
#include "core/bg_pool.h"
#include "core/hsit.h"
#include "core/options.h"
#include "core/pwb.h"
#include "core/svc.h"
#include "core/value_storage.h"
#include "index/pactree.h"
#include "io/io_backend.h"
#include "pmem/pmem_allocator.h"
#include "pmem/pmem_region.h"
#include "sim/ssd_device.h"

namespace prism::obs {
class ObsServer;
struct HealthReport;
}  // namespace prism::obs

namespace prism::core {

/** Operation counters exposed for benchmarks and tests. */
struct PrismDbStats {
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> dels{0};
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> pwb_hits{0};   ///< gets served from the PWB
    std::atomic<uint64_t> svc_hits{0};   ///< gets served from the SVC
    std::atomic<uint64_t> vs_reads{0};   ///< gets that went to the SSD
    std::atomic<uint64_t> reclaim_passes{0};
    std::atomic<uint64_t> reclaimed_values{0};
    std::atomic<uint64_t> reclaim_skipped_stale{0};  ///< dedup wins (§4.3)
    std::atomic<uint64_t> user_bytes_written{0};     ///< WAF denominator
    std::atomic<uint64_t> pwb_stalls{0};  ///< puts that waited for space
};

/**
 * Aggregate fault/degradation posture of the store (docs/FAULTS.md):
 * how much injected-fault and retry machinery has engaged since the
 * process started, and whether any SSD is currently dropped out. The
 * counters are process-wide (like the stats registry), so per-run
 * accounting should diff two snapshots.
 */
struct ErrorBudget {
    uint64_t faults_fired = 0;        ///< prism.fault.fired
    uint64_t ssd_io_errors = 0;       ///< sim.ssd.io_errors (injected)
    uint64_t pwb_retries = 0;         ///< chunk-write retry submissions
    uint64_t pwb_write_failures = 0;  ///< chunks abandoned after retries
    uint64_t pwb_requeued_values = 0; ///< records clamped back into rings
    uint64_t vs_retries = 0;          ///< VS read retries / GC skips
    uint64_t vs_degraded = 0;         ///< GC passes skipped, sick device
    uint64_t bg_task_faults = 0;      ///< injected bg-task failures
    uint64_t degraded_devices = 0;    ///< SSDs currently in dropout

    /** True while at least one SSD is refusing writes. */
    bool degraded() const { return degraded_devices > 0; }
};

/** A Prism key-value store instance. */
class PrismDb {
  public:
    /**
     * Open a store.
     *
     * @param opts    tunables and ablation flags.
     * @param region  the NVM pool (caller keeps ownership shared so crash
     *                tests can snapshot/restore it).
     * @param devices one Value Storage is created per device. Any
     *                io::IoBackend works: the simulator, a real file via
     *                io::createFileBackend, or a mix (docs/IO_BACKENDS.md).
     * @param format  true = initialise fresh; false = recover (§5.5).
     */
    PrismDb(const PrismOptions &opts,
            std::shared_ptr<pmem::PmemRegion> region,
            std::vector<std::shared_ptr<io::IoBackend>> devices,
            bool format);

    /**
     * Open a store on an externally-owned worker pool. The shard router
     * passes one pool to all shards so background capacity is shared
     * (with per-shard round-robin fairness — each PrismDb registers its
     * own BgPool source). The pool must outlive this instance; the
     * destructor quiesces this instance's own tasks (reclaim slots, GC
     * flags, async scans) but never shuts the pool down.
     */
    PrismDb(const PrismOptions &opts,
            std::shared_ptr<pmem::PmemRegion> region,
            std::vector<std::shared_ptr<io::IoBackend>> devices,
            bool format, std::shared_ptr<BgPool> shared_pool);

    /** Simulator-fleet convenience (the historical signature). */
    PrismDb(const PrismOptions &opts,
            std::shared_ptr<pmem::PmemRegion> region,
            std::vector<std::shared_ptr<sim::SsdDevice>> ssds, bool format)
        : PrismDb(opts, std::move(region), asBackends(ssds), format)
    {
    }

    ~PrismDb();

    PrismDb(const PrismDb &) = delete;
    PrismDb &operator=(const PrismDb &) = delete;

    /** Widen a simulator fleet to the device-agnostic backend vector. */
    static std::vector<std::shared_ptr<io::IoBackend>>
    asBackends(const std::vector<std::shared_ptr<sim::SsdDevice>> &ssds)
    {
        return {ssds.begin(), ssds.end()};
    }

    /** Convenience: fresh store. */
    static std::unique_ptr<PrismDb>
    open(const PrismOptions &opts, std::shared_ptr<pmem::PmemRegion> region,
         std::vector<std::shared_ptr<io::IoBackend>> devices)
    {
        return std::make_unique<PrismDb>(opts, std::move(region),
                                         std::move(devices), true);
    }
    static std::unique_ptr<PrismDb>
    open(const PrismOptions &opts, std::shared_ptr<pmem::PmemRegion> region,
         const std::vector<std::shared_ptr<sim::SsdDevice>> &ssds)
    {
        return open(opts, std::move(region), asBackends(ssds));
    }

    /** Convenience: recover an existing store after crash/restart. */
    static std::unique_ptr<PrismDb>
    recover(const PrismOptions &opts,
            std::shared_ptr<pmem::PmemRegion> region,
            std::vector<std::shared_ptr<io::IoBackend>> devices)
    {
        return std::make_unique<PrismDb>(opts, std::move(region),
                                         std::move(devices), false);
    }
    static std::unique_ptr<PrismDb>
    recover(const PrismOptions &opts,
            std::shared_ptr<pmem::PmemRegion> region,
            const std::vector<std::shared_ptr<sim::SsdDevice>> &ssds)
    {
        return recover(opts, std::move(region), asBackends(ssds));
    }

    /** @name Store operations */
    ///@{
    /** Insert or update. Durable on return (durable linearizability). */
    Status put(uint64_t key, std::string_view value);

    /** Point lookup. */
    Status get(uint64_t key, std::string *value);

    /** Delete. */
    Status del(uint64_t key);

    /**
     * Range scan: up to @p count pairs with key >= @p start_key in
     * ascending key order.
     */
    Status scan(uint64_t start_key, size_t count,
                std::vector<std::pair<uint64_t, std::string>> *out);

    /**
     * Batched point lookups: out[i] holds key[i]'s value or nullopt for
     * missing keys. All SSD-resident values are fetched with one device
     * batch per Value Storage, amortizing submission cost — the natural
     * API for applications with dependency-free read sets.
     */
    Status multiGet(const std::vector<uint64_t> &keys,
                    std::vector<std::optional<std::string>> *out);
    ///@}

    /**
     * @name Asynchronous operations (core/async.h)
     *
     * Completion-driven variants of the store operations. Each returns
     * an OpFuture immediately; the operation finishes on a completion
     * thread when its device I/O lands (or inline when no device I/O is
     * needed). One caller thread can keep hundreds of gets in flight —
     * the queue-depth-filling discipline of §5.3 without one blocked
     * thread per read. The blocking API above is the degenerate case:
     * same implementation, caller waits.
     *
     * The optional callback runs on whichever thread completes the op
     * (see core/async.h for the threading contract).
     */
    ///@{
    /**
     * Asynchronous put. Completes before returning: the write path is an
     * NVM append + durable CAS (§4.3) with no device round-trip to
     * overlap, so the future is always ready. Provided for API symmetry
     * (mixed async batches need not special-case writes).
     */
    OpFuture asyncPut(uint64_t key, std::string_view value,
                      AsyncCallback cb = nullptr);

    /**
     * Asynchronous point lookup. NVM/DRAM hits (PWB, SVC) complete
     * inline; an SSD-resident value is fetched with a tagged device read
     * and the future completes from the Value Storage completion thread,
     * holding no epoch (and no caller thread) while the I/O is in
     * flight. The completion path re-validates the record against the
     * HSIT before publishing it, retrying the lookup if the value moved
     * (GC / update) mid-flight.
     */
    OpFuture asyncGet(uint64_t key, AsyncCallback cb = nullptr);

    /** Asynchronous delete. Completes before returning (NVM-only). */
    OpFuture asyncDel(uint64_t key, AsyncCallback cb = nullptr);

    /**
     * Asynchronous range scan: runs on the background pool (a scan is a
     * multi-batch pipeline, not a single I/O), completing the future
     * with the rows when done.
     */
    OpFuture asyncScan(uint64_t start_key, size_t count,
                       AsyncCallback cb = nullptr);

    /** Async operations started but not yet completed. */
    uint64_t asyncInflight() const {
        return async_inflight_.load(std::memory_order_acquire);
    }
    ///@}

    /** Number of live keys. */
    size_t size() const { return index_->size(); }

    /**
     * Synchronously reclaim every PWB down to empty and apply deferred
     * head advances (tests and orderly shutdown; not needed for
     * durability — the PWB *is* durable).
     */
    void flushAll();

    /** Run GC passes until no Value Storage is above its watermark. */
    void forceGc();

    /** @name Introspection for benchmarks */
    ///@{
    /**
     * Snapshot of the process-wide metrics registry: every layer's
     * counters/gauges/histograms by name (docs/OBSERVABILITY.md). The
     * registry outlives (and is shared across) store instances, so
     * per-run accounting should diff two snapshots with counterDelta().
     */
    stats::StatsSnapshot stats() const;

    /**
     * The process-wide telemetry sampler/ring (common/telemetry.h):
     * windowed rate series over every registry metric plus per-layer
     * busy-ns and per-device utilization. Started automatically when
     * PrismOptions::telemetry_interval_ms > 0; `telemetry().series()`
     * reads the recorded windows, `telemetry().exportSeriesJsonToFile`
     * writes the series consumed by scripts/telemetry_report.py.
     */
    telemetry::Telemetry &telemetry() const {
        return telemetry::Telemetry::global();
    }

    /**
     * Current fault/degradation posture: injected-fault fires, retry and
     * re-queue activity, and the number of currently dropped-out SSDs.
     * Cheap enough to poll (a handful of counter sums).
     */
    ErrorBudget errorBudget() const;

    /**
     * /healthz + /readyz payload (common/obs_server.h): 200/503 flags
     * plus an error-budget JSON body. Also the in-process render behind
     * `prism_cli healthz`, so orchestrator and operator see one truth.
     */
    obs::HealthReport healthReport() const;

    /**
     * Bound port of this store's HTTP ops endpoint, 0 when no server is
     * running (the default; see PrismOptions::obs_port).
     */
    int obsPort() const;

    /**
     * Refresh the derived occupancy gauges (summed PWB ring fill, SVC
     * bytes) in the stats registry. Registered as a telemetry probe and
     * run before every /metrics render; also useful before a manual
     * snapshot.
     */
    void publishOccupancy();

    /** This instance's raw operation counters (tests, benches). */
    PrismDbStats &opStats() { return stats_; }
    SvcStats &svcStats() { return svc_->stats(); }
    index::KeyIndex &keyIndex() { return *index_; }
    Hsit &hsit() { return *hsit_; }
    Svc &svc() { return *svc_; }
    ValueStorage &valueStorage(size_t i) { return *value_storages_[i]; }
    size_t valueStorageCount() const { return value_storages_.size(); }
    EpochManager &epochs() { return epochs_; }
    BgPool &bgPool() { return *bg_pool_; }

    /** Total SSD bytes written across all Value Storages (WAF numerator). */
    uint64_t ssdBytesWritten() const;

    /** NVM bytes used by Key Index + HSIT (§7.6 space experiment). */
    uint64_t nvmIndexBytes() const;

    /** Wall-clock nanoseconds the constructor spent in recovery. */
    uint64_t recoveryTimeNs() const { return recovery_ns_; }

    /**
     * Captured slow operations, worst first (ops whose wall time
     * exceeded PrismOptions::trace_slow_op_us; see common/trace.h).
     * The buffer is process-wide, like the stats registry.
     */
    std::vector<trace::SlowOp> slowOps() const {
        return trace::TraceRegistry::global().slowOps();
    }
    ///@}

  private:
    /** Per-thread PWB, created lazily on a thread's first put. */
    Pwb *pwbForThisThread();

    Status readValue(uint64_t hsit_idx, uint64_t key, ValueAddr addr,
                     std::string *out, bool admit_to_svc);

    /** @name Async engine (prism_db.cc, core/async.h) */
    ///@{
    /** In-flight tagged-read context; defined in prism_db.cc. */
    struct AsyncGetCtx;

    /**
     * Shared synchronous prefix of get()/asyncGet(): resolve the key and
     * serve the SVC hit. Caller must hold an EpochGuard.
     * @return true when the op finished (st/out are set); false with
     *         *h and *addr filled when the value must be read (PWB/VS).
     */
    bool getPrefix(uint64_t key, std::string *out, Status *st, uint64_t *h,
                   ValueAddr *addr);

    /**
     * Run one async-get round: prefix, then either complete inline or
     * submit the tagged VS read. Re-entered from the completion thread
     * when mid-flight relocation forces a re-lookup.
     */
    void startAsyncGet(const std::shared_ptr<AsyncOpState> &st,
                       uint64_t key, int lookup_attempts);

    /** Tagged-read continuation (runs on a VS completion thread). */
    void onAsyncVsRead(AsyncGetCtx *ctx, const Status &st);

    /** Publish a result and release the in-flight slot. */
    void completeAsync(const std::shared_ptr<AsyncOpState> &st, Status s);
    ///@}

    void reclaimerLoop();
    void gcLoop();
    void statsDumperLoop();
    /**
     * One reclamation pass over @p pwb (§5.2, Fig. 4), pipelined: up to
     * reclaim_pipeline_depth chunk writes stay in flight, each chunk
     * publishing its HSIT entries as its write completes. Serialized
     * per PWB by Pwb::passMutex(); passes on different PWBs run
     * concurrently on the bg pool. Unless @p force is set (flushAll)
     * or the ring is near-full, the pass is thrifty: it submits full
     * chunks only and leaves stragglers in the ring (see
     * PrismOptions::pwb_reclaim_force_utilization).
     */
    void reclaimPwb(Pwb *pwb, bool force = false);
    /**
     * Queue a reclamation pass for @p pwb on the pool (at most one
     * outstanding dispatch per PWB). Called by the reclaimer loop and
     * directly by a stalling put(), so a full PWB never waits out a
     * poll interval.
     */
    void dispatchReclaim(Pwb *pwb);
    /** Queue a GC pass for Value Storage @p vs_id (one in flight each). */
    void dispatchGc(size_t vs_id);
    /** One concurrent GC pass over every Value Storage (pool-assisted). */
    void runGcRoundParallel();
    void recoverState();
    void clearOldLocation(uint64_t hsit_idx, ValueAddr old_addr);

    /** On-NVM master root tying all persistent components together. */
    struct MasterRoot {
        uint64_t magic;
        pmem::POff tree_root;
        pmem::POff hsit_root;
        std::atomic<pmem::POff> pwb_roots[ThreadId::kMaxThreads];
    };
    static constexpr uint64_t kMagic = 0x5052495344427631ull;  // PRISMDBv1

    PrismOptions opts_;
    std::shared_ptr<pmem::PmemRegion> region_;
    std::unique_ptr<pmem::PmemAllocator> alloc_;
    EpochManager epochs_;

    std::unique_ptr<index::PacTree> index_;
    std::unique_ptr<Hsit> hsit_;
    std::vector<std::unique_ptr<ValueStorage>> value_storages_;
    std::vector<ValueStorage *> vs_ptrs_;
    std::unique_ptr<Svc> svc_;

    pmem::POff master_off_ = pmem::kNullOff;
    MasterRoot *master_ = nullptr;

    std::mutex pwb_mu_;
    std::vector<std::unique_ptr<Pwb>> pwb_owner_;
    std::atomic<Pwb *> pwbs_[ThreadId::kMaxThreads] = {};

    std::atomic<bool> stop_{false};
    /** Worker pool for reclamation and GC tasks (§5.2). Owned unless a
     *  shared pool was passed in (shard router); see owns_pool_. */
    std::shared_ptr<BgPool> bg_pool_;
    /** False when bg_pool_ is externally owned: the destructor then
     *  waits out bg_inflight_ instead of calling shutdown(). */
    bool owns_pool_ = true;
    /** This instance's round-robin source id in bg_pool_. */
    int bg_source_ = 0;
    /** Tasks this instance has on the (possibly shared) pool. */
    std::atomic<uint64_t> bg_inflight_{0};
    std::thread reclaimer_;
    std::thread gc_thread_;
    std::mutex reclaim_mu_;
    std::condition_variable reclaim_cv_;
    /** Interruptible sleep for gcLoop (plain scheduling wait — the
     *  simulated-time delayFor would burn a spin tail per wakeup). */
    std::mutex gc_mu_;
    std::condition_variable gc_cv_;
    /** One outstanding GC dispatch per Value Storage. */
    std::unique_ptr<std::atomic<bool>[]> gc_scheduled_;

    // Optional periodic dump of the stats registry (PrismOptions::
    // stats_dump_interval_ms).
    std::thread stats_dumper_;
    std::mutex dumper_mu_;
    std::condition_variable dumper_cv_;

    PrismDbStats stats_;

    /** Cached process-wide registry metrics (see common/stats.h). */
    struct RegMetrics {
        stats::Counter *puts;
        stats::Counter *gets;
        stats::Counter *dels;
        stats::Counter *scans;
        stats::Counter *user_bytes_written;
        stats::Counter *pwb_hits;
        stats::Counter *svc_hits;
        stats::Counter *vs_reads;
        stats::Counter *pwb_stalls;
        stats::Counter *reclaim_passes;
        stats::Counter *reclaimed_values;
        stats::Counter *reclaim_skipped_stale;
        stats::Counter *hsit_cas_retries;
        stats::Counter *reclaim_dispatches;
        stats::Counter *gc_dispatches;
        stats::Counter *reclaim_deferred_values;
        stats::Counter *pwb_requeued_values;
        stats::Counter *vs_read_retries;
        stats::LatencyStat *pwb_stall_ns;
    };
    RegMetrics reg_;

    /** Telemetry wiring: probe id for publishOccupancy(), and whether
     *  this instance started the (process-wide) sampler. */
    int telemetry_probe_ = -1;
    bool telemetry_started_ = false;

    /** Whether this instance armed the (process-wide) CPU/lock profiler
     *  at open (PrismOptions::prof_hz); the owner stops it at close. */
    bool owns_prof_ = false;

    /** Async ops in flight; the destructor waits it out before teardown
     *  (their completion paths touch the SVC, HSIT and bg pool). */
    std::atomic<uint64_t> async_inflight_{0};

    /** HTTP ops endpoint, when PrismOptions::obs_port asked for one and
     *  this store is top-level (owns its pool). Stopped first in the
     *  destructor — its handlers call back into this object. */
    std::unique_ptr<obs::ObsServer> obs_;

    uint64_t recovery_ns_ = 0;
};

}  // namespace prism::core
