#include "core/hsit.h"

#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace prism::core {

using pmem::kNullOff;
using pmem::POff;

Hsit::Hsit(pmem::PmemRegion &region, POff root_off, HsitEntry *table,
           uint64_t capacity)
    : region_(&region), root_off_(root_off), table_(table),
      capacity_(capacity)
{
}

std::unique_ptr<Hsit>
Hsit::create(pmem::PmemRegion &region, pmem::PmemAllocator &alloc,
             uint64_t capacity)
{
    const POff root_off = alloc.alloc(sizeof(HsitRoot));
    PRISM_CHECK(root_off != kNullOff);
    const POff table_off = alloc.allocRaw(capacity * sizeof(HsitEntry));
    PRISM_CHECK(table_off != kNullOff && "NVM too small for HSIT");

    auto *table = region.as<HsitEntry>(table_off);
    std::memset(static_cast<void *>(table), 0, capacity * sizeof(HsitEntry));

    auto *root = region.as<HsitRoot>(root_off);
    root->capacity = capacity;
    root->table = table_off;
    root->magic = kMagic;
    region.persist(root, sizeof(*root));

    return std::unique_ptr<Hsit>(new Hsit(region, root_off, table,
                                          capacity));
}

std::unique_ptr<Hsit>
Hsit::attach(pmem::PmemRegion &region, POff root_off)
{
    auto *root = region.as<HsitRoot>(root_off);
    PRISM_CHECK(root != nullptr && root->magic == kMagic);
    auto *table = region.as<HsitEntry>(root->table);
    return std::unique_ptr<Hsit>(new Hsit(region, root_off, table,
                                          root->capacity));
}

uint64_t
Hsit::liveCount() const
{
    const uint64_t bumped = std::min(
        bump_.load(std::memory_order_relaxed), capacity_);
    return bumped - freed_count_.load(std::memory_order_relaxed);
}

uint64_t
Hsit::allocEntry()
{
    {
        std::lock_guard<SpinLock> lock(free_mu_);
        if (!free_list_.empty()) {
            const uint64_t idx = free_list_.back();
            free_list_.pop_back();
            freed_count_.fetch_sub(1, std::memory_order_relaxed);
            table_[idx].primary.store(0, std::memory_order_release);
            return idx;
        }
    }
    const uint64_t idx = bump_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
        bump_.fetch_sub(1, std::memory_order_relaxed);
        return kInvalidIndex;
    }
    table_[idx].primary.store(0, std::memory_order_release);
    return idx;
}

void
Hsit::freeEntryImmediate(uint64_t idx)
{
    table_[idx].svc.store(0, std::memory_order_release);
    std::lock_guard<SpinLock> lock(free_mu_);
    free_list_.push_back(idx);
    freed_count_.fetch_add(1, std::memory_order_relaxed);
}

void
Hsit::freeEntryDeferred(uint64_t idx, EpochManager &epochs)
{
    // Two-epoch grace period (§5.4): the first epoch bars new accessors,
    // the second drains in-flight ones.
    epochs.retire([this, idx] { freeEntryImmediate(idx); });
}

ValueAddr
Hsit::loadPrimary(uint64_t idx)
{
    region_->chargeRead(sizeof(HsitEntry));
    auto &e = table_[idx];
    uint64_t v = e.primary.load(std::memory_order_acquire);
    if (v & ValueAddr::kDirtyBit) {
        // Flush-on-read: persist the writer's pointer on its behalf, then
        // clear the dirty bit (either party may win the clearing CAS).
        region_->persist(&e.primary, sizeof(e.primary));
        e.primary.compare_exchange_strong(v, v & ~ValueAddr::kDirtyBit,
                                          std::memory_order_acq_rel);
        v &= ~ValueAddr::kDirtyBit;
    }
    return ValueAddr(v);
}

bool
Hsit::casPrimaryDurable(uint64_t idx, ValueAddr expected, ValueAddr desired)
{
    auto &e = table_[idx];
    uint64_t exp = expected.withoutDirty().raw();
    const uint64_t dirty_val = desired.withDirty().raw();
    if (!e.primary.compare_exchange_strong(exp, dirty_val,
                                           std::memory_order_acq_rel)) {
        return false;
    }
    // Persist while dirty, then clear. A concurrent flush-on-read may have
    // already cleared the bit — losing that CAS is fine.
    region_->persist(&e.primary, sizeof(e.primary));
    uint64_t d = dirty_val;
    e.primary.compare_exchange_strong(d, desired.withoutDirty().raw(),
                                      std::memory_order_acq_rel);
    return true;
}

void
Hsit::storePrimaryDurable(uint64_t idx, ValueAddr addr)
{
    auto &e = table_[idx];
    e.primary.store(addr.withoutDirty().raw(), std::memory_order_release);
    region_->persist(&e.primary, sizeof(e.primary));
}

void
Hsit::resetVolatile()
{
    for (uint64_t i = 0; i < capacity_; i++) {
        table_[i].svc.store(0, std::memory_order_relaxed);
        const uint64_t v = table_[i].primary.load(std::memory_order_relaxed);
        if (v & ValueAddr::kDirtyBit) {
            // A dirty bit that survived the crash was persisted but never
            // cleared; the pointer itself is durable, so just clean it.
            table_[i].primary.store(v & ~ValueAddr::kDirtyBit,
                                    std::memory_order_relaxed);
        }
    }
    region_->persist(table_, capacity_ * sizeof(HsitEntry));
}

void
Hsit::rebuildFreeList(const std::vector<bool> &reachable)
{
    PRISM_CHECK(reachable.size() == capacity_);
    std::lock_guard<SpinLock> lock(free_mu_);
    free_list_.clear();
    for (uint64_t i = 0; i < capacity_; i++) {
        if (!reachable[i]) {
            table_[i].primary.store(0, std::memory_order_relaxed);
            free_list_.push_back(i);
        }
    }
    bump_.store(capacity_, std::memory_order_relaxed);
    freed_count_.store(free_list_.size(), std::memory_order_relaxed);
}

}  // namespace prism::core
