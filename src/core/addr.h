/**
 * @file
 * Packed value-location encoding used in HSIT forward pointers.
 *
 * The paper packs an HSIT entry into 16 bytes: the value lives in either
 * the PWB (NVM) or Value Storage (SSD), plus an optional SVC copy. We
 * encode the PWB-or-VS location in one 64-bit word:
 *
 *   bit 63       dirty bit (flush-on-read durable-CAS protocol, §5.4)
 *   bit 62       location: 0 = PWB (NVM), 1 = Value Storage (SSD)
 *   bits 61..52  record size in 64-byte units (1..1023 => max ~64 KB)
 *   bits 51..46  SSD id (Value Storage only; 0 for PWB)
 *   bits 45..0   byte offset (NVM region offset, or byte address on SSD)
 *
 * Carrying the record size in the pointer lets a Value Storage read issue
 * exactly one right-sized I/O without first fetching metadata. The whole
 * word is 0 when the entry holds no value.
 */
#pragma once

#include <cstdint>

#include "common/logging.h"

namespace prism::core {

/** Packed value location (see file comment). */
class ValueAddr {
  public:
    static constexpr uint64_t kDirtyBit = 1ull << 63;
    static constexpr uint64_t kVsBit = 1ull << 62;
    static constexpr int kSizeShift = 52;
    static constexpr uint64_t kSizeMask = 0x3FF;    // 10 bits
    static constexpr int kSsdShift = 46;
    static constexpr uint64_t kSsdMask = 0x3F;      // 6 bits
    static constexpr uint64_t kOffsetMask = (1ull << 46) - 1;

    /** Granularity of the size field. */
    static constexpr uint64_t kSizeUnit = 64;
    /** Largest encodable record (header + value + padding). */
    static constexpr uint64_t kMaxRecordBytes = kSizeMask * kSizeUnit;

    ValueAddr() : raw_(0) {}
    explicit ValueAddr(uint64_t raw) : raw_(raw) {}

    /** Encode a PWB (NVM) location. @p record_bytes includes the header. */
    static ValueAddr
    pwb(uint64_t nvm_offset, uint64_t record_bytes)
    {
        return ValueAddr(encode(false, 0, nvm_offset, record_bytes));
    }

    /** Encode a Value Storage (SSD) location. */
    static ValueAddr
    vs(uint32_t ssd_id, uint64_t ssd_offset, uint64_t record_bytes)
    {
        return ValueAddr(encode(true, ssd_id, ssd_offset, record_bytes));
    }

    uint64_t raw() const { return raw_; }
    bool isNull() const { return (raw_ & ~kDirtyBit) == 0; }
    bool isDirty() const { return raw_ & kDirtyBit; }
    bool isVs() const { return raw_ & kVsBit; }
    bool isPwb() const { return !isNull() && !isVs(); }

    uint32_t ssdId() const {
        return static_cast<uint32_t>((raw_ >> kSsdShift) & kSsdMask);
    }
    uint64_t offset() const { return raw_ & kOffsetMask; }
    uint64_t recordBytes() const {
        return ((raw_ >> kSizeShift) & kSizeMask) * kSizeUnit;
    }

    ValueAddr withDirty() const { return ValueAddr(raw_ | kDirtyBit); }
    ValueAddr withoutDirty() const { return ValueAddr(raw_ & ~kDirtyBit); }

    bool operator==(const ValueAddr &o) const { return raw_ == o.raw_; }

  private:
    static uint64_t
    encode(bool is_vs, uint32_t ssd, uint64_t offset, uint64_t record_bytes)
    {
        PRISM_DCHECK(offset <= kOffsetMask);
        PRISM_DCHECK(ssd <= kSsdMask);
        PRISM_DCHECK(record_bytes % kSizeUnit == 0);
        PRISM_DCHECK(record_bytes > 0 && record_bytes <= kMaxRecordBytes);
        return (is_vs ? kVsBit : 0) |
               ((record_bytes / kSizeUnit) << kSizeShift) |
               (static_cast<uint64_t>(ssd) << kSsdShift) | offset;
    }

    uint64_t raw_;
};

/**
 * On-media record header preceding every value in the PWB and in Value
 * Storage chunks (§5.1: backward pointer + size). The key is carried
 * for scan-aware reorganisation; the CRC32C protects identity + payload
 * against torn or misdirected SSD reads.
 */
struct ValueRecordHeader {
    /** HSIT entry index this value belongs to (the backward pointer). */
    uint64_t backward;
    uint64_t key;
    uint32_t value_size;
    uint32_t flags;
    uint32_t crc;       ///< CRC32C over (backward, key, value_size, payload)
    uint32_t reserved;

    static constexpr uint32_t kFlagPad = 1;  ///< padding record, skip it
};

/** Compute the record checksum for @p hdr with @p payload bytes. */
uint32_t recordCrc(const ValueRecordHeader &hdr, const void *payload);

/** @return true when the stored checksum matches the record contents. */
inline bool
recordCrcOk(const ValueRecordHeader &hdr, const void *payload)
{
    return hdr.crc == recordCrc(hdr, payload);
}

/** Total on-media footprint of a record, 64-byte aligned. */
inline uint64_t
recordBytes(uint32_t value_size)
{
    const uint64_t raw = sizeof(ValueRecordHeader) + value_size;
    return (raw + ValueAddr::kSizeUnit - 1) & ~(ValueAddr::kSizeUnit - 1);
}

}  // namespace prism::core
