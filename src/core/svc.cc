#include "core/svc.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/trace.h"
#include "core/chunk_writer.h"

namespace prism::core {

Svc::Svc(Hsit &hsit, EpochManager &epochs,
         std::vector<ValueStorage *> targets, const PrismOptions &opts)
    : hsit_(hsit), epochs_(epochs), targets_(std::move(targets)),
      enabled_(opts.enable_svc), scan_reorg_(opts.enable_scan_reorg),
      capacity_(opts.svc_capacity_bytes)
{
    auto &reg = stats::StatsRegistry::global();
    reg_hits_ = &reg.counter("prism.svc.hits", "ops");
    reg_misses_ = &reg.counter("prism.svc.misses", "ops");
    reg_admissions_ = &reg.counter("prism.svc.admissions", "ops");
    reg_evictions_ = &reg.counter("prism.svc.evictions", "ops");
    reg_scan_reorgs_ = &reg.counter("prism.svc.scan_reorgs", "ops");
    reg_reorged_values_ = &reg.counter("prism.svc.reorged_values", "ops");
    manager_ = std::thread([this] { managerLoop(); });
}

Svc::~Svc()
{
    {
        std::lock_guard<prof::TimedMutex> lock(ev_mu_);
        stop_.store(true, std::memory_order_release);
    }
    ev_cv_.notify_all();
    manager_.join();
    // Drain straggler events in order (one swap, same as the manager),
    // then free the survivors; no application threads can remain at
    // destruction.
    std::deque<Event> batch;
    {
        std::lock_guard<prof::TimedMutex> lock(ev_mu_);
        events_.swap(batch);
    }
    for (auto &ev : batch)
        processEvent(ev);
    for (SvcEntry *e : admitted_) {
        hsit_.svcCas(e->hsit_idx, e, nullptr);
        operator delete(e);
    }
    admitted_.clear();
    epochs_.drain();  // run pending EBR deleters for retired entries
}

bool
Svc::lookup(uint64_t hsit_idx, uint64_t primary_raw, std::string *out)
{
    if (!enabled_)
        return false;
    PRISM_TRACE_SPAN("svc.lookup");
    auto *e = static_cast<SvcEntry *>(hsit_.svcLoad(hsit_idx));
    if (e == nullptr) {
        stats_.misses.fetch_add(1, std::memory_order_relaxed);
        reg_misses_->inc();
        return false;
    }
    // Staleness validation: the copy is authoritative only while the
    // forward pointer still names the record it was taken from.
    if (e->vs_raw.load(std::memory_order_acquire) != primary_raw) {
        stats_.misses.fetch_add(1, std::memory_order_relaxed);
        reg_misses_->inc();
        return false;
    }
    out->assign(reinterpret_cast<const char *>(e->data()), e->size);
    e->referenced.store(true, std::memory_order_relaxed);
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    reg_hits_->inc();
    return true;
}

void
Svc::admit(uint64_t hsit_idx, uint64_t key, ValueAddr vs_addr,
           const uint8_t *payload, uint32_t size)
{
    if (!enabled_)
        return;
    PRISM_TRACE_SPAN("svc.admit");
    auto *e = static_cast<SvcEntry *>(
        operator new(sizeof(SvcEntry) + size));
    new (e) SvcEntry();
    e->key = key;
    e->hsit_idx = hsit_idx;
    e->vs_raw.store(vs_addr.withoutDirty().raw(), std::memory_order_relaxed);
    e->size = size;
    std::memcpy(e->data(), payload, size);

    used_bytes_.fetch_add(e->footprint(), std::memory_order_relaxed);
    if (!hsit_.svcCas(hsit_idx, nullptr, e)) {
        // Raced with another admitter; nobody else saw this entry.
        used_bytes_.fetch_sub(e->footprint(), std::memory_order_relaxed);
        operator delete(e);
        return;
    }
    stats_.admissions.fetch_add(1, std::memory_order_relaxed);
    reg_admissions_->inc();
    {
        std::lock_guard<prof::TimedMutex> lock(ev_mu_);
        events_.push_back({EvType::kAdmit, e, {}});
    }
    ev_cv_.notify_one();
    // Post-publish re-validation: if the forward pointer moved while we
    // were publishing, retract the (possibly stale) copy. Whoever wins
    // the detach CAS enqueues the Remove; the background thread performs
    // the actual retirement.
    if (hsit_.entry(hsit_idx).primary.load(std::memory_order_acquire) !=
        e->vs_raw.load(std::memory_order_relaxed)) {
        if (hsit_.svcCas(hsit_idx, e, nullptr)) {
            {
                std::lock_guard<prof::TimedMutex> lock(ev_mu_);
                events_.push_back({EvType::kRemove, e, {}});
            }
            ev_cv_.notify_one();
        }
    }
}

void
Svc::invalidate(uint64_t hsit_idx)
{
    if (!enabled_)
        return;
    auto *e = static_cast<SvcEntry *>(hsit_.svcLoad(hsit_idx));
    if (e == nullptr)
        return;
    if (hsit_.svcCas(hsit_idx, e, nullptr)) {
        {
            std::lock_guard<prof::TimedMutex> lock(ev_mu_);
            events_.push_back({EvType::kRemove, e, {}});
        }
        ev_cv_.notify_one();
    }
}

void
Svc::noteScan(std::vector<uint64_t> hsit_indices)
{
    if (!enabled_ || !scan_reorg_ || hsit_indices.size() < 2)
        return;
    {
        std::lock_guard<prof::TimedMutex> lock(ev_mu_);
        events_.push_back({EvType::kScanChain, nullptr,
                           std::move(hsit_indices)});
    }
    ev_cv_.notify_one();
}

void
Svc::rebind(uint64_t hsit_idx, uint64_t old_raw, uint64_t new_raw)
{
    if (!enabled_)
        return;
    EpochGuard guard(epochs_);
    auto *e = static_cast<SvcEntry *>(hsit_.svcLoad(hsit_idx));
    if (e == nullptr)
        return;
    uint64_t expected = old_raw;
    e->vs_raw.compare_exchange_strong(expected, new_raw,
                                      std::memory_order_acq_rel);
}

void
Svc::drainForTest()
{
    // Two full passes: one may already have been in flight. Each poke
    // forces the manager through a round even with an empty queue.
    for (int pass = 0; pass < 2; pass++) {
        const uint64_t gen =
            drained_generation_.load(std::memory_order_acquire);
        {
            std::lock_guard<prof::TimedMutex> lock(ev_mu_);
            poke_ = true;
        }
        ev_cv_.notify_one();
        while (drained_generation_.load(std::memory_order_acquire) <=
               gen)
            std::this_thread::yield();
    }
}

void
Svc::Lru::pushFront(SvcEntry *e)
{
    e->prev = nullptr;
    e->next = head;
    if (head != nullptr)
        head->prev = e;
    head = e;
    if (tail == nullptr)
        tail = e;
    count++;
}

void
Svc::Lru::unlink(SvcEntry *e)
{
    if (e->prev != nullptr)
        e->prev->next = e->next;
    else
        head = e->next;
    if (e->next != nullptr)
        e->next->prev = e->prev;
    else
        tail = e->prev;
    e->prev = e->next = nullptr;
    count--;
}

Svc::SvcEntry *
Svc::Lru::popBack()
{
    SvcEntry *e = tail;
    if (e != nullptr)
        unlink(e);
    return e;
}

void
Svc::managerLoop()
{
    trace::TraceRegistry::global().setThreadName("svc-manager");
    std::deque<Event> batch;
    while (!stop_.load(std::memory_order_acquire)) {
        batch.clear();
        {
            // Event-driven: sleep until a producer enqueues (or a
            // drainForTest poke / shutdown). The timed fallback only
            // bounds epoch-advance staleness — an idle SVC costs ~20
            // wakeups/s instead of the 20 kHz a fixed poll would burn,
            // which matters when a shard router runs one manager per
            // shard on a small machine.
            std::unique_lock<prof::TimedMutex> lock(ev_mu_);
            ev_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
                return stop_.load(std::memory_order_acquire) ||
                       !events_.empty() || poke_;
            });
            poke_ = false;
            // Swap-drain: take the whole queue in O(1) under one lock
            // acquisition instead of popping elements while producers
            // (put/get/scan threads) contend for the mutex.
            events_.swap(batch);
        }
        for (auto &ev : batch)
            processEvent(ev);
        balance();
        epochs_.tryAdvance();
        drained_generation_.fetch_add(1, std::memory_order_release);
    }
}

void
Svc::processEvent(Event &ev)
{
    switch (ev.type) {
      case EvType::kAdmit: {
        SvcEntry *e = ev.entry;
        if (pending_remove_.erase(e) > 0) {
            // Its Remove arrived first (the entry was detached before we
            // got here); retire it now that both events are accounted.
            retireEntry(e);
            return;
        }
        admitted_.insert(e);
        // First touch goes to the inactive list (2Q admission, Fig. 3-1).
        inactive_.pushFront(e);
        e->in_lru = true;
        e->in_active = false;
        return;
      }
      case EvType::kRemove: {
        SvcEntry *e = ev.entry;
        if (admitted_.erase(e) > 0) {
            retireEntry(e);
        } else {
            // Admit not yet processed; defer until it arrives.
            pending_remove_.insert(e);
        }
        return;
      }
      case EvType::kScanChain: {
        // Link the (still-cached) members of one scan into a chain.
        SvcEntry *prev = nullptr;
        for (uint64_t idx : ev.chain) {
            auto *e = static_cast<SvcEntry *>(hsit_.svcLoad(idx));
            if (e == nullptr || e->evicted || !e->in_lru)
                continue;
            unlinkScan(e);
            if (prev != nullptr) {
                prev->scan_next = e;
                e->scan_prev = prev;
            }
            prev = e;
        }
        return;
      }
    }
}

void
Svc::balance()
{
    // Demote from the active tail when the active list dominates
    // (Fig. 3-3), and evict from the inactive tail over capacity
    // (Fig. 3-4).
    while (active_.count > 2 * inactive_.count + 8) {
        SvcEntry *e = active_.popBack();
        if (e == nullptr)
            break;
        e->in_active = false;
        e->referenced.store(false, std::memory_order_relaxed);
        inactive_.pushFront(e);
    }
    int guard = 4096;
    while (used_bytes_.load(std::memory_order_relaxed) > capacity_ &&
           guard-- > 0) {
        evictOne();
        if (active_.count == 0 && inactive_.count == 0)
            break;
    }
}

void
Svc::evictOne()
{
    PRISM_TRACE_SPAN("svc.evict");
    SvcEntry *e = inactive_.popBack();
    if (e == nullptr) {
        e = active_.popBack();
        if (e == nullptr)
            return;
        e->in_active = false;
    }
    e->in_lru = false;
    if (e->referenced.exchange(false, std::memory_order_relaxed) &&
        !e->in_active) {
        // Second access observed: promote instead of evicting
        // (Fig. 3-2).
        e->in_active = true;
        e->in_lru = true;
        active_.pushFront(e);
        return;
    }
    if (scan_reorg_ && (e->scan_prev != nullptr || e->scan_next != nullptr))
        reorganizeChain(e);

    // Logical deletion first (disconnect from HSIT), physical free after
    // the epoch grace period (§4.4). If the detach CAS loses, another
    // thread already detached the entry and its Remove event will retire
    // it; we must not free it twice.
    if (hsit_.svcCas(e->hsit_idx, e, nullptr)) {
        admitted_.erase(e);
        retireEntry(e);
    }
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    reg_evictions_->inc();
}

void
Svc::unlinkScan(SvcEntry *e)
{
    if (e->scan_prev != nullptr)
        e->scan_prev->scan_next = e->scan_next;
    if (e->scan_next != nullptr)
        e->scan_next->scan_prev = e->scan_prev;
    e->scan_prev = e->scan_next = nullptr;
}

void
Svc::reorganizeChain(SvcEntry *evictee)
{
    PRISM_TRACE_SPAN("svc.reorg");
    // Walk the doubly-linked chain formed at scan time (no extra lookup
    // needed, §4.4), collect the members, and rewrite them sorted into a
    // fresh chunk so the range becomes one sequential read.
    std::vector<SvcEntry *> chain;
    for (SvcEntry *e = evictee; e != nullptr; e = e->scan_prev)
        chain.push_back(e);
    std::reverse(chain.begin(), chain.end());
    for (SvcEntry *e = evictee->scan_next; e != nullptr; e = e->scan_next)
        chain.push_back(e);

    struct Item {
        SvcEntry *e;
        ValueAddr old_addr;
    };
    std::vector<Item> items;
    for (SvcEntry *e : chain) {
        unlinkScan(e);
        const ValueAddr addr(e->vs_raw.load(std::memory_order_acquire));
        // Only values that still live on SSD participate; a member whose
        // value moved back to the PWB is skipped.
        if (!addr.isVs())
            continue;
        if (hsit_.entry(e->hsit_idx).primary.load(
                std::memory_order_acquire) != addr.raw())
            continue;  // superseded meanwhile
        items.push_back({e, addr});
    }
    if (items.size() < 2)
        return;

    std::sort(items.begin(), items.end(), [](const Item &a, const Item &b) {
        return a.e->key < b.e->key;
    });

    ChunkWriter writer(targets_);
    std::vector<ValueAddr> new_addrs;
    new_addrs.reserve(items.size());
    for (const auto &it : items) {
        const ValueAddr a = writer.add(it.e->hsit_idx, it.e->key,
                                       it.e->data(), it.e->size);
        if (a.isNull())
            return;  // Value Storage full; skip the optimisation
        new_addrs.push_back(a);
    }
    if (!writer.finish().isOk())
        return;

    auto vs_by_id = [this](uint32_t id) -> ValueStorage * {
        for (ValueStorage *vs : targets_) {
            if (vs->ssdId() == id)
                return vs;
        }
        return targets_[0];
    };

    // Pre-mark the copies live so a concurrent GC pass cannot judge the
    // destination chunk empty before the CASes land.
    for (size_t i = 0; i < items.size(); i++) {
        vs_by_id(new_addrs[i].ssdId())
            ->setValid(new_addrs[i].offset(), new_addrs[i].recordBytes());
    }
    writer.settleAll();
    size_t moved = 0;
    for (size_t i = 0; i < items.size(); i++) {
        const auto &it = items[i];
        if (hsit_.casPrimaryDurable(it.e->hsit_idx, it.old_addr,
                                    new_addrs[i])) {
            vs_by_id(it.old_addr.ssdId())
                ->clearValid(it.old_addr.offset(),
                             it.old_addr.recordBytes());
            it.e->vs_raw.store(new_addrs[i].withoutDirty().raw(),
                               std::memory_order_release);
            moved++;
        } else {
            vs_by_id(new_addrs[i].ssdId())
                ->clearValid(new_addrs[i].offset(),
                             new_addrs[i].recordBytes());
        }
    }
    stats_.scan_reorgs.fetch_add(1, std::memory_order_relaxed);
    stats_.reorged_values.fetch_add(moved, std::memory_order_relaxed);
    reg_scan_reorgs_->inc();
    reg_reorged_values_->add(moved);
}

void
Svc::retireEntry(SvcEntry *e)
{
    if (e->evicted)
        return;
    if (e->in_lru) {
        (e->in_active ? active_ : inactive_).unlink(e);
        e->in_lru = false;
    }
    unlinkScan(e);
    e->evicted = true;
    used_bytes_.fetch_sub(e->footprint(), std::memory_order_relaxed);
    epochs_.retire([e] { operator delete(e); });
}

}  // namespace prism::core
