/**
 * @file
 * YCSB workload generation (Table 2 of the paper) plus the synthetic
 * Nutanix production mix of §7.5.
 *
 * Key space: logical item i maps to store key hash64(i), matching
 * YCSB's hashed user keys — the load phase therefore inserts in random
 * key order, and scans traverse the hashed key space. Request
 * popularity uses the standard YCSB generators (scrambled Zipfian,
 * latest, uniform).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rand.h"

namespace prism::ycsb {

/** Operation kinds issued by the driver. */
enum class OpType : uint8_t { kInsert, kUpdate, kRead, kScan };

/** One generated request. */
struct Op {
    OpType type;
    uint64_t key;
    uint32_t scan_len;
};

/** Named workload mixes. */
enum class Mix {
    kLoad,    ///< 100% inserts
    kA,       ///< 50% update / 50% read
    kB,       ///< 5% update / 95% read
    kC,       ///< 100% read
    kD,       ///<  5% insert / 95% read-latest
    kE,       ///<  5% update / 95% scan (avg length 50)
    kNutanix, ///< 57% update / 41% read / 2% scan (§7.5)
    kUpdateOnly, ///< 100% updates (the WAF experiment, Fig. 12)
};

const char *mixName(Mix mix);

/** Distribution of request popularity. */
enum class Dist { kZipfian, kUniform, kLatest };

/** Full workload description. */
struct WorkloadSpec {
    Mix mix = Mix::kC;
    uint64_t record_count = 1000000;   ///< loaded before the run
    uint64_t operation_count = 1000000;
    double zipf_theta = 0.99;
    Dist dist = Dist::kZipfian;
    uint32_t value_bytes = 1024;
    uint32_t scan_len_avg = 50;        ///< YCSB-E average

    static WorkloadSpec forMix(Mix mix, uint64_t records, uint64_t ops,
                               double theta = 0.99);
};

/**
 * Per-thread request generator. Not thread-safe; create one per driver
 * thread with a distinct seed.
 */
class OpGenerator {
  public:
    OpGenerator(const WorkloadSpec &spec, uint64_t seed);

    /** @return the next request. */
    Op next();

    /** Store key of logical item @p i. */
    static uint64_t keyOf(uint64_t i) { return hash64(i); }

    /** Fill @p buf with @p bytes of deterministic value payload. */
    static void fillValue(uint64_t key, uint32_t bytes, std::string *buf);

  private:
    uint64_t pickItem();

    const WorkloadSpec spec_;
    Xorshift rng_;
    std::unique_ptr<ScrambledZipfian> zipf_;
    std::unique_ptr<LatestGenerator> latest_;
    uint64_t insert_cursor_;  ///< next fresh item id (D / LOAD)
};

}  // namespace prism::ycsb
