#include "ycsb/driver.h"

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/trace.h"

namespace prism::ycsb {

RunResult
loadPhase(KvStore &store, const WorkloadSpec &spec, int threads)
{
    RunResult result;
    std::vector<Histogram> hists(static_cast<size_t>(threads));
    std::vector<std::thread> pool;
    const uint64_t per_thread =
        (spec.record_count + threads - 1) / static_cast<uint64_t>(threads);

    const uint64_t t0 = nowNs();
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            trace::TraceRegistry::global().setThreadName(
                "ycsb-load-" + std::to_string(t));
            const uint64_t lo = static_cast<uint64_t>(t) * per_thread;
            const uint64_t hi =
                std::min<uint64_t>(lo + per_thread, spec.record_count);
            std::string value;
            for (uint64_t i = lo; i < hi; i++) {
                const uint64_t key = OpGenerator::keyOf(i);
                OpGenerator::fillValue(key, spec.value_bytes, &value);
                const uint64_t s = nowNs();
                const Status st = store.put(key, value);
                hists[static_cast<size_t>(t)].record(nowNs() - s);
                PRISM_CHECK(st.isOk());
            }
        });
    }
    for (auto &th : pool)
        th.join();
    result.duration_ns = nowNs() - t0;
    result.ops = spec.record_count;
    for (const auto &h : hists) {
        result.overall.merge(h);
        result.writes.merge(h);
    }
    // Fold into the registry off the hot path (one merge per phase).
    stats::StatsRegistry::global()
        .histogram("ycsb.load.latency_ns", "ns")
        .mergeFrom(result.overall);
    return result;
}

RunResult
runPhase(KvStore &store, const WorkloadSpec &spec, int threads,
         uint64_t timeline_window_ms)
{
    RunResult result;
    struct ThreadState {
        Histogram overall, reads, writes, scans;
    };
    std::vector<ThreadState> states(static_cast<size_t>(threads));
    std::atomic<uint64_t> completed{0};
    std::atomic<bool> done{false};

    std::thread sampler;
    if (timeline_window_ms != 0) {
        sampler = std::thread([&] {
            const uint64_t start = nowNs();
            uint64_t last_ops = 0;
            uint64_t last_t = start;
            while (!done.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(timeline_window_ms));
                const uint64_t now = nowNs();
                const uint64_t ops = completed.load(
                    std::memory_order_relaxed);
                const double window_s =
                    static_cast<double>(now - last_t) / 1e9;
                result.timeline.emplace_back(
                    static_cast<double>(now - start) / 1e9,
                    static_cast<double>(ops - last_ops) / window_s);
                last_ops = ops;
                last_t = now;
            }
        });
    }

    std::vector<std::thread> pool;
    const uint64_t per_thread = spec.operation_count /
                                static_cast<uint64_t>(threads);
    const uint64_t t0 = nowNs();
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            trace::TraceRegistry::global().setThreadName(
                "ycsb-client-" + std::to_string(t));
            OpGenerator gen(spec, static_cast<uint64_t>(t));
            ThreadState &st = states[static_cast<size_t>(t)];
            std::string value;
            std::vector<std::pair<uint64_t, std::string>> scan_out;
            for (uint64_t i = 0; i < per_thread; i++) {
                const Op op = gen.next();
                const uint64_t s = nowNs();
                switch (op.type) {
                  case OpType::kInsert:
                  case OpType::kUpdate: {
                    OpGenerator::fillValue(op.key, spec.value_bytes,
                                           &value);
                    store.put(op.key, value);
                    const uint64_t d = nowNs() - s;
                    st.overall.record(d);
                    st.writes.record(d);
                    break;
                  }
                  case OpType::kRead: {
                    store.get(op.key, &value);
                    const uint64_t d = nowNs() - s;
                    st.overall.record(d);
                    st.reads.record(d);
                    break;
                  }
                  case OpType::kScan: {
                    store.scan(op.key, op.scan_len, &scan_out);
                    const uint64_t d = nowNs() - s;
                    st.overall.record(d);
                    st.scans.record(d);
                    break;
                  }
                }
                completed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    result.duration_ns = nowNs() - t0;
    done.store(true, std::memory_order_release);
    if (sampler.joinable())
        sampler.join();

    for (const auto &st : states) {
        result.overall.merge(st.overall);
        result.reads.merge(st.reads);
        result.writes.merge(st.writes);
        result.scans.merge(st.scans);
    }
    result.ops = result.overall.count();

    // Fold into the registry off the hot path (one merge per phase).
    auto &reg = stats::StatsRegistry::global();
    reg.histogram("ycsb.run.latency_ns", "ns").mergeFrom(result.overall);
    reg.histogram("ycsb.run.read_latency_ns", "ns").mergeFrom(result.reads);
    reg.histogram("ycsb.run.write_latency_ns", "ns")
        .mergeFrom(result.writes);
    reg.histogram("ycsb.run.scan_latency_ns", "ns").mergeFrom(result.scans);
    return result;
}

}  // namespace prism::ycsb
