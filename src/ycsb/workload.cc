#include "ycsb/workload.h"

#include "common/logging.h"

namespace prism::ycsb {

const char *
mixName(Mix mix)
{
    switch (mix) {
      case Mix::kLoad: return "LOAD";
      case Mix::kA: return "YCSB-A";
      case Mix::kB: return "YCSB-B";
      case Mix::kC: return "YCSB-C";
      case Mix::kD: return "YCSB-D";
      case Mix::kE: return "YCSB-E";
      case Mix::kNutanix: return "Nutanix";
      case Mix::kUpdateOnly: return "UPDATE";
    }
    return "?";
}

WorkloadSpec
WorkloadSpec::forMix(Mix mix, uint64_t records, uint64_t ops, double theta)
{
    WorkloadSpec spec;
    spec.mix = mix;
    spec.record_count = records;
    spec.operation_count = ops;
    spec.zipf_theta = theta;
    if (mix == Mix::kD)
        spec.dist = Dist::kLatest;
    return spec;
}

OpGenerator::OpGenerator(const WorkloadSpec &spec, uint64_t seed)
    : spec_(spec), rng_(seed * 0x9e3779b97f4a7c15ull + 1),
      // Fresh inserts (LOAD tail / workload D) use a per-thread id range
      // so concurrent generators never collide.
      insert_cursor_(spec.record_count + seed * (1ull << 40))
{
    PRISM_CHECK(spec.record_count > 0);
    if (spec_.dist == Dist::kZipfian) {
        zipf_ = std::make_unique<ScrambledZipfian>(
            spec.record_count, spec.zipf_theta, seed + 7);
    } else if (spec_.dist == Dist::kLatest) {
        latest_ = std::make_unique<LatestGenerator>(
            spec.record_count, spec.zipf_theta, seed + 7);
    }
}

uint64_t
OpGenerator::pickItem()
{
    switch (spec_.dist) {
      case Dist::kZipfian: return zipf_->next();
      case Dist::kLatest: return latest_->next();
      case Dist::kUniform: return rng_.nextUniform(spec_.record_count);
    }
    return 0;
}

Op
OpGenerator::next()
{
    Op op{};
    op.scan_len = 0;
    const double p = rng_.nextDouble();

    switch (spec_.mix) {
      case Mix::kLoad:
        op.type = OpType::kInsert;
        op.key = keyOf(insert_cursor_++);
        return op;
      case Mix::kA:
        op.type = p < 0.5 ? OpType::kUpdate : OpType::kRead;
        break;
      case Mix::kB:
        op.type = p < 0.05 ? OpType::kUpdate : OpType::kRead;
        break;
      case Mix::kC:
        op.type = OpType::kRead;
        break;
      case Mix::kUpdateOnly:
        op.type = OpType::kUpdate;
        break;
      case Mix::kD:
        if (p < 0.05) {
            op.type = OpType::kInsert;
            op.key = keyOf(insert_cursor_++);
            if (latest_)
                latest_->advance();
            return op;
        }
        op.type = OpType::kRead;
        break;
      case Mix::kE:
        if (p < 0.05) {
            op.type = OpType::kUpdate;
        } else {
            op.type = OpType::kScan;
            // Uniform 1..2*avg-1, as in the YCSB reference generator.
            op.scan_len = static_cast<uint32_t>(
                1 + rng_.nextUniform(2 * spec_.scan_len_avg - 1));
        }
        break;
      case Mix::kNutanix:
        if (p < 0.57) {
            op.type = OpType::kUpdate;
        } else if (p < 0.98) {
            op.type = OpType::kRead;
        } else {
            op.type = OpType::kScan;
            op.scan_len = static_cast<uint32_t>(
                1 + rng_.nextUniform(2 * spec_.scan_len_avg - 1));
        }
        break;
    }
    op.key = keyOf(pickItem());
    return op;
}

void
OpGenerator::fillValue(uint64_t key, uint32_t bytes, std::string *buf)
{
    buf->resize(bytes);
    // Cheap deterministic pattern; verifiable and incompressible enough.
    uint64_t x = hash64(key);
    for (uint32_t i = 0; i < bytes; i += 8) {
        x = hash64(x);
        const uint32_t n = std::min<uint32_t>(8, bytes - i);
        for (uint32_t b = 0; b < n; b++)
            (*buf)[i + b] = static_cast<char>(x >> (b * 8));
    }
}

}  // namespace prism::ycsb
