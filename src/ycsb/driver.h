/**
 * @file
 * Threaded YCSB driver: load phase, timed run phase, latency capture,
 * and an optional throughput timeline (for the GC-impact figure).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "ycsb/kv_interface.h"
#include "ycsb/workload.h"

namespace prism::ycsb {

/** Outcome of one driver phase. */
struct RunResult {
    uint64_t ops = 0;
    uint64_t duration_ns = 0;
    Histogram overall;   ///< latency of every operation (ns)
    Histogram reads;
    Histogram writes;
    Histogram scans;
    /** (seconds since start, ops/s in that window); when sampled. */
    std::vector<std::pair<double, double>> timeline;

    double
    throughput() const
    {
        return duration_ns == 0
                   ? 0.0
                   : static_cast<double>(ops) * 1e9 /
                         static_cast<double>(duration_ns);
    }
};

/** Insert spec.record_count items across @p threads threads. */
RunResult loadPhase(KvStore &store, const WorkloadSpec &spec, int threads);

/**
 * Execute spec.operation_count requests across @p threads threads.
 * @param timeline_window_ms when non-zero, sample a throughput timeline
 *        at this granularity.
 */
RunResult runPhase(KvStore &store, const WorkloadSpec &spec, int threads,
                   uint64_t timeline_window_ms = 0);

}  // namespace prism::ycsb
