#include "ycsb/stores.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/device_profile.h"

namespace prism::ycsb {

namespace {

std::vector<std::shared_ptr<sim::SsdDevice>>
makeSsds(const FixtureOptions &fx)
{
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds;
    for (int i = 0; i < fx.num_ssds; i++) {
        ssds.push_back(std::make_shared<sim::SsdDevice>(
            fx.ssd_bytes, fx.ssd_profile, fx.model_timing));
    }
    return ssds;
}

}  // namespace

// ---------------------------------------------------------------------------
// Prism

PrismStore::PrismStore(const FixtureOptions &fx, core::PrismOptions opts)
{
    shards_ = core::ShardRouter::resolveShardCount(opts.shards);
    opts.shards = shards_;
    const auto n = static_cast<uint64_t>(shards_);
    // Cost parity across shard counts: every budget below is the
    // whole-store Table 1 figure divided by N (floored so tiny
    // fixtures stay usable), so `--shards=4` does not buy 4x the DRAM
    // or NVM of the unsharded store it is compared against.
    const uint64_t shard_dataset =
        std::max<uint64_t>(fx.dataset_bytes / n, 1 << 20);

    // NVM budget (Table 1): the write buffer fraction, split into
    // per-thread PWBs, plus index/HSIT headroom.
    const uint64_t pwb_total =
        std::max<uint64_t>(shard_dataset * 16 / 100, 16 << 20);
    if (fx.derive_prism_budgets) {
        opts.pwb_size_bytes = std::max<uint64_t>(
            pwb_total /
                static_cast<uint64_t>(std::max(1, fx.expected_threads)),
            2 << 20);
        opts.svc_capacity_bytes =
            std::max<uint64_t>(shard_dataset * 20 / 100, 16 << 20);
    }
    // HSIT entries are preallocated (32 B each); a shard holds ~1/N of
    // the keys, with 25% slack for hash imbalance.
    if (shards_ > 1)
        opts.hsit_capacity = std::max<uint64_t>(
            opts.hsit_capacity * 5 / (4 * n), 64 * 1024);

    // Each region must also hold its key index and HSIT; size
    // generously.
    const uint64_t index_floor =
        shards_ > 1 ? std::max<uint64_t>((128u << 20) / n, 32u << 20)
                    : (128u << 20);
    const uint64_t nvm_bytes =
        std::max(pwb_total, opts.pwb_size_bytes *
                                static_cast<uint64_t>(
                                    fx.expected_threads)) +
        opts.pwb_size_bytes * 4 + opts.hsit_capacity * 32 +
        std::max<uint64_t>(shard_dataset / 4, index_floor);

    // Device fleet: every shard owns its devices exclusively (each
    // ValueStorage owns one device), so the fleet is split N ways. When
    // there are fewer configured SSDs than shards, each shard still
    // needs >= 1 device; per-device capacity is scaled so the aggregate
    // raw capacity matches the unsharded fixture.
    const int total_devs = std::max(fx.num_ssds, shards_);
    const uint64_t dev_bytes = std::max<uint64_t>(
        fx.ssd_bytes * static_cast<uint64_t>(fx.num_ssds) /
            static_cast<uint64_t>(total_devs),
        opts.chunk_bytes * 64);
    // Background pool sizing follows the options.h guidance: near
    // min(#client threads, #SSDs). Workers spend most of their time
    // blocked on chunk writes, so a larger fleet needs more in-flight
    // slots or reclaim passes queue behind I/O waits (visible as put
    // stalls); with the stock 4-device fixture this stays at the
    // PrismOptions default of 4.
    opts.bg_workers = std::max(
        opts.bg_workers, std::min(fx.expected_threads, total_devs));

    // Device selection (docs/IO_BACKENDS.md): the simulator by default;
    // "posix"/"uring"/"auto" run Prism's Value Storage against real
    // files instead. Only Prism is switchable — the baselines keep the
    // simulator (they depend on its snapshot/crash hooks).
    const io::IoBackendKind kind =
        io::resolveBackendKind(opts.io_backend);
    if (kind == io::IoBackendKind::kSim) {
        for (int i = 0; i < total_devs; i++)
            ssds_.push_back(std::make_shared<sim::SsdDevice>(
                dev_bytes, fx.ssd_profile, fx.model_timing));
        devices_ = core::PrismDb::asBackends(ssds_);
    } else {
        devices_ = io::createFileBackendSet(
            kind, io::resolveBackendDir(opts.io_backend_dir), total_devs,
            dev_bytes);
    }
    // Contiguous split: shard i gets devices [i*D/N, (i+1)*D/N).
    shard_devices_.resize(static_cast<size_t>(shards_));
    for (int i = 0; i < shards_; i++) {
        const size_t lo = static_cast<size_t>(i) *
                          devices_.size() / static_cast<size_t>(shards_);
        const size_t hi = static_cast<size_t>(i + 1) *
                          devices_.size() / static_cast<size_t>(shards_);
        shard_devices_[static_cast<size_t>(i)].assign(
            devices_.begin() + static_cast<long>(lo),
            devices_.begin() + static_cast<long>(hi));
    }

    for (int i = 0; i < shards_; i++) {
        nvms_.push_back(std::make_shared<sim::NvmDevice>(
            nvm_bytes, sim::kOptaneDcpmmProfile, fx.model_timing));
        regions_.push_back(
            std::make_shared<pmem::PmemRegion>(nvms_.back(),
                                               /*format=*/true));
    }
    router_ = core::ShardRouter::open(opts, shardBackends());
}

std::vector<core::ShardBackends>
PrismStore::shardBackends() const
{
    std::vector<core::ShardBackends> backends;
    backends.reserve(static_cast<size_t>(shards_));
    for (int i = 0; i < shards_; i++)
        backends.push_back({regions_[static_cast<size_t>(i)],
                            shard_devices_[static_cast<size_t>(i)]});
    return backends;
}

uint64_t
PrismStore::crashAndRecover(const core::PrismOptions &opts)
{
    core::PrismOptions ro = opts;
    ro.shards = shards_;
    router_.reset();  // abrupt-enough teardown; NVM + SSD persist
    router_ = core::ShardRouter::recover(ro, shardBackends());
    return router_->recoveryTimeNs();
}

// ---------------------------------------------------------------------------
// KVell

KvellStore::KvellStore(const FixtureOptions &fx, kvell::KvellOptions opts)
{
    opts.page_cache_bytes =
        std::max<uint64_t>(fx.dataset_bytes * 32 / 100, 16 << 20);
    ssds_ = makeSsds(fx);
    db_ = std::make_unique<kvell::Kvell>(opts, ssds_);
}

// ---------------------------------------------------------------------------
// LSM flavors

LsmStore::LsmStore(const FixtureOptions &fx, LsmFlavor flavor,
                   lsm::LsmOptions opts)
    : flavor_(flavor)
{
    opts.block_cache_bytes =
        std::max<uint64_t>(fx.dataset_bytes * 26 / 100, 16 << 20);
    // Keep the LSM's structural sizes proportional to the (scaled-down)
    // dataset so flush/compaction pressure matches the paper's ratios:
    // a RocksDB memtable is ~0.1% of a 100 GB dataset, not 10%.
    opts.memtable_bytes = std::clamp<uint64_t>(fx.dataset_bytes / 128,
                                               1 << 20, 8 << 20);
    opts.level1_bytes = std::clamp<uint64_t>(fx.dataset_bytes / 8,
                                             8 << 20, 256 << 20);
    opts.table_bytes = 2 << 20;
    opts.wal_bytes = opts.memtable_bytes * 8;

    std::shared_ptr<lsm::ExtentStore> table_store;
    std::shared_ptr<lsm::ExtentStore> l0_store;
    std::shared_ptr<lsm::ExtentStore> wal_store;

    switch (flavor) {
      case LsmFlavor::kRocksDbSsd: {
        ssds_ = makeSsds(fx);
        array_ = std::make_shared<sim::SsdArray>(ssds_);
        table_store = std::make_shared<lsm::ExtentStore>(array_);
        l0_store = table_store;
        wal_store = table_store;
        break;
      }
      case LsmFlavor::kRocksDbNvm: {
        // Everything on NVM: the reference point of §7.1 whose storage
        // cost far exceeds Prism's.
        nvm_ = std::make_shared<sim::NvmDevice>(
            std::max<uint64_t>(4 * fx.dataset_bytes, 512 << 20),
            sim::kOptaneDcpmmProfile, fx.model_timing);
        table_store = std::make_shared<lsm::ExtentStore>(nvm_);
        l0_store = table_store;
        wal_store = table_store;
        break;
      }
      case LsmFlavor::kMatrixKv: {
        ssds_ = makeSsds(fx);
        array_ = std::make_shared<sim::SsdArray>(ssds_);
        table_store = std::make_shared<lsm::ExtentStore>(array_);
        // NVM L0 ("matrix container") + WAL: 8% of dataset (Table 1),
        // plus room for the WAL and in-flight flushes.
        opts.l0_partitions = 16;  // matrix container columns
        opts.l0_limit = static_cast<int>(std::clamp<uint64_t>(
            fx.dataset_bytes * 8 / 100 / opts.memtable_bytes, 4, 32));
        opts.l0_stall_limit = opts.l0_limit * 3 / 2;
        const uint64_t l0_budget =
            static_cast<uint64_t>(opts.l0_stall_limit + 4) *
                opts.memtable_bytes + opts.wal_bytes;
        nvm_ = std::make_shared<sim::NvmDevice>(
            std::max<uint64_t>(fx.dataset_bytes * 8 / 100, l0_budget * 2),
            sim::kOptaneDcpmmProfile, fx.model_timing);
        l0_store = std::make_shared<lsm::ExtentStore>(nvm_);
        wal_store = l0_store;
        break;
      }
    }
    db_ = std::make_unique<lsm::LsmTree>(opts, table_store, l0_store,
                                         wal_store);
}

std::string
LsmStore::name() const
{
    switch (flavor_) {
      case LsmFlavor::kRocksDbSsd: return "RocksDB";
      case LsmFlavor::kRocksDbNvm: return "RocksDB-NVM";
      case LsmFlavor::kMatrixKv: return "MatrixKV";
    }
    return "LSM";
}

// ---------------------------------------------------------------------------
// SLM-DB

SlmDbStore::SlmDbStore(const FixtureOptions &fx, lsm::SlmDbOptions opts)
{
    ssds_ = makeSsds(fx);
    array_ = std::make_shared<sim::SsdArray>(ssds_);
    auto table_store = std::make_shared<lsm::ExtentStore>(array_);
    nvm_ = std::make_shared<sim::NvmDevice>(
        std::max<uint64_t>(fx.dataset_bytes / 8, 128 << 20),
        sim::kOptaneDcpmmProfile, fx.model_timing);
    auto nvm_store = std::make_shared<lsm::ExtentStore>(nvm_);
    db_ = std::make_unique<lsm::SlmDb>(opts, table_store, nvm_store);
}

}  // namespace prism::ycsb
