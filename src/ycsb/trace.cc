#include "ycsb/trace.h"

#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"

namespace prism::ycsb {

namespace {

constexpr uint64_t kTraceMagic = 0x5052534D54524345ull;  // "PRSMTRCE"

struct TraceHeader {
    uint64_t magic;
    uint64_t count;
    uint32_t value_bytes;
    uint32_t pad;
};

struct TraceRecord {
    uint32_t type;
    uint32_t scan_len;
    uint64_t key;
};

}  // namespace

TraceWriter::TraceWriter(const std::string &path, uint32_t value_bytes)
    : file_(std::fopen(path.c_str(), "wb")), value_bytes_(value_bytes)
{
    if (file_ == nullptr)
        return;
    TraceHeader hdr{kTraceMagic, 0, value_bytes_, 0};
    std::fwrite(&hdr, sizeof(hdr), 1, file_);
}

TraceWriter::~TraceWriter()
{
    (void)close();
}

void
TraceWriter::append(const Op &op)
{
    PRISM_DCHECK(file_ != nullptr);
    const TraceRecord rec{static_cast<uint32_t>(op.type), op.scan_len,
                          op.key};
    std::fwrite(&rec, sizeof(rec), 1, file_);
    count_++;
}

Status
TraceWriter::close()
{
    if (file_ == nullptr)
        return Status::ok();
    // Patch the record count into the header.
    TraceHeader hdr{kTraceMagic, count_, value_bytes_, 0};
    std::fseek(file_, 0, SEEK_SET);
    std::fwrite(&hdr, sizeof(hdr), 1, file_);
    const int rc = std::fclose(file_);
    file_ = nullptr;
    return rc == 0 ? Status::ok() : Status::ioError("trace close");
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (file_ == nullptr)
        return;
    TraceHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1 ||
        hdr.magic != kTraceMagic) {
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    count_ = hdr.count;
    value_bytes_ = hdr.value_bytes;
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::next(Op *op)
{
    if (file_ == nullptr || read_ >= count_)
        return false;
    TraceRecord rec{};
    if (std::fread(&rec, sizeof(rec), 1, file_) != 1)
        return false;
    op->type = static_cast<OpType>(rec.type);
    op->scan_len = rec.scan_len;
    op->key = rec.key;
    read_++;
    return true;
}

void
TraceReader::reset()
{
    if (file_ == nullptr)
        return;
    std::fseek(file_, sizeof(TraceHeader), SEEK_SET);
    read_ = 0;
}

uint64_t
generateTrace(const WorkloadSpec &spec, uint64_t seed,
              const std::string &path)
{
    TraceWriter writer(path, spec.value_bytes);
    if (!writer.ok())
        return 0;
    OpGenerator gen(spec, seed);
    for (uint64_t i = 0; i < spec.operation_count; i++)
        writer.append(gen.next());
    const uint64_t n = writer.count();
    return writer.close().isOk() ? n : 0;
}

RunResult
replayTrace(KvStore &store, const std::string &path, int threads)
{
    RunResult result;
    TraceReader reader(path);
    if (!reader.ok())
        return result;

    // Materialize and stripe the records across the replay threads.
    std::vector<Op> ops;
    ops.reserve(reader.count());
    Op op;
    while (reader.next(&op))
        ops.push_back(op);

    struct ThreadState {
        Histogram overall, reads, writes, scans;
    };
    std::vector<ThreadState> states(static_cast<size_t>(threads));
    std::vector<std::thread> pool;
    const uint32_t value_bytes = reader.valueBytes();

    const uint64_t t0 = nowNs();
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            ThreadState &st = states[static_cast<size_t>(t)];
            std::string value;
            std::vector<std::pair<uint64_t, std::string>> scan_out;
            for (size_t i = static_cast<size_t>(t); i < ops.size();
                 i += static_cast<size_t>(threads)) {
                const Op &o = ops[i];
                const uint64_t s = nowNs();
                switch (o.type) {
                  case OpType::kInsert:
                  case OpType::kUpdate: {
                    OpGenerator::fillValue(o.key, value_bytes, &value);
                    store.put(o.key, value);
                    const uint64_t d = nowNs() - s;
                    st.overall.record(d);
                    st.writes.record(d);
                    break;
                  }
                  case OpType::kRead: {
                    store.get(o.key, &value);
                    const uint64_t d = nowNs() - s;
                    st.overall.record(d);
                    st.reads.record(d);
                    break;
                  }
                  case OpType::kScan: {
                    store.scan(o.key, o.scan_len, &scan_out);
                    const uint64_t d = nowNs() - s;
                    st.overall.record(d);
                    st.scans.record(d);
                    break;
                  }
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    result.duration_ns = nowNs() - t0;
    for (const auto &st : states) {
        result.overall.merge(st.overall);
        result.reads.merge(st.reads);
        result.writes.merge(st.writes);
        result.scans.merge(st.scans);
    }
    result.ops = result.overall.count();
    return result;
}

}  // namespace prism::ycsb
