/**
 * @file
 * Workload trace capture and replay.
 *
 * The paper evaluates on proprietary Nutanix production traces (§7.5);
 * this module provides the equivalent machinery for a reproduction:
 * synthesize a trace once from a WorkloadSpec (or capture one from any
 * generator), persist it to a compact binary file, and replay it
 * deterministically against any KvStore. Replaying the same file
 * across stores removes generator randomness from comparisons.
 *
 * File format (little-endian):
 *   header: magic u64, record count u64, value_bytes u32, pad u32
 *   records: { type u32, scan_len u32, key u64 } x count
 */
#pragma once

#include <cstdio>
#include <string>

#include "common/status.h"
#include "ycsb/driver.h"
#include "ycsb/kv_interface.h"
#include "ycsb/workload.h"

namespace prism::ycsb {

/** Streams operations into a trace file. */
class TraceWriter {
  public:
    /** Creates/truncates @p path. Check ok() before use. */
    explicit TraceWriter(const std::string &path, uint32_t value_bytes);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    bool ok() const { return file_ != nullptr; }

    /** Append one operation. */
    void append(const Op &op);

    /** Finalize the header and close. Called by the destructor too. */
    Status close();

    uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    uint64_t count_ = 0;
    uint32_t value_bytes_;
};

/** Reads a trace file sequentially. */
class TraceReader {
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool ok() const { return file_ != nullptr; }
    uint64_t count() const { return count_; }
    uint32_t valueBytes() const { return value_bytes_; }

    /** @return false at end of trace. */
    bool next(Op *op);

    /** Rewind to the first record. */
    void reset();

  private:
    std::FILE *file_;
    uint64_t count_ = 0;
    uint64_t read_ = 0;
    uint32_t value_bytes_ = 0;
};

/**
 * Synthesize a trace file of spec.operation_count operations.
 * @return number of records written (0 on I/O failure).
 */
uint64_t generateTrace(const WorkloadSpec &spec, uint64_t seed,
                       const std::string &path);

/**
 * Replay a trace against @p store with @p threads threads (records are
 * distributed round-robin). Values are synthesized deterministically
 * from the key, like the live driver does.
 */
RunResult replayTrace(KvStore &store, const std::string &path,
                      int threads);

}  // namespace prism::ycsb
