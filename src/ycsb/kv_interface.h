/**
 * @file
 * Uniform key-value store interface the YCSB driver runs against.
 * Adapters wrap PrismDb and every baseline behind it.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <memory>

#include "common/stats.h"
#include "common/status.h"
#include "core/async.h"

namespace prism::ycsb {

/** Minimal KV API common to all evaluated stores. */
class KvStore {
  public:
    virtual ~KvStore() = default;

    virtual std::string name() const = 0;
    virtual Status put(uint64_t key, std::string_view value) = 0;
    virtual Status get(uint64_t key, std::string *value) = 0;
    virtual Status del(uint64_t key) = 0;
    virtual Status scan(uint64_t start_key, size_t count,
                        std::vector<std::pair<uint64_t, std::string>> *out)
        = 0;

    /**
     * Batched point lookups: out[i] holds keys[i]'s value, or nullopt
     * for missing keys. The default loops over get(); stores with a
     * real batch path (Prism's per-Value-Storage read batching, the
     * shard router's per-shard fan-out) override it.
     */
    virtual Status
    multiGet(const std::vector<uint64_t> &keys,
             std::vector<std::optional<std::string>> *out)
    {
        out->assign(keys.size(), std::nullopt);
        for (size_t i = 0; i < keys.size(); i++) {
            std::string v;
            const Status st = get(keys[i], &v);
            if (st.isOk())
                (*out)[i] = std::move(v);
            else if (!st.isNotFound())
                return st;
        }
        return Status::ok();
    }

    /**
     * @name Asynchronous operations (core/async.h)
     *
     * Completion-driven variants. The defaults wrap the blocking calls
     * (the future is always ready on return), so every baseline gets
     * the API for free; stores with a real async engine (Prism)
     * override them to keep the I/O in flight.
     */
    ///@{
    virtual core::OpFuture
    asyncPut(uint64_t key, std::string_view value,
             core::AsyncCallback cb = nullptr)
    {
        auto st = std::make_shared<core::AsyncOpState>();
        st->callback = std::move(cb);
        st->complete(put(key, value));
        return core::OpFuture(std::move(st));
    }

    virtual core::OpFuture
    asyncGet(uint64_t key, core::AsyncCallback cb = nullptr)
    {
        auto st = std::make_shared<core::AsyncOpState>();
        st->callback = std::move(cb);
        st->complete(get(key, &st->value));
        return core::OpFuture(std::move(st));
    }

    virtual core::OpFuture
    asyncDel(uint64_t key, core::AsyncCallback cb = nullptr)
    {
        auto st = std::make_shared<core::AsyncOpState>();
        st->callback = std::move(cb);
        st->complete(del(key));
        return core::OpFuture(std::move(st));
    }

    virtual core::OpFuture
    asyncScan(uint64_t start_key, size_t count,
              core::AsyncCallback cb = nullptr)
    {
        auto st = std::make_shared<core::AsyncOpState>();
        st->callback = std::move(cb);
        st->complete(scan(start_key, count, &st->rows));
        return core::OpFuture(std::move(st));
    }
    ///@}

    /** Quiesce background work (between load and run phases). */
    virtual void flushAll() {}

    /** Bytes physically written to SSD media (WAF numerator). */
    virtual uint64_t ssdBytesWritten() const { return 0; }

    /** Bytes of user values written (WAF denominator). */
    virtual uint64_t userBytesWritten() const { return 0; }

    /**
     * Snapshot of the process-wide metrics registry. Every store in this
     * process instruments into the same registry, so the default is
     * correct for all adapters (docs/OBSERVABILITY.md lists the names).
     */
    virtual stats::StatsSnapshot stats() const {
        return stats::StatsRegistry::global().snapshot();
    }
};

}  // namespace prism::ycsb
