/**
 * @file
 * Uniform key-value store interface the YCSB driver runs against.
 * Adapters wrap PrismDb and every baseline behind it.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace prism::ycsb {

/** Minimal KV API common to all evaluated stores. */
class KvStore {
  public:
    virtual ~KvStore() = default;

    virtual std::string name() const = 0;
    virtual Status put(uint64_t key, std::string_view value) = 0;
    virtual Status get(uint64_t key, std::string *value) = 0;
    virtual Status del(uint64_t key) = 0;
    virtual Status scan(uint64_t start_key, size_t count,
                        std::vector<std::pair<uint64_t, std::string>> *out)
        = 0;

    /** Quiesce background work (between load and run phases). */
    virtual void flushAll() {}

    /** Bytes physically written to SSD media (WAF numerator). */
    virtual uint64_t ssdBytesWritten() const { return 0; }

    /** Bytes of user values written (WAF denominator). */
    virtual uint64_t userBytesWritten() const { return 0; }

    /**
     * Snapshot of the process-wide metrics registry. Every store in this
     * process instruments into the same registry, so the default is
     * correct for all adapters (docs/OBSERVABILITY.md lists the names).
     */
    virtual stats::StatsSnapshot stats() const {
        return stats::StatsRegistry::global().snapshot();
    }
};

}  // namespace prism::ycsb
