/**
 * @file
 * Store fixtures: build each evaluated system — Prism, KVell,
 * MatrixKV, RocksDB-NVM, RocksDB(SSD), SLM-DB — on freshly simulated
 * devices behind the common KvStore interface.
 *
 * Memory budgets follow the cost-parity configuration of Table 1
 * (fractions of the dataset size, matching the paper's $170 setups):
 *
 *   Prism     : DRAM cache 20%, NVM write buffer 16%
 *   KVell     : DRAM cache 32%, no NVM
 *   MatrixKV  : DRAM cache 26%, NVM (L0 + WAL) 8%
 *   RocksDB-NVM: DRAM cache 26%, all tables + WAL on NVM (a deliberately
 *               over-provisioned reference point, as in §7.1)
 */
#pragma once

#include <memory>
#include <optional>

#include "core/prism_db.h"
#include "core/shard_router.h"
#include "kvell/kvell.h"
#include "sim/device_profile.h"
#include "lsm/lsm_tree.h"
#include "lsm/slm_db.h"
#include "ycsb/kv_interface.h"

namespace prism::ycsb {

/** Common fixture sizing. */
struct FixtureOptions {
    int num_ssds = 4;
    uint64_t ssd_bytes = 2ull * 1024 * 1024 * 1024;
    /** Dataset size the cache budgets are derived from. */
    uint64_t dataset_bytes = 1ull * 1024 * 1024 * 1024;
    /** Model device latency/bandwidth in real time. */
    bool model_timing = true;
    /** Timing profile for the SSDs (default: Samsung 980 Pro). */
    sim::DeviceProfile ssd_profile = sim::kSamsung980ProProfile;
    /** Threads expected, used to split Prism's NVM budget into PWBs. */
    int expected_threads = 8;
    /**
     * Derive Prism's PWB/SVC budgets from dataset_bytes per Table 1.
     * Benches that sweep those budgets set this to false and pass
     * explicit values in PrismOptions.
     */
    bool derive_prism_budgets = true;
};

/**
 * Prism fixture. Always built through core::ShardRouter —
 * PrismOptions::shards (or $PRISM_SHARDS) picks the shard count, and 1
 * (the default) is the bit-identical single-PrismDb fast path. Each
 * shard gets its own NVM region and an exclusive slice of the device
 * fleet; budgets (PWB/SVC/HSIT) are divided per shard so the sharded
 * store's total cost matches the unsharded one at the same fixture
 * size (cost parity, Table 1).
 */
class PrismStore : public KvStore {
  public:
    PrismStore(const FixtureOptions &fx, core::PrismOptions opts);

    std::string name() const override { return "Prism"; }
    Status put(uint64_t key, std::string_view value) override {
        return router_->put(key, value);
    }
    Status get(uint64_t key, std::string *value) override {
        return router_->get(key, value);
    }
    Status del(uint64_t key) override { return router_->del(key); }
    Status
    scan(uint64_t start, size_t count,
         std::vector<std::pair<uint64_t, std::string>> *out) override
    {
        return router_->scan(start, count, out);
    }
    Status
    multiGet(const std::vector<uint64_t> &keys,
             std::vector<std::optional<std::string>> *out) override
    {
        return router_->multiGet(keys, out);
    }
    void flushAll() override { router_->flushAll(); }
    uint64_t ssdBytesWritten() const override {
        return router_->ssdBytesWritten();
    }
    uint64_t userBytesWritten() const override {
        return router_->opStats().user_bytes_written.load(
            std::memory_order_relaxed);
    }

    // Native async engine (core/async.h) instead of the sync-wrapping
    // defaults: SSD misses stay in flight.
    core::OpFuture
    asyncPut(uint64_t key, std::string_view value,
             core::AsyncCallback cb = nullptr) override
    {
        return router_->asyncPut(key, value, std::move(cb));
    }
    core::OpFuture
    asyncGet(uint64_t key, core::AsyncCallback cb = nullptr) override
    {
        return router_->asyncGet(key, std::move(cb));
    }
    core::OpFuture
    asyncDel(uint64_t key, core::AsyncCallback cb = nullptr) override
    {
        return router_->asyncDel(key, std::move(cb));
    }
    core::OpFuture
    asyncScan(uint64_t start_key, size_t count,
              core::AsyncCallback cb = nullptr) override
    {
        return router_->asyncScan(start_key, count, std::move(cb));
    }

    /**
     * The store behind the fixture. A ShardRouter mirrors PrismDb's
     * public surface (ops, stats, flushAll/forceGc, value-storage
     * introspection), so call sites read naturally at any shard count.
     */
    core::ShardRouter &db() { return *router_; }
    core::ShardRouter &router() { return *router_; }
    /** Shard 0's NVM region (single-shard crash tests). */
    std::shared_ptr<pmem::PmemRegion> region() { return regions_[0]; }
    /** All per-shard NVM regions, shard-major. */
    const std::vector<std::shared_ptr<pmem::PmemRegion>> &regions() const {
        return regions_;
    }
    /** Simulator fleet (flat, shard-major); empty with file backends. */
    std::vector<std::shared_ptr<sim::SsdDevice>> &ssds() { return ssds_; }
    /** The devices actually backing the store, flat and shard-major. */
    const std::vector<std::shared_ptr<io::IoBackend>> &devices() const {
        return devices_;
    }

    /** Simulated crash + recovery; @return recovery nanoseconds. */
    uint64_t crashAndRecover(const core::PrismOptions &opts);

  private:
    std::vector<core::ShardBackends> shardBackends() const;

    int shards_ = 1;
    std::vector<std::shared_ptr<sim::NvmDevice>> nvms_;
    std::vector<std::shared_ptr<pmem::PmemRegion>> regions_;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds_;
    std::vector<std::shared_ptr<io::IoBackend>> devices_;
    /** devices_ split per shard (exclusive ownership). */
    std::vector<std::vector<std::shared_ptr<io::IoBackend>>>
        shard_devices_;
    std::unique_ptr<core::ShardRouter> router_;
};

/** KVell fixture. */
class KvellStore : public KvStore {
  public:
    KvellStore(const FixtureOptions &fx, kvell::KvellOptions opts);

    std::string name() const override { return "KVell"; }
    Status put(uint64_t key, std::string_view value) override {
        return db_->put(key, value);
    }
    Status get(uint64_t key, std::string *value) override {
        return db_->get(key, value);
    }
    Status del(uint64_t key) override { return db_->del(key); }
    Status
    scan(uint64_t start, size_t count,
         std::vector<std::pair<uint64_t, std::string>> *out) override
    {
        return db_->scan(start, count, out);
    }
    uint64_t ssdBytesWritten() const override {
        return db_->ssdBytesWritten();
    }
    uint64_t userBytesWritten() const override {
        return db_->stats().user_bytes_written.load(
            std::memory_order_relaxed);
    }

    kvell::Kvell &db() { return *db_; }

  private:
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds_;
    std::unique_ptr<kvell::Kvell> db_;
};

/** LSM configurations from the paper. */
enum class LsmFlavor { kRocksDbSsd, kRocksDbNvm, kMatrixKv };

/** RocksDB / RocksDB-NVM / MatrixKV fixture. */
class LsmStore : public KvStore {
  public:
    LsmStore(const FixtureOptions &fx, LsmFlavor flavor,
             lsm::LsmOptions opts);

    std::string name() const override;
    Status put(uint64_t key, std::string_view value) override {
        return db_->put(key, value);
    }
    Status get(uint64_t key, std::string *value) override {
        return db_->get(key, value);
    }
    Status del(uint64_t key) override { return db_->del(key); }
    Status
    scan(uint64_t start, size_t count,
         std::vector<std::pair<uint64_t, std::string>> *out) override
    {
        return db_->scan(start, count, out);
    }
    void flushAll() override { db_->flushAll(); }
    uint64_t ssdBytesWritten() const override {
        return db_->ssdBytesWritten();
    }
    uint64_t userBytesWritten() const override {
        return db_->stats().user_bytes_written.load(
            std::memory_order_relaxed);
    }

    lsm::LsmTree &db() { return *db_; }

  private:
    LsmFlavor flavor_;
    std::shared_ptr<sim::NvmDevice> nvm_;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds_;
    std::shared_ptr<sim::SsdArray> array_;
    std::unique_ptr<lsm::LsmTree> db_;
};

/** SLM-DB fixture (single-threaded use only, as in §7.4). */
class SlmDbStore : public KvStore {
  public:
    SlmDbStore(const FixtureOptions &fx, lsm::SlmDbOptions opts);

    std::string name() const override { return "SLM-DB"; }
    Status put(uint64_t key, std::string_view value) override {
        user_bytes_ += value.size();
        return db_->put(key, value);
    }
    Status get(uint64_t key, std::string *value) override {
        return db_->get(key, value);
    }
    Status del(uint64_t key) override { return db_->del(key); }
    Status
    scan(uint64_t start, size_t count,
         std::vector<std::pair<uint64_t, std::string>> *out) override
    {
        return db_->scan(start, count, out);
    }
    void flushAll() override { db_->flushAll(); }
    uint64_t ssdBytesWritten() const override {
        return db_->ssdBytesWritten();
    }
    uint64_t userBytesWritten() const override { return user_bytes_; }

    lsm::SlmDb &db() { return *db_; }

  private:
    std::shared_ptr<sim::NvmDevice> nvm_;
    std::vector<std::shared_ptr<sim::SsdDevice>> ssds_;
    std::shared_ptr<sim::SsdArray> array_;
    std::unique_ptr<lsm::SlmDb> db_;
    uint64_t user_bytes_ = 0;
};

}  // namespace prism::ycsb
