#include "sim/ssd_device.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/clock.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace prism::sim {

SsdDevice::SsdDevice(uint64_t capacity_bytes, const DeviceProfile &profile,
                     bool model_timing)
    : capacity_((capacity_bytes + kBlockSize - 1) & ~(kBlockSize - 1)),
      profile_(profile),
      model_timing_(model_timing),
      pages_((capacity_ + kPageSize - 1) / kPageSize),
      channel_free_at_(static_cast<size_t>(profile.internal_parallelism), 0),
      ins_(profile.internal_parallelism)
{
    PRISM_CHECK(capacity_bytes > 0);
    for (auto &p : pages_)
        p.store(nullptr, std::memory_order_relaxed);
    // Token-bucket rates are fixed at construction; benches set TimeScale
    // before creating devices. A scale < 1 compresses time, which shows up
    // here as proportionally higher effective bandwidth.
    const double scale = std::max(TimeScale::get(), 1e-6);
    read_bw_ = std::make_unique<TokenBucket>(
        profile.read_bw_bytes_per_sec / scale, 8 * 1024 * 1024);
    write_bw_ = std::make_unique<TokenBucket>(
        profile.write_bw_bytes_per_sec / scale, 8 * 1024 * 1024);
    auto &tracer = trace::TraceRegistry::global();
    trace_channel_tracks_.reserve(channel_free_at_.size());
    for (size_t c = 0; c < channel_free_at_.size(); c++) {
        trace_channel_tracks_.push_back(tracer.registerTrack(
            "ssd" + std::to_string(ins_.dev) + ".ch" +
            std::to_string(c)));
    }
    worker_ = std::thread([this] { workerLoop(); });
}

SsdDevice::~SsdDevice()
{
    {
        std::lock_guard<std::mutex> lock(sq_mu_);
        stop_.store(true, std::memory_order_release);
    }
    sq_cv_.notify_all();
    worker_.join();
    for (auto &p : pages_) {
        uint8_t *ptr = p.load(std::memory_order_relaxed);
        delete[] ptr;
    }
}

uint8_t *
SsdDevice::pageFor(uint64_t page_index, bool allocate)
{
    auto &slot = pages_[page_index];
    uint8_t *p = slot.load(std::memory_order_acquire);
    if (p != nullptr || !allocate)
        return p;
    std::lock_guard<std::mutex> lock(page_alloc_mu_);
    p = slot.load(std::memory_order_acquire);
    if (p == nullptr) {
        p = new uint8_t[kPageSize];
        std::memset(p, 0, kPageSize);
        slot.store(p, std::memory_order_release);
    }
    return p;
}

namespace {

/**
 * Page memory is shared between submitters, the completion worker, and
 * the crash-capture path (`snapshotTo`), which deliberately reads pages
 * while writes are in flight — exactly how a power cut captures a drive
 * mid-DMA. Torn data is part of the modelled semantics (record CRCs
 * detect it); copying through relaxed atomics keeps that tearing from
 * being a C++ data race. The private side of each copy is plain memory.
 */
void
atomicStoreBytes(uint8_t *shared_dst, const uint8_t *src, uint32_t len)
{
    while (len > 0 &&
           (reinterpret_cast<uintptr_t>(shared_dst) & 7u) != 0) {
        reinterpret_cast<std::atomic<uint8_t> *>(shared_dst)->store(
            *src, std::memory_order_relaxed);
        shared_dst++, src++, len--;
    }
    while (len >= 8) {
        uint64_t v;
        std::memcpy(&v, src, 8);
        reinterpret_cast<std::atomic<uint64_t> *>(shared_dst)->store(
            v, std::memory_order_relaxed);
        shared_dst += 8, src += 8, len -= 8;
    }
    while (len > 0) {
        reinterpret_cast<std::atomic<uint8_t> *>(shared_dst)->store(
            *src, std::memory_order_relaxed);
        shared_dst++, src++, len--;
    }
}

void
atomicLoadBytes(uint8_t *dst, const uint8_t *shared_src, uint32_t len)
{
    while (len > 0 &&
           (reinterpret_cast<uintptr_t>(shared_src) & 7u) != 0) {
        *dst = reinterpret_cast<const std::atomic<uint8_t> *>(shared_src)
                   ->load(std::memory_order_relaxed);
        dst++, shared_src++, len--;
    }
    while (len >= 8) {
        const uint64_t v =
            reinterpret_cast<const std::atomic<uint64_t> *>(shared_src)
                ->load(std::memory_order_relaxed);
        std::memcpy(dst, &v, 8);
        dst += 8, shared_src += 8, len -= 8;
    }
    while (len > 0) {
        *dst = reinterpret_cast<const std::atomic<uint8_t> *>(shared_src)
                   ->load(std::memory_order_relaxed);
        dst++, shared_src++, len--;
    }
}

}  // namespace

void
SsdDevice::copyIn(uint64_t offset, const void *src, uint32_t len)
{
    const auto *s = static_cast<const uint8_t *>(src);
    while (len > 0) {
        const uint64_t page = offset / kPageSize;
        const uint64_t in_page = offset % kPageSize;
        const auto n = static_cast<uint32_t>(
            std::min<uint64_t>(len, kPageSize - in_page));
        atomicStoreBytes(pageFor(page, true) + in_page, s, n);
        offset += n;
        s += n;
        len -= n;
    }
}

void
SsdDevice::copyOut(uint64_t offset, void *dst, uint32_t len)
{
    auto *d = static_cast<uint8_t *>(dst);
    while (len > 0) {
        const uint64_t page = offset / kPageSize;
        const uint64_t in_page = offset % kPageSize;
        const auto n = static_cast<uint32_t>(
            std::min<uint64_t>(len, kPageSize - in_page));
        const uint8_t *p = pageFor(page, false);
        if (p == nullptr) {
            std::memset(d, 0, n);  // never-written blocks read as zero
        } else {
            atomicLoadBytes(d, p + in_page, n);
        }
        offset += n;
        d += n;
        len -= n;
    }
}

uint64_t
SsdDevice::serviceTimeNs(const SsdIoRequest &req, uint64_t now)
{
    const bool is_read = req.op == SsdIoRequest::Op::kRead;
    const double bw = is_read ? profile_.read_bw_bytes_per_sec
                              : profile_.write_bw_bytes_per_sec;
    const uint64_t media_lat = is_read ? profile_.read_latency_ns
                                       : profile_.write_latency_ns;
    const auto transfer_ns = static_cast<uint64_t>(
        static_cast<double>(req.length) / bw * 1e9);
    // Aggregate-bandwidth back-pressure: the bucket tells us how far the
    // device is oversubscribed; that delay queues ahead of the media time.
    const uint64_t bw_delay =
        (is_read ? read_bw_ : write_bw_)->acquire(req.length);
    return TimeScale::scaled(media_lat + transfer_ns) + bw_delay;
}

Status
SsdDevice::submit(std::span<const SsdIoRequest> batch)
{
    PRISM_TRACE_SPAN_VAR(submit_span, "ssd.submit");
    submit_span.arg(PRISM_TRACE_NID("reqs"), batch.size());
    if (model_timing_.load(std::memory_order_relaxed))
        spinFor(TimeScale::scaled(kSubmitOverheadNs));
    for (const auto &req : batch) {
        if (req.offset + req.length > capacity_)
            return Status::invalidArgument("I/O beyond device capacity");
        if (req.length == 0)
            return Status::invalidArgument("zero-length I/O");
    }

    // Fault-decision pass (io::DeviceInstruments): empty, and skipped
    // entirely, unless a fault site is armed or a dropout is active.
    std::vector<io::IoFault> faults;
    ins_.decideFaults(batch, faults);

    // Transfer data at submission; the completion only carries timing.
    // (Writes become durable at completion; an in-flight write lost to a
    // crash may thus survive in the backing store, which is benign: the
    // client treats it as unreferenced garbage, exactly as a completed-
    // but-unacknowledged write on real hardware.)
    for (size_t i = 0; i < batch.size(); i++) {
        const auto &req = batch[i];
        const uint32_t xfer = faults.empty() ? req.length : faults[i].xfer;
        if (req.op == SsdIoRequest::Op::kWrite) {
            PRISM_DCHECK(req.src != nullptr);
            if (xfer > 0)
                copyIn(req.offset, req.src, xfer);
        } else {
            PRISM_DCHECK(req.buf != nullptr);
            if (xfer > 0)
                copyOut(req.offset, req.buf, xfer);
        }
        ins_.account(stats_, req, xfer);
    }

    const uint64_t now = nowNs();
    const uint64_t depth =
        inflight_.fetch_add(batch.size(), std::memory_order_acq_rel) +
        batch.size();
    ins_.inflight->add(static_cast<int64_t>(batch.size()));
    io::DeviceInstruments::noteDepth(stats_, depth);

    if (!model_timing_.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(cq_mu_);
        for (size_t i = 0; i < batch.size(); i++) {
            cq_.push_back({batch[i].user_data,
                           faults.empty() ? Status::ok()
                                          : faults[i].status,
                           0});
        }
        inflight_.fetch_sub(batch.size(), std::memory_order_acq_rel);
        ins_.inflight->sub(static_cast<int64_t>(batch.size()));
        cq_cv_.notify_all();
        return Status::ok();
    }

    {
        std::lock_guard<std::mutex> lock(sq_mu_);
        for (size_t i = 0; i < batch.size(); i++) {
            const auto &req = batch[i];
            uint64_t service = serviceTimeNs(req, now);
            if (!faults.empty())
                service += faults[i].extra_ns;
            // Earliest-free internal channel serves the request.
            auto it = std::min_element(channel_free_at_.begin(),
                                       channel_free_at_.end());
            const uint64_t start = std::max(now, *it);
            const uint64_t due = start + service;
            Pending p;
            p.due_ns = due;
            p.submit_ns = now;
            p.start_ns = start;
            p.channel = static_cast<uint32_t>(
                it - channel_free_at_.begin());
            p.trace_id =
                (static_cast<uint64_t>(ins_.dev) << 48) |
                trace_req_seq_.fetch_add(1, std::memory_order_relaxed);
            p.completion = {req.user_data,
                            faults.empty() ? Status::ok()
                                           : faults[i].status,
                            0};
            *it = due;
            pending_.push(std::move(p));
        }
    }
    sq_cv_.notify_one();
    return Status::ok();
}

void
SsdDevice::workerLoop()
{
    trace::TraceRegistry::global().setThreadName(
        "ssd" + std::to_string(ins_.dev) + "-worker");
    std::unique_lock<std::mutex> lock(sq_mu_);
    while (true) {
        if (stop_.load(std::memory_order_acquire))
            return;
        if (pending_.empty()) {
            sq_cv_.wait(lock, [this] {
                return stop_.load(std::memory_order_acquire) ||
                       !pending_.empty();
            });
            continue;
        }
        const uint64_t due = pending_.top().due_ns;
        const uint64_t now = nowNs();
        if (now < due) {
            sq_cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
            continue;
        }
        // Deliver everything that has come due.
        std::vector<Pending> ready;
        while (!pending_.empty() && pending_.top().due_ns <= now) {
            ready.push_back(pending_.top());
            pending_.pop();
        }
        lock.unlock();
        if (trace::detail::tracingEnabled()) {
            // Reconstructed at delivery: queue wait (submit -> channel
            // pickup) as an async interval on this worker's track, and
            // the service time as an "X" span on the serving channel's
            // own synthetic track (channel occupancy never overlaps).
            for (const auto &p : ready) {
                if (p.start_ns > p.submit_ns) {
                    trace::asyncBegin(PRISM_TRACE_NID("ssd.queue_wait"),
                                      p.submit_ns, p.trace_id);
                    trace::asyncEnd(PRISM_TRACE_NID("ssd.queue_wait"),
                                    p.start_ns, p.trace_id);
                }
                if (p.channel < trace_channel_tracks_.size()) {
                    trace::spanAt(PRISM_TRACE_NID("ssd.service"),
                                  p.start_ns, p.due_ns - p.start_ns,
                                  trace_channel_tracks_[p.channel]);
                }
            }
        }
        {
            uint64_t busy = 0;
            for (const auto &p : ready)
                busy += p.due_ns - p.start_ns;
            ins_.dev_busy_ns->add(busy);
            std::lock_guard<std::mutex> cq_lock(cq_mu_);
            for (auto &p : ready) {
                p.completion.latency_ns = now - p.submit_ns;
                ins_.latency->record(p.completion.latency_ns);
                cq_.push_back(p.completion);
            }
        }
        inflight_.fetch_sub(ready.size(), std::memory_order_acq_rel);
        ins_.inflight->sub(static_cast<int64_t>(ready.size()));
        cq_cv_.notify_all();
        lock.lock();
    }
}

size_t
SsdDevice::pollCompletions(std::vector<SsdCompletion> &out, size_t max)
{
    std::lock_guard<std::mutex> lock(cq_mu_);
    const size_t n = std::min(max, cq_.size());
    out.insert(out.end(), cq_.begin(), cq_.begin() + static_cast<long>(n));
    cq_.erase(cq_.begin(), cq_.begin() + static_cast<long>(n));
    return n;
}

size_t
SsdDevice::waitCompletions(std::vector<SsdCompletion> &out, size_t max,
                           uint64_t timeout_us)
{
    std::unique_lock<std::mutex> lock(cq_mu_);
    cq_cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                    [this] { return !cq_.empty(); });
    const size_t n = std::min(max, cq_.size());
    out.insert(out.end(), cq_.begin(), cq_.begin() + static_cast<long>(n));
    cq_.erase(cq_.begin(), cq_.begin() + static_cast<long>(n));
    return n;
}

Status
SsdDevice::readSync(uint64_t offset, void *buf, uint32_t length)
{
    if (offset + length > capacity_)
        return Status::invalidArgument("I/O beyond device capacity");
    const Status fault_st = ins_.syncFaultCheck(/*is_write=*/false);
    if (!fault_st.isOk())
        return fault_st;
    // Synchronous path: model the blocking pread an O_DIRECT caller sees.
    copyOut(offset, buf, length);
    SsdIoRequest req;
    req.op = SsdIoRequest::Op::kRead;
    req.length = length;
    ins_.account(stats_, req, length);
    if (model_timing_.load(std::memory_order_relaxed)) {
        const uint64_t service = serviceTimeNs(req, nowNs());
        ins_.dev_busy_ns->add(service);
        delayFor(service);
    }
    return Status::ok();
}

Status
SsdDevice::writeSync(uint64_t offset, const void *src, uint32_t length)
{
    if (offset + length > capacity_)
        return Status::invalidArgument("I/O beyond device capacity");
    const Status fault_st = ins_.syncFaultCheck(/*is_write=*/true);
    if (!fault_st.isOk())
        return fault_st;
    copyIn(offset, src, length);
    SsdIoRequest req;
    req.op = SsdIoRequest::Op::kWrite;
    req.length = length;
    ins_.account(stats_, req, length);
    if (model_timing_.load(std::memory_order_relaxed)) {
        const uint64_t service = serviceTimeNs(req, nowNs());
        ins_.dev_busy_ns->add(service);
        delayFor(service);
    }
    return Status::ok();
}

void
SsdDevice::simulateCrash()
{
    std::lock_guard<std::mutex> sq_lock(sq_mu_);
    std::lock_guard<std::mutex> cq_lock(cq_mu_);
    size_t dropped = pending_.size();
    while (!pending_.empty())
        pending_.pop();
    dropped += cq_.size();
    cq_.clear();
    inflight_.fetch_sub(dropped, std::memory_order_acq_rel);
    ins_.inflight->sub(static_cast<int64_t>(dropped));
    std::fill(channel_free_at_.begin(), channel_free_at_.end(), 0);
}

void
SsdDevice::snapshotTo(std::vector<uint8_t> &out)
{
    out.resize(capacity_);
    constexpr uint64_t kStep = 1ull << 30;
    for (uint64_t off = 0; off < capacity_; off += kStep) {
        copyOut(off, out.data() + off, static_cast<uint32_t>(
            std::min(kStep, capacity_ - off)));
    }
}

void
SsdDevice::loadFrom(const std::vector<uint8_t> &image)
{
    PRISM_CHECK(image.size() <= capacity_);
    constexpr uint64_t kStep = 1ull << 30;
    for (uint64_t off = 0; off < image.size(); off += kStep) {
        copyIn(off, image.data() + off, static_cast<uint32_t>(
            std::min(kStep, image.size() - off)));
    }
}

void
SsdDevice::eraseAll()
{
    std::lock_guard<std::mutex> lock(page_alloc_mu_);
    for (auto &p : pages_) {
        uint8_t *ptr = p.exchange(nullptr, std::memory_order_acq_rel);
        delete[] ptr;
    }
}

}  // namespace prism::sim
