#include "sim/ssd_array.h"

#include <algorithm>

#include "common/logging.h"

namespace prism::sim {

SsdArray::SsdArray(std::vector<std::shared_ptr<SsdDevice>> devices,
                   uint64_t stripe_bytes)
    : devices_(std::move(devices)), stripe_bytes_(stripe_bytes)
{
    PRISM_CHECK(!devices_.empty());
    PRISM_CHECK(stripe_bytes_ > 0);
    uint64_t min_cap = UINT64_MAX;
    for (const auto &d : devices_)
        min_cap = std::min(min_cap, d->capacity());
    capacity_ = min_cap * devices_.size();
}

void
SsdArray::mapOffset(uint64_t logical, size_t &dev, uint64_t &dev_off) const
{
    const uint64_t stripe = logical / stripe_bytes_;
    const uint64_t in_stripe = logical % stripe_bytes_;
    dev = static_cast<size_t>(stripe % devices_.size());
    dev_off = (stripe / devices_.size()) * stripe_bytes_ + in_stripe;
}

Status
SsdArray::readSync(uint64_t offset, void *buf, uint32_t length)
{
    auto *d = static_cast<uint8_t *>(buf);
    while (length > 0) {
        size_t dev;
        uint64_t dev_off;
        mapOffset(offset, dev, dev_off);
        const auto n = static_cast<uint32_t>(std::min<uint64_t>(
            length, stripe_bytes_ - offset % stripe_bytes_));
        Status s = devices_[dev]->readSync(dev_off, d, n);
        if (!s.isOk())
            return s;
        offset += n;
        d += n;
        length -= n;
    }
    return Status::ok();
}

Status
SsdArray::writeSync(uint64_t offset, const void *src, uint32_t length)
{
    const auto *s = static_cast<const uint8_t *>(src);
    while (length > 0) {
        size_t dev;
        uint64_t dev_off;
        mapOffset(offset, dev, dev_off);
        const auto n = static_cast<uint32_t>(std::min<uint64_t>(
            length, stripe_bytes_ - offset % stripe_bytes_));
        Status st = devices_[dev]->writeSync(dev_off, s, n);
        if (!st.isOk())
            return st;
        offset += n;
        s += n;
        length -= n;
    }
    return Status::ok();
}

uint64_t
SsdArray::totalBytesWritten() const
{
    uint64_t total = 0;
    for (const auto &d : devices_)
        total += d->stats().bytes_written.load(std::memory_order_relaxed);
    return total;
}

uint64_t
SsdArray::totalBytesRead() const
{
    uint64_t total = 0;
    for (const auto &d : devices_)
        total += d->stats().bytes_read.load(std::memory_order_relaxed);
    return total;
}

}  // namespace prism::sim
