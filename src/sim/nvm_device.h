/**
 * @file
 * Simulated byte-addressable non-volatile memory device.
 *
 * Substitutes for Intel Optane DCPMM. The device owns a flat in-process
 * buffer that plays the role of the physical medium. Two concerns are
 * modelled here:
 *
 *  - *Timing*: loads and stores are charged the DCPMM latency/bandwidth
 *    from the device profile. Timing can be disabled for unit tests.
 *  - *Persistence domain*: the pmem layer (src/pmem) tracks which cache
 *    lines have been flushed; the device only provides the backing bytes
 *    and survives a simulated crash/restart cycle (its buffer is retained
 *    while DRAM-side structures are torn down).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/stats.h"
#include "sim/device_profile.h"

namespace prism::sim {

/** Running I/O counters for one device (bytes are host-issued). */
struct NvmStats {
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> read_ops{0};
    std::atomic<uint64_t> write_ops{0};
};

/** A byte-addressable NVM DIMM (or interleaved set). */
class NvmDevice {
  public:
    /**
     * @param capacity_bytes size of the medium.
     * @param profile        timing profile (default: Optane DCPMM).
     * @param model_timing   charge access latency in real time when true.
     */
    explicit NvmDevice(uint64_t capacity_bytes,
                       const DeviceProfile &profile = kOptaneDcpmmProfile,
                       bool model_timing = true);
    ~NvmDevice();

    NvmDevice(const NvmDevice &) = delete;
    NvmDevice &operator=(const NvmDevice &) = delete;

    uint64_t capacity() const { return capacity_; }
    const DeviceProfile &profile() const { return profile_; }

    /**
     * Raw pointer to the start of the medium. The pmem layer builds typed
     * access on top; direct users must charge latency themselves via
     * chargeRead/chargeWrite.
     */
    uint8_t *raw() { return base_.get(); }
    const uint8_t *raw() const { return base_.get(); }

    /** Overwrite the medium with a captured image (crash-test harness). */
    void loadImage(const uint8_t *image, uint64_t bytes);

    /** Charge the timing model for a read of @p bytes. */
    void chargeRead(uint64_t bytes);

    /** Charge the timing model for a write of @p bytes. */
    void chargeWrite(uint64_t bytes);

    /** Enable/disable real-time latency modelling. */
    void setModelTiming(bool on) { model_timing_ = on; }
    bool modelTiming() const { return model_timing_; }

    NvmStats &stats() { return stats_; }

  private:
    uint64_t capacity_;
    DeviceProfile profile_;
    std::atomic<bool> model_timing_;
    std::unique_ptr<uint8_t[]> base_;
    NvmStats stats_;

    // Shared-by-name process-wide metrics (see common/stats.h).
    stats::Counter *reg_bytes_read_;
    stats::Counter *reg_bytes_written_;
    stats::Counter *reg_read_ops_;
    stats::Counter *reg_write_ops_;
};

}  // namespace prism::sim
