#include "sim/nvm_device.h"

#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace prism::sim {

NvmDevice::NvmDevice(uint64_t capacity_bytes, const DeviceProfile &profile,
                     bool model_timing)
    : capacity_(capacity_bytes),
      profile_(profile),
      model_timing_(model_timing),
      base_(new uint8_t[capacity_bytes])
{
    PRISM_CHECK(capacity_bytes > 0);
    auto &reg = stats::StatsRegistry::global();
    reg_bytes_read_ = &reg.counter("sim.nvm.bytes_read", "bytes");
    reg_bytes_written_ = &reg.counter("sim.nvm.bytes_written", "bytes");
    reg_read_ops_ = &reg.counter("sim.nvm.read_ops", "ops");
    reg_write_ops_ = &reg.counter("sim.nvm.write_ops", "ops");
    std::memset(base_.get(), 0, capacity_bytes);
}

NvmDevice::~NvmDevice() = default;

void
NvmDevice::loadImage(const uint8_t *image, uint64_t bytes)
{
    PRISM_CHECK(bytes <= capacity_);
    std::memcpy(base_.get(), image, bytes);
}

void
NvmDevice::chargeRead(uint64_t bytes)
{
    stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
    stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
    reg_bytes_read_->add(bytes);
    reg_read_ops_->inc();
    if (!model_timing_.load(std::memory_order_relaxed))
        return;
    // Media latency plus transfer time at device read bandwidth. DCPMM
    // accesses are 256 B granular internally; small reads pay full latency.
    const auto transfer_ns = static_cast<uint64_t>(
        static_cast<double>(bytes) / profile_.read_bw_bytes_per_sec * 1e9);
    spinFor(TimeScale::scaled(profile_.read_latency_ns + transfer_ns));
}

void
NvmDevice::chargeWrite(uint64_t bytes)
{
    stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
    stats_.write_ops.fetch_add(1, std::memory_order_relaxed);
    reg_bytes_written_->add(bytes);
    reg_write_ops_->inc();
    if (!model_timing_.load(std::memory_order_relaxed))
        return;
    const auto transfer_ns = static_cast<uint64_t>(
        static_cast<double>(bytes) / profile_.write_bw_bytes_per_sec * 1e9);
    spinFor(TimeScale::scaled(profile_.write_latency_ns + transfer_ns));
}

}  // namespace prism::sim
