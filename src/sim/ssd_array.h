/**
 * @file
 * RAID-0 striping over multiple simulated SSDs.
 *
 * The paper gives competitors the same hardware as Prism by striping the
 * eight SSDs with mdadm/dm-stripe; SsdArray plays that role for the LSM
 * baselines. Prism itself addresses the member devices individually (one
 * Value Storage per SSD), so it does not use this class.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "sim/ssd_device.h"

namespace prism::sim {

/** A striped (RAID-0) volume over N member SSDs. */
class SsdArray {
  public:
    /**
     * @param devices      member devices (shared; all must be same size).
     * @param stripe_bytes stripe unit (dm-stripe chunk), default 64 KB.
     */
    explicit SsdArray(std::vector<std::shared_ptr<SsdDevice>> devices,
                      uint64_t stripe_bytes = 64 * 1024);

    uint64_t capacity() const { return capacity_; }
    size_t deviceCount() const { return devices_.size(); }

    /** Blocking read across the stripe. */
    Status readSync(uint64_t offset, void *buf, uint32_t length);

    /** Blocking write across the stripe. */
    Status writeSync(uint64_t offset, const void *src, uint32_t length);

    /** Sum of member-device write bytes (for WAF accounting). */
    uint64_t totalBytesWritten() const;

    /** Sum of member-device read bytes. */
    uint64_t totalBytesRead() const;

    SsdDevice &device(size_t i) { return *devices_[i]; }

  private:
    /** Map a logical offset to (device, device offset). */
    void mapOffset(uint64_t logical, size_t &dev, uint64_t &dev_off) const;

    std::vector<std::shared_ptr<SsdDevice>> devices_;
    uint64_t stripe_bytes_;
    uint64_t capacity_;
};

}  // namespace prism::sim
