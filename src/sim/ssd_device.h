/**
 * @file
 * Simulated NVMe flash SSD with an io_uring-like queue-pair interface.
 *
 * Substitutes for the Samsung 980 PRO drives behind Prism's Value Storage
 * and the baselines' data files. The device exposes:
 *
 *  - a Submission Queue: submit() accepts a batch of read/write requests,
 *    exactly like io_uring_submit() after preparing N SQEs;
 *  - a Completion Queue: pollCompletions() drains finished requests, like
 *    reaping CQEs.
 *
 * Service timing follows a channel model: the device has
 * `internal_parallelism` service units; a request occupies the
 * earliest-free unit for (media latency + size / per-unit share of device
 * bandwidth), and a device-wide token bucket caps aggregate bandwidth.
 * This reproduces the behaviours the paper's design reacts to: batching
 * raises throughput but queues grow and tail latency rises (§4.2, Fig 11),
 * and aggregate bandwidth scales with the number of devices (Fig 13).
 *
 * Data is stored in sparse in-process pages, so a multi-gigabyte device
 * only consumes memory for blocks actually written. Completed writes
 * survive a simulated crash; queued-but-incomplete ones may be lost.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/token_bucket.h"
#include "sim/device_profile.h"

namespace prism::sim {

/** One submission-queue entry. */
struct SsdIoRequest {
    enum class Op : uint8_t { kRead, kWrite };

    Op op = Op::kRead;
    uint64_t offset = 0;       ///< byte offset on the device
    uint32_t length = 0;       ///< transfer size in bytes
    void *buf = nullptr;       ///< destination (reads)
    const void *src = nullptr; ///< source (writes)
    uint64_t user_data = 0;    ///< opaque tag returned in the completion
};

/** One completion-queue entry. */
struct SsdCompletion {
    uint64_t user_data = 0;
    Status status;
    uint64_t latency_ns = 0;   ///< submit-to-complete modelled latency
};

/** Host-visible I/O counters (used for the WAF experiment, Fig. 12). */
struct SsdStats {
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> read_ops{0};
    std::atomic<uint64_t> write_ops{0};
    std::atomic<uint64_t> max_queue_depth{0};
};

/** A single simulated NVMe SSD. */
class SsdDevice {
  public:
    static constexpr uint64_t kBlockSize = 4096;

    /**
     * CPU cost charged to the submitting thread per submit() call —
     * the io_uring_submit syscall plus SQE preparation. Batching
     * amortizes it, which is the CPU-efficiency side of §5.3.
     */
    static constexpr uint64_t kSubmitOverheadNs = 1500;

    /**
     * @param capacity_bytes device capacity (rounded up to a block).
     * @param profile        timing profile (default Samsung 980 Pro).
     * @param model_timing   when false, requests complete instantly
     *                       (useful for unit tests).
     */
    explicit SsdDevice(uint64_t capacity_bytes,
                       const DeviceProfile &profile = kSamsung980ProProfile,
                       bool model_timing = true);
    ~SsdDevice();

    SsdDevice(const SsdDevice &) = delete;
    SsdDevice &operator=(const SsdDevice &) = delete;

    uint64_t capacity() const { return capacity_; }
    const DeviceProfile &profile() const { return profile_; }

    /**
     * Submit a batch of requests (the io_uring_submit analogue).
     * Data is transferred atomically per request; the completion is
     * delivered once the modelled device time has elapsed.
     */
    Status submit(std::span<const SsdIoRequest> batch);

    /** Submit a single request. */
    Status submit(const SsdIoRequest &req) { return submit({&req, 1}); }

    /**
     * Drain up to @p max completions into @p out.
     * @return number of completions reaped (may be 0).
     */
    size_t pollCompletions(std::vector<SsdCompletion> &out, size_t max);

    /**
     * Block until at least one completion is available or @p timeout_us
     * elapses, then drain like pollCompletions.
     */
    size_t waitCompletions(std::vector<SsdCompletion> &out, size_t max,
                           uint64_t timeout_us);

    /** Synchronous read helper (submit + wait for this request). */
    Status readSync(uint64_t offset, void *buf, uint32_t length);

    /** Synchronous write helper. */
    Status writeSync(uint64_t offset, const void *src, uint32_t length);

    /** Number of submitted-but-not-reaped requests. */
    uint64_t inflight() const {
        return inflight_.load(std::memory_order_acquire);
    }

    /** True when the device has no in-flight requests (idle selection). */
    bool isIdle() const { return inflight() == 0; }

    /**
     * Simulated power failure: pending (incomplete) requests are dropped.
     * Written data from completed requests is retained, mirroring a real
     * device's durability contract at completion time.
     */
    void simulateCrash();

    /** Discard all device contents (mkfs analogue). */
    void eraseAll();

    /**
     * Copy the entire device image into @p out (crash-test harness).
     * Concurrent writers make the copy fuzzy at page granularity, so
     * call it quiesced or treat races as crash-equivalent noise.
     */
    void snapshotTo(std::vector<uint8_t> &out);

    /** Replace the device contents with a previously captured image. */
    void loadFrom(const std::vector<uint8_t> &image);

    SsdStats &stats() { return stats_; }
    void setModelTiming(bool on) { model_timing_ = on; }

    /** Process-wide device number (the <n> in sim.ssd.<n>.* metrics). */
    int deviceNumber() const { return trace_dev_; }

    /**
     * True when the device accepts writes. A dropout (setDropout or the
     * "ssd.<n>.dropout" fault site) fails every write with an I/O-error
     * completion until it ends; reads still succeed, like a drive whose
     * write path died but whose media is readable.
     */
    bool healthy() const;

    /** Force (or clear) a dropout. Fault payload = duration in ns. */
    void setDropout(bool on);

  private:
    static constexpr uint64_t kPageSize = 256 * 1024;

    struct Pending {
        uint64_t due_ns;
        uint64_t submit_ns;
        uint64_t start_ns = 0;   ///< when a channel picked the request up
        uint32_t channel = 0;    ///< which channel served it
        uint64_t trace_id = 0;   ///< pairing id for queue-wait trace events
        SsdCompletion completion;

        bool operator>(const Pending &o) const { return due_ns > o.due_ns; }
    };

    uint8_t *pageFor(uint64_t page_index, bool allocate);
    void copyIn(uint64_t offset, const void *src, uint32_t len);
    void copyOut(uint64_t offset, void *dst, uint32_t len);
    uint64_t serviceTimeNs(const SsdIoRequest &req, uint64_t now);
    void workerLoop();

    uint64_t capacity_;
    DeviceProfile profile_;
    std::atomic<bool> model_timing_;

    // Sparse backing store.
    std::vector<std::atomic<uint8_t *>> pages_;
    std::mutex page_alloc_mu_;

    // Channel timing model (guarded by sq_mu_).
    std::mutex sq_mu_;
    std::vector<uint64_t> channel_free_at_;
    std::unique_ptr<TokenBucket> read_bw_;
    std::unique_ptr<TokenBucket> write_bw_;

    // Pending completions ordered by due time.
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
        pending_;
    std::condition_variable sq_cv_;

    // Completion queue.
    std::mutex cq_mu_;
    std::condition_variable cq_cv_;
    std::vector<SsdCompletion> cq_;

    std::atomic<uint64_t> inflight_{0};
    std::atomic<bool> stop_{false};
    std::thread worker_;

    SsdStats stats_;

    // Process-wide registry metrics, shared by name across all SSD
    // instances so multi-device totals aggregate naturally (Fig. 12 WAF
    // inputs). Cached once at construction; see common/stats.h.
    stats::Counter *reg_bytes_read_;
    stats::Counter *reg_bytes_written_;
    stats::Counter *reg_read_ops_;
    stats::Counter *reg_write_ops_;
    stats::Gauge *reg_inflight_;
    stats::LatencyStat *reg_latency_;

    // Per-device variants ("sim.ssd.<n>.*", n = the process-wide device
    // number): telemetry derives per-device bandwidth and utilization
    // series from these. busy_ns accumulates channel service time, so
    // utilization over a window is Δbusy ÷ (window × channels); the
    // channel count is published as the "sim.ssd.<n>.channels" gauge.
    stats::Counter *reg_dev_bytes_read_;
    stats::Counter *reg_dev_bytes_written_;
    stats::Counter *reg_dev_busy_ns_;

    // Fault injection (see common/fault.h). Site names are per-device
    // ("ssd.<n>.io_error" etc.) so schedules can target one drive of a
    // set; ids are interned once at construction. dropout_until_ is the
    // monotonic-ns deadline of an active dropout (0 = none, UINT64_MAX =
    // until setDropout(false)).
    uint32_t fs_io_error_ = 0;
    uint32_t fs_torn_write_ = 0;
    uint32_t fs_latency_ = 0;
    uint32_t fs_dropout_ = 0;
    std::atomic<uint64_t> dropout_until_{0};
    stats::Counter *reg_io_errors_;
    stats::Counter *reg_dev_io_errors_;

    // Tracing: a process-unique device number, one synthetic trace
    // track per internal channel (service spans are serialized per
    // channel, so they render as non-overlapping "X" events), and a
    // sequence for pairing queue-wait begin/end events.
    int trace_dev_ = 0;
    std::vector<uint16_t> trace_channel_tracks_;
    std::atomic<uint64_t> trace_req_seq_{0};
};

}  // namespace prism::sim
