/**
 * @file
 * Simulated NVMe flash SSD — the timing-modelled io::IoBackend.
 *
 * Substitutes for the Samsung 980 PRO drives behind Prism's Value Storage
 * and the baselines' data files. The queue-pair surface (submission
 * batches in, completions reaped out) is no longer defined here: it is
 * the io::IoBackend contract in io/io_backend.h, which this device
 * implements alongside the real-file backends (io::PosixFileBackend,
 * io::UringBackend). Code above this layer — ValueStorage, ChunkWriter,
 * GC, ReadBatcher, the async API — holds an IoBackend and never knows
 * which one it got.
 *
 * What this implementation adds over the contract is the *timing model*:
 * the device has `internal_parallelism` service units; a request occupies
 * the earliest-free unit for (media latency + size / per-unit share of
 * device bandwidth), and a device-wide token bucket caps aggregate
 * bandwidth. This reproduces the behaviours the paper's design reacts
 * to: batching raises throughput but queues grow and tail latency rises
 * (§4.2, Fig 11), and aggregate bandwidth scales with the number of
 * devices (Fig 13).
 *
 * Data is stored in sparse in-process pages, so a multi-gigabyte device
 * only consumes memory for blocks actually written. Completed writes
 * survive a simulated crash; queued-but-incomplete ones may be lost.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/token_bucket.h"
#include "io/io_backend.h"
#include "sim/device_profile.h"

namespace prism::sim {

// Historical names, kept for the simulator-era call sites; the structs
// themselves live in io/io_backend.h and are shared by every backend.
using SsdIoRequest = io::IoRequest;
using SsdCompletion = io::IoCompletion;
using SsdStats = io::IoDeviceStats;

/** A single simulated NVMe SSD. */
class SsdDevice : public io::IoBackend {
  public:
    /**
     * CPU cost charged to the submitting thread per submit() call —
     * the io_uring_submit syscall plus SQE preparation. Batching
     * amortizes it, which is the CPU-efficiency side of §5.3.
     */
    static constexpr uint64_t kSubmitOverheadNs = 1500;

    /**
     * @param capacity_bytes device capacity (rounded up to a block).
     * @param profile        timing profile (default Samsung 980 Pro).
     * @param model_timing   when false, requests complete instantly
     *                       (useful for unit tests).
     */
    explicit SsdDevice(uint64_t capacity_bytes,
                       const DeviceProfile &profile = kSamsung980ProProfile,
                       bool model_timing = true);
    ~SsdDevice() override;

    SsdDevice(const SsdDevice &) = delete;
    SsdDevice &operator=(const SsdDevice &) = delete;

    uint64_t capacity() const override { return capacity_; }
    const DeviceProfile &profile() const { return profile_; }

    using IoBackend::submit;

    /**
     * Submit a batch of requests (the io_uring_submit analogue).
     * Data is transferred atomically per request; the completion is
     * delivered once the modelled device time has elapsed.
     */
    Status submit(std::span<const SsdIoRequest> batch) override;

    size_t pollCompletions(std::vector<SsdCompletion> &out,
                           size_t max) override;
    size_t waitCompletions(std::vector<SsdCompletion> &out, size_t max,
                           uint64_t timeout_us) override;

    /** Synchronous read helper (modelled blocking pread). */
    Status readSync(uint64_t offset, void *buf, uint32_t length) override;

    /** Synchronous write helper. */
    Status writeSync(uint64_t offset, const void *src,
                     uint32_t length) override;

    uint64_t inflight() const override {
        return inflight_.load(std::memory_order_acquire);
    }

    /**
     * Simulated power failure: pending (incomplete) requests are dropped.
     * Written data from completed requests is retained, mirroring a real
     * device's durability contract at completion time.
     */
    void simulateCrash();

    /** Discard all device contents (mkfs analogue). */
    void eraseAll();

    /**
     * Copy the entire device image into @p out (crash-test harness).
     * Concurrent writers make the copy fuzzy at page granularity, so
     * call it quiesced or treat races as crash-equivalent noise.
     */
    void snapshotTo(std::vector<uint8_t> &out);

    /** Replace the device contents with a previously captured image. */
    void loadFrom(const std::vector<uint8_t> &image);

    SsdStats &stats() override { return stats_; }
    void setModelTiming(bool on) { model_timing_ = on; }

    int deviceNumber() const override { return ins_.dev; }
    bool healthy() const override { return ins_.healthy(); }
    void setDropout(bool on) override { ins_.setDropout(on); }
    std::string_view kind() const override { return "sim"; }

  private:
    static constexpr uint64_t kPageSize = 256 * 1024;

    struct Pending {
        uint64_t due_ns;
        uint64_t submit_ns;
        uint64_t start_ns = 0;   ///< when a channel picked the request up
        uint32_t channel = 0;    ///< which channel served it
        uint64_t trace_id = 0;   ///< pairing id for queue-wait trace events
        SsdCompletion completion;

        bool operator>(const Pending &o) const { return due_ns > o.due_ns; }
    };

    uint8_t *pageFor(uint64_t page_index, bool allocate);
    void copyIn(uint64_t offset, const void *src, uint32_t len);
    void copyOut(uint64_t offset, void *dst, uint32_t len);
    uint64_t serviceTimeNs(const SsdIoRequest &req, uint64_t now);
    void workerLoop();

    uint64_t capacity_;
    DeviceProfile profile_;
    std::atomic<bool> model_timing_;

    // Sparse backing store.
    std::vector<std::atomic<uint8_t *>> pages_;
    std::mutex page_alloc_mu_;

    // Channel timing model (guarded by sq_mu_).
    std::mutex sq_mu_;
    std::vector<uint64_t> channel_free_at_;
    std::unique_ptr<TokenBucket> read_bw_;
    std::unique_ptr<TokenBucket> write_bw_;

    // Pending completions ordered by due time.
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
        pending_;
    std::condition_variable sq_cv_;

    // Completion queue.
    std::mutex cq_mu_;
    std::condition_variable cq_cv_;
    std::vector<SsdCompletion> cq_;

    std::atomic<uint64_t> inflight_{0};
    std::atomic<bool> stop_{false};
    std::thread worker_;

    SsdStats stats_;

    // Registry metrics, per-device series, fault sites and dropout
    // state — the observability kit shared by every backend (see
    // io::DeviceInstruments). busy_ns accumulates channel service time,
    // so utilization over a window is Δbusy ÷ (window × channels).
    io::DeviceInstruments ins_;

    // Tracing: one synthetic trace track per internal channel (service
    // spans are serialized per channel, so they render as
    // non-overlapping "X" events), and a sequence for pairing
    // queue-wait begin/end events.
    std::vector<uint16_t> trace_channel_tracks_;
    std::atomic<uint64_t> trace_req_seq_{0};
};

}  // namespace prism::sim
