/**
 * @file
 * Performance profiles for the storage media in Figure 1 of the paper.
 *
 * | Type      | Model              | rBW    | wBW    | rLat   | wLat  | $/TB |
 * | DRAM      | SK Hynix DDR4      | 15 GB/s| 15 GB/s| 0.08us | 0.08us| 5427 |
 * | NVM       | Optane DCPMM       | 6.8    | 1.9    | 0.30   | 0.09  | 4096 |
 * | NVM SSD   | Optane 905P        | 2.6    | 2.2    | 10     | 10    | 1024 |
 * | Flash SSD | Samsung 980 Pro    | 7      | 5      | 50     | 20    |  150 |
 * | Flash SSD | Samsung 980        | 3.5    | 3      | 60     | 20    |  100 |
 *
 * These numbers drive the simulated devices; a process-wide TimeScale can
 * compress them uniformly (common/clock.h).
 */
#pragma once

#include <cstdint>

namespace prism::sim {

/** Static performance/cost description of one storage medium. */
struct DeviceProfile {
    const char *name;
    double read_bw_bytes_per_sec;
    double write_bw_bytes_per_sec;
    uint64_t read_latency_ns;
    uint64_t write_latency_ns;
    double dollars_per_tb;
    /** Number of internally parallel service units (flash channels). */
    int internal_parallelism;
};

constexpr double kGB = 1e9;

/** SK Hynix DDR4 DRAM. */
inline constexpr DeviceProfile kDramProfile = {
    "dram-ddr4", 15 * kGB, 15 * kGB, 80, 80, 5427.0, 16,
};

/** Intel Optane DCPMM (the paper's NVM). */
inline constexpr DeviceProfile kOptaneDcpmmProfile = {
    "nvm-optane-dcpmm", 6.8 * kGB, 1.9 * kGB, 300, 90, 4096.0, 8,
};

/** Intel Optane 905P SSD (ultra-low-latency NVM SSD). */
inline constexpr DeviceProfile kOptaneSsdProfile = {
    "nvmssd-optane-905p", 2.6 * kGB, 2.2 * kGB, 10000, 10000, 1024.0, 8,
};

/** Samsung 980 Pro (PCIe Gen4 flash SSD — the paper's Value Storage). */
inline constexpr DeviceProfile kSamsung980ProProfile = {
    "ssd-980pro", 7 * kGB, 5 * kGB, 50000, 20000, 150.0, 32,
};

/** Samsung 980 (PCIe Gen3 flash SSD). */
inline constexpr DeviceProfile kSamsung980Profile = {
    "ssd-980", 3.5 * kGB, 3 * kGB, 60000, 20000, 100.0, 32,
};

/**
 * Prospective CXL-attached (battery-backed) persistent memory, per the
 * paper's §8 discussion of emerging media: byte-addressable and
 * non-volatile like DCPMM, but behind a CXL link — roughly 2-3x the
 * load latency, with DRAM-class bandwidth. Used by the extension bench
 * to ask how Prism's design carries over to post-Optane NVM.
 */
inline constexpr DeviceProfile kCxlNvmProfile = {
    "nvm-cxl", 12 * kGB, 10 * kGB, 750, 400, 2048.0, 16,
};

}  // namespace prism::sim
