/**
 * @file
 * Deterministic fault-injection registry.
 *
 * A process-wide registry of named fault *sites*. Production code marks a
 * potential failure point with PRISM_FAULT_POINT("site.name"); the macro
 * costs one relaxed atomic load when no faults are armed, so sites can sit
 * on hot paths (device submit, pmem fence) at no measurable cost.
 *
 * Tests and the torture harness *arm* sites with a trigger:
 *
 *   - prob:P    fire each hit with probability P (deterministic per-site RNG)
 *   - nth:N     fire exactly on the N-th hit (1-based)
 *   - every:N   fire on every N-th hit
 *   - once      fire on the first hit, then disarm
 *
 * plus an optional payload (site-defined meaning, e.g. latency in ns) and an
 * optional `oneshot` modifier that disarms the site after its first fire.
 * The string form is `site=trigger[,payload:V][,oneshot]`, accepted by
 * armFromString() and the PRISM_FAULTS environment variable (`;`-separated).
 *
 * Determinism: each site owns an RNG seeded from hash(global seed, site
 * name). setSeed() reseeds every site and resets hit/fire counts, so a fault
 * schedule replays exactly given the same seed and the same sequence of site
 * hits. Sites may also carry an on-fire callback (used by the crash-torture
 * harness to capture a crash image the moment a pmem flush/fence site fires).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace prism::fault {

/** Trigger kinds for an armed site. */
enum class Trigger : uint8_t {
    kProbability,  ///< fire with probability `probability` per hit
    kNth,          ///< fire exactly on hit number `n` (1-based)
    kEvery,        ///< fire on every `n`-th hit
    kOnce,         ///< fire on the first hit, then disarm
};

/** What to do when a site is hit. */
struct FaultSpec {
    Trigger trigger = Trigger::kOnce;
    double probability = 0.0;  ///< for kProbability
    uint64_t n = 1;            ///< for kNth / kEvery
    uint64_t payload = 0;      ///< site-defined (e.g. extra latency in ns)
    bool one_shot = false;     ///< disarm after the first fire
};

/** A fire event, as recorded for schedule/repro reporting. */
struct SiteInfo {
    std::string name;
    bool armed = false;
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
};

class FaultRegistry {
  public:
    static FaultRegistry &global();

    /**
     * Intern @p name, returning a stable dense id. Safe to call
     * concurrently; the same name always maps to the same id.
     */
    uint32_t siteId(std::string_view name);

    /** Arm @p site with @p spec. Interns the site if needed. */
    void arm(std::string_view site, const FaultSpec &spec);

    /**
     * Arm from the string form `site=trigger[,payload:V][,oneshot]`
     * (see file header for trigger syntax). Returns false and fills
     * @p err on a parse error.
     */
    bool armFromString(std::string_view directive, std::string *err);

    /**
     * Arm every directive in a `;`-separated schedule (the PRISM_FAULTS
     * / scheduleString() form). Returns false and fills @p err on the
     * first parse error; directives before it stay armed.
     */
    bool armSchedule(std::string_view schedule, std::string *err);

    /**
     * Arm the schedule in the PRISM_FAULTS environment variable, if
     * set. Malformed directives abort the process (a typo'd fault
     * schedule silently testing nothing is worse than a crash).
     */
    void armFromEnv();

    /** Disarm one site (keeps hit counts; callback is kept too). */
    void disarm(std::string_view site);

    /**
     * Disarm every site, clear all callbacks, and reset hit/fire
     * counters. The global enable flag drops, restoring the zero-cost
     * disabled path.
     */
    void disarmAll();

    /**
     * Reseed every site's RNG from @p seed and reset hit/fire counters.
     * Call before each deterministic iteration.
     */
    void setSeed(uint64_t seed);

    /**
     * Register @p cb to run (on the hitting thread, inside the fire
     * path) whenever @p site fires. The payload argument is the armed
     * spec's payload. Survives disarm()/setSeed() but not disarmAll().
     */
    void onFire(std::string_view site,
                std::function<void(uint64_t payload)> cb);

    /**
     * Hot-path check: record a hit on @p site and decide whether it
     * fires. Returns true when the fault fires (caller simulates the
     * failure); also runs the site's on-fire callback, bumps
     * prism.fault.* counters, and emits a trace instant. When
     * @p payload is non-null and the fault fires, it receives the
     * armed spec's payload value.
     */
    bool shouldFire(uint32_t site_id, uint64_t *payload = nullptr);

    /** Snapshot of every interned site (armed or not). */
    std::vector<SiteInfo> sites() const;

    /**
     * One-line schedule of the currently armed sites in armFromString
     * syntax (`;`-separated), for failure repro messages. Empty string
     * when nothing is armed.
     */
    std::string scheduleString() const;

    /** Total fires since construction / last setSeed(). */
    uint64_t totalFires() const;

  private:
    FaultRegistry();
    struct Impl;
    Impl *impl_;  // leaked on purpose: process-wide singleton
};

/** @return true when at least one site is armed, as one relaxed load. */
bool enabled();

/** Render @p spec in armFromString syntax (without the site name). */
std::string specString(const FaultSpec &spec);

}  // namespace prism::fault

/** Interned fault-site id for a string literal, cached per call site. */
#define PRISM_FAULT_SITE_ID(lit)                                        \
    ([]() -> uint32_t {                                                 \
        static const uint32_t id =                                      \
            ::prism::fault::FaultRegistry::global().siteId(lit);        \
        return id;                                                      \
    }())

/**
 * Potential failure point. Evaluates to true when an armed fault fires
 * here; one relaxed load + branch when the framework is idle.
 */
#define PRISM_FAULT_POINT(lit)                                          \
    (::prism::fault::enabled() &&                                       \
     ::prism::fault::FaultRegistry::global().shouldFire(                \
         PRISM_FAULT_SITE_ID(lit)))
