#include "common/crc32.h"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace prism {

namespace detail {

namespace {

/** CRC32C polynomial (reflected). */
constexpr uint32_t kPoly = 0x82F63B78u;

struct Table {
    uint32_t entries[256];

    constexpr Table() : entries()
    {
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; bit++)
                crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
            entries[i] = crc;
        }
    }
};
constexpr Table kTable;

}  // namespace

uint32_t
crc32cSw(uint32_t crc, const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (len-- > 0)
        crc = (crc >> 8) ^ kTable.entries[(crc ^ *p++) & 0xFF];
    return ~crc;
}

}  // namespace detail

uint32_t
crc32c(uint32_t crc, const void *data, size_t len)
{
#if defined(__SSE4_2__)
    const auto *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (len >= 8) {
        uint64_t chunk;
        __builtin_memcpy(&chunk, p, 8);
        crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
        p += 8;
        len -= 8;
    }
    while (len-- > 0)
        crc = _mm_crc32_u8(crc, *p++);
    return ~crc;
#else
    return detail::crc32cSw(crc, data, len);
#endif
}

}  // namespace prism
