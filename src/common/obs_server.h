/**
 * @file
 * prism::obs — the ops plane (docs/OBSERVABILITY.md, "Ops endpoints &
 * logging").
 *
 * Three pieces, all built on the process-wide registries in
 * src/common:
 *
 *  1. ObsServer: a poll-based single-thread HTTP/1.1 listener serving
 *     GET /metrics (Prometheus text exposition of the stats registry),
 *     /healthz + /readyz (JSON with 200/503 semantics, fed by a
 *     caller-supplied HealthReport provider), /slowops, /telemetry
 *     (prism.telemetry.v1 series), and /trace (Chrome-trace JSON).
 *     Off by default; PrismOptions::obs_port / $PRISM_OBS_PORT turn it
 *     on, port 0 binds an ephemeral port published via port() and the
 *     prism.obs.port gauge. Binds 127.0.0.1 only — this is an ops
 *     endpoint, not a public service.
 *
 *  2. renderPrometheus(): pure StatsSnapshot → exposition-format
 *     renderer, also used by `prism_cli metrics --prom` without any
 *     server. Dotted names become underscore names, counters gain
 *     `_total`, per-shard (`prism.shard.<n>.*`) and per-device
 *     (`sim.ssd.<n>.*`) families are flattened into `shard` / `device`
 *     labels, and histograms export cumulative `_bucket{le=...}` (ns
 *     bounds coarsened to powers of two) plus `_sum` / `_count`.
 *
 *  3. The crash black-box: writePostmortem() dumps stats snapshot,
 *     trace rings, slow ops, armed fault schedule and the log tail to
 *     a timestamped directory; installCrashHandlers() arranges for
 *     that dump on fatal signals / std::terminate. Best-effort by
 *     design: the handlers are not async-signal-safe, but on the
 *     crashes the torture harness hunts (asserts, aborts, segfaults in
 *     steady state) the dump nearly always completes, and a truncated
 *     postmortem still beats none.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/stats.h"

namespace prism::trace { struct SlowOp; }

namespace prism::obs {

/** Render a stats snapshot in Prometheus text exposition format 0.0.4. */
std::string renderPrometheus(const stats::StatsSnapshot &snap);

/**
 * Resolve an effective ops port from an options value: >= 0 wins
 * (0 = ephemeral), -1 defers to $PRISM_OBS_PORT, and -1 comes back
 * when neither asks for a server.
 */
int resolveObsPort(int option_value);

/** Render the tracer's slow-op buffer as a JSON object. */
std::string renderSlowOpsJson();

/** What /healthz + /readyz report. */
struct HealthReport {
    bool healthy = true;  ///< /healthz: 200 when true, 503 otherwise
    bool ready = true;    ///< /readyz: 200 when true, 503 otherwise
    std::string json;     ///< response body (a JSON object)
};

/** Default report for a process with no registered health provider. */
HealthReport defaultHealthReport();

/**
 * Register (or clear, with nullptr) the process-wide listener-info
 * provider. When a network front-end (net::RespServer) is embedded, it
 * registers a callback returning a JSON object describing the listener
 * (port, connections, commands, ...); health reports append it as a
 * `"listener"` section so /healthz and `prism_cli top` show front-end
 * state next to store state. The callback is invoked from arbitrary
 * threads and must be cheap and thread-safe.
 */
void setListenerInfo(std::function<std::string()> fn);

/** The registered listener's JSON object, or "" when none. */
std::string listenerInfoJson();

/**
 * The HTTP ops listener. One background thread multiplexes the listen
 * socket and every client over poll(); requests are GET-only,
 * connection-per-request (Connection: close). Lifecycle is
 * start()/stop(); the destructor stops. Intended to be owned by the
 * top-level store (PrismDb or ShardRouter), but self-contained enough
 * for tests to run standalone.
 */
class ObsServer {
  public:
    struct Options {
        /** TCP port; 0 binds an ephemeral port (see port()). */
        int port = 0;
        /** Reject requests whose head exceeds this (431). */
        size_t max_request_bytes = 8192;
        /** Concurrent client connections beyond which accepts are
         *  immediately closed. */
        int max_connections = 32;
    };

    ObsServer();
    ~ObsServer();

    ObsServer(const ObsServer &) = delete;
    ObsServer &operator=(const ObsServer &) = delete;

    /**
     * Health callback behind /healthz + /readyz. Called on the server
     * thread per request; must be cheap and thread-safe. Unset →
     * defaultHealthReport().
     */
    void setHealthProvider(std::function<HealthReport()> fn);

    /**
     * Hook run before every /metrics snapshot, for gauges that are
     * computed on demand rather than maintained incrementally (e.g.
     * PrismDb::publishOccupancy). Same threading rules as above.
     */
    void setMetricsPrepare(std::function<void()> fn);

    /**
     * Bind + listen + spawn the server thread. Returns false (and
     * fills @p err) on bind/listen failure; start on a running server
     * is an error.
     */
    bool start(const Options &opts, std::string *err);

    /** Stop the thread and close every socket. Idempotent. */
    void stop();

    bool running() const;

    /** Bound TCP port while running (resolves port 0), else 0. */
    int port() const;

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Dump the black-box to `<base_dir>/postmortem-<utc-stamp>-<pid>/`:
 * MANIFEST.txt (reason + context), stats.json, trace.json,
 * slowops.json, faults.txt (armed schedule + fire count, replayable
 * via PRISM_FAULTS), log_tail.txt. Creates base_dir if needed.
 * Returns the created directory, or "" on I/O failure.
 */
std::string writePostmortem(const std::string &base_dir,
                            const std::string &reason);

/**
 * Install std::terminate and fatal-signal handlers (SEGV, ABRT, BUS,
 * FPE, ILL) that writePostmortem() into @p base_dir, then re-raise so
 * the exit status is unchanged. One shot per process (recursion
 * guard); later calls just update the directory.
 */
void installCrashHandlers(const std::string &base_dir);

}  // namespace prism::obs
