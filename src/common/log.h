/**
 * @file
 * Structured leveled logging (docs/OBSERVABILITY.md, "Ops endpoints &
 * logging").
 *
 * Prism's earlier logging story was binary: PRISM_CHECK/PRISM_FATAL
 * abort the process, everything else was an ad-hoc fprintf(stderr).
 * This logger fills the middle: leveled messages with an interned
 * *site* id per call site, per-site token-bucket rate limiting (a
 * flapping device cannot melt stderr), text or JSON-lines output, and
 * a bounded in-memory tail that the crash black-box
 * (common/obs_server.h) dumps into postmortems.
 *
 * Usage:
 *
 *     PRISM_LOG_WARN("io.uring_fallback",
 *                    "io_uring unavailable (%s); using posix", err);
 *
 * The first argument is the site: a stable dotted name used for rate
 * limiting and for the `site` field in JSON output. Each site is
 * registered once (function-local static) and carries its own bucket,
 * so one noisy loop cannot suppress unrelated warnings.
 *
 * Environment:
 *   PRISM_LOG_LEVEL  = debug | info | warn | error | off   (default info)
 *   PRISM_LOG_FORMAT = text | json                         (default text)
 *
 * Every emission/suppression bumps `prism.log.emitted.<level>` /
 * `prism.log.suppressed.<level>` in the process-wide stats registry,
 * so the ops endpoint exposes logging health itself.
 */
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace prism::log {

enum class Level : int {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

/** "debug"/"info"/"warn"/"error" (lowercase, for JSON + counters). */
const char *levelName(Level l);

/** Parse a level name; returns fallback on unknown input. */
Level parseLevel(const char *s, Level fallback);

namespace detail { struct Site; }

/**
 * Process-wide logger. All state is behind global(); the class exists
 * so tests can redirect the sink and reset filtering deterministically.
 */
class Logger {
  public:
    static Logger &global();

    /** Minimum level that reaches the sink (and the tail ring). */
    void setLevel(Level l);
    Level level() const;
    bool enabled(Level l) const { return l >= level(); }

    /** Emit JSON lines instead of human-readable text. */
    void setJson(bool json);
    bool json() const;

    /**
     * Redirect output. The logger never closes the stream; nullptr
     * silences output while still recording the tail (tests,
     * postmortem-only operation).
     */
    void setSink(std::FILE *sink);

    /**
     * Per-site sustained messages/sec and burst. Applied to sites
     * registered afterwards; existing sites keep their bucket.
     */
    void setRateLimit(double msgs_per_sec, uint64_t burst);

    /**
     * Intern one call site. Called once per site through the
     * PRISM_LOG_* macros' function-local static; the returned pointer
     * is stable for process lifetime.
     */
    detail::Site *registerSite(const char *site, const char *file,
                               int line);

    /** Rate-limited printf-style emission (the macro back end). */
    void log(detail::Site *site, Level l, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    /**
     * Unconditional emission that bypasses level filter and rate
     * limit — the PRISM_CHECK / prism::fatal path, where the message
     * must reach the tail before the process dies.
     */
    void logRaw(Level l, const char *site, const char *msg);

    /** Most recent formatted lines (oldest first), for postmortems. */
    std::vector<std::string> tail() const;

    /** Drop buffered tail lines (test isolation). */
    void clearTailForTest();

  private:
    Logger();
    struct Impl;
    Impl *impl_;  // leaked singleton state; never destroyed
};

}  // namespace prism::log

/**
 * Leveled logging with printf formatting. `site` must be a string
 * literal (stable dotted name); it keys rate limiting and appears in
 * JSON output. The level check is one relaxed atomic load, so disabled
 * levels cost nothing measurable on hot paths.
 */
#define PRISM_LOG_AT(lvl, site, ...)                                       \
    do {                                                                   \
        ::prism::log::Logger &prism_lg_ =                                  \
            ::prism::log::Logger::global();                                \
        if (prism_lg_.enabled(lvl)) {                                      \
            static ::prism::log::detail::Site *prism_log_site_ =           \
                prism_lg_.registerSite(site, __FILE__, __LINE__);          \
            prism_lg_.log(prism_log_site_, lvl, __VA_ARGS__);              \
        }                                                                  \
    } while (0)

#define PRISM_LOG_DEBUG(site, ...) \
    PRISM_LOG_AT(::prism::log::Level::kDebug, site, __VA_ARGS__)
#define PRISM_LOG_INFO(site, ...) \
    PRISM_LOG_AT(::prism::log::Level::kInfo, site, __VA_ARGS__)
#define PRISM_LOG_WARN(site, ...) \
    PRISM_LOG_AT(::prism::log::Level::kWarn, site, __VA_ARGS__)
#define PRISM_LOG_ERROR(site, ...) \
    PRISM_LOG_AT(::prism::log::Level::kError, site, __VA_ARGS__)
