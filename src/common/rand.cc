#include "common/rand.h"

#include <cmath>

#include "common/logging.h"

namespace prism {

uint64_t
hash64(uint64_t x)
{
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

Xorshift::Xorshift(uint64_t seed)
{
    // Seed both lanes through splitmix so that seed=0 is fine too.
    s0_ = hash64(seed);
    s1_ = hash64(s0_);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

uint64_t
Xorshift::next()
{
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

uint64_t
Xorshift::nextUniform(uint64_t bound)
{
    PRISM_DCHECK(bound != 0);
    // Lemire's multiply-shift range reduction (bias negligible for our use).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double
Xorshift::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
ZipfianGenerator::zeta(uint64_t n, double theta)
{
    double sum = 0.0;
    for (uint64_t i = 0; i < n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    PRISM_CHECK(n > 0);
    zeta2theta_ = zeta(2, theta);
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2theta_ / zetan_);
}

uint64_t
ZipfianGenerator::next()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

ScrambledZipfian::ScrambledZipfian(uint64_t n, double theta, uint64_t seed)
    : zipf_(n, theta, seed), n_(n)
{
}

uint64_t
ScrambledZipfian::next()
{
    return hash64(zipf_.next()) % n_;
}

LatestGenerator::LatestGenerator(uint64_t initial_count, double theta,
                                 uint64_t seed)
    : count_(initial_count), zipf_(initial_count, theta, seed)
{
    PRISM_CHECK(initial_count > 0);
}

uint64_t
LatestGenerator::next()
{
    // Zipfian over recency: rank 0 maps to the newest item. The underlying
    // generator was sized for the initial count; clamp ranks to the current
    // window, which keeps the hot set on the most recent insertions.
    uint64_t rank = zipf_.next();
    if (rank >= count_)
        rank = count_ - 1;
    return count_ - 1 - rank;
}

}  // namespace prism
